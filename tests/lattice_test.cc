#include "core/lattice.h"

#include <gtest/gtest.h>

#include <bit>

#include "datagen/datasets.h"

namespace falcon {
namespace {

// Lattice for the paper's update Δ3: t2[Molecule] ← "C22H28F" over the
// dirty T_drug, with all four attributes (Fig. 2). Lattice bit order:
// 0=Molecule (target), 1=Date, 2=Laboratory, 3=Quantity.
StatusOr<Lattice> DrugLattice(const Table& dirty,
                              LatticeOptions options = {}) {
  Repair repair{/*row=*/1, /*col=*/1, "C22H28F"};
  return Lattice::Build(dirty, repair, {0, 2, 3}, options);
}

NodeId MaskOf(const Lattice& lat, std::initializer_list<const char*> attrs) {
  NodeId m = 0;
  for (const char* a : attrs) {
    bool found = false;
    for (size_t i = 0; i < lat.num_attrs(); ++i) {
      if (lat.attr_name(i) == a) {
        m |= NodeId{1} << i;
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no lattice attribute " << a;
  }
  return m;
}

TEST(LatticeTest, BuildShape) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok()) << lat.status();
  EXPECT_EQ(lat->num_attrs(), 4u);
  EXPECT_EQ(lat->num_nodes(), 16u);
  EXPECT_EQ(lat->bottom(), 0u);
  EXPECT_EQ(lat->top(), 15u);
  // Ranked candidates first, the repaired attribute last.
  EXPECT_EQ(lat->attr_name(0), "Date");
  EXPECT_EQ(lat->attr_name(3), "Molecule");
  EXPECT_EQ(lat->binding_text(3), "statin");  // Bound to the dirty value.
}

TEST(LatticeTest, AffectedCountsMatchPaperFigure2) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  // ∅ affects every tuple whose Molecule ≠ C22H28F: all 6.
  EXPECT_EQ(lat->affected_count(lat->bottom()), 6u);
  // M (Molecule=statin): t2, t4, t5.
  EXPECT_EQ(lat->affected_count(MaskOf(*lat, {"Molecule"})), 3u);
  // ML (the paper's Q3): t2, t5 — affected number 2 in Fig. 2.
  NodeId ml = MaskOf(*lat, {"Molecule", "Laboratory"});
  EXPECT_EQ(lat->affected_count(ml), 2u);
  EXPECT_EQ(lat->affected(ml).ToVector(), (std::vector<uint32_t>{1, 4}));
  // Q (Quantity=200): t1, t2, t4, t5.
  EXPECT_EQ(lat->affected_count(MaskOf(*lat, {"Quantity"})), 4u);
  // LQ (Austin, 200): t1, t2, t5.
  EXPECT_EQ(lat->affected_count(MaskOf(*lat, {"Laboratory", "Quantity"})),
            3u);
  // Top (DMLQ): only t2.
  EXPECT_EQ(lat->affected_count(lat->top()), 1u);
}

TEST(LatticeTest, NaiveInitMatchesViewInit) {
  DrugExample ex = MakeDrugExample();
  auto fast = DrugLattice(ex.dirty);
  LatticeOptions naive;
  naive.naive_init = true;
  auto slow = DrugLattice(ex.dirty, naive);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  for (NodeId m = 0; m < fast->num_nodes(); ++m) {
    EXPECT_EQ(fast->affected(m), slow->affected(m)) << "node " << m;
  }
}

TEST(LatticeTest, NodeQueryRendersSql) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  SqluQuery q = lat->NodeQuery(MaskOf(*lat, {"Molecule", "Laboratory"}));
  EXPECT_EQ(q.ToSql(),
            "UPDATE T_drug SET Molecule = 'C22H28F' WHERE Laboratory = "
            "'Austin' AND Molecule = 'statin';");
  EXPECT_EQ(lat->NodeQuery(0).ToSql(),
            "UPDATE T_drug SET Molecule = 'C22H28F';");
}

TEST(LatticeTest, NodeLabel) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  EXPECT_EQ(lat->NodeLabel(0), "{}");
  EXPECT_EQ(lat->NodeLabel(MaskOf(*lat, {"Molecule", "Quantity"})),
            "{Quantity, Molecule}");
}

TEST(LatticeTest, ValidInferencePropagatesUpward) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  NodeId ml = MaskOf(*lat, {"Molecule", "Laboratory"});
  lat->MarkValid(ml);
  // Everything more specific (supersets) becomes valid.
  for (NodeId m = 0; m < lat->num_nodes(); ++m) {
    if ((m & ml) == ml) {
      EXPECT_EQ(lat->validity(m), Validity::kValid) << "node " << m;
    } else {
      EXPECT_EQ(lat->validity(m), Validity::kUnknown) << "node " << m;
    }
  }
}

TEST(LatticeTest, InvalidInferencePropagatesDownward) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  NodeId dq = MaskOf(*lat, {"Date", "Quantity"});
  lat->MarkInvalid(dq);
  // Paper Example 5: D, Q and ∅ become invalid.
  for (NodeId m = 0; m < lat->num_nodes(); ++m) {
    if ((m & dq) == m) {
      EXPECT_EQ(lat->validity(m), Validity::kInvalid) << "node " << m;
    } else {
      EXPECT_EQ(lat->validity(m), Validity::kUnknown) << "node " << m;
    }
  }
}

TEST(LatticeTest, InferenceDoesNotOverwriteKnownStates) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  NodeId ml = MaskOf(*lat, {"Molecule", "Laboratory"});
  lat->MarkValid(ml);
  lat->MarkInvalid(MaskOf(*lat, {"Molecule"}));
  // ML stays valid even though it is a superset of the invalidated M.
  EXPECT_EQ(lat->validity(ml), Validity::kValid);
}

TEST(LatticeTest, ApplyNodeWritesAndMaintainsCounts) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  auto lat = DrugLattice(dirty);
  ASSERT_TRUE(lat.ok());

  // Paper Example 9: validating ML repairs {t2, t5}.
  NodeId ml = MaskOf(*lat, {"Molecule", "Laboratory"});
  RowSet changed = lat->ApplyNode(ml, dirty);
  EXPECT_EQ(changed.ToVector(), (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(dirty.CellText(1, 1), "C22H28F");
  EXPECT_EQ(dirty.CellText(4, 1), "C22H28F");

  // Case 1: contained nodes (supersets of ML) drop to 0.
  EXPECT_EQ(lat->affected_count(MaskOf(*lat, {"Molecule", "Laboratory",
                                              "Date"})), 0u);
  EXPECT_EQ(lat->affected_count(lat->top()), 0u);
  // Case 2: M drops 3 → 1; ∅ drops 6 → 4.
  EXPECT_EQ(lat->affected_count(MaskOf(*lat, {"Molecule"})), 1u);
  EXPECT_EQ(lat->affected_count(lat->bottom()), 4u);
  // L (Laboratory=Austin): was {t1, t2, t5} = 3, loses t2 and t5 → 1.
  EXPECT_EQ(lat->affected_count(MaskOf(*lat, {"Laboratory"})), 1u);
  // Case 3: DL (12 Nov, Austin) affected only t2 → 0 now.
  EXPECT_EQ(lat->affected_count(MaskOf(*lat, {"Date", "Laboratory"})), 0u);
}

TEST(LatticeTest, MaintenanceClassifiesCases) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  auto lat = DrugLattice(dirty);
  ASSERT_TRUE(lat.ok());
  NodeId ml = MaskOf(*lat, {"Molecule", "Laboratory"});
  lat->ApplyNode(ml, dirty);
  // 16-node lattice: ML itself, 3 proper supersets (Case 1), 3 proper
  // subsets {∅, M, L} (Case 2), and 9 incomparable nodes (Case 3).
  EXPECT_EQ(lat->maintenance_stats().case1_contained, 3u);
  EXPECT_EQ(lat->maintenance_stats().case2_containing, 3u);
  EXPECT_EQ(lat->maintenance_stats().case3_disjoint, 9u);
}

TEST(LatticeTest, MaintenanceMatchesRecompute) {
  // Property: after any apply, the incrementally maintained sets equal a
  // from-scratch recomputation.
  auto ds = MakeSynth(1500);
  ASSERT_TRUE(ds.ok());
  auto dirty_inst = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty_inst.ok());
  Table dirty = dirty_inst->dirty.Clone();

  const ErrorCell& e = dirty_inst->errors.front();
  Repair repair{e.row, e.col,
                std::string(ds->clean.pool()->Get(e.clean_value))};
  std::vector<size_t> cols;
  for (size_t c = 0; c < dirty.num_cols() && cols.size() < 5; ++c) {
    if (c != e.col) cols.push_back(c);
  }
  auto lat = Lattice::Build(dirty, repair, cols);
  ASSERT_TRUE(lat.ok());

  // Apply a mid-lattice node, then compare the incrementally maintained
  // sets against a from-scratch recomputation over the updated table
  // (RecomputeAffected keeps the original predicate bindings; a rebuilt
  // lattice would re-bind to the repaired tuple's new values).
  Lattice reference = *lat;
  NodeId node = lat->top() >> 1;  // Some strict subset.
  lat->ApplyNode(node, dirty);
  reference.RecomputeAffected(dirty);

  for (NodeId m = 0; m < lat->num_nodes(); ++m) {
    EXPECT_EQ(lat->affected(m), reference.affected(m)) << "node " << m;
    EXPECT_EQ(lat->affected_count(m), reference.affected_count(m));
  }
}

TEST(LatticeTest, RecomputeAffectedRefreshesFromTable) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  auto lat = DrugLattice(dirty);
  ASSERT_TRUE(lat.ok());
  // Mutate the table behind the lattice's back, then recompute.
  dirty.SetCellText(3, 1, "C22H28F");  // Fix t4 by hand.
  lat->RecomputeAffected(dirty);
  EXPECT_EQ(lat->affected_count(MaskOf(*lat, {"Molecule"})), 2u);
}

TEST(LatticeTest, PartialMaterializationCapsAttrs) {
  DrugExample ex = MakeDrugExample();
  LatticeOptions options;
  options.max_attrs = 2;
  auto lat = DrugLattice(ex.dirty, options);
  ASSERT_TRUE(lat.ok());
  EXPECT_EQ(lat->num_attrs(), 2u);
  EXPECT_EQ(lat->num_nodes(), 4u);
  // One slot for the best-ranked candidate, and the target always last.
  EXPECT_EQ(lat->attr_name(0), "Date");
  EXPECT_EQ(lat->attr_name(1), "Molecule");
}

TEST(LatticeTest, ExcludeTargetAttrVariant) {
  DrugExample ex = MakeDrugExample();
  LatticeOptions options;
  options.exclude_target_attr = true;
  auto lat = DrugLattice(ex.dirty, options);
  ASSERT_TRUE(lat.ok());
  // Appendix B: A ∉ X, so only Date, Laboratory, Quantity remain.
  EXPECT_EQ(lat->num_attrs(), 3u);
  for (size_t i = 0; i < lat->num_attrs(); ++i) {
    EXPECT_NE(lat->attr_name(i), "Molecule");
  }
}

// Two-row table with `arity` columns C0..C{arity-1}; row 0 is all "a",
// row 1 all "b". Repairing (0, 0) to "fixed" gives top-node affected {0}.
Table WideTable(size_t arity) {
  std::vector<std::string> attrs;
  for (size_t c = 0; c < arity; ++c) attrs.push_back("C" + std::to_string(c));
  Table t("T_wide", Schema(attrs));
  t.AppendRow(std::vector<std::string>(arity, "a"));
  t.AppendRow(std::vector<std::string>(arity, "b"));
  return t;
}

TEST(LatticeTest, BuildsAtMaxAttrsBoundary) {
  // Exactly kMaxLatticeAttrs attributes (target included) must build — and,
  // lazily, a 2^20-node lattice is cheap: only the bottom is resident.
  Table wide = WideTable(kMaxLatticeAttrs + 2);
  std::vector<size_t> cols;
  for (size_t c = 1; c < kMaxLatticeAttrs; ++c) cols.push_back(c);
  LatticeOptions options;
  options.max_attrs = kMaxLatticeAttrs;
  auto lat = Lattice::Build(wide, Repair{0, 0, "fixed"}, cols, options);
  ASSERT_TRUE(lat.ok()) << lat.status();
  EXPECT_EQ(lat->num_attrs(), kMaxLatticeAttrs);
  EXPECT_EQ(lat->num_nodes(), NodeId{1} << kMaxLatticeAttrs);
  EXPECT_EQ(lat->lazy_stats().nodes_materialized, 1u);
  // Counting the top walks (and caches) one ancestor chain, nothing more.
  EXPECT_EQ(lat->affected_count(lat->top()), 1u);
  EXPECT_LE(lat->lazy_stats().nodes_materialized, kMaxLatticeAttrs);
}

TEST(LatticeTest, RejectsBuildJustBeyondMaxAttrs) {
  // One more attribute must be refused with a message naming the cap.
  Table wide = WideTable(kMaxLatticeAttrs + 2);
  std::vector<size_t> cols;
  for (size_t c = 1; c <= kMaxLatticeAttrs; ++c) cols.push_back(c);
  LatticeOptions options;
  options.max_attrs = kMaxLatticeAttrs + 1;
  auto lat = Lattice::Build(wide, Repair{0, 0, "fixed"}, cols, options);
  ASSERT_FALSE(lat.ok());
  EXPECT_NE(lat.status().message().find("kMaxLatticeAttrs = 20"),
            std::string::npos)
      << lat.status();
}

TEST(LatticeTest, RejectsBadRepairs) {
  DrugExample ex = MakeDrugExample();
  EXPECT_FALSE(
      Lattice::Build(ex.dirty, Repair{99, 1, "x"}, {0}).ok());
  EXPECT_FALSE(
      Lattice::Build(ex.dirty, Repair{1, 99, "x"}, {0}).ok());
  EXPECT_FALSE(
      Lattice::Build(ex.dirty, Repair{1, 1, "x"}, {77}).ok());
}

}  // namespace
}  // namespace falcon
