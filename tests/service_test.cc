// Service-layer tests: SessionManager operations and isolation, protocol
// dispatch via HandleRequest (no sockets), socket round-trips against a
// real CleaningServer, and the admission-control / overload policy.
#include <sys/socket.h>

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/session.h"
#include "core/session_journal.h"
#include "datagen/workload.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/session_manager.h"

namespace falcon {
namespace {

// Small enough to converge in well under a second per session.
constexpr double kScale = 0.02;

SessionManager::OpenParams SmallParams(uint64_t seed = 7) {
  SessionManager::OpenParams p;
  p.dataset = "Synth10k";
  p.scale = kScale;
  p.seed = seed;
  return p;
}

// Serial ground truth with the same options the manager builds.
struct Baseline {
  SessionMetrics metrics;
  uint32_t crc = 0;
};

Baseline SerialBaseline(uint64_t seed) {
  auto w = MakeCleaningWorkload("Synth10k", kScale);
  EXPECT_TRUE(w.ok());
  SessionOptions options;
  options.seed = seed;
  Table working = w->dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(SearchKind::kCoDive);
  CleaningSession session(&w->clean, &working, algorithm.get(), options);
  auto metrics = session.Run();
  EXPECT_TRUE(metrics.ok());
  return Baseline{*metrics, TableContentsCrc(working)};
}

TEST(SessionManagerTest, OpenStepCloseMatchesSerialRun) {
  Baseline want = SerialBaseline(7);

  SessionManager manager(ServiceLimits{});
  auto id = manager.Open(SmallParams(7));
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Step one episode at a time — the interactive cadence.
  SessionStatus st;
  for (int i = 0; i < 10000; ++i) {
    auto step = manager.Step(*id, 1);
    ASSERT_TRUE(step.ok()) << step.status().ToString();
    st = *step;
    if (st.finished) break;
  }
  EXPECT_TRUE(st.finished);
  EXPECT_TRUE(st.metrics.converged);
  EXPECT_EQ(st.metrics.user_updates, want.metrics.user_updates);
  EXPECT_EQ(st.metrics.user_answers, want.metrics.user_answers);
  EXPECT_EQ(st.metrics.cells_repaired, want.metrics.cells_repaired);
  EXPECT_EQ(st.metrics.queries_applied, want.metrics.queries_applied);
  EXPECT_EQ(st.table_crc, want.crc);

  EXPECT_TRUE(manager.Close(*id).ok());
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.Close(*id).code(), StatusCode::kNotFound);
}

TEST(SessionManagerTest, SharedBaseStaysCleanWhileSessionsWrite) {
  SessionManager manager(ServiceLimits{});
  auto a = manager.Open(SmallParams(1));
  auto b = manager.Open(SmallParams(2));
  ASSERT_TRUE(a.ok() && b.ok());

  auto before = manager.Info(*a);
  ASSERT_TRUE(before.ok());
  uint32_t dirty_crc = before->table_crc;

  // Run session a to the end; session b's COW snapshot must still see the
  // untouched dirty base.
  ASSERT_TRUE(manager.Step(*a, 0).ok());
  auto b_view = manager.Info(*b);
  ASSERT_TRUE(b_view.ok());
  EXPECT_EQ(b_view->table_crc, dirty_crc);

  auto a_done = manager.Info(*a);
  ASSERT_TRUE(a_done.ok());
  EXPECT_NE(a_done->table_crc, dirty_crc);
  EXPECT_TRUE(a_done->metrics.converged);
}

TEST(SessionManagerTest, AdmissionControlRejectsBeyondMaxSessions) {
  ServiceLimits limits;
  limits.max_sessions = 2;
  SessionManager manager(limits);
  auto a = manager.Open(SmallParams(1));
  auto b = manager.Open(SmallParams(2));
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = manager.Open(SmallParams(3));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnavailable);
  // A close frees the slot.
  ASSERT_TRUE(manager.Close(*a).ok());
  EXPECT_TRUE(manager.Open(SmallParams(3)).ok());
}

TEST(SessionManagerTest, ExternalUpdatesAndAnswersDriveTheSession) {
  auto w = MakeCleaningWorkload("Synth10k", kScale);
  ASSERT_TRUE(w.ok());
  // Find one dirty cell and its clean text.
  uint32_t row = 0, col = 0;
  std::string clean_text;
  bool found = false;
  for (size_t r = 0; r < w->clean.num_rows() && !found; ++r) {
    for (size_t c = 0; c < w->clean.num_cols() && !found; ++c) {
      if (w->dirty.cell(r, c) != w->clean.cell(r, c)) {
        row = static_cast<uint32_t>(r);
        col = static_cast<uint32_t>(c);
        clean_text = std::string(w->clean.CellText(r, c));
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);

  SessionManager manager(ServiceLimits{});
  auto id = manager.Open(SmallParams(9));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager.UpdateCell(*id, row, col, clean_text).ok());
  // Client-supplied verdicts for the questions the first episode asks.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(manager.Answer(*id, false).ok());
  }
  auto st = manager.Step(*id, 1);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ(st->metrics.user_updates, 1u);
  EXPECT_GE(st->metrics.cells_repaired, 1u);

  // Out-of-range updates are rejected.
  EXPECT_EQ(manager.UpdateCell(*id, 1u << 30, 0, "x").status().code(),
            StatusCode::kOutOfRange);
}

TEST(SessionManagerTest, RetractReopensSessionAndReconverges) {
  SessionManager manager(ServiceLimits{});
  auto id = manager.Open(SmallParams(7));
  ASSERT_TRUE(id.ok());
  auto done = manager.Step(*id, 0);
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done->finished);
  ASSERT_GT(done->repairs, 0u);
  uint32_t clean_crc = done->table_crc;

  // Retracting an out-of-range entry fails cleanly.
  EXPECT_FALSE(manager.Retract(*id, done->repairs).ok());

  // Retract the newest applied repair: the session re-opens (finished
  // drops) and stepping again re-converges to the same final table.
  ASSERT_TRUE(manager.Retract(*id, done->repairs - 1).ok());
  auto reopened = manager.Info(*id);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(reopened->finished);
  auto redone = manager.Step(*id, 0);
  ASSERT_TRUE(redone.ok()) << redone.status().ToString();
  EXPECT_TRUE(redone->finished);
  EXPECT_TRUE(redone->metrics.converged);
  EXPECT_EQ(redone->table_crc, clean_crc);
}

TEST(ProtocolTest, DispatchesVerbsAndReportsErrors) {
  SessionManager manager(ServiceLimits{});

  // Unknown verb.
  auto bad = JsonValue::Parse("{\"verb\":\"nope\"}");
  ASSERT_TRUE(bad.ok());
  JsonValue r = HandleRequest(manager, *bad);
  EXPECT_FALSE(r.GetBool("ok"));
  EXPECT_EQ(r.GetString("code"), "INVALID_ARGUMENT");

  // Missing session id.
  auto missing = JsonValue::Parse("{\"verb\":\"step\"}");
  r = HandleRequest(manager, *missing);
  EXPECT_FALSE(r.GetBool("ok"));

  // Unknown session.
  auto ghost = JsonValue::Parse("{\"verb\":\"status\",\"session\":\"s-99\"}");
  r = HandleRequest(manager, *ghost);
  EXPECT_FALSE(r.GetBool("ok"));
  EXPECT_EQ(r.GetString("code"), "NOT_FOUND");

  // Full open → step → status → close cycle through the dispatcher.
  JsonValue open = JsonValue::Object();
  open.Set("verb", "open_session");
  open.Set("dataset", "Synth10k");
  open.Set("scale", kScale);
  open.Set("seed", 7);
  r = HandleRequest(manager, open);
  ASSERT_TRUE(r.GetBool("ok")) << r.Serialize();
  std::string id = r.GetString("session");
  EXPECT_FALSE(id.empty());

  JsonValue step = JsonValue::Object();
  step.Set("verb", "step");
  step.Set("session", id);
  step.Set("episodes", 0);
  r = HandleRequest(manager, step);
  ASSERT_TRUE(r.GetBool("ok")) << r.Serialize();
  EXPECT_TRUE(r.GetBool("finished"));
  const JsonValue* metrics = r.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->GetBool("converged"));
  EXPECT_GT(r.GetInt("table_crc"), 0);

  JsonValue close = JsonValue::Object();
  close.Set("verb", "close");
  close.Set("session", id);
  EXPECT_TRUE(HandleRequest(manager, close).GetBool("ok"));
  EXPECT_FALSE(HandleRequest(manager, close).GetBool("ok"));
}

TEST(ServerTest, SocketRoundTripOverUnixSocket) {
  ServerOptions options;
  options.unix_path = "/tmp/falcon_service_test.sock";
  options.workers = 2;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto client = ServiceClient::ConnectToUnix(options.unix_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  JsonValue open = JsonValue::Object();
  open.Set("verb", "open_session");
  open.Set("dataset", "Synth10k");
  open.Set("scale", kScale);
  open.Set("seed", 7);
  auto r = client->CallChecked(open);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string id = r->GetString("session");

  JsonValue step = JsonValue::Object();
  step.Set("verb", "step");
  step.Set("session", id);
  step.Set("episodes", 0);
  r = client->CallChecked(step);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->GetBool("finished"));

  // Malformed JSON gets an error response, not a dropped connection.
  JsonValue status_req = JsonValue::Object();
  status_req.Set("verb", "status");
  status_req.Set("session", id);
  auto still_ok = client->Call(status_req);
  ASSERT_TRUE(still_ok.ok());
  EXPECT_TRUE(still_ok->GetBool("ok"));

  // Remote shutdown is refused without the opt-in flag.
  JsonValue shutdown = JsonValue::Object();
  shutdown.Set("verb", "shutdown");
  auto refused = client->Call(shutdown);
  ASSERT_TRUE(refused.ok());
  EXPECT_FALSE(refused->GetBool("ok"));

  server.Stop();
  server.Wait();
}

TEST(ServerTest, TcpListenerBindsEphemeralPort) {
  ServerOptions options;
  options.tcp_port = 0;
  options.workers = 1;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.bound_port(), 0);

  auto client = ServiceClient::ConnectToTcp(server.bound_port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  JsonValue ghost = JsonValue::Object();
  ghost.Set("verb", "status");
  ghost.Set("session", "s-1");
  auto r = client->Call(ghost);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetString("code"), "NOT_FOUND");

  server.Stop();
  server.Wait();
}

TEST(ServerTest, OverloadedQueueRejectsWithRetryAfter) {
  // queue_limit=0: every submitted request is an overload rejection, which
  // proves the reader-side rejection path without a timing race.
  ServerOptions options;
  options.unix_path = "/tmp/falcon_service_overload_test.sock";
  options.workers = 1;
  options.queue_limit = 0;
  options.retry_after_ms = 25;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto client = ServiceClient::ConnectToUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  JsonValue req = JsonValue::Object();
  req.Set("verb", "status");
  req.Set("session", "s-1");
  auto r = client->Call(req);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->GetBool("ok"));
  EXPECT_EQ(r->GetString("code"), "UNAVAILABLE");
  EXPECT_EQ(r->GetInt("retry_after_ms"), 25);

  server.Stop();
  server.Wait();
}

TEST(SessionManagerTest, IdempotentSeqWindowCachesAndRejects) {
  SessionManager manager(ServiceLimits{});
  auto id = manager.Open(SmallParams(7));
  ASSERT_TRUE(id.ok());

  // seq 1 executes one episode.
  auto first = manager.Step(*id, 1, /*seq=*/1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->last_seq, 1u);

  // A retry of seq 1 is served from the cache: identical snapshot, and
  // provably not re-executed (same episode counters, same CRC).
  auto retry = manager.Step(*id, 1, /*seq=*/1);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->table_crc, first->table_crc);
  EXPECT_EQ(retry->metrics.user_updates, first->metrics.user_updates);
  EXPECT_EQ(retry->metrics.user_answers, first->metrics.user_answers);
  EXPECT_EQ(retry->repairs, first->repairs);

  // A gapped seq is rejected without executing.
  auto gap = manager.Step(*id, 1, /*seq=*/5);
  EXPECT_EQ(gap.status().code(), StatusCode::kFailedPrecondition);

  // seq 2 advances; after the window slides past a seq it reports
  // kFailedPrecondition instead of silently re-applying.
  auto second = manager.Step(*id, 1, /*seq=*/2);
  ASSERT_TRUE(second.ok());
  for (uint64_t s = 3; s <= 40; ++s) {
    auto st = manager.Info(*id);
    ASSERT_TRUE(st.ok());
    if (st->finished) break;
    ASSERT_TRUE(manager.Step(*id, 1, s).ok());
  }
  auto evicted = manager.Step(*id, 1, /*seq=*/1);
  // seq 1 may still be cached if the run converged early; when it is not,
  // the typed "too old" error comes back.
  if (!evicted.ok()) {
    EXPECT_EQ(evicted.status().code(), StatusCode::kFailedPrecondition);
  }

  // Cached errors replay too: an invalid retract is cached under its seq.
  auto info = manager.Info(*id);
  ASSERT_TRUE(info.ok());
  uint64_t next = info->last_seq + 1;
  auto bad = manager.Retract(*id, 1u << 20, next);
  ASSERT_FALSE(bad.ok());
  auto bad_retry = manager.Retract(*id, 1u << 20, next);
  EXPECT_EQ(bad_retry.status().code(), bad.status().code());
}

TEST(ServerTest, SlowlorisConnectionEvictedWithTypedError) {
  ServerOptions options;
  options.unix_path = "/tmp/falcon_service_slowloris_test.sock";
  options.workers = 1;
  options.read_deadline_ms = 200;  // Short so the test is fast.
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // A half-sent line (no newline) must trip the per-line deadline and get
  // the typed eviction error...
  auto conn = ConnectUnix(options.unix_path);
  ASSERT_TRUE(conn.ok());
  const char partial[] = "{\"verb\":\"ping\"";  // No trailing newline.
  ASSERT_GT(::send(conn->fd(), partial, sizeof partial - 1, 0), 0);
  LineChannel channel(std::move(conn).value());
  std::string line;
  bool eof = false;
  channel.set_read_deadline(5000, /*from_first_byte=*/false);
  Status read = channel.ReadLine(&line, &eof);
  ASSERT_TRUE(read.ok()) << read.ToString();
  ASSERT_FALSE(eof);
  auto resp = JsonValue::Parse(line);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->GetBool("ok"));
  EXPECT_EQ(resp->GetString("code"), "DEADLINE_EXCEEDED");

  // ...while an idle connection (no partial line) stays connected well
  // past the deadline and still gets served.
  auto idle = ServiceClient::ConnectToUnix(options.unix_path);
  ASSERT_TRUE(idle.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  JsonValue ping = JsonValue::Object();
  ping.Set("verb", "ping");
  auto pong = idle->CallChecked(ping);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_GE(pong->GetInt("max_sessions"), 1);

  server.Stop();
  server.Wait();
}

TEST(ServerTest, PingReportsHealth) {
  ServerOptions options;
  options.unix_path = "/tmp/falcon_service_ping_test.sock";
  options.workers = 1;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto client = ServiceClient::ConnectToUnix(options.unix_path);
  ASSERT_TRUE(client.ok());
  JsonValue ping = JsonValue::Object();
  ping.Set("verb", "ping");
  auto r = client->CallChecked(ping);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->GetInt("live_sessions"), 0);
  EXPECT_GT(r->GetInt("max_sessions"), 0);
  EXPECT_EQ(r->GetInt("recovered_sessions"), 0);
  EXPECT_GE(r->GetDouble("uptime_s"), 0.0);

  JsonValue open = JsonValue::Object();
  open.Set("verb", "open_session");
  open.Set("dataset", "Synth10k");
  open.Set("scale", kScale);
  open.Set("seed", 7);
  auto opened = client->CallChecked(open);
  ASSERT_TRUE(opened.ok());
  r = client->CallChecked(ping);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetInt("live_sessions"), 1);

  server.Stop();
  server.Wait();
}

TEST(ServerTest, ConcurrentClientsOnDistinctSessions) {
  ServerOptions options;
  options.unix_path = "/tmp/falcon_service_mt_test.sock";
  options.workers = 4;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  std::vector<uint32_t> crcs(kClients, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = ServiceClient::ConnectToUnix(options.unix_path);
      ASSERT_TRUE(client.ok());
      JsonValue open = JsonValue::Object();
      open.Set("verb", "open_session");
      open.Set("dataset", "Synth10k");
      open.Set("scale", kScale);
      open.Set("seed", 7);  // Same seed: all runs must agree exactly.
      auto r = client->CallChecked(open);
      ASSERT_TRUE(r.ok());
      std::string id = r->GetString("session");
      JsonValue step = JsonValue::Object();
      step.Set("verb", "step");
      step.Set("session", id);
      step.Set("episodes", 0);
      r = client->CallChecked(step);
      ASSERT_TRUE(r.ok());
      crcs[i] = static_cast<uint32_t>(r->GetInt("table_crc"));
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kClients; ++i) EXPECT_EQ(crcs[i], crcs[0]);

  server.Stop();
  server.Wait();
}

}  // namespace
}  // namespace falcon
