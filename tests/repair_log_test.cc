#include "core/repair_log.h"

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "core/search.h"
#include "core/session.h"
#include "errorgen/injector.h"
#include "datagen/datasets.h"

namespace falcon {
namespace {

SqluQuery DummyQuery(const std::string& value) {
  SqluQuery q;
  q.table = "T";
  q.set_attr = "Molecule";
  q.set_value = value;
  return q;
}

TEST(RepairLogTest, RecordsAndCounts) {
  RepairLog log;
  EXPECT_TRUE(log.empty());
  log.Record(DummyQuery("x"), 1, {{3, 7}, {5, 9}});
  log.Record(DummyQuery("y"), 1, {{3, 8}}, /*manual=*/true);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.cells_written(), 3u);
  EXPECT_EQ(log.TimesRepaired(3, 1), 2u);  // Cycle signal: repaired twice.
  EXPECT_EQ(log.TimesRepaired(5, 1), 1u);
  EXPECT_EQ(log.TimesRepaired(5, 2), 0u);
  EXPECT_TRUE(log.entries()[1].manual);
}

TEST(RepairLogTest, UndoRestoresBeforeImages) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  RepairLog log;

  // Apply Q3 manually while journaling.
  SqluQuery q3 = DummyQuery("C22H28F");
  q3.where = {{"Molecule", "statin"}, {"Laboratory", "Austin"}};
  std::vector<std::pair<uint32_t, ValueId>> before = {
      {1, dirty.cell(1, 1)}, {4, dirty.cell(4, 1)}};
  log.Record(q3, 1, before);
  ASSERT_TRUE(ApplyQuery(dirty, q3).ok());
  EXPECT_EQ(dirty.CellText(1, 1), "C22H28F");

  EXPECT_TRUE(log.UndoLast(dirty));
  EXPECT_EQ(dirty.CellText(1, 1), "statin");
  EXPECT_EQ(dirty.CellText(4, 1), "statin");
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.TimesRepaired(1, 1), 0u);
  EXPECT_FALSE(log.UndoLast(dirty));  // Nothing left.
}

TEST(RepairLogTest, UndoOutOfOrderIsRefusedOnOverlap) {
  // Two rules rewrote the same cell: retracting the older one first would
  // resurrect a value the newer rule already replaced.
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  RepairLog log;

  ValueId statin = dirty.cell(1, 1);
  SqluQuery q1 = DummyQuery("C22H28F");
  log.Record(q1, 1, {{1, statin}, {4, dirty.cell(4, 1)}});
  dirty.set_cell(1, 1, dirty.Intern("C22H28F"));
  dirty.set_cell(4, 1, dirty.Intern("C22H28F"));

  SqluQuery q2 = DummyQuery("C9H8O4");
  log.Record(q2, 1, {{1, dirty.cell(1, 1)}});
  dirty.set_cell(1, 1, dirty.Intern("C9H8O4"));

  Status st = log.Undo(0, dirty);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("newest-first"), std::string::npos)
      << st.message();
  EXPECT_EQ(log.size(), 2u);                    // Nothing was changed.
  EXPECT_EQ(dirty.CellText(1, 1), "C9H8O4");

  // Newest-first succeeds and restores the original values.
  ASSERT_TRUE(log.Undo(1, dirty).ok());
  ASSERT_TRUE(log.Undo(0, dirty).ok());
  EXPECT_EQ(dirty.CellText(1, 1), "statin");
  EXPECT_EQ(dirty.CellText(4, 1), "statin");
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.TimesRepaired(1, 1), 0u);
}

TEST(RepairLogTest, UndoMiddleEntryAllowedWhenDisjoint) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  RepairLog log;

  // Entry 0 touches column 1; entry 1 touches column 2 and a different
  // row of column 1 — no overlap, so the older entry can go first.
  log.Record(DummyQuery("C22H28F"), 1, {{1, dirty.cell(1, 1)}});
  dirty.set_cell(1, 1, dirty.Intern("C22H28F"));
  log.Record(DummyQuery("x"), 1, {{4, dirty.cell(4, 1)}});
  dirty.set_cell(4, 1, dirty.Intern("x"));

  ASSERT_TRUE(log.Undo(0, dirty).ok());
  EXPECT_EQ(dirty.CellText(1, 1), "statin");
  EXPECT_EQ(dirty.CellText(4, 1), "x");  // Later entry untouched.
  ASSERT_EQ(log.size(), 1u);
  ASSERT_TRUE(log.Undo(0, dirty).ok());
  EXPECT_EQ(dirty.CellText(4, 1), "statin");

  EXPECT_EQ(log.Undo(5, dirty).code(), StatusCode::kInvalidArgument);
}

TEST(RepairLogTest, UndoKeepsPostingBitmapsExact) {
  for (bool delta : {true, false}) {
    DrugExample ex = MakeDrugExample();
    Table dirty = ex.dirty.Clone();
    PostingIndexOptions opts;
    opts.delta_maintenance = delta;
    PostingIndex index(&dirty, opts);

    ValueId statin = dirty.Intern("statin");
    ValueId fixed = dirty.Intern("C22H28F");
    // Prime the cache so there are bitmaps to maintain.
    (void)index.Postings(1, statin);
    (void)index.Postings(1, fixed);

    RepairLog log;
    log.Record(DummyQuery("C22H28F"), 1,
               {{1, dirty.cell(1, 1)}, {4, dirty.cell(4, 1)}});
    if (delta) {
      index.ApplyCellDelta(1, 1, dirty.cell(1, 1), fixed);
      index.ApplyCellDelta(1, 4, dirty.cell(4, 1), fixed);
    } else {
      index.InvalidateColumn(1);
    }
    dirty.set_cell(1, 1, fixed);
    dirty.set_cell(4, 1, fixed);

    ASSERT_TRUE(log.Undo(0, dirty, &index).ok());

    // The maintained bitmaps must match a fresh scan of the rolled-back
    // table, in both maintenance modes.
    PostingIndex fresh(&dirty);
    EXPECT_EQ(index.Postings(1, statin), fresh.Postings(1, statin))
        << "delta=" << delta;
    EXPECT_EQ(index.Postings(1, fixed), fresh.Postings(1, fixed))
        << "delta=" << delta;
  }
}

TEST(RepairLogTest, ToSqlScriptListsEntries) {
  RepairLog log;
  log.Record(DummyQuery("a"), 1, {{0, 1}});
  log.Record(DummyQuery("b"), 1, {{1, 2}}, /*manual=*/true);
  std::string script = log.ToSqlScript();
  EXPECT_NE(script.find("SET Molecule = 'a'"), std::string::npos);
  EXPECT_NE(script.find("manual fix"), std::string::npos);
}

TEST(RepairLogTest, ContextJournalsAppliedRules) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  auto lat = Lattice::Build(dirty, Repair{1, 1, "C22H28F"}, {0, 2, 3});
  ASSERT_TRUE(lat.ok());
  UserOracle oracle(&ex.clean);
  SearchStats stats;
  RepairLog log;
  LatticeSearchContext ctx(&*lat, &dirty, &oracle, 5, false, false, nullptr,
                           &stats, nullptr);
  ctx.set_repair_log(&log);

  // ML (bits: Laboratory=1, Molecule=3) is valid and gets applied+logged.
  auto res = ctx.Ask(0b1010);
  ASSERT_TRUE(res.has_value());
  ASSERT_TRUE(res->valid);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries()[0].before.size(), 2u);
  EXPECT_FALSE(log.entries()[0].manual);

  // Undo reverts both repaired cells.
  EXPECT_TRUE(log.UndoLast(dirty));
  EXPECT_EQ(dirty.CellText(1, 1), "statin");
  EXPECT_EQ(dirty.CellText(4, 1), "statin");
}

TEST(RepairLogTest, SessionLogReplaysToConvergence) {
  // The session's journal, replayed onto a fresh dirty copy, reproduces
  // the cleaned instance.
  auto ds = MakeSynth(1200);
  ASSERT_TRUE(ds.ok());
  auto dirty_inst = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty_inst.ok());

  Table working = dirty_inst->dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  SessionOptions options;
  CleaningSession session(&ds->clean, &working, algo.get(), options);
  auto m = session.Run();
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->converged);
  ASSERT_GT(session.log().size(), 0u);

  Table replay = dirty_inst->dirty.Clone();
  for (const RepairLog::Entry& e : session.log().entries()) {
    // Manual fixes recorded the exact cell; rules replay as SQL.
    if (e.manual) {
      for (const auto& [row, old] : e.before) {
        replay.set_cell(row, e.col, replay.Intern(e.query.set_value));
      }
    } else {
      ASSERT_TRUE(ApplyQuery(replay, e.query).ok());
    }
  }
  EXPECT_EQ(replay.CountDiffCells(ds->clean), 0u);
}

}  // namespace
}  // namespace falcon
