// Lazy materialization and compressed row-set storage are optimizations,
// not semantics changes: every observable of a cleaning run — the
// questions asked (after closed-set redirection), the answers, the applied
// repairs, the final table CRC — must be bit-identical across
// options.lattice.lazy = {true, false} × options.compressed_rowsets =
// {false, true}, for every search algorithm and both posting-maintenance
// modes. These sweeps pin that property on seeded random workloads; the
// direct lattice tests pin the accessor-level equivalence (affected sets,
// counts, representatives) including after applied queries.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/lattice.h"
#include "core/oracle.h"
#include "core/session.h"
#include "core/session_journal.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"
#include "relational/posting_index.h"

namespace falcon {
namespace {

// Oracle that behaves bit-for-bit like the session's internal simulated
// user (same ctor arguments) while recording every question it was asked.
class RecordingOracle : public UserOracle {
 public:
  struct Asked {
    NodeId node;
    size_t target_col;
    bool valid;
  };

  RecordingOracle(const Table* clean, uint64_t session_seed)
      : UserOracle(clean, /*mistake_prob=*/0.0, session_seed + 1) {}

  Answered AnswerEx(const Lattice& lattice, NodeId n) override {
    Answered a = UserOracle::AnswerEx(lattice, n);
    asked_.push_back({n, lattice.target_col(), a.valid});
    return a;
  }

  const std::vector<Asked>& asked() const { return asked_; }

 private:
  std::vector<Asked> asked_;
};

struct Workload {
  Table clean;
  Table dirty;
};

Workload MakeWorkload(size_t rows, uint64_t seed) {
  auto ds = MakeSynth(rows, seed);
  FALCON_CHECK(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  FALCON_CHECK(dirty.ok());
  return {ds->clean.Clone(), dirty->dirty.Clone()};
}

struct RunResult {
  SessionMetrics metrics;
  Table final_table;
  uint32_t final_crc = 0;
  std::vector<RecordingOracle::Asked> asked;
};

RunResult RunOnce(const Workload& w, SearchKind kind, bool lazy,
                  bool posting_delta, bool compressed, uint64_t seed) {
  SessionOptions options;
  options.budget = 3;
  options.seed = seed;
  options.posting_delta = posting_delta;
  options.lattice.lazy = lazy;
  options.compressed_rowsets = compressed;
  RecordingOracle oracle(&w.clean, seed);
  options.oracle = &oracle;
  Table dirty = w.dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(kind);
  CleaningSession session(&w.clean, &dirty, algorithm.get(), options);
  auto m = session.Run();
  FALCON_CHECK(m.ok());
  return {*m, dirty.Clone(), TableContentsCrc(dirty), oracle.asked()};
}

struct EquivParam {
  SearchKind kind;
  bool posting_delta;
};

std::string ParamName(const ::testing::TestParamInfo<EquivParam>& info) {
  return std::string(SearchKindName(info.param.kind)) +
         (info.param.posting_delta ? "_delta" : "_invalidate");
}

class LazyEagerEquivalenceTest : public ::testing::TestWithParam<EquivParam> {
};

TEST_P(LazyEagerEquivalenceTest, RunsBitIdentical) {
  for (uint64_t seed : {11u, 42u}) {
    Workload w = MakeWorkload(1200, seed);
    // Full grid: {lazy, eager} × {dense, compressed}. The lazy+dense run
    // is the baseline every other configuration must match bit-for-bit.
    struct Config {
      bool lazy;
      bool compressed;
      const char* name;
    };
    const Config configs[] = {{true, false, "lazy/dense"},
                              {false, false, "eager/dense"},
                              {true, true, "lazy/compressed"},
                              {false, true, "eager/compressed"}};
    std::vector<RunResult> runs;
    for (const Config& cfg : configs) {
      runs.push_back(RunOnce(w, GetParam().kind, cfg.lazy,
                             GetParam().posting_delta, cfg.compressed,
                             /*seed=*/1234 + seed));
    }
    const RunResult& base = runs[0];

    for (size_t k = 1; k < runs.size(); ++k) {
      const RunResult& other = runs[k];
      SCOPED_TRACE(std::string("config ") + configs[k].name);

      // Interaction accounting matches exactly.
      EXPECT_EQ(base.metrics.user_updates, other.metrics.user_updates);
      EXPECT_EQ(base.metrics.user_answers, other.metrics.user_answers);
      EXPECT_EQ(base.metrics.cells_repaired, other.metrics.cells_repaired);
      EXPECT_EQ(base.metrics.queries_applied, other.metrics.queries_applied);
      EXPECT_EQ(base.metrics.converged, other.metrics.converged);

      // Same questions, in the same order, with the same answers — this
      // covers closed-set representative redirection too, since the oracle
      // sees the redirected node.
      ASSERT_EQ(base.asked.size(), other.asked.size());
      for (size_t i = 0; i < base.asked.size(); ++i) {
        EXPECT_EQ(base.asked[i].node, other.asked[i].node) << "question " << i;
        EXPECT_EQ(base.asked[i].target_col, other.asked[i].target_col);
        EXPECT_EQ(base.asked[i].valid, other.asked[i].valid);
      }

      // Same final instance, cell for cell, and the same table CRC.
      EXPECT_EQ(base.final_table.CountDiffCells(other.final_table), 0u);
      EXPECT_EQ(base.final_crc, other.final_crc);
    }

    // Lazy/eager schedules must match *within* each storage mode too:
    // nodes_materialized and fused_count_calls are representation
    // independent by construction (MaterializeBitmap pre-fills counts in
    // both modes).
    EXPECT_EQ(runs[0].metrics.nodes_materialized,
              runs[2].metrics.nodes_materialized);
    EXPECT_EQ(runs[0].metrics.fused_count_calls,
              runs[2].metrics.fused_count_calls);
    EXPECT_EQ(runs[1].metrics.nodes_materialized,
              runs[3].metrics.nodes_materialized);

    // And the lazy run must actually have been lazy: a strict subset of
    // nodes materialized, with counts served by the fused kernel. The
    // eager run materializes everything at build.
    const RunResult& lazy = runs[0];
    const RunResult& eager = runs[1];
    ASSERT_GT(lazy.metrics.nodes_total, 0u);
    EXPECT_LT(lazy.metrics.nodes_materialized, lazy.metrics.nodes_total);
    EXPECT_GT(lazy.metrics.fused_count_calls, 0u);
    EXPECT_EQ(eager.metrics.nodes_materialized, eager.metrics.nodes_total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsBothPostingModes, LazyEagerEquivalenceTest,
    ::testing::Values(EquivParam{SearchKind::kBfs, true},
                      EquivParam{SearchKind::kBfs, false},
                      EquivParam{SearchKind::kDfs, true},
                      EquivParam{SearchKind::kDfs, false},
                      EquivParam{SearchKind::kDucc, true},
                      EquivParam{SearchKind::kDucc, false},
                      EquivParam{SearchKind::kDive, true},
                      EquivParam{SearchKind::kDive, false},
                      EquivParam{SearchKind::kCoDive, true},
                      EquivParam{SearchKind::kCoDive, false},
                      EquivParam{SearchKind::kOffline, true},
                      EquivParam{SearchKind::kOffline, false}),
    ParamName);

// Accessor-level equivalence on one lattice: every affected set, count, and
// closed-set representative matches between a lazy and an eager build —
// before and after an applied query maintains them.
TEST(LazyEagerLatticeTest, AccessorsMatchNodeForNode) {
  Workload w = MakeWorkload(1500, /*seed=*/7);
  Table dirty = w.dirty.Clone();

  // Repair the first cell that differs from clean.
  Repair repair;
  bool found = false;
  for (size_t r = 0; r < dirty.num_rows() && !found; ++r) {
    for (size_t c = 0; c < dirty.num_cols() && !found; ++c) {
      if (dirty.cell(r, c) != w.clean.cell(r, c)) {
        repair = {static_cast<uint32_t>(r), c,
                  std::string(w.clean.CellText(r, c))};
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  std::vector<size_t> cols;
  for (size_t c = 0; c < dirty.num_cols() && cols.size() < 5; ++c) {
    if (c != repair.col) cols.push_back(c);
  }

  LatticeOptions lazy_opts;   // lazy = true by default.
  LatticeOptions eager_opts;
  eager_opts.lazy = false;
  Table lazy_table = dirty.Clone();
  Table eager_table = dirty.Clone();
  auto lazy = Lattice::Build(lazy_table, repair, cols, lazy_opts);
  auto eager = Lattice::Build(eager_table, repair, cols, eager_opts);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  ASSERT_TRUE(eager.ok()) << eager.status();
  ASSERT_EQ(lazy->num_nodes(), eager->num_nodes());

  for (NodeId m = 0; m < lazy->num_nodes(); ++m) {
    EXPECT_EQ(lazy->affected_count(m), eager->affected_count(m))
        << "node " << m;
    EXPECT_EQ(lazy->affected(m), eager->affected(m)) << "node " << m;
    EXPECT_EQ(lazy->Representative(m), eager->Representative(m))
        << "node " << m;
  }

  // Apply the same mid-lattice node to both and re-compare: incremental
  // maintenance of the cached subset must agree with eager maintenance of
  // everything.
  NodeId node = lazy->top() >> 1;
  lazy->ApplyNode(node, lazy_table);
  eager->ApplyNode(node, eager_table);
  EXPECT_EQ(lazy_table.CountDiffCells(eager_table), 0u);
  for (NodeId m = 0; m < lazy->num_nodes(); ++m) {
    EXPECT_EQ(lazy->affected_count(m), eager->affected_count(m))
        << "node " << m;
    EXPECT_EQ(lazy->affected(m), eager->affected(m)) << "node " << m;
    EXPECT_EQ(lazy->Representative(m), eager->Representative(m))
        << "node " << m;
  }
}

// EnsureCounts (the batched parallel path) must agree with serial Count.
TEST(LazyEagerLatticeTest, BatchedCountsMatchSerial) {
  Workload w = MakeWorkload(2000, /*seed=*/13);
  Table dirty = w.dirty.Clone();
  Repair repair{0, 0, std::string(w.clean.CellText(0, 0))};
  std::vector<size_t> cols;
  for (size_t c = 1; c < dirty.num_cols() && cols.size() < 6; ++c) {
    cols.push_back(c);
  }
  auto batched = Lattice::Build(dirty, repair, cols);
  auto serial = Lattice::Build(dirty, repair, cols);
  ASSERT_TRUE(batched.ok());
  ASSERT_TRUE(serial.ok());

  std::vector<NodeId> all;
  for (NodeId m = 0; m < batched->num_nodes(); ++m) all.push_back(m);
  batched->EnsureCounts(all);
  for (NodeId m = 0; m < batched->num_nodes(); ++m) {
    EXPECT_EQ(batched->Count(m), serial->Count(m)) << "node " << m;
  }
  // Counting everything still materializes only about half the nodes (the
  // lowest-set-bit parents): laziness survives a full-frontier count.
  EXPECT_LT(batched->lazy_stats().nodes_materialized, batched->num_nodes());
}

}  // namespace
}  // namespace falcon
