// End-to-end tests across the whole stack: generate → inject → profile →
// clean interactively → verify the repaired instance and the paper's
// qualitative claims on small workloads.
#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/refine.h"
#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"
#include "relational/csv.h"

namespace falcon {
namespace {

TEST(IntegrationTest, SoccerFullPipelineConverges) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());

  SessionOptions options;
  options.budget = 3;
  auto m = RunCleaning(ds->clean, dirty->dirty, SearchKind::kCoDive, options);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->converged);
  EXPECT_EQ(m->initial_errors, dirty->errors.size());
  // Soccer has 8 rule patterns plus 2 random errors: the user-update floor
  // is ~8 (a group query may also swallow a random error on the same
  // column); a working multi-hop search lands well under the error count.
  EXPECT_GE(m->user_updates, 8u);
  EXPECT_LT(m->user_updates, dirty->errors.size());
}

TEST(IntegrationTest, MultiHopBeatsOneHopOnPairRules) {
  // Synth rules have 2-attribute LHSs; one-hop BFS burns its budget on
  // level-1 nodes while Dive reaches the right level (the paper's Fig. 4
  // story).
  auto ds = MakeSynth(1500);
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());

  SessionOptions options;
  options.budget = 2;
  auto dive = RunCleaning(ds->clean, dirty->dirty, SearchKind::kDive,
                          options);
  auto bfs = RunCleaning(ds->clean, dirty->dirty, SearchKind::kBfs, options);
  ASSERT_TRUE(dive.ok());
  ASSERT_TRUE(bfs.ok());
  EXPECT_GT(dive->Benefit(), bfs->Benefit());
}

TEST(IntegrationTest, FalconBeatsRefineOnRuleErrors) {
  auto ds = MakeSynth(1500);
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());

  SessionOptions options;
  options.budget = 5;
  auto codive = RunCleaning(ds->clean, dirty->dirty, SearchKind::kCoDive,
                            options);
  auto refine = RunRefine(ds->clean, dirty->dirty);
  ASSERT_TRUE(codive.ok());
  ASSERT_TRUE(refine.ok());
  EXPECT_GT(codive->Benefit(), refine->Benefit());
}

TEST(IntegrationTest, ClosedRuleSetsNeverHurtCost) {
  auto ds = MakeSynth(1200);
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());

  for (SearchKind kind : {SearchKind::kDive, SearchKind::kDfs}) {
    SessionOptions with;
    with.budget = 2;
    SessionOptions without = with;
    without.use_closed_sets = false;
    auto on = RunCleaning(ds->clean, dirty->dirty, kind, with);
    auto off = RunCleaning(ds->clean, dirty->dirty, kind, without);
    ASSERT_TRUE(on.ok());
    ASSERT_TRUE(off.ok());
    // Fig. 5: the optimization reduces (or at worst roughly preserves)
    // total interaction cost.
    EXPECT_LE(on->TotalCost(), off->TotalCost() + off->TotalCost() / 10 + 5)
        << SearchKindName(kind);
  }
}

TEST(IntegrationTest, CleanedTableRoundTripsThroughCsv) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());
  Table working = dirty->dirty.Clone();
  std::unique_ptr<SearchAlgorithm> algo =
      MakeSearchAlgorithm(SearchKind::kDive);
  SessionOptions options;
  CleaningSession session(&ds->clean, &working, algo.get(), options);
  auto m = session.Run();
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->converged);

  std::string path = testing::TempDir() + "/falcon_integration.csv";
  ASSERT_TRUE(WriteCsv(working, path).ok());
  auto back = ReadCsv(path, "soccer");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), ds->clean.num_rows());
  for (size_t r = 0; r < back->num_rows(); ++r) {
    for (size_t c = 0; c < back->num_cols(); ++c) {
      EXPECT_EQ(back->CellText(r, c), ds->clean.CellText(r, c));
    }
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  // Same seeds → identical metrics, bit for bit.
  auto run = [] {
    auto ds = MakeSynth(900);
    EXPECT_TRUE(ds.ok());
    auto dirty = InjectErrors(ds->clean, ds->error_spec);
    EXPECT_TRUE(dirty.ok());
    SessionOptions options;
    options.budget = 3;
    auto m = RunCleaning(ds->clean, dirty->dirty, SearchKind::kCoDive,
                         options);
    EXPECT_TRUE(m.ok());
    return std::make_tuple(m->user_updates, m->user_answers,
                           m->cells_repaired);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace falcon
