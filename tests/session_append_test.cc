// CleaningSession::AppendBatch: contract checks, and the equivalence proof
// behind the Fig. 8 append-vs-rebuild claim — a session whose cached state
// is incrementally maintained across appends (posting Resize+fold, memo
// extension, worklist diff) must interact and converge exactly like one
// that drops and rebuilds that state, for every search algorithm and both
// posting storage modes. Also covers the append counters surfaced through
// the service status/ping verbs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/session_journal.h"
#include "datagen/spec.h"
#include "service/protocol.h"
#include "service/session_manager.h"

namespace falcon {
namespace {

constexpr char kSpecJson[] = R"({
  "name": "t", "seed": 23, "rows": 1000,
  "fields": [
    {"name": "id",    "dist": "unique",  "prefix": "R"},
    {"name": "city",  "dist": "zipf",    "domain": 18, "skew": 1.0,
     "prefix": "C"},
    {"name": "state", "dist": "derived", "parents": ["city"], "domain": 6,
     "prefix": "S"},
    {"name": "zip",   "dist": "uniform", "domain": 20, "prefix": "Z"},
    {"name": "area",  "dist": "derived", "parents": ["zip"], "domain": 5,
     "prefix": "A"}
  ],
  "errors": {
    "rules": [{"lhs": ["city"], "rhs": "state", "patterns": 3,
               "errors_per_pattern": 4}],
    "random_errors": 8, "seed": 3
  },
  "append": {"batches": 2, "rows_per_batch": 150, "error_rate": 0.01}
})";

struct AppendFixture {
  SpecWorkload sw;
  std::vector<SpecAppendChunk> chunks;
};

AppendFixture MakeFixture() {
  auto spec = GeneratorSpec::Parse(kSpecJson);
  EXPECT_TRUE(spec.ok());
  auto sw = MakeSpecWorkload(*spec);
  EXPECT_TRUE(sw.ok()) << sw.status().message();
  AppendFixture f{std::move(sw).value(), {}};
  for (size_t b = 0; b < spec->append.batches; ++b) {
    auto chunk = f.sw.generator.AppendBatchChunk(
        spec->rows + b * spec->append.rows_per_batch,
        spec->append.rows_per_batch);
    EXPECT_TRUE(chunk.ok());
    f.chunks.push_back(std::move(chunk).value());
  }
  return f;
}

struct TwinResult {
  SessionMetrics metrics;
  uint32_t crc = 0;
};

// Runs one session: a couple of warm episodes, the full append schedule
// (growing a private clean clone in lock-step), then to convergence.
TwinResult RunTwin(const AppendFixture& f, SearchKind kind,
                   bool compressed_rowsets, bool append_rebuild) {
  SessionOptions options;
  options.budget = 3;
  options.compressed_rowsets = compressed_rowsets;
  options.append_rebuild = append_rebuild;
  Table clean = f.sw.workload.clean.Clone();
  Table working = f.sw.workload.dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(kind);
  CleaningSession session(&clean, &working, algorithm.get(), options);
  auto warm = session.RunSteps(2);
  EXPECT_TRUE(warm.ok()) << warm.status().message();
  for (const SpecAppendChunk& chunk : f.chunks) {
    clean.AppendBatch(chunk.clean);
    Status st = session.AppendBatch(chunk.dirty);
    EXPECT_TRUE(st.ok()) << st.message();
  }
  auto done = session.RunSteps(0);
  EXPECT_TRUE(done.ok()) << done.status().message();
  EXPECT_TRUE(session.finished());
  return {*done, TableContentsCrc(working)};
}

TEST(SessionAppendTest, IncrementalMatchesRebuildForEveryAlgorithmAndMode) {
  AppendFixture f = MakeFixture();
  Table grown_clean = f.sw.workload.clean.Clone();
  for (const SpecAppendChunk& chunk : f.chunks) {
    grown_clean.AppendBatch(chunk.clean);
  }
  for (SearchKind kind :
       {SearchKind::kBfs, SearchKind::kDfs, SearchKind::kDucc,
        SearchKind::kDive, SearchKind::kCoDive, SearchKind::kOffline}) {
    for (bool compressed : {false, true}) {
      SCOPED_TRACE(std::string(SearchKindName(kind)) +
                   (compressed ? "/compressed" : "/dense"));
      TwinResult inc = RunTwin(f, kind, compressed, /*append_rebuild=*/false);
      TwinResult reb = RunTwin(f, kind, compressed, /*append_rebuild=*/true);
      // Identical interactions and a byte-identical final table: the
      // incremental maintenance is behavior-invisible.
      EXPECT_EQ(inc.crc, reb.crc);
      EXPECT_EQ(inc.metrics.user_updates, reb.metrics.user_updates);
      EXPECT_EQ(inc.metrics.user_answers, reb.metrics.user_answers);
      EXPECT_EQ(inc.metrics.cells_repaired, reb.metrics.cells_repaired);
      EXPECT_EQ(inc.metrics.queries_applied, reb.metrics.queries_applied);
      EXPECT_EQ(inc.metrics.initial_errors, reb.metrics.initial_errors);
      EXPECT_EQ(inc.metrics.converged, reb.metrics.converged);
      // Both twins fully cleaned the grown instance.
      EXPECT_TRUE(inc.metrics.converged);
      EXPECT_EQ(inc.crc, TableContentsCrc(grown_clean));
      // Append accounting.
      EXPECT_EQ(inc.metrics.append_batches, f.chunks.size());
      EXPECT_EQ(inc.metrics.rows_appended, f.chunks.size() * 150);
      EXPECT_GT(inc.metrics.ingest_rows_per_s, 0.0);
    }
  }
}

TEST(SessionAppendTest, AppendedErrorsAreCountedAndCleaned) {
  AppendFixture f = MakeFixture();
  size_t appended_errors = 0;
  for (const auto& chunk : f.chunks) appended_errors += chunk.errors;
  ASSERT_GT(appended_errors, 0u);
  TwinResult r =
      RunTwin(f, SearchKind::kDive, /*compressed=*/true, /*rebuild=*/false);
  EXPECT_EQ(r.metrics.initial_errors,
            f.sw.workload.errors + appended_errors);
  EXPECT_TRUE(r.metrics.converged);
}

TEST(SessionAppendTest, RejectsMisuse) {
  AppendFixture f = MakeFixture();
  SessionOptions options;
  options.budget = 3;
  Table clean = f.sw.workload.clean.Clone();
  Table working = f.sw.workload.dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&clean, &working, algorithm.get(), options);

  // Before Start.
  EXPECT_EQ(session.AppendBatch(f.chunks[0].dirty).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.RunSteps(1).ok());

  // Clean table not grown first.
  EXPECT_EQ(session.AppendBatch(f.chunks[0].dirty).code(),
            StatusCode::kInvalidArgument);

  // Wrong arity.
  clean.AppendBatch(f.chunks[0].clean);
  std::vector<std::vector<ValueId>> narrow(f.chunks[0].dirty.begin(),
                                           f.chunks[0].dirty.end() - 1);
  EXPECT_EQ(session.AppendBatch(narrow).code(), StatusCode::kInvalidArgument);

  // Ragged columns.
  std::vector<std::vector<ValueId>> ragged = f.chunks[0].dirty;
  ragged.back().pop_back();
  EXPECT_EQ(session.AppendBatch(ragged).code(), StatusCode::kInvalidArgument);

  // Well-formed append still works afterwards.
  EXPECT_TRUE(session.AppendBatch(f.chunks[0].dirty).ok());
}

TEST(SessionAppendTest, JournaledSessionsRefuseAppend) {
  AppendFixture f = MakeFixture();
  SessionOptions options;
  options.budget = 3;
  options.journal_path = "/tmp/falcon_append_journal_test.wal";
  Table clean = f.sw.workload.clean.Clone();
  Table working = f.sw.workload.dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&clean, &working, algorithm.get(), options);
  ASSERT_TRUE(session.RunSteps(1).ok());
  clean.AppendBatch(f.chunks[0].clean);
  EXPECT_EQ(session.AppendBatch(f.chunks[0].dirty).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServiceAppendMetricsTest, StatusAndPingSurfaceAppendCounters) {
  // The service builds its own (dataset, scale) workloads, so appended
  // rows stay zero here — this locks in field *presence* and types so
  // dashboards can rely on them.
  SessionManager manager(ServiceLimits{});
  SessionManager::OpenParams params;
  params.dataset = "Synth10k";
  params.scale = 0.02;
  params.seed = 7;
  auto id = manager.Open(params);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  JsonValue status_req = JsonValue::Object();
  status_req.Set("verb", "status");
  status_req.Set("session", *id);
  JsonValue r = HandleRequest(manager, status_req);
  ASSERT_TRUE(r.GetBool("ok")) << r.Serialize();
  const JsonValue* metrics = r.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->Has("rows_appended"));
  EXPECT_TRUE(metrics->Has("append_batches"));
  EXPECT_TRUE(metrics->Has("append_maintain_ms"));
  EXPECT_TRUE(metrics->Has("ingest_rows_per_s"));
  EXPECT_EQ(metrics->GetInt("rows_appended"), 0);

  JsonValue ping = JsonValue::Object();
  ping.Set("verb", "ping");
  r = HandleRequest(manager, ping);
  ASSERT_TRUE(r.GetBool("ok")) << r.Serialize();
  EXPECT_TRUE(r.Has("rows_appended"));
  EXPECT_TRUE(r.Has("append_batches"));
}

}  // namespace
}  // namespace falcon
