#include "profiling/fd_discovery.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"

namespace falcon {
namespace {

bool HasFd(const std::vector<DiscoveredFd>& fds, const Schema& schema,
           std::vector<std::string> lhs, const std::string& rhs) {
  for (const DiscoveredFd& fd : fds) {
    if (schema.attribute(fd.rhs) != rhs) continue;
    if (fd.lhs.size() != lhs.size()) continue;
    std::vector<std::string> names;
    for (size_t c : fd.lhs) names.push_back(schema.attribute(c));
    std::sort(names.begin(), names.end());
    std::sort(lhs.begin(), lhs.end());
    if (names == lhs) return true;
  }
  return false;
}

TEST(FdDiscoveryTest, FindsEmbeddedSingleAttributeFds) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto fds = DiscoverFds(ds->clean);
  const Schema& s = ds->clean.schema();
  EXPECT_TRUE(HasFd(fds, s, {"Club"}, "Stadium"));
  EXPECT_TRUE(HasFd(fds, s, {"Club"}, "Manager"));
  EXPECT_TRUE(HasFd(fds, s, {"Stadium"}, "ClubCountry"));
}

TEST(FdDiscoveryTest, FindsPairFdsAndMinimality) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto fds = DiscoverFds(ds->clean);
  const Schema& s = ds->clean.schema();
  // PlayerCountry needs both Club and Position.
  EXPECT_TRUE(HasFd(fds, s, {"Club", "Position"}, "PlayerCountry"));
  EXPECT_FALSE(HasFd(fds, s, {"Club"}, "PlayerCountry"));
  EXPECT_FALSE(HasFd(fds, s, {"Position"}, "PlayerCountry"));
  // Non-minimal variants of Club → Stadium are suppressed.
  EXPECT_FALSE(HasFd(fds, s, {"Club", "Position"}, "Stadium"));
  EXPECT_FALSE(HasFd(fds, s, {"Club", "ClubCountry"}, "Stadium"));
}

TEST(FdDiscoveryTest, KeyColumnsAreExcluded) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto fds = DiscoverFds(ds->clean);
  const Schema& s = ds->clean.schema();
  for (const DiscoveredFd& fd : fds) {
    EXPECT_NE(s.attribute(fd.rhs), "Player");
    for (size_t c : fd.lhs) EXPECT_NE(s.attribute(c), "Player");
  }
}

TEST(FdDiscoveryTest, ExactFdsHaveFullConfidence) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto fds = DiscoverFds(ds->clean);
  const Schema& s = ds->clean.schema();
  for (const DiscoveredFd& fd : fds) {
    if (s.attribute(fd.rhs) == "Stadium" && fd.lhs.size() == 1 &&
        s.attribute(fd.lhs[0]) == "Club") {
      EXPECT_DOUBLE_EQ(fd.confidence, 1.0);
      EXPECT_GT(fd.groups, 10u);
    }
  }
}

TEST(FdDiscoveryTest, ApproximateFdsSurviveDirtyData) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());
  FdDiscoveryOptions options;
  options.min_confidence = 0.9;  // 82 errors over 1625 rows ≈ 1–2% noise.
  auto fds = DiscoverFds(dirty->dirty, options);
  EXPECT_TRUE(HasFd(fds, ds->clean.schema(), {"Club"}, "Stadium"));
}

TEST(FdDiscoveryTest, ConfidenceThresholdFilters) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());
  FdDiscoveryOptions strict;
  strict.min_confidence = 1.0;  // Dirty data violates Club → Stadium.
  auto fds = DiscoverFds(dirty->dirty, strict);
  EXPECT_FALSE(HasFd(fds, ds->clean.schema(), {"Club"}, "Stadium"));
}

TEST(FdDiscoveryTest, ToStringIsReadable) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto fds = DiscoverFds(ds->clean);
  ASSERT_FALSE(fds.empty());
  std::string text = fds[0].ToString(ds->clean.schema());
  EXPECT_NE(text.find("->"), std::string::npos);
  EXPECT_NE(text.find("conf"), std::string::npos);
}

TEST(FdDiscoveryTest, SamplingKeepsTheBigFds) {
  auto ds = MakeSynth(6000);
  ASSERT_TRUE(ds.ok());
  FdDiscoveryOptions sampled;
  sampled.max_sample_rows = 1500;
  auto fds = DiscoverFds(ds->clean, sampled);
  EXPECT_TRUE(HasFd(fds, ds->clean.schema(), {"A1", "A2"}, "A5"));
}

}  // namespace
}  // namespace falcon
