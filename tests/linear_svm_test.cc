#include "ml/linear_svm.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace falcon {
namespace {

SparseVector Vec(std::initializer_list<std::pair<uint32_t, float>> entries) {
  SparseVector v;
  for (auto [i, x] : entries) v.Add(i, x);
  return v;
}

TEST(LinearSvmTest, UntrainedReportsNotTrained) {
  LinearSvm svm(16);
  EXPECT_FALSE(svm.trained());
  svm.Train({}, {});
  EXPECT_FALSE(svm.trained());
}

TEST(LinearSvmTest, LearnsLinearlySeparableData) {
  // +1 iff feature 0 present; -1 iff feature 1 present.
  std::vector<SparseVector> xs;
  std::vector<int> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(Vec({{0, 1.0f}, {2, 1.0f}}));
    ys.push_back(+1);
    xs.push_back(Vec({{1, 1.0f}, {2, 1.0f}}));
    ys.push_back(-1);
  }
  LinearSvm svm(8);
  svm.Train(xs, ys, 30);
  EXPECT_TRUE(svm.trained());
  EXPECT_GT(svm.Margin(Vec({{0, 1.0f}})), 0.0);
  EXPECT_LT(svm.Margin(Vec({{1, 1.0f}})), 0.0);
  EXPECT_GT(svm.Probability(Vec({{0, 1.0f}})), 0.7);
  EXPECT_LT(svm.Probability(Vec({{1, 1.0f}})), 0.3);
}

TEST(LinearSvmTest, ProbabilityIsMonotoneInMargin) {
  LinearSvm svm(4);
  std::vector<SparseVector> xs = {Vec({{0, 1.0f}}), Vec({{1, 1.0f}})};
  std::vector<int> ys = {+1, -1};
  svm.Train(xs, ys, 50);
  double strong = svm.Probability(Vec({{0, 2.0f}}));
  double weak = svm.Probability(Vec({{0, 0.5f}}));
  EXPECT_GT(strong, weak);
}

TEST(LinearSvmTest, HandlesNoisyLabels) {
  Rng rng(5);
  std::vector<SparseVector> xs;
  std::vector<int> ys;
  for (int i = 0; i < 400; ++i) {
    bool positive = rng.NextBool(0.5);
    SparseVector v;
    v.Add(positive ? 0u : 1u, 1.0f);
    v.Add(2 + static_cast<uint32_t>(rng.NextUint(10)), 1.0f);  // Noise.
    xs.push_back(v);
    // 10% label noise.
    int label = positive ? +1 : -1;
    if (rng.NextBool(0.1)) label = -label;
    ys.push_back(label);
  }
  LinearSvm svm(16);
  svm.Train(xs, ys, 20);
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    bool positive = i % 2 == 0;
    SparseVector v;
    v.Add(positive ? 0u : 1u, 1.0f);
    double p = svm.Probability(v);
    if ((p > 0.5) == positive) ++correct;
  }
  EXPECT_GE(correct, 90);
}

TEST(LinearSvmTest, OutOfRangeIndexesAreIgnored) {
  LinearSvm svm(4);
  std::vector<SparseVector> xs = {Vec({{0, 1.0f}, {1000, 1.0f}})};
  std::vector<int> ys = {+1};
  svm.Train(xs, ys, 5);
  // Must not crash; margin still usable.
  EXPECT_GT(svm.Margin(Vec({{0, 1.0f}, {999, 3.0f}})), 0.0);
}

TEST(LinearSvmTest, RetrainResetsState) {
  LinearSvm svm(4);
  svm.Train({Vec({{0, 1.0f}})}, {+1}, 20);
  double before = svm.Margin(Vec({{0, 1.0f}}));
  EXPECT_GT(before, 0.0);
  svm.Train({Vec({{0, 1.0f}})}, {-1}, 20);
  EXPECT_LT(svm.Margin(Vec({{0, 1.0f}})), 0.0);
}

}  // namespace
}  // namespace falcon
