#include "relational/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace falcon {
namespace {

TEST(CsvTest, ParsesSimpleContent) {
  auto result = ReadCsvString("A,B\n1,2\n3,4\n", "t");
  ASSERT_TRUE(result.ok()) << result.status();
  const Table& t = *result;
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.schema().attribute(1), "B");
  EXPECT_EQ(t.CellText(1, 0), "3");
}

TEST(CsvTest, HandlesQuotedFields) {
  auto result = ReadCsvString(
      "A,B\n\"hello, world\",\"say \"\"hi\"\"\"\nplain,x\n", "t");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->CellText(0, 0), "hello, world");
  EXPECT_EQ(result->CellText(0, 1), "say \"hi\"");
}

TEST(CsvTest, HandlesCrLfAndBlankLines) {
  auto result = ReadCsvString("A,B\r\n1,2\r\n\r\n3,4\r\n", "t");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto result = ReadCsvString("A,B\n1,2,3\n", "t");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsEmptyContent) {
  EXPECT_FALSE(ReadCsvString("", "t").ok());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto result = ReadCsv("/nonexistent/file.csv", "t");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, RoundTripsThroughDisk) {
  Table t("t", Schema({"Name", "Note"}));
  t.AppendRow({"alice", "likes, commas"});
  t.AppendRow({"bob", "quotes \" inside"});
  t.AppendRow({"carol", ""});

  std::string path =
      (std::filesystem::temp_directory_path() / "falcon_csv_test.csv")
          .string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path, "t");
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_rows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(back->CellText(r, c), t.CellText(r, c));
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace falcon
