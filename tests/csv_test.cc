#include "relational/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace falcon {
namespace {

TEST(CsvTest, ParsesSimpleContent) {
  auto result = ReadCsvString("A,B\n1,2\n3,4\n", "t");
  ASSERT_TRUE(result.ok()) << result.status();
  const Table& t = *result;
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.schema().attribute(1), "B");
  EXPECT_EQ(t.CellText(1, 0), "3");
}

TEST(CsvTest, HandlesQuotedFields) {
  auto result = ReadCsvString(
      "A,B\n\"hello, world\",\"say \"\"hi\"\"\"\nplain,x\n", "t");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->CellText(0, 0), "hello, world");
  EXPECT_EQ(result->CellText(0, 1), "say \"hi\"");
}

TEST(CsvTest, HandlesCrLfAndBlankLines) {
  auto result = ReadCsvString("A,B\r\n1,2\r\n\r\n3,4\r\n", "t");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto result = ReadCsvString("A,B\n1,2,3\n", "t");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RaggedRowErrorNamesRowAndLine) {
  auto result = ReadCsvString("A,B\n1,2\n3,4,5\n", "t");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("row 2 (line 3)"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("3 fields, expected 2"),
            std::string::npos);
}

TEST(CsvTest, RejectsUnterminatedQuoteWithPosition) {
  auto result = ReadCsvString("A,B\n1,\"oops\n", "t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("unterminated quoted field"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("row 1 (line 2), column 2"),
            std::string::npos)
      << result.status().message();

  auto header = ReadCsvString("\"A,B\n", "t");
  ASSERT_FALSE(header.ok());
  EXPECT_NE(header.status().message().find("bad CSV header"),
            std::string::npos)
      << header.status().message();
}

TEST(CsvTest, RejectsOverlongField) {
  CsvReadOptions opts;
  opts.max_field_bytes = 8;
  std::string content = "A,B\nshort,waaaaaaaaaay-too-long\n";
  auto result = ReadCsvString(content, "t", opts);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("longer than 8 bytes"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("column 2"), std::string::npos);
  // The default cap is generous: same content passes untouched.
  EXPECT_TRUE(ReadCsvString(content, "t").ok());
}

TEST(CsvTest, SkipBadRowsCountsAndKeepsTheRest) {
  CsvReadOptions opts;
  opts.skip_bad_rows = true;
  CsvReadReport report;
  auto result = ReadCsvString("A,B\n1,2\n3,4,5\nlonely\n6,7\n", "t", opts,
                              &report);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 2u);
  EXPECT_EQ(result->CellText(1, 0), "6");
  EXPECT_EQ(report.rows_read, 2u);
  EXPECT_EQ(report.rows_skipped, 2u);
  EXPECT_NE(report.first_error.find("row 2"), std::string::npos)
      << report.first_error;
}

TEST(CsvTest, FailFastIsTheDefault) {
  CsvReadReport report;
  auto result =
      ReadCsvString("A,B\n1,2\n3,4,5\n", "t", CsvReadOptions{}, &report);
  EXPECT_FALSE(result.ok());
}

TEST(CsvTest, RejectsEmptyContent) {
  EXPECT_FALSE(ReadCsvString("", "t").ok());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto result = ReadCsv("/nonexistent/file.csv", "t");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, RoundTripsThroughDisk) {
  Table t("t", Schema({"Name", "Note"}));
  t.AppendRow({"alice", "likes, commas"});
  t.AppendRow({"bob", "quotes \" inside"});
  t.AppendRow({"carol", ""});

  std::string path =
      (std::filesystem::temp_directory_path() / "falcon_csv_test.csv")
          .string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path, "t");
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_rows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(back->CellText(r, c), t.CellText(r, c));
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace falcon
