#include "common/fault_injector.h"

#include <gtest/gtest.h>

namespace falcon {
namespace {

TEST(FaultInjectorTest, DisarmedHitsAreFreeAndUncounted) {
  FaultInjector inj;
  EXPECT_FALSE(inj.active());
  EXPECT_TRUE(inj.Hit("some.site").ok());
  EXPECT_EQ(inj.HitCount("some.site"), 0u);  // Inactive: fast path, no count.
}

TEST(FaultInjectorTest, RecordingCountsWithoutFailing) {
  FaultInjector inj;
  inj.set_recording(true);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(inj.Hit("a").ok());
  EXPECT_TRUE(inj.Hit("b").ok());
  EXPECT_EQ(inj.HitCount("a"), 5u);
  EXPECT_EQ(inj.HitCount("b"), 1u);
  auto counts = inj.Counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "a");
  EXPECT_EQ(counts[1].first, "b");
}

TEST(FaultInjectorTest, FailsExactlyTheArmedWindow) {
  FaultInjector inj;
  inj.Arm({.site = "io.write", .nth = 3, .count = 2});
  EXPECT_TRUE(inj.Hit("io.write").ok());   // 1
  EXPECT_TRUE(inj.Hit("io.write").ok());   // 2
  Status third = inj.Hit("io.write");      // 3: fails
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kIoError);
  EXPECT_FALSE(inj.Hit("io.write").ok());  // 4: fails
  EXPECT_TRUE(inj.Hit("io.write").ok());   // 5: window passed
  EXPECT_TRUE(inj.Hit("other.site").ok()); // Other sites unaffected.
}

TEST(FaultInjectorTest, TransientCodeAndReset) {
  FaultInjector inj;
  inj.Arm({.site = "oracle", .nth = 1, .count = 1,
           .code = StatusCode::kUnavailable});
  Status st = inj.Hit("oracle");
  EXPECT_TRUE(st.IsTransient());
  EXPECT_TRUE(inj.Hit("oracle").ok());  // Retry after the window succeeds.
  inj.Reset();
  EXPECT_FALSE(inj.active());
  EXPECT_EQ(inj.HitCount("oracle"), 0u);
}

TEST(FaultInjectorTest, DeterministicAcrossRuns) {
  // The same arming fails the same hit on every run — the property the
  // sweep driver relies on to reproduce a crash point.
  for (int run = 0; run < 3; ++run) {
    FaultInjector inj;
    inj.Arm({.site = "s", .nth = 4});
    int failed_at = -1;
    for (int i = 1; i <= 6; ++i) {
      if (!inj.Hit("s").ok()) {
        failed_at = i;
        break;
      }
    }
    EXPECT_EQ(failed_at, 4);
  }
}

TEST(FaultInjectorTest, SeededProbabilisticModeIsReproducible) {
  auto failing_hits = [](uint64_t seed) {
    FaultInjector inj;
    inj.Arm({.site = "p", .probability = 0.3, .seed = seed});
    std::vector<int> failures;
    for (int i = 1; i <= 50; ++i) {
      if (!inj.Hit("p").ok()) failures.push_back(i);
    }
    return failures;
  };
  EXPECT_EQ(failing_hits(7), failing_hits(7));
  EXPECT_FALSE(failing_hits(7).empty());
  EXPECT_NE(failing_hits(7), failing_hits(8));
}

TEST(FaultInjectorTest, ParsesFlagSyntax) {
  FaultInjector inj;
  ASSERT_TRUE(
      inj.ArmFromFlag("journal.append:2, oracle.answer:1:3:transient").ok());
  EXPECT_TRUE(inj.Hit("journal.append").ok());
  EXPECT_FALSE(inj.Hit("journal.append").ok());
  Status st = inj.Hit("oracle.answer");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

TEST(FaultInjectorTest, RejectsMalformedFlags) {
  FaultInjector inj;
  EXPECT_FALSE(inj.ArmFromFlag("site:abc").ok());
  EXPECT_FALSE(inj.ArmFromFlag("site:0").ok());
  EXPECT_FALSE(inj.ArmFromFlag(":3").ok());
  EXPECT_FALSE(inj.ArmFromFlag("site:1:2:bogus").ok());
  EXPECT_FALSE(inj.ArmFromFlag("site:1:2:crash:extra").ok());
  EXPECT_FALSE(inj.active());  // Nothing was armed by the failed parses.
}

}  // namespace
}  // namespace falcon
