#include <gtest/gtest.h>

#include "baselines/active_learning.h"
#include "common/str_util.h"
#include "baselines/refine.h"
#include "baselines/rule_learning.h"
#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

struct Workload {
  Table clean;
  Table dirty;
  size_t errors;
};

Workload MakeWorkload(size_t rows = 1200, size_t formats = 2) {
  auto ds = MakeSynth(rows);
  EXPECT_TRUE(ds.ok());
  ErrorSpec spec = ds->error_spec;
  spec.num_format_patterns = formats;
  auto dirty = InjectErrors(ds->clean, spec);
  EXPECT_TRUE(dirty.ok()) << dirty.status();
  return {ds->clean.Clone(), dirty->dirty.Clone(), dirty->errors.size()};
}

TEST(RefineTest, AlwaysCompletes) {
  Workload w = MakeWorkload();
  auto r = RunRefine(w.clean, w.dirty);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->completed);
  EXPECT_EQ(r->initial_errors, w.errors);
  EXPECT_EQ(r->cells_repaired, w.errors);
  // One answer per update: the standardization check.
  EXPECT_EQ(r->user_answers, r->user_updates);
}

TEST(RefineTest, StandardizationRepairsFormatErrors) {
  // A workload that is pure format errors: Refine fixes each pattern with
  // one update + one answer, so U is far below |errors|.
  auto ds = MakeSynth(1200);
  ASSERT_TRUE(ds.ok());
  ErrorSpec spec;
  spec.seed = 3;
  spec.num_format_patterns = 4;
  auto dirty = InjectErrors(ds->clean, spec);
  ASSERT_TRUE(dirty.ok());
  auto r = RunRefine(ds->clean, dirty->dirty);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->completed);
  EXPECT_LE(r->user_updates, 4u);
  EXPECT_GT(dirty->errors.size(), 8u);
}

TEST(RefineTest, RuleErrorsDefeatRefine) {
  // Rule-injected errors share no wrong value column-wide... they do share
  // the wrong value within a pattern, so Refine's standardization rule can
  // still fix a pattern IF the wrong value pins down the clean one. Either
  // way Refine never beats perfect knowledge: cost ≥ #patterns.
  Workload w = MakeWorkload(1200, 0);
  auto r = RunRefine(w.clean, w.dirty);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->completed);
  EXPECT_GE(r->TotalCost(), 12u);
}

TEST(RefineTransformsTest, FixesSyntacticColumnErrorsInOneShot) {
  // A column-wide case corruption: plain Refine needs one interaction per
  // cell (each wrong value is distinct), the transformation-aware variant
  // infers "uppercase" from the first repair and fixes the column at once.
  Table clean("t", Schema({"Id", "City"}));
  for (int i = 0; i < 60; ++i) {
    clean.AppendRow({"id" + std::to_string(i), "CITY " + std::to_string(i % 7)});
  }
  Table dirty = clean.Clone();
  for (size_t r = 0; r < dirty.num_rows(); ++r) {
    std::string lower = ToLower(dirty.CellText(r, 1));
    dirty.SetCellText(r, 1, lower);
  }
  size_t errors = dirty.CountDiffCells(clean);
  ASSERT_EQ(errors, 60u);

  auto with = RunRefineWithTransforms(clean, dirty);
  auto without = RunRefine(clean, dirty);
  ASSERT_TRUE(with.ok()) << with.status();
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(with->completed);
  EXPECT_EQ(with->cells_repaired, errors);
  // One update + one answer for the whole column, versus one
  // standardization rule per distinct wrong value (7 cities → 14
  // interactions) for plain Refine.
  EXPECT_LE(with->TotalCost(), 4u);
  EXPECT_GE(without->TotalCost(), 14u);
  EXPECT_LT(with->TotalCost(), without->TotalCost());
}

TEST(RefineTransformsTest, SubsumesStandardization) {
  // Format errors (one wrong spelling per clean value) are fixed by the
  // constant rewrite, so Refine+T is never worse than Refine there.
  auto ds = MakeSynth(1200);
  ASSERT_TRUE(ds.ok());
  ErrorSpec spec;
  spec.seed = 3;
  spec.num_format_patterns = 4;
  auto dirty = InjectErrors(ds->clean, spec);
  ASSERT_TRUE(dirty.ok());
  auto with = RunRefineWithTransforms(ds->clean, dirty->dirty);
  auto without = RunRefine(ds->clean, dirty->dirty);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(with->completed);
  EXPECT_LE(with->TotalCost(), without->TotalCost() + 4);
}

TEST(RuleLearningTest, RepairsComeFromMinedRules) {
  Workload w = MakeWorkload(1500, 0);
  RuleLearningOptions options;
  options.sample_rows = 400;
  options.miner.min_support = 4;
  auto r = RunRuleLearning(w.clean, w.dirty, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->cells_repaired, 0u);
  EXPECT_GT(r->user_answers, 0u);  // Rule validations.
  // Limited recall: typically some errors remain unrepaired.
  EXPECT_LE(r->cells_repaired, w.errors);
}

TEST(RuleLearningTest, InteractionCapReportsIncomplete) {
  Workload w = MakeWorkload(1500, 0);
  RuleLearningOptions options;
  options.sample_rows = 400;
  options.max_interactions = 10;
  auto r = RunRuleLearning(w.clean, w.dirty, options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->completed);
}

TEST(GdrTest, ConfirmsCellByCell) {
  Workload w = MakeWorkload(1500, 0);
  RuleLearningOptions options;
  options.sample_rows = 400;
  options.miner.min_support = 4;
  auto gdr = RunGdr(w.clean, w.dirty, options);
  auto rl = RunRuleLearning(w.clean, w.dirty, options);
  ASSERT_TRUE(gdr.ok()) << gdr.status();
  ASSERT_TRUE(rl.ok());
  // GDR pays one confirmation per suggested cell, so when the miners agree
  // its interaction cost is at least RuleLearning's.
  EXPECT_GE(gdr->TotalCost() + 5, rl->TotalCost());
  EXPECT_GT(gdr->cells_repaired, 0u);
}

TEST(GdrTest, NeverAppliesWrongSuggestions) {
  Workload w = MakeWorkload(1500, 0);
  RuleLearningOptions options;
  options.sample_rows = 300;
  auto r = RunGdr(w.clean, w.dirty, options);
  ASSERT_TRUE(r.ok());
  // cells_repaired counts only dirty→clean transitions; GDR must never
  // report more repairs than there were errors.
  EXPECT_LE(r->cells_repaired, w.errors);
}

TEST(ActiveLearningTest, RunsThroughSessionAndConverges) {
  Workload w = MakeWorkload(1000, 0);
  SessionOptions options;
  options.budget = 3;
  Table working = w.dirty.Clone();
  ActiveLearningSearch algo(/*bootstrap_sessions=*/5);
  CleaningSession session(&w.clean, &working, &algo, options);
  auto m = session.Run();
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->converged);
  EXPECT_GT(algo.training_examples(), 0u);
}

TEST(ActiveLearningTest, BootstrapPhaseUsesDucc) {
  // During bootstrap the algorithm must still respect the budget and make
  // progress (it behaves exactly like Ducc).
  Workload w = MakeWorkload(600, 0);
  SessionOptions options;
  options.budget = 2;
  Table working = w.dirty.Clone();
  ActiveLearningSearch algo(/*bootstrap_sessions=*/1000000);  // Never exits.
  CleaningSession session(&w.clean, &working, &algo, options);
  auto m = session.Run();
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->converged);
  EXPECT_LE(m->user_answers, m->user_updates * 2);
}

TEST(BaselineResultTest, BenefitArithmetic) {
  BaselineResult r;
  r.user_updates = 30;
  r.user_answers = 20;
  r.initial_errors = 100;
  EXPECT_EQ(r.TotalCost(), 50u);
  EXPECT_DOUBLE_EQ(r.Benefit(), 0.5);
}

}  // namespace
}  // namespace falcon
