#include "relational/sqlu.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"

namespace falcon {
namespace {

// The paper's queries Q3 / Q3' / Q3'' over T_drug (Example 1).
SqluQuery Q3() {
  SqluQuery q;
  q.table = "T_drug";
  q.set_attr = "Molecule";
  q.set_value = "C22H28F";
  q.where = {{"Molecule", "statin"}, {"Laboratory", "Austin"}};
  return q;
}

SqluQuery Q3Prime() {
  SqluQuery q = Q3();
  q.where = {{"Molecule", "statin"}};
  return q;
}

SqluQuery Q3DoublePrime() {
  SqluQuery q = Q3();
  q.where = {{"Molecule", "statin"},
             {"Laboratory", "Austin"},
             {"Date", "12 Nov"},
             {"Quantity", "200"}};
  return q;
}

TEST(SqluTest, ToSqlRendersConjunction) {
  EXPECT_EQ(Q3Prime().ToSql(),
            "UPDATE T_drug SET Molecule = 'C22H28F' WHERE Molecule = "
            "'statin';");
  SqluQuery empty_where = Q3();
  empty_where.where.clear();
  EXPECT_EQ(empty_where.ToSql(), "UPDATE T_drug SET Molecule = 'C22H28F';");
}

TEST(SqluTest, EqualityIsOrderInsensitive) {
  SqluQuery a = Q3();
  SqluQuery b = Q3();
  std::swap(b.where[0], b.where[1]);
  EXPECT_EQ(a, b);
}

TEST(SqluTest, ContainmentMatchesPaperExample2) {
  // Q3 ≤ Q3' and Q3'' ≤ Q3' and Q3'' ≤ Q3.
  EXPECT_TRUE(Contains(Q3Prime(), Q3()));
  EXPECT_TRUE(Contains(Q3Prime(), Q3DoublePrime()));
  EXPECT_TRUE(Contains(Q3(), Q3DoublePrime()));
  EXPECT_FALSE(Contains(Q3(), Q3Prime()));
  // Different SET clauses are incomparable.
  SqluQuery other = Q3();
  other.set_value = "x";
  EXPECT_FALSE(Contains(other, Q3()));
}

TEST(SqluTest, AffectedRowsMatchPaperExample) {
  DrugExample ex = MakeDrugExample();
  // Q3 affects t2 and t5 (rows 1 and 4).
  auto rows = AffectedRows(ex.dirty, Q3());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->ToVector(), (std::vector<uint32_t>{1, 4}));
  // Q3' additionally affects t4 (row 3).
  auto rows_p = AffectedRows(ex.dirty, Q3Prime());
  ASSERT_TRUE(rows_p.ok());
  EXPECT_EQ(rows_p->ToVector(), (std::vector<uint32_t>{1, 3, 4}));
  // Q3'' affects only t2.
  auto rows_pp = AffectedRows(ex.dirty, Q3DoublePrime());
  ASSERT_TRUE(rows_pp.ok());
  EXPECT_EQ(rows_pp->ToVector(), (std::vector<uint32_t>{1}));
}

TEST(SqluTest, AffectedRowsExcludesNoOps) {
  DrugExample ex = MakeDrugExample();
  // Setting Laboratory to Austin where Quantity=200: rows already Austin
  // are no-ops.
  SqluQuery q;
  q.table = "T_drug";
  q.set_attr = "Laboratory";
  q.set_value = "Austin";
  q.where = {{"Quantity", "200"}};
  auto rows = AffectedRows(ex.dirty, q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->ToVector(), (std::vector<uint32_t>{3}));  // Boston row.
}

TEST(SqluTest, UnknownAttributeFails) {
  DrugExample ex = MakeDrugExample();
  SqluQuery q = Q3();
  q.set_attr = "Nope";
  EXPECT_FALSE(AffectedRows(ex.dirty, q).ok());
  q = Q3();
  q.where.push_back({"Nope", "x"});
  EXPECT_FALSE(AffectedRows(ex.dirty, q).ok());
}

TEST(SqluTest, UnseenConstantMatchesNothing) {
  DrugExample ex = MakeDrugExample();
  SqluQuery q = Q3();
  q.where = {{"Laboratory", "Atlantis"}};
  auto rows = AffectedRows(ex.dirty, q);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->Empty());
}

TEST(SqluTest, ApplyQueryWritesAffectedRows) {
  DrugExample ex = MakeDrugExample();
  auto changed = ApplyQuery(ex.dirty, Q3());
  ASSERT_TRUE(changed.ok());
  EXPECT_EQ(*changed, 2u);
  EXPECT_EQ(ex.dirty.CellText(1, 1), "C22H28F");
  EXPECT_EQ(ex.dirty.CellText(4, 1), "C22H28F");
  // t4 (Boston statin) untouched.
  EXPECT_EQ(ex.dirty.CellText(3, 1), "statin");
  // Idempotent: re-applying changes nothing.
  auto again = ApplyQuery(ex.dirty, Q3());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST(SqluTest, ApplyIsDeterministicAcrossValidQueryOrder) {
  // Section 2.4: any execution order of valid queries yields the same
  // repair. Apply Q3 then Q3''; versus Q3'' then Q3.
  DrugExample a = MakeDrugExample();
  DrugExample b = MakeDrugExample();
  ASSERT_TRUE(ApplyQuery(a.dirty, Q3()).ok());
  ASSERT_TRUE(ApplyQuery(a.dirty, Q3DoublePrime()).ok());
  ASSERT_TRUE(ApplyQuery(b.dirty, Q3DoublePrime()).ok());
  ASSERT_TRUE(ApplyQuery(b.dirty, Q3()).ok());
  EXPECT_EQ(a.dirty.CountDiffCells(b.dirty), 0u);
}

}  // namespace
}  // namespace falcon
