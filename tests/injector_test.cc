#include "errorgen/injector.h"

#include <gtest/gtest.h>

#include "baselines/baseline_util.h"
#include "datagen/datasets.h"

namespace falcon {
namespace {

TEST(InjectorTest, RuleErrorsFormPatternGroups) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok()) << dirty.status();

  // Count errors per (source rule, pattern).
  std::map<std::pair<int, int>, size_t> groups;
  for (const ErrorCell& e : dirty->errors) {
    if (e.source == ErrorSource::kRule) {
      ++groups[{e.source_index, e.pattern_index}];
    }
  }
  EXPECT_EQ(groups.size(), 8u);  // Soccer: 8 patterns.
  for (const auto& [key, count] : groups) {
    EXPECT_GE(count, 2u);
    EXPECT_LE(count, 10u);
  }
}

TEST(InjectorTest, InjectedPatternQueryRepairsItsGroup) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());

  // Each recorded constant CFD must be semantically valid on the dirty
  // instance (it is the ground-truth repair for its pattern group).
  for (const ConstantCfd& cfd : dirty->injected_patterns) {
    SqluQuery q = cfd.ToQuery(dirty->dirty.name());
    auto valid = QueryValidAgainstClean(ds->clean, dirty->dirty, q);
    ASSERT_TRUE(valid.ok());
    EXPECT_TRUE(*valid) << cfd.ToString();
  }

  // Applying all pattern queries plus fixing random errors by hand yields
  // the clean instance.
  Table working = dirty->dirty.Clone();
  for (const ConstantCfd& cfd : dirty->injected_patterns) {
    ASSERT_TRUE(ApplyQuery(working, cfd.ToQuery(working.name())).ok());
  }
  for (const ErrorCell& e : dirty->errors) {
    if (e.source != ErrorSource::kRule) {
      working.set_cell(e.row, e.col, e.clean_value);
    }
  }
  EXPECT_EQ(working.CountDiffCells(ds->clean), 0u);
}

TEST(InjectorTest, FormatErrorsRewriteEveryOccurrence) {
  auto ds = MakeSynth(2000);
  ASSERT_TRUE(ds.ok());
  ErrorSpec spec;
  spec.seed = 5;
  spec.num_format_patterns = 3;
  auto dirty = InjectErrors(ds->clean, spec);
  ASSERT_TRUE(dirty.ok()) << dirty.status();

  std::map<int, std::pair<ValueId, ValueId>> patterns;  // idx -> (clean, dirty).
  for (const ErrorCell& e : dirty->errors) {
    ASSERT_EQ(e.source, ErrorSource::kFormat);
    auto [it, inserted] =
        patterns.try_emplace(e.source_index, e.clean_value, e.dirty_value);
    // One consistent rewrite per pattern.
    EXPECT_EQ(it->second.first, e.clean_value);
    EXPECT_EQ(it->second.second, e.dirty_value);
  }
  EXPECT_EQ(patterns.size(), 3u);
  // A standardization query per pattern fixes it entirely.
  for (const ErrorCell& e : dirty->errors) {
    SqluQuery q;
    q.table = dirty->dirty.name();
    q.set_attr = dirty->dirty.schema().attribute(e.col);
    q.set_value = std::string(ds->clean.pool()->Get(e.clean_value));
    q.where = {{q.set_attr,
                std::string(ds->clean.pool()->Get(e.dirty_value))}};
    auto valid = QueryValidAgainstClean(ds->clean, dirty->dirty, q);
    ASSERT_TRUE(valid.ok());
    EXPECT_TRUE(*valid);
  }
}

TEST(InjectorTest, RandomErrorsAreIndividual) {
  auto ds = MakeSynth(2000);
  ASSERT_TRUE(ds.ok());
  ErrorSpec spec;
  spec.seed = 6;
  spec.num_random_errors = 25;
  auto dirty = InjectErrors(ds->clean, spec);
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(dirty->errors.size(), 25u);
  EXPECT_EQ(dirty->dirty.CountDiffCells(ds->clean), 25u);
}

TEST(InjectorTest, DeterministicForSeed) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto a = InjectErrors(ds->clean, ds->error_spec);
  auto b = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->dirty.CountDiffCells(b->dirty), 0u);
  EXPECT_EQ(a->errors.size(), b->errors.size());
}

TEST(InjectorTest, FailsOnViolatedRule) {
  DrugExample ex = MakeDrugExample();
  ErrorSpec spec;
  RuleErrorSpec r;
  r.rule = FdRule{{"Molecule"}, "Laboratory"};  // Violated on T_drug.
  r.num_patterns = 1;
  spec.rule_errors = {r};
  EXPECT_FALSE(InjectErrors(ex.dirty, spec).ok());
}

TEST(InjectorTest, FailsOnUnknownAttribute) {
  DrugExample ex = MakeDrugExample();
  ErrorSpec spec;
  RuleErrorSpec r;
  r.rule = FdRule{{"Nope"}, "Laboratory"};
  spec.rule_errors = {r};
  EXPECT_FALSE(InjectErrors(ex.clean, spec).ok());
}

TEST(InjectorTest, FailsWhenNotEnoughGroups) {
  DrugExample ex = MakeDrugExample();
  ErrorSpec spec;
  RuleErrorSpec r;
  r.rule = FdRule{{"Molecule", "Laboratory"}, "Quantity"};
  r.num_patterns = 50;  // T_drug has only a handful of groups.
  spec.rule_errors = {r};
  EXPECT_FALSE(InjectErrors(ex.clean, spec).ok());
}

}  // namespace
}  // namespace falcon
