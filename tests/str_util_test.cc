#include "common/str_util.h"

#include <gtest/gtest.h>

namespace falcon {
namespace {

TEST(StrUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("UPDATE", "update"));
  EXPECT_TRUE(EqualsIgnoreCase("WhErE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("SET", "SETS"));
  EXPECT_FALSE(EqualsIgnoreCase("AND", "OR"));
}

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToUpper("abc1"), "ABC1");
  EXPECT_EQ(ToLower("ABC1"), "abc1");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("UPDATE T", "UPDATE"));
  EXPECT_FALSE(StartsWith("UP", "UPDATE"));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StrUtilTest, SqlQuoteEscapesEmbeddedQuotes) {
  EXPECT_EQ(SqlQuote("Austin"), "'Austin'");
  EXPECT_EQ(SqlQuote("O'Brien"), "'O''Brien'");
  EXPECT_EQ(SqlQuote(""), "''");
}

TEST(StrUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64(" 7 "), 7);
  EXPECT_EQ(ParseInt64("abc"), -1);
  EXPECT_EQ(ParseInt64(""), -1);
  EXPECT_EQ(ParseInt64("12x"), -1);
}

}  // namespace
}  // namespace falcon
