#include "profiling/correlation.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"

namespace falcon {
namespace {

// Columns of T_drug: 0=Date, 1=Molecule, 2=Laboratory, 3=Quantity.

TEST(CorrelationTest, ChiSquaredReproducesPaperExample7) {
  DrugExample ex = MakeDrugExample();
  // The paper computes chi^2 = 12.67 over the Molecule × Laboratory
  // contingency table of the dirty T_drug (Table 2).
  double chi2 = ChiSquared(ex.dirty, {1, 2});
  EXPECT_NEAR(chi2, 12.67, 0.01);
}

TEST(CorrelationTest, CorrelationScoreReproducesPaperExample7) {
  DrugExample ex = MakeDrugExample();
  CorrelationOptions options;
  options.soft_fd_threshold = 1.01;  // Disable the soft-FD fast path.
  double cor = CorrelationScore(ex.dirty, {1}, 2, options);
  EXPECT_NEAR(cor, 0.235, 0.001);
}

TEST(CorrelationTest, SoftFdScoresOne) {
  DrugExample ex = MakeDrugExample();
  // {Molecule, Laboratory} → Quantity holds exactly on the dirty table
  // (paper Example 7's given soft FD).
  EXPECT_DOUBLE_EQ(FdSupport(ex.dirty, {1, 2}, 3), 1.0);
  EXPECT_DOUBLE_EQ(CorrelationScore(ex.dirty, {1, 2}, 3), 1.0);
}

TEST(CorrelationTest, FdSupportBelowOneForNonFd) {
  DrugExample ex = MakeDrugExample();
  // Molecule alone does not determine Laboratory (statin maps to Austin
  // and Boston).
  EXPECT_LT(FdSupport(ex.dirty, {1}, 2), 1.0);
}

TEST(CorrelationTest, NullRowsAreIgnored) {
  Table t("t", Schema({"A", "B"}));
  t.AppendRow({"a1", "b1"});
  t.AppendRow({"a1", "b1"});
  t.AppendRow({"a2", "b2"});
  t.AppendRow({"", "b9"});   // NULL A.
  t.AppendRow({"a9", ""});   // NULL B.
  EXPECT_DOUBLE_EQ(FdSupport(t, {0}, 1), 1.0);
  EXPECT_DOUBLE_EQ(CorrelationScore(t, {0}, 1), 1.0);
}

TEST(CorrelationTest, IndependentAttributesScoreLow) {
  Table t("t", Schema({"A", "B"}));
  // Perfectly independent 2x2 design, 100 rows each combination.
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({"a0", "b0"});
    t.AppendRow({"a0", "b1"});
    t.AppendRow({"a1", "b0"});
    t.AppendRow({"a1", "b1"});
  }
  CorrelationOptions options;
  options.soft_fd_threshold = 1.01;
  EXPECT_NEAR(CorrelationScore(t, {0}, 1, options), 0.0, 1e-9);
}

TEST(CorrelationTest, PerfectDependenceScoresHigh) {
  Table t("t", Schema({"A", "B"}));
  for (int i = 0; i < 50; ++i) {
    t.AppendRow({"a" + std::to_string(i % 4), "b" + std::to_string(i % 4)});
  }
  CorrelationOptions options;
  options.soft_fd_threshold = 1.01;  // Force the chi^2 path.
  // With the paper's q-normalization, perfect m×m dependence scores
  // chi^2/(n*q) = n(m-1) / (n(m^2-2m+1)) = 1/(m-1): 1/3 for m = 4 —
  // well above the 0 an independent pair scores.
  EXPECT_NEAR(CorrelationScore(t, {0}, 1, options), 1.0 / 3.0, 0.02);
}

TEST(CordsProfilerTest, TopKRanksDeterminants) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok()) << ds.status();
  const Table& t = ds->clean;
  CordsProfiler profiler(&t);
  int stadium = t.schema().AttrIndex("Stadium");
  int club = t.schema().AttrIndex("Club");
  int position = t.schema().AttrIndex("Position");
  ASSERT_GE(stadium, 0);

  // Club determines Stadium, so Club must rank far above Position.
  std::vector<size_t> top =
      profiler.TopKAttributes(static_cast<size_t>(stadium), 6);
  auto rank = [&](int col) {
    for (size_t i = 0; i < top.size(); ++i) {
      if (top[i] == static_cast<size_t>(col)) return static_cast<int>(i);
    }
    return 1000;
  };
  EXPECT_LT(rank(club), rank(position));
  EXPECT_EQ(rank(stadium), 1000);  // Target never appears.
}

TEST(CordsProfilerTest, PairCorrelationIsCached) {
  DrugExample ex = MakeDrugExample();
  CordsProfiler profiler(&ex.dirty);
  double a = profiler.PairCorrelation(1, 2);
  double b = profiler.PairCorrelation(1, 2);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(CordsProfilerTest, SetCorrelationHandlesSets) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  const Table& t = ds->clean;
  CordsProfiler profiler(&t);
  size_t club = static_cast<size_t>(t.schema().AttrIndex("Club"));
  size_t pos = static_cast<size_t>(t.schema().AttrIndex("Position"));
  size_t pcountry =
      static_cast<size_t>(t.schema().AttrIndex("PlayerCountry"));
  // {Club, Position} → PlayerCountry is an exact FD of the generator.
  EXPECT_DOUBLE_EQ(profiler.SetCorrelation({club, pos}, pcountry), 1.0);
  // Position alone is far weaker.
  EXPECT_LT(profiler.PairCorrelation(pos, pcountry), 0.5);
}

TEST(CorrelationTest, SamplingStaysClose) {
  auto ds = MakeSynth(4000);
  ASSERT_TRUE(ds.ok());
  const Table& t = ds->clean;
  int a1 = t.schema().AttrIndex("A1");
  int a5 = t.schema().AttrIndex("A5");
  ASSERT_GE(a1, 0);
  ASSERT_GE(a5, 0);
  CorrelationOptions full;
  CorrelationOptions sampled;
  sampled.max_sample_rows = 1000;
  double f = CorrelationScore(t, {static_cast<size_t>(a1)},
                              static_cast<size_t>(a5), full);
  double s = CorrelationScore(t, {static_cast<size_t>(a1)},
                              static_cast<size_t>(a5), sampled);
  EXPECT_NEAR(f, s, 0.15);
}

}  // namespace
}  // namespace falcon
