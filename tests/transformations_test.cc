#include "transform/transformations.h"

#include <gtest/gtest.h>

namespace falcon {
namespace {

bool CanInfer(std::string_view before, std::string_view after,
              const std::string& name) {
  for (const auto& t : InferTransformations(before, after)) {
    if (t->name() == name) return true;
  }
  return false;
}

// First (most specific) inferred transformation.
std::unique_ptr<Transformation> Best(std::string_view before,
                                     std::string_view after) {
  auto ts = InferTransformations(before, after);
  return std::move(ts.front());
}

TEST(TransformationsTest, EveryCandidateReproducesTheExample) {
  const std::pair<const char*, const char*> cases[] = {
      {"new york", "NEW YORK"}, {"  Austin ", "Austin"},
      {"New_York", "New York"}, {"Dr. Smith", "Smith"},
      {"42", "42 kg"},          {"anything", "else entirely"},
  };
  for (const auto& [before, after] : cases) {
    auto ts = InferTransformations(before, after);
    ASSERT_FALSE(ts.empty());
    for (const auto& t : ts) {
      auto result = t->Apply(before);
      ASSERT_TRUE(result.has_value()) << t->name();
      EXPECT_EQ(*result, after) << t->name();
    }
  }
}

TEST(TransformationsTest, InfersCaseFolding) {
  EXPECT_TRUE(CanInfer("new york", "NEW YORK", "uppercase"));
  EXPECT_TRUE(CanInfer("NEW YORK", "new york", "lowercase"));
  EXPECT_TRUE(CanInfer("new york", "New York", "titlecase"));
}

TEST(TransformationsTest, InfersTrim) {
  EXPECT_TRUE(CanInfer("  Austin ", "Austin", "trim"));
}

TEST(TransformationsTest, InfersSeparatorSwap) {
  EXPECT_TRUE(CanInfer("New_York", "New York", "replace '_'->' '"));
  EXPECT_TRUE(CanInfer("2016-06-26", "2016/06/26", "replace '-'->'/'"));
}

TEST(TransformationsTest, InfersAffixEdits) {
  EXPECT_TRUE(CanInfer("Dr. Smith", "Smith", "strip prefix 'Dr. '"));
  EXPECT_TRUE(CanInfer("file.csv", "file", "strip suffix '.csv'"));
  EXPECT_TRUE(CanInfer("42", "42 kg", "add suffix ' kg'"));
  EXPECT_TRUE(CanInfer("42", "$42", "add prefix '$'"));
}

TEST(TransformationsTest, ConstantIsAlwaysLastResort) {
  auto ts = InferTransformations("abc", "xyz");
  ASSERT_FALSE(ts.empty());
  EXPECT_EQ(ts.back()->name(), "constant 'abc'->'xyz'");
  // Constant applies only to the exact source string.
  EXPECT_FALSE(ts.back()->Apply("abd").has_value());
}

TEST(TransformationsTest, GeneralizationBeyondTheExample) {
  // A transformation learned from one pair rewrites other values too.
  auto upper = Best("new york", "NEW YORK");
  EXPECT_EQ(*upper->Apply("boston"), "BOSTON");
  auto sep = Best("New_York", "New York");
  EXPECT_EQ(*sep->Apply("Los_Angeles"), "Los Angeles");
}

TEST(TransformationsTest, ApplyToColumnRewritesAllApplicable) {
  Table t("t", Schema({"City"}));
  t.AppendRow({"new_york"});
  t.AppendRow({"los_angeles"});
  t.AppendRow({"boston"});  // No separator: unchanged.
  auto sep = Best("new_york", "new york");
  TransformOutcome outcome = ApplyToColumn(t, 0, *sep);
  EXPECT_EQ(outcome.cells_changed, 2u);
  EXPECT_EQ(outcome.cells_unchanged, 1u);
  EXPECT_EQ(t.CellText(0, 0), "new york");
  EXPECT_EQ(t.CellText(1, 0), "los angeles");
  EXPECT_EQ(t.CellText(2, 0), "boston");
}

TEST(TransformationsTest, ApplyToColumnCountsInapplicable) {
  Table t("t", Schema({"Name"}));
  t.AppendRow({"Dr. Who"});
  t.AppendRow({"Smith"});
  auto strip = Best("Dr. Who", "Who");
  TransformOutcome outcome = ApplyToColumn(t, 0, *strip);
  EXPECT_EQ(outcome.cells_changed, 1u);
  EXPECT_EQ(outcome.cells_inapplicable, 1u);
  EXPECT_EQ(t.CellText(1, 0), "Smith");
}

}  // namespace
}  // namespace falcon
