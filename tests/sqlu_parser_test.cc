#include "relational/sqlu_parser.h"

#include <gtest/gtest.h>

namespace falcon {
namespace {

TEST(SqluParserTest, ParsesSimpleUpdate) {
  auto q = ParseSqlu("UPDATE T SET A = 'x';");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->table, "T");
  EXPECT_EQ(q->set_attr, "A");
  EXPECT_EQ(q->set_value, "x");
  EXPECT_TRUE(q->where.empty());
}

TEST(SqluParserTest, ParsesConjunctiveWhere) {
  auto q = ParseSqlu(
      "UPDATE T_drug SET Molecule = 'C22H28F' "
      "WHERE Molecule = 'statin' AND Laboratory = 'Austin';");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->where.size(), 2u);
  EXPECT_EQ(q->where[0].attr, "Molecule");
  EXPECT_EQ(q->where[0].value, "statin");
  EXPECT_EQ(q->where[1].attr, "Laboratory");
  EXPECT_EQ(q->where[1].value, "Austin");
}

TEST(SqluParserTest, KeywordsAreCaseInsensitive) {
  auto q = ParseSqlu("update T set A = 'x' where B = 'y'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->where.size(), 1u);
}

TEST(SqluParserTest, UnquotedAndNumericLiterals) {
  auto q = ParseSqlu("UPDATE T SET Quantity = 100 WHERE Quantity = 1000");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->set_value, "100");
  EXPECT_EQ(q->where[0].value, "1000");
}

TEST(SqluParserTest, DoubleQuotedStrings) {
  auto q = ParseSqlu("UPDATE T SET L = \"New York\" WHERE L = \"N.Y.\"");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->set_value, "New York");
  EXPECT_EQ(q->where[0].value, "N.Y.");
}

TEST(SqluParserTest, EscapedSingleQuote) {
  auto q = ParseSqlu("UPDATE T SET A = 'O''Brien'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->set_value, "O'Brien");
}

TEST(SqluParserTest, EmptyQuotedValueAllowed) {
  auto q = ParseSqlu("UPDATE T SET A = '' WHERE B = 'x'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->set_value, "");
}

TEST(SqluParserTest, RoundTripsThroughToSql) {
  std::string sql =
      "UPDATE T SET A = 'new val' WHERE B = 'b v' AND C = 'c';";
  auto q = ParseSqlu(sql);
  ASSERT_TRUE(q.ok()) << q.status();
  auto q2 = ParseSqlu(q->ToSql());
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_EQ(*q, *q2);
}

TEST(SqluParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseSqlu("SELECT * FROM T").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T A = 'x'").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A 'x'").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = 'x' WHERE").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = 'x' WHERE B = 'y' AND").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = 'x' WHERE B = 'y' OR C = 'z'").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = 'unterminated").ok());
  EXPECT_FALSE(ParseSqlu("").ok());
}

TEST(SqluParserTest, RejectsSeparatorTokensAsValues) {
  // A bare '=' (or ';' / ',') is a separator, never a literal or identifier.
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = =").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = ,").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = ;").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE = SET A = 'x'").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET = = 'x'").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = 'x' WHERE = = 'y'").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = 'x' WHERE B = =").ok());
  // A *quoted* separator character is a perfectly fine literal.
  auto q = ParseSqlu("UPDATE T SET A = '=' WHERE B = ';'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->set_value, "=");
  EXPECT_EQ(q->where[0].value, ";");
}

TEST(SqluParserTest, RejectsTrailingGarbageAfterSemicolon) {
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = 'x'; DROP TABLE T").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = 'x' WHERE B = 'y'; extra").ok());
  EXPECT_FALSE(ParseSqlu("UPDATE T SET A = 'x';;").ok());
  // Trailing whitespace after ';' stays fine.
  EXPECT_TRUE(ParseSqlu("UPDATE T SET A = 'x';   \n").ok());
}

TEST(SqluParserTest, ErrorsCarryByteOffsets) {
  auto r = ParseSqlu("UPDATE T SET A = 'x' WHERE B = 'y' OR C = 'z'");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // "OR" starts at byte 35; the message names the offset and the token.
  EXPECT_NE(r.status().message().find("offset 35"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("'OR'"), std::string::npos)
      << r.status().message();

  auto unterminated = ParseSqlu("UPDATE T SET A = 'oops");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("offset 17"),
            std::string::npos)
      << unterminated.status().message();
}

}  // namespace
}  // namespace falcon
