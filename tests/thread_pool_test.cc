#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace falcon {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsEverythingOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(10'000);
  pool.ParallelFor(hits.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, MinGrainKeepsSmallInputsInline) {
  ThreadPool pool(4);
  // A range below min_grain must execute as one shard (single callback).
  std::atomic<int> calls{0};
  pool.ParallelFor(100, 1000, [&](size_t b, size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 100u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, RepeatedBatchesReuseWorkers) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(1000, 10, [&](size_t b, size_t e) {
      size_t local = 0;
      for (size_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParseThreadCountAcceptsSaneValues) {
  auto one = ParseThreadCount("1");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, 1u);
  auto eight = ParseThreadCount(" 8 ");
  ASSERT_TRUE(eight.ok());
  EXPECT_EQ(*eight, 8u);
}

TEST(ThreadPoolTest, ParseThreadCountRejectsGarbage) {
  // The FALCON_THREADS env var is parsed with this: garbage must produce a
  // diagnostic, not a silently-truncated thread count ("8x" -> 8).
  for (const char* bad : {"", "abc", "8x", "0", "-2", "1.5", "1e3",
                          "999999999999999999999", "7 7"}) {
    auto r = ParseThreadCount(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_FALSE(r.status().message().empty()) << bad;
  }
  // Absurdly large (but parseable) counts are capped out as invalid too.
  EXPECT_FALSE(ParseThreadCount("100000").ok());
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Regression: a shard calling ParallelFor on the same pool used to be
  // able to deadlock — every worker blocked waiting for shards only a
  // worker could run. The outer caller and busy workers must help drain
  // the queue instead of parking.
  ThreadPool pool(2);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(8, 1, [&](size_t ob, size_t oe) {
    for (size_t o = ob; o < oe; ++o) {
      pool.ParallelFor(100, 1, [&](size_t b, size_t e) {
        inner_total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8u * 100u);
}

TEST(ThreadPoolTest, DeeplyNestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<size_t> leaves{0};
  pool.ParallelFor(4, 1, [&](size_t b1, size_t e1) {
    for (size_t i = b1; i < e1; ++i) {
      pool.ParallelFor(4, 1, [&](size_t b2, size_t e2) {
        for (size_t j = b2; j < e2; ++j) {
          pool.ParallelFor(4, 1, [&](size_t b3, size_t e3) {
            leaves.fetch_add(e3 - b3);
          });
        }
      });
    }
  });
  EXPECT_EQ(leaves.load(), 4u * 4u * 4u);
}

TEST(ThreadPoolTest, ConcurrentCallersFromManyThreads) {
  // Several service sessions issue parallel kernels against the one global
  // pool simultaneously; each call must retire exactly its own shards.
  ThreadPool pool(3);
  constexpr size_t kCallers = 6;
  constexpr size_t kRounds = 25;
  std::vector<std::thread> callers;
  std::atomic<size_t> failures{0};
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (size_t r = 0; r < kRounds; ++r) {
        const size_t n = 500 + 37 * c + r;
        std::atomic<size_t> covered{0};
        pool.ParallelFor(n, 8, [&](size_t b, size_t e) {
          covered.fetch_add(e - b);
        });
        if (covered.load() != n) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(ThreadPoolTest, ConcurrentCallersWithNesting) {
  // The worst case the service hits in practice: concurrent outer calls
  // whose shards themselves fan out on the same pool.
  ThreadPool pool(2);
  std::vector<std::thread> callers;
  std::atomic<size_t> total{0};
  for (size_t c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      pool.ParallelFor(4, 1, [&](size_t ob, size_t oe) {
        for (size_t o = ob; o < oe; ++o) {
          pool.ParallelFor(64, 1, [&](size_t b, size_t e) {
            total.fetch_add(e - b);
          });
        }
      });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4u * 4u * 64u);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<size_t> count{0};
  ThreadPool::Global().ParallelFor(1'000, 1, [&](size_t b, size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 1'000u);
}

}  // namespace
}  // namespace falcon
