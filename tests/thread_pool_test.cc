#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace falcon {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsEverythingOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(10'000);
  pool.ParallelFor(hits.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, MinGrainKeepsSmallInputsInline) {
  ThreadPool pool(4);
  // A range below min_grain must execute as one shard (single callback).
  std::atomic<int> calls{0};
  pool.ParallelFor(100, 1000, [&](size_t b, size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 100u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, RepeatedBatchesReuseWorkers) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(1000, 10, [&](size_t b, size_t e) {
      size_t local = 0;
      for (size_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParseThreadCountAcceptsSaneValues) {
  auto one = ParseThreadCount("1");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, 1u);
  auto eight = ParseThreadCount(" 8 ");
  ASSERT_TRUE(eight.ok());
  EXPECT_EQ(*eight, 8u);
}

TEST(ThreadPoolTest, ParseThreadCountRejectsGarbage) {
  // The FALCON_THREADS env var is parsed with this: garbage must produce a
  // diagnostic, not a silently-truncated thread count ("8x" -> 8).
  for (const char* bad : {"", "abc", "8x", "0", "-2", "1.5", "1e3",
                          "999999999999999999999", "7 7"}) {
    auto r = ParseThreadCount(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_FALSE(r.status().message().empty()) << bad;
  }
  // Absurdly large (but parseable) counts are capped out as invalid too.
  EXPECT_FALSE(ParseThreadCount("100000").ok());
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<size_t> count{0};
  ThreadPool::Global().ParallelFor(1'000, 1, [&](size_t b, size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 1'000u);
}

}  // namespace
}  // namespace falcon
