#include "baselines/cfd_miner.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"

namespace falcon {
namespace {

Table ZipTable() {
  Table t("t", Schema({"Zip", "City", "State"}));
  for (int i = 0; i < 10; ++i) t.AppendRow({"10001", "NYC", "NY"});
  for (int i = 0; i < 8; ++i) t.AppendRow({"02139", "Cambridge", "MA"});
  for (int i = 0; i < 3; ++i) t.AppendRow({"94301", "Palo Alto", "CA"});
  return t;
}

bool HasRule(const std::vector<ConstantCfd>& rules, const std::string& text) {
  for (const ConstantCfd& r : rules) {
    if (r.ToString() == text) return true;
  }
  return false;
}

TEST(CfdMinerTest, MinesSupportedPatterns) {
  CfdMinerOptions options;
  options.min_support = 5;
  std::vector<ConstantCfd> rules = MineConstantCfds(ZipTable(), options);
  EXPECT_TRUE(HasRule(rules, "(Zip=10001) -> State=NY"));
  EXPECT_TRUE(HasRule(rules, "(Zip=10001) -> City=NYC"));
  EXPECT_TRUE(HasRule(rules, "(Zip=02139) -> State=MA"));
  // Below support: the CA group has only 3 rows.
  EXPECT_FALSE(HasRule(rules, "(Zip=94301) -> State=CA"));
}

TEST(CfdMinerTest, SupportThresholdFilters) {
  CfdMinerOptions options;
  options.min_support = 3;
  std::vector<ConstantCfd> rules = MineConstantCfds(ZipTable(), options);
  EXPECT_TRUE(HasRule(rules, "(Zip=94301) -> State=CA"));
}

TEST(CfdMinerTest, SuppressesDominatedPairPatterns) {
  CfdMinerOptions options;
  options.min_support = 5;
  options.max_lhs = 2;
  std::vector<ConstantCfd> rules = MineConstantCfds(ZipTable(), options);
  // (Zip=10001, City=NYC) -> State=NY is implied by (Zip=10001) -> State=NY.
  EXPECT_FALSE(HasRule(rules, "(Zip=10001, City=NYC) -> State=NY"));
}

TEST(CfdMinerTest, OrderedBySupportDescending) {
  CfdMinerOptions options;
  options.min_support = 3;
  std::vector<ConstantCfd> rules = MineConstantCfds(ZipTable(), options);
  ASSERT_FALSE(rules.empty());
  // The most supported patterns involve Zip=10001 (10 rows).
  EXPECT_NE(rules[0].ToString().find("10001"), std::string::npos);
}

TEST(CfdMinerTest, MaxRulesCaps) {
  auto ds = MakeSynth(800);
  ASSERT_TRUE(ds.ok());
  CfdMinerOptions options;
  options.min_support = 3;
  options.max_rules = 25;
  std::vector<ConstantCfd> rules = MineConstantCfds(ds->clean, options);
  EXPECT_LE(rules.size(), 25u);
  EXPECT_GT(rules.size(), 0u);
}

TEST(CfdMinerTest, NullValuesNeverFormPatterns) {
  Table t("t", Schema({"A", "B"}));
  for (int i = 0; i < 10; ++i) t.AppendRow({"", "b"});
  std::vector<ConstantCfd> rules = MineConstantCfds(t, {});
  EXPECT_TRUE(rules.empty());
}

TEST(CfdMinerTest, MinedRulesHoldOnTheSample) {
  auto ds = MakeSynth(600);
  ASSERT_TRUE(ds.ok());
  CfdMinerOptions options;
  options.min_support = 4;
  options.max_rules = 200;
  std::vector<ConstantCfd> rules = MineConstantCfds(ds->clean, options);
  ASSERT_GT(rules.size(), 0u);
  for (const ConstantCfd& cfd : rules) {
    // Confidence 1 on the sample: matching rows all carry the RHS value —
    // so applying the rule to the sample changes nothing.
    Table copy = ds->clean.Clone();
    auto changed = ApplyQuery(copy, cfd.ToQuery("t"));
    ASSERT_TRUE(changed.ok());
    EXPECT_EQ(*changed, 0u) << cfd.ToString();
  }
}

}  // namespace
}  // namespace falcon
