#include "common/status.h"

#include <gtest/gtest.h>

namespace falcon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad column");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, DeadlineExceededIsTypedAndNotTransient) {
  Status s = Status::DeadlineExceeded("read deadline of 60000 ms exceeded");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(),
            "DEADLINE_EXCEEDED: read deadline of 60000 ms exceeded");
  // A deadline is a terminal verdict on THIS attempt, not a server-load
  // signal: retry decisions belong to the caller (the resilient client
  // reconnects), not to blanket IsTransient() backoff loops.
  EXPECT_FALSE(s.IsTransient());
  EXPECT_TRUE(Status::Unavailable("overloaded").IsTransient());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Status UseAssignOrReturn(int x, int* out) {
  FALCON_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  *out = doubled;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseAssignOrReturn(-5, &out).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace falcon
