// Universe growth for streaming append: RowSet/CompressedRowSet/
// HybridRowSet::Resize semantics (and the mismatched-universe guard rails),
// deterministic parallel posting builds, PostingIndex::ApplyAppend vs
// rebuild, Lattice::ApplyAppend vs a fresh build over the grown table, and
// the incremental violation detector vs its one-shot ground truth.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/compressed_row_set.h"
#include "common/hybrid_row_set.h"
#include "common/row_set.h"
#include "common/thread_pool.h"
#include "core/lattice.h"
#include "core/violation_detector.h"
#include "datagen/spec.h"
#include "relational/posting_index.h"

namespace falcon {
namespace {

// ---------------------------------------------------------------------------
// Bitmap universe growth.

TEST(RowSetResizeTest, PreservesBitsAndClearsNewRows) {
  RowSet s(100);
  s.Set(0);
  s.Set(63);
  s.Set(64);
  s.Set(99);
  s.Resize(300);
  EXPECT_EQ(s.universe_size(), 300u);
  EXPECT_EQ(s.Count(), 4u);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(63));
  EXPECT_TRUE(s.Test(64));
  EXPECT_TRUE(s.Test(99));
  for (size_t r = 100; r < 300; ++r) {
    ASSERT_FALSE(s.Test(r)) << r;
  }
  // New rows are usable immediately.
  s.Set(250);
  EXPECT_EQ(s.Count(), 5u);
  // Complement respects the grown universe (tail bits stay trimmed).
  EXPECT_EQ(s.Complement().Count(), 295u);
}

TEST(RowSetResizeTest, SameSizeResizeIsANoOp) {
  RowSet s(70);
  s.Set(69);
  s.Resize(70);
  EXPECT_EQ(s.universe_size(), 70u);
  EXPECT_TRUE(s.Test(69));
}

TEST(RowSetResizeTest, GrownOperandsCombine) {
  RowSet a(50), b(50);
  a.Set(7);
  b.Set(7);
  b.Set(13);
  a.Resize(200);
  b.Resize(200);
  a.Set(150);
  b.Set(150);
  a.And(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_TRUE(a.Test(7));
  EXPECT_TRUE(a.Test(150));
}

TEST(CompressedRowSetResizeTest, PreservesBitsAndClearsNewRows) {
  CompressedRowSet s(70000);
  s.Set(1);
  s.Set(65536);  // Second container.
  s.Resize(200000);
  EXPECT_EQ(s.universe_size(), 200000u);
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_TRUE(s.Test(1));
  EXPECT_TRUE(s.Test(65536));
  EXPECT_FALSE(s.Test(199999));
  s.Set(150000);
  EXPECT_EQ(s.Count(), 3u);
  EXPECT_EQ(s.Complement().Count(), 200000u - 3u);
}

TEST(HybridRowSetResizeTest, GrowsWhicheverRepresentationIsActive) {
  // Dense-side growth.
  HybridRowSet dense(1000);
  dense.Set(5);
  dense.Resize(5000);
  EXPECT_FALSE(dense.compressed());
  EXPECT_EQ(dense.universe_size(), 5000u);
  EXPECT_TRUE(dense.Test(5));
  EXPECT_EQ(dense.Count(), 1u);

  // Compressed-side growth: a sparse set over a big universe compacts,
  // then grows while staying compressed.
  HybridRowSet sparse(1 << 16);
  sparse.Set(3);
  sparse.Set(40000);
  sparse.Compact();
  ASSERT_TRUE(sparse.compressed());
  sparse.Resize(1 << 18);
  EXPECT_TRUE(sparse.compressed());
  EXPECT_EQ(sparse.universe_size(), size_t{1} << 18);
  EXPECT_TRUE(sparse.Test(3));
  EXPECT_TRUE(sparse.Test(40000));
  EXPECT_EQ(sparse.Count(), 2u);
}

// FALCON_DCHECK is compiled out under NDEBUG, so the guard-rail death
// tests only exist in debug builds.
#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(RowSetResizeDeathTest, MismatchedUniverseOpsAbort) {
  RowSet grown(64), stale(64);
  grown.Resize(128);
  EXPECT_DEATH(grown.And(stale), "universe");
  EXPECT_DEATH(grown.Or(stale), "universe");
  EXPECT_DEATH(grown.AndNot(stale), "universe");
}

TEST(RowSetResizeDeathTest, ShrinkingAborts) {
  RowSet s(128);
  EXPECT_DEATH(s.Resize(64), "");
}
#endif  // !NDEBUG && GTEST_HAS_DEATH_TEST

// ---------------------------------------------------------------------------
// Posting index: parallel builds and append maintenance.

constexpr char kSpecJson[] = R"({
  "name": "t", "seed": 17, "rows": 3000,
  "fields": [
    {"name": "id",    "dist": "unique",  "prefix": "R"},
    {"name": "city",  "dist": "zipf",    "domain": 20, "skew": 1.0,
     "prefix": "C"},
    {"name": "state", "dist": "derived", "parents": ["city"], "domain": 6,
     "prefix": "S"},
    {"name": "zip",   "dist": "uniform", "domain": 25, "prefix": "Z"}
  ],
  "append": {"batches": 3, "rows_per_batch": 500, "error_rate": 0.0}
})";

struct SpecTable {
  SpecGenerator gen;
  Table table;
};

SpecTable MakeSpecTable(size_t rows = 0) {
  auto spec = GeneratorSpec::Parse(kSpecJson);
  EXPECT_TRUE(spec.ok());
  auto gen = SpecGenerator::Make(*spec);
  EXPECT_TRUE(gen.ok());
  Table table = gen->NewTable();
  EXPECT_TRUE(gen->AppendRows(&table, rows == 0 ? spec->rows : rows).ok());
  return {*gen, std::move(table)};
}

// Bounded-domain columns of the spec table (everything but the key).
const std::vector<size_t> kBounded = {1, 2, 3};

// Canonical digest over cached postings: (col, value, row stream) → FNV.
uint64_t PostingDigest(PostingIndex& index, const Table& table) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  for (size_t c : kBounded) {
    std::set<ValueId> values(table.column(c).begin(), table.column(c).end());
    for (ValueId v : values) {
      mix(c);
      mix(v);
      index.Postings(c, v).ForEach([&](size_t r) { mix(r + 0x9e3779b9ull); });
    }
  }
  return h;
}

TEST(PostingBuildTest, ParallelBuildMatchesSerialAtEveryThreadCount) {
  SpecTable st = MakeSpecTable();
  PostingIndex serial(&st.table, PostingIndexOptions{});
  for (size_t c : kBounded) serial.BuildColumn(c);
  uint64_t want = PostingDigest(serial, st.table);
  for (size_t threads : {size_t{2}, size_t{3}, size_t{8}}) {
    ThreadPool tp(threads);
    PostingIndex parallel(&st.table, PostingIndexOptions{});
    for (size_t c : kBounded) parallel.BuildColumn(c, &tp);
    EXPECT_EQ(PostingDigest(parallel, st.table), want) << threads;
  }
  // And both match the lazy per-probe path.
  PostingIndex lazy(&st.table, PostingIndexOptions{});
  EXPECT_EQ(PostingDigest(lazy, st.table), want);
}

TEST(PostingBuildTest, CompressedBuildIsBitIdentical) {
  SpecTable st = MakeSpecTable();
  PostingIndexOptions dense_opts;
  PostingIndexOptions comp_opts;
  comp_opts.compressed = true;
  PostingIndex dense(&st.table, dense_opts);
  PostingIndex comp(&st.table, comp_opts);
  ThreadPool tp(2);
  for (size_t c : kBounded) {
    dense.BuildColumn(c);
    comp.BuildColumn(c, &tp);
  }
  EXPECT_EQ(PostingDigest(dense, st.table), PostingDigest(comp, st.table));
}

TEST(PostingAppendTest, ApplyAppendMatchesRebuildOnGrownTable) {
  for (bool compressed : {false, true}) {
    SpecTable st = MakeSpecTable();
    PostingIndexOptions opts;
    opts.compressed = compressed;
    PostingIndex index(&st.table, opts);
    for (size_t c : kBounded) index.BuildColumn(c);

    // Grow by three batches, maintaining after each.
    for (int b = 0; b < 3; ++b) {
      size_t old_rows = st.table.num_rows();
      auto chunk = st.gen.Chunk(old_rows, 500);
      ASSERT_TRUE(chunk.ok());
      st.table.AppendBatch(*chunk);
      index.ApplyAppend(old_rows);
      ASSERT_GT(index.stats().append_rows, 0u);
    }

    PostingIndex rebuilt(&st.table, opts);
    for (size_t c : kBounded) rebuilt.BuildColumn(c);
    EXPECT_EQ(PostingDigest(index, st.table), PostingDigest(rebuilt, st.table))
        << "compressed=" << compressed;

    // Universe bookkeeping: every maintained posting covers the grown
    // table.
    EXPECT_EQ(index.Postings(1, st.table.cell(0, 1)).universe_size(),
              st.table.num_rows());
  }
}

// ---------------------------------------------------------------------------
// Lattice append maintenance.

TEST(LatticeAppendTest, ApplyAppendMatchesFreshBuildOverGrownTable) {
  SpecTable st = MakeSpecTable();
  Repair repair{/*row=*/0, /*col=*/2,
                std::string(st.table.pool()->Get(st.table.cell(1, 2)))};
  std::vector<size_t> candidates = {1, 3};

  for (bool lazy : {true, false}) {
    SpecTable grown = MakeSpecTable();
    LatticeOptions options;
    options.lazy = lazy;
    auto lattice = Lattice::Build(grown.table, repair, candidates, options);
    ASSERT_TRUE(lattice.ok()) << lattice.status().message();
    // Materialize a mix of state before the append: full bitmaps for some
    // nodes, count-only state for others.
    lattice->AffectedRows(lattice->bottom());
    lattice->AffectedRows(lattice->top());
    lattice->Count(1);
    lattice->Count(lattice->num_nodes() - 2);

    size_t old_rows = grown.table.num_rows();
    auto chunk = grown.gen.Chunk(old_rows, 500);
    ASSERT_TRUE(chunk.ok());
    grown.table.AppendBatch(*chunk);
    lattice->ApplyAppend(grown.table);

    auto fresh = Lattice::Build(grown.table, repair, candidates, options);
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(lattice->num_nodes(), fresh->num_nodes());
    for (NodeId n = 0; n < lattice->num_nodes(); ++n) {
      EXPECT_EQ(lattice->Count(n), fresh->Count(n)) << "node " << n;
      EXPECT_TRUE(lattice->AffectedRows(n) == fresh->AffectedRows(n))
          << "node " << n;
      EXPECT_EQ(lattice->AffectedRows(n).universe_size(),
                grown.table.num_rows());
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental violation detection.

TEST(IncrementalDetectorTest, AppendMatchesOneShotDetection) {
  // Generate a table with real FD structure, corrupt appended batches so
  // the groups actually gain violations.
  auto spec = GeneratorSpec::Parse(kSpecJson);
  ASSERT_TRUE(spec.ok());
  GeneratorSpec s = *spec;
  s.append.error_rate = 0.01;
  auto sw = MakeSpecWorkload(s);
  ASSERT_TRUE(sw.ok());
  Table table = sw->workload.dirty.Clone();

  IncrementalViolationDetector detector;
  detector.Full(table);
  ASSERT_FALSE(detector.fds().empty());

  for (int b = 0; b < 3; ++b) {
    size_t old_rows = table.num_rows();
    auto chunk = sw->generator.AppendBatchChunk(old_rows, 500);
    ASSERT_TRUE(chunk.ok());
    table.AppendBatch(chunk->dirty);
    const ViolationReport& got = detector.ApplyAppend(table, old_rows);

    ViolationReport want = DetectWithFds(table, detector.fds());
    ASSERT_EQ(got.suspects.size(), want.suspects.size()) << "batch " << b;
    for (size_t i = 0; i < got.suspects.size(); ++i) {
      const Suspect& g = got.suspects[i];
      const Suspect& w = want.suspects[i];
      EXPECT_EQ(g.row, w.row);
      EXPECT_EQ(g.col, w.col);
      EXPECT_EQ(g.current, w.current);
      EXPECT_EQ(g.suggested, w.suggested);
      EXPECT_EQ(g.fd_index, w.fd_index);
      EXPECT_EQ(g.blame, w.blame);
      EXPECT_DOUBLE_EQ(g.consensus, w.consensus);
    }
  }
}

}  // namespace
}  // namespace falcon
