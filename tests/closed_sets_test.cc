#include <gtest/gtest.h>

#include <bit>

#include "core/lattice.h"
#include "datagen/datasets.h"

namespace falcon {
namespace {

// Same lattice as lattice_test: Δ3 over T_drug, bits 0=Molecule, 1=Date,
// 2=Laboratory, 3=Quantity.
StatusOr<Lattice> DrugLattice(const Table& dirty) {
  return Lattice::Build(dirty, Repair{1, 1, "C22H28F"}, {0, 2, 3});
}

NodeId MaskOf(const Lattice& lat, std::initializer_list<const char*> attrs) {
  NodeId m = 0;
  for (const char* a : attrs) {
    for (size_t i = 0; i < lat.num_attrs(); ++i) {
      if (lat.attr_name(i) == a) {
        m |= NodeId{1} << i;
        break;
      }
    }
  }
  return m;
}

TEST(ClosedSetsTest, PaperExample10Groups) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());

  // {DMQ, DM, DQ} repair the same tuples {t2, t4} — one closed set with
  // representative DMQ.
  NodeId dm = MaskOf(*lat, {"Date", "Molecule"});
  NodeId dq = MaskOf(*lat, {"Date", "Quantity"});
  NodeId dmq = MaskOf(*lat, {"Date", "Molecule", "Quantity"});
  EXPECT_EQ(lat->Representative(dm), dmq);
  EXPECT_EQ(lat->Representative(dq), dmq);
  EXPECT_EQ(lat->Representative(dmq), dmq);

  // {DL, DML, DLQ, DMLQ} all affect exactly {t2} — representative DMLQ.
  NodeId dl = MaskOf(*lat, {"Date", "Laboratory"});
  NodeId dmlq = lat->top();
  EXPECT_EQ(lat->Representative(dl), dmlq);
  EXPECT_EQ(lat->Representative(MaskOf(*lat, {"Date", "Molecule",
                                              "Laboratory"})), dmlq);
  EXPECT_EQ(lat->Representative(MaskOf(*lat, {"Date", "Laboratory",
                                              "Quantity"})), dmlq);
}

TEST(ClosedSetsTest, DistinctSetsStaySeparate) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  NodeId m = MaskOf(*lat, {"Molecule"});
  NodeId ml = MaskOf(*lat, {"Molecule", "Laboratory"});
  // M affects {t2,t4,t5}, ML affects {t2,t5}: different closed sets.
  EXPECT_NE(lat->Representative(m), lat->Representative(ml));
}

TEST(ClosedSetsTest, RepresentativeHasIdenticalAffectedSet) {
  auto ds = MakeSynth(1200);
  ASSERT_TRUE(ds.ok());
  auto dirty_inst = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty_inst.ok());
  Table dirty = dirty_inst->dirty.Clone();
  const ErrorCell& e = dirty_inst->errors.front();
  std::vector<size_t> cols;
  for (size_t c = 0; c < dirty.num_cols() && cols.size() < 6; ++c) {
    if (c != e.col) cols.push_back(c);
  }
  auto lat = Lattice::Build(
      dirty, Repair{e.row, e.col,
                    std::string(ds->clean.pool()->Get(e.clean_value))},
      cols);
  ASSERT_TRUE(lat.ok());

  for (NodeId m = 0; m < lat->num_nodes(); ++m) {
    NodeId rep = lat->Representative(m);
    // Same affected set, and the representative is the most specific.
    EXPECT_EQ(lat->affected(m), lat->affected(rep));
    EXPECT_GE(std::popcount(rep), std::popcount(m));
    // Representative is a fixed point.
    EXPECT_EQ(lat->Representative(rep), rep);
    // The class is closed under union: rep contains m's attributes.
    EXPECT_EQ(rep & m, m);
  }
}

TEST(ClosedSetsTest, GroupsRefreshAfterApply) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  auto lat = DrugLattice(dirty);
  ASSERT_TRUE(lat.ok());
  size_t before = lat->NumClosedSets();
  EXPECT_GT(before, 1u);

  lat->ApplyNode(MaskOf(*lat, {"Molecule", "Laboratory"}), dirty);
  size_t after = lat->NumClosedSets();
  // The paper stresses the lattice is dynamic: closures change after each
  // interaction. After repairing {t2,t5} many nodes collapse to ∅-sets.
  EXPECT_NE(before, after);
  // All empty-set nodes share one group whose representative is top.
  for (NodeId m = 0; m < lat->num_nodes(); ++m) {
    if (lat->affected_count(m) == 0) {
      EXPECT_EQ(lat->Representative(m), lat->top());
    }
  }
}

}  // namespace
}  // namespace falcon
