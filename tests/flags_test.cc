#include "common/flags.h"

#include <gtest/gtest.h>

namespace falcon {
namespace {

Flags Make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyValuePairs) {
  Flags f = Make({"--name=soccer", "--rows=123", "--scale=0.5"});
  EXPECT_EQ(f.GetString("name"), "soccer");
  EXPECT_EQ(f.GetInt("rows"), 123);
  EXPECT_DOUBLE_EQ(f.GetDouble("scale"), 0.5);
}

TEST(FlagsTest, BareFlagsAreTrueBooleans) {
  Flags f = Make({"--verbose", "--quiet=false", "--zero=0"});
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_FALSE(f.GetBool("quiet"));
  EXPECT_FALSE(f.GetBool("zero"));
  EXPECT_TRUE(f.Has("verbose"));
  EXPECT_FALSE(f.Has("missing"));
}

TEST(FlagsTest, DefaultsWhenAbsentOrMalformed) {
  Flags f = Make({"--rows=abc"});
  EXPECT_EQ(f.GetInt("rows", 7), 7);
  EXPECT_EQ(f.GetInt("missing", 9), 9);
  EXPECT_EQ(f.GetString("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 1.5), 1.5);
  EXPECT_TRUE(f.GetBool("missing", true));
}

TEST(FlagsTest, NumericGettersRejectPartialParses) {
  // std::atol-style silent truncation ("8abc" -> 8) must not happen.
  Flags f = Make({"--rows=8abc", "--scale=0.5x", "--pad= 9", "--big=1e99x"});
  EXPECT_EQ(f.GetInt("rows", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.5), 1.5);
  EXPECT_EQ(f.GetInt("pad", 7), 9);  // Surrounding whitespace is fine.
  EXPECT_DOUBLE_EQ(f.GetDouble("big", 2.0), 2.0);
}

TEST(FlagsTest, StrictGettersSurfaceErrors) {
  Flags f = Make({"--rows=8abc", "--scale=nope", "--good=42"});
  auto rows = f.GetIntStrict("rows", 7);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rows.status().message().find("--rows=8abc"), std::string::npos)
      << rows.status().message();
  EXPECT_FALSE(f.GetDoubleStrict("scale").ok());

  auto good = f.GetIntStrict("good");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  // Absent flags are the default, not an error.
  auto missing = f.GetIntStrict("missing", 11);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(*missing, 11);
}

TEST(FlagsTest, StrictGettersRejectOverflow) {
  Flags f = Make({"--rows=99999999999999999999999"});
  EXPECT_FALSE(f.GetIntStrict("rows").ok());
  EXPECT_EQ(f.GetInt("rows", 3), 3);
}

TEST(FlagsTest, PositionalArgumentsKeepOrder) {
  Flags f = Make({"first", "--x=1", "second", "third"});
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"first", "second", "third"}));
}

TEST(FlagsTest, EmptyValueAndEqualsInValue) {
  Flags f = Make({"--empty=", "--sql=SELECT a=b"});
  EXPECT_TRUE(f.Has("empty"));
  EXPECT_EQ(f.GetString("empty"), "");
  EXPECT_EQ(f.GetString("sql"), "SELECT a=b");
}

TEST(FlagsTest, DoneReturnsNulloptWhenAllFlagsKnown) {
  Flags f = Make({"--rows=5", "--verbose"});
  f.GetInt("rows", 0, "row count");
  f.GetBool("verbose", false, "chatty output");
  EXPECT_EQ(f.Done("tool — test"), std::nullopt);
}

TEST(FlagsTest, DoneHandlesHelp) {
  Flags f = Make({"--help"});
  f.GetInt("rows", 10, "row count");
  auto rc = f.Done("tool — test");
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(*rc, 0);
}

TEST(FlagsTest, DoneRejectsUnknownFlags) {
  Flags f = Make({"--rows=5", "--tpyo=1"});
  f.GetInt("rows", 0, "row count");
  auto rc = f.Done("tool — test");
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(*rc, 2);
}

TEST(FlagsTest, PositionalArgumentsAreNotUnknownFlags) {
  Flags f = Make({"subcommand", "arg"});
  EXPECT_EQ(f.Done("tool — test"), std::nullopt);
}

TEST(FlagsTest, DescribeRegistersWithoutReading) {
  // A flag only read inside an untaken branch still counts as known.
  Flags f = Make({"--only-for-subcommand=x"});
  f.Describe("only-for-subcommand", "\"\"", "used by one subcommand");
  EXPECT_EQ(f.Done("tool — test"), std::nullopt);
}

TEST(FlagsTest, FirstRegistrationWinsInHelp) {
  // Repeat getter calls with different defaults (per-subcommand reuse)
  // must not duplicate the --help row; the first default is displayed.
  Flags f = Make({});
  f.GetInt("budget", 3, "question budget");
  f.GetInt("budget", 5);
  EXPECT_EQ(f.Done("tool — test"), std::nullopt);
}

}  // namespace
}  // namespace falcon
