// Lock-striped session-registry tests: concurrent open/step/close across
// shards, admission control under racing opens (the atomic reservation
// must never admit past max_sessions), Health() consistency while the
// registry churns (counts never negative, never double-counted), journal
// recovery re-registering sessions across shards, and shared-base
// lifetime when the sessions pinning a base live in different shards.
// These run under TSan in CI (see .github/workflows/ci.yml).
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "service/session_manager.h"

namespace falcon {
namespace {

constexpr double kScale = 0.02;

SessionManager::OpenParams SmallParams(uint64_t seed = 7) {
  SessionManager::OpenParams p;
  p.dataset = "Synth10k";
  p.scale = kScale;
  p.seed = seed;
  return p;
}

/// Fresh empty journal directory under /tmp, unique per test + process.
std::string MakeTempDir(const std::string& tag) {
  std::string dir =
      "/tmp/falcon_shard_" + tag + "_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      std::string n = e->d_name;
      if (n != "." && n != "..") ::unlink((dir + "/" + n).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

TEST(SessionShardTest, ConcurrentOpenStepCloseAcrossShards) {
  ServiceLimits limits;
  limits.max_sessions = 64;
  limits.session_shards = 4;  // Fewer shards than threads: forced sharing.
  SessionManager manager(limits);

  constexpr size_t kThreads = 8;
  constexpr size_t kIterations = 6;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kIterations && !failed.load(); ++i) {
        auto id = manager.Open(SmallParams(100 + t * kIterations + i));
        if (!id.ok()) {
          failed.store(true);
          return;
        }
        auto st = manager.Step(*id, 1);
        if (!st.ok() || !manager.Info(*id).ok() ||
            !manager.Close(*id).ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  // Sample Health() while the registry churns: live_sessions is a sum of
  // per-shard sizes taken under each shard's lock — it must stay within
  // [0, max] and the private-bytes aggregate must never underflow.
  for (int i = 0; i < 200; ++i) {
    ServiceHealth h = manager.Health();
    EXPECT_LE(h.live_sessions, limits.max_sessions);
    EXPECT_LT(h.posting_resident_bytes, size_t{1} << 40);  // No underflow.
    EXPECT_LE(manager.active_sessions(), limits.max_sessions);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.Health().live_sessions, 0u);
}

TEST(SessionShardTest, RacingOpensNeverExceedMaxSessions) {
  ServiceLimits limits;
  limits.max_sessions = 4;
  limits.session_shards = 8;
  SessionManager manager(limits);

  // 3 rounds of 12 racing opens against 4 slots: every round exactly 4
  // must win (reservation is atomic — no shard-local recheck to race) and
  // every loser must get the typed admission error.
  for (int round = 0; round < 3; ++round) {
    std::vector<StatusOr<std::string>> results(
        12, StatusOr<std::string>(Status::Internal("unset")));
    std::vector<std::thread> threads;
    for (size_t t = 0; t < results.size(); ++t) {
      threads.emplace_back([&, t] {
        results[t] = manager.Open(SmallParams(500 + t));
      });
    }
    for (auto& t : threads) t.join();

    size_t admitted = 0;
    for (const auto& r : results) {
      if (r.ok()) {
        ++admitted;
      } else {
        EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      }
    }
    EXPECT_EQ(admitted, limits.max_sessions);
    EXPECT_EQ(manager.active_sessions(), limits.max_sessions);

    for (const auto& r : results) {
      if (r.ok()) EXPECT_TRUE(manager.Close(*r).ok());
    }
    EXPECT_EQ(manager.active_sessions(), 0u);  // Slots fully recycled.
  }
}

TEST(SessionShardTest, RecoveryReregistersSessionsAcrossShards) {
  std::string dir = MakeTempDir("recovery");
  ServiceLimits limits;
  limits.max_sessions = 16;
  limits.session_shards = 4;
  limits.journal_dir = dir;

  std::vector<std::string> ids;
  std::vector<uint32_t> crcs;
  {
    SessionManager manager(limits);
    for (uint64_t i = 0; i < 6; ++i) {
      auto id = manager.Open(SmallParams(700 + i));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      auto st = manager.Step(*id, 0);  // Run to convergence, journaled.
      ASSERT_TRUE(st.ok());
      ASSERT_TRUE(st->finished);
      ids.push_back(*id);
      crcs.push_back(st->table_crc);
    }
    // Destroyed without Close: journals + meta stay on disk.
  }

  SessionManager recovered(limits);
  EXPECT_EQ(recovered.RecoverSessions(), ids.size());
  EXPECT_EQ(recovered.active_sessions(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto st = recovered.Info(ids[i]);
    ASSERT_TRUE(st.ok()) << ids[i] << ": " << st.status().ToString();
    EXPECT_EQ(st->table_crc, crcs[i]) << ids[i];
  }
  // Fresh opens after recovery must not collide with recovered ids (the
  // atomic id counter caught up past the highest recovered id).
  auto fresh = recovered.Open(SmallParams(900));
  ASSERT_TRUE(fresh.ok());
  for (const auto& id : ids) EXPECT_NE(*fresh, id);
  recovered.CloseAll();
}

TEST(SessionShardTest, SharedBaseSurvivesUntilLastCrossShardClose) {
  ServiceLimits limits;
  limits.max_sessions = 32;
  limits.session_shards = 8;
  SessionManager manager(limits);

  // Same (dataset, scale, config) → one shared base, pinned by sessions
  // whose ids hash to different shards. The base (and its shared cache
  // tier) must outlive any single shard's sessions and die on last close.
  std::vector<std::string> ids;
  for (uint64_t i = 0; i < 8; ++i) {
    auto id = manager.Open(SmallParams(42));  // Same seed: same base.
    ASSERT_TRUE(id.ok());
    auto st = manager.Step(*id, 0);
    ASSERT_TRUE(st.ok());
    ids.push_back(*id);
  }
  ServiceHealth warm = manager.Health();
  EXPECT_EQ(warm.shared_bases, 1u);
  EXPECT_GT(warm.shared_resident_bytes, 0u);

  // Close all but one: the survivor keeps the base alive.
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    ASSERT_TRUE(manager.Close(ids[i]).ok());
  }
  ServiceHealth one_left = manager.Health();
  EXPECT_EQ(one_left.live_sessions, 1u);
  EXPECT_EQ(one_left.shared_bases, 1u);
  auto st = manager.Info(ids.back());
  ASSERT_TRUE(st.ok());

  // Last close drops the shared tier.
  ASSERT_TRUE(manager.Close(ids.back()).ok());
  ServiceHealth empty = manager.Health();
  EXPECT_EQ(empty.live_sessions, 0u);
  EXPECT_EQ(empty.shared_bases, 0u);
  EXPECT_EQ(empty.shared_resident_bytes, 0u);
}

}  // namespace
}  // namespace falcon
