// Declarative workload specs (datagen/spec.h): JSON parsing and
// validation, and the determinism contract — the same (spec, seed) yields
// byte-identical tables (TableContentsCrc) no matter how generation is
// chunked or how many threads compute the chunks.
#include "datagen/spec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/session_journal.h"
#include "errorgen/cfd.h"

namespace falcon {
namespace {

constexpr char kSpecJson[] = R"({
  "name": "t", "seed": 11, "rows": 1200,
  "fields": [
    {"name": "id",    "dist": "unique",  "prefix": "R"},
    {"name": "city",  "dist": "zipf",    "domain": 24, "skew": 1.0,
     "prefix": "C"},
    {"name": "state", "dist": "derived", "parents": ["city"], "domain": 8,
     "prefix": "S"},
    {"name": "zip",   "dist": "uniform", "domain": 30, "prefix": "Z"},
    {"name": "flag",  "dist": "dictionary", "values": ["y", "n", "m"]}
  ],
  "errors": {
    "rules": [{"lhs": ["city"], "rhs": "state", "patterns": 3,
               "errors_per_pattern": 4}],
    "random_errors": 10, "seed": 3
  },
  "append": {"batches": 2, "rows_per_batch": 200, "error_rate": 0.01}
})";

GeneratorSpec ParseSpec(const std::string& json = kSpecJson) {
  auto spec = GeneratorSpec::Parse(json);
  EXPECT_TRUE(spec.ok()) << spec.status().message();
  return *spec;
}

// Builds the spec's base table with the given thread count and chunk size
// (fresh generator, fresh pool) and returns its content CRC.
uint32_t BuildCrc(const GeneratorSpec& spec, size_t threads,
                  size_t chunk_rows) {
  ThreadPool pool(threads);
  auto gen = SpecGenerator::Make(spec);
  EXPECT_TRUE(gen.ok()) << gen.status().message();
  Table table = gen->NewTable();
  for (size_t done = 0; done < spec.rows;) {
    size_t n = std::min(chunk_rows, spec.rows - done);
    auto chunk = gen->Chunk(done, n, &pool);
    EXPECT_TRUE(chunk.ok());
    table.AppendBatch(*chunk);
    done += n;
  }
  EXPECT_EQ(table.num_rows(), spec.rows);
  return TableContentsCrc(table);
}

TEST(GeneratorSpecTest, ParsesAllFieldKinds) {
  GeneratorSpec spec = ParseSpec();
  EXPECT_EQ(spec.name, "t");
  EXPECT_EQ(spec.seed, 11u);
  EXPECT_EQ(spec.rows, 1200u);
  ASSERT_EQ(spec.fields.size(), 5u);
  EXPECT_EQ(spec.fields[0].dist, SpecField::Dist::kUnique);
  EXPECT_EQ(spec.fields[1].dist, SpecField::Dist::kZipf);
  EXPECT_EQ(spec.fields[1].domain, 24u);
  EXPECT_EQ(spec.fields[2].dist, SpecField::Dist::kDerived);
  EXPECT_EQ(spec.fields[2].parents, std::vector<std::string>{"city"});
  EXPECT_EQ(spec.fields[3].dist, SpecField::Dist::kUniform);
  EXPECT_EQ(spec.fields[4].dist, SpecField::Dist::kDictionary);
  EXPECT_EQ(spec.fields[4].values.size(), 3u);
  ASSERT_EQ(spec.errors.rules.size(), 1u);
  EXPECT_EQ(spec.errors.rules[0].rhs, "state");
  EXPECT_EQ(spec.append.batches, 2u);
  EXPECT_EQ(spec.append.rows_per_batch, 200u);
  EXPECT_EQ(spec.FinalRows(), 1600u);
}

TEST(GeneratorSpecTest, RejectsMalformedSpecs) {
  // Not JSON at all.
  EXPECT_FALSE(GeneratorSpec::Parse("not json").ok());
  // Unknown distribution.
  EXPECT_FALSE(GeneratorSpec::Parse(
                   R"({"rows": 10, "fields": [{"name": "a", "dist": "wat"}]})")
                   .ok());
  // Derived without parents.
  EXPECT_FALSE(
      GeneratorSpec::Parse(
          R"({"rows": 10, "fields": [{"name": "a", "dist": "derived"}]})")
          .ok());
  // Dictionary without values.
  EXPECT_FALSE(
      GeneratorSpec::Parse(
          R"({"rows": 10, "fields": [{"name": "a", "dist": "dictionary"}]})")
          .ok());
}

TEST(GeneratorSpecTest, MakeRejectsBadFieldGraphs) {
  // Duplicate field names.
  GeneratorSpec dup = ParseSpec();
  dup.fields[3].name = "city";
  EXPECT_FALSE(SpecGenerator::Make(dup).ok());
  // A derived field whose parent comes later (or not at all).
  GeneratorSpec fwd = ParseSpec();
  fwd.fields[2].parents = {"zip_does_not_exist"};
  EXPECT_FALSE(SpecGenerator::Make(fwd).ok());
}

TEST(GeneratorSpecTest, ByteIdenticalAcrossThreadsAndChunking) {
  GeneratorSpec spec = ParseSpec();
  uint32_t want = BuildCrc(spec, /*threads=*/1, /*chunk_rows=*/spec.rows);
  EXPECT_EQ(BuildCrc(spec, 1, 128), want);
  EXPECT_EQ(BuildCrc(spec, 2, 256), want);
  EXPECT_EQ(BuildCrc(spec, 8, 100), want);
  EXPECT_EQ(BuildCrc(spec, 8, 7), want);  // Ragged chunks.
}

TEST(GeneratorSpecTest, SeedChangesContent) {
  GeneratorSpec spec = ParseSpec();
  uint32_t base = BuildCrc(spec, 1, spec.rows);
  spec.seed = 12;
  EXPECT_NE(BuildCrc(spec, 1, spec.rows), base);
}

TEST(GeneratorSpecTest, AppendRowsMatchesChunkedGeneration) {
  GeneratorSpec spec = ParseSpec();
  auto gen = SpecGenerator::Make(spec);
  ASSERT_TRUE(gen.ok());
  Table one_shot = gen->NewTable();
  ASSERT_TRUE(gen->AppendRows(&one_shot, spec.rows).ok());
  EXPECT_EQ(TableContentsCrc(one_shot), BuildCrc(spec, 2, 333));
}

TEST(GeneratorSpecTest, DerivedFieldsAreExactFds) {
  GeneratorSpec spec = ParseSpec();
  auto gen = SpecGenerator::Make(spec);
  ASSERT_TRUE(gen.ok());
  Table table = gen->NewTable();
  ASSERT_TRUE(gen->AppendRows(&table, spec.rows).ok());
  EXPECT_TRUE(FdHolds(table, FdRule{{"city"}, "state"}));
  EXPECT_TRUE(FdHolds(table, FdRule{{"id"}, "city"}));  // Key determines all.
  // Uniform zip over 30 values cannot determine city by accident at 1200
  // rows.
  EXPECT_FALSE(FdHolds(table, FdRule{{"zip"}, "city"}));
}

TEST(GeneratorSpecTest, WorkloadInjectsErrorsAndKeepsCleanCrc) {
  GeneratorSpec spec = ParseSpec();
  auto sw = MakeSpecWorkload(spec);
  ASSERT_TRUE(sw.ok()) << sw.status().message();
  EXPECT_EQ(sw->workload.clean.num_rows(), spec.rows);
  EXPECT_GT(sw->workload.errors, 0u);
  EXPECT_NE(TableContentsCrc(sw->workload.clean),
            TableContentsCrc(sw->workload.dirty));
  // The clean instance is exactly what the raw generator produces.
  EXPECT_EQ(TableContentsCrc(sw->workload.clean),
            BuildCrc(spec, 1, spec.rows));
  // Distinct snapshot ids per built instance (shared-cache aliasing guard).
  auto sw2 = MakeSpecWorkload(spec);
  ASSERT_TRUE(sw2.ok());
  EXPECT_NE(sw->workload.snapshot_id, sw2->workload.snapshot_id);
}

TEST(GeneratorSpecTest, AppendBatchChunksAreDeterministic) {
  GeneratorSpec spec = ParseSpec();
  auto sw = MakeSpecWorkload(spec);
  ASSERT_TRUE(sw.ok());
  auto a = sw->generator.AppendBatchChunk(spec.rows, 200);
  auto b = sw->generator.AppendBatchChunk(spec.rows, 200);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->clean, b->clean);
  EXPECT_EQ(a->dirty, b->dirty);
  EXPECT_EQ(a->errors, b->errors);
  // The dirty chunk differs from clean in exactly `errors` cells.
  size_t diff = 0;
  for (size_t c = 0; c < a->clean.size(); ++c) {
    for (size_t r = 0; r < a->clean[c].size(); ++r) {
      diff += a->clean[c][r] != a->dirty[c][r];
    }
  }
  EXPECT_EQ(diff, a->errors);
  // The clean side of the batch is the plain deterministic table slice.
  auto plain = sw->generator.Chunk(spec.rows, 200);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(a->clean, *plain);
}

TEST(GeneratorSpecTest, ChunkIsRestartable) {
  // Chunk(begin, n) is a pure slice: regenerating an interior window gives
  // the same ids, independent of what was generated before.
  GeneratorSpec spec = ParseSpec();
  auto gen = SpecGenerator::Make(spec);
  ASSERT_TRUE(gen.ok());
  auto whole = gen->Chunk(0, 600);
  ASSERT_TRUE(whole.ok());
  auto window = gen->Chunk(400, 100);
  ASSERT_TRUE(window.ok());
  for (size_t c = 0; c < window->size(); ++c) {
    for (size_t r = 0; r < 100; ++r) {
      EXPECT_EQ((*window)[c][r], (*whole)[c][400 + r]);
    }
  }
}

TEST(ValuePoolInternBatchTest, MatchesSerialInternAndIsIdempotent) {
  auto pool = std::make_shared<ValuePool>();
  auto serial = std::make_shared<ValuePool>();
  std::vector<std::string> values;
  for (int i = 0; i < 500; ++i) values.push_back("v_" + std::to_string(i % 37));
  std::vector<std::string_view> views(values.begin(), values.end());

  std::vector<ValueId> batch_ids(views.size());
  pool->InternBatch(views, batch_ids.data());
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(batch_ids[i], serial->Intern(views[i])) << i;
  }
  // Re-interning the same batch returns the same ids and adds nothing.
  size_t size_before = pool->size();
  std::vector<ValueId> again(views.size());
  pool->InternBatch(views, again.data());
  EXPECT_EQ(again, batch_ids);
  EXPECT_EQ(pool->size(), size_before);
}

}  // namespace
}  // namespace falcon
