#include "core/session_journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "datagen/datasets.h"

namespace falcon {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<JournalRecord> SampleRecords() {
  std::vector<JournalRecord> records;
  JournalRecord start;
  start.kind = JournalRecord::Kind::kStart;
  start.seed = 1234;
  start.num_rows = 6;
  start.num_cols = 5;
  start.table_crc = 0xDEADBEEF;
  records.push_back(start);

  JournalRecord update;
  update.kind = JournalRecord::Kind::kUserUpdate;
  update.row = 1;
  update.col = 1;
  update.value = "C22H28F";
  update.wrong = false;
  records.push_back(update);

  JournalRecord answer;
  answer.kind = JournalRecord::Kind::kAnswer;
  answer.node = 0b1010;
  answer.valid = true;
  answer.billed = true;
  records.push_back(answer);

  JournalRecord apply;
  apply.kind = JournalRecord::Kind::kApply;
  apply.node = 0b1010;
  apply.col = 1;
  apply.manual = false;
  apply.value = "C22H28F";
  apply.before = {{1, "statin"}, {4, "statin"}};
  records.push_back(apply);

  JournalRecord checkpoint;
  checkpoint.kind = JournalRecord::Kind::kCheckpoint;
  checkpoint.user_updates = 1;
  checkpoint.user_answers = 1;
  checkpoint.cells_repaired = 2;
  checkpoint.queries_applied = 1;
  checkpoint.table_crc = 0xCAFEF00D;
  records.push_back(checkpoint);

  JournalRecord retract;
  retract.kind = JournalRecord::Kind::kRetract;
  retract.entry = 0;
  retract.col = 1;
  retract.before = {{1, "C22H28F"}, {4, "C22H28F"}};
  records.push_back(retract);
  return records;
}

std::string WriteSampleJournal(const std::string& path) {
  auto journal = SessionJournal::Open(path, /*truncate=*/true);
  EXPECT_TRUE(journal.ok());
  for (const JournalRecord& r : SampleRecords()) {
    EXPECT_TRUE(journal->Append(r).ok());
  }
  EXPECT_TRUE(journal->Sync().ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

TEST(SessionJournalTest, EncodeDecodeRoundTripsEveryKind) {
  for (const JournalRecord& r : SampleRecords()) {
    std::string payload = EncodeJournalRecord(r);
    auto back = DecodeJournalRecord(payload);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE(*back == r);
  }
}

TEST(SessionJournalTest, DecodeRejectsDamage) {
  EXPECT_FALSE(DecodeJournalRecord("").ok());
  EXPECT_FALSE(DecodeJournalRecord(std::string(1, '\x63')).ok());  // Kind 99.
  std::string payload = EncodeJournalRecord(SampleRecords()[3]);
  // Truncations of a valid payload must be rejected, not crash.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeJournalRecord(payload.substr(0, len)).ok());
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(DecodeJournalRecord(payload + "x").ok());
}

TEST(SessionJournalTest, WriteReadRoundTrip) {
  std::string path = TempPath("journal_roundtrip.bin");
  WriteSampleJournal(path);
  auto contents = SessionJournal::Read(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_FALSE(contents->torn);
  std::vector<JournalRecord> expected = SampleRecords();
  ASSERT_EQ(contents->records.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(contents->records[i] == expected[i]) << "record " << i;
  }
  std::remove(path.c_str());
}

TEST(SessionJournalTest, MissingFileIsNotFound) {
  auto contents = SessionJournal::Read(TempPath("no_such_journal.bin"));
  EXPECT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
}

// The torn-journal acceptance criterion: truncating at ANY byte boundary
// never aborts — Read returns the longest whole-record prefix.
TEST(SessionJournalTest, TruncationAtEveryByteReplaysToLastWholeRecord) {
  std::string path = TempPath("journal_trunc.bin");
  std::string bytes = WriteSampleJournal(path);
  size_t full = SampleRecords().size();

  size_t last_count = 0;
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::string trunc_path = TempPath("journal_trunc_cut.bin");
    std::ofstream out(trunc_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();

    auto contents = SessionJournal::Read(trunc_path);
    ASSERT_TRUE(contents.ok()) << "cut at byte " << cut;
    // Record count grows monotonically with the cut and the valid prefix
    // is never larger than the cut.
    EXPECT_GE(contents->records.size(), last_count) << "cut " << cut;
    EXPECT_LE(contents->valid_bytes, cut);
    EXPECT_EQ(contents->torn, contents->valid_bytes != cut);
    last_count = contents->records.size();
    // Prefix property: records match the full journal's first N.
    std::vector<JournalRecord> expected = SampleRecords();
    for (size_t i = 0; i < contents->records.size(); ++i) {
      EXPECT_TRUE(contents->records[i] == expected[i]);
    }
    std::remove(trunc_path.c_str());
  }
  EXPECT_EQ(last_count, full);
  std::remove(path.c_str());
}

TEST(SessionJournalTest, BitFlipStopsAtLastGoodRecord) {
  std::string path = TempPath("journal_flip.bin");
  std::string bytes = WriteSampleJournal(path);
  Rng rng(99);
  for (int iter = 0; iter < 64; ++iter) {
    std::string corrupt = bytes;
    size_t at = rng.NextUint(corrupt.size());
    corrupt[at] = static_cast<char>(corrupt[at] ^
                                    (1 << rng.NextUint(8)));
    std::string flip_path = TempPath("journal_flip_case.bin");
    std::ofstream out(flip_path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    auto contents = SessionJournal::Read(flip_path);
    ASSERT_TRUE(contents.ok());
    // Whatever survived must be a prefix of the original records.
    std::vector<JournalRecord> expected = SampleRecords();
    ASSERT_LE(contents->records.size(), expected.size());
    for (size_t i = 0; i < contents->records.size(); ++i) {
      EXPECT_TRUE(contents->records[i] == expected[i]);
    }
    std::remove(flip_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(SessionJournalTest, RandomBytesNeverCrashTheReader) {
  Rng rng(1007);
  for (int iter = 0; iter < 200; ++iter) {
    size_t len = rng.NextUint(300);
    std::string garbage;
    for (size_t i = 0; i < len; ++i) {
      garbage += static_cast<char>(rng.NextUint(256));
    }
    std::string path = TempPath("journal_garbage.bin");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
    out.close();
    auto contents = SessionJournal::Read(path);
    ASSERT_TRUE(contents.ok());  // Tolerant read: garbage = torn tail.
    std::remove(path.c_str());
  }
}

TEST(SessionJournalTest, TornWriteFaultLeavesRecoverablePrefix) {
  std::string path = TempPath("journal_torn_fault.bin");
  auto journal = SessionJournal::Open(path, /*truncate=*/true);
  ASSERT_TRUE(journal.ok());
  std::vector<JournalRecord> records = SampleRecords();
  ASSERT_TRUE(journal->Append(records[0]).ok());
  ASSERT_TRUE(journal->Append(records[1]).ok());

  FaultInjector::Global().Reset();
  FaultInjector::Global().Arm({.site = "journal.torn", .nth = 1});
  Status st = journal->Append(records[2]);
  EXPECT_FALSE(st.ok());
  FaultInjector::Global().Reset();

  auto contents = SessionJournal::Read(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->torn);
  ASSERT_EQ(contents->records.size(), 2u);

  // Recovery path: truncate the damage, append the record again, read back.
  ASSERT_TRUE(
      SessionJournal::TruncateTo(path, contents->valid_bytes).ok());
  auto resumed = SessionJournal::Open(path, /*truncate=*/false);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->Append(records[2]).ok());
  ASSERT_TRUE(resumed->Sync().ok());
  auto repaired = SessionJournal::Read(path);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->torn);
  ASSERT_EQ(repaired->records.size(), 3u);
  EXPECT_TRUE(repaired->records[2] == records[2]);
  std::remove(path.c_str());
}

TEST(SessionJournalTest, TableContentsCrcTracksCellEdits) {
  DrugExample ex = MakeDrugExample();
  uint32_t dirty_crc = TableContentsCrc(ex.dirty);
  uint32_t clean_crc = TableContentsCrc(ex.clean);
  EXPECT_NE(dirty_crc, clean_crc);
  Table copy = ex.dirty.Clone();
  EXPECT_EQ(TableContentsCrc(copy), dirty_crc);
  copy.SetCellText(0, 0, "something else");
  EXPECT_NE(TableContentsCrc(copy), dirty_crc);
}

}  // namespace
}  // namespace falcon
