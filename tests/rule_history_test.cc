#include "core/rule_history.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

TEST(RuleHistoryTest, UnseenShapeIsNeutral) {
  RuleHistory history;
  EXPECT_DOUBLE_EQ(history.Boost(3, {1, 2}), 1.0);
  EXPECT_EQ(history.distinct_shapes(), 0u);
}

TEST(RuleHistoryTest, ValidObservationsRaiseBoost) {
  RuleHistory history;
  history.Record(3, {1, 2}, true);
  history.Record(3, {1, 2}, true);
  EXPECT_GT(history.Boost(3, {1, 2}), 1.0);
  EXPECT_EQ(history.valid_observations(), 2u);
}

TEST(RuleHistoryTest, InvalidObservationsLowerBoost) {
  RuleHistory history;
  history.Record(3, {4}, false);
  history.Record(3, {4}, false);
  history.Record(3, {4}, false);
  EXPECT_LT(history.Boost(3, {4}), 1.0);
}

TEST(RuleHistoryTest, ShapeIsOrderInsensitive) {
  RuleHistory history;
  history.Record(3, {2, 1}, true);
  EXPECT_EQ(history.Boost(3, {1, 2}), history.Boost(3, {2, 1}));
  EXPECT_EQ(history.distinct_shapes(), 1u);
}

TEST(RuleHistoryTest, TargetsAreIndependent) {
  RuleHistory history;
  history.Record(3, {1}, true);
  EXPECT_DOUBLE_EQ(history.Boost(4, {1}), 1.0);
}

TEST(RuleHistoryTest, BoostIsBounded) {
  RuleHistory history;
  for (int i = 0; i < 1000; ++i) history.Record(1, {2}, true);
  for (int i = 0; i < 1000; ++i) history.Record(1, {3}, false);
  EXPECT_LE(history.Boost(1, {2}), 4.0);
  EXPECT_GE(history.Boost(1, {3}), 0.25);
}

TEST(RuleHistoryTest, SessionAccumulatesHistory) {
  auto ds = MakeSynth(2000);
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());

  SessionOptions options;
  options.budget = 3;
  options.use_rule_history = true;
  Table working = dirty->dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kCoDive);
  CleaningSession session(&ds->clean, &working, algo.get(), options);
  auto m = session.Run();
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->converged);
  EXPECT_GT(session.history().distinct_shapes(), 0u);
  EXPECT_GT(session.history().valid_observations(), 0u);
}

TEST(RuleHistoryTest, HistoryDoesNotHurtCoDive) {
  // §8 extension ablation: with rule history on, CoDive's cost on a
  // rule-heavy workload must not regress materially (it usually improves —
  // later sessions jump straight to the shapes that worked).
  auto ds = MakeSynth(4000);
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());

  SessionOptions base;
  base.budget = 3;
  SessionOptions with_history = base;
  with_history.use_rule_history = true;

  auto plain = RunCleaning(ds->clean, dirty->dirty, SearchKind::kCoDive,
                           base);
  ASSERT_TRUE(plain.ok());

  Table working = dirty->dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kCoDive);
  CleaningSession session(&ds->clean, &working, algo.get(), with_history);
  auto boosted = session.Run();
  ASSERT_TRUE(boosted.ok());
  EXPECT_TRUE(boosted->converged);
  EXPECT_LE(boosted->TotalCost(),
            plain->TotalCost() + plain->TotalCost() / 5 + 10);
}

}  // namespace
}  // namespace falcon
