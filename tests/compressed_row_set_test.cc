// Randomized dense-vs-compressed equivalence over the full kernel surface,
// plus targeted tests at the container promotion/demotion boundaries and
// HybridRowSet mixed-representation dispatch.
#include "common/compressed_row_set.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/hybrid_row_set.h"
#include "common/rng.h"
#include "common/row_set.h"

namespace falcon {
namespace {

// Random set over `universe` with roughly `density` fill, plus optional
// run-shaped intervals so all three container encodings appear.
RowSet RandomDense(Rng& rng, size_t universe, double density, int runs) {
  RowSet out(universe);
  size_t target = static_cast<size_t>(density * static_cast<double>(universe));
  for (size_t i = 0; i < target; ++i) {
    out.Set(rng.NextUint(universe));
  }
  for (int r = 0; r < runs && universe > 2; ++r) {
    size_t start = rng.NextUint(universe);
    size_t len = 1 + rng.NextUint(std::min<size_t>(universe - start, 3000));
    for (size_t i = start; i < start + len; ++i) out.Set(i);
  }
  return out;
}

void ExpectSame(const RowSet& dense, const CompressedRowSet& comp) {
  ASSERT_EQ(dense.universe_size(), comp.universe_size());
  EXPECT_EQ(dense.Count(), comp.Count());
  EXPECT_EQ(dense.Empty(), comp.Empty());
  EXPECT_EQ(dense.First(), comp.First());
  EXPECT_EQ(dense.Hash(), comp.Hash());
  EXPECT_TRUE(comp == dense);
  EXPECT_EQ(dense.ToVector(), comp.ToVector());
}

TEST(CompressedRowSetTest, RoundTripAndHashAcrossShapes) {
  Rng rng(7);
  // Universe sizes straddling one/many chunks and non-word-aligned tails.
  for (size_t universe : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                          size_t{4096}, size_t{65536}, size_t{65537},
                          size_t{200000}}) {
    for (double density : {0.0, 0.0005, 0.02, 0.3, 0.95}) {
      RowSet dense = RandomDense(rng, universe, density, rng.NextUint(3));
      CompressedRowSet comp = CompressedRowSet::FromDense(dense);
      ExpectSame(dense, comp);
      EXPECT_EQ(comp.ToDense(), dense);
      comp.RunOptimize();
      ExpectSame(dense, comp);
      EXPECT_EQ(comp.ToDense(), dense);
    }
  }
}

TEST(CompressedRowSetTest, FullAndEmptySets) {
  for (size_t universe : {size_t{64}, size_t{65537}, size_t{131072}}) {
    CompressedRowSet full(universe, true);
    RowSet dense_full(universe, true);
    ExpectSame(dense_full, full);
    // A full set is runs, not bitmaps.
    EXPECT_EQ(full.container_stats().bitmaps, 0u);

    CompressedRowSet empty(universe);
    ExpectSame(RowSet(universe), empty);
    EXPECT_EQ(empty.First(), universe);
  }
}

TEST(CompressedRowSetTest, PromotionDemotionRoundTrip) {
  // Walk cardinality up through the array→bitmap boundary and back down.
  const size_t universe = 1 << 16;
  CompressedRowSet comp(universe);
  RowSet dense(universe);
  // 4095, 4096, 4097: the standard threshold and both neighbors. Use a
  // stride so values spread over the chunk.
  for (size_t card : {size_t{4095}, size_t{4096}, size_t{4097}}) {
    comp.ClearAll();
    dense.ClearAll();
    for (size_t i = 0; i < card; ++i) {
      size_t row = (i * 16) % universe + (i * 16) / universe;
      comp.Set(row);
      dense.Set(row);
    }
    ExpectSame(dense, comp);
    auto stats = comp.container_stats();
    if (card <= 4096) {
      EXPECT_EQ(stats.arrays, 1u) << card;
    } else {
      EXPECT_EQ(stats.bitmaps, 1u) << card;
    }
    // Remove one element: 4097 → 4096 must demote back to an array.
    size_t victim = comp.First();
    comp.Clear(victim);
    dense.Clear(victim);
    ExpectSame(dense, comp);
    EXPECT_EQ(comp.container_stats().arrays, 1u) << card;
    // Idempotent mutations.
    comp.Clear(victim);
    EXPECT_EQ(comp.Count(), dense.Count());
    size_t back = dense.First();
    comp.Set(back);
    comp.Set(back);
    dense.Set(back);
    ExpectSame(dense, comp);
  }
}

TEST(CompressedRowSetTest, RunContainerPointMutation) {
  const size_t universe = 1 << 16;
  CompressedRowSet comp(universe, true);
  RowSet dense(universe, true);
  ASSERT_GT(comp.container_stats().runs, 0u);
  // Point-clearing a run container un-runs it and stays equivalent.
  comp.Clear(1000);
  dense.Clear(1000);
  comp.Clear(0);
  dense.Clear(0);
  comp.Set(1000);
  dense.Set(1000);
  ExpectSame(dense, comp);
}

TEST(CompressedRowSetTest, RandomizedKernelEquivalence) {
  Rng rng(1234);
  const int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    size_t universe = 1000 + rng.NextUint(200000);
    double da = rng.NextUint(100) < 30 ? 0.001 : 0.2;
    double db = rng.NextUint(100) < 50 ? 0.003 : 0.4;
    RowSet a = RandomDense(rng, universe, da, rng.NextUint(3));
    RowSet b = RandomDense(rng, universe, db, rng.NextUint(3));
    CompressedRowSet ca = CompressedRowSet::FromDense(a);
    CompressedRowSet cb = CompressedRowSet::FromDense(b);
    if (t % 2 == 0) {
      ca.RunOptimize();  // Exercise run-container kernel paths.
    } else {
      cb.RunOptimize();
    }

    // Fused/count/predicate kernels (compressed∘compressed and mixed).
    EXPECT_EQ(a.AndCount(b), ca.AndCount(cb));
    EXPECT_EQ(a.AndCount(b), ca.AndCount(b));
    EXPECT_EQ(a.IsSubsetOf(b), ca.IsSubsetOf(cb));
    EXPECT_EQ(a.IsSubsetOf(b), ca.IsSubsetOf(b));
    EXPECT_EQ(b.IsSubsetOf(a), ca.ContainsAll(b));
    EXPECT_EQ(a.DisjointWith(b), ca.DisjointWith(cb));
    EXPECT_EQ(a.DisjointWith(b), ca.DisjointWith(b));

    // A set is always a subset of itself and disjoint sets really are.
    EXPECT_TRUE(ca.IsSubsetOf(ca));
    RowSet none(universe);
    EXPECT_TRUE(CompressedRowSet::FromDense(none).DisjointWith(ca));

    // Materializing kernels, compressed∘compressed.
    {
      RowSet ref = a;
      ref.And(b);
      CompressedRowSet got = ca;
      got.And(cb);
      ExpectSame(ref, got);
    }
    {
      RowSet ref = a;
      ref.AndNot(b);
      CompressedRowSet got = ca;
      got.AndNot(cb);
      ExpectSame(ref, got);
    }
    {
      RowSet ref = a;
      ref.Or(b);
      CompressedRowSet got = ca;
      got.Or(cb);
      ExpectSame(ref, got);
    }
    // Mixed: compressed op dense.
    {
      RowSet ref = a;
      ref.And(b);
      CompressedRowSet got = ca;
      got.And(b);
      ExpectSame(ref, got);
    }
    {
      RowSet ref = a;
      ref.AndNot(b);
      CompressedRowSet got = ca;
      got.AndNot(b);
      ExpectSame(ref, got);
    }
    {
      RowSet ref = a;
      ref.Or(b);
      CompressedRowSet got = ca;
      got.Or(b);
      ExpectSame(ref, got);
    }
    // AndInto: dense &= compressed.
    {
      RowSet ref = b;
      ref.And(a);
      RowSet got = b;
      ca.AndInto(got);
      EXPECT_EQ(ref, got);
    }
    // Complement.
    {
      RowSet ref = a.Complement();
      CompressedRowSet got = ca.Complement();
      ExpectSame(ref, got);
    }
    // ForEach/AllOf agreement.
    {
      std::vector<uint32_t> seen;
      ca.ForEach([&](size_t r) { seen.push_back(static_cast<uint32_t>(r)); });
      EXPECT_EQ(seen, a.ToVector());
      EXPECT_TRUE(ca.AllOf([&](size_t r) { return a.Test(r); }));
      EXPECT_EQ(ca.AllOf([&](size_t r) { return r != a.First(); }), a.Empty());
    }
    // Word-block export in random slices matches dense words.
    {
      size_t nwords = a.num_words();
      size_t begin = rng.NextUint(nwords);
      size_t count = 1 + rng.NextUint(nwords - begin);
      std::vector<uint64_t> out(count);
      ca.CopyWords(begin, count, out.data());
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(out[i], a.word(begin + i)) << "word " << begin + i;
      }
    }
  }
}

TEST(CompressedRowSetTest, HeapBytesSparseMuchSmallerThanDense) {
  const size_t universe = 1 << 20;
  RowSet dense(universe);
  Rng rng(99);
  for (int i = 0; i < 100; ++i) dense.Set(rng.NextUint(universe));
  CompressedRowSet comp = CompressedRowSet::FromDense(dense);
  EXPECT_EQ(comp.ToDense(), dense);
  // 100 scattered rows of 1M: arrays cost ~2 B/row vs 128 KB dense.
  EXPECT_LT(comp.HeapBytes() * 5, dense.HeapBytes());
}

TEST(CompressedRowSetTest, ContainerStatsTallies) {
  const size_t universe = 3 << 16;
  RowSet dense(universe);
  // Chunk 0: sparse (array). Chunk 1: dense (bitmap). Chunk 2: interval (run).
  for (size_t i = 0; i < 100; ++i) dense.Set(i * 7);
  for (size_t i = 0; i < 65536; i += 2) dense.Set((1 << 16) + i);
  for (size_t i = 0; i < 30000; ++i) dense.Set((2 << 16) + i);
  CompressedRowSet comp = CompressedRowSet::FromDense(dense);
  auto stats = comp.container_stats();
  EXPECT_EQ(stats.arrays, 1u);
  EXPECT_EQ(stats.bitmaps, 1u);
  EXPECT_EQ(stats.runs, 1u);
  ExpectSame(dense, comp);
}

// --- HybridRowSet dispatch --------------------------------------------------

TEST(HybridRowSetTest, MixedKernelDispatchMatchesDense) {
  Rng rng(555);
  const size_t universe = 70000;
  RowSet a = RandomDense(rng, universe, 0.01, 1);
  RowSet b = RandomDense(rng, universe, 0.3, 0);
  // All four representation pairings must agree with the dense reference.
  for (bool ca : {false, true}) {
    for (bool cb : {false, true}) {
      HybridRowSet ha(a);
      HybridRowSet hb(b);
      if (ca) ha.EnsureCompressed();
      if (cb) hb.EnsureCompressed();
      EXPECT_EQ(ha.AndCount(hb), a.AndCount(b)) << ca << cb;
      EXPECT_EQ(ha.IsSubsetOf(hb), a.IsSubsetOf(b)) << ca << cb;
      EXPECT_EQ(ha.DisjointWith(hb), a.DisjointWith(b)) << ca << cb;
      EXPECT_EQ(ha.Hash(), a.Hash());
      EXPECT_EQ(ha == hb, a == b) << ca << cb;
      {
        HybridRowSet got = ha;
        got.And(hb);
        RowSet ref = a;
        ref.And(b);
        EXPECT_TRUE(got == ref) << ca << cb;
        EXPECT_EQ(got.Hash(), ref.Hash());
      }
      {
        HybridRowSet got = ha;
        got.AndNot(hb);
        RowSet ref = a;
        ref.AndNot(b);
        EXPECT_TRUE(got == ref) << ca << cb;
      }
      {
        HybridRowSet got = ha;
        got.Or(hb);
        RowSet ref = a;
        ref.Or(b);
        EXPECT_TRUE(got == ref) << ca << cb;
      }
    }
  }
}

TEST(HybridRowSetTest, CompactPolicyIsDeterministicOnCount) {
  const size_t universe = 1 << 16;
  RowSet sparse(universe);
  for (size_t i = 0; i < 64; ++i) sparse.Set(i * 1000);
  HybridRowSet h(sparse);
  h.Compact(sparse.Count());
  EXPECT_TRUE(h.compressed());
  EXPECT_TRUE(h == sparse);

  RowSet dense_set(universe);
  for (size_t i = 0; i < universe; i += 2) dense_set.Set(i);
  HybridRowSet hd(dense_set);
  hd.Compact(dense_set.Count());
  EXPECT_FALSE(hd.compressed());

  // Small universes always stay dense.
  RowSet tiny(100);
  tiny.Set(3);
  HybridRowSet ht(tiny);
  ht.Compact(1);
  EXPECT_FALSE(ht.compressed());

  // A compressed set whose density rises past the hysteresis densifies.
  h = HybridRowSet(dense_set);
  h.EnsureCompressed();
  h.Compact(dense_set.Count());
  EXPECT_FALSE(h.compressed());
}

TEST(HybridRowSetTest, CopyWordsIndependentOfRepresentation) {
  Rng rng(8);
  const size_t universe = 100000;
  RowSet a = RandomDense(rng, universe, 0.05, 2);
  HybridRowSet hd(a);
  HybridRowSet hc(a);
  hc.EnsureCompressed();
  size_t nwords = a.num_words();
  std::vector<uint64_t> wd(nwords), wc(nwords);
  hd.CopyWords(0, nwords, wd.data());
  hc.CopyWords(0, nwords, wc.data());
  EXPECT_EQ(wd, wc);
}

// --- RowSet::SetWord tail-trim regression (satellite bugfix) ----------------

TEST(RowSetTest, SetWordTrimsTailBeyondUniverse) {
  RowSet s(70);  // Two words; tail word holds rows 64..69 only.
  s.SetWord(1, ~uint64_t{0});
  EXPECT_EQ(s.Count(), 6u);  // Not 64: bits 70..127 must be trimmed.
  EXPECT_EQ(s.Complement().Count(), 64u);
  // The full word is unaffected.
  s.SetWord(0, ~uint64_t{0});
  EXPECT_EQ(s.Count(), 70u);
  // Hash must equal the set built by per-row Set (no hidden tail bits).
  RowSet ref(70);
  for (size_t r = 0; r < 70; ++r) ref.Set(r);
  EXPECT_EQ(s, ref);
  EXPECT_EQ(s.Hash(), ref.Hash());
}

}  // namespace
}  // namespace falcon
