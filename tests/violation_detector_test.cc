#include "core/violation_detector.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

TEST(ViolationDetectorTest, CleanDataYieldsNoSuspects) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  ViolationReport report = DetectViolations(ds->clean);
  EXPECT_TRUE(report.suspects.empty());
  EXPECT_FALSE(report.fds.empty());
}

TEST(ViolationDetectorTest, FlagsInjectedErrorsWithGoodPrecision) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());

  ViolationReport report = DetectViolations(dirty->dirty);
  ASSERT_FALSE(report.suspects.empty());

  std::unordered_set<uint64_t> truth;
  for (const ErrorCell& e : dirty->errors) {
    truth.insert((static_cast<uint64_t>(e.row) << 16) | e.col);
  }
  size_t hits = 0;
  for (const Suspect& s : report.suspects) {
    uint64_t key = (static_cast<uint64_t>(s.row) << 16) | s.col;
    if (truth.count(key)) ++hits;
  }
  double precision =
      static_cast<double>(hits) / static_cast<double>(report.suspects.size());
  double recall =
      static_cast<double>(hits) / static_cast<double>(truth.size());
  EXPECT_GT(precision, 0.9);
  // Rule errors in partially corrupted groups are detectable; fully
  // corrupted groups (no surviving consensus) and isolated random errors
  // are not — about half the Soccer errors are reachable by consensus.
  EXPECT_GT(recall, 0.4);
}

TEST(ViolationDetectorTest, SuggestionsMatchCleanValues) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());

  ViolationReport report = DetectViolations(dirty->dirty);
  size_t correct = 0;
  size_t with_truth = 0;
  for (const Suspect& s : report.suspects) {
    if (s.suggested == kNullValueId) continue;  // LHS-blamed: no repair.
    if (dirty->dirty.cell(s.row, s.col) == ds->clean.cell(s.row, s.col)) {
      continue;  // False positive; no truth to compare.
    }
    ++with_truth;
    if (s.suggested == ds->clean.cell(s.row, s.col)) ++correct;
  }
  ASSERT_GT(with_truth, 0u);
  // Consensus repair suggestions are right for the vast majority of
  // genuinely dirty flagged cells.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(with_truth),
            0.9);
}

TEST(ViolationDetectorTest, SuspectsOrderedByBlame) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());
  ViolationReport report = DetectViolations(dirty->dirty);
  for (size_t i = 1; i < report.suspects.size(); ++i) {
    EXPECT_GE(report.suspects[i - 1].blame, report.suspects[i].blame);
  }
}

TEST(ViolationDetectorTest, MinConsensusFilters) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());
  ViolationDetectorOptions strict;
  strict.min_consensus = 0.999;  // Groups with any dissent are skipped...
  ViolationReport report = DetectViolations(dirty->dirty, strict);
  // ...so (almost) nothing can be flagged: flagging needs dissent, and
  // dissent caps consensus below 1.
  EXPECT_TRUE(report.suspects.empty());
}

TEST(ViolationDetectorTest, EachCellFlaggedOnce) {
  auto ds = MakeHospital(3000);
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());
  ViolationReport report = DetectViolations(dirty->dirty);
  std::unordered_set<uint64_t> seen;
  for (const Suspect& s : report.suspects) {
    uint64_t key = (static_cast<uint64_t>(s.row) << 16) | s.col;
    EXPECT_TRUE(seen.insert(key).second) << "cell flagged twice";
  }
}

}  // namespace
}  // namespace falcon
