#include "core/search.h"

#include <gtest/gtest.h>

#include "core/search_algorithms.h"
#include "datagen/datasets.h"

namespace falcon {
namespace {

// Harness: one lattice episode over T_drug's Δ3 with a given algorithm and
// budget; returns (answers used, t5 repaired?).
struct EpisodeResult {
  size_t answers = 0;
  bool group_repaired = false;
  Table dirty;
};

EpisodeResult RunEpisode(SearchAlgorithm& algo, size_t budget,
                         bool closed_sets) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  auto lat = Lattice::Build(dirty, Repair{1, 1, "C22H28F"}, {0, 2, 3});
  EXPECT_TRUE(lat.ok());
  lat->MarkValid(lat->top());
  UserOracle oracle(&ex.clean);
  SearchStats stats;
  LatticeSearchContext ctx(&*lat, &dirty, &oracle, budget, closed_sets,
                           /*naive_maintenance=*/false, nullptr, &stats,
                           nullptr);
  algo.OnSessionStart(0);
  algo.Run(ctx);
  EpisodeResult r;
  r.answers = ctx.answers_used();
  r.group_repaired = dirty.CellText(4, 1) == "C22H28F";
  r.dirty = std::move(dirty);
  return r;
}

TEST(SearchContextTest, BudgetIsEnforced) {
  BfsSearch bfs;
  EpisodeResult r = RunEpisode(bfs, 2, /*closed_sets=*/false);
  EXPECT_LE(r.answers, 2u);
}

TEST(SearchContextTest, AskAppliesValidQueries) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  auto lat = Lattice::Build(dirty, Repair{1, 1, "C22H28F"}, {0, 2, 3});
  ASSERT_TRUE(lat.ok());
  UserOracle oracle(&ex.clean);
  SearchStats stats;
  size_t callback_changes = 0;
  LatticeSearchContext ctx(&*lat, &dirty, &oracle, 5, false, false, nullptr,
                           &stats, [&](const RowSet& rows, size_t col) {
                             EXPECT_EQ(col, 1u);
                             callback_changes += rows.Count();
                           });
  // ML node: Molecule=bit0, Laboratory=bit2.
  // Bits: 0=Date, 1=Laboratory, 2=Quantity, 3=Molecule (target last).
  NodeId ml = 0b1010;  // {Molecule, Laboratory}
  auto res = ctx.Ask(ml);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->valid);
  EXPECT_EQ(dirty.CellText(1, 1), "C22H28F");
  EXPECT_EQ(dirty.CellText(4, 1), "C22H28F");
  EXPECT_EQ(callback_changes, 2u);
  EXPECT_EQ(stats.applies, 1u);
  EXPECT_EQ(stats.cells_changed, 2u);
  // Validity recorded plus inference.
  EXPECT_EQ(lat->validity(ml), Validity::kValid);
  EXPECT_EQ(lat->validity(0b1110), Validity::kValid);
}

TEST(SearchContextTest, AskMarksInvalidWithInference) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  auto lat = Lattice::Build(dirty, Repair{1, 1, "C22H28F"}, {0, 2, 3});
  ASSERT_TRUE(lat.ok());
  UserOracle oracle(&ex.clean);
  SearchStats stats;
  LatticeSearchContext ctx(&*lat, &dirty, &oracle, 5, false, false, nullptr,
                           &stats, nullptr);
  NodeId m = 0b1000;  // Molecule=statin alone: invalid (t4 is clean).
  auto res = ctx.Ask(m);
  ASSERT_TRUE(res.has_value());
  EXPECT_FALSE(res->valid);
  EXPECT_EQ(lat->validity(m), Validity::kInvalid);
  EXPECT_EQ(lat->validity(lat->bottom()), Validity::kInvalid);
  EXPECT_EQ(dirty.CellText(1, 1), "statin");  // Nothing applied.
}

TEST(SearchContextTest, ClosedSetRedirectsToRepresentative) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  auto lat = Lattice::Build(dirty, Repair{1, 1, "C22H28F"}, {0, 2, 3});
  ASSERT_TRUE(lat.ok());
  UserOracle oracle(&ex.clean);
  SearchStats stats;
  LatticeSearchContext ctx(&*lat, &dirty, &oracle, 5, /*closed_sets=*/true,
                           false, nullptr, &stats, nullptr);
  // DL (Date bit0 | Laboratory bit1 = 0b0011) belongs to the closed set
  // whose representative is the top node.
  auto res = ctx.Ask(0b0011);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->asked, lat->top());
  EXPECT_TRUE(res->valid);
}

TEST(SearchAlgorithmsTest, AllAlgorithmsRespectBudget) {
  for (SearchKind kind :
       {SearchKind::kBfs, SearchKind::kDfs, SearchKind::kDucc,
        SearchKind::kDive, SearchKind::kCoDive, SearchKind::kOffline}) {
    auto algo = MakeSearchAlgorithm(kind);
    EpisodeResult r = RunEpisode(*algo, 3, true);
    EXPECT_LE(r.answers, 3u) << SearchKindName(kind);
  }
}

TEST(SearchAlgorithmsTest, DiveFindsTheGroupRepairQuickly) {
  DiveSearch dive;
  EpisodeResult r = RunEpisode(dive, 4, /*closed_sets=*/true);
  // Dive must discover a valid generalization that repairs t5 within a
  // small budget on this tiny lattice (4 jumps suffice: D → DMQ → LQ →
  // MLQ, the last of which is valid and repairs the statin group).
  EXPECT_TRUE(r.group_repaired);
}

TEST(SearchAlgorithmsTest, OfflineIsClairvoyant) {
  OfflineSearch offline;
  EpisodeResult r = RunEpisode(offline, 2, /*closed_sets=*/false);
  EXPECT_TRUE(r.group_repaired);
  // Offline never asks about invalid nodes, so every answer applied a rule.
  EXPECT_GE(r.answers, 1u);
}

TEST(SearchAlgorithmsTest, NamesAreStable) {
  EXPECT_EQ(MakeSearchAlgorithm(SearchKind::kBfs)->name(), "BFS");
  EXPECT_EQ(MakeSearchAlgorithm(SearchKind::kDfs)->name(), "DFS");
  EXPECT_EQ(MakeSearchAlgorithm(SearchKind::kDucc)->name(), "Ducc");
  EXPECT_EQ(MakeSearchAlgorithm(SearchKind::kDive)->name(), "Dive");
  EXPECT_EQ(MakeSearchAlgorithm(SearchKind::kCoDive)->name(), "CoDive");
  EXPECT_EQ(MakeSearchAlgorithm(SearchKind::kOffline)->name(), "OffLine");
  EXPECT_STREQ(SearchKindName(SearchKind::kCoDive), "CoDive");
}

TEST(SearchAlgorithmsTest, InferenceNeverContradictsGroundTruth) {
  // Property: with a mistake-free oracle, every node the lattice marks
  // valid must be truly valid, and every node marked invalid truly invalid,
  // for every algorithm.
  auto ds = MakeSynth(800);
  ASSERT_TRUE(ds.ok());
  auto dirty_inst = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty_inst.ok());
  UserOracle oracle(&ds->clean);

  for (SearchKind kind :
       {SearchKind::kBfs, SearchKind::kDfs, SearchKind::kDucc,
        SearchKind::kDive, SearchKind::kCoDive}) {
    Table dirty = dirty_inst->dirty.Clone();
    const ErrorCell& e = dirty_inst->errors[3];
    std::vector<size_t> cols;
    for (size_t c = 0; c < dirty.num_cols() && cols.size() < 5; ++c) {
      if (c != e.col) cols.push_back(c);
    }
    auto lat = Lattice::Build(
        dirty, Repair{e.row, e.col,
                      std::string(ds->clean.pool()->Get(e.clean_value))},
        cols);
    ASSERT_TRUE(lat.ok());
    lat->MarkValid(lat->top());
    SearchStats stats;
    LatticeSearchContext ctx(&*lat, &dirty, &oracle, 6, true, false, nullptr,
                             &stats, nullptr);
    auto algo = MakeSearchAlgorithm(kind);
    algo->Run(ctx);
    for (NodeId m = 0; m < lat->num_nodes(); ++m) {
      if (lat->validity(m) == Validity::kValid) {
        EXPECT_TRUE(oracle.TrueValid(*lat, m))
            << SearchKindName(kind) << " node " << m;
      }
      // Invalid marks cannot be cross-checked after applies (affected sets
      // shrink), but valid ones must always be safe to execute.
    }
  }
}

}  // namespace
}  // namespace falcon
