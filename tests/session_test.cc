#include "core/session.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

struct Workload {
  Table clean;
  Table dirty;
  size_t errors;
};

Workload MakeWorkload(size_t rows = 1500) {
  auto ds = MakeSynth(rows);
  EXPECT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  EXPECT_TRUE(dirty.ok()) << dirty.status();
  return {ds->clean.Clone(), dirty->dirty.Clone(), dirty->errors.size()};
}

TEST(SessionTest, ConvergesToCleanInstance) {
  Workload w = MakeWorkload();
  SessionOptions options;
  options.budget = 3;
  auto m = RunCleaning(w.clean, w.dirty, SearchKind::kDive, options);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->converged);
  EXPECT_EQ(m->initial_errors, w.errors);
  EXPECT_GT(m->user_updates, 0u);
}

TEST(SessionTest, EveryAlgorithmConverges) {
  Workload w = MakeWorkload(800);
  for (SearchKind kind :
       {SearchKind::kBfs, SearchKind::kDfs, SearchKind::kDucc,
        SearchKind::kDive, SearchKind::kCoDive, SearchKind::kOffline}) {
    SessionOptions options;
    options.budget = 3;
    auto m = RunCleaning(w.clean, w.dirty, kind, options);
    ASSERT_TRUE(m.ok()) << SearchKindName(kind) << ": " << m.status();
    EXPECT_TRUE(m->converged) << SearchKindName(kind);
    // Interaction accounting: answers never exceed B per update.
    EXPECT_LE(m->user_answers, m->user_updates * options.budget)
        << SearchKindName(kind);
  }
}

TEST(SessionTest, DeltaMaintainedIndexMatchesInvalidationMode) {
  // The delta-maintained posting cache must be behaviour-preserving: the
  // same session in delta, invalidate, and budgeted-eviction mode has to
  // produce bit-identical interaction metrics.
  Workload w = MakeWorkload(2000);
  SessionOptions delta;
  delta.budget = 3;
  delta.posting_delta = true;
  SessionOptions legacy = delta;
  legacy.posting_delta = false;
  SessionOptions budgeted = delta;
  budgeted.posting_budget_bytes = 4096;  // Tight cap: constant evictions.

  auto md = RunCleaning(w.clean, w.dirty, SearchKind::kDive, delta);
  auto mi = RunCleaning(w.clean, w.dirty, SearchKind::kDive, legacy);
  auto mb = RunCleaning(w.clean, w.dirty, SearchKind::kDive, budgeted);
  ASSERT_TRUE(md.ok());
  ASSERT_TRUE(mi.ok());
  ASSERT_TRUE(mb.ok());
  for (const auto* m : {&*mi, &*mb}) {
    EXPECT_EQ(m->user_updates, md->user_updates);
    EXPECT_EQ(m->user_answers, md->user_answers);
    EXPECT_EQ(m->cells_repaired, md->cells_repaired);
    EXPECT_EQ(m->queries_applied, md->queries_applied);
    EXPECT_EQ(m->converged, md->converged);
  }
  EXPECT_TRUE(md->converged);
  // The counters surface in the metrics: delta mode reports patched rows,
  // the legacy mode reports rescans instead, the budgeted run evictions.
  EXPECT_GT(md->posting_misses, 0u);
  EXPECT_EQ(mi->posting_delta_rows, 0u);
  EXPECT_GE(mi->posting_misses, md->posting_misses);
  EXPECT_GT(mb->posting_evictions, 0u);
}

TEST(SessionTest, RuleErrorsAmortizeUserUpdates) {
  // Rule-injected errors come in pattern groups a single validated query
  // repairs, so U must be far below |errors| and the benefit positive for
  // multi-hop search once groups are big enough to amortize questions.
  Workload w = MakeWorkload(4000);
  SessionOptions options;
  options.budget = 5;
  auto m = RunCleaning(w.clean, w.dirty, SearchKind::kCoDive, options);
  ASSERT_TRUE(m.ok());
  EXPECT_LT(m->user_updates, w.errors / 2);
  EXPECT_GT(m->Benefit(), 0.0);
}

TEST(SessionTest, OfflineDominatesOnlineBenefit) {
  Workload w = MakeWorkload(800);
  SessionOptions options;
  options.budget = 3;
  auto off = RunCleaning(w.clean, w.dirty, SearchKind::kOffline, options);
  auto bfs = RunCleaning(w.clean, w.dirty, SearchKind::kBfs, options);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(bfs.ok());
  EXPECT_GT(off->Benefit(), bfs->Benefit());
}

TEST(SessionTest, BiggerBudgetNeverIncreasesUpdates) {
  Workload w = MakeWorkload(800);
  SessionOptions b2;
  b2.budget = 2;
  SessionOptions b5;
  b5.budget = 5;
  auto m2 = RunCleaning(w.clean, w.dirty, SearchKind::kDive, b2);
  auto m5 = RunCleaning(w.clean, w.dirty, SearchKind::kDive, b5);
  ASSERT_TRUE(m2.ok());
  ASSERT_TRUE(m5.ok());
  EXPECT_LE(m5->user_updates, m2->user_updates + 5);
}

TEST(SessionTest, MetricsArithmetic) {
  SessionMetrics m;
  m.user_updates = 10;
  m.user_answers = 15;
  m.initial_errors = 100;
  EXPECT_EQ(m.TotalCost(), 25u);
  EXPECT_DOUBLE_EQ(m.Benefit(), 0.75);
  SessionMetrics zero;
  EXPECT_DOUBLE_EQ(zero.Benefit(), 0.0);
}

TEST(SessionTest, AlreadyCleanInstanceIsTrivial) {
  auto ds = MakeSynth(500);
  ASSERT_TRUE(ds.ok());
  auto m = RunCleaning(ds->clean, ds->clean, SearchKind::kDive, {});
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->converged);
  EXPECT_EQ(m->TotalCost(), 0u);
}

TEST(SessionTest, RejectsMismatchedTables) {
  auto ds = MakeSynth(500);
  auto other = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(RunCleaning(ds->clean, other->clean, SearchKind::kDive, {})
                   .ok());
  // Distinct pools are rejected even with identical shapes.
  auto ds2 = MakeSynth(500);
  ASSERT_TRUE(ds2.ok());
  EXPECT_FALSE(RunCleaning(ds->clean, ds2->clean, SearchKind::kDive, {})
                   .ok());
}

TEST(SessionTest, QuestionMistakesStillConverge) {
  Workload w = MakeWorkload(800);
  SessionOptions options;
  options.budget = 3;
  options.question_mistake_prob = 0.03;
  options.seed = 77;
  auto clean_run = RunCleaning(w.clean, w.dirty, SearchKind::kCoDive,
                               SessionOptions{});
  auto m = RunCleaning(w.clean, w.dirty, SearchKind::kCoDive, options);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->converged);
  ASSERT_TRUE(clean_run.ok());
  // Self-healing costs extra interactions (Exp-5).
  EXPECT_GE(m->TotalCost() + 5, clean_run->TotalCost());
}

TEST(SessionTest, UpdateMistakesStillConverge) {
  Workload w = MakeWorkload(800);
  SessionOptions options;
  options.budget = 3;
  options.update_mistake_prob = 0.05;
  options.seed = 78;
  auto m = RunCleaning(w.clean, w.dirty, SearchKind::kDive, options);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->converged);
}

TEST(SessionTest, NaiveMaintenanceGivesSameOutcome) {
  Workload w = MakeWorkload(800);
  SessionOptions incremental;
  SessionOptions naive;
  naive.naive_maintenance = true;
  auto a = RunCleaning(w.clean, w.dirty, SearchKind::kDive, incremental);
  auto b = RunCleaning(w.clean, w.dirty, SearchKind::kDive, naive);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->converged);
  EXPECT_EQ(a->user_updates, b->user_updates);
  EXPECT_EQ(a->user_answers, b->user_answers);
}

TEST(SessionTest, MasterDataVariantConverges) {
  Workload w = MakeWorkload(800);
  SessionOptions options;
  options.lattice.exclude_target_attr = true;
  auto m = RunCleaning(w.clean, w.dirty, SearchKind::kDive, options);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->converged);
}

TEST(SessionTest, DetectorDrivenModeRepairsDetectableErrors) {
  // Without an omniscient worklist, the user only repairs what the
  // FD-violation detector flags. On Soccer most rule errors are visible
  // through group consensus; fully corrupted groups and random typos are
  // not, so the run ends honestly unconverged with a large repaired share.
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty_inst = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty_inst.ok());

  Table working = dirty_inst->dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kCoDive);
  SessionOptions options;
  options.budget = 3;
  options.detector_driven = true;
  CleaningSession session(&ds->clean, &working, algo.get(), options);
  auto m = session.Run();
  ASSERT_TRUE(m.ok()) << m.status();

  size_t residual = working.CountDiffCells(ds->clean);
  EXPECT_LT(residual, m->initial_errors);           // Real progress.
  EXPECT_GT(m->cells_repaired, m->initial_errors / 3);
  EXPECT_EQ(m->converged, residual == 0);
  // The detector-driven user never touches clean cells.
  EXPECT_LE(m->user_updates, m->initial_errors);
}

TEST(SessionTest, DetectorDrivenOnCleanDataDoesNothing) {
  auto ds = MakeSynth(800);
  ASSERT_TRUE(ds.ok());
  Table working = ds->clean.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  SessionOptions options;
  options.detector_driven = true;
  CleaningSession session(&ds->clean, &working, algo.get(), options);
  auto m = session.Run();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->TotalCost(), 0u);
  EXPECT_TRUE(m->converged);
}

TEST(SessionTest, TimingCountersArePopulated) {
  Workload w = MakeWorkload(800);
  auto m = RunCleaning(w.clean, w.dirty, SearchKind::kDive, {});
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->lattices_built, 0u);
  EXPECT_GT(m->lattice_build_ms, 0.0);
}

}  // namespace
}  // namespace falcon
