// Compile-and-run check for the umbrella header: one include must expose
// the whole public API.
#include "falcon.h"

#include <gtest/gtest.h>

namespace falcon {
namespace {

TEST(UmbrellaTest, EndToEndThroughSingleInclude) {
  auto dataset = MakeSynth(600);
  ASSERT_TRUE(dataset.ok());
  auto dirty = InjectErrors(dataset->clean, dataset->error_spec);
  ASSERT_TRUE(dirty.ok());
  auto metrics = RunCleaning(dataset->clean, dirty->dirty,
                             SearchKind::kCoDive, {});
  ASSERT_TRUE(metrics.ok());
  EXPECT_TRUE(metrics->converged);
}

}  // namespace
}  // namespace falcon
