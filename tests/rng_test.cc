#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace falcon {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint(1000), b.NextUint(1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint(1 << 30) != b.NextUint(1 << 30)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(RngTest, NextUintInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(7);
  int yes = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) ++yes;
  }
  EXPECT_NEAR(yes, 2500, 250);
}

TEST(RngTest, SkewedPrefersSmallIndexes) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.NextSkewed(10, 1.0)];
  }
  EXPECT_GT(counts[0], counts[9] * 2);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 10000);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, NextWeightedFavorsHeavyWeights) {
  Rng rng(7);
  std::vector<double> weights = {1.0, 0.0, 9.0};
  int heavy = 0;
  for (int i = 0; i < 5000; ++i) {
    size_t pick = rng.NextWeighted(weights);
    EXPECT_NE(pick, 1u);
    if (pick == 2) ++heavy;
  }
  EXPECT_NEAR(heavy, 4500, 300);
}

}  // namespace
}  // namespace falcon
