#include "relational/select.h"

#include <gtest/gtest.h>

#include "common/str_util.h"
#include "datagen/datasets.h"

namespace falcon {
namespace {

Table Drug() { return MakeDrugExample().dirty; }

TEST(SelectParseTest, ParsesProjectionAndWhere) {
  auto q = ParseSelect(
      "SELECT Molecule, Laboratory FROM T WHERE Quantity = '200';");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->columns, (std::vector<std::string>{"Molecule", "Laboratory"}));
  EXPECT_FALSE(q->star);
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].attr, "Quantity");
}

TEST(SelectParseTest, ParsesStarCountGroupOrderLimit) {
  auto q = ParseSelect(
      "select Laboratory, count(*) from T group by Laboratory "
      "order by count desc limit 3");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->count_star);
  ASSERT_TRUE(q->group_by.has_value());
  EXPECT_EQ(*q->group_by, "Laboratory");
  ASSERT_TRUE(q->order_by.has_value());
  EXPECT_EQ(*q->order_by, "count");
  EXPECT_TRUE(q->order_desc);
  EXPECT_EQ(*q->limit, 3u);
}

TEST(SelectParseTest, RejectsMalformed) {
  EXPECT_FALSE(ParseSelect("UPDATE T SET A='x'").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM T").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM T WHERE b").ok());
  EXPECT_FALSE(ParseSelect("SELECT COUNT(* FROM T").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM T LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM T GROUP Laboratory").ok());
}

TEST(SelectExecTest, ProjectionAndFilter) {
  Table t = Drug();
  auto r = RunSelect(t, "SELECT Molecule FROM T WHERE Laboratory = 'Austin'");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->CellText(0, 0), "C16H16Cl");
  EXPECT_EQ(r->CellText(1, 0), "statin");
  EXPECT_EQ(r->CellText(2, 0), "statin");
}

TEST(SelectExecTest, StarReturnsAllColumns) {
  Table t = Drug();
  auto r = RunSelect(t, "SELECT * FROM T WHERE Quantity = '150'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_cols(), 4u);
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->CellText(0, 2), "Dubai");
}

TEST(SelectExecTest, PlainCount) {
  Table t = Drug();
  auto r = RunSelect(t, "SELECT COUNT(*) FROM T WHERE Molecule = 'statin'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->CellText(0, 0), "3");
}

TEST(SelectExecTest, GroupByWithCount) {
  Table t = Drug();
  auto r = RunSelect(
      t, "SELECT Laboratory, COUNT(*) FROM T GROUP BY Laboratory "
         "ORDER BY count DESC");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 4u);
  EXPECT_EQ(r->CellText(0, 0), "Austin");
  EXPECT_EQ(r->CellText(0, 1), "3");
}

TEST(SelectExecTest, OrderByStringsAndLimit) {
  Table t = Drug();
  auto r = RunSelect(t, "SELECT Laboratory FROM T ORDER BY Laboratory LIMIT 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->CellText(0, 0), "Austin");
  EXPECT_EQ(r->CellText(1, 0), "Austin");
}

TEST(SelectExecTest, UnknownColumnsFail) {
  Table t = Drug();
  EXPECT_FALSE(RunSelect(t, "SELECT Nope FROM T").ok());
  EXPECT_FALSE(RunSelect(t, "SELECT * FROM T WHERE Nope = 'x'").ok());
  EXPECT_FALSE(RunSelect(t, "SELECT * FROM T ORDER BY Nope").ok());
  EXPECT_FALSE(RunSelect(t, "SELECT Molecule FROM T GROUP BY Laboratory").ok());
  EXPECT_FALSE(
      RunSelect(t, "SELECT Molecule, COUNT(*) FROM T").ok());
}

TEST(SelectExecTest, UnseenConstantYieldsEmpty) {
  Table t = Drug();
  auto r = RunSelect(t, "SELECT * FROM T WHERE Laboratory = 'Atlantis'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
}

TEST(SelectExecTest, OrderByMixedNumericFallsBackToLexicographic) {
  // One non-numeric value in the column must demote the whole sort to
  // lexicographic ordering ("9" > "10" as strings), ascending and
  // descending alike — a regression guard for the precomputed-key sort.
  Table t("mix", Schema({"Id", "Val"}));
  t.AppendRow({"a", "9"});
  t.AppendRow({"b", "10"});
  t.AppendRow({"c", "x2"});
  t.AppendRow({"d", "100"});

  auto asc = RunSelect(t, "SELECT Val FROM mix ORDER BY Val");
  ASSERT_TRUE(asc.ok()) << asc.status();
  EXPECT_EQ(asc->CellText(0, 0), "10");
  EXPECT_EQ(asc->CellText(1, 0), "100");
  EXPECT_EQ(asc->CellText(2, 0), "9");
  EXPECT_EQ(asc->CellText(3, 0), "x2");

  auto desc = RunSelect(t, "SELECT Val FROM mix ORDER BY Val DESC");
  ASSERT_TRUE(desc.ok()) << desc.status();
  EXPECT_EQ(desc->CellText(0, 0), "x2");
  EXPECT_EQ(desc->CellText(3, 0), "10");

  // Purely numeric columns still sort numerically (9 < 10 < 100).
  Table n("num", Schema({"Val"}));
  n.AppendRow({"100"});
  n.AppendRow({"9"});
  n.AppendRow({"10"});
  auto num = RunSelect(n, "SELECT Val FROM num ORDER BY Val");
  ASSERT_TRUE(num.ok()) << num.status();
  EXPECT_EQ(num->CellText(0, 0), "9");
  EXPECT_EQ(num->CellText(1, 0), "10");
  EXPECT_EQ(num->CellText(2, 0), "100");
}

TEST(SelectExecTest, WorksOnGeneratedData) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto r = RunSelect(ds->clean,
                     "SELECT Club, COUNT(*) FROM soccer GROUP BY Club "
                     "ORDER BY count DESC LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_rows(), 5u);
  // Counts descending.
  EXPECT_GE(ParseInt64(r->CellText(0, 1)), ParseInt64(r->CellText(4, 1)));
}

}  // namespace
}  // namespace falcon
