#include <gtest/gtest.h>

#include "relational/schema.h"
#include "relational/table.h"

namespace falcon {
namespace {

Schema DrugSchema() {
  return Schema({"Date", "Molecule", "Laboratory", "Quantity"});
}

TEST(SchemaTest, ArityAndLookup) {
  Schema s = DrugSchema();
  EXPECT_EQ(s.arity(), 4u);
  EXPECT_EQ(s.attribute(0), "Date");
  EXPECT_EQ(s.AttrIndex("Laboratory"), 2);
  EXPECT_EQ(s.AttrIndex("Nope"), -1);
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(DrugSchema(), DrugSchema());
  EXPECT_FALSE(DrugSchema() == Schema({"A"}));
}

TEST(TableTest, AppendAndRead) {
  Table t("T", DrugSchema());
  t.AppendRow({"11 Nov", "statin", "Austin", "200"});
  t.AppendRow({"12 Nov", "statin", "Boston", "200"});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 4u);
  EXPECT_EQ(t.CellText(0, 2), "Austin");
  EXPECT_EQ(t.CellText(1, 2), "Boston");
  // Same string interns to same id across rows and columns.
  EXPECT_EQ(t.cell(0, 1), t.cell(1, 1));
  EXPECT_EQ(t.cell(0, 3), t.cell(1, 3));
}

TEST(TableTest, SetCellText) {
  Table t("T", DrugSchema());
  t.AppendRow({"11 Nov", "statin", "Austin", "200"});
  t.SetCellText(0, 1, "C22H28F");
  EXPECT_EQ(t.CellText(0, 1), "C22H28F");
}

TEST(TableTest, ScanEquals) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  t.AppendRow({"b", "other", "Austin", "100"});
  t.AppendRow({"c", "statin", "Boston", "200"});
  RowSet austin = t.ScanEquals(2, t.Lookup("Austin"));
  EXPECT_EQ(austin.ToVector(), (std::vector<uint32_t>{0, 1}));
  RowSet statin = t.ScanEquals(1, t.Lookup("statin"));
  EXPECT_EQ(statin.ToVector(), (std::vector<uint32_t>{0, 2}));
}

TEST(TableTest, ScanEqualsMultiMatchesSingleScans) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  t.AppendRow({"b", "other", "Austin", "100"});
  t.AppendRow({"c", "statin", "Boston", "200"});
  std::vector<ValueId> values = {t.Lookup("Austin"), t.Lookup("Boston"),
                                 t.Lookup("nowhere")};
  std::vector<RowSet> multi = t.ScanEqualsMulti(2, values);
  ASSERT_EQ(multi.size(), 3u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(multi[i], t.ScanEquals(2, values[i])) << "value " << i;
  }
  EXPECT_TRUE(t.ScanEqualsMulti(2, {}).empty());
}

TEST(TableTest, ScanEqualsCrossesWordBoundaries) {
  // >64 rows so the word-blocked kernel handles full and partial words.
  Table t("T", Schema({"A"}));
  for (size_t r = 0; r < 150; ++r) {
    t.AppendRow({r % 3 == 0 ? "hit" : "miss"});
  }
  RowSet rows = t.ScanEquals(0, t.Lookup("hit"));
  EXPECT_EQ(rows.Count(), 50u);
  for (size_t r = 0; r < 150; ++r) {
    EXPECT_EQ(rows.Test(r), r % 3 == 0) << "row " << r;
  }
}

TEST(TableTest, ScanConjunction) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  t.AppendRow({"b", "other", "Austin", "100"});
  t.AppendRow({"c", "statin", "Boston", "200"});
  RowSet rows = t.ScanConjunction(
      {{1, t.Lookup("statin")}, {2, t.Lookup("Austin")}});
  EXPECT_EQ(rows.ToVector(), (std::vector<uint32_t>{0}));
  // Empty conjunction matches everything.
  EXPECT_EQ(t.ScanConjunction({}).Count(), 3u);
}

TEST(TableTest, DistinctCountIgnoresNull) {
  Table t("T", Schema({"A"}));
  t.AppendRow({"x"});
  t.AppendRow({"y"});
  t.AppendRow({"x"});
  t.AppendRow({""});  // NULL.
  EXPECT_EQ(t.DistinctCount(0), 2u);
}

TEST(TableTest, CloneSharesPoolButNotCells) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  Table copy = t.Clone();
  EXPECT_EQ(copy.pool(), t.pool());
  copy.SetCellText(0, 2, "Boston");
  EXPECT_EQ(t.CellText(0, 2), "Austin");
  EXPECT_EQ(copy.CellText(0, 2), "Boston");
}

TEST(TableTest, CountDiffCells) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  t.AppendRow({"b", "other", "Boston", "100"});
  Table copy = t.Clone();
  EXPECT_EQ(t.CountDiffCells(copy), 0u);
  copy.SetCellText(0, 1, "x");
  copy.SetCellText(1, 3, "y");
  EXPECT_EQ(t.CountDiffCells(copy), 2u);
}

TEST(TableTest, CloneSharesColumnStorageUntilWritten) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  t.AppendRow({"b", "other", "Boston", "100"});
  EXPECT_EQ(t.SharedColumnCount(), 0u);

  Table copy = t.Clone();
  // All four columns are shared on both sides — Clone is O(arity).
  EXPECT_EQ(t.SharedColumnCount(), 4u);
  EXPECT_EQ(copy.SharedColumnCount(), 4u);

  // Writing one cell detaches exactly that column; the rest stay shared.
  copy.SetCellText(0, 2, "Boston");
  EXPECT_EQ(copy.SharedColumnCount(), 3u);
  EXPECT_EQ(t.SharedColumnCount(), 3u);
  EXPECT_EQ(t.CellText(0, 2), "Austin");

  // A second write to the already-private column detaches nothing more.
  copy.SetCellText(1, 2, "Austin");
  EXPECT_EQ(copy.SharedColumnCount(), 3u);
}

TEST(TableTest, ManySnapshotsLeaveBaseUntouched) {
  Table base("T", DrugSchema());
  for (int i = 0; i < 64; ++i) {
    base.AppendRow({"id" + std::to_string(i), "statin", "Austin", "200"});
  }
  std::vector<Table> snaps;
  for (int s = 0; s < 8; ++s) snaps.push_back(base.Clone());
  for (int s = 0; s < 8; ++s) {
    snaps[s].SetCellText(static_cast<size_t>(s), 2, "Boston");
  }
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(base.CountDiffCells(snaps[s]), 1u) << "snapshot " << s;
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(base.CellText(i, 2), "Austin");
}

TEST(TableTest, WritingTheBaseDetachesFromSnapshots) {
  // COW must protect both directions: a clone is also isolated from later
  // writes to the table it was cloned from.
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  Table snap = t.Clone();
  t.SetCellText(0, 3, "999");
  EXPECT_EQ(snap.CellText(0, 3), "200");
  EXPECT_EQ(t.CellText(0, 3), "999");
}

TEST(TableTest, ToStringTruncates) {
  Table t("T", Schema({"A"}));
  for (int i = 0; i < 30; ++i) t.AppendRow({std::to_string(i)});
  std::string s = t.ToString(5);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace falcon
