#include <gtest/gtest.h>

#include "relational/schema.h"
#include "relational/table.h"

namespace falcon {
namespace {

Schema DrugSchema() {
  return Schema({"Date", "Molecule", "Laboratory", "Quantity"});
}

TEST(SchemaTest, ArityAndLookup) {
  Schema s = DrugSchema();
  EXPECT_EQ(s.arity(), 4u);
  EXPECT_EQ(s.attribute(0), "Date");
  EXPECT_EQ(s.AttrIndex("Laboratory"), 2);
  EXPECT_EQ(s.AttrIndex("Nope"), -1);
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(DrugSchema(), DrugSchema());
  EXPECT_FALSE(DrugSchema() == Schema({"A"}));
}

TEST(TableTest, AppendAndRead) {
  Table t("T", DrugSchema());
  t.AppendRow({"11 Nov", "statin", "Austin", "200"});
  t.AppendRow({"12 Nov", "statin", "Boston", "200"});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 4u);
  EXPECT_EQ(t.CellText(0, 2), "Austin");
  EXPECT_EQ(t.CellText(1, 2), "Boston");
  // Same string interns to same id across rows and columns.
  EXPECT_EQ(t.cell(0, 1), t.cell(1, 1));
  EXPECT_EQ(t.cell(0, 3), t.cell(1, 3));
}

TEST(TableTest, SetCellText) {
  Table t("T", DrugSchema());
  t.AppendRow({"11 Nov", "statin", "Austin", "200"});
  t.SetCellText(0, 1, "C22H28F");
  EXPECT_EQ(t.CellText(0, 1), "C22H28F");
}

TEST(TableTest, ScanEquals) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  t.AppendRow({"b", "other", "Austin", "100"});
  t.AppendRow({"c", "statin", "Boston", "200"});
  RowSet austin = t.ScanEquals(2, t.Lookup("Austin"));
  EXPECT_EQ(austin.ToVector(), (std::vector<uint32_t>{0, 1}));
  RowSet statin = t.ScanEquals(1, t.Lookup("statin"));
  EXPECT_EQ(statin.ToVector(), (std::vector<uint32_t>{0, 2}));
}

TEST(TableTest, ScanEqualsMultiMatchesSingleScans) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  t.AppendRow({"b", "other", "Austin", "100"});
  t.AppendRow({"c", "statin", "Boston", "200"});
  std::vector<ValueId> values = {t.Lookup("Austin"), t.Lookup("Boston"),
                                 t.Lookup("nowhere")};
  std::vector<RowSet> multi = t.ScanEqualsMulti(2, values);
  ASSERT_EQ(multi.size(), 3u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(multi[i], t.ScanEquals(2, values[i])) << "value " << i;
  }
  EXPECT_TRUE(t.ScanEqualsMulti(2, {}).empty());
}

TEST(TableTest, ScanEqualsCrossesWordBoundaries) {
  // >64 rows so the word-blocked kernel handles full and partial words.
  Table t("T", Schema({"A"}));
  for (size_t r = 0; r < 150; ++r) {
    t.AppendRow({r % 3 == 0 ? "hit" : "miss"});
  }
  RowSet rows = t.ScanEquals(0, t.Lookup("hit"));
  EXPECT_EQ(rows.Count(), 50u);
  for (size_t r = 0; r < 150; ++r) {
    EXPECT_EQ(rows.Test(r), r % 3 == 0) << "row " << r;
  }
}

TEST(TableTest, ScanConjunction) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  t.AppendRow({"b", "other", "Austin", "100"});
  t.AppendRow({"c", "statin", "Boston", "200"});
  RowSet rows = t.ScanConjunction(
      {{1, t.Lookup("statin")}, {2, t.Lookup("Austin")}});
  EXPECT_EQ(rows.ToVector(), (std::vector<uint32_t>{0}));
  // Empty conjunction matches everything.
  EXPECT_EQ(t.ScanConjunction({}).Count(), 3u);
}

TEST(TableTest, DistinctCountIgnoresNull) {
  Table t("T", Schema({"A"}));
  t.AppendRow({"x"});
  t.AppendRow({"y"});
  t.AppendRow({"x"});
  t.AppendRow({""});  // NULL.
  EXPECT_EQ(t.DistinctCount(0), 2u);
}

TEST(TableTest, CloneSharesPoolButNotCells) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  Table copy = t.Clone();
  EXPECT_EQ(copy.pool(), t.pool());
  copy.SetCellText(0, 2, "Boston");
  EXPECT_EQ(t.CellText(0, 2), "Austin");
  EXPECT_EQ(copy.CellText(0, 2), "Boston");
}

TEST(TableTest, CountDiffCells) {
  Table t("T", DrugSchema());
  t.AppendRow({"a", "statin", "Austin", "200"});
  t.AppendRow({"b", "other", "Boston", "100"});
  Table copy = t.Clone();
  EXPECT_EQ(t.CountDiffCells(copy), 0u);
  copy.SetCellText(0, 1, "x");
  copy.SetCellText(1, 3, "y");
  EXPECT_EQ(t.CountDiffCells(copy), 2u);
}

TEST(TableTest, ToStringTruncates) {
  Table t("T", Schema({"A"}));
  for (int i = 0; i < 30; ++i) t.AppendRow({std::to_string(i)});
  std::string s = t.ToString(5);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace falcon
