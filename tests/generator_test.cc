#include "datagen/generator.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "errorgen/cfd.h"

namespace falcon {
namespace {

TableSpec SmallSpec() {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 500;
  spec.seed = 3;
  AttrSpec key;
  key.name = "Key";
  key.kind = AttrSpec::Kind::kUnique;
  key.prefix = "K";
  AttrSpec cat;
  cat.name = "Cat";
  cat.kind = AttrSpec::Kind::kCategorical;
  cat.domain = 10;
  cat.prefix = "C";
  AttrSpec child;
  child.name = "Child";
  child.kind = AttrSpec::Kind::kDerived;
  child.domain = 100;
  child.parents = {"Cat"};
  child.prefix = "D";
  spec.attrs = {key, cat, child};
  return spec;
}

TEST(GeneratorTest, ProducesRequestedShape) {
  auto t = GenerateTable(SmallSpec());
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 500u);
  EXPECT_EQ(t->num_cols(), 3u);
  EXPECT_EQ(t->schema().attribute(0), "Key");
}

TEST(GeneratorTest, UniqueAttributeIsUnique) {
  auto t = GenerateTable(SmallSpec());
  ASSERT_TRUE(t.ok());
  std::unordered_set<ValueId> seen;
  for (size_t r = 0; r < t->num_rows(); ++r) {
    EXPECT_TRUE(seen.insert(t->cell(r, 0)).second);
  }
}

TEST(GeneratorTest, CategoricalStaysInDomain) {
  auto t = GenerateTable(SmallSpec());
  ASSERT_TRUE(t.ok());
  EXPECT_LE(t->DistinctCount(1), 10u);
  EXPECT_GE(t->DistinctCount(1), 5u);  // 500 draws should hit most values.
}

TEST(GeneratorTest, DerivedAttributeIsExactFd) {
  auto t = GenerateTable(SmallSpec());
  ASSERT_TRUE(t.ok());
  FdRule rule;
  rule.lhs = {"Cat"};
  rule.rhs = "Child";
  EXPECT_TRUE(FdHolds(*t, rule));
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateTable(SmallSpec());
  auto b = GenerateTable(SmallSpec());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->CountDiffCells(*b), 0u);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  TableSpec spec = SmallSpec();
  auto a = GenerateTable(spec);
  spec.seed = 4;
  auto b = GenerateTable(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->CountDiffCells(*b), 0u);
}

TEST(GeneratorTest, RejectsDerivedWithoutParents) {
  TableSpec spec = SmallSpec();
  spec.attrs[2].parents.clear();
  EXPECT_FALSE(GenerateTable(spec).ok());
}

TEST(GeneratorTest, RejectsForwardParentReference) {
  TableSpec spec = SmallSpec();
  spec.attrs[2].parents = {"Key"};
  spec.attrs[1].kind = AttrSpec::Kind::kDerived;
  spec.attrs[1].parents = {"Child"};  // Refers to a later attribute.
  EXPECT_FALSE(GenerateTable(spec).ok());
}

TEST(GeneratorTest, PairDerivedNeedsBothParents) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 2000;
  spec.seed = 9;
  AttrSpec a;
  a.name = "A";
  a.kind = AttrSpec::Kind::kCategorical;
  a.domain = 10;
  a.prefix = "A";
  AttrSpec b = a;
  b.name = "B";
  b.prefix = "B";
  AttrSpec c;
  c.name = "C";
  c.kind = AttrSpec::Kind::kDerived;
  c.domain = 30;
  c.parents = {"A", "B"};
  c.prefix = "C";
  spec.attrs = {a, b, c};
  auto t = GenerateTable(spec);
  ASSERT_TRUE(t.ok());
  FdRule both{{"A", "B"}, "C"};
  FdRule only_a{{"A"}, "C"};
  FdRule only_b{{"B"}, "C"};
  EXPECT_TRUE(FdHolds(*t, both));
  EXPECT_FALSE(FdHolds(*t, only_a));
  EXPECT_FALSE(FdHolds(*t, only_b));
}

}  // namespace
}  // namespace falcon
