// Transport-layer tests for the epoll I/O loop: incremental line framing
// (partial lines across reads, several lines per read), response ordering
// over per-connection slots, read-deadline eviction mid-line, oversized
// line rejection, adaptive overload backoff, and the shutdown drain that
// resolves every queued request with a typed UNAVAILABLE.
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/socket.h"
#include "service/client.h"
#include "service/server.h"

namespace falcon {
namespace {

// Small enough that a full-convergence step finishes in well under a
// second; big enough (see kBlockingScale) to pin a worker while a burst
// of pings is framed and queued on the I/O thread.
constexpr double kScale = 0.02;
constexpr double kBlockingScale = 0.3;

void SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    ASSERT_GT(n, 0) << "send failed";
    off += static_cast<size_t>(n);
  }
}

JsonValue ReadResponse(LineChannel& channel) {
  std::string line;
  bool eof = false;
  Status read = channel.ReadLine(&line, &eof);
  EXPECT_TRUE(read.ok()) << read.ToString();
  EXPECT_FALSE(eof);
  auto parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *parsed : JsonValue::Object();
}

TEST(ServiceTransportTest, PartialLineAcrossManyReadsIsReassembled) {
  ServerOptions options;
  options.unix_path = "/tmp/falcon_transport_partial_test.sock";
  options.workers = 1;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto conn = ConnectUnix(options.unix_path);
  ASSERT_TRUE(conn.ok());
  // Drip one request in byte-sized chunks with pauses so the server sees
  // many reads, each ending mid-line, before the newline finally lands.
  const std::string request = "{\"verb\":\"ping\"}\n";
  for (size_t i = 0; i < request.size(); i += 3) {
    SendAll(conn->fd(), request.substr(i, 3));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  LineChannel channel(std::move(conn).value());
  channel.set_read_deadline(10000, /*from_first_byte=*/false);
  JsonValue resp = ReadResponse(channel);
  EXPECT_TRUE(resp.GetBool("ok"));
  EXPECT_GE(resp.GetInt("max_sessions"), 1);

  server.Stop();
  server.Wait();
}

TEST(ServiceTransportTest, ManyLinesInOneReadAnsweredInOrder) {
  ServerOptions options;
  options.unix_path = "/tmp/falcon_transport_batch_test.sock";
  options.workers = 2;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto conn = ConnectUnix(options.unix_path);
  ASSERT_TRUE(conn.ok());
  // One send carrying four frames: ping, a parse error, a NOT_FOUND
  // status, ping. Responses must come back in exactly this order even
  // though the middle two complete on the I/O thread while the pings run
  // on workers (per-connection slots serialize the contiguous prefix).
  SendAll(conn->fd(),
          "{\"verb\":\"ping\"}\n"
          "this is not json\n"
          "{\"verb\":\"status\",\"session\":\"s-999\"}\n"
          "{\"verb\":\"ping\"}\n");
  LineChannel channel(std::move(conn).value());
  channel.set_read_deadline(10000, /*from_first_byte=*/false);

  JsonValue first = ReadResponse(channel);
  EXPECT_TRUE(first.GetBool("ok"));
  EXPECT_GE(first.GetInt("max_sessions"), 1);
  JsonValue second = ReadResponse(channel);
  EXPECT_FALSE(second.GetBool("ok"));
  EXPECT_EQ(second.GetString("code"), "INVALID_ARGUMENT");
  JsonValue third = ReadResponse(channel);
  EXPECT_FALSE(third.GetBool("ok"));
  EXPECT_EQ(third.GetString("code"), "NOT_FOUND");
  JsonValue fourth = ReadResponse(channel);
  EXPECT_TRUE(fourth.GetBool("ok"));
  EXPECT_GE(fourth.GetInt("max_sessions"), 1);

  server.Stop();
  server.Wait();
}

TEST(ServiceTransportTest, ReadDeadlineEvictsMidLineThenClosesConnection) {
  ServerOptions options;
  options.unix_path = "/tmp/falcon_transport_deadline_test.sock";
  options.workers = 1;
  options.read_deadline_ms = 150;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto conn = ConnectUnix(options.unix_path);
  ASSERT_TRUE(conn.ok());
  SendAll(conn->fd(), "{\"verb\":\"pi");  // Never finishes the line.
  LineChannel channel(std::move(conn).value());
  channel.set_read_deadline(10000, /*from_first_byte=*/false);
  JsonValue resp = ReadResponse(channel);
  EXPECT_FALSE(resp.GetBool("ok"));
  EXPECT_EQ(resp.GetString("code"), "DEADLINE_EXCEEDED");
  EXPECT_NE(resp.GetString("error").find("read deadline"),
            std::string::npos);
  // After the typed error the server hangs up: next read is EOF.
  std::string line;
  bool eof = false;
  Status read = channel.ReadLine(&line, &eof);
  ASSERT_TRUE(read.ok()) << read.ToString();
  EXPECT_TRUE(eof);

  server.Stop();
  server.Wait();
}

TEST(ServiceTransportTest, OversizedLineClosesConnection) {
  ServerOptions options;
  options.unix_path = "/tmp/falcon_transport_oversize_test.sock";
  options.workers = 1;
  options.max_line_bytes = 4096;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto conn = ConnectUnix(options.unix_path);
  ASSERT_TRUE(conn.ok());
  // A single frame beyond max_line_bytes: the server drops the connection
  // without buffering the rest (no response — a client that floods gets a
  // hangup, not an error it could retry forever).
  std::string huge = "{\"verb\":\"ping\",\"pad\":\"";
  huge.append(8192, 'x');
  huge += "\"}\n";
  SendAll(conn->fd(), huge);
  LineChannel channel(std::move(conn).value());
  channel.set_read_deadline(10000, /*from_first_byte=*/false);
  std::string line;
  bool eof = false;
  Status read = channel.ReadLine(&line, &eof);
  ASSERT_TRUE(read.ok()) << read.ToString();
  EXPECT_TRUE(eof);
  EXPECT_TRUE(line.empty());

  server.Stop();
  server.Wait();
}

TEST(ServiceTransportTest, RetryAfterHintScalesWithQueueDepth) {
  // One worker, a tiny global queue, and a long-running step pinning the
  // worker: a burst of pings framed in one read fills the queue (hint
  // grows with depth) and overflows it (hint capped at 4x the base).
  ServerOptions options;
  options.unix_path = "/tmp/falcon_transport_backoff_test.sock";
  options.workers = 1;
  options.queue_limit = 4;
  options.session_queue_limit = 0;
  options.retry_after_ms = 20;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto conn_a = ConnectUnix(options.unix_path);
  ASSERT_TRUE(conn_a.ok());
  int fd_a = conn_a->fd();
  LineChannel chan_a(std::move(conn_a).value());
  chan_a.set_read_deadline(60000, /*from_first_byte=*/false);
  SendAll(fd_a,
          "{\"verb\":\"open_session\",\"dataset\":\"Synth10k\","
          "\"scale\":" + std::to_string(kBlockingScale) +
              ",\"seed\":7}\n");
  JsonValue opened = ReadResponse(chan_a);
  ASSERT_TRUE(opened.GetBool("ok")) << opened.Serialize();
  std::string id = opened.GetString("session");
  SendAll(fd_a, "{\"verb\":\"step\",\"session\":\"" + id +
                    "\",\"episodes\":0}\n");
  // Wait until the step is provably executing (not merely queued, not
  // still unread in the socket): from here until it finishes the single
  // worker cannot drain pings.
  for (int i = 0; i < 50000 && server.inflight_requests() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(server.inflight_requests(), 1u);
  ASSERT_EQ(server.queued_requests(), 0u);

  // Eight pings in one send: the I/O thread frames and submits them
  // back-to-back, so four fill the queue and four are rejected.
  auto conn_b = ConnectUnix(options.unix_path);
  ASSERT_TRUE(conn_b.ok());
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += "{\"verb\":\"ping\"}\n";
  SendAll(conn_b->fd(), burst);
  LineChannel chan_b(std::move(conn_b).value());
  chan_b.set_read_deadline(60000, /*from_first_byte=*/false);

  size_t served = 0;
  std::vector<int64_t> hints;
  for (int i = 0; i < 8; ++i) {
    JsonValue resp = ReadResponse(chan_b);
    if (resp.GetBool("ok")) {
      ++served;
    } else {
      EXPECT_EQ(resp.GetString("code"), "UNAVAILABLE");
      hints.push_back(resp.GetInt("retry_after_ms"));
    }
  }
  EXPECT_EQ(served, 4u);
  ASSERT_EQ(hints.size(), 4u);
  for (int64_t hint : hints) {
    // Full queue → base + 3*base*queued/limit = 4x the base hint.
    EXPECT_EQ(hint, 4 * options.retry_after_ms);
  }

  // The blocking step still completes and answers on connection A.
  JsonValue stepped = ReadResponse(chan_a);
  EXPECT_TRUE(stepped.GetBool("ok")) << stepped.Serialize();
  EXPECT_TRUE(stepped.GetBool("finished"));

  server.Stop();
  server.Wait();
}

TEST(ServiceTransportTest, StopResolvesQueuedRequestsWithUnavailable) {
  // Shutdown-drain regression: requests still queued when Stop() lands
  // must each get a typed UNAVAILABLE response — never a dropped promise
  // or a silent hangup — while the in-flight request finishes normally.
  ServerOptions options;
  options.unix_path = "/tmp/falcon_transport_drain_test.sock";
  options.workers = 1;
  options.queue_limit = 64;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto conn_a = ConnectUnix(options.unix_path);
  ASSERT_TRUE(conn_a.ok());
  int fd_a = conn_a->fd();
  LineChannel chan_a(std::move(conn_a).value());
  chan_a.set_read_deadline(60000, /*from_first_byte=*/false);
  SendAll(fd_a,
          "{\"verb\":\"open_session\",\"dataset\":\"Synth10k\","
          "\"scale\":" + std::to_string(kBlockingScale) +
              ",\"seed\":11}\n");
  JsonValue opened = ReadResponse(chan_a);
  ASSERT_TRUE(opened.GetBool("ok")) << opened.Serialize();
  std::string id = opened.GetString("session");
  SendAll(fd_a, "{\"verb\":\"step\",\"session\":\"" + id +
                    "\",\"episodes\":0}\n");
  for (int i = 0; i < 50000 && server.inflight_requests() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(server.inflight_requests(), 1u);
  ASSERT_EQ(server.queued_requests(), 0u);

  // Queue five pings behind the busy worker, then stop the server once
  // all five are visibly queued.
  auto conn_b = ConnectUnix(options.unix_path);
  ASSERT_TRUE(conn_b.ok());
  std::string burst;
  for (int i = 0; i < 5; ++i) burst += "{\"verb\":\"ping\"}\n";
  SendAll(conn_b->fd(), burst);
  LineChannel chan_b(std::move(conn_b).value());
  chan_b.set_read_deadline(60000, /*from_first_byte=*/false);
  for (int i = 0; i < 20000 && server.queued_requests() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(server.queued_requests(), 5u);
  server.Stop();

  for (int i = 0; i < 5; ++i) {
    JsonValue resp = ReadResponse(chan_b);
    EXPECT_FALSE(resp.GetBool("ok"));
    EXPECT_EQ(resp.GetString("code"), "UNAVAILABLE");
    EXPECT_NE(resp.GetString("error").find("shutting down"),
              std::string::npos);
  }
  // The in-flight step was not abandoned: its response is flushed before
  // the I/O loop exits.
  JsonValue stepped = ReadResponse(chan_a);
  EXPECT_TRUE(stepped.GetBool("ok")) << stepped.Serialize();
  EXPECT_TRUE(stepped.GetBool("finished"));

  server.Wait();
}

}  // namespace
}  // namespace falcon
