#include "relational/posting_index.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/lattice.h"
#include "datagen/datasets.h"

namespace falcon {
namespace {

TEST(PostingIndexTest, PostingsMatchScan) {
  DrugExample ex = MakeDrugExample();
  PostingIndex index(&ex.dirty);
  ValueId austin = ex.dirty.Lookup("Austin");
  EXPECT_EQ(index.Postings(2, austin), ex.dirty.ScanEquals(2, austin));
  ValueId statin = ex.dirty.Lookup("statin");
  EXPECT_EQ(index.Postings(1, statin), ex.dirty.ScanEquals(1, statin));
}

TEST(PostingIndexTest, CachesAcrossCalls) {
  DrugExample ex = MakeDrugExample();
  PostingIndex index(&ex.dirty);
  ValueId austin = ex.dirty.Lookup("Austin");
  index.Postings(2, austin);
  EXPECT_EQ(index.misses(), 1u);
  index.Postings(2, austin);
  index.Postings(2, austin);
  EXPECT_EQ(index.hits(), 2u);
  EXPECT_EQ(index.cached_entries(), 1u);
}

TEST(PostingIndexTest, InvalidationRefreshesAfterUpdate) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  PostingIndex index(&dirty);
  ValueId statin = dirty.Lookup("statin");
  EXPECT_EQ(index.Postings(1, statin).Count(), 3u);

  dirty.SetCellText(1, 1, "C22H28F");  // t2 fixed.
  // Stale until invalidated.
  EXPECT_EQ(index.Postings(1, statin).Count(), 3u);
  index.InvalidateColumn(1);
  EXPECT_EQ(index.Postings(1, statin).Count(), 2u);
}

TEST(PostingIndexTest, InvalidateAllClearsEverything) {
  DrugExample ex = MakeDrugExample();
  PostingIndex index(&ex.dirty);
  index.Postings(1, ex.dirty.Lookup("statin"));
  index.Postings(2, ex.dirty.Lookup("Austin"));
  EXPECT_EQ(index.cached_entries(), 2u);
  index.InvalidateAll();
  EXPECT_EQ(index.cached_entries(), 0u);
}

TEST(PostingIndexTest, LatticeBuiltThroughIndexMatchesDirect) {
  DrugExample ex = MakeDrugExample();
  PostingIndex index(&ex.dirty);
  Repair repair{1, 1, "C22H28F"};
  LatticeOptions with_index;
  with_index.index = &index;
  auto a = Lattice::Build(ex.dirty, repair, {0, 2, 3}, with_index);
  auto b = Lattice::Build(ex.dirty, repair, {0, 2, 3});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (NodeId m = 0; m < a->num_nodes(); ++m) {
    EXPECT_EQ(a->affected(m), b->affected(m)) << "node " << m;
  }
  // Second build over the same repair is served from cache.
  size_t misses_before = index.misses();
  auto c = Lattice::Build(ex.dirty, repair, {0, 2, 3}, with_index);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(index.misses(), misses_before);
}

// Builds a rows×cols table over a small alphabet so values recur heavily.
Table MakeRandomTable(size_t rows, size_t cols, size_t alphabet, Rng* rng) {
  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("A" + std::to_string(c));
  Table t("rand", Schema(names));
  std::vector<std::string> row(cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      row[c] = "v" + std::to_string(rng->NextUint(alphabet));
    }
    t.AppendRow(row);
  }
  return t;
}

// Property: after a randomized sequence of cell writes reported via
// ApplyCellDelta, every cached bitmap equals a fresh ScanEquals, and the
// delta-maintained index agrees with the legacy invalidate-and-rescan one.
TEST(PostingIndexTest, DeltaMaintenanceMatchesFreshScansUnderRandomWrites) {
  Rng rng(4242);
  Table table = MakeRandomTable(257, 4, 6, &rng);
  std::vector<ValueId> alphabet;
  for (size_t a = 0; a < 6; ++a) {
    alphabet.push_back(table.Intern("v" + std::to_string(a)));
  }

  PostingIndexOptions delta_opts;
  delta_opts.delta_maintenance = true;
  PostingIndex delta(&table, delta_opts);
  PostingIndexOptions legacy_opts;
  legacy_opts.delta_maintenance = false;
  PostingIndex legacy(&table, legacy_opts);

  // Warm a subset of entries so deltas hit both cached and uncached values.
  for (size_t c = 0; c < table.num_cols(); ++c) {
    for (size_t a = 0; a < 3; ++a) delta.Postings(c, alphabet[a]);
  }

  for (int step = 0; step < 500; ++step) {
    size_t row = rng.NextUint(table.num_rows());
    size_t col = rng.NextUint(table.num_cols());
    ValueId old_value = table.cell(row, col);
    ValueId new_value = alphabet[rng.NextUint(alphabet.size())];
    delta.ApplyCellDelta(col, row, old_value, new_value);
    table.set_cell(row, col, new_value);
    legacy.InvalidateColumn(col);

    if (step % 25 == 0) {
      size_t c = rng.NextUint(table.num_cols());
      ValueId v = alphabet[rng.NextUint(alphabet.size())];
      EXPECT_EQ(delta.Postings(c, v), table.ScanEquals(c, v))
          << "step " << step;
      EXPECT_EQ(legacy.Postings(c, v), table.ScanEquals(c, v))
          << "step " << step;
    }
  }
  // Final sweep: every (col, value) bitmap must match a fresh scan.
  for (size_t c = 0; c < table.num_cols(); ++c) {
    for (ValueId v : alphabet) {
      EXPECT_EQ(delta.Postings(c, v), table.ScanEquals(c, v));
    }
  }
  EXPECT_GT(delta.stats().delta_rows, 0u);
}

// Property: batch ApplyDelta (the lattice ApplyNode shape — many rows of one
// column rewritten to a single value) keeps cached bitmaps exact.
TEST(PostingIndexTest, BatchApplyDeltaMatchesFreshScans) {
  Rng rng(77);
  Table table = MakeRandomTable(300, 3, 5, &rng);
  std::vector<ValueId> alphabet;
  for (size_t a = 0; a < 5; ++a) {
    alphabet.push_back(table.Intern("v" + std::to_string(a)));
  }
  PostingIndex index(&table);
  for (size_t c = 0; c < table.num_cols(); ++c) {
    for (ValueId v : alphabet) index.Postings(c, v);
  }

  for (int step = 0; step < 40; ++step) {
    // A rule: rows where col_a = u get col_b rewritten to w.
    size_t col_a = rng.NextUint(table.num_cols());
    size_t col_b = rng.NextUint(table.num_cols());
    ValueId u = alphabet[rng.NextUint(alphabet.size())];
    ValueId w = alphabet[rng.NextUint(alphabet.size())];
    RowSet rows = table.ScanEquals(col_a, u);
    index.ApplyDelta(col_b, rows,
                     [&](size_t r) { return table.cell(r, col_b); }, w);
    rows.ForEach([&](size_t r) { table.set_cell(r, col_b, w); });
    for (size_t c = 0; c < table.num_cols(); ++c) {
      for (ValueId v : alphabet) {
        ASSERT_EQ(index.Postings(c, v), table.ScanEquals(c, v))
            << "step " << step << " col " << c;
      }
    }
  }
}

TEST(PostingIndexTest, ByteBudgetEvictsLruEntries) {
  DrugExample ex = MakeDrugExample();
  size_t entry_bytes = ((ex.dirty.num_rows() + 63) / 64) * 8 + 64;
  PostingIndexOptions options;
  options.byte_budget = entry_bytes * 2;  // Room for two entries.
  PostingIndex index(&ex.dirty, options);

  ValueId statin = ex.dirty.Lookup("statin");
  ValueId austin = ex.dirty.Lookup("Austin");
  ValueId q200 = ex.dirty.Lookup("200");
  index.Postings(1, statin);
  index.Postings(2, austin);
  index.Postings(3, q200);  // Three entries, over budget.
  EXPECT_EQ(index.cached_entries(), 3u);
  index.Trim();
  EXPECT_EQ(index.cached_entries(), 2u);
  EXPECT_EQ(index.stats().evictions, 1u);
  // The LRU victim was the statin entry; re-requesting it is a miss while
  // the survivors still hit.
  size_t misses_before = index.misses();
  index.Postings(2, austin);
  index.Postings(3, q200);
  EXPECT_EQ(index.misses(), misses_before);
  index.Postings(1, statin);
  EXPECT_EQ(index.misses(), misses_before + 1);
  // Evicted-and-refilled bitmaps are still exact.
  EXPECT_EQ(index.Postings(1, statin), ex.dirty.ScanEquals(1, statin));
}

// Compressed postings are an encoding choice, not a semantics change:
// every bitmap and every delta patch must agree bit-for-bit with a dense
// index over the same write sequence, and StorageStats must report the
// compressed entries as cheaper than their dense footprint on a sparse
// (large-alphabet) workload.
TEST(PostingIndexTest, CompressedPostingsMatchDenseUnderRandomWrites) {
  Rng rng(9091);
  // Universe above kMinCompressUniverse so Compact actually compresses;
  // alphabet of 64 keeps each posting sparse (~1/64 density).
  Table table = MakeRandomTable(20000, 3, 64, &rng);
  std::vector<ValueId> alphabet;
  for (size_t a = 0; a < 64; ++a) {
    alphabet.push_back(table.Intern("v" + std::to_string(a)));
  }

  PostingIndexOptions dense_opts;
  dense_opts.delta_maintenance = true;
  PostingIndex dense(&table, dense_opts);
  PostingIndexOptions comp_opts;
  comp_opts.delta_maintenance = true;
  comp_opts.compressed = true;
  PostingIndex comp(&table, comp_opts);

  for (size_t c = 0; c < table.num_cols(); ++c) {
    for (size_t a = 0; a < alphabet.size(); a += 7) {
      dense.Postings(c, alphabet[a]);
      comp.Postings(c, alphabet[a]);
    }
  }

  for (int step = 0; step < 200; ++step) {
    size_t row = rng.NextUint(table.num_rows());
    size_t col = rng.NextUint(table.num_cols());
    ValueId old_value = table.cell(row, col);
    ValueId new_value = alphabet[rng.NextUint(alphabet.size())];
    dense.ApplyCellDelta(col, row, old_value, new_value);
    comp.ApplyCellDelta(col, row, old_value, new_value);
    table.set_cell(row, col, new_value);
  }

  for (size_t c = 0; c < table.num_cols(); ++c) {
    for (size_t a = 0; a < alphabet.size(); a += 5) {
      const HybridRowSet& d = dense.Postings(c, alphabet[a]);
      const HybridRowSet& k = comp.Postings(c, alphabet[a]);
      EXPECT_EQ(d, k) << "col " << c << " value " << a;
      EXPECT_EQ(d.Hash(), k.Hash());
      EXPECT_EQ(k, table.ScanEquals(c, alphabet[a]));
    }
  }

  PostingStorageStats ds = dense.StorageStats();
  PostingStorageStats cs = comp.StorageStats();
  ASSERT_GT(cs.entries, 0u);
  // Sparse workload: the compressed index must be materially smaller than
  // both its own dense footprint and the dense index's resident bytes.
  EXPECT_LT(cs.resident_bytes, cs.dense_bytes);
  EXPECT_LT(cs.resident_bytes, ds.resident_bytes);
  EXPECT_GT(cs.compression(), 2.0);
  EXPECT_GT(cs.array_containers + cs.run_containers, 0u);
}

// Exact byte accounting: cached_bytes always equals the sum of per-entry
// footprints, across inserts, delta patches, and evictions, in both modes.
TEST(PostingIndexTest, ByteAccountingStaysExactUnderDeltas) {
  for (bool compressed : {false, true}) {
    Rng rng(515);
    Table table = MakeRandomTable(20000, 2, 32, &rng);
    std::vector<ValueId> alphabet;
    for (size_t a = 0; a < 32; ++a) {
      alphabet.push_back(table.Intern("v" + std::to_string(a)));
    }
    PostingIndexOptions opts;
    opts.delta_maintenance = true;
    opts.compressed = compressed;
    PostingIndex index(&table, opts);
    for (size_t c = 0; c < table.num_cols(); ++c) {
      for (size_t a = 0; a < alphabet.size(); a += 3) {
        index.Postings(c, alphabet[a]);
      }
    }
    for (int step = 0; step < 100; ++step) {
      size_t row = rng.NextUint(table.num_rows());
      size_t col = rng.NextUint(table.num_cols());
      ValueId old_value = table.cell(row, col);
      ValueId new_value = alphabet[rng.NextUint(alphabet.size())];
      index.ApplyCellDelta(col, row, old_value, new_value);
      table.set_cell(row, col, new_value);
    }
    // cached_bytes carries a fixed 64-byte bookkeeping overhead per entry
    // on top of the measured bitmap heap bytes.
    EXPECT_EQ(index.cached_bytes(),
              index.StorageStats().resident_bytes + 64 * index.cached_entries())
        << "compressed=" << compressed;
  }
}

RowSet BitsOf(size_t universe, std::initializer_list<size_t> rows) {
  RowSet s(universe);
  for (size_t r : rows) s.Set(r);
  return s;
}

// Admission is second-touch: the first Put of a pair only records it on
// probation. Tests that need a resident entry Put twice (AdmitPut below).
void AdmitPut(IntersectionMemo& memo, size_t col_a, ValueId val_a,
              size_t col_b, ValueId val_b, const RowSet& rows) {
  memo.Put(col_a, val_a, col_b, val_b, rows);
  memo.Put(col_a, val_a, col_b, val_b, rows);
}

TEST(IntersectionMemoTest, FindIsKeyOrderInsensitive) {
  IntersectionMemo memo;
  RowSet rows = BitsOf(64, {1, 4});
  AdmitPut(memo, 2, ValueId{7}, 1, ValueId{3}, rows);
  const HybridRowSet* a = memo.Find(2, ValueId{7}, 1, ValueId{3});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, rows);
  // Swapped predicate order canonicalizes to the same entry.
  const HybridRowSet* b = memo.Find(1, ValueId{3}, 2, ValueId{7});
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*b, rows);
  EXPECT_EQ(memo.cached_entries(), 1u);
  EXPECT_EQ(memo.stats().hits, 2u);
  EXPECT_EQ(memo.Find(1, ValueId{3}, 2, ValueId{8}), nullptr);
  EXPECT_EQ(memo.stats().misses, 1u);
}

TEST(IntersectionMemoTest, ApplyWritePatchesExactly) {
  IntersectionMemo memo;
  // Entry over (col1 = v3) ∧ (col2 = v7) holding rows {1, 4, 9}.
  AdmitPut(memo, 1, ValueId{3}, 2, ValueId{7}, BitsOf(64, {1, 4, 9}));

  // A write of a *different* value into col1 removes the changed rows:
  // those rows no longer satisfy col1 = v3.
  memo.ApplyWrite(1, BitsOf(64, {4, 20}), ValueId{5});
  const HybridRowSet* e = memo.Find(1, ValueId{3}, 2, ValueId{7});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(*e, BitsOf(64, {1, 9}));

  // A write *onto* the entry's own value drops the entry — unknown rows
  // may have joined the predicate.
  memo.ApplyWrite(1, BitsOf(64, {30}), ValueId{3});
  EXPECT_EQ(memo.Find(1, ValueId{3}, 2, ValueId{7}), nullptr);

  // Single-cell variant behaves the same way. (A dropped pair re-earns
  // admission from scratch, hence the double Put.)
  AdmitPut(memo, 1, ValueId{3}, 2, ValueId{7}, BitsOf(64, {1, 9}));
  memo.ApplyCellWrite(1, /*row=*/9, ValueId{6});
  e = memo.Find(1, ValueId{3}, 2, ValueId{7});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(*e, BitsOf(64, {1}));
  memo.ApplyCellWrite(2, /*row=*/50, ValueId{7});
  EXPECT_EQ(memo.Find(1, ValueId{3}, 2, ValueId{7}), nullptr);
}

TEST(IntersectionMemoTest, InvalidateColumnDropsOnlyThatColumn) {
  IntersectionMemo memo;
  AdmitPut(memo, 1, ValueId{3}, 2, ValueId{7}, BitsOf(64, {1}));
  AdmitPut(memo, 3, ValueId{4}, 4, ValueId{9}, BitsOf(64, {2}));
  memo.InvalidateColumn(2);
  EXPECT_EQ(memo.Find(1, ValueId{3}, 2, ValueId{7}), nullptr);
  EXPECT_NE(memo.Find(3, ValueId{4}, 4, ValueId{9}), nullptr);
  EXPECT_EQ(memo.cached_entries(), 1u);
}

TEST(IntersectionMemoTest, ByteBudgetEvictsLru) {
  // Budget sized for roughly two 64-row entries; inserting a third evicts
  // the least recently used.
  RowSet probe = BitsOf(64, {0});
  IntersectionMemo sizer;
  AdmitPut(sizer, 0, ValueId{0}, 1, ValueId{0}, probe);
  size_t entry_bytes = sizer.cached_bytes();
  IntersectionMemo memo(entry_bytes * 2);
  AdmitPut(memo, 1, ValueId{1}, 2, ValueId{1}, BitsOf(64, {1}));
  AdmitPut(memo, 1, ValueId{2}, 2, ValueId{2}, BitsOf(64, {2}));
  memo.Find(1, ValueId{1}, 2, ValueId{1});  // Refresh: entry 1 is now MRU.
  AdmitPut(memo, 1, ValueId{3}, 2, ValueId{3}, BitsOf(64, {3}));
  EXPECT_EQ(memo.cached_entries(), 2u);
  EXPECT_EQ(memo.stats().evictions, 1u);
  // Entry 2 was the LRU victim; 1 and 3 survive.
  EXPECT_NE(memo.Find(1, ValueId{1}, 2, ValueId{1}), nullptr);
  EXPECT_EQ(memo.Find(1, ValueId{2}, 2, ValueId{2}), nullptr);
  EXPECT_NE(memo.Find(1, ValueId{3}, 2, ValueId{3}), nullptr);
}

TEST(IntersectionMemoTest, SecondTouchAdmission) {
  IntersectionMemo memo;
  // First offer of a pair is recorded on probation, not stored.
  memo.Put(1, ValueId{1}, 2, ValueId{1}, BitsOf(64, {1}));
  EXPECT_EQ(memo.cached_entries(), 0u);
  EXPECT_FALSE(memo.Contains(1, ValueId{1}, 2, ValueId{1}));
  EXPECT_EQ(memo.stats().first_touch_skips, 1u);
  EXPECT_EQ(memo.stats().admitted, 0u);
  // The recurring offer is admitted.
  memo.Put(1, ValueId{1}, 2, ValueId{1}, BitsOf(64, {1}));
  EXPECT_EQ(memo.cached_entries(), 1u);
  EXPECT_TRUE(memo.Contains(1, ValueId{1}, 2, ValueId{1}));
  EXPECT_EQ(memo.stats().admitted, 1u);
  // A one-shot pair never consumes budget or evicts the resident entry.
  memo.Put(3, ValueId{9}, 4, ValueId{9}, BitsOf(64, {5}));
  EXPECT_EQ(memo.cached_entries(), 1u);
  EXPECT_EQ(memo.stats().first_touch_skips, 2u);
}

TEST(IntersectionMemoTest, RecordTouchDrivesCountOnlyAdmission) {
  IntersectionMemo memo;
  // First touch from the count-only path: not yet worth materializing.
  EXPECT_FALSE(memo.RecordTouch(1, ValueId{1}, 2, ValueId{1}));
  // Second touch says a Put would admit — and it does (RecordTouch leaves
  // the key on probation for the Put that follows).
  EXPECT_TRUE(memo.RecordTouch(2, ValueId{1}, 1, ValueId{1}));  // Canonical.
  memo.Put(1, ValueId{1}, 2, ValueId{1}, BitsOf(64, {2}));
  EXPECT_TRUE(memo.Contains(1, ValueId{1}, 2, ValueId{1}));
  // Resident pairs always report true without touching probation.
  EXPECT_TRUE(memo.RecordTouch(1, ValueId{1}, 2, ValueId{1}));
}

}  // namespace
}  // namespace falcon
