#include "relational/posting_index.h"

#include <gtest/gtest.h>

#include "core/lattice.h"
#include "datagen/datasets.h"

namespace falcon {
namespace {

TEST(PostingIndexTest, PostingsMatchScan) {
  DrugExample ex = MakeDrugExample();
  PostingIndex index(&ex.dirty);
  ValueId austin = ex.dirty.Lookup("Austin");
  EXPECT_EQ(index.Postings(2, austin), ex.dirty.ScanEquals(2, austin));
  ValueId statin = ex.dirty.Lookup("statin");
  EXPECT_EQ(index.Postings(1, statin), ex.dirty.ScanEquals(1, statin));
}

TEST(PostingIndexTest, CachesAcrossCalls) {
  DrugExample ex = MakeDrugExample();
  PostingIndex index(&ex.dirty);
  ValueId austin = ex.dirty.Lookup("Austin");
  index.Postings(2, austin);
  EXPECT_EQ(index.misses(), 1u);
  index.Postings(2, austin);
  index.Postings(2, austin);
  EXPECT_EQ(index.hits(), 2u);
  EXPECT_EQ(index.cached_entries(), 1u);
}

TEST(PostingIndexTest, InvalidationRefreshesAfterUpdate) {
  DrugExample ex = MakeDrugExample();
  Table dirty = ex.dirty.Clone();
  PostingIndex index(&dirty);
  ValueId statin = dirty.Lookup("statin");
  EXPECT_EQ(index.Postings(1, statin).Count(), 3u);

  dirty.SetCellText(1, 1, "C22H28F");  // t2 fixed.
  // Stale until invalidated.
  EXPECT_EQ(index.Postings(1, statin).Count(), 3u);
  index.InvalidateColumn(1);
  EXPECT_EQ(index.Postings(1, statin).Count(), 2u);
}

TEST(PostingIndexTest, InvalidateAllClearsEverything) {
  DrugExample ex = MakeDrugExample();
  PostingIndex index(&ex.dirty);
  index.Postings(1, ex.dirty.Lookup("statin"));
  index.Postings(2, ex.dirty.Lookup("Austin"));
  EXPECT_EQ(index.cached_entries(), 2u);
  index.InvalidateAll();
  EXPECT_EQ(index.cached_entries(), 0u);
}

TEST(PostingIndexTest, LatticeBuiltThroughIndexMatchesDirect) {
  DrugExample ex = MakeDrugExample();
  PostingIndex index(&ex.dirty);
  Repair repair{1, 1, "C22H28F"};
  LatticeOptions with_index;
  with_index.index = &index;
  auto a = Lattice::Build(ex.dirty, repair, {0, 2, 3}, with_index);
  auto b = Lattice::Build(ex.dirty, repair, {0, 2, 3});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (NodeId m = 0; m < a->num_nodes(); ++m) {
    EXPECT_EQ(a->affected(m), b->affected(m)) << "node " << m;
  }
  // Second build over the same repair is served from cache.
  size_t misses_before = index.misses();
  auto c = Lattice::Build(ex.dirty, repair, {0, 2, 3}, with_index);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(index.misses(), misses_before);
}

}  // namespace
}  // namespace falcon
