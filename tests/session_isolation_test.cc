// Session isolation: concurrent cleaning sessions over copy-on-write
// clones of one shared dirty base must produce bit-identical outcomes to
// running each session alone. Exercises the thread-safe ValuePool, the
// COW column sharing in Table, and stepwise (RunSteps) interleaving; the
// multithreaded cases run under TSan in CI.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "core/session_journal.h"
#include "datagen/workload.h"

namespace falcon {
namespace {

constexpr double kScale = 0.02;

struct Outcome {
  SessionMetrics metrics;
  uint32_t crc = 0;
};

bool SameOutcome(const Outcome& a, const Outcome& b) {
  return a.metrics.user_updates == b.metrics.user_updates &&
         a.metrics.user_answers == b.metrics.user_answers &&
         a.metrics.cells_repaired == b.metrics.cells_repaired &&
         a.metrics.queries_applied == b.metrics.queries_applied &&
         a.metrics.converged == b.metrics.converged && a.crc == b.crc;
}

/// A session running over a COW clone of `base.dirty`, steppable.
struct Harness {
  explicit Harness(const CleaningWorkload& base, uint64_t seed)
      : working(base.dirty.Clone()),
        algorithm(MakeSearchAlgorithm(SearchKind::kCoDive)) {
    SessionOptions options;
    options.seed = seed;
    session = std::make_unique<CleaningSession>(&base.clean, &working,
                                                algorithm.get(), options);
  }
  Outcome Finish() {
    auto metrics = session->RunSteps(0);
    EXPECT_TRUE(metrics.ok());
    return Outcome{*metrics, TableContentsCrc(working)};
  }

  Table working;
  std::unique_ptr<SearchAlgorithm> algorithm;
  std::unique_ptr<CleaningSession> session;
};

Outcome RunSolo(const CleaningWorkload& base, uint64_t seed) {
  Harness h(base, seed);
  return h.Finish();
}

TEST(SessionIsolationTest, InterleavedSessionsMatchSolo_SameDataset) {
  auto base = MakeCleaningWorkload("Synth10k", kScale);
  ASSERT_TRUE(base.ok());
  Outcome solo5 = RunSolo(*base, 5);
  Outcome solo6 = RunSolo(*base, 6);
  // Both must actually repair something — bit-identity over empty runs
  // would prove nothing. (Converged tables equal the clean table, so equal
  // CRCs across seeds are expected, not suspicious.)
  ASSERT_GT(solo5.metrics.cells_repaired, 0u);
  ASSERT_GT(solo6.metrics.cells_repaired, 0u);

  // Interleave one episode at a time on a single thread.
  Harness a(*base, 5);
  Harness b(*base, 6);
  bool a_done = false, b_done = false;
  while (!a_done || !b_done) {
    if (!a_done) {
      auto m = a.session->RunSteps(1);
      ASSERT_TRUE(m.ok());
      a_done = a.session->finished();
    }
    if (!b_done) {
      auto m = b.session->RunSteps(1);
      ASSERT_TRUE(m.ok());
      b_done = b.session->finished();
    }
  }
  Outcome ia{a.session->metrics(), TableContentsCrc(a.working)};
  Outcome ib{b.session->metrics(), TableContentsCrc(b.working)};
  EXPECT_TRUE(SameOutcome(ia, solo5));
  EXPECT_TRUE(SameOutcome(ib, solo6));
}

TEST(SessionIsolationTest, InterleavedSessionsMatchSolo_DifferentDatasets) {
  auto synth = MakeCleaningWorkload("Synth10k", kScale);
  auto soccer = MakeCleaningWorkload("Soccer", 1.0);
  ASSERT_TRUE(synth.ok() && soccer.ok());
  Outcome solo_synth = RunSolo(*synth, 5);
  Outcome solo_soccer = RunSolo(*soccer, 5);

  Harness a(*synth, 5);
  Harness b(*soccer, 5);
  bool a_done = false, b_done = false;
  while (!a_done || !b_done) {
    if (!a_done) {
      ASSERT_TRUE(a.session->RunSteps(1).ok());
      a_done = a.session->finished();
    }
    if (!b_done) {
      ASSERT_TRUE(b.session->RunSteps(1).ok());
      b_done = b.session->finished();
    }
  }
  Outcome ia{a.session->metrics(), TableContentsCrc(a.working)};
  Outcome ib{b.session->metrics(), TableContentsCrc(b.working)};
  EXPECT_TRUE(SameOutcome(ia, solo_synth));
  EXPECT_TRUE(SameOutcome(ib, solo_soccer));
}

TEST(SessionIsolationTest, ConcurrentSessionsMatchSolo) {
  auto base = MakeCleaningWorkload("Synth10k", kScale);
  ASSERT_TRUE(base.ok());
  constexpr size_t kSessions = 4;
  std::vector<Outcome> solo;
  for (size_t i = 0; i < kSessions; ++i) {
    solo.push_back(RunSolo(*base, 100 + i));
  }

  // All sessions share the base tables and ValuePool; each steps its own
  // COW clone on its own thread.
  std::vector<Outcome> concurrent(kSessions);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      Harness h(*base, 100 + i);
      while (!h.session->finished()) {
        auto m = h.session->RunSteps(1);
        ASSERT_TRUE(m.ok());
      }
      concurrent[i] =
          Outcome{h.session->metrics(), TableContentsCrc(h.working)};
    });
  }
  for (auto& t : threads) t.join();
  for (size_t i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(SameOutcome(concurrent[i], solo[i])) << "session " << i;
  }
  // The shared dirty base itself must be untouched.
  EXPECT_EQ(base->dirty.CountDiffCells(base->dirty.Clone()), 0u);
}

TEST(SessionIsolationTest, ConcurrentMixedDatasetsMatchSolo) {
  auto synth = MakeCleaningWorkload("Synth10k", kScale);
  auto soccer = MakeCleaningWorkload("Soccer", 1.0);
  ASSERT_TRUE(synth.ok() && soccer.ok());
  Outcome solo_synth = RunSolo(*synth, 42);
  Outcome solo_soccer = RunSolo(*soccer, 42);

  Outcome got_synth, got_soccer;
  std::thread ta([&] { got_synth = RunSolo(*synth, 42); });
  std::thread tb([&] { got_soccer = RunSolo(*soccer, 42); });
  ta.join();
  tb.join();
  EXPECT_TRUE(SameOutcome(got_synth, solo_synth));
  EXPECT_TRUE(SameOutcome(got_soccer, solo_soccer));
}

}  // namespace
}  // namespace falcon
