// Parameterized end-to-end sweep: every (algorithm × budget × closed-sets ×
// lattice-width) combination must uphold the session invariants on a shared
// workload — convergence, interaction accounting, determinism, and benefit
// ordering against the clairvoyant OffLine bound.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

struct SweepParam {
  SearchKind kind;
  size_t budget;
  bool closed_sets;
  size_t lattice_attrs;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = SearchKindName(info.param.kind);
  name += "_B" + std::to_string(info.param.budget);
  name += info.param.closed_sets ? "_cs" : "_nocs";
  name += "_k" + std::to_string(info.param.lattice_attrs);
  return name;
}

// One shared workload for the whole sweep (generation dominates runtime).
struct SharedWorkload {
  Table clean;
  Table dirty;
  size_t errors;
};

const SharedWorkload& GetWorkload() {
  static const SharedWorkload* w = [] {
    auto ds = MakeSynth(2500, /*seed=*/51);
    FALCON_CHECK(ds.ok());
    auto dirty = InjectErrors(ds->clean, ds->error_spec);
    FALCON_CHECK(dirty.ok());
    auto* out = new SharedWorkload{ds->clean.Clone(), dirty->dirty.Clone(),
                                   dirty->errors.size()};
    return out;
  }();
  return *w;
}

class SessionSweepTest : public ::testing::TestWithParam<SweepParam> {};

SessionOptions OptionsFor(const SweepParam& p) {
  SessionOptions options;
  options.budget = p.budget;
  options.use_closed_sets = p.closed_sets;
  options.lattice_attrs = p.lattice_attrs;
  return options;
}

TEST_P(SessionSweepTest, ConvergesWithSoundAccounting) {
  const SharedWorkload& w = GetWorkload();
  auto m = RunCleaning(w.clean, w.dirty, GetParam().kind,
                       OptionsFor(GetParam()));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->converged);
  EXPECT_EQ(m->initial_errors, w.errors);
  // The user answers at most B questions per update.
  EXPECT_LE(m->user_answers, m->user_updates * GetParam().budget);
  // Every error requires at least the update that bootstraps its session
  // or a rule application; U can never exceed |errors| with a truthful
  // oracle (each session fixes at least the bootstrapping cell).
  EXPECT_LE(m->user_updates, w.errors);
  EXPECT_GE(m->cells_repaired, w.errors - m->user_updates);
}

TEST_P(SessionSweepTest, DeterministicAcrossRuns) {
  const SharedWorkload& w = GetWorkload();
  auto a = RunCleaning(w.clean, w.dirty, GetParam().kind,
                       OptionsFor(GetParam()));
  auto b = RunCleaning(w.clean, w.dirty, GetParam().kind,
                       OptionsFor(GetParam()));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->user_updates, b->user_updates);
  EXPECT_EQ(a->user_answers, b->user_answers);
  EXPECT_EQ(a->cells_repaired, b->cells_repaired);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndBudgets, SessionSweepTest,
    ::testing::Values(
        SweepParam{SearchKind::kBfs, 2, true, 7},
        SweepParam{SearchKind::kBfs, 5, false, 7},
        SweepParam{SearchKind::kDfs, 2, true, 7},
        SweepParam{SearchKind::kDfs, 3, false, 7},
        SweepParam{SearchKind::kDucc, 3, true, 7},
        SweepParam{SearchKind::kDucc, 5, false, 5},
        SweepParam{SearchKind::kDive, 2, true, 7},
        SweepParam{SearchKind::kDive, 3, false, 7},
        SweepParam{SearchKind::kDive, 5, true, 9},
        SweepParam{SearchKind::kCoDive, 2, true, 7},
        SweepParam{SearchKind::kCoDive, 3, true, 5},
        SweepParam{SearchKind::kCoDive, 5, false, 7},
        SweepParam{SearchKind::kOffline, 3, true, 7},
        SweepParam{SearchKind::kOffline, 5, false, 7}),
    ParamName);

// OffLine is an upper bound: no online algorithm at the same budget may
// beat it on this workload.
TEST(SessionSweepBoundsTest, OfflineDominatesEveryOnlineAlgorithm) {
  const SharedWorkload& w = GetWorkload();
  SessionOptions options;
  options.budget = 3;
  auto offline =
      RunCleaning(w.clean, w.dirty, SearchKind::kOffline, options);
  ASSERT_TRUE(offline.ok());
  for (SearchKind kind : {SearchKind::kBfs, SearchKind::kDfs,
                          SearchKind::kDucc, SearchKind::kDive,
                          SearchKind::kCoDive}) {
    auto m = RunCleaning(w.clean, w.dirty, kind, options);
    ASSERT_TRUE(m.ok());
    EXPECT_GE(offline->Benefit() + 1e-9, m->Benefit())
        << SearchKindName(kind);
  }
}

// Mistake-rate sweep (Fig. 9's property): the system self-heals at every
// tested rate, and cost is weakly increasing in the mistake rate on
// average.
class MistakeSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(MistakeSweepTest, SelfHealsAndConverges) {
  const SharedWorkload& w = GetWorkload();
  SessionOptions options;
  options.budget = 3;
  options.question_mistake_prob = GetParam();
  options.update_mistake_prob = GetParam() / 2;
  options.seed = 97;
  auto m = RunCleaning(w.clean, w.dirty, SearchKind::kCoDive, options);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->converged);
}

INSTANTIATE_TEST_SUITE_P(Rates, MistakeSweepTest,
                         ::testing::Values(0.0, 0.01, 0.02, 0.03, 0.05),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "p" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace falcon
