// The crash-safety acceptance harness: enumerate every injectable fault
// point a cleaning run passes through, crash the session at each one,
// recover from the journal, and require the recovered run to be
// bit-identical to the uninterrupted baseline — same table contents (CRC
// over all cell text) and same interaction counters (user_updates,
// user_answers, cells_repaired, queries_applied) — in both posting-index
// maintenance modes. Plus the session-level rule-retraction properties.
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/json.h"
#include "common/socket.h"
#include "core/session.h"
#include "core/session_journal.h"
#include "datagen/datasets.h"
#include "datagen/workload.h"
#include "errorgen/injector.h"
#include "service/resilient_client.h"
#include "service/server.h"
#include "service/session_manager.h"

namespace falcon {
namespace {

struct Workload {
  Table clean;
  Table dirty;
  size_t errors;
};

Workload MakeWorkload(size_t rows) {
  auto ds = MakeSynth(rows);
  EXPECT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  EXPECT_TRUE(dirty.ok()) << dirty.status();
  return {ds->clean.Clone(), dirty->dirty.Clone(), dirty->errors.size()};
}

SessionOptions SweepOptions(bool posting_delta, const std::string& journal) {
  SessionOptions opt;
  opt.budget = 3;
  opt.posting_delta = posting_delta;
  // Mistakes exercise the replay-override paths: journaled wrong updates
  // and flipped oracle verdicts must reproduce even though recovery's RNGs
  // are re-seeded and replayed from the start.
  opt.update_mistake_prob = 0.2;
  opt.question_mistake_prob = 0.05;
  opt.journal_path = journal;
  return opt;
}

struct Baseline {
  SessionMetrics metrics;
  uint32_t table_crc = 0;
  std::vector<std::pair<std::string, size_t>> hits;
};

// The discovery pass: run uninterrupted with hit recording on, capturing
// the reference outcome and how many times each fault site is passed.
Baseline RunBaseline(const Workload& w, const SessionOptions& opt) {
  FaultInjector::Global().Reset();
  FaultInjector::Global().set_recording(true);
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto m = session.Run();
  EXPECT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->converged);
  Baseline base{*m, TableContentsCrc(dirty), FaultInjector::Global().Counts()};
  FaultInjector::Global().set_recording(false);
  FaultInjector::Global().Reset();
  return base;
}

void ExpectMatchesBaseline(const SessionMetrics& m, uint32_t crc,
                           const Baseline& base) {
  EXPECT_EQ(m.user_updates, base.metrics.user_updates);
  EXPECT_EQ(m.user_answers, base.metrics.user_answers);
  EXPECT_EQ(m.cells_repaired, base.metrics.cells_repaired);
  EXPECT_EQ(m.queries_applied, base.metrics.queries_applied);
  EXPECT_EQ(m.converged, base.metrics.converged);
  EXPECT_EQ(crc, base.table_crc);
}

// Crashes one run at the nth hit of `site`, then recovers with a brand-new
// session (fresh algorithm, fresh RNGs — only the journal and the mutated
// table survive, as they would a real process death).
void CrashAndRecover(const Workload& w, const SessionOptions& opt,
                     const Baseline& base, const std::string& site,
                     size_t nth) {
  SCOPED_TRACE(site + ":" + std::to_string(nth));
  FaultInjector::Global().Reset();
  Table dirty = w.dirty.Clone();
  {
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    FaultInjector::Global().Arm(
        {site, nth, /*count=*/1, StatusCode::kIoError});
    auto m = session.Run();
    FaultInjector::Global().Reset();
    ASSERT_FALSE(m.ok()) << "fault " << site << ":" << nth
                         << " never fired; the run completed";
    // The crashed session is destroyed here, closing its journal handle —
    // recovery only ever sees what a dead process would leave on disk.
  }
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto recovered = session.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectMatchesBaseline(*recovered, TableContentsCrc(dirty), base);
}

void SweepMode(bool posting_delta) {
  SCOPED_TRACE(posting_delta ? "posting_delta" : "posting_invalidate");
  Workload w = MakeWorkload(120);
  ASSERT_GT(w.errors, 0u);
  std::string journal = testing::TempDir() + "/fault_sweep_" +
                        (posting_delta ? "delta" : "inval") + ".journal";
  SessionOptions opt = SweepOptions(posting_delta, journal);
  Baseline base = RunBaseline(w, opt);

  // Every instrumented site must show up in the discovery pass, or the
  // sweep would silently stop covering a code path.
  std::set<std::string> seen;
  for (const auto& [site, count] : base.hits) seen.insert(site);
  for (const char* site :
       {"journal.append", "journal.torn", "journal.sync", "oracle.answer",
        "apply.rule", "apply.write", "manual.write", "session.update"}) {
    EXPECT_TRUE(seen.count(site)) << "site never hit: " << site;
  }

  for (const auto& [site, count] : base.hits) {
    // First, last, and an even sample in between: every site's boundary
    // hits plus enough interior points to catch ordinal-dependent bugs.
    std::set<size_t> picks = {1, count};
    size_t stride = std::max<size_t>(1, count / 5);
    for (size_t nth = 1; nth <= count; nth += stride) picks.insert(nth);
    for (size_t nth : picks) CrashAndRecover(w, opt, base, site, nth);
  }
}

TEST(FaultSweepTest, EveryCrashPointRecoversBitIdenticalDeltaMode) {
  SweepMode(/*posting_delta=*/true);
}

TEST(FaultSweepTest, EveryCrashPointRecoversBitIdenticalInvalidateMode) {
  SweepMode(/*posting_delta=*/false);
}

TEST(FaultSweepTest, JournalingIsBehaviorNeutral) {
  // Turning the journal on must not change a single interaction: the
  // write-ahead records observe the run, never steer it.
  Workload w = MakeWorkload(200);
  std::string journal = testing::TempDir() + "/neutral.journal";
  SessionOptions with = SweepOptions(true, journal);
  SessionOptions without = with;
  without.journal_path.clear();
  auto mj = RunCleaning(w.clean, w.dirty, SearchKind::kDive, with);
  auto mp = RunCleaning(w.clean, w.dirty, SearchKind::kDive, without);
  ASSERT_TRUE(mj.ok()) << mj.status();
  ASSERT_TRUE(mp.ok()) << mp.status();
  EXPECT_EQ(mj->user_updates, mp->user_updates);
  EXPECT_EQ(mj->user_answers, mp->user_answers);
  EXPECT_EQ(mj->cells_repaired, mp->cells_repaired);
  EXPECT_EQ(mj->queries_applied, mp->queries_applied);
  EXPECT_TRUE(mj->converged);
}

TEST(FaultSweepTest, RecoverReplaysACompletedRunToTheSameOutcome) {
  // Full replay with zero live continuation: recover over a journal whose
  // session ran to convergence. The rollback must unwind the whole run and
  // the replay must land on exactly the same counters and table.
  Workload w = MakeWorkload(150);
  std::string journal = testing::TempDir() + "/completed.journal";
  SessionOptions opt = SweepOptions(true, journal);
  Baseline base = RunBaseline(w, opt);

  Table dirty = w.dirty.Clone();
  {
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    auto m = session.Run();
    ASSERT_TRUE(m.ok()) << m.status();
  }
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto recovered = session.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectMatchesBaseline(*recovered, TableContentsCrc(dirty), base);
}

TEST(FaultSweepTest, RecoverWithoutAJournalIsAPlainRun) {
  Workload w = MakeWorkload(150);
  std::string journal = testing::TempDir() + "/never_written.journal";
  std::remove(journal.c_str());
  SessionOptions opt = SweepOptions(true, journal);
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto m = session.Recover();
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->converged);
}

TEST(FaultSweepTest, RecoverRejectsAForeignJournal) {
  // A journal whose kStart doesn't match this session's seed or table
  // shape must be refused, not replayed into the wrong table.
  Workload w = MakeWorkload(150);
  std::string journal = testing::TempDir() + "/foreign.journal";
  SessionOptions opt = SweepOptions(true, journal);
  RunBaseline(w, opt);  // Leaves a completed journal for seed 1234.

  SessionOptions other = opt;
  other.seed = 4321;
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), other);
  auto m = session.Recover();
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FaultSweepTest, TransientOracleOutagesAreRetriedNotFatal) {
  // kUnavailable faults under the retry bound are absorbed by backoff: the
  // run completes with baseline-identical interaction counters.
  Workload w = MakeWorkload(120);
  std::string journal = testing::TempDir() + "/transient.journal";
  SessionOptions opt = SweepOptions(true, journal);
  Baseline base = RunBaseline(w, opt);

  FaultInjector::Global().Reset();
  FaultInjector::Global().Arm(
      {"oracle.answer", /*nth=*/2, /*count=*/2, StatusCode::kUnavailable});
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto m = session.Run();
  FaultInjector::Global().Reset();
  ASSERT_TRUE(m.ok()) << m.status();
  ExpectMatchesBaseline(*m, TableContentsCrc(dirty), base);
}

TEST(FaultSweepTest, ExhaustedOracleRetriesSurfaceTheOutage) {
  // More consecutive transient failures than the retry bound: the episode
  // must abort with kUnavailable (and stay recoverable), never loop.
  Workload w = MakeWorkload(120);
  std::string journal = testing::TempDir() + "/outage.journal";
  SessionOptions opt = SweepOptions(true, journal);
  Baseline base = RunBaseline(w, opt);

  FaultInjector::Global().Reset();
  Table dirty = w.dirty.Clone();
  {
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    FaultInjector::Global().Arm(
        {"oracle.answer", /*nth=*/3, /*count=*/16, StatusCode::kUnavailable});
    auto m = session.Run();
    FaultInjector::Global().Reset();
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), StatusCode::kUnavailable);
  }
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto recovered = session.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectMatchesBaseline(*recovered, TableContentsCrc(dirty), base);
}

// ---------------------------------------------------------------------------
// Session-level rule retraction.

TEST(RetractionTest, RetractRestoresExactlyTheRulesCells) {
  for (bool delta : {true, false}) {
    SCOPED_TRACE(delta ? "delta" : "invalidate");
    Workload w = MakeWorkload(150);
    std::string journal = testing::TempDir() + "/retract_cells.journal";
    SessionOptions opt = SweepOptions(delta, journal);
    Table dirty = w.dirty.Clone();
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    auto m = session.Run();
    ASSERT_TRUE(m.ok()) << m.status();
    ASSERT_FALSE(session.log().empty());

    // The newest entry is always undoable; snapshot it and the table.
    size_t i = session.log().size() - 1;
    RepairLog::Entry entry = session.log().entries()[i];
    std::vector<std::vector<std::string>> snapshot(dirty.num_rows());
    for (size_t r = 0; r < dirty.num_rows(); ++r) {
      for (size_t c = 0; c < dirty.num_cols(); ++c) {
        snapshot[r].emplace_back(dirty.CellText(r, c));
      }
    }

    ASSERT_TRUE(session.RetractRule(i).ok());

    // Retracted cells hold their before-images; every other cell is
    // untouched.
    std::set<uint32_t> retracted_rows;
    for (const auto& [row, value] : entry.before) {
      retracted_rows.insert(row);
      EXPECT_EQ(dirty.CellText(row, entry.col),
                dirty.pool()->Get(value));
    }
    for (size_t r = 0; r < dirty.num_rows(); ++r) {
      for (size_t c = 0; c < dirty.num_cols(); ++c) {
        if (c == entry.col && retracted_rows.count(static_cast<uint32_t>(r))) {
          continue;
        }
        EXPECT_EQ(dirty.CellText(r, c), snapshot[r][c]);
      }
    }
    // The entry is gone from the log.
    EXPECT_EQ(session.log().size(), i);
  }
}

TEST(RetractionTest, RetractThenContinueReconverges) {
  for (bool delta : {true, false}) {
    SCOPED_TRACE(delta ? "delta" : "invalidate");
    Workload w = MakeWorkload(150);
    std::string journal = testing::TempDir() + "/retract_continue.journal";
    SessionOptions opt = SweepOptions(delta, journal);
    Table dirty = w.dirty.Clone();
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    auto m = session.Run();
    ASSERT_TRUE(m.ok()) << m.status();
    ASSERT_TRUE(m->converged);
    ASSERT_FALSE(session.log().empty());

    // Find a non-manual (multi-cell rule) entry to retract if one exists,
    // else fall back to the newest entry.
    size_t target = session.log().size() - 1;
    for (size_t i = session.log().size(); i-- > 0;) {
      if (!session.log().entries()[i].manual &&
          session.log().CanUndo(i).ok()) {
        target = i;
        break;
      }
    }
    ASSERT_TRUE(session.RetractRule(target).ok());
    auto resumed = session.Continue();
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_TRUE(resumed->converged);
    EXPECT_EQ(dirty.CountDiffCells(w.clean), 0u);
    // The re-cleaning costs real interactions, never negative ones.
    EXPECT_GE(resumed->user_updates, m->user_updates);
    EXPECT_GE(resumed->user_answers, m->user_answers);
  }
}

TEST(RetractionTest, OverlappingRetractionIsRefusedAndLeavesNoTrace) {
  // With wrong updates enabled some cell is repaired twice, giving two
  // overlapping log entries; retracting the older one must be refused and
  // leave table, log, and journal byte-identical.
  Workload w = MakeWorkload(200);
  std::string journal = testing::TempDir() + "/retract_refused.journal";
  SessionOptions opt = SweepOptions(true, journal);
  opt.update_mistake_prob = 0.4;
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto m = session.Run();
  ASSERT_TRUE(m.ok()) << m.status();

  bool found = false;
  for (size_t i = 0; i < session.log().size(); ++i) {
    if (session.log().CanUndo(i).ok()) continue;
    found = true;
    uint32_t crc_before = TableContentsCrc(dirty);
    size_t log_before = session.log().size();
    auto journal_before = SessionJournal::Read(journal);
    ASSERT_TRUE(journal_before.ok());

    Status st = session.RetractRule(i);
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(st.message().find("newest-first"), std::string::npos);

    EXPECT_EQ(TableContentsCrc(dirty), crc_before);
    EXPECT_EQ(session.log().size(), log_before);
    auto journal_after = SessionJournal::Read(journal);
    ASSERT_TRUE(journal_after.ok());
    EXPECT_EQ(journal_after->records.size(),
              journal_before->records.size());
    break;
  }
  ASSERT_TRUE(found) << "workload produced no overlapping repairs; "
                        "raise update_mistake_prob";
}

TEST(RetractionTest, CrashAfterRetractionReplaysTheRetraction) {
  // Reference: run → retract newest rule → continue to reconvergence.
  // Crash run: same, but die at the first episode after the retraction;
  // recovery must re-execute the journaled kRetract and land on the
  // reference outcome exactly.
  Workload w = MakeWorkload(150);
  SessionOptions ref_opt =
      SweepOptions(true, testing::TempDir() + "/retract_ref.journal");

  auto pick_target = [](const CleaningSession& s) {
    size_t target = s.log().size() - 1;
    for (size_t i = s.log().size(); i-- > 0;) {
      if (!s.log().entries()[i].manual && s.log().CanUndo(i).ok()) {
        return i;
      }
    }
    return target;
  };

  SessionMetrics ref_metrics;
  uint32_t ref_crc = 0;
  {
    Table dirty = w.dirty.Clone();
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), ref_opt);
    auto m = session.Run();
    ASSERT_TRUE(m.ok()) << m.status();
    ASSERT_FALSE(session.log().empty());
    ASSERT_TRUE(session.RetractRule(pick_target(session)).ok());
    auto resumed = session.Continue();
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ref_metrics = *resumed;
    ref_crc = TableContentsCrc(dirty);
  }

  SessionOptions crash_opt =
      SweepOptions(true, testing::TempDir() + "/retract_crash.journal");
  Table dirty = w.dirty.Clone();
  {
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), crash_opt);
    auto m = session.Run();
    ASSERT_TRUE(m.ok()) << m.status();
    ASSERT_TRUE(session.RetractRule(pick_target(session)).ok());
    FaultInjector::Global().Reset();
    FaultInjector::Global().Arm(
        {"session.update", /*nth=*/1, /*count=*/1, StatusCode::kIoError});
    auto resumed = session.Continue();
    FaultInjector::Global().Reset();
    ASSERT_FALSE(resumed.ok());
  }
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), crash_opt);
  auto recovered = session.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->user_updates, ref_metrics.user_updates);
  EXPECT_EQ(recovered->user_answers, ref_metrics.user_answers);
  EXPECT_EQ(recovered->cells_repaired, ref_metrics.cells_repaired);
  EXPECT_EQ(recovered->queries_applied, ref_metrics.queries_applied);
  EXPECT_TRUE(recovered->converged);
  EXPECT_EQ(TableContentsCrc(dirty), ref_crc);
}

// ---------------------------------------------------------------------------
// Service-layer fault sites: the transport and journal-directory faults a
// daemon deployment adds on top of the in-process crash points above. Each
// injected fault must be absorbed by the resilient client's bounded
// reconnect/retry path, and the workload must still land on the
// uninterrupted run's exact final table.

constexpr double kServiceScale = 0.02;

uint32_t ServiceBaselineCrc(uint64_t seed) {
  auto w = MakeCleaningWorkload("Synth10k", kServiceScale);
  EXPECT_TRUE(w.ok());
  SessionOptions options;
  options.seed = seed;
  Table working = w->dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(SearchKind::kCoDive);
  CleaningSession session(&w->clean, &working, algorithm.get(), options);
  auto metrics = session.Run();
  EXPECT_TRUE(metrics.ok());
  return TableContentsCrc(working);
}

std::string ServiceTempDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/falcon_service_faults_" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

TEST(ServiceFaultSweepTest, ResilientWorkloadSurvivesTransportFaults) {
  const uint32_t want_crc = ServiceBaselineCrc(7);
  struct Case {
    const char* site;
    size_t nth;  // Chosen to land mid-workload (see comments below).
  };
  // accept:1 — the very first connection is dropped post-accept.
  // read:2   — the step request's bytes are consumed, then the connection
  //            dies before dispatch (request never executed; plain retry).
  // write:2  — the step *response* is torn after execution: the retry must
  //            be answered from the idempotency window, not re-applied.
  for (const Case& c : {Case{"service.accept", 1}, Case{"service.read", 2},
                        Case{"service.write", 2}}) {
    SCOPED_TRACE(c.site);
    FaultInjector::Global().Reset();
    ServerOptions options;
    options.unix_path = testing::TempDir() + "/falcon_fault_sweep_svc.sock";
    options.workers = 2;
    options.limits.journal_dir = ServiceTempDir("transport");
    CleaningServer server(options);
    ASSERT_TRUE(server.Start().ok());
    FaultInjector::Global().Arm(
        {c.site, c.nth, /*count=*/1, StatusCode::kIoError});

    ResilientClientOptions copts;
    copts.unix_path = options.unix_path;
    copts.deadline_ms = 10000;
    ResilientClient client(copts);
    SessionManager::OpenParams params;
    params.dataset = "Synth10k";
    params.scale = kServiceScale;
    params.seed = 7;
    auto opened = client.OpenSession(params);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    uint32_t crc = 0;
    for (int i = 0; i < 10000; ++i) {
      auto st = client.Step(1);
      ASSERT_TRUE(st.ok()) << st.status().ToString();
      if (st->GetBool("finished")) {
        crc = static_cast<uint32_t>(st->GetInt("table_crc"));
        break;
      }
    }
    FaultInjector::Global().Reset();
    EXPECT_EQ(crc, want_crc);
    // The fault actually bit: the client needed more than the one happy
    // connect to finish.
    EXPECT_GE(client.stats().connects, 2u);
    ASSERT_TRUE(client.CloseSession().ok());
    server.Stop();
    server.Wait();
  }
}

TEST(ServiceFaultSweepTest, InjectedStallGetsTypedDeadline) {
  // service.stall simulates a client that goes quiet mid-line: the
  // server's per-line deadline fires (immediately, via injection) and the
  // connection gets the typed DEADLINE_EXCEEDED eviction — no real
  // waiting, unlike the wall-clock slowloris test in service_test.
  FaultInjector::Global().Reset();
  ServerOptions options;
  options.unix_path = testing::TempDir() + "/falcon_fault_sweep_stall.sock";
  options.workers = 1;
  options.read_deadline_ms = 60000;
  CleaningServer server(options);
  ASSERT_TRUE(server.Start().ok());
  FaultInjector::Global().Arm(
      {"service.stall", /*nth=*/1, /*count=*/1, StatusCode::kIoError});

  auto conn = ConnectUnix(options.unix_path);
  ASSERT_TRUE(conn.ok());
  const char partial[] = "{\"verb\":\"pi";  // No newline: a torn line.
  ASSERT_GT(::send(conn->fd(), partial, sizeof partial - 1, 0), 0);
  LineChannel channel(std::move(conn).value());
  channel.set_read_deadline(10000, /*from_first_byte=*/false);
  std::string line;
  bool eof = false;
  Status read = channel.ReadLine(&line, &eof);
  FaultInjector::Global().Reset();
  ASSERT_TRUE(read.ok()) << read.ToString();
  ASSERT_FALSE(eof);
  auto resp = JsonValue::Parse(line);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->GetBool("ok"));
  EXPECT_EQ(resp->GetString("code"), "DEADLINE_EXCEEDED");

  server.Stop();
  server.Wait();
}

TEST(ServiceFaultSweepTest, JournalDirSyncFaultFailsOpenWithoutOrphans) {
  FaultInjector::Global().Reset();
  ServiceLimits limits;
  limits.journal_dir = ServiceTempDir("dirsync");
  SessionManager manager(limits);
  SessionManager::OpenParams params;
  params.dataset = "Synth10k";
  params.scale = kServiceScale;
  params.seed = 7;

  FaultInjector::Global().Arm({"service.journal_dir_sync", /*nth=*/1,
                               /*count=*/1, StatusCode::kIoError});
  auto opened = manager.Open(params);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
  // The half-durable meta was rolled back: nothing for a future startup
  // scan to mistake for a recoverable session.
  struct stat st;
  EXPECT_NE(::stat((limits.journal_dir + "/s-1.meta").c_str(), &st), 0);

  // The injector disarmed, the same open succeeds.
  auto retry = manager.Open(params);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
}

}  // namespace
}  // namespace falcon
