// The crash-safety acceptance harness: enumerate every injectable fault
// point a cleaning run passes through, crash the session at each one,
// recover from the journal, and require the recovered run to be
// bit-identical to the uninterrupted baseline — same table contents (CRC
// over all cell text) and same interaction counters (user_updates,
// user_answers, cells_repaired, queries_applied) — in both posting-index
// maintenance modes. Plus the session-level rule-retraction properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "core/session.h"
#include "core/session_journal.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

struct Workload {
  Table clean;
  Table dirty;
  size_t errors;
};

Workload MakeWorkload(size_t rows) {
  auto ds = MakeSynth(rows);
  EXPECT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  EXPECT_TRUE(dirty.ok()) << dirty.status();
  return {ds->clean.Clone(), dirty->dirty.Clone(), dirty->errors.size()};
}

SessionOptions SweepOptions(bool posting_delta, const std::string& journal) {
  SessionOptions opt;
  opt.budget = 3;
  opt.posting_delta = posting_delta;
  // Mistakes exercise the replay-override paths: journaled wrong updates
  // and flipped oracle verdicts must reproduce even though recovery's RNGs
  // are re-seeded and replayed from the start.
  opt.update_mistake_prob = 0.2;
  opt.question_mistake_prob = 0.05;
  opt.journal_path = journal;
  return opt;
}

struct Baseline {
  SessionMetrics metrics;
  uint32_t table_crc = 0;
  std::vector<std::pair<std::string, size_t>> hits;
};

// The discovery pass: run uninterrupted with hit recording on, capturing
// the reference outcome and how many times each fault site is passed.
Baseline RunBaseline(const Workload& w, const SessionOptions& opt) {
  FaultInjector::Global().Reset();
  FaultInjector::Global().set_recording(true);
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto m = session.Run();
  EXPECT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->converged);
  Baseline base{*m, TableContentsCrc(dirty), FaultInjector::Global().Counts()};
  FaultInjector::Global().set_recording(false);
  FaultInjector::Global().Reset();
  return base;
}

void ExpectMatchesBaseline(const SessionMetrics& m, uint32_t crc,
                           const Baseline& base) {
  EXPECT_EQ(m.user_updates, base.metrics.user_updates);
  EXPECT_EQ(m.user_answers, base.metrics.user_answers);
  EXPECT_EQ(m.cells_repaired, base.metrics.cells_repaired);
  EXPECT_EQ(m.queries_applied, base.metrics.queries_applied);
  EXPECT_EQ(m.converged, base.metrics.converged);
  EXPECT_EQ(crc, base.table_crc);
}

// Crashes one run at the nth hit of `site`, then recovers with a brand-new
// session (fresh algorithm, fresh RNGs — only the journal and the mutated
// table survive, as they would a real process death).
void CrashAndRecover(const Workload& w, const SessionOptions& opt,
                     const Baseline& base, const std::string& site,
                     size_t nth) {
  SCOPED_TRACE(site + ":" + std::to_string(nth));
  FaultInjector::Global().Reset();
  Table dirty = w.dirty.Clone();
  {
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    FaultInjector::Global().Arm(
        {site, nth, /*count=*/1, StatusCode::kIoError});
    auto m = session.Run();
    FaultInjector::Global().Reset();
    ASSERT_FALSE(m.ok()) << "fault " << site << ":" << nth
                         << " never fired; the run completed";
    // The crashed session is destroyed here, closing its journal handle —
    // recovery only ever sees what a dead process would leave on disk.
  }
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto recovered = session.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectMatchesBaseline(*recovered, TableContentsCrc(dirty), base);
}

void SweepMode(bool posting_delta) {
  SCOPED_TRACE(posting_delta ? "posting_delta" : "posting_invalidate");
  Workload w = MakeWorkload(120);
  ASSERT_GT(w.errors, 0u);
  std::string journal = testing::TempDir() + "/fault_sweep_" +
                        (posting_delta ? "delta" : "inval") + ".journal";
  SessionOptions opt = SweepOptions(posting_delta, journal);
  Baseline base = RunBaseline(w, opt);

  // Every instrumented site must show up in the discovery pass, or the
  // sweep would silently stop covering a code path.
  std::set<std::string> seen;
  for (const auto& [site, count] : base.hits) seen.insert(site);
  for (const char* site :
       {"journal.append", "journal.torn", "journal.sync", "oracle.answer",
        "apply.rule", "apply.write", "manual.write", "session.update"}) {
    EXPECT_TRUE(seen.count(site)) << "site never hit: " << site;
  }

  for (const auto& [site, count] : base.hits) {
    // First, last, and an even sample in between: every site's boundary
    // hits plus enough interior points to catch ordinal-dependent bugs.
    std::set<size_t> picks = {1, count};
    size_t stride = std::max<size_t>(1, count / 5);
    for (size_t nth = 1; nth <= count; nth += stride) picks.insert(nth);
    for (size_t nth : picks) CrashAndRecover(w, opt, base, site, nth);
  }
}

TEST(FaultSweepTest, EveryCrashPointRecoversBitIdenticalDeltaMode) {
  SweepMode(/*posting_delta=*/true);
}

TEST(FaultSweepTest, EveryCrashPointRecoversBitIdenticalInvalidateMode) {
  SweepMode(/*posting_delta=*/false);
}

TEST(FaultSweepTest, JournalingIsBehaviorNeutral) {
  // Turning the journal on must not change a single interaction: the
  // write-ahead records observe the run, never steer it.
  Workload w = MakeWorkload(200);
  std::string journal = testing::TempDir() + "/neutral.journal";
  SessionOptions with = SweepOptions(true, journal);
  SessionOptions without = with;
  without.journal_path.clear();
  auto mj = RunCleaning(w.clean, w.dirty, SearchKind::kDive, with);
  auto mp = RunCleaning(w.clean, w.dirty, SearchKind::kDive, without);
  ASSERT_TRUE(mj.ok()) << mj.status();
  ASSERT_TRUE(mp.ok()) << mp.status();
  EXPECT_EQ(mj->user_updates, mp->user_updates);
  EXPECT_EQ(mj->user_answers, mp->user_answers);
  EXPECT_EQ(mj->cells_repaired, mp->cells_repaired);
  EXPECT_EQ(mj->queries_applied, mp->queries_applied);
  EXPECT_TRUE(mj->converged);
}

TEST(FaultSweepTest, RecoverReplaysACompletedRunToTheSameOutcome) {
  // Full replay with zero live continuation: recover over a journal whose
  // session ran to convergence. The rollback must unwind the whole run and
  // the replay must land on exactly the same counters and table.
  Workload w = MakeWorkload(150);
  std::string journal = testing::TempDir() + "/completed.journal";
  SessionOptions opt = SweepOptions(true, journal);
  Baseline base = RunBaseline(w, opt);

  Table dirty = w.dirty.Clone();
  {
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    auto m = session.Run();
    ASSERT_TRUE(m.ok()) << m.status();
  }
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto recovered = session.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectMatchesBaseline(*recovered, TableContentsCrc(dirty), base);
}

TEST(FaultSweepTest, RecoverWithoutAJournalIsAPlainRun) {
  Workload w = MakeWorkload(150);
  std::string journal = testing::TempDir() + "/never_written.journal";
  std::remove(journal.c_str());
  SessionOptions opt = SweepOptions(true, journal);
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto m = session.Recover();
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->converged);
}

TEST(FaultSweepTest, RecoverRejectsAForeignJournal) {
  // A journal whose kStart doesn't match this session's seed or table
  // shape must be refused, not replayed into the wrong table.
  Workload w = MakeWorkload(150);
  std::string journal = testing::TempDir() + "/foreign.journal";
  SessionOptions opt = SweepOptions(true, journal);
  RunBaseline(w, opt);  // Leaves a completed journal for seed 1234.

  SessionOptions other = opt;
  other.seed = 4321;
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), other);
  auto m = session.Recover();
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FaultSweepTest, TransientOracleOutagesAreRetriedNotFatal) {
  // kUnavailable faults under the retry bound are absorbed by backoff: the
  // run completes with baseline-identical interaction counters.
  Workload w = MakeWorkload(120);
  std::string journal = testing::TempDir() + "/transient.journal";
  SessionOptions opt = SweepOptions(true, journal);
  Baseline base = RunBaseline(w, opt);

  FaultInjector::Global().Reset();
  FaultInjector::Global().Arm(
      {"oracle.answer", /*nth=*/2, /*count=*/2, StatusCode::kUnavailable});
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto m = session.Run();
  FaultInjector::Global().Reset();
  ASSERT_TRUE(m.ok()) << m.status();
  ExpectMatchesBaseline(*m, TableContentsCrc(dirty), base);
}

TEST(FaultSweepTest, ExhaustedOracleRetriesSurfaceTheOutage) {
  // More consecutive transient failures than the retry bound: the episode
  // must abort with kUnavailable (and stay recoverable), never loop.
  Workload w = MakeWorkload(120);
  std::string journal = testing::TempDir() + "/outage.journal";
  SessionOptions opt = SweepOptions(true, journal);
  Baseline base = RunBaseline(w, opt);

  FaultInjector::Global().Reset();
  Table dirty = w.dirty.Clone();
  {
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    FaultInjector::Global().Arm(
        {"oracle.answer", /*nth=*/3, /*count=*/16, StatusCode::kUnavailable});
    auto m = session.Run();
    FaultInjector::Global().Reset();
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), StatusCode::kUnavailable);
  }
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto recovered = session.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectMatchesBaseline(*recovered, TableContentsCrc(dirty), base);
}

// ---------------------------------------------------------------------------
// Session-level rule retraction.

TEST(RetractionTest, RetractRestoresExactlyTheRulesCells) {
  for (bool delta : {true, false}) {
    SCOPED_TRACE(delta ? "delta" : "invalidate");
    Workload w = MakeWorkload(150);
    std::string journal = testing::TempDir() + "/retract_cells.journal";
    SessionOptions opt = SweepOptions(delta, journal);
    Table dirty = w.dirty.Clone();
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    auto m = session.Run();
    ASSERT_TRUE(m.ok()) << m.status();
    ASSERT_FALSE(session.log().empty());

    // The newest entry is always undoable; snapshot it and the table.
    size_t i = session.log().size() - 1;
    RepairLog::Entry entry = session.log().entries()[i];
    std::vector<std::vector<std::string>> snapshot(dirty.num_rows());
    for (size_t r = 0; r < dirty.num_rows(); ++r) {
      for (size_t c = 0; c < dirty.num_cols(); ++c) {
        snapshot[r].emplace_back(dirty.CellText(r, c));
      }
    }

    ASSERT_TRUE(session.RetractRule(i).ok());

    // Retracted cells hold their before-images; every other cell is
    // untouched.
    std::set<uint32_t> retracted_rows;
    for (const auto& [row, value] : entry.before) {
      retracted_rows.insert(row);
      EXPECT_EQ(dirty.CellText(row, entry.col),
                dirty.pool()->Get(value));
    }
    for (size_t r = 0; r < dirty.num_rows(); ++r) {
      for (size_t c = 0; c < dirty.num_cols(); ++c) {
        if (c == entry.col && retracted_rows.count(static_cast<uint32_t>(r))) {
          continue;
        }
        EXPECT_EQ(dirty.CellText(r, c), snapshot[r][c]);
      }
    }
    // The entry is gone from the log.
    EXPECT_EQ(session.log().size(), i);
  }
}

TEST(RetractionTest, RetractThenContinueReconverges) {
  for (bool delta : {true, false}) {
    SCOPED_TRACE(delta ? "delta" : "invalidate");
    Workload w = MakeWorkload(150);
    std::string journal = testing::TempDir() + "/retract_continue.journal";
    SessionOptions opt = SweepOptions(delta, journal);
    Table dirty = w.dirty.Clone();
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    auto m = session.Run();
    ASSERT_TRUE(m.ok()) << m.status();
    ASSERT_TRUE(m->converged);
    ASSERT_FALSE(session.log().empty());

    // Find a non-manual (multi-cell rule) entry to retract if one exists,
    // else fall back to the newest entry.
    size_t target = session.log().size() - 1;
    for (size_t i = session.log().size(); i-- > 0;) {
      if (!session.log().entries()[i].manual &&
          session.log().CanUndo(i).ok()) {
        target = i;
        break;
      }
    }
    ASSERT_TRUE(session.RetractRule(target).ok());
    auto resumed = session.Continue();
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_TRUE(resumed->converged);
    EXPECT_EQ(dirty.CountDiffCells(w.clean), 0u);
    // The re-cleaning costs real interactions, never negative ones.
    EXPECT_GE(resumed->user_updates, m->user_updates);
    EXPECT_GE(resumed->user_answers, m->user_answers);
  }
}

TEST(RetractionTest, OverlappingRetractionIsRefusedAndLeavesNoTrace) {
  // With wrong updates enabled some cell is repaired twice, giving two
  // overlapping log entries; retracting the older one must be refused and
  // leave table, log, and journal byte-identical.
  Workload w = MakeWorkload(200);
  std::string journal = testing::TempDir() + "/retract_refused.journal";
  SessionOptions opt = SweepOptions(true, journal);
  opt.update_mistake_prob = 0.4;
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto m = session.Run();
  ASSERT_TRUE(m.ok()) << m.status();

  bool found = false;
  for (size_t i = 0; i < session.log().size(); ++i) {
    if (session.log().CanUndo(i).ok()) continue;
    found = true;
    uint32_t crc_before = TableContentsCrc(dirty);
    size_t log_before = session.log().size();
    auto journal_before = SessionJournal::Read(journal);
    ASSERT_TRUE(journal_before.ok());

    Status st = session.RetractRule(i);
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(st.message().find("newest-first"), std::string::npos);

    EXPECT_EQ(TableContentsCrc(dirty), crc_before);
    EXPECT_EQ(session.log().size(), log_before);
    auto journal_after = SessionJournal::Read(journal);
    ASSERT_TRUE(journal_after.ok());
    EXPECT_EQ(journal_after->records.size(),
              journal_before->records.size());
    break;
  }
  ASSERT_TRUE(found) << "workload produced no overlapping repairs; "
                        "raise update_mistake_prob";
}

TEST(RetractionTest, CrashAfterRetractionReplaysTheRetraction) {
  // Reference: run → retract newest rule → continue to reconvergence.
  // Crash run: same, but die at the first episode after the retraction;
  // recovery must re-execute the journaled kRetract and land on the
  // reference outcome exactly.
  Workload w = MakeWorkload(150);
  SessionOptions ref_opt =
      SweepOptions(true, testing::TempDir() + "/retract_ref.journal");

  auto pick_target = [](const CleaningSession& s) {
    size_t target = s.log().size() - 1;
    for (size_t i = s.log().size(); i-- > 0;) {
      if (!s.log().entries()[i].manual && s.log().CanUndo(i).ok()) {
        return i;
      }
    }
    return target;
  };

  SessionMetrics ref_metrics;
  uint32_t ref_crc = 0;
  {
    Table dirty = w.dirty.Clone();
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), ref_opt);
    auto m = session.Run();
    ASSERT_TRUE(m.ok()) << m.status();
    ASSERT_FALSE(session.log().empty());
    ASSERT_TRUE(session.RetractRule(pick_target(session)).ok());
    auto resumed = session.Continue();
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ref_metrics = *resumed;
    ref_crc = TableContentsCrc(dirty);
  }

  SessionOptions crash_opt =
      SweepOptions(true, testing::TempDir() + "/retract_crash.journal");
  Table dirty = w.dirty.Clone();
  {
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), crash_opt);
    auto m = session.Run();
    ASSERT_TRUE(m.ok()) << m.status();
    ASSERT_TRUE(session.RetractRule(pick_target(session)).ok());
    FaultInjector::Global().Reset();
    FaultInjector::Global().Arm(
        {"session.update", /*nth=*/1, /*count=*/1, StatusCode::kIoError});
    auto resumed = session.Continue();
    FaultInjector::Global().Reset();
    ASSERT_FALSE(resumed.ok());
  }
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), crash_opt);
  auto recovered = session.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->user_updates, ref_metrics.user_updates);
  EXPECT_EQ(recovered->user_answers, ref_metrics.user_answers);
  EXPECT_EQ(recovered->cells_repaired, ref_metrics.cells_repaired);
  EXPECT_EQ(recovered->queries_applied, ref_metrics.queries_applied);
  EXPECT_TRUE(recovered->converged);
  EXPECT_EQ(TableContentsCrc(dirty), ref_crc);
}

}  // namespace
}  // namespace falcon
