// SharedBaseCache: the process-wide base-snapshot read tier. Covers the
// publication protocol (first-publisher-wins, epoch-gated rejection,
// byte-budget rejection, plane separation), the two-tier PostingIndex /
// IntersectionMemo integration (shared probe first, privatize-on-write),
// and — the property everything else exists for — bit-identity of
// shared-cache sessions with solo runs, including under concurrent
// sessions with a chaos invalidator (runs under TSan in CI).
#include "core/shared_base_cache.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/session.h"
#include "datagen/workload.h"
#include "relational/posting_index.h"

namespace falcon {
namespace {

RowSet BitsOf(size_t universe, std::initializer_list<size_t> rows) {
  RowSet s(universe);
  for (size_t r : rows) s.Set(r);
  return s;
}

TEST(SharedBaseCacheTest, PublishFindRoundTripAndPlaneSeparation) {
  SharedBaseCache cache(/*snapshot_id=*/7, /*num_cols=*/4);
  EXPECT_EQ(cache.snapshot_id(), 7u);
  EXPECT_EQ(cache.epoch(), 1u);
  EXPECT_EQ(cache.FindPosting(false, 2, ValueId{9}), nullptr);

  RowSet rows = BitsOf(128, {3, 64, 100});
  uint64_t epoch = cache.epoch();
  SharedBaseCache::EntryPtr e =
      cache.PublishPosting(false, 2, ValueId{9}, rows, epoch);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(*e, rows);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.resident_bytes(), 0u);

  SharedBaseCache::EntryPtr found = cache.FindPosting(false, 2, ValueId{9});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), e.get());  // One physical bitmap per key.

  // The dense-plane entry must be invisible to the compressed plane and
  // vice versa — representations never alias across sessions.
  EXPECT_EQ(cache.FindPosting(true, 2, ValueId{9}), nullptr);
  cache.PublishPosting(true, 2, ValueId{9}, rows, cache.epoch());
  EXPECT_EQ(cache.entries(), 2u);

  SharedBaseCacheStats st = cache.Stats();
  EXPECT_EQ(st.posting_publishes, 2u);
  EXPECT_EQ(st.posting_hits, 1u);
  EXPECT_EQ(st.posting_misses, 2u);  // Dense pre-publish + compressed probe.
}

TEST(SharedBaseCacheTest, FirstPublisherWins) {
  SharedBaseCache cache(3, 2);
  RowSet first = BitsOf(64, {1, 2});
  RowSet second = BitsOf(64, {5});
  SharedBaseCache::EntryPtr a =
      cache.PublishPosting(false, 0, ValueId{1}, first, cache.epoch());
  // A racing publish of the same key returns the resident entry, not its
  // own bits (in real use both are identical; distinct bits here make the
  // winner observable).
  SharedBaseCache::EntryPtr b =
      cache.PublishPosting(false, 0, ValueId{1}, second, cache.epoch());
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(*b, first);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(SharedBaseCacheTest, InvalidateRetiresGenerationAndRejectsStalePublish) {
  SharedBaseCache cache(11, 2);
  RowSet rows = BitsOf(64, {7});
  uint64_t stale = cache.epoch();
  SharedBaseCache::EntryPtr pinned =
      cache.PublishPosting(false, 1, ValueId{4}, rows, stale);

  cache.Invalidate();
  EXPECT_EQ(cache.epoch(), stale + 1);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cache.FindPosting(false, 1, ValueId{4}), nullptr);
  // The reader's pin survives invalidation (RCU grace via refcount).
  EXPECT_EQ(*pinned, rows);

  // A publish computed against the retired epoch must be rejected: the
  // wrap is returned for the caller's own use but never becomes resident.
  SharedBaseCache::EntryPtr rejected =
      cache.PublishPosting(false, 1, ValueId{4}, rows, stale);
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(*rejected, rows);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.FindPosting(false, 1, ValueId{4}), nullptr);
  EXPECT_GT(cache.Stats().rejected_publishes, 0u);
  EXPECT_EQ(cache.Stats().invalidations, 1u);

  // The current epoch publishes fine.
  cache.PublishPosting(false, 1, ValueId{4}, rows, cache.epoch());
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(SharedBaseCacheTest, ByteBudgetRejectsOverBudgetPublishes) {
  RowSet rows = BitsOf(1024, {1, 1000});
  SharedBaseCache sizer(1, 1);
  sizer.PublishPosting(false, 0, ValueId{0}, rows, sizer.epoch());
  size_t entry_bytes = sizer.resident_bytes();
  ASSERT_GT(entry_bytes, 0u);

  SharedBaseCache cache(2, 1, /*byte_budget=*/entry_bytes);
  cache.PublishPosting(false, 0, ValueId{1}, rows, cache.epoch());
  EXPECT_EQ(cache.entries(), 1u);
  // Over budget: rejected (not evicted — resident entries are immortal
  // until Invalidate), but the caller still gets a usable wrap.
  SharedBaseCache::EntryPtr wrap =
      cache.PublishPosting(false, 0, ValueId{2}, rows, cache.epoch());
  ASSERT_NE(wrap, nullptr);
  EXPECT_EQ(*wrap, rows);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.FindPosting(false, 0, ValueId{2}), nullptr);
  EXPECT_GT(cache.Stats().rejected_publishes, 0u);
}

TEST(SharedBaseCacheTest, IntersectionPairOrderCanonicalizes) {
  SharedBaseCache cache(5, 4);
  RowSet rows = BitsOf(64, {2, 9});
  cache.PublishIntersection(false, 2, ValueId{7}, 1, ValueId{3}, rows,
                            cache.epoch());
  SharedBaseCache::EntryPtr e =
      cache.FindIntersection(false, 1, ValueId{3}, 2, ValueId{7});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(*e, rows);
  EXPECT_TRUE(cache.ContainsIntersection(false, 2, ValueId{7}, 1, ValueId{3}));
  EXPECT_TRUE(cache.ContainsIntersection(false, 1, ValueId{3}, 2, ValueId{7}));
  EXPECT_FALSE(cache.ContainsIntersection(true, 1, ValueId{3}, 2, ValueId{7}));
  EXPECT_EQ(cache.entries(), 1u);
}

// Builds a rows×cols table over a small alphabet so values recur heavily.
Table MakeRandomTable(size_t rows, size_t cols, size_t alphabet, Rng* rng) {
  std::vector<std::string> names;
  for (size_t c = 0; c < cols; ++c) names.push_back("A" + std::to_string(c));
  Table t("rand", Schema(names));
  std::vector<std::string> row(cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      row[c] = "v" + std::to_string(rng->NextUint(alphabet));
    }
    t.AppendRow(row);
  }
  return t;
}

TEST(TwoTierPostingIndexTest, SharedProbeThenPrivatizeOnWrite) {
  Rng rng(33);
  Table base = MakeRandomTable(400, 3, 6, &rng);
  std::vector<ValueId> alphabet;
  for (size_t a = 0; a < 6; ++a) {
    alphabet.push_back(base.Intern("v" + std::to_string(a)));
  }
  SharedBaseCache cache(/*snapshot_id=*/7, base.num_cols());

  PostingIndexOptions opts;
  opts.delta_maintenance = true;
  opts.shared = &cache;
  opts.base_snapshot_id = 7;

  // Session A, cold: the probe misses the shared tier and publishes.
  Table ta = base.Clone();
  PostingIndex a(&ta, opts);
  ASSERT_TRUE(a.shared_attached());
  EXPECT_EQ(a.Postings(0, alphabet[0]), base.ScanEquals(0, alphabet[0]));
  EXPECT_EQ(a.stats().shared_misses, 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(a.SharedViewEntries(), 1u);
  EXPECT_GT(a.SharedViewBytes(), 0u);

  // Session B, warm: pure shared hit, private tier untouched.
  Table tb = base.Clone();
  PostingIndex b(&tb, opts);
  EXPECT_EQ(b.Postings(0, alphabet[0]), base.ScanEquals(0, alphabet[0]));
  EXPECT_EQ(b.stats().shared_hits, 1u);
  EXPECT_EQ(b.stats().shared_misses, 0u);
  EXPECT_EQ(b.misses(), 0u);
  EXPECT_EQ(b.cached_entries(), 0u);

  // A writes a cell in column 0: the column privatizes, and A's postings
  // track A's table while B keeps serving base bits from the shared tier.
  ValueId old_value = ta.cell(5, 0);
  a.ApplyCellDelta(0, 5, old_value, alphabet[1]);
  ta.set_cell(5, 0, alphabet[1]);
  EXPECT_EQ(a.SharedViewEntries(), 0u);  // Promoted into the private tier.
  EXPECT_GT(a.cached_entries(), 0u);
  for (ValueId v : alphabet) {
    EXPECT_EQ(a.Postings(0, v), ta.ScanEquals(0, v));
  }
  EXPECT_EQ(b.Postings(0, alphabet[0]), base.ScanEquals(0, alphabet[0]));

  // A's unwritten columns stay shared-eligible: a fresh probe publishes.
  size_t publishes_before = cache.Stats().posting_publishes;
  EXPECT_EQ(a.Postings(1, alphabet[2]), base.ScanEquals(1, alphabet[2]));
  EXPECT_EQ(cache.Stats().posting_publishes, publishes_before + 1);
}

TEST(TwoTierPostingIndexTest, SnapshotMismatchKeepsIndexFullyPrivate) {
  Rng rng(44);
  Table base = MakeRandomTable(100, 2, 4, &rng);
  ValueId v0 = base.Intern("v0");
  SharedBaseCache cache(/*snapshot_id=*/7, base.num_cols());

  PostingIndexOptions opts;
  opts.shared = &cache;
  opts.base_snapshot_id = 8;  // Different generation: never attach.
  PostingIndex index(&base, opts);
  EXPECT_FALSE(index.shared_attached());
  EXPECT_EQ(index.Postings(0, v0), base.ScanEquals(0, v0));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(index.stats().shared_hits, 0u);
  EXPECT_EQ(index.stats().shared_misses, 0u);
  EXPECT_EQ(index.misses(), 1u);
}

TEST(TwoTierIntersectionMemoTest, SharedTierServesPairsUntilColumnDirty) {
  SharedBaseCache cache(9, 8);
  IntersectionMemo memo;
  memo.AttachShared(&cache, /*compressed=*/false);
  RowSet rows = BitsOf(64, {1, 4});

  // Second-touch admission still gates the shared tier; the admitted pair
  // is stored process-wide, not in the private map.
  memo.Put(1, ValueId{3}, 2, ValueId{7}, rows);
  EXPECT_EQ(memo.stats().first_touch_skips, 1u);
  EXPECT_FALSE(cache.ContainsIntersection(false, 1, ValueId{3}, 2, ValueId{7}));
  memo.Put(1, ValueId{3}, 2, ValueId{7}, rows);
  EXPECT_EQ(memo.stats().shared_publishes, 1u);
  EXPECT_EQ(memo.cached_entries(), 0u);
  EXPECT_TRUE(cache.ContainsIntersection(false, 1, ValueId{3}, 2, ValueId{7}));

  // Served back (order-insensitive), counted as a shared hit.
  const HybridRowSet* e = memo.Find(2, ValueId{7}, 1, ValueId{3});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(*e, rows);
  EXPECT_EQ(memo.stats().shared_hits, 1u);
  EXPECT_TRUE(memo.Contains(1, ValueId{3}, 2, ValueId{7}));
  EXPECT_TRUE(memo.RecordTouch(1, ValueId{3}, 2, ValueId{7}));

  // A second session's memo on the same cache hits immediately.
  IntersectionMemo peer;
  peer.AttachShared(&cache, /*compressed=*/false);
  ASSERT_NE(peer.Find(1, ValueId{3}, 2, ValueId{7}), nullptr);
  EXPECT_EQ(peer.stats().shared_hits, 1u);

  // Writing into column 2 dirties it for THIS memo only: the pair is no
  // longer served from the shared tier here, and a re-admitted pair lands
  // in the private map. The peer (no writes) keeps its shared service.
  memo.ApplyCellWrite(2, /*row=*/9, ValueId{7});
  EXPECT_EQ(memo.Find(1, ValueId{3}, 2, ValueId{7}), nullptr);
  memo.Put(1, ValueId{3}, 2, ValueId{7}, rows);
  memo.Put(1, ValueId{3}, 2, ValueId{7}, rows);
  EXPECT_EQ(memo.cached_entries(), 1u);
  EXPECT_NE(memo.Find(1, ValueId{3}, 2, ValueId{7}), nullptr);
  ASSERT_NE(peer.Find(1, ValueId{3}, 2, ValueId{7}), nullptr);

  // Clear() (new lattice episode) must NOT forget dirtiness — the table
  // is still mutated, so base pairs over column 2 stay ineligible.
  memo.Clear();
  EXPECT_EQ(memo.Find(1, ValueId{3}, 2, ValueId{7}), nullptr);
  // Pairs not touching a dirty column still ride the shared tier.
  memo.Put(3, ValueId{1}, 4, ValueId{1}, rows);
  memo.Put(3, ValueId{1}, 4, ValueId{1}, rows);
  EXPECT_TRUE(cache.ContainsIntersection(false, 3, ValueId{1}, 4, ValueId{1}));
  EXPECT_EQ(memo.cached_entries(), 0u);
}

// ---------------------------------------------------------------------------
// Session-level bit-identity: the shared tier is pure acceleration.
// ---------------------------------------------------------------------------

constexpr double kScale = 0.02;

struct Outcome {
  SessionMetrics metrics;
  uint32_t crc = 0;
};

bool SameOutcome(const Outcome& a, const Outcome& b) {
  return a.metrics.user_updates == b.metrics.user_updates &&
         a.metrics.user_answers == b.metrics.user_answers &&
         a.metrics.cells_repaired == b.metrics.cells_repaired &&
         a.metrics.queries_applied == b.metrics.queries_applied &&
         a.metrics.converged == b.metrics.converged && a.crc == b.crc;
}

/// Runs one stepwise session over a COW clone of `base.dirty`, optionally
/// attached to `cache`, then retracts the newest repair and re-cleans —
/// so every run exercises reads, cell writes, AND retraction against the
/// shared tier. Identical operation sequence with and without the cache.
Outcome RunOne(const CleaningWorkload& base, uint64_t seed, bool compressed,
               SharedBaseCache* cache) {
  Table working = base.dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(SearchKind::kCoDive);
  SessionOptions options;
  options.seed = seed;
  options.compressed_rowsets = compressed;
  if (cache != nullptr) {
    options.shared_cache = cache;
    options.base_snapshot_id = base.snapshot_id;
  }
  CleaningSession session(&base.clean, &working, algorithm.get(), options);
  while (!session.finished()) {
    EXPECT_TRUE(session.RunSteps(1).ok());
  }
  if (!session.log().empty()) {
    EXPECT_TRUE(session.RetractRule(session.log().size() - 1).ok());
    EXPECT_TRUE(session.Continue().ok());
  }
  return Outcome{session.metrics(), TableContentsCrc(working)};
}

TEST(SharedBaseCacheSessionTest, SharedSessionsBitIdenticalToSolo) {
  auto base = MakeCleaningWorkload("Synth10k", kScale);
  ASSERT_TRUE(base.ok());
  ASSERT_NE(base->snapshot_id, 0u);
  for (bool compressed : {false, true}) {
    SCOPED_TRACE(compressed ? "compressed" : "dense");
    Outcome solo5 = RunOne(*base, 5, compressed, nullptr);
    Outcome solo6 = RunOne(*base, 6, compressed, nullptr);
    ASSERT_GT(solo5.metrics.cells_repaired, 0u);

    SharedBaseCache cache(base->snapshot_id, base->dirty.num_cols());
    Outcome cold = RunOne(*base, 5, compressed, &cache);
    Outcome warm = RunOne(*base, 6, compressed, &cache);
    EXPECT_TRUE(SameOutcome(cold, solo5));
    EXPECT_TRUE(SameOutcome(warm, solo6));
    // The warm session actually rode the shared tier.
    EXPECT_GT(warm.metrics.posting_shared_hits, 0u);
    EXPECT_GT(cache.Stats().posting_publishes, 0u);
  }
}

// ---------------------------------------------------------------------------
// Concurrency (runs under TSan in CI).
// ---------------------------------------------------------------------------

// Raw cache: racing publishers, readers, and an invalidator. Every entry's
// bits are a pure function of its key, so any cross-key or torn state is
// detectable; TSan checks the atomic shared_ptr publication protocol.
TEST(SharedBaseCacheStressTest, RacingPublishersReadersAndInvalidator) {
  constexpr size_t kCols = 4;
  constexpr size_t kValues = 16;
  constexpr size_t kUniverse = 512;
  SharedBaseCache cache(13, kCols);

  auto expected = [&](size_t col, size_t v) {
    RowSet rows(kUniverse);
    for (size_t r = (col * 31 + v * 7) % kUniverse; r < kUniverse;
         r += (v + 3)) {
      rows.Set(r);
    }
    return rows;
  };

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.Invalidate();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> workers;
  for (size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(900 + t);
      for (int step = 0; step < 2000; ++step) {
        size_t col = rng.NextUint(kCols);
        ValueId v = static_cast<ValueId>(rng.NextUint(kValues));
        bool compressed = (step % 2) == 1;
        SharedBaseCache::EntryPtr e = cache.FindPosting(compressed, col, v);
        if (e == nullptr) {
          uint64_t epoch = cache.epoch();
          e = cache.PublishPosting(compressed, col, v, expected(col, v),
                                   epoch);
        }
        ASSERT_NE(e, nullptr);
        // Resident or rejected-wrap, the bits must be the key's bits.
        EXPECT_EQ(*e, expected(col, v)) << "col " << col << " v " << v;
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  invalidator.join();
  EXPECT_GT(cache.Stats().invalidations, 0u);
}

// K sessions over one base share one cache, each on its own thread, while
// a chaos thread invalidates the cache repeatedly. Outcomes must stay
// bit-identical to solo runs — a single stale base posting served across
// an epoch boundary, or one session's private write leaking into the
// shared tier, would flip a CRC.
TEST(SharedBaseCacheStressTest, ConcurrentSessionsWithChaosInvalidation) {
  auto base = MakeCleaningWorkload("Synth10k", kScale);
  ASSERT_TRUE(base.ok());
  constexpr size_t kSessions = 4;

  std::vector<Outcome> solo;
  for (size_t i = 0; i < kSessions; ++i) {
    // Mix representations so both planes are exercised concurrently.
    solo.push_back(RunOne(*base, 300 + i, /*compressed=*/(i % 2) == 1,
                          nullptr));
  }

  SharedBaseCache cache(base->snapshot_id, base->dirty.num_cols());
  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.Invalidate();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<Outcome> concurrent(kSessions);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      concurrent[i] =
          RunOne(*base, 300 + i, /*compressed=*/(i % 2) == 1, &cache);
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  chaos.join();

  for (size_t i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(SameOutcome(concurrent[i], solo[i])) << "session " << i;
  }
  EXPECT_GT(cache.Stats().invalidations, 0u);
  // The shared dirty base itself must be untouched.
  EXPECT_EQ(base->dirty.CountDiffCells(base->dirty.Clone()), 0u);
}

}  // namespace
}  // namespace falcon
