#include "datagen/datasets.h"

#include <gtest/gtest.h>

#include "errorgen/injector.h"

namespace falcon {
namespace {

// Every dataset's declared injection rules must hold on its clean instance
// and the injector must succeed — otherwise the whole evaluation pipeline
// is vacuous. Parameterized over the dataset factories.

struct DatasetCase {
  const char* name;
  StatusOr<Dataset> (*make)();
  size_t expected_rows;
  size_t expected_cols;
};

StatusOr<Dataset> Soccer() { return MakeSoccer(); }
StatusOr<Dataset> Hospital() { return MakeHospital(4000); }
StatusOr<Dataset> Bus() { return MakeBus(8000); }
StatusOr<Dataset> Dblp() { return MakeDblp(8000); }
StatusOr<Dataset> Synth() { return MakeSynth(4000); }

class DatasetsTest : public ::testing::TestWithParam<DatasetCase> {};

TEST_P(DatasetsTest, ShapeMatches) {
  auto ds = GetParam().make();
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->clean.num_rows(), GetParam().expected_rows);
  EXPECT_EQ(ds->clean.num_cols(), GetParam().expected_cols);
}

TEST_P(DatasetsTest, InjectionRulesHoldOnCleanData) {
  auto ds = GetParam().make();
  ASSERT_TRUE(ds.ok()) << ds.status();
  for (const RuleErrorSpec& spec : ds->error_spec.rule_errors) {
    EXPECT_TRUE(FdHolds(ds->clean, spec.rule))
        << GetParam().name << ": " << spec.rule.ToString();
  }
}

TEST_P(DatasetsTest, InjectionSucceedsAndRecordsGroundTruth) {
  auto ds = GetParam().make();
  ASSERT_TRUE(ds.ok()) << ds.status();
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok()) << GetParam().name << ": " << dirty.status();
  EXPECT_GT(dirty->errors.size(), 0u);
  EXPECT_EQ(dirty->dirty.CountDiffCells(ds->clean), dirty->errors.size());
  // Every ground-truth entry matches the actual tables.
  for (const ErrorCell& e : dirty->errors) {
    EXPECT_EQ(ds->clean.cell(e.row, e.col), e.clean_value);
    EXPECT_EQ(dirty->dirty.cell(e.row, e.col), e.dirty_value);
    EXPECT_NE(e.clean_value, e.dirty_value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetsTest,
    ::testing::Values(DatasetCase{"Soccer", &Soccer, 1625, 7},
                      DatasetCase{"Hospital", &Hospital, 4000, 12},
                      DatasetCase{"Bus", &Bus, 8000, 15},
                      DatasetCase{"Dblp", &Dblp, 8000, 15},
                      DatasetCase{"Synth", &Synth, 4000, 10}),
    [](const ::testing::TestParamInfo<DatasetCase>& info) {
      return info.param.name;
    });

TEST(DrugExampleTest, MatchesPaperTable1) {
  DrugExample ex = MakeDrugExample();
  EXPECT_EQ(ex.dirty.num_rows(), 6u);
  EXPECT_EQ(ex.dirty.num_cols(), 4u);
  // The four dirty cells of Table 1.
  EXPECT_EQ(ex.dirty.CountDiffCells(ex.clean), 4u);
  EXPECT_EQ(ex.dirty.CellText(1, 1), "statin");
  EXPECT_EQ(ex.clean.CellText(1, 1), "C22H28F");
  EXPECT_EQ(ex.dirty.CellText(2, 2), "N.Y.");
  EXPECT_EQ(ex.clean.CellText(2, 2), "New York");
  EXPECT_EQ(ex.dirty.CellText(2, 3), "1000");
  EXPECT_EQ(ex.clean.CellText(2, 3), "100");
  EXPECT_EQ(ex.dirty.CellText(4, 1), "statin");
  EXPECT_EQ(ex.clean.CellText(4, 1), "C22H28F");
  // Shared pool so ids compare across the two tables.
  EXPECT_EQ(ex.dirty.pool(), ex.clean.pool());
}

TEST(DatasetsTest2, SoccerErrorVolumeMatchesPaperScale) {
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok()) << dirty.status();
  // Paper: 82 errors from 8 rule patterns.
  EXPECT_NEAR(static_cast<double>(dirty->errors.size()), 82.0, 8.0);
  EXPECT_EQ(dirty->injected_patterns.size(), 8u);
}

TEST(DatasetsTest2, SynthErrorVolumeScalesWithRows) {
  auto small = MakeSynth(2000);
  auto large = MakeSynth(8000);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  auto ds = InjectErrors(small->clean, small->error_spec);
  auto dl = InjectErrors(large->clean, large->error_spec);
  ASSERT_TRUE(ds.ok()) << ds.status();
  ASSERT_TRUE(dl.ok()) << dl.status();
  EXPECT_GT(dl->errors.size(), ds->errors.size() * 2);
}

}  // namespace
}  // namespace falcon
