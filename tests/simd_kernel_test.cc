// Tier-equivalence tests for the runtime-dispatched SIMD kernels, plus the
// serial-vs-batched equivalence of the EnsureCounts cost model that sits on
// top of them. Every kernel is a pure function and every tier must return
// bit-identical results (see common/simd.h); these tests compare each tier
// the CPU can execute against the scalar reference on randomized inputs
// whose cardinalities deliberately straddle the container promotion
// boundary (4095 / 4096 / 4097) and the merge-vs-gallop crossover ratios.
// Under the CI leg that exports FALCON_SIMD_LEVEL=scalar the vector tiers
// are still tested directly through TableFor(), which ignores the override
// and only gates on what the CPU supports.
#include "common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/lattice.h"
#include "common/logging.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

using simd::Kernels;
using simd::Level;

// Tiers above scalar that this CPU can actually execute. Empty on non-x86
// hardware — the kernel tests then reduce to scalar self-consistency.
std::vector<Level> VectorTiers() {
  std::vector<Level> tiers;
  for (Level level : {Level::kAVX2, Level::kAVX512}) {
    if (simd::TableFor(level) != nullptr) tiers.push_back(level);
  }
  return tiers;
}

std::vector<uint64_t> RandomWords(std::mt19937_64& rng, size_t n,
                                  int and_depth) {
  // AND-ing `and_depth` draws thins the bit density (~2^-depth) so the
  // popcount paths see sparse words, not just half-full ones.
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) {
    w = rng();
    for (int d = 1; d < and_depth; ++d) w &= rng();
  }
  return words;
}

// `card` distinct sorted u16 values drawn uniformly from [0, 65536).
std::vector<uint16_t> RandomSortedU16(std::mt19937_64& rng, size_t card) {
  FALCON_CHECK(card <= 65536);
  // Floyd's sampling keeps this O(card) even at card near the universe.
  std::vector<bool> taken(65536, false);
  std::vector<uint16_t> vals;
  vals.reserve(card);
  for (size_t j = 65536 - card; j < 65536; ++j) {
    size_t t = rng() % (j + 1);
    size_t pick = taken[t] ? j : t;
    taken[pick] = true;
    vals.push_back(static_cast<uint16_t>(pick));
  }
  std::sort(vals.begin(), vals.end());
  return vals;
}

// Cardinalities that straddle the array→bitmap promotion boundary, plus
// small and empty edges and a non-multiple-of-vector-width value.
const size_t kCards[] = {0, 1, 7, 64, 333, 4095, 4096, 4097};

TEST(SimdKernelTest, WordLoopsMatchScalarAcrossTiers) {
  const Kernels* scalar = simd::TableFor(Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  std::mt19937_64 rng(20260808);
  // Lengths straddle the unroll widths (4 words AVX2, 16 words AVX-512)
  // and the full 1024-word container.
  const size_t kLens[] = {0, 1, 3, 4, 5, 15, 16, 17, 63, 64, 65, 1023, 1024};
  for (Level level : VectorTiers()) {
    const Kernels* best = simd::TableFor(level);
    ASSERT_NE(best, nullptr);
    for (size_t n : kLens) {
      for (int depth : {1, 3, 6}) {
        std::vector<uint64_t> a = RandomWords(rng, n, depth);
        std::vector<uint64_t> b = RandomWords(rng, n, depth);
        EXPECT_EQ(best->popcount_words(a.data(), n),
                  scalar->popcount_words(a.data(), n))
            << simd::LevelName(level) << " n=" << n;
        EXPECT_EQ(best->and_count_words(a.data(), b.data(), n),
                  scalar->and_count_words(a.data(), b.data(), n))
            << simd::LevelName(level) << " n=" << n;
        // The mutating loops: run both tiers on copies, demand identical
        // output words.
        std::vector<uint64_t> d1 = a, d2 = a;
        best->and_words(d1.data(), b.data(), n);
        scalar->and_words(d2.data(), b.data(), n);
        EXPECT_EQ(d1, d2) << simd::LevelName(level) << " and n=" << n;
        d1 = a;
        d2 = a;
        best->andnot_words(d1.data(), b.data(), n);
        scalar->andnot_words(d2.data(), b.data(), n);
        EXPECT_EQ(d1, d2) << simd::LevelName(level) << " andnot n=" << n;
        d1 = a;
        d2 = a;
        best->or_words(d1.data(), b.data(), n);
        scalar->or_words(d2.data(), b.data(), n);
        EXPECT_EQ(d1, d2) << simd::LevelName(level) << " or n=" << n;
        // Fused materialize-and-count: identical output words AND the
        // in-register count must equal a standalone popcount of them.
        std::vector<uint64_t> o1(n, 0xDEAD), o2(n, 0xBEEF);
        size_t c1 = best->and3_count_words(o1.data(), a.data(), b.data(), n);
        size_t c2 = scalar->and3_count_words(o2.data(), a.data(), b.data(), n);
        EXPECT_EQ(o1, o2) << simd::LevelName(level) << " and3 n=" << n;
        EXPECT_EQ(c1, c2) << simd::LevelName(level) << " and3 count n=" << n;
        EXPECT_EQ(c1, scalar->popcount_words(o1.data(), n))
            << simd::LevelName(level) << " and3 recount n=" << n;
        // In-place aliasing (dst == a) is part of the contract.
        d1 = a;
        size_t c3 = best->and3_count_words(d1.data(), d1.data(), b.data(), n);
        EXPECT_EQ(d1, o1) << simd::LevelName(level) << " and3 alias n=" << n;
        EXPECT_EQ(c3, c1) << simd::LevelName(level) << " and3 alias count";
      }
    }
  }
}

TEST(SimdKernelTest, IntersectionMatchesScalarAcrossPromotionBoundary) {
  const Kernels* scalar = simd::TableFor(Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  std::mt19937_64 rng(727);
  for (Level level : VectorTiers()) {
    const Kernels* best = simd::TableFor(level);
    for (size_t na : kCards) {
      for (size_t nb : kCards) {
        std::vector<uint16_t> a = RandomSortedU16(rng, na);
        std::vector<uint16_t> b = RandomSortedU16(rng, nb);
        size_t want = scalar->intersect_u16_count(a.data(), na, b.data(), nb);
        EXPECT_EQ(best->intersect_u16_count(a.data(), na, b.data(), nb), want)
            << simd::LevelName(level) << " " << na << "x" << nb;
        std::vector<uint16_t> out_s(std::min(na, nb) + simd::kIntersectSlack,
                                    0xBEEF);
        std::vector<uint16_t> out_b(std::min(na, nb) + simd::kIntersectSlack,
                                    0xBEEF);
        size_t ns = scalar->intersect_u16(a.data(), na, b.data(), nb,
                                          out_s.data());
        size_t nbm = best->intersect_u16(a.data(), na, b.data(), nb,
                                         out_b.data());
        ASSERT_EQ(ns, want);
        ASSERT_EQ(nbm, want);
        EXPECT_TRUE(std::equal(out_s.begin(), out_s.begin() + ns,
                               out_b.begin()))
            << simd::LevelName(level) << " " << na << "x" << nb;
      }
    }
  }
}

TEST(SimdKernelTest, IntersectionMatchesScalarAroundGallopCrossover) {
  const Kernels* scalar = simd::TableFor(Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  std::mt19937_64 rng(929);
  // Ratios one below / at / above both tiers' crossover constants, so both
  // the merge and gallop code paths run on every tier regardless of which
  // side of its own threshold each ratio lands.
  const size_t kRatios[] = {simd::kGallopRatioScalar - 1,
                            simd::kGallopRatioScalar,
                            simd::kGallopRatioScalar + 1,
                            simd::kGallopRatioSimd - 1,
                            simd::kGallopRatioSimd,
                            simd::kGallopRatioSimd + 1};
  for (Level level : VectorTiers()) {
    const Kernels* best = simd::TableFor(level);
    for (size_t small : {size_t{1}, size_t{8}, size_t{100}}) {
      for (size_t ratio : kRatios) {
        size_t large = std::min<size_t>(small * ratio, 65536);
        std::vector<uint16_t> a = RandomSortedU16(rng, small);
        std::vector<uint16_t> b = RandomSortedU16(rng, large);
        size_t want =
            scalar->intersect_u16_count(a.data(), small, b.data(), large);
        EXPECT_EQ(best->intersect_u16_count(a.data(), small, b.data(), large),
                  want)
            << simd::LevelName(level) << " " << small << "x" << large;
        // Argument order must not matter either.
        EXPECT_EQ(best->intersect_u16_count(b.data(), large, a.data(), small),
                  want)
            << simd::LevelName(level) << " swapped " << small << "x" << large;
        std::vector<uint16_t> out_s(small + simd::kIntersectSlack, 0xBEEF);
        std::vector<uint16_t> out_b(small + simd::kIntersectSlack, 0xBEEF);
        size_t ns = scalar->intersect_u16(a.data(), small, b.data(), large,
                                          out_s.data());
        size_t nbm = best->intersect_u16(a.data(), small, b.data(), large,
                                         out_b.data());
        ASSERT_EQ(ns, want);
        ASSERT_EQ(nbm, want);
        EXPECT_TRUE(std::equal(out_s.begin(), out_s.begin() + ns,
                               out_b.begin()));
      }
    }
  }
}

TEST(SimdKernelTest, ArrayBitmapCountMatchesScalarAcrossTiers) {
  const Kernels* scalar = simd::TableFor(Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  std::mt19937_64 rng(31337);
  for (Level level : VectorTiers()) {
    const Kernels* best = simd::TableFor(level);
    for (size_t card : kCards) {
      for (int depth : {1, 4}) {
        std::vector<uint16_t> vals = RandomSortedU16(rng, card);
        std::vector<uint64_t> bits = RandomWords(rng, 1024, depth);
        EXPECT_EQ(best->array_bitmap_count(vals.data(), card, bits.data()),
                  scalar->array_bitmap_count(vals.data(), card, bits.data()))
            << simd::LevelName(level) << " card=" << card
            << " depth=" << depth;
      }
    }
  }
}

TEST(SimdKernelTest, ActiveLevelClampsAndParses) {
  Level detected = simd::DetectLevel();
  // Forcing any valid tier succeeds; unsupported tiers clamp instead of
  // crashing, and the published table is never null.
  for (const char* name : {"scalar", "avx2", "avx512", "auto"}) {
    ASSERT_TRUE(simd::SetLevel(name).ok()) << name;
    EXPECT_LE(simd::ActiveLevel(), detected);
    EXPECT_EQ(simd::TableFor(simd::ActiveLevel())->popcount_words,
              simd::Active().popcount_words);
  }
  EXPECT_FALSE(simd::SetLevel("mmx").ok());
  // Restore auto for the remaining tests in this binary.
  ASSERT_TRUE(simd::SetLevel("auto").ok());
}

// ---------------------------------------------------------------------------
// EnsureCounts: the batch cost model picks serial or sharded execution from
// frontier size and container footprints. Whatever it picks, the counts
// must equal the serial per-node Count() chain — probed on frontiers that
// land below and above the kMinWordsPerShard switch point, and after a
// partial serial warm-up so the already-counted skip path runs too.
// ---------------------------------------------------------------------------

struct CountFixture {
  Table clean;
  Table dirty;
  Repair repair;
  std::vector<size_t> cols;
};

CountFixture MakeCountFixture(size_t rows, size_t attrs, uint64_t seed) {
  auto ds = MakeSynth(rows, seed);
  FALCON_CHECK(ds.ok());
  auto injected = InjectErrors(ds->clean, ds->error_spec);
  FALCON_CHECK(injected.ok());
  FALCON_CHECK(!injected->errors.empty());
  const ErrorCell& e = injected->errors.front();
  CountFixture f;
  f.clean = ds->clean.Clone();
  f.dirty = injected->dirty.Clone();
  f.repair = Repair{e.row, e.col,
                    std::string(ds->clean.pool()->Get(e.clean_value))};
  for (size_t c = 0; c < f.dirty.num_cols() && f.cols.size() + 1 < attrs;
       ++c) {
    if (c != e.col) f.cols.push_back(c);
  }
  return f;
}

void ExpectBatchedMatchesSerial(const CountFixture& f,
                                size_t warm_up_nodes) {
  auto serial = Lattice::Build(f.dirty, f.repair, f.cols);
  auto batch = Lattice::Build(f.dirty, f.repair, f.cols);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(batch.ok()) << batch.status();
  std::vector<NodeId> frontier;
  for (NodeId m = 0; m < serial->num_nodes(); ++m) frontier.push_back(m);
  // Optional partial serial warm-up on the batch lattice: EnsureCounts must
  // not recount (or worse, corrupt) nodes that already hold a count.
  for (size_t i = 0; i < warm_up_nodes && i < frontier.size(); ++i) {
    batch->Count(frontier[i]);
  }
  batch->EnsureCounts(frontier);
  for (NodeId m : frontier) {
    ASSERT_EQ(serial->Count(m), batch->Count(m)) << "node " << m;
  }
}

TEST(EnsureCountsEquivalenceTest, SmallFrontierBelowShardThreshold) {
  // 16 nodes over a few thousand rows: total work sits far below
  // 2 * kMinWordsPerShard, so the planner stays serial.
  ExpectBatchedMatchesSerial(MakeCountFixture(4000, 4, 11), 0);
}

TEST(EnsureCountsEquivalenceTest, WideFrontierAboveShardThreshold) {
  // 256 nodes over 30k rows: ~470 logical words per unmaterialized node
  // puts the total past the switch point, so a multi-worker pool shards
  // (and a 0-worker pool still proves the serial fallback).
  ExpectBatchedMatchesSerial(MakeCountFixture(30000, 8, 13), 0);
}

TEST(EnsureCountsEquivalenceTest, PartiallyCountedFrontier) {
  ExpectBatchedMatchesSerial(MakeCountFixture(20000, 7, 17), 40);
}

TEST(EnsureCountsEquivalenceTest, RepeatedEnsureCountsIsIdempotent) {
  CountFixture f = MakeCountFixture(10000, 6, 19);
  auto lat = Lattice::Build(f.dirty, f.repair, f.cols);
  ASSERT_TRUE(lat.ok());
  std::vector<NodeId> frontier;
  for (NodeId m = 0; m < lat->num_nodes(); ++m) frontier.push_back(m);
  lat->EnsureCounts(frontier);
  std::vector<size_t> first;
  for (NodeId m : frontier) first.push_back(lat->Count(m));
  lat->EnsureCounts(frontier);
  for (size_t i = 0; i < frontier.size(); ++i) {
    EXPECT_EQ(lat->Count(frontier[i]), first[i]);
  }
}

TEST(EnsureCountsEquivalenceTest, CountsIdenticalUnderEveryTier) {
  // The batched path must be bit-identical across SIMD tiers, not just
  // across scheduling decisions.
  CountFixture f = MakeCountFixture(12000, 6, 23);
  std::vector<std::vector<size_t>> per_tier;
  for (Level level : {Level::kScalar, Level::kAVX2, Level::kAVX512}) {
    if (simd::TableFor(level) == nullptr) continue;
    ASSERT_TRUE(simd::SetLevel(simd::LevelName(level)).ok());
    auto lat = Lattice::Build(f.dirty, f.repair, f.cols);
    ASSERT_TRUE(lat.ok());
    std::vector<NodeId> frontier;
    for (NodeId m = 0; m < lat->num_nodes(); ++m) frontier.push_back(m);
    lat->EnsureCounts(frontier);
    std::vector<size_t> counts;
    for (NodeId m : frontier) counts.push_back(lat->Count(m));
    per_tier.push_back(std::move(counts));
  }
  ASSERT_TRUE(simd::SetLevel("auto").ok());
  for (size_t t = 1; t < per_tier.size(); ++t) {
    EXPECT_EQ(per_tier[t], per_tier[0]);
  }
}

}  // namespace
}  // namespace falcon
