// Robustness fuzzing: the parsers and CSV reader must never crash and must
// either succeed or return InvalidArgument on arbitrary byte soup; CSV
// writing must round-trip arbitrary (printable and non-printable) cell
// contents.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "relational/csv.h"
#include "relational/select.h"
#include "relational/sqlu_parser.h"

namespace falcon {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  size_t len = rng.NextUint(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>(rng.NextUint(256));
  }
  return s;
}

std::string RandomSqlish(Rng& rng) {
  static const char* kTokens[] = {
      "UPDATE", "SELECT", "SET",   "WHERE", "FROM",  "AND",   "GROUP",
      "BY",     "ORDER",  "LIMIT", "COUNT", "(",     ")",     "*",
      "=",      ",",      ";",     "'v'",   "\"w\"", "T",     "A",
      "B",      "'unterminated",   "''",    "42",    "--",    "  "};
  std::string s;
  size_t n = rng.NextUint(20);
  for (size_t i = 0; i < n; ++i) {
    s += kTokens[rng.NextUint(std::size(kTokens))];
    s += ' ';
  }
  return s;
}

TEST(FuzzTest, SqluParserSurvivesRandomBytes) {
  Rng rng(1001);
  for (int i = 0; i < 3000; ++i) {
    auto result = ParseSqlu(RandomBytes(rng, 80));
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(FuzzTest, SqluParserSurvivesTokenSoup) {
  Rng rng(1002);
  for (int i = 0; i < 3000; ++i) {
    auto result = ParseSqlu(RandomSqlish(rng));
    if (result.ok()) {
      // Whatever parsed must print and re-parse to the same query.
      auto again = ParseSqlu(result->ToSql());
      ASSERT_TRUE(again.ok()) << result->ToSql();
      EXPECT_EQ(*again, *result);
    } else {
      // Rejections are always InvalidArgument with a diagnostic message.
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(FuzzTest, SqluParserPrintParseIsAFixpoint) {
  // parse(print(parse(x))) == parse(x): one round of printing reaches the
  // canonical form, and re-printing that form is byte-stable. Statements
  // are structurally valid but carry hostile literals (quotes, separators,
  // keywords-as-values, whitespace).
  Rng rng(1008);
  auto literal = [&rng] {
    static const char* kValues[] = {"x",  "O''Brien", "new val", "100",
                                    "=",  ";",        "WHERE",   "AND",
                                    " ",  "a,b",      ""};
    return std::string("'") + kValues[rng.NextUint(std::size(kValues))] + "'";
  };
  for (int i = 0; i < 2000; ++i) {
    std::string sql = "UPDATE T SET A = " + literal();
    size_t preds = rng.NextUint(3);
    for (size_t p = 0; p < preds; ++p) {
      sql += (p == 0 ? " WHERE " : " AND ");
      sql += "B" + std::to_string(p) + " = " + literal();
    }
    if (rng.NextBool(0.5)) sql += ";";
    auto q = ParseSqlu(sql);
    ASSERT_TRUE(q.ok()) << sql << " -- " << q.status();
    std::string printed = q->ToSql();
    auto q2 = ParseSqlu(printed);
    ASSERT_TRUE(q2.ok()) << printed;
    EXPECT_EQ(*q2, *q);
    EXPECT_EQ(q2->ToSql(), printed);
  }
}

TEST(FuzzTest, SelectParserSurvivesRandomInput) {
  Rng rng(1003);
  for (int i = 0; i < 3000; ++i) {
    auto r1 = ParseSelect(RandomBytes(rng, 80));
    auto r2 = ParseSelect(RandomSqlish(rng));
    if (!r1.ok()) {
      EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
    }
    if (!r2.ok()) {
      EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(FuzzTest, CsvReaderSurvivesRandomBytes) {
  Rng rng(1004);
  for (int i = 0; i < 1500; ++i) {
    auto result = ReadCsvString(RandomBytes(rng, 200), "t");
    (void)result;  // Must not crash; any Status is acceptable.
  }
}

TEST(FuzzTest, CsvRoundTripsHostileCellContents) {
  Rng rng(1005);
  for (int iter = 0; iter < 40; ++iter) {
    Table t("t", Schema({"A", "B", "C"}));
    size_t rows = 1 + rng.NextUint(8);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (int c = 0; c < 3; ++c) {
        // Hostile content: quotes, commas, newlines, CR.
        std::string cell;
        size_t len = rng.NextUint(12);
        static const char kAlphabet[] = "a\",\n\r'x;|";
        for (size_t j = 0; j < len; ++j) {
          cell += kAlphabet[rng.NextUint(sizeof(kAlphabet) - 1)];
        }
        row.push_back(cell);
      }
      t.AppendRow(row);
    }
    std::string path = testing::TempDir() + "/fuzz_roundtrip.csv";
    ASSERT_TRUE(WriteCsv(t, path).ok());
    auto back = ReadCsv(path, "t");
    ASSERT_TRUE(back.ok()) << back.status();
    ASSERT_EQ(back->num_rows(), t.num_rows());
    for (size_t r = 0; r < t.num_rows(); ++r) {
      for (size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(back->CellText(r, c), t.CellText(r, c));
      }
    }
    std::remove(path.c_str());
  }
}

TEST(FuzzTest, SelectExecutorSurvivesArbitraryParsedQueries) {
  // Any query that parses must execute without crashing against a real
  // table (execution errors are fine).
  Table t("T", Schema({"A", "B"}));
  t.AppendRow({"x", "1"});
  t.AppendRow({"y", "2"});
  Rng rng(1006);
  size_t executed = 0;
  // Bias toward parseable statements: prefix with SELECT and sprinkle
  // structure the grammar expects.
  static const char* kStarts[] = {"SELECT * FROM T ", "SELECT A FROM T ",
                                  "SELECT COUNT ( * ) FROM T ",
                                  "SELECT A , B FROM T "};
  for (int i = 0; i < 5000; ++i) {
    std::string sql = kStarts[rng.NextUint(std::size(kStarts))];
    sql += RandomSqlish(rng);
    auto q = ParseSelect(sql);
    if (!q.ok()) continue;
    auto result = ExecuteSelect(t, *q);
    (void)result;
    ++executed;
  }
  EXPECT_GT(executed, 0u);  // The token soup parses occasionally.
}

}  // namespace
}  // namespace falcon
