#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace falcon {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / standard CRC32C check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes (iSCSI test vector).
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  // 32 0xFF bytes.
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t partial = Crc32c(data.substr(0, split));
    uint32_t chained =
        Crc32cExtend(partial, data.data() + split, data.size() - split);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "journal record payload";
  uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = data;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(corrupt), clean);
    }
  }
}

}  // namespace
}  // namespace falcon
