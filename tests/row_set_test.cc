#include "common/row_set.h"

#include <gtest/gtest.h>

namespace falcon {
namespace {

TEST(RowSetTest, StartsEmpty) {
  RowSet s(100);
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.universe_size(), 100u);
}

TEST(RowSetTest, SetTestClear) {
  RowSet s(130);
  s.Set(0);
  s.Set(63);
  s.Set(64);
  s.Set(129);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(63));
  EXPECT_TRUE(s.Test(64));
  EXPECT_TRUE(s.Test(129));
  EXPECT_FALSE(s.Test(1));
  EXPECT_EQ(s.Count(), 4u);
  s.Clear(63);
  EXPECT_FALSE(s.Test(63));
  EXPECT_EQ(s.Count(), 3u);
}

TEST(RowSetTest, FillConstructorRespectsUniverseTail) {
  RowSet s(70, /*fill=*/true);
  EXPECT_EQ(s.Count(), 70u);
  s.SetAll();
  EXPECT_EQ(s.Count(), 70u);
}

TEST(RowSetTest, AndOrAndNot) {
  RowSet a(128);
  RowSet b(128);
  for (size_t i = 0; i < 128; i += 2) a.Set(i);   // Evens.
  for (size_t i = 0; i < 128; i += 3) b.Set(i);   // Multiples of 3.
  RowSet both = a;
  both.And(b);  // Multiples of 6.
  EXPECT_EQ(both.Count(), 22u);  // 0,6,...,126.
  RowSet either = a;
  either.Or(b);
  EXPECT_EQ(either.Count(), 64 + 43 - 22);
  RowSet diff = a;
  diff.AndNot(b);
  EXPECT_EQ(diff.Count(), 64u - 22u);
}

TEST(RowSetTest, IntersectCountMatchesAnd) {
  RowSet a(200);
  RowSet b(200);
  for (size_t i = 0; i < 200; i += 5) a.Set(i);
  for (size_t i = 0; i < 200; i += 7) b.Set(i);
  RowSet c = a;
  c.And(b);
  EXPECT_EQ(a.IntersectCount(b), c.Count());
}

TEST(RowSetTest, AndCountMatchesMaterializedAnd) {
  // The fused kernel must agree with And-then-Count on every word shape:
  // empty, dense, partial tail word.
  for (size_t universe : {1u, 63u, 64u, 65u, 500u}) {
    RowSet a(universe);
    RowSet b(universe);
    for (size_t i = 0; i < universe; i += 3) a.Set(i);
    for (size_t i = 1; i < universe; i += 2) b.Set(i);
    RowSet c = a;
    c.And(b);
    EXPECT_EQ(a.AndCount(b), c.Count()) << "universe " << universe;
    EXPECT_EQ(b.AndCount(a), c.Count()) << "universe " << universe;
    EXPECT_EQ(a.AndCount(RowSet(universe)), 0u);
    EXPECT_EQ(a.AndCount(RowSet(universe, /*fill=*/true)), a.Count());
  }
}

TEST(RowSetTest, SubsetAndDisjoint) {
  RowSet a(64);
  RowSet b(64);
  a.Set(3);
  a.Set(9);
  b.Set(3);
  b.Set(9);
  b.Set(20);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  RowSet c(64);
  c.Set(40);
  EXPECT_TRUE(a.DisjointWith(c));
  EXPECT_FALSE(a.DisjointWith(b));
}

TEST(RowSetTest, ForEachVisitsAscending) {
  RowSet s(300);
  std::vector<size_t> want = {0, 1, 63, 64, 65, 128, 299};
  for (size_t r : want) s.Set(r);
  std::vector<size_t> got;
  s.ForEach([&](size_t r) { got.push_back(r); });
  EXPECT_EQ(got, want);
  EXPECT_EQ(s.ToVector().size(), want.size());
}

TEST(RowSetTest, AllOfShortCircuits) {
  RowSet s(128);
  s.Set(5);
  s.Set(80);
  size_t visited = 0;
  bool all = s.AllOf([&](size_t r) {
    ++visited;
    return r < 50;
  });
  EXPECT_FALSE(all);
  EXPECT_EQ(visited, 2u);
  EXPECT_TRUE(s.AllOf([](size_t) { return true; }));
}

TEST(RowSetTest, HashDiffersForDifferentSets) {
  RowSet a(128);
  RowSet b(128);
  a.Set(1);
  b.Set(2);
  EXPECT_NE(a.Hash(), b.Hash());
  RowSet c(128);
  c.Set(1);
  EXPECT_EQ(a.Hash(), c.Hash());
  EXPECT_EQ(a, c);
}

TEST(RowSetTest, FirstElement) {
  RowSet s(128);
  EXPECT_EQ(s.First(), 128u);
  s.Set(77);
  EXPECT_EQ(s.First(), 77u);
  s.Set(12);
  EXPECT_EQ(s.First(), 12u);
}

TEST(RowSetTest, ComplementRespectsUniverseTail) {
  RowSet s(70);
  s.Set(0);
  s.Set(69);
  RowSet c = s.Complement();
  EXPECT_EQ(c.Count(), 68u);
  EXPECT_FALSE(c.Test(0));
  EXPECT_FALSE(c.Test(69));
  EXPECT_TRUE(c.Test(1));
  EXPECT_TRUE(c.Test(68));
  // Double complement restores the original.
  EXPECT_EQ(c.Complement(), s);
}

TEST(RowSetTest, WordAccessorsRoundTrip) {
  RowSet s(130);
  EXPECT_EQ(s.num_words(), 3u);
  s.SetWord(1, uint64_t{1} << 5);  // Row 69.
  EXPECT_TRUE(s.Test(69));
  EXPECT_EQ(s.word(1), uint64_t{1} << 5);
  EXPECT_EQ(s.Count(), 1u);
}

#ifndef NDEBUG
// The binary ops FALCON_DCHECK matching universe sizes in debug builds:
// silently indexing the other set's words is how subtle out-of-bounds reads
// were born.
TEST(RowSetDeathTest, MismatchedUniverseAborts) {
  RowSet a(10);
  RowSet b(128);
  EXPECT_DEATH(a.And(b), "universe_size_");
  EXPECT_DEATH(a.Or(b), "universe_size_");
  EXPECT_DEATH(a.AndNot(b), "universe_size_");
  EXPECT_DEATH(a.IntersectCount(b), "universe_size_");
  EXPECT_DEATH(a.IsSubsetOf(b), "universe_size_");
  EXPECT_DEATH(a.DisjointWith(b), "universe_size_");
}
#endif

}  // namespace
}  // namespace falcon
