// Property tests over many randomly chosen repairs: structural lattice
// invariants, and cross-module consistency between the lattice's bitmap
// affected-sets and the SQLU evaluator run on the node's rendered query.
#include <gtest/gtest.h>

#include <bit>

#include "common/logging.h"
#include "core/lattice.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"
#include "relational/sqlu.h"

namespace falcon {
namespace {

struct Instance {
  Table clean;
  Table dirty;
  std::vector<ErrorCell> errors;
};

const Instance& GetInstance() {
  static const Instance* inst = [] {
    auto ds = MakeBus(3000, /*seed=*/61);
    FALCON_CHECK(ds.ok());
    auto dirty = InjectErrors(ds->clean, ds->error_spec);
    FALCON_CHECK(dirty.ok());
    return new Instance{ds->clean.Clone(), dirty->dirty.Clone(),
                        dirty->errors};
  }();
  return *inst;
}

class LatticePropertyTest : public ::testing::TestWithParam<size_t> {
 protected:
  StatusOr<Lattice> BuildForError(size_t error_index,
                                  LatticeOptions options = {}) const {
    const Instance& inst = GetInstance();
    const ErrorCell& e = inst.errors[error_index % inst.errors.size()];
    std::vector<size_t> cols;
    for (size_t c = 0; c < inst.dirty.num_cols() && cols.size() < 6; ++c) {
      if (c != e.col) cols.push_back(c);
    }
    Repair repair{e.row, e.col,
                  std::string(inst.clean.pool()->Get(e.clean_value))};
    return Lattice::Build(inst.dirty, repair, cols, options);
  }
};

TEST_P(LatticePropertyTest, AffectedSetsAreAntitone) {
  auto lat = BuildForError(GetParam());
  ASSERT_TRUE(lat.ok());
  // Adding a predicate can only shrink the affected set.
  for (NodeId m = 0; m < lat->num_nodes(); ++m) {
    for (size_t b = 0; b < lat->num_attrs(); ++b) {
      NodeId child = m | (NodeId{1} << b);
      if (child == m) continue;
      EXPECT_TRUE(lat->affected(child).IsSubsetOf(lat->affected(m)))
          << "node " << m << " bit " << b;
      EXPECT_LE(lat->affected_count(child), lat->affected_count(m));
    }
  }
}

TEST_P(LatticePropertyTest, NodeQueryAgreesWithSqluEvaluator) {
  auto lat = BuildForError(GetParam());
  ASSERT_TRUE(lat.ok());
  const Instance& inst = GetInstance();
  // The lattice's bitmap sets must match evaluating the rendered SQL
  // against the same table — two independent code paths.
  for (NodeId m = 0; m < lat->num_nodes(); m += 3) {  // Sample nodes.
    SqluQuery q = lat->NodeQuery(m);
    auto rows = AffectedRows(inst.dirty, q);
    ASSERT_TRUE(rows.ok()) << q.ToSql();
    EXPECT_EQ(*rows, lat->affected(m)) << q.ToSql();
  }
}

TEST_P(LatticePropertyTest, NaiveInitMatchesViewInit) {
  auto fast = BuildForError(GetParam());
  LatticeOptions naive;
  naive.naive_init = true;
  auto slow = BuildForError(GetParam(), naive);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  for (NodeId m = 0; m < fast->num_nodes(); ++m) {
    EXPECT_EQ(fast->affected(m), slow->affected(m)) << "node " << m;
  }
}

TEST_P(LatticePropertyTest, TopAffectsTheRepairedTuple) {
  const Instance& inst = GetInstance();
  const ErrorCell& e = inst.errors[GetParam() % inst.errors.size()];
  auto lat = BuildForError(GetParam());
  ASSERT_TRUE(lat.ok());
  // The repaired tuple matches every predicate (constants bound to it) and
  // its value differs from the target, so it sits in every affected set.
  for (NodeId m = 0; m < lat->num_nodes(); ++m) {
    EXPECT_TRUE(lat->affected(m).Test(e.row)) << "node " << m;
  }
}

TEST_P(LatticePropertyTest, ApplyThenRecomputeAgree) {
  const Instance& inst = GetInstance();
  Table dirty = inst.dirty.Clone();
  const ErrorCell& e = inst.errors[GetParam() % inst.errors.size()];
  std::vector<size_t> cols;
  for (size_t c = 0; c < dirty.num_cols() && cols.size() < 6; ++c) {
    if (c != e.col) cols.push_back(c);
  }
  Repair repair{e.row, e.col,
                std::string(inst.clean.pool()->Get(e.clean_value))};
  auto lat = Lattice::Build(dirty, repair, cols);
  ASSERT_TRUE(lat.ok());

  Lattice reference = *lat;
  // Apply a different node per parameter to cover many shapes.
  NodeId node = static_cast<NodeId>(GetParam() * 2654435761u) %
                static_cast<NodeId>(lat->num_nodes());
  lat->ApplyNode(node, dirty);
  reference.RecomputeAffected(dirty);
  for (NodeId m = 0; m < lat->num_nodes(); ++m) {
    EXPECT_EQ(lat->affected(m), reference.affected(m)) << "node " << m;
  }
}

TEST_P(LatticePropertyTest, ClosedSetRepresentativeInvariants) {
  auto lat = BuildForError(GetParam());
  ASSERT_TRUE(lat.ok());
  for (NodeId m = 0; m < lat->num_nodes(); ++m) {
    NodeId rep = lat->Representative(m);
    EXPECT_EQ(lat->affected(m), lat->affected(rep));
    EXPECT_EQ(rep & m, m);  // Representative contains m's predicates.
    EXPECT_EQ(lat->Representative(rep), rep);
  }
}

INSTANTIATE_TEST_SUITE_P(ManyRepairs, LatticePropertyTest,
                         ::testing::Range<size_t>(0, 12));

}  // namespace
}  // namespace falcon
