// Crash-recovery tests for the service layer: daemon restart recovery
// (journal + meta scan, RNG-aligned replay, bit-identical resumption),
// journal/meta lifecycle (delete on clean close, retain on graceful
// shutdown/eviction, stale-journal cleanup), torn-tail recovery, the
// idempotent seq window's no-double-apply guarantee, and the
// `open_session {"resume"}` verb across a server restart.
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/session.h"
#include "datagen/workload.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/resilient_client.h"
#include "service/server.h"
#include "service/session_manager.h"

namespace falcon {
namespace {

constexpr double kScale = 0.02;

SessionManager::OpenParams SmallParams(uint64_t seed = 7) {
  SessionManager::OpenParams p;
  p.dataset = "Synth10k";
  p.scale = kScale;
  p.seed = seed;
  return p;
}

/// Fresh empty journal directory under /tmp, unique per test + process.
std::string TempJournalDir(const std::string& name) {
  std::string dir = "/tmp/falcon_recovery_" + name + "_" +
                    std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      std::string n = e->d_name;
      if (n != "." && n != "..") ::unlink((dir + "/" + n).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

int64_t FileSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? st.st_size : -1;
}

struct Baseline {
  SessionMetrics metrics;
  uint32_t crc = 0;
};

Baseline SerialBaseline(uint64_t seed, bool posting_delta = true) {
  auto w = MakeCleaningWorkload("Synth10k", kScale);
  EXPECT_TRUE(w.ok());
  SessionOptions options;
  options.seed = seed;
  options.posting_delta = posting_delta;
  Table working = w->dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(SearchKind::kCoDive);
  CleaningSession session(&w->clean, &working, algorithm.get(), options);
  auto metrics = session.Run();
  EXPECT_TRUE(metrics.ok());
  return Baseline{*metrics, TableContentsCrc(working)};
}

TEST(ServiceRecoveryTest, RestartRecoveryIsBitIdentical) {
  const std::string dir = TempJournalDir("restart");
  ServiceLimits limits;
  limits.journal_dir = dir;

  std::string id;
  uint32_t mid_crc = 0;
  SessionMetrics mid_metrics;
  {
    SessionManager manager(limits);
    auto opened = manager.Open(SmallParams(7));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    id = *opened;
    auto s1 = manager.Step(id, 1);
    ASSERT_TRUE(s1.ok());
    auto s2 = manager.Step(id, 1);
    ASSERT_TRUE(s2.ok());
    mid_crc = s2->table_crc;
    mid_metrics = s2->metrics;
    // Graceful shutdown retains journal + meta (the destructor's CloseAll
    // path — exactly what a daemon restart sees).
  }
  ASSERT_TRUE(FileExists(dir + "/" + id + ".journal"));
  ASSERT_TRUE(FileExists(dir + "/" + id + ".meta"));

  SessionManager recovered(limits);
  EXPECT_EQ(recovered.RecoverSessions(), 1u);
  EXPECT_EQ(recovered.active_sessions(), 1u);
  EXPECT_EQ(recovered.Health().recovered_sessions, 1u);

  // The replayed session lands exactly where the first incarnation
  // stopped: same table, same interaction counters.
  auto info = recovered.Info(id);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->table_crc, mid_crc);
  EXPECT_EQ(info->metrics.user_updates, mid_metrics.user_updates);
  EXPECT_EQ(info->metrics.user_answers, mid_metrics.user_answers);
  EXPECT_EQ(info->metrics.cells_repaired, mid_metrics.cells_repaired);

  // Stepping to convergence matches an uninterrupted serial run bit for
  // bit.
  Baseline want = SerialBaseline(7);
  auto done = recovered.Step(id, 0);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_TRUE(done->finished);
  EXPECT_EQ(done->table_crc, want.crc);
  EXPECT_EQ(done->metrics.user_updates, want.metrics.user_updates);
  EXPECT_EQ(done->metrics.user_answers, want.metrics.user_answers);
  EXPECT_EQ(done->metrics.cells_repaired, want.metrics.cells_repaired);
  EXPECT_EQ(done->metrics.queries_applied, want.metrics.queries_applied);

  // New ids continue past the recovered one instead of colliding.
  auto fresh = recovered.Open(SmallParams(8));
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, id);
}

TEST(ServiceRecoveryTest, TornJournalTailReplaysToLastCompleteRecord) {
  const std::string dir = TempJournalDir("torn");
  ServiceLimits limits;
  limits.journal_dir = dir;
  SessionManager::OpenParams params = SmallParams(11);
  params.posting_delta = false;  // Cover the rescan posting mode too.

  std::string id;
  {
    SessionManager manager(limits);
    auto opened = manager.Open(params);
    ASSERT_TRUE(opened.ok());
    id = *opened;
    ASSERT_TRUE(manager.Step(id, 1).ok());
    ASSERT_TRUE(manager.Step(id, 1).ok());
  }
  // Tear the tail mid-record, as a crash during a journal write would.
  const std::string journal = dir + "/" + id + ".journal";
  int64_t size = FileSize(journal);
  ASSERT_GT(size, 8);
  ASSERT_EQ(::truncate(journal.c_str(), size - 7), 0);

  SessionManager recovered(limits);
  ASSERT_EQ(recovered.RecoverSessions(), 1u);
  // The tolerant reader dropped the torn record, replay completed any
  // interrupted episode, and the session still converges to the
  // uninterrupted run's exact table.
  Baseline want = SerialBaseline(11, /*posting_delta=*/false);
  auto done = recovered.Step(id, 0);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_TRUE(done->finished);
  EXPECT_EQ(done->table_crc, want.crc);
  EXPECT_EQ(done->metrics.user_updates, want.metrics.user_updates);
  EXPECT_EQ(done->metrics.user_answers, want.metrics.user_answers);
}

TEST(ServiceRecoveryTest, JournalLifecycleDeleteOnCloseRetainOnShutdown) {
  const std::string dir = TempJournalDir("lifecycle");
  ServiceLimits limits;
  limits.journal_dir = dir;

  // A cleanly closed session leaves nothing behind.
  {
    SessionManager manager(limits);
    auto a = manager.Open(SmallParams(3));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(manager.Step(*a, 1).ok());
    ASSERT_TRUE(FileExists(dir + "/" + *a + ".journal"));
    ASSERT_TRUE(FileExists(dir + "/" + *a + ".meta"));
    ASSERT_TRUE(manager.Close(*a).ok());
    EXPECT_FALSE(FileExists(dir + "/" + *a + ".journal"));
    EXPECT_FALSE(FileExists(dir + "/" + *a + ".meta"));

    // A session alive at shutdown keeps both files.
    auto b = manager.Open(SmallParams(4));
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(manager.Step(*b, 1).ok());
  }
  // Plant a stale journal with no meta sidecar: the startup scan must
  // delete it and not register a session for it.
  {
    std::ofstream stale(dir + "/s-99.journal");
    stale << "stale bytes";
  }
  SessionManager recovered(limits);
  EXPECT_EQ(recovered.RecoverSessions(), 1u);
  EXPECT_EQ(recovered.active_sessions(), 1u);
  EXPECT_FALSE(FileExists(dir + "/s-99.journal"));
}

TEST(ServiceRecoveryTest, MetaWithoutJournalRegistersFresh) {
  const std::string dir = TempJournalDir("metaonly");
  ServiceLimits limits;
  limits.journal_dir = dir;
  std::string id;
  {
    SessionManager manager(limits);
    auto opened = manager.Open(SmallParams(5));
    ASSERT_TRUE(opened.ok());
    id = *opened;
    // Never stepped: the journal file does not exist yet.
    ASSERT_FALSE(FileExists(dir + "/" + id + ".journal"));
    ASSERT_TRUE(FileExists(dir + "/" + id + ".meta"));
  }
  SessionManager recovered(limits);
  EXPECT_EQ(recovered.RecoverSessions(), 1u);
  Baseline want = SerialBaseline(5);
  auto done = recovered.Step(id, 0);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_EQ(done->table_crc, want.crc);
}

TEST(ServiceRecoveryTest, SeqRetryDoesNotDoubleApply) {
  const std::string dir = TempJournalDir("seqretry");
  ServiceLimits limits;
  limits.journal_dir = dir;
  SessionManager manager(limits);
  auto id = manager.Open(SmallParams(7));
  ASSERT_TRUE(id.ok());

  auto first = manager.Step(*id, 1, /*seq=*/1);
  ASSERT_TRUE(first.ok());
  const std::string journal = dir + "/" + *id + ".journal";
  const int64_t after_first = FileSize(journal);
  ASSERT_GT(after_first, 0);

  // The retried request returns the cached response and appends nothing
  // to the journal — the episode provably did not run twice.
  auto retry = manager.Step(*id, 1, /*seq=*/1);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->table_crc, first->table_crc);
  EXPECT_EQ(FileSize(journal), after_first);

  // The next seq executes and the journal grows again.
  auto second = manager.Step(*id, 1, /*seq=*/2);
  ASSERT_TRUE(second.ok());
  if (!second->finished || second->metrics.queries_applied >
                               first->metrics.queries_applied) {
    EXPECT_GT(FileSize(journal), after_first);
  }
}

TEST(ServiceRecoveryTest, EvictedSessionResumesLazilyFromDisk) {
  const std::string dir = TempJournalDir("evict");
  ServiceLimits limits;
  limits.journal_dir = dir;
  limits.idle_timeout_s = 0.001;
  SessionManager manager(limits);
  auto id = manager.Open(SmallParams(7));
  ASSERT_TRUE(id.ok());
  auto mid = manager.Step(*id, 1);
  ASSERT_TRUE(mid.ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(manager.EvictIdle(), 1u);
  ASSERT_EQ(manager.active_sessions(), 0u);
  // Artifacts retained: the session is resumable.
  ASSERT_TRUE(FileExists(dir + "/" + *id + ".journal"));

  auto resumed = manager.Resume(*id);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  auto info = manager.Info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->table_crc, mid->table_crc);

  Baseline want = SerialBaseline(7);
  auto done = manager.Step(*id, 0);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->table_crc, want.crc);
}

TEST(ServiceRecoveryTest, ResumeVerbAcrossServerRestart) {
  const std::string dir = TempJournalDir("server");
  ServerOptions options;
  options.unix_path = "/tmp/falcon_recovery_server_test.sock";
  options.workers = 2;
  options.limits.journal_dir = dir;

  std::string id;
  uint32_t mid_crc = 0;
  {
    CleaningServer server(options);
    ASSERT_TRUE(server.Start().ok());
    auto client = ServiceClient::ConnectToUnix(options.unix_path);
    ASSERT_TRUE(client.ok());
    JsonValue open = JsonValue::Object();
    open.Set("verb", "open_session");
    open.Set("dataset", "Synth10k");
    open.Set("scale", kScale);
    open.Set("seed", 7);
    auto r = client->CallChecked(open);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    id = r->GetString("session");
    JsonValue step = JsonValue::Object();
    step.Set("verb", "step");
    step.Set("session", id);
    step.Set("episodes", 1);
    step.Set("seq", 1);
    r = client->CallChecked(step);
    ASSERT_TRUE(r.ok());
    mid_crc = static_cast<uint32_t>(r->GetInt("table_crc"));
    server.Stop();
    server.Wait();
  }

  CleaningServer restarted(options);
  ASSERT_TRUE(restarted.Start().ok());
  EXPECT_EQ(restarted.recovered_sessions(), 1u);

  // The resilient client resumes the session by id and drives it to the
  // uninterrupted run's exact final table.
  ResilientClientOptions copts;
  copts.unix_path = options.unix_path;
  ASSERT_TRUE(ResilientClient(copts).Ping().ok());
  ResilientClient client(copts);
  ASSERT_TRUE(client.ResumeSession(id).ok());
  auto info = client.Info();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(static_cast<uint32_t>(info->GetInt("table_crc")), mid_crc);
  // The in-memory seq window reset with the restart; the resume response
  // re-synced us, so seq-stamped stepping keeps working.
  Baseline want = SerialBaseline(7);
  for (int i = 0; i < 10000; ++i) {
    auto st = client.Step(1);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    if (st->GetBool("finished")) {
      EXPECT_EQ(static_cast<uint32_t>(st->GetInt("table_crc")), want.crc);
      break;
    }
  }

  // Ping reports the recovery.
  auto pong = client.Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->GetInt("recovered_sessions"), 1);

  restarted.Stop();
  restarted.Wait();
}

}  // namespace
}  // namespace falcon
