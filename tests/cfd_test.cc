#include "errorgen/cfd.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"

namespace falcon {
namespace {

TEST(FdRuleTest, ToString) {
  FdRule r{{"Club", "Position"}, "PlayerCountry"};
  EXPECT_EQ(r.ToString(), "{Club, Position} -> PlayerCountry");
}

TEST(FdHoldsTest, DetectsHoldingFd) {
  DrugExample ex = MakeDrugExample();
  // {Molecule, Laboratory} → Quantity holds on the dirty instance.
  EXPECT_TRUE(FdHolds(ex.dirty, FdRule{{"Molecule", "Laboratory"},
                                       "Quantity"}));
}

TEST(FdHoldsTest, DetectsViolatedFd) {
  DrugExample ex = MakeDrugExample();
  // Molecule alone does not determine Laboratory (statin: Austin, Boston).
  EXPECT_FALSE(FdHolds(ex.dirty, FdRule{{"Molecule"}, "Laboratory"}));
}

TEST(FdHoldsTest, UnknownAttributesFail) {
  DrugExample ex = MakeDrugExample();
  EXPECT_FALSE(FdHolds(ex.dirty, FdRule{{"Nope"}, "Quantity"}));
  EXPECT_FALSE(FdHolds(ex.dirty, FdRule{{"Molecule"}, "Nope"}));
}

TEST(FdHoldsTest, NullLhsRowsIgnored) {
  Table t("t", Schema({"A", "B"}));
  t.AppendRow({"a", "b1"});
  t.AppendRow({"a", "b1"});
  t.AppendRow({"", "b2"});  // NULL LHS would otherwise clash.
  EXPECT_TRUE(FdHolds(t, FdRule{{"A"}, "B"}));
}

TEST(ConstantCfdTest, ToQueryBuildsCanonicalSqlu) {
  ConstantCfd cfd;
  cfd.lhs_attrs = {"Molecule", "Laboratory"};
  cfd.lhs_values = {"statin", "Austin"};
  cfd.rhs_attr = "Molecule";
  cfd.rhs_value = "C22H28F";
  SqluQuery q = cfd.ToQuery("T_drug");
  EXPECT_EQ(q.table, "T_drug");
  EXPECT_EQ(q.set_attr, "Molecule");
  EXPECT_EQ(q.set_value, "C22H28F");
  ASSERT_EQ(q.where.size(), 2u);
  // Canonical ordering by attribute name.
  EXPECT_EQ(q.where[0].attr, "Laboratory");
  EXPECT_EQ(q.where[1].attr, "Molecule");
}

TEST(ConstantCfdTest, ToStringIsReadable) {
  ConstantCfd cfd;
  cfd.lhs_attrs = {"Zip"};
  cfd.lhs_values = {"10001"};
  cfd.rhs_attr = "State";
  cfd.rhs_value = "NY";
  EXPECT_EQ(cfd.ToString(), "(Zip=10001) -> State=NY");
}

}  // namespace
}  // namespace falcon
