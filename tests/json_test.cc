#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace falcon {
namespace {

TEST(JsonValueTest, DefaultIsNull) {
  JsonValue v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.Serialize(), "null");
}

TEST(JsonValueTest, Scalars) {
  EXPECT_EQ(JsonValue(true).Serialize(), "true");
  EXPECT_EQ(JsonValue(false).Serialize(), "false");
  EXPECT_EQ(JsonValue(42).Serialize(), "42");
  EXPECT_EQ(JsonValue(int64_t{-7}).Serialize(), "-7");
  EXPECT_EQ(JsonValue(size_t{9}).Serialize(), "9");
  EXPECT_EQ(JsonValue(1.5).Serialize(), "1.5");
  EXPECT_EQ(JsonValue("hi").Serialize(), "\"hi\"");
}

TEST(JsonValueTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("b", 1).Set("a", 2).Set("c", "x");
  EXPECT_EQ(obj.Serialize(), "{\"b\":1,\"a\":2,\"c\":\"x\"}");
}

TEST(JsonValueTest, SetOverwritesExistingKeyInPlace) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", 1).Set("b", 2).Set("a", 3);
  EXPECT_EQ(obj.Serialize(), "{\"a\":3,\"b\":2}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(JsonValueTest, KeyedGettersWithDefaults) {
  JsonValue obj = JsonValue::Object();
  obj.Set("s", "str").Set("i", 12).Set("d", 2.5).Set("b", true);
  EXPECT_EQ(obj.GetString("s"), "str");
  EXPECT_EQ(obj.GetInt("i"), 12);
  EXPECT_DOUBLE_EQ(obj.GetDouble("d"), 2.5);
  EXPECT_TRUE(obj.GetBool("b"));
  // Absent keys and type mismatches fall back to the default.
  EXPECT_EQ(obj.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(obj.GetInt("s", -1), -1);
  EXPECT_FALSE(obj.Has("missing"));
  // Numbers coerce across int/double in keyed getters.
  EXPECT_DOUBLE_EQ(obj.GetDouble("i"), 12.0);
  EXPECT_EQ(obj.GetInt("d"), 2);
}

TEST(JsonValueTest, ArrayAppend) {
  JsonValue arr = JsonValue::Array();
  arr.Append(1).Append("two").Append(JsonValue());
  EXPECT_EQ(arr.Serialize(), "[1,\"two\",null]");
  EXPECT_EQ(arr.size(), 3u);
}

TEST(JsonValueTest, EscapesControlAndQuoteCharacters) {
  JsonValue v(std::string("a\"b\\c\n\t\x01"));
  EXPECT_EQ(v.Serialize(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonValueTest, SerializeIsSingleLine) {
  JsonValue obj = JsonValue::Object();
  obj.Set("text", "line1\nline2");
  EXPECT_EQ(obj.Serialize().find('\n'), std::string::npos);
}

TEST(JsonParseTest, RoundTripsNestedValue) {
  const std::string text =
      "{\"verb\":\"open_session\",\"seed\":1234,\"opts\":{\"budget\":3,"
      "\"mistake\":0.05},\"tags\":[\"a\",\"b\"],\"fresh\":true,"
      "\"note\":null}";
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), text);
  EXPECT_EQ(parsed->GetString("verb"), "open_session");
  EXPECT_EQ(parsed->GetInt("seed"), 1234);
  const JsonValue* opts = parsed->Find("opts");
  ASSERT_NE(opts, nullptr);
  EXPECT_DOUBLE_EQ(opts->GetDouble("mistake"), 0.05);
  const JsonValue* tags = parsed->Find("tags");
  ASSERT_NE(tags, nullptr);
  ASSERT_EQ(tags->size(), 2u);
  EXPECT_EQ(tags->items()[1].AsString(), "b");
}

TEST(JsonParseTest, IntegralLiteralsKeepInt64Fidelity) {
  auto v = JsonValue::Parse("9007199254740993");  // 2^53 + 1.
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), JsonValue::Type::kInt);
  EXPECT_EQ(v->AsInt(), int64_t{9007199254740993});
}

TEST(JsonParseTest, NonIntegralLiteralsParseAsDouble) {
  for (const char* text : {"1.25", "1e3", "-2.5E-1"}) {
    auto v = JsonValue::Parse(text);
    ASSERT_TRUE(v.ok()) << text;
    EXPECT_EQ(v->type(), JsonValue::Type::kDouble) << text;
  }
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3")->AsDouble(), 1000.0);
}

TEST(JsonParseTest, EscapesAndUnicode) {
  auto v = JsonValue::Parse("\"a\\n\\t\\\"\\\\\\u0041\\u00e9\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\n\t\"\\A\xC3\xA9");
}

TEST(JsonParseTest, SurrogatePairDecodesToUtf8) {
  auto v = JsonValue::Parse("\"\\ud83d\\ude00\"");  // U+1F600.
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",                        // empty
      "{",                       // unterminated object
      "[1,",                     // unterminated array
      "\"abc",                   // unterminated string
      "{\"a\":1} extra",         // trailing garbage
      "{'a':1}",                 // wrong quotes
      "{\"a\" 1}",               // missing colon
      "[1 2]",                   // missing comma
      "tru",                     // bad literal
      "01",                      // leading zero... actually valid prefix
      "\"\\x41\"",               // bad escape
      "\"\\ud800\"",             // unpaired surrogate
      "\"a\nb\"",                // raw control char in string
      "nan",                     // not a JSON literal
  };
  for (const char* text : bad) {
    if (std::string(text) == "01") continue;  // covered below
    EXPECT_FALSE(JsonValue::Parse(text).ok()) << text;
  }
  // "01" parses "0" then rejects the trailing "1".
  EXPECT_FALSE(JsonValue::Parse("01").ok());
}

TEST(JsonParseTest, RejectsPathologicalNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  // 32 levels is fine.
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(JsonValue::Parse(ok).ok());
}

TEST(JsonParseTest, AllowsSurroundingWhitespace) {
  auto v = JsonValue::Parse("  \t\n {\"a\": [1, 2]} \r\n ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Serialize(), "{\"a\":[1,2]}");
}

}  // namespace
}  // namespace falcon
