#include "common/interner.h"

#include <gtest/gtest.h>

namespace falcon {
namespace {

TEST(ValuePoolTest, NullSlotReserved) {
  ValuePool pool;
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Get(kNullValueId), "");
}

TEST(ValuePoolTest, InternIsIdempotent) {
  ValuePool pool;
  ValueId a = pool.Intern("Austin");
  ValueId b = pool.Intern("Austin");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kNullValueId);
  EXPECT_EQ(pool.Get(a), "Austin");
}

TEST(ValuePoolTest, DistinctStringsGetDistinctIds) {
  ValuePool pool;
  ValueId a = pool.Intern("Austin");
  ValueId b = pool.Intern("Boston");
  EXPECT_NE(a, b);
}

TEST(ValuePoolTest, EmptyStringIsARegularValue) {
  ValuePool pool;
  ValueId e = pool.Intern("");
  // Interning "" returns the NULL slot by construction (slot 0 holds "").
  EXPECT_EQ(e, kNullValueId);
}

TEST(ValuePoolTest, LookupMissingReturnsNull) {
  ValuePool pool;
  EXPECT_EQ(pool.Lookup("never-seen"), kNullValueId);
  pool.Intern("seen");
  EXPECT_NE(pool.Lookup("seen"), kNullValueId);
}

TEST(ValuePoolTest, ManyValuesSurviveReallocation) {
  ValuePool pool;
  std::vector<ValueId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(pool.Intern("value_" + std::to_string(i)));
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(pool.Get(ids[i]), "value_" + std::to_string(i));
    EXPECT_EQ(pool.Lookup("value_" + std::to_string(i)), ids[i]);
  }
}

}  // namespace
}  // namespace falcon
