#include "core/master_oracle.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

// Bits of the T_drug lattice below: 0=Date, 1=Laboratory, 2=Quantity,
// 3=Molecule (target last).
StatusOr<Lattice> DrugLattice(const Table& dirty) {
  return Lattice::Build(dirty, Repair{1, 1, "C22H28F"}, {0, 2, 3});
}

Table SampleMaster(const Table& clean, double coverage, uint64_t seed) {
  Table master("master", clean.schema(), clean.pool());
  Rng rng(seed);
  std::vector<ValueId> ids(clean.num_cols());
  for (size_t r = 0; r < clean.num_rows(); ++r) {
    if (!rng.NextBool(coverage)) continue;
    for (size_t c = 0; c < clean.num_cols(); ++c) ids[c] = clean.cell(r, c);
    master.AppendRowIds(ids);
  }
  return master;
}

TEST(MasterOracleTest, SupportsAndRefutesFromMaster) {
  DrugExample ex = MakeDrugExample();
  // Master = full clean table.
  Table master = ex.clean.Clone();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  MasterBackedOracle oracle(&master, &ex.dirty, &ex.clean);

  // ML (Molecule=statin, Laboratory=Austin → C22H28F): the master has no
  // (statin, Austin) tuple — statin only occurs in Boston — so the pattern
  // is uncovered and falls to the human.
  NodeId ml = 0b1010;
  EXPECT_EQ(oracle.Check(*lat, ml), MasterBackedOracle::Verdict::kUncovered);

  // M (Molecule=statin → C22H28F): master's statin tuple (t4, Boston)
  // disagrees with the SET value — refuted for free.
  NodeId m = 0b1000;
  EXPECT_EQ(oracle.Check(*lat, m), MasterBackedOracle::Verdict::kRefuted);

  // L (Laboratory=Austin → C22H28F): master's Austin tuples carry
  // C16H16Cl and C22H28F — mixed values, refuted.
  NodeId l = 0b0010;
  EXPECT_EQ(oracle.Check(*lat, l), MasterBackedOracle::Verdict::kRefuted);

  // DL (Date=12 Nov, Laboratory=Austin): master has exactly t2 with
  // C22H28F — supported.
  NodeId dl = 0b0011;
  EXPECT_EQ(oracle.Check(*lat, dl),
            MasterBackedOracle::Verdict::kSupported);
}

TEST(MasterOracleTest, FreeAnswersAreNotBilled) {
  DrugExample ex = MakeDrugExample();
  Table master = ex.clean.Clone();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  MasterBackedOracle oracle(&master, &ex.dirty, &ex.clean);

  auto refuted = oracle.AnswerEx(*lat, 0b1000);
  EXPECT_FALSE(refuted.valid);
  EXPECT_FALSE(refuted.billed);
  EXPECT_EQ(oracle.master_answers(), 1u);
  EXPECT_EQ(oracle.questions(), 0u);  // No human question yet.

  auto uncovered = oracle.AnswerEx(*lat, 0b1010);
  EXPECT_TRUE(uncovered.valid);  // Human answers truthfully.
  EXPECT_TRUE(uncovered.billed);
  EXPECT_EQ(oracle.questions(), 1u);
}

TEST(MasterOracleTest, UnalignedAttributesFallToHuman) {
  DrugExample ex = MakeDrugExample();
  // Master missing the Laboratory column entirely.
  Table master("master", Schema({"Date", "Molecule", "Quantity"}),
               ex.clean.pool());
  for (size_t r = 0; r < ex.clean.num_rows(); ++r) {
    master.AppendRowIds({ex.clean.cell(r, 0), ex.clean.cell(r, 1),
                         ex.clean.cell(r, 3)});
  }
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  MasterBackedOracle oracle(&master, &ex.dirty, &ex.clean);
  // Any pattern touching Laboratory is uncovered.
  EXPECT_EQ(oracle.Check(*lat, 0b0010),
            MasterBackedOracle::Verdict::kUncovered);
  // Patterns over aligned attributes still resolve.
  EXPECT_EQ(oracle.Check(*lat, 0b1000),
            MasterBackedOracle::Verdict::kRefuted);
}

TEST(MasterOracleTest, SessionWithMasterReducesUserAnswers) {
  auto ds = MakeSynth(3000);
  ASSERT_TRUE(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty.ok());

  SessionOptions plain;
  plain.budget = 3;
  auto without = RunCleaning(ds->clean, dirty->dirty, SearchKind::kCoDive,
                             plain);
  ASSERT_TRUE(without.ok());

  Table master = SampleMaster(ds->clean, 0.9, 7);
  SessionOptions with_master = plain;
  with_master.master = &master;
  Table working = dirty->dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kCoDive);
  CleaningSession session(&ds->clean, &working, algo.get(), with_master);
  auto with = session.Run();
  ASSERT_TRUE(with.ok()) << with.status();
  EXPECT_TRUE(with->converged);
  EXPECT_GT(with->master_answers, 0u);
  EXPECT_LT(with->user_answers, without->user_answers);
}

TEST(MasterOracleTest, RejectsForeignPool) {
  auto ds = MakeSynth(500);
  ASSERT_TRUE(ds.ok());
  auto other = MakeSynth(500);  // Fresh pool.
  ASSERT_TRUE(other.ok());
  SessionOptions options;
  options.master = &other->clean;
  Table working = ds->clean.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  // Force at least one error so Run reaches the oracle setup.
  working.SetCellText(0, 1, "wrong");
  CleaningSession session(&ds->clean, &working, algo.get(), options);
  EXPECT_FALSE(session.Run().ok());
}

}  // namespace
}  // namespace falcon
