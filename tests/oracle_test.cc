#include "core/oracle.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

StatusOr<Lattice> DrugLattice(const Table& dirty) {
  return Lattice::Build(dirty, Repair{1, 1, "C22H28F"}, {0, 2, 3});
}

NodeId MaskOf(const Lattice& lat, std::initializer_list<const char*> attrs) {
  NodeId m = 0;
  for (const char* a : attrs) {
    for (size_t i = 0; i < lat.num_attrs(); ++i) {
      if (lat.attr_name(i) == a) m |= NodeId{1} << i;
    }
  }
  return m;
}

TEST(OracleTest, MatchesPaperExample1Semantics) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  UserOracle oracle(&ex.clean);

  // Q3 (ML) repairs t2 and t5: valid.
  EXPECT_TRUE(oracle.TrueValid(*lat, MaskOf(*lat, {"Molecule",
                                                   "Laboratory"})));
  // Q3' (M) would wrongly rewrite t4's Boston statin: invalid.
  EXPECT_FALSE(oracle.TrueValid(*lat, MaskOf(*lat, {"Molecule"})));
  // Q3'' (top) repairs only t2: valid.
  EXPECT_TRUE(oracle.TrueValid(*lat, lat->top()));
  // ∅ rewrites the whole column: invalid.
  EXPECT_FALSE(oracle.TrueValid(*lat, lat->bottom()));
}

TEST(OracleTest, ValidityIsMonotoneUnderContainment) {
  // Property (lattice pruning soundness, Section 3): if a node is valid,
  // every superset node is valid; if invalid, every subset is invalid.
  auto ds = MakeSynth(1000);
  ASSERT_TRUE(ds.ok());
  auto dirty_inst = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty_inst.ok());
  UserOracle oracle(&ds->clean);

  for (size_t ei = 0; ei < 5; ++ei) {
    const ErrorCell& e = dirty_inst->errors[ei * 7];
    std::vector<size_t> cols;
    for (size_t c = 0; c < dirty_inst->dirty.num_cols() && cols.size() < 5;
         ++c) {
      if (c != e.col) cols.push_back(c);
    }
    auto lat = Lattice::Build(
        dirty_inst->dirty,
        Repair{e.row, e.col,
               std::string(ds->clean.pool()->Get(e.clean_value))},
        cols);
    ASSERT_TRUE(lat.ok());
    std::vector<bool> truth(lat->num_nodes());
    for (NodeId m = 0; m < lat->num_nodes(); ++m) {
      truth[m] = oracle.TrueValid(*lat, m);
    }
    for (NodeId m = 0; m < lat->num_nodes(); ++m) {
      for (size_t b = 0; b < lat->num_attrs(); ++b) {
        NodeId parent = m & ~(NodeId{1} << b);
        if (parent == m) continue;
        // parent is more general: valid(parent) ⇒ valid(m).
        if (truth[parent]) EXPECT_TRUE(truth[m]);
      }
    }
  }
}

TEST(OracleTest, TopNodeAlwaysValid) {
  // The most specific query touches exactly the repaired tuple's pattern;
  // with the clean value as target it is always valid.
  auto ds = MakeSoccer();
  ASSERT_TRUE(ds.ok());
  auto dirty_inst = InjectErrors(ds->clean, ds->error_spec);
  ASSERT_TRUE(dirty_inst.ok());
  UserOracle oracle(&ds->clean);
  for (size_t ei = 0; ei < dirty_inst->errors.size(); ei += 9) {
    const ErrorCell& e = dirty_inst->errors[ei];
    std::vector<size_t> cols;
    for (size_t c = 0; c < dirty_inst->dirty.num_cols(); ++c) {
      if (c != e.col) cols.push_back(c);
    }
    auto lat = Lattice::Build(
        dirty_inst->dirty,
        Repair{e.row, e.col,
               std::string(ds->clean.pool()->Get(e.clean_value))},
        cols);
    ASSERT_TRUE(lat.ok());
    EXPECT_TRUE(oracle.TrueValid(*lat, lat->top()));
  }
}

TEST(OracleTest, CountsQuestions) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  UserOracle oracle(&ex.clean);
  EXPECT_EQ(oracle.questions(), 0u);
  oracle.Answer(*lat, lat->top());
  oracle.Answer(*lat, lat->bottom());
  EXPECT_EQ(oracle.questions(), 2u);
}

TEST(OracleTest, MistakeProbabilityFlipsAnswers) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  UserOracle always_wrong(&ex.clean, /*mistake_prob=*/1.0);
  // Top is truly valid; a p=1 oracle always lies.
  EXPECT_FALSE(always_wrong.Answer(*lat, lat->top()));
  UserOracle never_wrong(&ex.clean, /*mistake_prob=*/0.0);
  EXPECT_TRUE(never_wrong.Answer(*lat, lat->top()));
}

TEST(OracleTest, MistakesAreRareAtLowProbability) {
  DrugExample ex = MakeDrugExample();
  auto lat = DrugLattice(ex.dirty);
  ASSERT_TRUE(lat.ok());
  UserOracle oracle(&ex.clean, /*mistake_prob=*/0.05, /*seed=*/3);
  int wrong = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!oracle.Answer(*lat, lat->top())) ++wrong;
  }
  EXPECT_NEAR(wrong, 50, 30);
}

}  // namespace
}  // namespace falcon
