// Figure 9: robustness to user mistakes. Users answer validity questions
// wrongly with probability p ∈ {0%, 1%, 3%, 5%} and occasionally perform
// wrong updates; the system must self-heal (Exp-5), at the price of more
// interactions.
//
// Expected shape (paper): cost grows moderately with the mistake rate and
// the system still converges to the clean instance.
#include <cstdio>

#include "bench_util.h"

#include "common/simd.h"
#include "core/session.h"

using namespace falcon;
using bench::Workload;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  if (bench::ParseQuick(flags)) scale *= 0.25;
  if (auto rc = flags.Done("bench_fig9_mistakes — self-healing under user errors (Fig. 9)")) return *rc;
  bench::PrintBanner("bench_fig9_mistakes — self-healing under user errors",
                     "Figure 9");

  std::printf("%-9s %8s %8s %8s %8s %10s %10s\n", "dataset", "p", "U", "A",
              "T_C", "benefit", "converged");
  for (const std::string& name : {std::string("Soccer"),
                                  std::string("Synth10k")}) {
    Workload w = bench::MakeWorkload(name, scale);
    for (double p : {0.0, 0.01, 0.03, 0.05}) {
      SessionOptions options;
      options.budget = 3;
      options.question_mistake_prob = p;
      options.update_mistake_prob = p / 2;
      options.seed = 4242;
      auto m = RunCleaning(w.clean, w.dirty, SearchKind::kCoDive, options);
      if (!m.ok()) {
        std::printf("%-9s %7.0f%% %8s\n", name.c_str(), p * 100, "error");
        continue;
      }
      std::printf("%-9s %7.0f%% %8zu %8zu %8zu %10.2f %10s\n", name.c_str(),
                  p * 100, m->user_updates, m->user_answers, m->TotalCost(),
                  m->Benefit(), m->converged ? "yes" : "no");
    }
  }
  return 0;
}
