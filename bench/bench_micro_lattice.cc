// Google-benchmark micro benchmarks for the lattice hot paths: bottom-up
// construction (view rewriting vs. naive per-node scans), incremental
// maintenance after an applied rule, closed-rule-set computation, and the
// validity inference sweeps.
#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "core/lattice.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

namespace falcon {
namespace {

struct Fixture {
  Table clean;
  Table dirty;
  Repair repair;
  std::vector<size_t> cols;
};

Fixture MakeFixture(size_t rows, size_t attrs) {
  auto ds = MakeSynth(rows, 41);
  FALCON_CHECK(ds.ok());
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  FALCON_CHECK(dirty.ok());
  const ErrorCell& e = dirty->errors.front();
  Fixture f;
  f.clean = ds->clean.Clone();
  f.dirty = dirty->dirty.Clone();
  f.repair = Repair{e.row, e.col,
                    std::string(ds->clean.pool()->Get(e.clean_value))};
  for (size_t c = 0; c < f.dirty.num_cols() && f.cols.size() + 1 < attrs;
       ++c) {
    if (c != e.col) f.cols.push_back(c);
  }
  return f;
}

void BM_LatticeBuildViews(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)),
                          static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto lat = Lattice::Build(f.dirty, f.repair, f.cols);
    benchmark::DoNotOptimize(lat);
  }
  state.SetItemsProcessed(state.iterations() *
                          (int64_t{1} << state.range(1)));
}
BENCHMARK(BM_LatticeBuildViews)
    ->Args({10000, 6})
    ->Args({10000, 8})
    ->Args({10000, 10})
    ->Args({50000, 8});

void BM_LatticeBuildNaive(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)),
                          static_cast<size_t>(state.range(1)));
  LatticeOptions options;
  options.naive_init = true;
  for (auto _ : state) {
    auto lat = Lattice::Build(f.dirty, f.repair, f.cols, options);
    benchmark::DoNotOptimize(lat);
  }
}
BENCHMARK(BM_LatticeBuildNaive)->Args({10000, 6})->Args({10000, 8});

void BM_LatticeMaintenance(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<size_t>(state.range(0)), 8);
  auto lat = Lattice::Build(f.dirty, f.repair, f.cols);
  FALCON_CHECK(lat.ok());
  for (auto _ : state) {
    state.PauseTiming();
    Table scratch = f.dirty.Clone();
    Lattice copy = *lat;
    state.ResumeTiming();
    copy.ApplyNode(copy.top() >> 1, scratch);
  }
}
BENCHMARK(BM_LatticeMaintenance)->Arg(10000)->Arg(50000);

void BM_ClosedSets(benchmark::State& state) {
  Fixture f = MakeFixture(10000, static_cast<size_t>(state.range(0)));
  auto lat = Lattice::Build(f.dirty, f.repair, f.cols);
  FALCON_CHECK(lat.ok());
  for (auto _ : state) {
    Lattice copy = *lat;
    benchmark::DoNotOptimize(copy.NumClosedSets());
  }
}
BENCHMARK(BM_ClosedSets)->Arg(6)->Arg(8)->Arg(10);

void BM_ValidityInference(benchmark::State& state) {
  Fixture f = MakeFixture(5000, 10);
  auto lat = Lattice::Build(f.dirty, f.repair, f.cols);
  FALCON_CHECK(lat.ok());
  NodeId mid = lat->top() >> (lat->num_attrs() / 2);
  for (auto _ : state) {
    Lattice copy = *lat;
    copy.MarkValid(mid);
    copy.MarkInvalid(mid >> 1);
    benchmark::DoNotOptimize(copy.validity(0));
  }
}
BENCHMARK(BM_ValidityInference);

}  // namespace
}  // namespace falcon

BENCHMARK_MAIN();
