// Lattice micro benchmark: lazy memoized materialization vs. the legacy
// eager build, on the lattice hot paths. Three sections:
//
//  1. Build cost: Lattice::Build with lazy materialization (bottom node +
//     predicate bitmaps only) vs. the eager chain (every node ANDed up
//     front), across lattice widths. The headline `build_speedup` is the
//     widest configuration.
//  2. Count access: serial per-node ancestor-chain counting vs. the
//     batched EnsureCounts path (level-parallel materialization + fused
//     AndCount shards), plus the laziness ratio after counting the full
//     frontier — even a complete count materializes only the lowest-set-bit
//     parents, so nodes_materialized stays below nodes_total.
//  3. Full cleaning sessions lazy vs. eager: the determinism gate. All
//     interaction metrics must be bit-identical; the lazy run must report
//     nodes_materialized < nodes_total and its IntersectionMemo hit rate.
//
// Emits BENCH_micro_lattice.json. Exit code 1 when the determinism gate
// fails or the lazy path degenerates to full materialization. Default 500k
// rows; --quick shrinks to 50k for CI smoke, --scale=<f> multiplies rows.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

#include "common/simd.h"
#include "core/lattice.h"
#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"
#include "relational/posting_index.h"

using namespace falcon;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Fixture {
  Table clean;
  Table dirty;
  Repair repair;
  std::vector<size_t> cols;  // Candidate WHERE columns (repair col excluded).
};

Fixture MakeFixture(const Table& clean, const Table& dirty,
                    const ErrorCell& e, size_t attrs) {
  Fixture f;
  f.clean = clean.Clone();
  f.dirty = dirty.Clone();
  f.repair = Repair{e.row, e.col,
                    std::string(clean.pool()->Get(e.clean_value))};
  for (size_t c = 0; c < f.dirty.num_cols() && f.cols.size() + 1 < attrs;
       ++c) {
    if (c != e.col) f.cols.push_back(c);
  }
  return f;
}

struct BuildResult {
  size_t attrs = 0;
  double eager_ms = 0;
  double lazy_ms = 0;
  double speedup = 0;
};

// Average per-build wall time over `iters` builds (one untimed warm-up).
double TimeBuilds(const Fixture& f, const LatticeOptions& options,
                  size_t iters) {
  { auto warm = Lattice::Build(f.dirty, f.repair, f.cols, options); }
  double t0 = NowMs();
  for (size_t i = 0; i < iters; ++i) {
    auto lat = Lattice::Build(f.dirty, f.repair, f.cols, options);
    if (!lat.ok()) return -1;
  }
  return (NowMs() - t0) / static_cast<double>(iters);
}

struct SessionResult {
  std::string name;
  double wall_ms = 0;
  SessionMetrics metrics;
};

SessionResult RunSession(const std::string& name, const Table& clean,
                         const Table& dirty, bool lazy) {
  SessionOptions options;
  options.budget = 1000;  // Effectively unbounded (Fig. 8 setting).
  options.max_updates = 40;
  options.lattice_attrs = 10;
  options.lattice.lazy = lazy;
  double t0 = NowMs();
  auto m = RunCleaning(clean, dirty, SearchKind::kDive, options);
  SessionResult r;
  r.name = name;
  r.wall_ms = NowMs() - t0;
  if (m.ok()) r.metrics = *m;
  return r;
}

void PrintSession(FILE* f, const SessionResult& r, bool trailing_comma) {
  const SessionMetrics& m = r.metrics;
  std::fprintf(f,
               "    \"%s\": {\"wall_ms\": %.2f, \"lattice_build_ms\": %.3f, "
               "\"lattice_maintain_ms\": %.3f, \"lattices_built\": %zu, "
               "\"nodes_materialized\": %zu, \"nodes_total\": %zu, "
               "\"fused_count_calls\": %zu, \"memo_hits\": %zu, "
               "\"memo_misses\": %zu, \"memo_admitted\": %zu, "
               "\"memo_first_touch_skips\": %zu, \"user_updates\": %zu, "
               "\"user_answers\": %zu, \"cells_repaired\": %zu, "
               "\"queries_applied\": %zu}%s\n",
               r.name.c_str(), r.wall_ms, m.lattice_build_ms,
               m.lattice_maintain_ms, m.lattices_built, m.nodes_materialized,
               m.nodes_total, m.fused_count_calls, m.lattice_memo_hits,
               m.lattice_memo_misses, m.lattice_memo_admitted,
               m.lattice_memo_first_touch_skips, m.user_updates,
               m.user_answers, m.cells_repaired, m.queries_applied,
               trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  size_t rows = static_cast<size_t>(500000.0 * scale);
  if (bench::ParseQuick(flags)) rows = 50000;
  if (auto rc = flags.Done(
          "bench_micro_lattice — lazy vs eager lattice materialization")) {
    return *rc;
  }
  bench::PrintBanner(
      "bench_micro_lattice — lazy memoized materialization vs eager build",
      "Section 5.1 lattice hot paths");

  auto ds = MakeSynth(rows, 41);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    return 1;
  }
  // Concentrate the errors on one FD target (A2,A3 → A6): successive
  // episodes repair tuples sharing predicate bindings, the regime where the
  // cross-lattice IntersectionMemo earns its keep.
  ErrorSpec spec;
  spec.seed = 31;
  RuleErrorSpec rule;
  rule.rule.lhs = {"A2", "A3"};
  rule.rule.rhs = "A6";
  rule.num_patterns = 32;
  rule.errors_per_pattern = std::max<size_t>(rows / 2500, 2);
  spec.rule_errors = {rule};
  auto injected = InjectErrors(ds->clean, spec);
  if (!injected.ok()) {
    std::fprintf(stderr, "error injection failed\n");
    return 1;
  }
  const Table& clean = ds->clean;
  const Table& dirty = injected->dirty;
  const ErrorCell& e = injected->errors.front();
  std::printf("rows=%zu cols=%zu errors=%zu\n", clean.num_rows(),
              clean.num_cols(), injected->errors.size());

  // --- Build cost: lazy vs eager across lattice widths ----------------------
  std::vector<BuildResult> builds;
  std::printf("\nbuild cost (per build, averaged):\n");
  for (size_t attrs : {6u, 8u, 10u}) {
    Fixture f = MakeFixture(clean, dirty, e, attrs);
    LatticeOptions eager;
    eager.lazy = false;
    LatticeOptions lazy;  // lazy = true by default.
    size_t iters = attrs >= 10 ? 3 : 5;
    BuildResult b;
    b.attrs = f.cols.size() + 1;
    b.eager_ms = TimeBuilds(f, eager, iters);
    b.lazy_ms = TimeBuilds(f, lazy, iters);
    b.speedup = b.eager_ms / std::max(b.lazy_ms, 1e-6);
    builds.push_back(b);
    std::printf("  k=%-2zu (%5zu nodes): eager %9.3f ms  lazy %9.3f ms  "
                "speedup %.1fx\n",
                b.attrs, size_t{1} << b.attrs, b.eager_ms, b.lazy_ms,
                b.speedup);
  }
  double build_speedup = builds.back().speedup;

  // --- Count access: serial chain vs batched EnsureCounts -------------------
  // Both paths materialize the same ~n/2 ancestor bitmaps (megabytes of
  // fresh allocations at this scale), so whichever runs second inherits a
  // warm allocator while whichever runs first pays every page fault. One
  // untimed warm-up faults the arenas in, then each path is timed on a
  // fresh lattice, alternating, keeping the best of three — standard
  // microbenchmark hygiene so the gate compares the kernels, not the
  // allocator.
  Fixture cf = MakeFixture(clean, dirty, e, 10);
  auto serial_lat = Lattice::Build(cf.dirty, cf.repair, cf.cols);
  auto batch_lat = Lattice::Build(cf.dirty, cf.repair, cf.cols);
  if (!serial_lat.ok() || !batch_lat.ok()) {
    std::fprintf(stderr, "lattice build failed\n");
    return 1;
  }
  std::vector<NodeId> all_nodes;
  for (NodeId m = 0; m < serial_lat->num_nodes(); ++m) {
    all_nodes.push_back(m);
  }
  {
    auto warm = Lattice::Build(cf.dirty, cf.repair, cf.cols);
    if (warm.ok()) warm->EnsureCounts(all_nodes);
  }
  double serial_count_ms = 1e30;
  double batch_count_ms = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    // Each lattice is scoped so its ~n/2 materialized bitmaps are freed
    // before the other path runs — a live 32MB footprint from the
    // previous measurement would skew whichever path goes second.
    {
      auto s = Lattice::Build(cf.dirty, cf.repair, cf.cols);
      if (s.ok()) {
        double s0 = NowMs();
        for (NodeId m : all_nodes) s->Count(m);
        serial_count_ms = std::min(serial_count_ms, NowMs() - s0);
      }
    }
    {
      auto b = Lattice::Build(cf.dirty, cf.repair, cf.cols);
      if (b.ok()) {
        double b0 = NowMs();
        b->EnsureCounts(all_nodes);
        batch_count_ms = std::min(batch_count_ms, NowMs() - b0);
      }
    }
  }
  for (NodeId m : all_nodes) serial_lat->Count(m);
  batch_lat->EnsureCounts(all_nodes);
  bool counts_match = true;
  for (NodeId m : all_nodes) {
    counts_match = counts_match && serial_lat->Count(m) == batch_lat->Count(m);
  }
  size_t count_materialized = batch_lat->lazy_stats().nodes_materialized;
  size_t count_total = batch_lat->num_nodes();
  std::printf("\nfull-frontier counts (%zu nodes): serial %0.3f ms  batched "
              "%0.3f ms  (%.1fx); materialized %zu/%zu nodes; counts %s\n",
              all_nodes.size(), serial_count_ms, batch_count_ms,
              serial_count_ms / std::max(batch_count_ms, 1e-6),
              count_materialized, count_total,
              counts_match ? "match" : "MISMATCH");

  // --- Session comparison (determinism gate) --------------------------------
  SessionResult lazy_run = RunSession("lazy", clean, dirty, /*lazy=*/true);
  SessionResult eager_run = RunSession("eager", clean, dirty, /*lazy=*/false);

  bool identical =
      lazy_run.metrics.user_updates == eager_run.metrics.user_updates &&
      lazy_run.metrics.user_answers == eager_run.metrics.user_answers &&
      lazy_run.metrics.cells_repaired == eager_run.metrics.cells_repaired &&
      lazy_run.metrics.queries_applied == eager_run.metrics.queries_applied &&
      lazy_run.metrics.converged == eager_run.metrics.converged;
  bool actually_lazy =
      lazy_run.metrics.nodes_total > 0 &&
      lazy_run.metrics.nodes_materialized < lazy_run.metrics.nodes_total;
  double lazy_ratio =
      lazy_run.metrics.nodes_total == 0
          ? 1.0
          : static_cast<double>(lazy_run.metrics.nodes_materialized) /
                static_cast<double>(lazy_run.metrics.nodes_total);
  size_t memo_probes = lazy_run.metrics.lattice_memo_hits +
                       lazy_run.metrics.lattice_memo_misses;
  double memo_hit_rate =
      memo_probes == 0
          ? 0.0
          : static_cast<double>(lazy_run.metrics.lattice_memo_hits) /
                static_cast<double>(memo_probes);
  double session_build_speedup = eager_run.metrics.lattice_build_ms /
                                 std::max(lazy_run.metrics.lattice_build_ms,
                                          1e-6);

  std::printf("\n%-7s %9s %11s %14s %12s %10s\n", "mode", "wall(ms)",
              "build(ms)", "materialized", "fused", "memo");
  for (const SessionResult* r : {&lazy_run, &eager_run}) {
    std::printf("%-7s %9.1f %11.3f %7zu/%-7zu %10zu %5zu/%-5zu\n",
                r->name.c_str(), r->wall_ms, r->metrics.lattice_build_ms,
                r->metrics.nodes_materialized, r->metrics.nodes_total,
                r->metrics.fused_count_calls, r->metrics.lattice_memo_hits,
                memo_probes == 0 && r == &eager_run
                    ? 0
                    : r->metrics.lattice_memo_hits +
                          r->metrics.lattice_memo_misses);
  }
  std::printf("\nbuild speedup (widest micro config): %.1fx\n", build_speedup);
  std::printf("session lattice_build_ms speedup:    %.2fx\n",
              session_build_speedup);
  std::printf("lazy materialization ratio:          %.3f\n", lazy_ratio);
  std::printf("intersection-memo hit rate:          %.3f\n", memo_hit_rate);
  std::printf("identical session metrics lazy/eager: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");
  if (!actually_lazy) {
    std::printf("LAZY PATH DEGENERATED: nodes_materialized == nodes_total\n");
  }

  FILE* f = std::fopen("BENCH_micro_lattice.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"micro_lattice\",\n  \"rows\": %zu,\n",
                 rows);
    std::fprintf(f, "  \"meta\": %s,\n",
                 bench::BenchMeta().Serialize().c_str());
    std::fprintf(f, "  \"build\": [\n");
    for (size_t i = 0; i < builds.size(); ++i) {
      const BuildResult& b = builds[i];
      std::fprintf(f,
                   "    {\"attrs\": %zu, \"nodes\": %zu, \"eager_ms\": %.3f, "
                   "\"lazy_ms\": %.3f, \"speedup\": %.2f}%s\n",
                   b.attrs, size_t{1} << b.attrs, b.eager_ms, b.lazy_ms,
                   b.speedup, i + 1 < builds.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"counts\": {\"frontier_nodes\": %zu, "
                 "\"serial_ms\": %.3f, \"batch_ms\": %.3f, "
                 "\"nodes_materialized\": %zu, \"nodes_total\": %zu, "
                 "\"counts_match\": %s},\n",
                 all_nodes.size(), serial_count_ms, batch_count_ms,
                 count_materialized, count_total,
                 counts_match ? "true" : "false");
    std::fprintf(f, "  \"sessions\": {\n");
    PrintSession(f, lazy_run, true);
    PrintSession(f, eager_run, false);
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"identical_metrics\": %s,\n"
                 "  \"lazy_path_lazy\": %s,\n"
                 "  \"lazy_ratio\": %.4f,\n"
                 "  \"memo_hit_rate\": %.4f,\n"
                 "  \"lattice_build_ms\": {\"lazy\": %.3f, \"eager\": %.3f},\n"
                 "  \"build_speedup\": %.2f,\n"
                 "  \"session_build_speedup\": %.2f\n}\n",
                 identical ? "true" : "false",
                 actually_lazy ? "true" : "false", lazy_ratio, memo_hit_rate,
                 lazy_run.metrics.lattice_build_ms,
                 eager_run.metrics.lattice_build_ms, build_speedup,
                 session_build_speedup);
    std::fclose(f);
    std::printf("wrote BENCH_micro_lattice.json\n");
  }
  return (identical && actually_lazy && counts_match) ? 0 : 1;
}
