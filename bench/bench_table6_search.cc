// Table 6 (Appendix D.2): user updates U and user answers A for every
// search algorithm at B = 3, per dataset, plus the error count |Q(T)|.
//
// Expected shape (paper): CoDive lowest effort everywhere except Hospital
// (where DFS/Ducc win thanks to 1–2 attribute rules); BFS worst; for
// one-hop algorithms A ≈ 3·U because they burn the full budget per update.
#include <cstdio>
#include <vector>

#include "bench_util.h"

#include "common/simd.h"
#include "core/session.h"

using namespace falcon;
using bench::Workload;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  if (bench::ParseQuick(flags)) scale *= 0.25;
  if (auto rc = flags.Done("bench_table6_search — U and A per algorithm (Table 6)")) return *rc;
  bench::PrintBanner("bench_table6_search — U and A per algorithm, B=3",
                     "Table 6");

  const std::vector<SearchKind> kinds = {
      SearchKind::kDfs, SearchKind::kBfs, SearchKind::kDucc,
      SearchKind::kDive, SearchKind::kCoDive};

  std::printf("%-9s", "");
  for (const std::string& name : bench::AllDatasetNames()) {
    std::printf(" | %6s %6s", (name.substr(0, 6) + " U").c_str(), "A");
  }
  std::printf("\n");

  std::vector<Workload> workloads;
  for (const std::string& name : bench::AllDatasetNames()) {
    workloads.push_back(bench::MakeWorkload(name, scale));
  }

  for (SearchKind kind : kinds) {
    std::printf("%-9s", SearchKindName(kind));
    for (const Workload& w : workloads) {
      SessionOptions options;
      options.budget = 3;
      auto m = RunCleaning(w.clean, w.dirty, kind, options);
      if (!m.ok() || !m->converged) {
        std::printf(" | %6s %6s", "-", "-");
        continue;
      }
      std::printf(" | %6zu %6zu", m->user_updates, m->user_answers);
    }
    std::printf("\n");
  }

  std::printf("%-9s", "|Q(T)|");
  for (const Workload& w : workloads) {
    std::printf(" | %13zu", w.errors);
  }
  std::printf("\n\nPaper reference (at full scale): Soccer CoDive 8/19, "
              "Hospital DFS 129/387, BUS CoDive 48/144.\n");
  return 0;
}
