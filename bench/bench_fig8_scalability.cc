// Figure 8: lattice construction and maintenance efficiency (Dive,
// effectively unbounded B).
//  (a) total per-update time, incremental maintenance vs. rebuilding the
//      lattice after every validated rule (paper: incremental 3–5× faster);
//  (b, c) average creation/maintenance time as #tuples grows;
//  (d) average times as the number of lattice attributes grows
//      (Hospital-style schema), plus the bottom-up view-rewriting vs.
//      naive per-node initialization ablation (Section 5.1.2).
#include <chrono>
#include <cstdio>

#include "bench_util.h"

#include "common/simd.h"
#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

using namespace falcon;

namespace {

struct TimingRun {
  double build_ms = 0;
  double maintain_ms = 0;
  size_t lattices = 0;
  double total_ms = 0;
  SessionMetrics metrics;
};

TimingRun RunDive(const Table& clean, const Table& dirty, bool naive_maint,
                  size_t max_updates) {
  SessionOptions options;
  options.budget = 1000;  // Effectively unbounded (Fig. 8 setting).
  options.naive_maintenance = naive_maint;
  options.max_updates = max_updates;
  auto t0 = std::chrono::steady_clock::now();
  auto m = RunCleaning(clean, dirty, SearchKind::kDive, options);
  auto t1 = std::chrono::steady_clock::now();
  TimingRun r;
  if (m.ok()) {
    r.build_ms = m->lattice_build_ms;
    r.maintain_ms = m->lattice_maintain_ms;
    r.lattices = m->lattices_built;
    r.total_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.metrics = *m;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  if (bench::ParseQuick(flags)) scale *= 0.25;
  if (auto rc = flags.Done("bench_fig8_scalability — scalability (Fig. 8)")) return *rc;
  bench::PrintBanner(
      "bench_fig8_scalability — lattice creation/maintenance times",
      "Figure 8 (a)-(d)");

  // ---- (a) incremental vs. naive maintenance ------------------------------
  std::printf("\n--- Fig 8(a): per-update time, first 5 updates ---\n");
  std::printf("%-9s %16s %16s %9s\n", "dataset", "incremental(ms)",
              "rebuild(ms)", "speedup");
  for (const std::string& name : {std::string("Hospital"),
                                  std::string("Synth10k")}) {
    bench::Workload w = bench::MakeWorkload(name, scale);
    TimingRun inc = RunDive(w.clean, w.dirty, false, 5);
    TimingRun naive = RunDive(w.clean, w.dirty, true, 5);
    double inc_per = (inc.build_ms + inc.maintain_ms) /
                     std::max<size_t>(inc.lattices, 1);
    double naive_per = (naive.build_ms + naive.maintain_ms) /
                       std::max<size_t>(naive.lattices, 1);
    std::printf("%-9s %16.3f %16.3f %8.1fx\n", name.c_str(), inc_per,
                naive_per, naive_per / std::max(inc_per, 1e-9));
    const SessionMetrics& pm = inc.metrics;
    std::printf("          postings: hits=%zu misses=%zu delta_rows=%zu "
                "evictions=%zu scan=%.3fms delta=%.3fms\n",
                pm.posting_hits, pm.posting_misses, pm.posting_delta_rows,
                pm.posting_evictions, pm.posting_scan_ms,
                pm.posting_delta_ms);
  }

  // ---- (b, c) time vs #tuples ---------------------------------------------
  std::printf("\n--- Fig 8(b,c): avg creation/maintenance vs #tuples "
              "(Synth, first 10 updates) ---\n");
  std::printf("%10s %14s %16s\n", "#tuples", "create(ms)", "maintain(ms)");
  for (size_t rows : {1000u, 10000u, 50000u, 100000u}) {
    size_t n = static_cast<size_t>(static_cast<double>(rows) * scale);
    if (n < 500) n = 500;
    auto ds = MakeSynth(n, 37);
    if (!ds.ok()) continue;
    auto dirty = InjectErrors(ds->clean, ds->error_spec);
    if (!dirty.ok()) continue;
    TimingRun r = RunDive(ds->clean, dirty->dirty, false, 10);
    size_t lattices = std::max<size_t>(r.lattices, 1);
    std::printf("%10zu %14.3f %16.4f\n", n, r.build_ms / lattices,
                r.maintain_ms / lattices);
  }

  // ---- (d) time vs #attributes --------------------------------------------
  std::printf("\n--- Fig 8(d): avg times vs #lattice attributes "
              "(Hospital, first 5 updates) ---\n");
  std::printf("%8s %14s %16s\n", "#attrs", "create(ms)", "maintain(ms)");
  {
    bench::Workload w = bench::MakeWorkload("Hospital", scale);
    for (size_t k : {4u, 6u, 8u, 10u, 12u}) {
      SessionOptions options;
      options.budget = 1000;
      options.lattice_attrs = k;
      options.max_updates = 5;
      auto m = RunCleaning(w.clean, w.dirty, SearchKind::kDive, options);
      if (!m.ok()) continue;
      size_t lattices = std::max<size_t>(m->lattices_built, 1u);
      std::printf("%8zu %14.3f %16.4f\n", k, m->lattice_build_ms / lattices,
                  m->lattice_maintain_ms / lattices);
    }
  }

  // ---- Ablation: view-rewriting vs naive per-node initialization ----------
  std::printf("\n--- Ablation (Sec 5.1.2): bottom-up views vs per-node "
              "scans, lattice creation ---\n");
  std::printf("%10s %12s %12s %9s\n", "#tuples", "views(ms)", "naive(ms)",
              "speedup");
  for (size_t rows : {5000u, 20000u}) {
    size_t n = static_cast<size_t>(static_cast<double>(rows) * scale);
    if (n < 500) n = 500;
    auto ds = MakeSynth(n, 39);
    if (!ds.ok()) continue;
    auto dirty = InjectErrors(ds->clean, ds->error_spec);
    if (!dirty.ok()) continue;

    SessionOptions fast;
    fast.budget = 1000;
    fast.max_updates = 5;
    SessionOptions slow = fast;
    slow.lattice.naive_init = true;
    auto mf = RunCleaning(ds->clean, dirty->dirty, SearchKind::kDive, fast);
    auto ms = RunCleaning(ds->clean, dirty->dirty, SearchKind::kDive, slow);
    if (!mf.ok() || !ms.ok()) continue;
    double f = mf->lattice_build_ms / std::max<size_t>(mf->lattices_built, 1);
    double s = ms->lattice_build_ms / std::max<size_t>(ms->lattices_built, 1);
    std::printf("%10zu %12.3f %12.3f %8.1fx\n", n, f, s,
                s / std::max(f, 1e-9));
  }
  return 0;
}
