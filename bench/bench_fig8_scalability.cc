// Figure 8 at scale: the interactive data path on 1M–10M+ row tables.
//
// The paper's Fig. 8 measures lattice creation/maintenance as tables grow;
// this bench extends it to the streaming regime those numbers imply:
//
//  (1) chunked parallel ingest from a declarative JSON workload spec, with
//      a bit-identity sweep proving the generated table is byte-identical
//      (TableContentsCrc) for every (thread count, chunk size) pairing;
//  (2) deterministic sharded posting-index builds — parallel BuildColumn
//      digest-identical to the serial build at every thread count;
//  (3) append-vs-rebuild A/B: growing a warm posting index by
//      PostingIndex::ApplyAppend (O(batch + entries)) against the
//      invalidate-and-rebuild strawman (O(table)), digest-verified;
//  (4) twin cleaning sessions fed the same append schedule through
//      CleaningSession::AppendBatch — incremental maintenance vs
//      options.append_rebuild — which must converge to CRC-identical
//      tables with identical interaction metrics;
//  (5) per-update latency across table sizes (the Fig. 8(b,c) axis).
//
// Emits BENCH_fig8_scalability.json; exit code 1 if any identity gate
// (generator determinism, posting digest, twin CRC/metrics) fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"

#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/session.h"
#include "core/session_journal.h"
#include "datagen/spec.h"
#include "relational/posting_index.h"

using namespace falcon;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The default workload spec, parameterized by table size. Domains scale
// with the row count so predicate groups keep a realistic ~2k-row size
// (Hospital-like selectivity) instead of degenerating as tables grow; the
// derived fields give the injector exact FDs to corrupt.
std::string DefaultSpecJson(size_t rows, size_t append_batches,
                            size_t batch_rows) {
  size_t city_domain = std::max<size_t>(rows / 2000, 8);
  size_t zip_domain = std::max<size_t>(rows / 2000, 8);
  std::ostringstream os;
  os << "{\n"
     << "  \"name\": \"fig8\", \"seed\": 9, \"rows\": " << rows << ",\n"
     << "  \"fields\": [\n"
     << "    {\"name\": \"id\", \"dist\": \"unique\", \"prefix\": \"R\"},\n"
     << "    {\"name\": \"city\", \"dist\": \"zipf\", \"domain\": "
     << city_domain << ", \"skew\": 1.0, \"prefix\": \"City\"},\n"
     << "    {\"name\": \"state\", \"dist\": \"derived\", \"parents\": "
        "[\"city\"], \"domain\": "
     << std::max<size_t>(city_domain / 10, 4) << ", \"prefix\": \"St\"},\n"
     << "    {\"name\": \"zip\", \"dist\": \"uniform\", \"domain\": "
     << zip_domain << ", \"prefix\": \"Z\"},\n"
     << "    {\"name\": \"area\", \"dist\": \"derived\", \"parents\": "
        "[\"zip\"], \"domain\": "
     << std::max<size_t>(zip_domain / 20, 4) << ", \"prefix\": \"A\"},\n"
     << "    {\"name\": \"flag\", \"dist\": \"dictionary\", \"values\": "
        "[\"yes\", \"no\", \"maybe\"]}\n"
     << "  ],\n"
     << "  \"errors\": {\n"
     << "    \"rules\": [{\"lhs\": [\"city\"], \"rhs\": \"state\", "
        "\"patterns\": 5, \"errors_per_pattern\": 20}],\n"
     << "    \"random_errors\": 100, \"seed\": 5\n"
     << "  },\n"
     << "  \"append\": {\"batches\": " << append_batches
     << ", \"rows_per_batch\": " << batch_rows
     << ", \"error_rate\": 0.0005}\n"
     << "}\n";
  return os.str();
}

// Canonical digest of a posting index's cached bitmaps over the bounded
// columns of `table`: (column, decoded value text, row stream) folded into
// FNV — independent of thread count, storage representation, and ValueId
// numbering. Unique-like columns are skipped (one bitmap per row is not a
// lattice-relevant posting).
uint64_t PostingDigest(PostingIndex& index, const Table& table,
                       const std::vector<size_t>& cols) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  for (size_t c : cols) {
    std::set<ValueId> values(table.column(c).begin(), table.column(c).end());
    for (ValueId v : values) {
      std::string_view text = table.pool()->Get(v);
      mix(c);
      for (char ch : text) mix(static_cast<unsigned char>(ch));
      index.Postings(c, v).ForEach([&](size_t r) { mix(r + 0x9e3779b9ull); });
    }
  }
  return h;
}

// Columns worth full posting builds: everything whose domain is bounded
// (the unique key column would materialize one bitmap per row).
std::vector<size_t> BoundedColumns(const Table& table) {
  std::vector<size_t> cols;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (table.DistinctCount(c) < table.num_rows() / 2) cols.push_back(c);
  }
  return cols;
}

struct GenerateLeg {
  size_t threads = 0;
  size_t chunk_rows = 0;
  double ms = 0.0;
  uint64_t crc = 0;
};

// Generates the spec's base table with one (threads, chunk_rows) setting
// and returns its content CRC. A fresh generator (fresh pool) per leg, so
// equality across legs is a real statement about the byte contents.
StatusOr<GenerateLeg> GenerateOnce(const GeneratorSpec& spec, size_t threads,
                                   size_t chunk_rows) {
  GenerateLeg leg;
  leg.threads = threads;
  leg.chunk_rows = chunk_rows;
  ThreadPool pool(threads);
  double t0 = NowMs();
  FALCON_ASSIGN_OR_RETURN(SpecGenerator gen, SpecGenerator::Make(spec));
  Table table = gen.NewTable();
  table.ReserveRows(spec.rows);
  for (size_t done = 0; done < spec.rows;) {
    size_t m = std::min(chunk_rows, spec.rows - done);
    FALCON_ASSIGN_OR_RETURN(auto chunk, gen.Chunk(done, m, &pool));
    table.AppendBatch(chunk);
    done += m;
  }
  leg.ms = NowMs() - t0;
  leg.crc = TableContentsCrc(table);
  return leg;
}

struct SessionLeg {
  SessionMetrics metrics;
  uint64_t crc = 0;
  double total_ms = 0.0;
  bool ok = false;
};

// One twin of the session-level A/B: run `warm_episodes`, stream the
// append schedule through CleaningSession::AppendBatch — growing a private
// COW clone of the clean table in lock-step, per the AppendBatch contract
// — then run `post_episodes` more.
SessionLeg RunAppendSession(const Table& base_clean, const Table& base_dirty,
                            const std::vector<SpecAppendChunk>& chunks,
                            bool append_rebuild, size_t warm_episodes,
                            size_t post_episodes) {
  SessionLeg leg;
  SessionOptions options;
  options.budget = 1000;  // Fig. 8 setting: effectively unbounded B.
  options.append_rebuild = append_rebuild;
  Table clean = base_clean.Clone();
  Table working = base_dirty.Clone();
  std::unique_ptr<SearchAlgorithm> algorithm =
      MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&clean, &working, algorithm.get(), options);
  double t0 = NowMs();
  auto warm = session.RunSteps(warm_episodes);
  if (!warm.ok()) return leg;
  for (const SpecAppendChunk& chunk : chunks) {
    clean.AppendBatch(chunk.clean);
    Status st = session.AppendBatch(chunk.dirty);
    if (!st.ok()) return leg;
  }
  auto post = session.RunSteps(post_episodes);
  if (!post.ok()) return leg;
  leg.total_ms = NowMs() - t0;
  leg.metrics = *post;
  leg.crc = TableContentsCrc(working);
  leg.ok = true;
  return leg;
}

bool MetricsMatch(const SessionMetrics& a, const SessionMetrics& b) {
  return a.user_updates == b.user_updates &&
         a.user_answers == b.user_answers &&
         a.cells_repaired == b.cells_repaired &&
         a.queries_applied == b.queries_applied &&
         a.initial_errors == b.initial_errors &&
         a.rows_appended == b.rows_appended &&
         a.append_batches == b.append_batches &&
         a.converged == b.converged;
}

// Satellite microbench: per-row cost of the string-vector AppendRow vs the
// span-of-views overload the CSV reader and generators now feed.
JsonValue AppendRowMicrobench(size_t rows) {
  Schema schema({"a", "b", "c", "d"});
  std::vector<std::string> strings = {"alpha_1", "beta_22", "gamma_333",
                                      "delta_4444"};
  std::vector<std::string_view> views(strings.begin(), strings.end());

  Table by_string("by_string", schema);
  double t0 = NowMs();
  for (size_t r = 0; r < rows; ++r) by_string.AppendRow(strings);
  double string_ms = NowMs() - t0;

  Table by_span("by_span", schema);
  t0 = NowMs();
  for (size_t r = 0; r < rows; ++r) {
    by_span.AppendRow(std::span<const std::string_view>(views));
  }
  double span_ms = NowMs() - t0;

  JsonValue out = JsonValue::Object();
  out.Set("rows", rows);
  out.Set("string_ns_per_row", string_ms * 1e6 / static_cast<double>(rows));
  out.Set("span_ns_per_row", span_ms * 1e6 / static_cast<double>(rows));
  return out;
}

std::vector<size_t> ParseSizeList(const std::string& csv, double scale) {
  std::vector<size_t> sizes;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    double v = std::atof(item.c_str()) * scale;
    if (v >= 1.0) sizes.push_back(static_cast<size_t>(v));
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  bool quick = bench::ParseQuick(flags);
  std::string sizes_csv =
      flags.GetString("sizes", quick ? "1000000" : "1000000,10000000");
  std::string spec_path = flags.GetString("spec", "");
  size_t episodes = static_cast<size_t>(flags.GetInt("episodes", 3));
  std::string out_path =
      flags.GetString("out", "BENCH_fig8_scalability.json");
  if (auto rc = flags.Done(
          "bench_fig8_scalability — streaming append & large-table ingest "
          "(Fig. 8 at 1M-10M rows)\n"
          "  --sizes=<csv>    table sizes (default 1000000,10000000; "
          "--quick keeps 1M)\n"
          "  --spec=<path>    JSON GeneratorSpec overriding the built-in "
          "workload\n"
          "  --episodes=<n>   episodes before and after the append phase\n"
          "  --out=<path>     output JSON path")) {
    return *rc;
  }
  bench::PrintBanner(
      "bench_fig8_scalability — chunked ingest, deterministic parallel "
      "builds, append-vs-rebuild",
      "Figure 8 at streaming scale");

  std::vector<size_t> sizes = ParseSizeList(sizes_csv, scale);
  bool all_ok = true;

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "fig8_scalability");
  doc.Set("meta", bench::BenchMeta());
  doc.Set("append_row_span", AppendRowMicrobench(200000));
  JsonValue size_results = JsonValue::Array();
  std::vector<std::pair<size_t, double>> per_update;  // (rows, ms/update).

  for (size_t rows : sizes) {
    std::printf("\n=== %zu rows ===\n", rows);
    JsonValue entry = JsonValue::Object();
    entry.Set("rows", rows);

    size_t batch_rows = std::max<size_t>(rows / 20, 1000);
    std::string spec_json;
    if (!spec_path.empty()) {
      std::ifstream in(spec_path);
      std::stringstream buf;
      buf << in.rdbuf();
      spec_json = buf.str();
    } else {
      spec_json = DefaultSpecJson(rows, /*append_batches=*/4, batch_rows);
    }
    auto spec_or = GeneratorSpec::Parse(spec_json);
    if (!spec_or.ok()) {
      std::fprintf(stderr, "spec parse failed: %s\n",
                   spec_or.status().message().c_str());
      return 1;
    }
    GeneratorSpec spec = std::move(spec_or).value();

    // ---- (1) chunked-ingest determinism sweep -----------------------------
    struct LegConfig {
      size_t threads, chunk_rows;
    };
    std::vector<LegConfig> configs = {{1, 1 << 16}, {2, 1 << 16}, {8, 10000}};
    JsonValue legs = JsonValue::Array();
    uint64_t base_crc = 0;
    bool generator_deterministic = true;
    double best_ms = 0.0;
    for (size_t i = 0; i < configs.size(); ++i) {
      auto leg = GenerateOnce(spec, configs[i].threads, configs[i].chunk_rows);
      if (!leg.ok()) {
        std::fprintf(stderr, "generation failed: %s\n",
                     leg.status().message().c_str());
        return 1;
      }
      if (i == 0) {
        base_crc = leg->crc;
        best_ms = leg->ms;
      } else {
        generator_deterministic &= leg->crc == base_crc;
        best_ms = std::min(best_ms, leg->ms);
      }
      JsonValue lj = JsonValue::Object();
      lj.Set("threads", leg->threads);
      lj.Set("chunk_rows", leg->chunk_rows);
      lj.Set("ms", leg->ms);
      lj.Set("crc", static_cast<int64_t>(leg->crc));
      legs.Append(std::move(lj));
      std::printf("ingest: threads=%zu chunk=%zu %.0f ms (crc %016llx)\n",
                  configs[i].threads, configs[i].chunk_rows, leg->ms,
                  static_cast<unsigned long long>(leg->crc));
    }
    JsonValue gen_json = JsonValue::Object();
    gen_json.Set("legs", std::move(legs));
    gen_json.Set("deterministic", generator_deterministic);
    gen_json.Set("ingest_rows_per_s",
                 best_ms > 0.0 ? static_cast<double>(rows) / (best_ms / 1000.0)
                               : 0.0);
    entry.Set("generate", std::move(gen_json));
    all_ok &= generator_deterministic;
    std::printf("generator deterministic across legs: %s\n",
                generator_deterministic ? "yes" : "NO");

    // ---- build the workload used by the remaining phases ------------------
    auto workload_or = MakeSpecWorkload(spec);
    if (!workload_or.ok()) {
      std::fprintf(stderr, "workload build failed: %s\n",
                   workload_or.status().message().c_str());
      return 1;
    }
    SpecWorkload sw = std::move(workload_or).value();
    std::printf("workload: %zu rows, %zu injected errors, %zu patterns\n",
                sw.workload.clean.num_rows(), sw.workload.errors,
                sw.workload.patterns);

    // ---- (2) serial-vs-parallel posting build identity --------------------
    std::vector<size_t> bounded = BoundedColumns(sw.workload.dirty);
    JsonValue build_json = JsonValue::Object();
    {
      uint64_t serial_digest = 0;
      bool identical = true;
      double serial_ms = 0.0, parallel_ms = 0.0;
      JsonValue threads_json = JsonValue::Array();
      // Compressed storage (the session default): at 10M rows a fully
      // built dense column set costs gigabytes; the parallel-vs-serial
      // identity claim is representation-independent (locked in by
      // PostingBuildTest.CompressedBuildIsBitIdentical).
      PostingIndexOptions posting_opts;
      posting_opts.compressed = true;
      for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        ThreadPool tp(threads);
        PostingIndex index(&sw.workload.dirty, posting_opts);
        double t0 = NowMs();
        for (size_t c : bounded) index.BuildColumn(c, &tp);
        double ms = NowMs() - t0;
        uint64_t digest = PostingDigest(index, sw.workload.dirty, bounded);
        if (threads == 1) {
          serial_digest = digest;
          serial_ms = ms;
        } else {
          identical &= digest == serial_digest;
          parallel_ms = ms;
        }
        JsonValue tj = JsonValue::Object();
        tj.Set("threads", threads);
        tj.Set("ms", ms);
        tj.Set("digest", static_cast<int64_t>(digest));
        threads_json.Append(std::move(tj));
        std::printf("posting build: threads=%zu %.0f ms digest %016llx\n",
                    threads, ms, static_cast<unsigned long long>(digest));
      }
      build_json.Set("legs", std::move(threads_json));
      build_json.Set("identical", identical);
      build_json.Set("serial_ms", serial_ms);
      build_json.Set("parallel_ms", parallel_ms);
      all_ok &= identical;
      std::printf("parallel build identical to serial: %s\n",
                  identical ? "yes" : "NO");
    }
    entry.Set("posting_build", std::move(build_json));

    // ---- pre-generate the append schedule's chunks ------------------------
    std::vector<SpecAppendChunk> chunks;
    size_t appended_errors = 0;
    for (size_t b = 0; b < spec.append.batches; ++b) {
      auto chunk_or = sw.generator.AppendBatchChunk(
          spec.rows + b * spec.append.rows_per_batch,
          spec.append.rows_per_batch);
      if (!chunk_or.ok()) {
        std::fprintf(stderr, "append chunk generation failed\n");
        return 1;
      }
      appended_errors += chunk_or->errors;
      chunks.push_back(std::move(chunk_or).value());
    }

    // ---- (3) append-vs-rebuild A/B over a warm posting index --------------
    {
      Table inc_table = sw.workload.dirty.Clone();
      Table reb_table = sw.workload.dirty.Clone();
      PostingIndexOptions posting_opts;
      posting_opts.compressed = true;
      PostingIndex inc_index(&inc_table, posting_opts);
      PostingIndex reb_index(&reb_table, posting_opts);
      for (size_t c : bounded) inc_index.BuildColumn(c);
      for (size_t c : bounded) reb_index.BuildColumn(c);

      double append_ms = 0.0, rebuild_ms = 0.0;
      for (const SpecAppendChunk& chunk : chunks) {
        size_t old_rows = inc_table.num_rows();
        double t0 = NowMs();
        inc_table.AppendBatch(chunk.dirty);
        inc_index.ApplyAppend(old_rows);
        append_ms += NowMs() - t0;

        t0 = NowMs();
        reb_table.AppendBatch(chunk.dirty);
        reb_index.InvalidateAll();
        for (size_t c : bounded) reb_index.BuildColumn(c);
        rebuild_ms += NowMs() - t0;
      }
      uint64_t inc_digest = PostingDigest(inc_index, inc_table, bounded);
      uint64_t reb_digest = PostingDigest(reb_index, reb_table, bounded);
      bool postings_identical = inc_digest == reb_digest;
      double speedup = append_ms > 0.0 ? rebuild_ms / append_ms : 0.0;
      JsonValue ab = JsonValue::Object();
      ab.Set("batches", spec.append.batches);
      ab.Set("batch_rows", spec.append.rows_per_batch);
      ab.Set("append_ms", append_ms);
      ab.Set("rebuild_ms", rebuild_ms);
      ab.Set("speedup", speedup);
      ab.Set("postings_identical", postings_identical);
      entry.Set("append_ab", std::move(ab));
      all_ok &= postings_identical;
      std::printf(
          "append A/B: maintain %.1f ms vs rebuild %.1f ms -> %.1fx, "
          "postings %s\n",
          append_ms, rebuild_ms, speedup,
          postings_identical ? "identical" : "DIVERGED");
    }

    // ---- (4) twin sessions through CleaningSession::AppendBatch -----------
    {
      SessionLeg inc = RunAppendSession(sw.workload.clean, sw.workload.dirty,
                                        chunks, /*append_rebuild=*/false,
                                        episodes, episodes);
      SessionLeg reb = RunAppendSession(sw.workload.clean, sw.workload.dirty,
                                        chunks, /*append_rebuild=*/true,
                                        episodes, episodes);
      bool crc_match = inc.ok && reb.ok && inc.crc == reb.crc;
      bool metrics_match =
          inc.ok && reb.ok && MetricsMatch(inc.metrics, reb.metrics);
      JsonValue sj = JsonValue::Object();
      sj.Set("ok", inc.ok && reb.ok);
      sj.Set("episodes", episodes * 2);
      sj.Set("crc_match", crc_match);
      sj.Set("metrics_match", metrics_match);
      sj.Set("rows_appended", inc.metrics.rows_appended);
      sj.Set("append_batches", inc.metrics.append_batches);
      sj.Set("appended_errors", appended_errors);
      sj.Set("append_maintain_ms", inc.metrics.append_maintain_ms);
      sj.Set("rebuild_append_maintain_ms", reb.metrics.append_maintain_ms);
      sj.Set("ingest_rows_per_s", inc.metrics.ingest_rows_per_s);
      sj.Set("incremental_total_ms", inc.total_ms);
      sj.Set("rebuild_total_ms", reb.total_ms);
      entry.Set("session_ab", std::move(sj));
      all_ok &= crc_match && metrics_match;
      std::printf(
          "session twins: crc %s, metrics %s, appended %zu rows "
          "(%zu dirty), maintain %.2f ms, total %.0f vs %.0f ms\n",
          crc_match ? "match" : "DIVERGED",
          metrics_match ? "match" : "DIVERGED", inc.metrics.rows_appended,
          appended_errors, inc.metrics.append_maintain_ms, inc.total_ms,
          reb.total_ms);

      // ---- (5) per-update latency -----------------------------------------
      size_t lattices = std::max<size_t>(inc.metrics.lattices_built, 1);
      double per_update_ms =
          (inc.metrics.lattice_build_ms + inc.metrics.lattice_maintain_ms) /
          static_cast<double>(lattices);
      entry.Set("per_update_ms", per_update_ms);
      per_update.emplace_back(rows, per_update_ms);
      std::printf("per-update lattice time: %.2f ms over %zu lattices\n",
                  per_update_ms, lattices);
    }

    size_results.Append(std::move(entry));
  }
  doc.Set("sizes", std::move(size_results));

  if (per_update.size() >= 2) {
    const auto& [small_rows, small_ms] = per_update.front();
    const auto& [big_rows, big_ms] = per_update.back();
    double ratio = small_ms > 0.0 ? big_ms / small_ms : 0.0;
    JsonValue lr = JsonValue::Object();
    lr.Set("base_rows", small_rows);
    lr.Set("base_ms", small_ms);
    lr.Set("big_rows", big_rows);
    lr.Set("big_ms", big_ms);
    lr.Set("ratio", ratio);
    doc.Set("latency_ratio", std::move(lr));
    std::printf("\nper-update latency %zu -> %zu rows: %.2fx\n", small_rows,
                big_rows, ratio);
  }
  doc.Set("all_gates_pass", all_ok);

  std::ofstream out(out_path);
  out << doc.Serialize() << "\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());
  return all_ok ? 0 : 1;
}
