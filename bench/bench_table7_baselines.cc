// Table 7 (Appendix D.2): total interaction cost T_C and repaired cells
// (Rep) for CoDive at B=5 versus the four baselines, per dataset.
//
// Expected shape (paper): CoDive repairs everything at a fraction of the
// cost; Refine repairs everything but at near-manual cost; RuleLearning
// and GDR leave errors unrepaired (sample-limited recall); ActiveLearning
// repairs everything when it finishes but needs more interactions.
#include <cstdio>

#include "baselines/active_learning.h"
#include "baselines/refine.h"
#include "baselines/rule_learning.h"
#include "bench_util.h"

#include "common/simd.h"
#include "core/session.h"

using namespace falcon;
using bench::Workload;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  if (bench::ParseQuick(flags)) scale *= 0.25;
  if (auto rc = flags.Done("bench_table7_baselines — baseline costs (Table 7)")) return *rc;
  bench::PrintBanner(
      "bench_table7_baselines — T_C and repaired cells vs. baselines",
      "Table 7");

  std::printf("%-16s", "");
  for (const std::string& name : bench::AllDatasetNames()) {
    std::printf(" | %6s %6s", (name.substr(0, 5) + "Tc").c_str(), "Rep");
  }
  std::printf("\n");

  std::vector<Workload> workloads;
  for (const std::string& name : bench::AllDatasetNames()) {
    workloads.push_back(bench::MakeWorkload(name, scale));
  }

  auto print_row = [](const char* name, const std::vector<long>& tc,
                      const std::vector<long>& rep) {
    std::printf("%-16s", name);
    for (size_t i = 0; i < tc.size(); ++i) {
      if (tc[i] < 0) {
        std::printf(" | %6s %6s", "-", "-");
      } else {
        std::printf(" | %6ld %6ld", tc[i], rep[i]);
      }
    }
    std::printf("\n");
  };

  std::vector<long> tc, rep;

  // CoDive B=5.
  tc.clear();
  rep.clear();
  for (const Workload& w : workloads) {
    SessionOptions options;
    options.budget = 5;
    auto m = RunCleaning(w.clean, w.dirty, SearchKind::kCoDive, options);
    if (m.ok() && m->converged) {
      tc.push_back(static_cast<long>(m->TotalCost()));
      rep.push_back(static_cast<long>(m->initial_errors));
    } else {
      tc.push_back(-1);
      rep.push_back(-1);
    }
  }
  print_row("CoDive B=5", tc, rep);

  // Refine.
  tc.clear();
  rep.clear();
  for (const Workload& w : workloads) {
    auto r = RunRefine(w.clean, w.dirty);
    if (r.ok()) {
      tc.push_back(static_cast<long>(r->TotalCost()));
      rep.push_back(static_cast<long>(r->cells_repaired));
    } else {
      tc.push_back(-1);
      rep.push_back(-1);
    }
  }
  print_row("Refine", tc, rep);

  // RuleLearning and GDR.
  for (int which = 0; which < 2; ++which) {
    tc.clear();
    rep.clear();
    for (const Workload& w : workloads) {
      RuleLearningOptions options;
      options.sample_rows = std::min<size_t>(w.clean.num_rows() / 10, 1500);
      options.max_interactions = w.errors * 4 + 2000;
      auto r = which == 0 ? RunRuleLearning(w.clean, w.dirty, options)
                          : RunGdr(w.clean, w.dirty, options);
      if (r.ok() && r->completed) {
        tc.push_back(static_cast<long>(r->TotalCost()));
        rep.push_back(static_cast<long>(r->cells_repaired));
      } else {
        tc.push_back(-1);
        rep.push_back(-1);
      }
    }
    print_row(which == 0 ? "RuleLearning" : "GDR", tc, rep);
  }

  // ActiveLearning through the session driver.
  tc.clear();
  rep.clear();
  for (const Workload& w : workloads) {
    SessionOptions options;
    options.budget = 5;
    options.max_updates = w.errors * 4 + 2000;
    Table working = w.dirty.Clone();
    ActiveLearningSearch algo;
    CleaningSession session(&w.clean, &working, &algo, options);
    auto m = session.Run();
    if (m.ok() && m->converged) {
      tc.push_back(static_cast<long>(m->TotalCost()));
      rep.push_back(static_cast<long>(m->initial_errors));
    } else {
      tc.push_back(-1);
      rep.push_back(-1);
    }
  }
  print_row("ActiveLearning", tc, rep);

  std::printf("%-16s", "|Q(T)|");
  for (const Workload& w : workloads) {
    std::printf(" | %13zu", w.errors);
  }
  std::printf("\n\n'-' = interaction cap hit (paper: 2h timeout).\n");
  return 0;
}
