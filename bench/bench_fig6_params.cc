// Figure 6: parameter sensitivity.
//  (a) CoDive window w — average U and A over B ∈ {2,3,5} for Soccer,
//      Hospital and Synth-10k (paper: w = 3 best, Soccer insensitive).
//  (b) Dive restart depth d on Synth-1k at B = 5 (paper: d = 3 best).
// Plus an ablation the paper motivates in prose: log-scale vs. median
// binary-jump target.
#include <cstdio>
#include <vector>

#include "bench_util.h"

#include "common/simd.h"
#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

using namespace falcon;
using bench::Workload;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  if (bench::ParseQuick(flags)) scale *= 0.25;
  if (auto rc = flags.Done("bench_fig6_params — CoDive window w and Dive depth d (Fig. 6)")) return *rc;
  bench::PrintBanner("bench_fig6_params — CoDive window w and Dive depth d",
                     "Figure 6 (a), (b)");

  // ---- (a) window w -------------------------------------------------------
  std::printf("\n--- Fig 6(a): CoDive, avg over B in {2,3,5} ---\n");
  std::printf("%-9s", "dataset");
  for (size_t w : {0u, 1u, 3u, 5u, 7u}) std::printf("   w=%zu U/A   ", w);
  std::printf("\n");
  for (const std::string& name : {std::string("Soccer"),
                                  std::string("Hospital"),
                                  std::string("Synth10k")}) {
    Workload wl = bench::MakeWorkload(name, scale);
    std::printf("%-9s", name.c_str());
    for (size_t w : {0u, 1u, 3u, 5u, 7u}) {
      double avg_u = 0;
      double avg_a = 0;
      int runs = 0;
      for (size_t budget : {2u, 3u, 5u}) {
        SessionOptions options;
        options.budget = budget;
        options.tuning.codive_window = w;
        auto m = RunCleaning(wl.clean, wl.dirty, SearchKind::kCoDive,
                             options);
        if (!m.ok() || !m->converged) continue;
        avg_u += static_cast<double>(m->user_updates);
        avg_a += static_cast<double>(m->user_answers);
        ++runs;
      }
      if (runs == 0) {
        std::printf("   %-11s", "-");
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f/%.0f", avg_u / runs,
                      avg_a / runs);
        std::printf("   %-11s", buf);
      }
    }
    std::printf("\n");
  }

  // ---- (b) depth d --------------------------------------------------------
  std::printf("\n--- Fig 6(b): Dive on Synth-1k, B=5 ---\n");
  std::printf("%4s %8s %8s %8s\n", "d", "U", "A", "T_C");
  auto synth1k = MakeSynth(1000, /*seed=*/31);
  if (synth1k.ok()) {
    auto dirty = InjectErrors(synth1k->clean, synth1k->error_spec);
    if (dirty.ok()) {
      for (size_t d : {1u, 2u, 3u, 4u, 6u}) {
        SessionOptions options;
        options.budget = 5;
        options.tuning.dive_depth = d;
        auto m = RunCleaning(synth1k->clean, dirty->dirty, SearchKind::kDive,
                             options);
        if (!m.ok() || !m->converged) continue;
        std::printf("%4zu %8zu %8zu %8zu\n", d, m->user_updates,
                    m->user_answers, m->TotalCost());
      }
    }
  }

  // ---- Ablation: binary-jump target -------------------------------------
  std::printf("\n--- Ablation: binary-jump target (Section 4.2.1) ---\n");
  std::printf("%-9s %12s %12s %12s\n", "dataset", "log T_C", "median T_C",
              "geom T_C");
  for (const std::string& name : {std::string("Soccer"),
                                  std::string("Synth10k")}) {
    Workload wl = bench::MakeWorkload(name, scale);
    size_t costs[3] = {0, 0, 0};
    const SearchTuning::JumpTarget targets[3] = {
        SearchTuning::JumpTarget::kLogScale,
        SearchTuning::JumpTarget::kMedian,
        SearchTuning::JumpTarget::kGeometric};
    for (int i = 0; i < 3; ++i) {
      SessionOptions options;
      options.budget = 3;
      options.tuning.jump_target = targets[i];
      auto m = RunCleaning(wl.clean, wl.dirty, SearchKind::kDive, options);
      if (m.ok()) costs[i] = m->TotalCost();
    }
    std::printf("%-9s %12zu %12zu %12zu\n", name.c_str(), costs[0],
                costs[1], costs[2]);
  }
  return 0;
}
