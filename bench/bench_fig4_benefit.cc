// Figure 4 (a–c): benefit of each lattice-search algorithm for budgets
// B ∈ {2, 3, 5} over the six evaluation datasets.
//
// Expected shape (paper): Dive and CoDive dominate at small budgets with
// CoDive best overall; one-hop algorithms (BFS/DFS/Ducc) only catch up on
// Hospital, whose rules sit at the bottom of the lattice; OffLine is the
// clairvoyant upper bound; all algorithms improve with B.
#include <cstdio>
#include <vector>

#include "bench_util.h"

#include "common/simd.h"
#include "core/session.h"

using namespace falcon;
using bench::Workload;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  bool quick = bench::ParseQuick(flags);
  if (quick) scale *= 0.25;
  if (auto rc = flags.Done("bench_fig4_benefit — benefit vs. algorithm and budget (Fig. 4)")) return *rc;
  bench::PrintBanner("bench_fig4_benefit — benefit vs. algorithm and budget",
                     "Figure 4 (a), (b), (c)");

  const std::vector<SearchKind> kinds = {
      SearchKind::kBfs,  SearchKind::kDfs,  SearchKind::kDucc,
      SearchKind::kDive, SearchKind::kCoDive, SearchKind::kOffline};

  for (size_t budget : {2u, 3u, 5u}) {
    std::printf("\n--- Figure 4, B = %zu ---\n", budget);
    std::printf("%-9s", "dataset");
    for (SearchKind k : kinds) std::printf(" %9s", SearchKindName(k));
    std::printf(" %8s\n", "errors");

    for (const std::string& name : bench::AllDatasetNames()) {
      Workload w = bench::MakeWorkload(name, scale);
      std::printf("%-9s", name.c_str());
      for (SearchKind kind : kinds) {
        SessionOptions options;
        options.budget = budget;
        auto m = RunCleaning(w.clean, w.dirty, kind, options);
        if (!m.ok() || !m->converged) {
          std::printf(" %9s", "-");
          continue;
        }
        std::printf(" %9.2f", m->Benefit());
      }
      std::printf(" %8zu\n", w.errors);
    }
  }
  std::printf(
      "\nBenefit = 1 - T_C/|errors| (positive means cheaper than manual "
      "repair).\n");
  return 0;
}
