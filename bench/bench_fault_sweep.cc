// Fault-sweep driver: the crash-recovery experiment behind the
// fault-tolerance subsystem. Enumerates every injectable fault site a
// cleaning run passes through (discovery pass with hit recording), crashes
// a fresh session at each chosen hit, recovers from the write-ahead
// journal, and checks the recovered run against the uninterrupted baseline
// — table CRC and the four interaction counters must match bit-for-bit.
//
// Output is one JSON document on stdout (per-site crash/recover tallies
// plus timings), so CI can archive and diff it. --quick shrinks the
// workload and samples fewer hits per site; FALCON_FAULTS=<site:nth[...]>
// additionally runs one env-armed crash/recover first, exercising the
// same flag path a production operator would use.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"

#include "common/simd.h"
#include "common/fault_injector.h"
#include "core/session.h"
#include "core/session_journal.h"

using namespace falcon;

namespace {

struct Baseline {
  SessionMetrics metrics;
  uint32_t table_crc = 0;
  std::vector<std::pair<std::string, size_t>> hits;
};

struct SweepTally {
  size_t crashes = 0;
  size_t recoveries = 0;
  size_t identical = 0;
  double recover_ms = 0.0;
};

bool MatchesBaseline(const SessionMetrics& m, uint32_t crc,
                     const Baseline& base) {
  return m.user_updates == base.metrics.user_updates &&
         m.user_answers == base.metrics.user_answers &&
         m.cells_repaired == base.metrics.cells_repaired &&
         m.queries_applied == base.metrics.queries_applied &&
         m.converged == base.metrics.converged && crc == base.table_crc;
}

Baseline RunBaseline(const bench::Workload& w, const SessionOptions& opt) {
  FaultInjector::Global().Reset();
  FaultInjector::Global().set_recording(true);
  Table dirty = w.dirty.Clone();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto m = session.Run();
  Baseline base;
  if (m.ok()) base.metrics = *m;
  base.table_crc = TableContentsCrc(dirty);
  base.hits = FaultInjector::Global().Counts();
  FaultInjector::Global().set_recording(false);
  FaultInjector::Global().Reset();
  return base;
}

// One crash/recover cycle; faults must already be armed. Returns true when
// the recovered outcome is bit-identical to the baseline.
bool CrashAndRecover(const bench::Workload& w, const SessionOptions& opt,
                     const Baseline& base, SweepTally& tally) {
  Table dirty = w.dirty.Clone();
  {
    auto algo = MakeSearchAlgorithm(SearchKind::kDive);
    CleaningSession session(&w.clean, &dirty, algo.get(), opt);
    auto m = session.Run();
    FaultInjector::Global().Reset();
    if (m.ok()) return MatchesBaseline(*m, TableContentsCrc(dirty), base);
    ++tally.crashes;
  }
  auto t0 = std::chrono::steady_clock::now();
  auto algo = MakeSearchAlgorithm(SearchKind::kDive);
  CleaningSession session(&w.clean, &dirty, algo.get(), opt);
  auto recovered = session.Recover();
  auto t1 = std::chrono::steady_clock::now();
  tally.recover_ms +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (!recovered.ok()) return false;
  ++tally.recoveries;
  bool same = MatchesBaseline(*recovered, TableContentsCrc(dirty), base);
  if (same) ++tally.identical;
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  bool quick = bench::ParseQuick(flags);
  if (auto rc = flags.Done("bench_fault_sweep — crash/recover bit-identity sweep over journal fault sites")) return *rc;
  const char* env_faults = std::getenv("FALCON_FAULTS");

  bench::Workload w =
      bench::MakeWorkload("Synth10k", scale * (quick ? 0.02 : 0.08));
  std::string journal = "/tmp/falcon_bench_fault_sweep.journal";

  std::printf("{\n  \"bench\": \"fault_sweep\",\n");
  std::printf("  \"meta\": %s,\n", bench::BenchMeta().Serialize().c_str());
  std::printf("  \"rows\": %zu,\n  \"errors\": %zu,\n", w.clean.num_rows(),
              w.errors);

  bool all_ok = true;
  for (bool posting_delta : {true, false}) {
    SessionOptions opt;
    opt.budget = 3;
    opt.posting_delta = posting_delta;
    opt.update_mistake_prob = 0.2;
    opt.question_mistake_prob = 0.05;
    opt.journal_path = journal;

    // FALCON_FAULTS smoke: one crash/recover with the operator-facing env
    // arming (Global() parsed it at first use; Reset() disarms it after).
    if (env_faults != nullptr && posting_delta) {
      Baseline base = RunBaseline(w, opt);
      Status armed = FaultInjector::Global().ArmFromFlag(env_faults);
      SweepTally env_tally;
      bool same = armed.ok() && CrashAndRecover(w, opt, base, env_tally);
      all_ok = all_ok && same;
      std::printf("  \"env_faults\": {\"spec\": \"%s\", \"crashed\": %zu, "
                  "\"recovered_identical\": %s},\n",
                  env_faults, env_tally.crashes, same ? "true" : "false");
    }

    Baseline base = RunBaseline(w, opt);
    std::printf("  \"%s\": {\n",
                posting_delta ? "posting_delta" : "posting_invalidate");
    std::printf("    \"baseline\": {\"user_updates\": %zu, "
                "\"user_answers\": %zu, \"cells_repaired\": %zu, "
                "\"queries_applied\": %zu, \"converged\": %s},\n",
                base.metrics.user_updates, base.metrics.user_answers,
                base.metrics.cells_repaired, base.metrics.queries_applied,
                base.metrics.converged ? "true" : "false");
    std::printf("    \"sites\": {\n");
    bool first_site = true;
    for (const auto& [site, count] : base.hits) {
      std::set<size_t> picks = {1, count};
      size_t stride =
          quick ? std::max<size_t>(1, count / 4) : std::max<size_t>(1, count / 16);
      for (size_t nth = 1; nth <= count; nth += stride) picks.insert(nth);
      SweepTally tally;
      bool site_ok = true;
      for (size_t nth : picks) {
        FaultInjector::Global().Reset();
        FaultInjector::Global().Arm(
            {site, nth, /*count=*/1, StatusCode::kIoError});
        site_ok = CrashAndRecover(w, opt, base, tally) && site_ok;
      }
      all_ok = all_ok && site_ok;
      std::printf("%s      \"%s\": {\"hits\": %zu, \"crash_points\": %zu, "
                  "\"crashes\": %zu, \"recoveries\": %zu, "
                  "\"identical\": %zu, \"recover_ms\": %.2f}",
                  first_site ? "" : ",\n", site.c_str(), count, picks.size(),
                  tally.crashes, tally.recoveries, tally.identical,
                  tally.recover_ms);
      first_site = false;
    }
    std::printf("\n    }\n  },\n");
  }
  std::printf("  \"all_identical\": %s\n}\n", all_ok ? "true" : "false");
  std::remove(journal.c_str());
  return all_ok ? 0 : 1;
}
