// Figure 7: benefit of CoDive (B=5) against the four baselines — Refine
// (OpenRefine-style standardization), RuleLearning (sample + CFD mining),
// GDR (guided per-cell confirmation) and ActiveLearning (SVM over lattice
// nodes).
//
// Expected shape (paper): CoDive wins everywhere; Refine completes but at
// near-manual cost; RuleLearning/GDR repair only part of the errors; the
// interactive tools hit the interaction cap ("timeout") on the largest
// datasets.
#include <cstdio>

#include "baselines/active_learning.h"
#include "baselines/refine.h"
#include "baselines/rule_learning.h"
#include "bench_util.h"

#include "common/simd.h"
#include "core/session.h"

using namespace falcon;
using bench::Workload;

namespace {

struct Row {
  const char* name;
  double benefit = 0;
  bool ok = false;
};

// Benefit with manual completion: a tool that leaves errors unrepaired
// forces the user to fix the remainder by hand, one action per cell (this
// is how the paper's benefit can be compared across complete and
// incomplete tools).
double EffectiveBenefit(size_t total_cost, size_t repaired, size_t errors) {
  size_t manual = errors > repaired ? errors - repaired : 0;
  return 1.0 - static_cast<double>(total_cost + manual) /
                   static_cast<double>(errors);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  if (bench::ParseQuick(flags)) scale *= 0.25;
  if (auto rc = flags.Done("bench_fig7_baselines — CoDive vs. the four baselines (Fig. 7)")) return *rc;
  bench::PrintBanner("bench_fig7_baselines — CoDive vs. the four baselines",
                     "Figure 7");

  std::printf("%-9s %9s %9s %9s %9s %9s %8s\n", "dataset", "CoDive",
              "Refine", "RuleLrn", "GDR", "ActiveL", "errors");

  for (const std::string& name : bench::AllDatasetNames()) {
    Workload w = bench::MakeWorkload(name, scale);
    // Interaction cap standing in for the paper's 2h timeout.
    size_t cap = w.errors * 4 + 2000;

    Row rows[5] = {{"CoDive"}, {"Refine"}, {"RuleLrn"}, {"GDR"}, {"ActiveL"}};

    SessionOptions codive;
    codive.budget = 5;
    auto m = RunCleaning(w.clean, w.dirty, SearchKind::kCoDive, codive);
    if (m.ok() && m->converged) {
      rows[0].benefit = m->Benefit();
      rows[0].ok = true;
    }

    auto refine = RunRefine(w.clean, w.dirty);
    if (refine.ok()) {
      rows[1].benefit = EffectiveBenefit(refine->TotalCost(),
                                         refine->cells_repaired, w.errors);
      rows[1].ok = true;
    }

    RuleLearningOptions rl_opts;
    rl_opts.sample_rows = std::min<size_t>(w.clean.num_rows() / 10, 1500);
    rl_opts.max_interactions = cap;
    auto rl = RunRuleLearning(w.clean, w.dirty, rl_opts);
    if (rl.ok() && rl->completed) {
      rows[2].benefit =
          EffectiveBenefit(rl->TotalCost(), rl->cells_repaired, w.errors);
      rows[2].ok = true;
    }

    auto gdr = RunGdr(w.clean, w.dirty, rl_opts);
    if (gdr.ok() && gdr->completed) {
      rows[3].benefit =
          EffectiveBenefit(gdr->TotalCost(), gdr->cells_repaired, w.errors);
      rows[3].ok = true;
    }

    {
      SessionOptions al_opts;
      al_opts.budget = 5;
      al_opts.max_updates = cap;
      Table working = w.dirty.Clone();
      ActiveLearningSearch algo;
      CleaningSession session(&w.clean, &working, &algo, al_opts);
      auto am = session.Run();
      if (am.ok() && am->converged) {
        rows[4].benefit = am->Benefit();
        rows[4].ok = true;
      }
    }

    std::printf("%-9s", name.c_str());
    for (const Row& r : rows) {
      if (r.ok) {
        std::printf(" %9.2f", r.benefit);
      } else {
        std::printf(" %9s", "timeout");
      }
    }
    std::printf(" %8zu\n", w.errors);
  }
  std::printf(
      "\n'timeout' = hit the interaction cap (the paper's missing bars).\n"
      "Benefit charges incomplete tools one manual action per unrepaired "
      "cell.\n");
  return 0;
}
