// Figure 5: impact of the closed-rule-sets optimization (Section 5.2) on
// user updates U and answers A at B = 2, for Soccer, Hospital and
// Synth-10k.
//
// Expected shape (paper): every algorithm's cost drops (or stays) with the
// optimization on; DFS benefits most because low budgets strand it at
// shallow lattice levels whose representative rules are more specific.
#include <cstdio>
#include <vector>

#include "bench_util.h"

#include "common/simd.h"
#include "core/session.h"

using namespace falcon;
using bench::Workload;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  if (bench::ParseQuick(flags)) scale *= 0.25;
  if (auto rc = flags.Done("bench_fig5_closed_sets — closed rule-set optimization (Fig. 5)")) return *rc;
  bench::PrintBanner(
      "bench_fig5_closed_sets — closed rule sets on/off, B=2", "Figure 5");

  const std::vector<SearchKind> kinds = {SearchKind::kBfs, SearchKind::kDfs,
                                         SearchKind::kDive,
                                         SearchKind::kCoDive};

  for (const std::string& name : {std::string("Soccer"),
                                  std::string("Hospital"),
                                  std::string("Synth10k")}) {
    Workload w = bench::MakeWorkload(name, scale);
    std::printf("\n--- %s (%zu errors) ---\n", name.c_str(), w.errors);
    std::printf("%-9s %10s %10s %12s %12s %8s\n", "algo", "U(on)", "A(on)",
                "U(off)", "A(off)", "ΔT_C");
    for (SearchKind kind : kinds) {
      SessionOptions on;
      on.budget = 2;
      on.use_closed_sets = true;
      SessionOptions off = on;
      off.use_closed_sets = false;
      auto m_on = RunCleaning(w.clean, w.dirty, kind, on);
      auto m_off = RunCleaning(w.clean, w.dirty, kind, off);
      if (!m_on.ok() || !m_off.ok()) continue;
      long delta = static_cast<long>(m_off->TotalCost()) -
                   static_cast<long>(m_on->TotalCost());
      std::printf("%-9s %10zu %10zu %12zu %12zu %+8ld\n",
                  SearchKindName(kind), m_on->user_updates,
                  m_on->user_answers, m_off->user_updates,
                  m_off->user_answers, delta);
    }
  }
  std::printf("\nΔT_C > 0 means the optimization saved interactions.\n");
  return 0;
}
