// Ablations for this repo's extensions beyond the paper's evaluation:
//  (1) posting-index caching of predicate bitmaps (lattice build time);
//  (2) cross-update rule history biasing CoDive (§8 future work);
//  (3) master-data coverage sweep (Appendix B) shifting questions from the
//      user to the master relation.
#include <cstdio>

#include "bench_util.h"

#include "common/simd.h"
#include "common/rng.h"
#include "core/session.h"

using namespace falcon;

namespace {

Table SampleMaster(const Table& clean, double coverage, uint64_t seed) {
  Table master("master", clean.schema(), clean.pool());
  Rng rng(seed);
  std::vector<ValueId> ids(clean.num_cols());
  for (size_t r = 0; r < clean.num_rows(); ++r) {
    if (!rng.NextBool(coverage)) continue;
    for (size_t c = 0; c < clean.num_cols(); ++c) ids[c] = clean.cell(r, c);
    master.AppendRowIds(ids);
  }
  return master;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  if (bench::ParseQuick(flags)) scale *= 0.25;
  if (auto rc = flags.Done("bench_ext_ablations — repo-extension ablations (rule history, detector mode)")) return *rc;
  bench::PrintBanner("bench_ext_ablations — repo extensions",
                     "Appendix B + Section 8 (extensions)");

  // ---- (1) posting index --------------------------------------------------
  std::printf("\n--- Posting-index caching (Dive, B=3) ---\n");
  std::printf("%-9s %16s %16s %9s\n", "dataset", "indexed build ms",
              "scan build ms", "speedup");
  for (const std::string& name : {std::string("Hospital"),
                                  std::string("Synth1M")}) {
    bench::Workload w = bench::MakeWorkload(name, scale);
    SessionOptions indexed;
    indexed.budget = 3;
    SessionOptions scanning = indexed;
    scanning.use_posting_index = false;
    auto mi = RunCleaning(w.clean, w.dirty, SearchKind::kDive, indexed);
    auto ms = RunCleaning(w.clean, w.dirty, SearchKind::kDive, scanning);
    if (!mi.ok() || !ms.ok()) continue;
    std::printf("%-9s %16.1f %16.1f %8.2fx\n", name.c_str(),
                mi->lattice_build_ms, ms->lattice_build_ms,
                ms->lattice_build_ms / std::max(mi->lattice_build_ms, 1e-9));
  }

  // ---- (2) rule history ---------------------------------------------------
  std::printf("\n--- Rule history biasing CoDive (B=3) ---\n");
  std::printf("%-9s %10s %10s %10s\n", "dataset", "off T_C", "on T_C",
              "saved");
  for (const std::string& name : {std::string("Synth10k"),
                                  std::string("BUS"), std::string("DBLP")}) {
    bench::Workload w = bench::MakeWorkload(name, scale);
    SessionOptions off;
    off.budget = 3;
    SessionOptions on = off;
    on.use_rule_history = true;
    auto m_off = RunCleaning(w.clean, w.dirty, SearchKind::kCoDive, off);
    auto m_on = RunCleaning(w.clean, w.dirty, SearchKind::kCoDive, on);
    if (!m_off.ok() || !m_on.ok()) continue;
    std::printf("%-9s %10zu %10zu %+10ld\n", name.c_str(),
                m_off->TotalCost(), m_on->TotalCost(),
                static_cast<long>(m_off->TotalCost()) -
                    static_cast<long>(m_on->TotalCost()));
  }

  // ---- (3) master data ----------------------------------------------------
  std::printf("\n--- Master-data coverage (CoDive, B=3, Synth10k) ---\n");
  std::printf("%9s %8s %8s %8s %9s %14s\n", "coverage", "U", "A", "T_C",
              "benefit", "master answers");
  {
    bench::Workload w = bench::MakeWorkload("Synth10k", scale);
    for (double coverage : {0.0, 0.5, 0.75, 0.95}) {
      Table master = SampleMaster(w.clean, coverage, 77);
      SessionOptions options;
      options.budget = 3;
      if (coverage > 0.0) options.master = &master;
      Table working = w.dirty.Clone();
      auto algo = MakeSearchAlgorithm(SearchKind::kCoDive);
      CleaningSession session(&w.clean, &working, algo.get(), options);
      auto m = session.Run();
      if (!m.ok()) continue;
      std::printf("%8.0f%% %8zu %8zu %8zu %9.2f %14zu\n", coverage * 100,
                  m->user_updates, m->user_answers, m->TotalCost(),
                  m->Benefit(), m->master_answers);
    }
  }
  return 0;
}
