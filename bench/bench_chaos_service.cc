// Service-layer chaos harness: N analysts drive cleaning sessions against
// a real falcon_serverd child process while a killer thread SIGKILLs the
// daemon at sampled points mid-workload and restarts it. Every analyst
// rides a ResilientClient (reconnect + `open_session {"resume"}` +
// seq-stamped idempotent retries); the daemon replays each session's
// journal on restart. The acceptance gate: after >= --min_kills unclean
// daemon deaths, every session's final table CRC and interaction counters
// must be bit-identical to an uninterrupted in-process serial run with the
// same seed — in BOTH posting-index maintenance modes.
//
// The workload is step-driven on purpose: queued-but-unconsumed external
// answers/updates live only in daemon memory and are documented as
// volatile across a crash (see DESIGN.md), so the chaos oracle is the
// deterministic fallback, exactly like the serial baseline's.
//
// Usage (from the build directory):
//   bench/bench_chaos_service --serverd=src/service/falcon_serverd --quick
// Writes BENCH_chaos_service.json; exits nonzero on any divergence or if
// fewer than --min_kills kills landed while the workload was in flight.
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fcntl.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

#include "common/rng.h"
#include "common/simd.h"
#include "common/socket.h"
#include "core/session.h"
#include "service/resilient_client.h"
#include "service/session_manager.h"

using namespace falcon;

namespace {

struct Baseline {
  SessionMetrics metrics;
  uint32_t table_crc = 0;
};

Baseline RunSerial(const bench::Workload& w, uint64_t seed,
                   bool posting_delta) {
  SessionOptions options;
  options.seed = seed;
  options.posting_delta = posting_delta;
  Table working = w.dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(SearchKind::kCoDive);
  CleaningSession session(&w.clean, &working, algorithm.get(), options);
  auto metrics = session.Run();
  FALCON_CHECK(metrics.ok());
  return Baseline{*metrics, TableContentsCrc(working)};
}

struct AnalystOutcome {
  bool ok = false;
  std::string error;
  int64_t user_updates = 0;
  int64_t user_answers = 0;
  int64_t cells_repaired = 0;
  int64_t queries_applied = 0;
  bool converged = false;
  uint32_t table_crc = 0;
  size_t steps = 0;
  ResilientClient::Stats stats;
};

/// One analyst: open → step(1) until finished → close, all through the
/// resilient client so daemon deaths turn into resumes, not failures.
AnalystOutcome RunAnalyst(const std::string& socket_path,
                          const std::string& dataset, double scale,
                          uint64_t seed, bool posting_delta,
                          int64_t step_delay_ms,
                          std::atomic<size_t>* steps_done) {
  AnalystOutcome out;
  ResilientClientOptions copts;
  copts.unix_path = socket_path;
  // Tight enough that a request caught in a kill window (written into a
  // doomed socket's buffer, never dispatched) costs seconds, not the
  // default 30 s, before the retry machinery takes over.
  copts.deadline_ms = 5000;
  // Generous: a kill can land while the client is mid-backoff, and the
  // respawn takes a moment. The per-attempt backoff is capped, so even 60
  // attempts bound the worst-case wait to about two minutes.
  copts.max_attempts = 60;
  copts.jitter_seed = seed;
  ResilientClient client(copts);

  SessionManager::OpenParams params;
  params.dataset = dataset;
  params.scale = scale;
  params.seed = seed;
  params.posting_delta = posting_delta;
  auto opened = client.OpenSession(params);
  if (!opened.ok()) {
    out.error = "open: " + opened.status().ToString();
    return out;
  }

  for (size_t i = 0; i < 100000; ++i) {
    auto r = client.Step(1);
    if (!r.ok()) {
      out.error = "step: " + r.status().ToString();
      return out;
    }
    ++out.steps;
    steps_done->fetch_add(1, std::memory_order_relaxed);
    if (step_delay_ms > 0 && !r->GetBool("finished")) {
      // Analyst think time: paces the workload so the killer gets its
      // full quota of mid-flight kill points even at smoke scales.
      std::this_thread::sleep_for(std::chrono::milliseconds(step_delay_ms));
    }
    if (r->GetBool("finished")) {
      const JsonValue* metrics = r->Find("metrics");
      if (metrics == nullptr) {
        out.error = "step response missing metrics";
        return out;
      }
      out.user_updates = metrics->GetInt("user_updates");
      out.user_answers = metrics->GetInt("user_answers");
      out.cells_repaired = metrics->GetInt("cells_repaired");
      out.queries_applied = metrics->GetInt("queries_applied");
      out.converged = metrics->GetBool("converged");
      out.table_crc = static_cast<uint32_t>(r->GetInt("table_crc"));
      Status closed = client.CloseSession();
      if (!closed.ok()) {
        out.error = "close: " + closed.ToString();
        return out;
      }
      out.ok = true;
      out.stats = client.stats();
      return out;
    }
  }
  out.error = "session never finished";
  return out;
}

/// Forks and execs falcon_serverd, stdout/stderr appended to `log_path`.
pid_t SpawnServer(const std::string& serverd, const std::string& socket,
                  const std::string& journal_dir, size_t max_sessions,
                  const std::string& log_path) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  int fd = ::open(log_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    ::close(fd);
  }
  std::string a_socket = "--socket=" + socket;
  std::string a_journal = "--journal_dir=" + journal_dir;
  std::string a_sessions =
      "--max_sessions=" + std::to_string(max_sessions);
  std::string a_workers = "--workers=" + std::to_string(max_sessions);
  std::vector<char*> argv = {
      const_cast<char*>(serverd.c_str()),
      const_cast<char*>(a_socket.c_str()),
      const_cast<char*>(a_journal.c_str()),
      const_cast<char*>(a_sessions.c_str()),
      const_cast<char*>(a_workers.c_str()),
      nullptr,
  };
  ::execv(serverd.c_str(), argv.data());
  std::perror("execv falcon_serverd");
  ::_exit(127);
}

/// Polls until the daemon accepts connections (or ~10 s elapse).
bool WaitReady(const std::string& socket) {
  for (int i = 0; i < 1000; ++i) {
    auto conn = ConnectUnix(socket);
    if (conn.ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

struct ModeResult {
  bool identical = true;
  size_t kills = 0;
  size_t resumes = 0;
  size_t retries = 0;
  size_t seq_resyncs = 0;
  double wall_s = 0;
  std::string failure;
};

ModeResult RunChaosMode(const std::string& serverd,
                        const std::string& socket,
                        const std::string& journal_dir,
                        const std::string& log_path,
                        const bench::Workload& w, const std::string& dataset,
                        double scale, uint64_t base_seed, size_t analysts,
                        size_t target_kills, bool posting_delta,
                        int64_t step_delay_ms) {
  ModeResult result;
  // Start from an empty journal directory: each mode is its own world.
  ::mkdir(journal_dir.c_str(), 0755);

  // Session slots: one per analyst plus slack for sessions leaked by a
  // kill landing between open_session execution and the response read
  // (open of a FRESH session is the one non-idempotent verb).
  pid_t server = SpawnServer(serverd, socket, journal_dir,
                             analysts * 2 + 2, log_path);
  if (server < 0 || !WaitReady(socket)) {
    result.identical = false;
    result.failure = "daemon never became ready";
    return result;
  }

  std::atomic<size_t> steps_done{0};
  std::atomic<bool> workload_done{false};
  std::atomic<size_t> kills{0};

  // The killer: once the workload has made some progress, SIGKILL the
  // daemon at deterministically-jittered sample points, respawn it, and
  // let startup recovery + client resumes carry the sessions across.
  std::thread killer([&] {
    Rng rng(base_seed * 7919 + (posting_delta ? 1 : 2));
    while (!workload_done.load(std::memory_order_relaxed) &&
           kills.load(std::memory_order_relaxed) < target_kills) {
      // Sample a kill point: wait for fresh forward progress so every
      // kill lands mid-workload, then add jitter so the points spread
      // across episode boundaries, journal appends, and in-flight RPCs.
      size_t mark = steps_done.load(std::memory_order_relaxed);
      int waited = 0;
      while (!workload_done.load(std::memory_order_relaxed) &&
             (steps_done.load(std::memory_order_relaxed) <= mark ||
              waited < 50)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        waited += 10;
        if (waited > 15000) break;  // Stalled; kill anyway.
      }
      if (workload_done.load(std::memory_order_relaxed)) break;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(rng.NextInt(0, 120)));
      if (workload_done.load(std::memory_order_relaxed)) break;

      ::kill(server, SIGKILL);
      int wstatus = 0;
      ::waitpid(server, &wstatus, 0);
      kills.fetch_add(1, std::memory_order_relaxed);
      server = SpawnServer(serverd, socket, journal_dir,
                           analysts * 2 + 2, log_path);
      if (server < 0 || !WaitReady(socket)) {
        std::fprintf(stderr, "chaos: daemon respawn failed\n");
        return;
      }
    }
  });

  auto t0 = std::chrono::steady_clock::now();
  std::vector<AnalystOutcome> outcomes(analysts);
  {
    std::vector<std::thread> threads;
    threads.reserve(analysts);
    for (size_t i = 0; i < analysts; ++i) {
      threads.emplace_back([&, i] {
        outcomes[i] = RunAnalyst(socket, dataset, scale, base_seed + i,
                                 posting_delta, step_delay_ms, &steps_done);
      });
    }
    for (auto& t : threads) t.join();
  }
  workload_done.store(true, std::memory_order_relaxed);
  killer.join();
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  result.kills = kills.load();

  // Clean shutdown of the final incarnation.
  ::kill(server, SIGTERM);
  int wstatus = 0;
  ::waitpid(server, &wstatus, 0);

  for (size_t i = 0; i < analysts; ++i) {
    const AnalystOutcome& got = outcomes[i];
    result.resumes += got.stats.resumes;
    result.retries += got.stats.retries;
    result.seq_resyncs += got.stats.seq_resyncs;
    if (!got.ok) {
      result.identical = false;
      result.failure = "analyst " + std::to_string(i) + ": " + got.error;
      std::fprintf(stderr, "chaos analyst %zu failed: %s\n", i,
                   got.error.c_str());
      continue;
    }
    Baseline want = RunSerial(w, base_seed + i, posting_delta);
    bool same =
        got.user_updates ==
            static_cast<int64_t>(want.metrics.user_updates) &&
        got.user_answers ==
            static_cast<int64_t>(want.metrics.user_answers) &&
        got.cells_repaired ==
            static_cast<int64_t>(want.metrics.cells_repaired) &&
        got.queries_applied ==
            static_cast<int64_t>(want.metrics.queries_applied) &&
        got.converged == want.metrics.converged &&
        got.table_crc == want.table_crc;
    if (!same) {
      result.identical = false;
      result.failure = "analyst " + std::to_string(i) + " diverged";
      std::fprintf(
          stderr,
          "chaos analyst %zu diverged: got U=%lld A=%lld repaired=%lld "
          "applied=%lld crc=%u; want U=%zu A=%zu repaired=%zu applied=%zu "
          "crc=%u\n",
          i, static_cast<long long>(got.user_updates),
          static_cast<long long>(got.user_answers),
          static_cast<long long>(got.cells_repaired),
          static_cast<long long>(got.queries_applied), got.table_crc,
          want.metrics.user_updates, want.metrics.user_answers,
          want.metrics.cells_repaired, want.metrics.queries_applied,
          want.table_crc);
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  bool quick = bench::ParseQuick(flags);
  std::string serverd = flags.GetString(
      "serverd", "src/service/falcon_serverd",
      "path to the falcon_serverd binary to torture");
  std::string dataset =
      flags.GetString("dataset", "Synth10k", "workload dataset name");
  size_t analysts = static_cast<size_t>(
      flags.GetInt("analysts", 3, "concurrent analyst clients"));
  size_t min_kills = static_cast<size_t>(flags.GetInt(
      "min_kills", 5, "required SIGKILLs landed mid-workload per mode"));
  uint64_t base_seed = static_cast<uint64_t>(
      flags.GetInt("seed", 4242, "base RNG seed (analyst i uses seed+i)"));
  int64_t step_delay_ms = flags.GetInt(
      "step_delay_ms", 25, "per-step analyst think time; paces the "
                           "workload so all kills land mid-flight");
  if (auto rc = flags.Done(
          "bench_chaos_service — SIGKILL falcon_serverd mid-workload, "
          "restart, resume, and require bit-identical outcomes")) {
    return *rc;
  }

  if (::access(serverd.c_str(), X_OK) != 0) {
    std::fprintf(stderr,
                 "no executable falcon_serverd at --serverd=%s (run from "
                 "the build directory or pass the path)\n",
                 serverd.c_str());
    return 2;
  }

  double dataset_scale = scale * (quick ? 0.02 : 0.05);
  std::string tag = std::to_string(static_cast<long>(::getpid()));
  std::string socket = "/tmp/falcon_chaos_" + tag + ".sock";
  std::string log_path = "/tmp/falcon_chaos_" + tag + ".log";

  bench::PrintBanner(
      "bench_chaos_service — crash-recovery torture for the service layer",
      "daemon SIGKILL + journal replay + idempotent client resume");

  bench::Workload w = bench::MakeWorkload(dataset, dataset_scale);
  std::printf("dataset=%s rows=%zu errors=%zu analysts=%zu min_kills=%zu "
              "serverd=%s\n",
              dataset.c_str(), w.clean.num_rows(), w.errors, analysts,
              min_kills, serverd.c_str());

  signal(SIGPIPE, SIG_IGN);

  bool all_identical = true;
  bool enough_kills = true;
  JsonValue modes = JsonValue::Array();
  std::printf("\n%-18s %8s %8s %8s %10s %8s %10s\n", "mode", "kills",
              "resumes", "retries", "seq_resync", "wall_s", "identical");
  for (bool posting_delta : {true, false}) {
    const char* name = posting_delta ? "posting_delta" : "posting_rescan";
    std::string journal_dir = "/tmp/falcon_chaos_" + tag + "_" + name;
    ModeResult r = RunChaosMode(serverd, socket, journal_dir, log_path, w,
                                dataset, dataset_scale, base_seed, analysts,
                                min_kills, posting_delta, step_delay_ms);
    all_identical = all_identical && r.identical;
    enough_kills = enough_kills && r.kills >= min_kills;
    std::printf("%-18s %8zu %8zu %8zu %10zu %8.2f %10s\n", name, r.kills,
                r.resumes, r.retries, r.seq_resyncs, r.wall_s,
                r.identical ? "yes" : "NO");
    if (r.kills < min_kills) {
      std::fprintf(stderr,
                   "chaos (%s): only %zu/%zu kills landed before the "
                   "workload finished — raise --scale or --analysts\n",
                   name, r.kills, min_kills);
    }

    JsonValue mode = JsonValue::Object();
    mode.Set("mode", std::string(name));
    mode.Set("kills", r.kills);
    mode.Set("resumes", r.resumes);
    mode.Set("retries", r.retries);
    mode.Set("seq_resyncs", r.seq_resyncs);
    mode.Set("wall_s", r.wall_s);
    mode.Set("identical_to_serial", r.identical);
    if (!r.failure.empty()) mode.Set("failure", r.failure);
    modes.Append(std::move(mode));
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "chaos_service");
  doc.Set("meta", bench::BenchMeta());
  doc.Set("dataset", dataset);
  doc.Set("rows", w.clean.num_rows());
  doc.Set("analysts", analysts);
  doc.Set("min_kills", min_kills);
  doc.Set("modes", std::move(modes));
  doc.Set("all_identical", all_identical);
  doc.Set("enough_kills", enough_kills);
  FILE* f = std::fopen("BENCH_chaos_service.json", "w");
  if (f != nullptr) {
    std::string text = doc.Serialize();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote BENCH_chaos_service.json (daemon log: %s)\n",
                log_path.c_str());
  }
  std::printf("chaos verdict: %s\n",
              !all_identical       ? "DIVERGED — RECOVERY BROKEN"
              : !enough_kills      ? "inconclusive (too few kills)"
                                   : "bit-identical under fire");
  return (all_identical && enough_kills) ? 0 : 1;
}
