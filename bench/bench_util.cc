#include "bench_util.h"

#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/logging.h"

namespace falcon {
namespace bench {

double ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      double s = std::atof(argv[i] + 8);
      if (s > 0) return s;
    }
  }
  return 1.0;
}

bool ParseQuick(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

Workload MakeWorkload(const std::string& name, double scale) {
  auto rows = [scale](size_t base) {
    size_t n = static_cast<size_t>(static_cast<double>(base) * scale);
    return n < 500 ? 500 : n;
  };

  StatusOr<Dataset> ds = Status::InvalidArgument("unknown dataset " + name);
  if (name == "Soccer") {
    ds = MakeSoccer();
  } else if (name == "Hospital") {
    ds = MakeHospital(rows(10000));
  } else if (name == "Synth10k") {
    ds = MakeSynth(rows(10000));
  } else if (name == "Synth1M") {
    // Paper: 1M tuples. Default harness scale runs 50k; --scale grows it.
    ds = MakeSynth(rows(50000), /*seed=*/29);
  } else if (name == "DBLP") {
    ds = MakeDblp(rows(20000));
  } else if (name == "BUS") {
    ds = MakeBus(rows(12000));
  }
  FALCON_CHECK(ds.ok());

  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  FALCON_CHECK(dirty.ok());

  Workload w;
  w.name = name;
  w.clean = std::move(ds->clean);
  w.dirty = std::move(dirty->dirty);
  w.errors = dirty->errors.size();
  w.patterns = dirty->injected_patterns.size();
  return w;
}

std::vector<std::string> AllDatasetNames() {
  return {"Soccer", "Hospital", "Synth10k", "Synth1M", "DBLP", "BUS"};
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s (FALCON, SIGMOD 2016)\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace falcon
