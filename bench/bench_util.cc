#include "bench_util.h"

#include "common/simd.h"

#include <cstdio>
#include <ctime>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

// Configure-time provenance (set in bench/CMakeLists.txt); "unknown" when
// built outside the CMake tree.
#ifndef FALCON_GIT_SHA
#define FALCON_GIT_SHA "unknown"
#endif
#ifndef FALCON_BUILD_TYPE
#define FALCON_BUILD_TYPE "unknown"
#endif

namespace falcon {
namespace bench {

double ParseScale(const Flags& flags) {
  double s = flags.GetDouble("scale", 1.0,
                             "dataset scale factor (2 = paper sizes)");
  return s > 0 ? s : 1.0;
}

bool ParseQuick(const Flags& flags) {
  return flags.GetBool("quick", false, "shrink datasets for smoke runs");
}

Workload MakeWorkload(const std::string& name, double scale) {
  StatusOr<CleaningWorkload> w = MakeCleaningWorkload(name, scale);
  FALCON_CHECK(w.ok());
  return std::move(w).value();
}

std::vector<std::string> AllDatasetNames() { return AllWorkloadNames(); }

JsonValue BenchMeta() {
  JsonValue meta = JsonValue::Object();
  meta.Set("git_sha", FALCON_GIT_SHA);
  meta.Set("build_type", FALCON_BUILD_TYPE);
  // Debug numbers must never silently enter the perf trajectory: flag them
  // in the artifact and shout on stderr so CI reviewers can't miss it.
  bool debug_build = std::string_view(FALCON_BUILD_TYPE) != "Release" &&
                     std::string_view(FALCON_BUILD_TYPE) != "RelWithDebInfo";
  meta.Set("debug_build", debug_build);
  if (debug_build) {
    std::fprintf(stderr,
                 "WARNING: bench built as '%s' (not Release) — timings are "
                 "NOT comparable; the JSON is tagged \"debug_build\": true\n",
                 FALCON_BUILD_TYPE);
  }
  meta.Set("threads", ThreadPool::Global().num_threads());
  // The SIMD tier the run actually executed with (CPUID-detected, possibly
  // forced down via --simd_level / FALCON_SIMD_LEVEL) — kernel timings are
  // only comparable within a tier.
  meta.Set("simd_level", simd::LevelName(simd::ActiveLevel()));
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
  meta.Set("timestamp", stamp);
  return meta;
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s (FALCON, SIGMOD 2016)\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace falcon
