// Table 5 (Appendix D.1): correlation ranking of attribute sets when the
// Soccer Stadium attribute is updated. Enumerates candidate LHS sets (size
// 1–3 over the other attributes) and prints them ordered by cor(X,
// Stadium).
//
// Expected shape (paper): club/manager-related sets rank at the top with
// score 1 (soft FDs); Position-style noise attributes rank at the bottom
// with near-zero scores.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"

#include "common/simd.h"
#include "profiling/correlation.h"

using namespace falcon;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  if (auto rc = flags.Done("bench_table5_correlation — correlated-attribute profiling (Table 5)")) return *rc;
  bench::PrintBanner(
      "bench_table5_correlation — cor(X, Stadium) ranking on Soccer",
      "Table 5 (Appendix D.1)");
  bench::Workload w = bench::MakeWorkload("Soccer", scale);

  const Table& t = w.dirty;
  int target_i = t.schema().AttrIndex("Stadium");
  if (target_i < 0) return 1;
  size_t target = static_cast<size_t>(target_i);

  std::vector<size_t> others;
  for (size_t c = 0; c < t.num_cols(); ++c) {
    if (c == target) continue;
    // Skip key-like columns (Player): a key soft-FDs everything and would
    // flood the top ranks with degenerate sets (CORDS prunes keys too).
    if (t.DistinctCount(c) * 10 > t.num_rows() * 9) continue;
    others.push_back(c);
  }

  CordsProfiler profiler(&t);
  struct Scored {
    std::vector<size_t> cols;
    double score;
  };
  std::vector<Scored> scored;
  // All subsets of size 1..3.
  for (size_t i = 0; i < others.size(); ++i) {
    scored.push_back({{others[i]}, 0});
    for (size_t j = i + 1; j < others.size(); ++j) {
      scored.push_back({{others[i], others[j]}, 0});
      for (size_t k = j + 1; k < others.size(); ++k) {
        scored.push_back({{others[i], others[j], others[k]}, 0});
      }
    }
  }
  for (Scored& s : scored) {
    s.score = profiler.SetCorrelation(s.cols, target);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });

  std::printf("\n%-5s %-50s %s\n", "rank", "attribute set", "correlation");
  for (size_t i = 0; i < scored.size(); ++i) {
    // Print the head and the tail like the paper's table.
    if (i >= 8 && i + 3 < scored.size()) {
      if (i == 8) std::printf("...\n");
      continue;
    }
    std::string label = "{";
    for (size_t j = 0; j < scored[i].cols.size(); ++j) {
      if (j > 0) label += ", ";
      label += t.schema().attribute(scored[i].cols[j]);
    }
    label += "}";
    std::printf("%-5zu %-50s %.3f\n", i + 1, label.c_str(),
                scored[i].score);
  }
  return 0;
}
