// Service load benchmark: M simulated analysts drive concurrent cleaning
// sessions against one falcon_serverd and every session's outcome is
// checked bit-identical to a serial in-process run with the same seed.
//
// Each analyst is a closed-loop client with think time: open_session(seed
// = base + i) → [think --think_ms, then step(episodes=1)] until finished →
// close, measuring per-request latency. Think time models the paper's
// interactive cadence — an analyst reads the answer before asking the next
// question — so the analyst counts (--analysts=1,8,64,128,256) probe how
// many concurrent humans one daemon sustains within the latency SLO, not
// how fast one session can spin. Requests rejected by admission control
// (kUnavailable + retry_after_ms) are retried after the hinted backoff and
// counted per round as `rejected`/`retried`, so overload behaviour is
// visible in the JSON instead of silently folded into latency.
//
// Reported per M: p50/p95/p99 request latency, requests/s, sessions/s,
// throughput speedup vs the 1-analyst round, rejected/retried counts, and
// the bit-identity verdict (metrics counters + text-based table CRC vs the
// serial baseline). Writes BENCH_service_load.json (with provenance meta)
// and exits nonzero on any mismatch — this is the acceptance gate for the
// service's snapshot isolation. CI additionally gates the committed JSON:
// ≥ 8x throughput at 64 analysts and p99 ≤ 25ms (see ci.yml).
//
// By default the server runs in-process over a Unix socket; --connect=PATH
// targets an external falcon_serverd instead (the CI smoke job does this).
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

#include "common/simd.h"
#include "common/socket.h"
#include "core/session.h"
#include "core/session_journal.h"
#include "service/client.h"
#include "service/server.h"
#include "service/session_manager.h"

using namespace falcon;

namespace {

struct SessionOutcome {
  uint64_t seed = 0;
  bool ok = false;
  std::string error;
  // Counters reported by the service at convergence.
  int64_t user_updates = 0;
  int64_t user_answers = 0;
  int64_t cells_repaired = 0;
  int64_t queries_applied = 0;
  bool converged = false;
  int64_t table_crc = 0;
  std::vector<double> latencies_us;  ///< One entry per interactive request.
  std::vector<double> setup_us;      ///< open/close (+ admission retries).
  size_t steps = 0;
  size_t rejected = 0;  ///< kUnavailable + retry hint responses received.
  size_t retried = 0;   ///< Requests re-sent after a hinted backoff.
};

struct Baseline {
  SessionMetrics metrics;
  uint32_t table_crc = 0;
};

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One closed-loop analyst driven by the multiplexer below: open (at a
/// staggered start), then step(episodes=1) every think interval until
/// finished, then close. At most one request is ever outstanding — the
/// analyst "reads the answer" before asking again.
struct Analyst {
  SessionOutcome out;
  FdHolder fd;
  std::string in;       ///< Partial-line receive buffer.
  std::string session;  ///< Session id once opened.
  enum class Verb { kOpen, kStep, kClose } pending = Verb::kOpen;
  bool awaiting = false;  ///< Request sent, response not yet read.
  bool done = false;
  double next_fire_us = 0;  ///< When to send `pending` (stagger/think/backoff).
  double sent_us = 0;
};

/// Runs one round of `m` concurrent analysts on a single driver thread: a
/// poll() loop multiplexes every connection, with per-analyst next-fire
/// times implementing think time, staggered starts, and retry backoff.
/// One thread per analyst would be simpler, but on small machines the
/// measured "latency" then includes the client thread's own scheduling
/// delay behind m-1 sibling threads — at 256 analysts that noise dwarfs
/// the server's actual response time.
std::vector<SessionOutcome> RunRound(const std::string& socket_path,
                                     const std::string& dataset,
                                     double scale, uint64_t base_seed,
                                     size_t m, int64_t think_ms) {
  std::vector<Analyst> analysts(m);
  // Stagger starts so a round ramps up instead of opening with a
  // synchronized thundering herd: open_session is an order of magnitude
  // slower than a step (COW clone + session build), so the 50 ms floor
  // keeps the opens from queueing behind each other and poisoning the
  // round's tail latency.
  int64_t stagger_us =
      m > 1 ? std::max<int64_t>(think_ms * 1000 / static_cast<int64_t>(m),
                                50000)
            : 0;
  double start_us = NowUs();
  for (size_t i = 0; i < m; ++i) {
    Analyst& a = analysts[i];
    a.out.seed = base_seed + i;
    auto conn = ConnectUnix(socket_path);
    if (!conn.ok()) {
      a.out.error = conn.status().ToString();
      a.done = true;
      continue;
    }
    a.fd = std::move(conn).value();
    a.next_fire_us = start_us + static_cast<double>(
                                    static_cast<int64_t>(i) * stagger_us);
  }

  auto fail = [](Analyst& a, std::string why) {
    a.out.error = std::move(why);
    a.done = true;
    a.fd.Close();
  };

  auto send_pending = [&](Analyst& a, double now) {
    JsonValue req = JsonValue::Object();
    switch (a.pending) {
      case Analyst::Verb::kOpen:
        req.Set("verb", "open_session");
        req.Set("dataset", dataset);
        req.Set("scale", scale);
        req.Set("seed", static_cast<int64_t>(a.out.seed));
        break;
      case Analyst::Verb::kStep:
        req.Set("verb", "step");
        req.Set("session", a.session);
        req.Set("episodes", 1);
        break;
      case Analyst::Verb::kClose:
        req.Set("verb", "close");
        req.Set("session", a.session);
        break;
    }
    std::string line = req.Serialize() + "\n";
    // One small frame on a local socket: a partial send would mean the
    // socket buffer is full with zero requests outstanding — treat it as
    // the connection failing rather than buffering.
    ssize_t n = ::send(a.fd.fd(), line.data(), line.size(), MSG_NOSIGNAL);
    if (n != static_cast<ssize_t>(line.size())) {
      fail(a, "short send on request");
      return;
    }
    a.sent_us = now;
    a.awaiting = true;
  };

  // One complete response line for `a`; returns false if the analyst is
  // finished (converged + closed) or failed.
  auto handle_line = [&](Analyst& a, const std::string& line) {
    double now = NowUs();
    auto parsed = JsonValue::Parse(line);
    if (!parsed.ok()) {
      fail(a, "bad response: " + line);
      return;
    }
    a.awaiting = false;
    double latency = now - a.sent_us;
    bool interactive = a.pending == Analyst::Verb::kStep;
    (interactive ? a.out.latencies_us : a.out.setup_us).push_back(latency);

    if (!parsed->GetBool("ok")) {
      int64_t backoff = parsed->GetInt("retry_after_ms", 0);
      if (parsed->GetString("code") == "UNAVAILABLE" && backoff > 0) {
        // Admission-control rejection: re-send the same verb after the
        // hinted backoff (safe — rejection happens before execution).
        ++a.out.rejected;
        ++a.out.retried;
        a.next_fire_us = now + static_cast<double>(backoff) * 1000.0;
        return;
      }
      fail(a, parsed->Serialize());
      return;
    }

    switch (a.pending) {
      case Analyst::Verb::kOpen:
        a.session = parsed->GetString("session");
        a.pending = Analyst::Verb::kStep;
        a.next_fire_us = now + static_cast<double>(think_ms) * 1000.0;
        break;
      case Analyst::Verb::kStep: {
        ++a.out.steps;
        if (!parsed->GetBool("finished")) {
          a.next_fire_us = now + static_cast<double>(think_ms) * 1000.0;
          break;
        }
        const JsonValue* metrics = parsed->Find("metrics");
        if (metrics == nullptr) {
          fail(a, "step response missing metrics");
          break;
        }
        a.out.user_updates = metrics->GetInt("user_updates");
        a.out.user_answers = metrics->GetInt("user_answers");
        a.out.cells_repaired = metrics->GetInt("cells_repaired");
        a.out.queries_applied = metrics->GetInt("queries_applied");
        a.out.converged = metrics->GetBool("converged");
        a.out.table_crc = parsed->GetInt("table_crc");
        a.pending = Analyst::Verb::kClose;
        a.next_fire_us = now;  // Teardown is immediate, no think time.
        break;
      }
      case Analyst::Verb::kClose:
        a.out.ok = true;
        a.done = true;
        a.fd.Close();
        break;
    }
  };

  std::vector<pollfd> fds;
  std::vector<size_t> fd_owner;
  for (;;) {
    // Send every due request, then compute the poll timeout from the
    // earliest not-yet-due fire time.
    double now = NowUs();
    bool any_live = false;
    double next_due = 0;
    bool have_due = false;
    for (Analyst& a : analysts) {
      if (a.done) continue;
      any_live = true;
      if (!a.awaiting) {
        if (now >= a.next_fire_us) {
          send_pending(a, now);
        } else if (!have_due || a.next_fire_us < next_due) {
          next_due = a.next_fire_us;
          have_due = true;
        }
      }
    }
    if (!any_live) break;

    fds.clear();
    fd_owner.clear();
    for (size_t i = 0; i < analysts.size(); ++i) {
      if (analysts[i].done || !analysts[i].awaiting) continue;
      fds.push_back(pollfd{analysts[i].fd.fd(), POLLIN, 0});
      fd_owner.push_back(i);
    }
    int timeout_ms = -1;
    if (have_due) {
      timeout_ms = static_cast<int>((next_due - NowUs()) / 1000.0) + 1;
      if (timeout_ms < 0) timeout_ms = 0;
    } else if (fds.empty()) {
      continue;  // Everyone due; loop back to send.
    }
    int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    for (size_t k = 0; k < fds.size() && ready > 0; ++k) {
      if (fds[k].revents == 0) continue;
      Analyst& a = analysts[fd_owner[k]];
      char chunk[4096];
      ssize_t n = ::recv(a.fd.fd(), chunk, sizeof chunk, 0);
      if (n <= 0) {
        fail(a, n == 0 ? "server closed connection" : "recv failed");
        continue;
      }
      a.in.append(chunk, static_cast<size_t>(n));
      size_t nl;
      while (!a.done && (nl = a.in.find('\n')) != std::string::npos) {
        std::string line = a.in.substr(0, nl);
        a.in.erase(0, nl + 1);
        handle_line(a, line);
      }
    }
  }

  std::vector<SessionOutcome> outcomes;
  outcomes.reserve(m);
  for (Analyst& a : analysts) outcomes.push_back(std::move(a.out));
  return outcomes;
}

/// Serial ground truth for one seed: same workload, same options, plain
/// RunCleaning in this process.
Baseline RunSerial(const bench::Workload& w, uint64_t seed) {
  SessionOptions options;
  options.seed = seed;
  Table working = w.dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(SearchKind::kCoDive);
  CleaningSession session(&w.clean, &working, algorithm.get(), options);
  auto metrics = session.Run();
  FALCON_CHECK(metrics.ok());
  return Baseline{*metrics, TableContentsCrc(working)};
}

bool Matches(const SessionOutcome& got, const Baseline& want) {
  return got.ok &&
         got.user_updates ==
             static_cast<int64_t>(want.metrics.user_updates) &&
         got.user_answers ==
             static_cast<int64_t>(want.metrics.user_answers) &&
         got.cells_repaired ==
             static_cast<int64_t>(want.metrics.cells_repaired) &&
         got.queries_applied ==
             static_cast<int64_t>(want.metrics.queries_applied) &&
         got.converged == want.metrics.converged &&
         got.table_crc == static_cast<int64_t>(want.table_crc);
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

/// Serial ground truth with explicit cache knobs (the shared sweep runs
/// the full posting-mode × row-set-representation grid).
Baseline RunSerialConfigured(const bench::Workload& w, uint64_t seed,
                             bool posting_delta, bool compressed) {
  SessionOptions options;
  options.seed = seed;
  options.posting_delta = posting_delta;
  options.compressed_rowsets = compressed;
  Table working = w.dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(SearchKind::kCoDive);
  CleaningSession session(&w.clean, &working, algorithm.get(), options);
  auto metrics = session.Run();
  FALCON_CHECK(metrics.ok());
  return Baseline{*metrics, TableContentsCrc(working)};
}

bool StatusMatches(const SessionStatus& got, const Baseline& want) {
  return got.metrics.user_updates == want.metrics.user_updates &&
         got.metrics.user_answers == want.metrics.user_answers &&
         got.metrics.cells_repaired == want.metrics.cells_repaired &&
         got.metrics.queries_applied == want.metrics.queries_applied &&
         got.metrics.converged == want.metrics.converged &&
         got.table_crc == want.table_crc;
}

/// Same-workload K-session sweep over an in-process SessionManager: all K
/// sessions open the same (dataset, scale, seed), so session 1 pays the
/// posting/index build cold and sessions 2..K ride the shared base tier —
/// probing exactly the keys session 1 published (same seed → same
/// deterministic probe sequence). Sessions are opened up front (the base's
/// live-session refcount keeps the shared tier alive) and run to
/// convergence sequentially; every final table must be bit-identical to a
/// serial single-session run. Emits per-config cold/warm index-build ms,
/// shared vs private residency, and hit rates — the CI gate asserts
/// warm ≤ 0.2× cold and shared hit rate > 50% on the delta+compressed
/// config, and CRC identity on all four.
JsonValue RunSharedSweep(const std::string& dataset, double sweep_scale,
                         uint64_t seed, size_t k, bool* all_identical_out) {
  bench::Workload w = bench::MakeWorkload(dataset, sweep_scale);
  std::printf("\nshared-cache sweep: %zu same-seed sessions, %zu rows\n", k,
              w.clean.num_rows());
  std::printf("%-24s %12s %12s %8s %10s %12s %12s %6s\n", "config",
              "cold(ms)", "warm(ms)", "ratio", "shared%", "shared(B)",
              "private(B)", "crc");

  JsonValue configs = JsonValue::Array();
  bool all_identical = true;
  for (bool posting_delta : {true, false}) {
    for (bool compressed : {true, false}) {
      Baseline want =
          RunSerialConfigured(w, seed, posting_delta, compressed);

      ServiceLimits limits;
      limits.max_sessions = k;
      SessionManager manager(limits);
      SessionManager::OpenParams params;
      params.dataset = dataset;
      params.scale = sweep_scale;
      params.seed = seed;
      params.posting_delta = posting_delta;
      params.compressed_rowsets = compressed;
      std::vector<std::string> ids;
      ids.reserve(k);
      for (size_t i = 0; i < k; ++i) {
        auto id = manager.Open(params);
        FALCON_CHECK(id.ok());
        ids.push_back(*id);
      }

      bool identical = true;
      double cold_ms = 0.0;
      double warm_ms_sum = 0.0;
      double warm_shared_rate_sum = 0.0;
      size_t private_bytes = 0;
      JsonValue per_session = JsonValue::Array();
      for (size_t i = 0; i < k; ++i) {
        auto st = manager.Step(ids[i], 0);  // Run to convergence.
        FALCON_CHECK(st.ok());
        FALCON_CHECK(st->finished);
        identical = identical && StatusMatches(*st, want);
        const SessionMetrics& m = st->metrics;
        // "Index build" = base posting fills only (posting_base_scan_ms):
        // private re-scans after this session's own writes are excluded,
        // since cold and warm sessions pay those identically.
        if (i == 0) {
          cold_ms = m.posting_base_scan_ms;
        } else {
          warm_ms_sum += m.posting_base_scan_ms;
          warm_shared_rate_sum += m.PostingSharedHitRate();
        }
        private_bytes += m.posting_resident_bytes;
        JsonValue s = JsonValue::Object();
        s.Set("index_build_ms", m.posting_base_scan_ms);
        s.Set("posting_scan_ms_total", m.posting_scan_ms);
        s.Set("posting_shared_hits", m.posting_shared_hits);
        s.Set("posting_shared_misses", m.posting_shared_misses);
        s.Set("posting_shared_hit_rate", m.PostingSharedHitRate());
        s.Set("posting_hit_rate", m.PostingHitRate());
        s.Set("memo_shared_hit_rate", m.MemoSharedHitRate());
        s.Set("memo_hit_rate", m.MemoHitRate());
        s.Set("private_resident_bytes", m.posting_resident_bytes);
        s.Set("shared_pinned_bytes", m.posting_shared_bytes);
        per_session.Append(std::move(s));
      }
      // Health before closing: the shared tier is dropped when the last
      // session on the base closes.
      ServiceHealth health = manager.Health();
      for (const std::string& id : ids) {
        FALCON_CHECK(manager.Close(id).ok());
      }
      all_identical = all_identical && identical;

      double warm_ms =
          k > 1 ? warm_ms_sum / static_cast<double>(k - 1) : 0.0;
      double warm_shared_rate =
          k > 1 ? warm_shared_rate_sum / static_cast<double>(k - 1) : 0.0;
      double ratio = cold_ms > 0 ? warm_ms / cold_ms : 0.0;
      char label[64];
      std::snprintf(label, sizeof label, "delta=%d compressed=%d",
                    posting_delta ? 1 : 0, compressed ? 1 : 0);
      std::printf("%-24s %12.3f %12.3f %8.3f %10.1f %12zu %12zu %6s\n",
                  label, cold_ms, warm_ms, ratio, 100.0 * warm_shared_rate,
                  health.shared_resident_bytes, private_bytes,
                  identical ? "yes" : "NO");

      JsonValue config = JsonValue::Object();
      config.Set("posting_delta", posting_delta);
      config.Set("compressed_rowsets", compressed);
      config.Set("cold_index_build_ms", cold_ms);
      config.Set("warm_index_build_ms", warm_ms);
      config.Set("warm_cold_ratio", ratio);
      config.Set("warm_shared_hit_rate", warm_shared_rate);
      config.Set("shared_resident_bytes", health.shared_resident_bytes);
      config.Set("shared_entries", health.shared_entries);
      config.Set("shared_hit_rate_process", health.shared_hit_rate());
      config.Set("private_resident_bytes", private_bytes);
      config.Set("crc_identical_to_serial", identical);
      config.Set("per_session", std::move(per_session));
      configs.Append(std::move(config));
    }
  }

  JsonValue sweep = JsonValue::Object();
  sweep.Set("sessions", k);
  sweep.Set("rows", w.clean.num_rows());
  sweep.Set("scale", sweep_scale);
  sweep.Set("configs", std::move(configs));
  sweep.Set("all_crc_identical", all_identical);
  *all_identical_out = all_identical;
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  bool quick = bench::ParseQuick(flags);
  std::string connect = flags.GetString(
      "connect", "", "unix socket of an external falcon_serverd "
                     "(default: in-process server)");
  std::string dataset =
      flags.GetString("dataset", "Synth10k", "workload dataset name");
  std::string analysts_csv = flags.GetString(
      "analysts", "",
      "comma-separated analyst counts per round "
      "(default: 1,8,64,128,256; --quick default: 1,8)");
  int64_t max_sessions_flag = flags.GetInt(
      "sessions", 0,
      "legacy: run doubling rounds 1..N instead of --analysts");
  int64_t think_ms = flags.GetInt(
      "think_ms", 250,
      "closed-loop think time between an analyst's requests");
  int64_t workers_flag = flags.GetInt(
      "workers", 0, "in-process server worker threads (0 = auto)");
  int64_t queue_limit_flag = flags.GetInt(
      "queue_limit", 64, "in-process server global request-queue bound");
  int64_t sweep_sessions_flag = flags.GetInt(
      "sweep_sessions", 8,
      "same-seed session count for the shared base-cache sweep");
  uint64_t base_seed = static_cast<uint64_t>(
      flags.GetInt("seed", 4242, "base RNG seed (analyst i uses seed+i)"));
  if (auto rc = flags.Done(
          "bench_service_load — M concurrent analysts vs falcon_serverd, "
          "verified bit-identical to serial runs")) {
    return *rc;
  }

  double dataset_scale = scale * (quick ? 0.02 : 0.08);
  std::vector<size_t> session_counts;
  if (max_sessions_flag > 0) {
    for (size_t m = 1; m <= static_cast<size_t>(max_sessions_flag); m *= 2) {
      session_counts.push_back(m);
    }
    if (quick) {
      session_counts.resize(
          std::min<size_t>(session_counts.size(), 2));  // {1, 2}
    }
  } else {
    if (analysts_csv.empty()) analysts_csv = quick ? "1,8" : "1,8,64,128,256";
    size_t pos = 0;
    while (pos < analysts_csv.size()) {
      size_t comma = analysts_csv.find(',', pos);
      if (comma == std::string::npos) comma = analysts_csv.size();
      long v = std::atol(analysts_csv.substr(pos, comma - pos).c_str());
      if (v > 0) session_counts.push_back(static_cast<size_t>(v));
      pos = comma + 1;
    }
    if (session_counts.empty()) session_counts.push_back(1);
  }
  size_t max_sessions =
      *std::max_element(session_counts.begin(), session_counts.end());

  bench::PrintBanner(
      "bench_service_load — concurrent analysts vs the cleaning service",
      "service-layer scalability on the Section 6 workloads");

  // In-process server unless --connect points at an external one.
  std::string socket_path = connect;
  std::unique_ptr<CleaningServer> server;
  size_t resolved_workers = 0;  // 0 = external server, count unknown.
  if (socket_path.empty()) {
    socket_path = "/tmp/falcon_bench_service_" +
                  std::to_string(static_cast<long>(getpid())) + ".sock";
    ServerOptions options;
    options.unix_path = socket_path;
    // Auto worker count tracks the machine instead of a fixed floor:
    // oversubscribing a low-core host timeslices the long steps against the
    // short ones and inflates tail latency (measured ~3x worse p99 at 64
    // analysts with 4 workers vs 2 on a 1-core box).
    options.workers =
        workers_flag > 0
            ? static_cast<size_t>(workers_flag)
            : std::clamp<size_t>(std::thread::hardware_concurrency(), 2, 16);
    options.queue_limit = static_cast<size_t>(
        std::max<int64_t>(0, queue_limit_flag));
    options.limits.max_sessions = max_sessions;
    resolved_workers = options.workers;
    server = std::make_unique<CleaningServer>(options);
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
  }

  // Serial baselines (and the local workload copy they run on).
  bench::Workload w = bench::MakeWorkload(dataset, dataset_scale);
  std::printf("dataset=%s rows=%zu errors=%zu analysts up to %zu\n",
              dataset.c_str(), w.clean.num_rows(), w.errors, max_sessions);
  size_t distinct_seeds = session_counts.back();
  std::vector<Baseline> baselines;
  baselines.reserve(distinct_seeds);
  for (size_t i = 0; i < distinct_seeds; ++i) {
    baselines.push_back(RunSerial(w, base_seed + i));
  }

  bool all_identical = true;
  double one_analyst_rate = 0.0;
  double one_session_rate = 0.0;
  JsonValue rounds = JsonValue::Array();
  std::printf("\n%-9s %10s %10s %10s %10s %9s %9s %10s\n", "analysts",
              "p50(us)", "p95(us)", "p99(us)", "reqs/s", "rejected",
              "retried", "identical");
  for (size_t m : session_counts) {
    double t0 = NowUs();
    std::vector<SessionOutcome> outcomes =
        RunRound(socket_path, dataset, dataset_scale, base_seed, m,
                 think_ms);
    double wall_s = (NowUs() - t0) / 1e6;

    std::vector<double> latencies;
    std::vector<double> setup;
    size_t requests = 0;
    size_t rejected = 0;
    size_t retried = 0;
    bool round_identical = true;
    for (size_t i = 0; i < m; ++i) {
      latencies.insert(latencies.end(), outcomes[i].latencies_us.begin(),
                       outcomes[i].latencies_us.end());
      setup.insert(setup.end(), outcomes[i].setup_us.begin(),
                   outcomes[i].setup_us.end());
      requests += outcomes[i].latencies_us.size() +
                  outcomes[i].setup_us.size();
      rejected += outcomes[i].rejected;
      retried += outcomes[i].retried;
      bool same = Matches(outcomes[i], baselines[i]);
      if (!outcomes[i].ok) {
        std::fprintf(stderr, "analyst %zu failed: %s\n", i,
                     outcomes[i].error.c_str());
      } else if (!same) {
        std::fprintf(
            stderr,
            "analyst %zu diverged from serial: got U=%lld A=%lld "
            "repaired=%lld applied=%lld crc=%lld; want U=%zu A=%zu "
            "repaired=%zu applied=%zu crc=%u\n",
            i, static_cast<long long>(outcomes[i].user_updates),
            static_cast<long long>(outcomes[i].user_answers),
            static_cast<long long>(outcomes[i].cells_repaired),
            static_cast<long long>(outcomes[i].queries_applied),
            static_cast<long long>(outcomes[i].table_crc),
            baselines[i].metrics.user_updates,
            baselines[i].metrics.user_answers,
            baselines[i].metrics.cells_repaired,
            baselines[i].metrics.queries_applied, baselines[i].table_crc);
      }
      round_identical = round_identical && same;
    }
    all_identical = all_identical && round_identical;
    std::sort(latencies.begin(), latencies.end());
    std::sort(setup.begin(), setup.end());
    // Percentiles cover interactive requests (steps) — what an analyst
    // waits on mid-session. Session open/close is paid once, costs an
    // order of magnitude more (COW clone + session build), and is
    // reported separately as setup_p99_us.
    double p50 = Percentile(latencies, 0.50);
    double p95 = Percentile(latencies, 0.95);
    double p99 = Percentile(latencies, 0.99);
    double setup_p99 = Percentile(setup, 0.99);
    double reqs_per_s = static_cast<double>(requests) / wall_s;
    double sessions_per_s = static_cast<double>(m) / wall_s;
    if (m == 1) {
      one_analyst_rate = reqs_per_s;
      one_session_rate = sessions_per_s;
    }
    std::printf("%-9zu %10.1f %10.1f %10.1f %10.1f %9zu %9zu %10s\n", m,
                p50, p95, p99, reqs_per_s, rejected, retried,
                round_identical ? "yes" : "NO");

    JsonValue round = JsonValue::Object();
    round.Set("analysts", m);
    round.Set("wall_s", wall_s);
    round.Set("requests", requests);
    round.Set("think_ms", think_ms);
    round.Set("rejected", rejected);
    round.Set("retried", retried);
    round.Set("p50_us", p50);
    round.Set("p95_us", p95);
    round.Set("p99_us", p99);
    round.Set("setup_requests", setup.size());
    round.Set("setup_p99_us", setup_p99);
    round.Set("requests_per_s", reqs_per_s);
    round.Set("sessions_per_s", sessions_per_s);
    round.Set("speedup_vs_one_analyst",
              one_analyst_rate > 0 ? reqs_per_s / one_analyst_rate : 0);
    round.Set("speedup_vs_one_session",
              one_session_rate > 0 ? sessions_per_s / one_session_rate : 0);
    round.Set("identical_to_serial", round_identical);
    rounds.Append(std::move(round));
  }

  if (server != nullptr) {
    server->Stop();
    server->Wait();
  }

  // Shared base-cache sweep: in-process (SessionManager directly), at a
  // larger scale than the analyst rounds so the cold index build is
  // measurable. Sequential by design — it measures amortization, not
  // concurrency (the analyst rounds above cover that).
  double sweep_scale = scale * (quick ? 0.2 : 0.5);
  size_t sweep_k = std::max<int64_t>(2, sweep_sessions_flag);
  bool sweep_identical = true;
  JsonValue sweep =
      RunSharedSweep(dataset, sweep_scale, base_seed, sweep_k,
                     &sweep_identical);
  all_identical = all_identical && sweep_identical;

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "service_load");
  doc.Set("meta", bench::BenchMeta());
  doc.Set("dataset", dataset);
  doc.Set("rows", w.clean.num_rows());
  doc.Set("errors", w.errors);
  doc.Set("external_server", !connect.empty());
  doc.Set("workers", resolved_workers);
  doc.Set("queue_limit", static_cast<size_t>(
                             std::max<int64_t>(0, queue_limit_flag)));
  doc.Set("rounds", std::move(rounds));
  doc.Set("shared_sweep", std::move(sweep));
  doc.Set("all_identical", all_identical);
  FILE* f = std::fopen("BENCH_service_load.json", "w");
  if (f != nullptr) {
    std::string text = doc.Serialize();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote BENCH_service_load.json\n");
  }
  std::printf("all sessions identical to serial: %s\n",
              all_identical ? "yes" : "NO — ISOLATION BROKEN");
  return all_identical ? 0 : 1;
}
