// Posting-index micro benchmark: delta-maintained cache vs. the legacy
// invalidate-and-rescan mode on the lattice hot path, at Fig-8 scalability
// sizes. Three sections:
//
//  1. Raw scan-kernel throughput (ScanEquals / ScanEqualsMulti).
//  2. Steady-state hot loop: repeated lattice rebuild + apply on one repair
//     attribute with a warm cache (the regime an interactive session settles
//     into). The index-path time (scan + delta maintenance, measured by the
//     index's own counters) is the headline speedup: invalidation re-scans
//     the repair column on every rebuild, delta maintenance patches bits.
//  3. Full cleaning sessions in delta / invalidate / budgeted-eviction
//     modes: the determinism gate. user_updates / user_answers /
//     cells_repaired / queries_applied must be bit-identical across modes.
//  4. Compressed row-set sweep (--compressed, on by default): container
//     kernel ns/op dense-vs-compressed on sparse and dense operands,
//     posting-storage resident bytes + compression ratio + evictions under
//     a shared byte budget, and a dense-vs-compressed session A/B whose
//     final-table CRCs must match bit-for-bit.
//
// All errors are concentrated on one FD target attribute so every episode
// repairs the same column — the workload where cache lifetime matters.
// Emits BENCH_micro_postings.json. Default 1M rows; --quick shrinks to
// 100k for CI smoke, --scale=<f> multiplies the row count.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"

#include "common/logging.h"
#include "common/simd.h"
#include "common/hybrid_row_set.h"
#include "core/lattice.h"
#include "core/session.h"
#include "core/session_journal.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"
#include "relational/posting_index.h"

using namespace falcon;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  std::string name;
  double wall_ms = 0;
  SessionMetrics metrics;
};

ModeResult RunMode(const std::string& name, const Table& clean,
                   const Table& dirty, bool delta, size_t budget_bytes) {
  SessionOptions options;
  options.budget = 1000;  // Effectively unbounded (Fig. 8 setting).
  options.max_updates = 40;
  options.posting_delta = delta;
  options.posting_budget_bytes = budget_bytes;
  double t0 = NowMs();
  auto m = RunCleaning(clean, dirty, SearchKind::kDive, options);
  ModeResult r;
  r.name = name;
  r.wall_ms = NowMs() - t0;
  if (m.ok()) r.metrics = *m;
  return r;
}

void PrintMode(FILE* f, const ModeResult& r, bool trailing_comma) {
  const SessionMetrics& m = r.metrics;
  std::fprintf(f,
               "    \"%s\": {\"wall_ms\": %.2f, \"posting_scan_ms\": %.3f, "
               "\"posting_delta_ms\": %.3f, \"lattice_build_ms\": %.2f, "
               "\"hits\": %zu, \"misses\": %zu, \"delta_rows\": %zu, "
               "\"evictions\": %zu, \"user_updates\": %zu, "
               "\"user_answers\": %zu, \"cells_repaired\": %zu, "
               "\"queries_applied\": %zu}%s\n",
               r.name.c_str(), r.wall_ms, m.posting_scan_ms,
               m.posting_delta_ms, m.lattice_build_ms, m.posting_hits,
               m.posting_misses, m.posting_delta_rows, m.posting_evictions,
               m.user_updates, m.user_answers, m.cells_repaired,
               m.queries_applied, trailing_comma ? "," : "");
}

double IndexMs(const ModeResult& r) {
  return r.metrics.posting_scan_ms + r.metrics.posting_delta_ms;
}

struct HotLoopResult {
  double index_ms = 0;   // Scan + delta time inside the timed pass.
  double wall_ms = 0;    // Whole timed pass (builds + applies).
  size_t misses = 0;
  size_t delta_rows = 0;
  size_t iters = 0;
};

// Steady-state lattice rebuild + apply loop over one repair attribute.
// Both modes run an untimed warm-up pass over the same cells first, so the
// timed pass measures warm-cache behaviour: with delta maintenance every
// posting request hits and writes cost bit flips; with invalidation every
// write voids the repair column and the next build re-scans it.
HotLoopResult RunHotLoop(const Table& dirty,
                         const std::vector<ErrorCell>& cells, bool delta) {
  Table work = dirty.Clone();
  PostingIndexOptions popt;
  popt.delta_maintenance = delta;
  PostingIndex index(&work, popt);

  // Candidate WHERE columns: a fixed slice excluding the repair column.
  // The unique key column is included, so the top node's affected set is
  // exactly the repaired tuple — each apply writes one cell back clean.
  std::vector<size_t> cols;
  for (size_t c = 0; c < work.num_cols() && cols.size() < 5; ++c) {
    if (c != cells.front().col) cols.push_back(c);
  }
  LatticeOptions lopt;
  lopt.index = &index;

  auto one_pass = [&]() {
    for (const ErrorCell& e : cells) {
      // Re-dirty the cell (a fresh error arriving in the same column).
      ValueId cur = work.cell(e.row, e.col);
      if (cur != e.dirty_value) {
        if (index.delta_maintenance()) {
          index.ApplyCellDelta(e.col, e.row, cur, e.dirty_value);
        } else {
          index.InvalidateColumn(e.col);
        }
        work.set_cell(e.row, e.col, e.dirty_value);
      }
      Repair rep{e.row, e.col,
                 std::string(work.pool()->Get(e.clean_value))};
      auto lat = Lattice::Build(work, rep, cols, lopt);
      if (!lat.ok()) continue;
      lat->ApplyNode(lat->top(), work);
      if (!index.delta_maintenance()) index.InvalidateColumn(e.col);
    }
  };

  one_pass();  // Warm-up (untimed): first-touch misses happen here.
  PostingIndexStats before = index.stats();
  double t0 = NowMs();
  one_pass();
  HotLoopResult r;
  r.wall_ms = NowMs() - t0;
  r.index_ms = (index.stats().scan_ms + index.stats().delta_ms) -
               (before.scan_ms + before.delta_ms);
  r.misses = index.stats().misses - before.misses;
  r.delta_rows = index.stats().delta_rows - before.delta_rows;
  r.iters = cells.size();
  return r;
}

// --- Compressed row-set sweep ----------------------------------------------

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct KernelPair {
  double dense_ns = 0;  // ns per AndCount on the dense representation.
  double comp_ns = 0;   // ns per AndCount on the compressed representation.
};

// Times AndCount over the same logical operands in both representations.
// `sink` defeats dead-code elimination.
KernelPair TimeAndCount(const RowSet& a, const RowSet& b, size_t reps,
                        size_t* sink) {
  HybridRowSet da(a), db(b), ca(a), cb(b);
  ca.EnsureCompressed();
  cb.EnsureCompressed();
  KernelPair r;
  double t0 = NowNs();
  for (size_t i = 0; i < reps; ++i) *sink += da.AndCount(db);
  r.dense_ns = (NowNs() - t0) / static_cast<double>(reps);
  t0 = NowNs();
  for (size_t i = 0; i < reps; ++i) *sink += ca.AndCount(cb);
  r.comp_ns = (NowNs() - t0) / static_cast<double>(reps);
  return r;
}

struct StorageSweep {
  size_t entries = 0;
  size_t dense_resident = 0;  // Resident bytes, dense index.
  size_t comp_resident = 0;   // Resident bytes, compressed index.
  double ratio = 0;           // dense_resident / comp_resident.
  size_t arrays = 0, bitmaps = 0, runs = 0;
  size_t dense_evictions = 0;  // Under the shared byte budget.
  size_t comp_evictions = 0;
};

// Warms the same posting entries into a dense and a compressed index under
// one shared byte budget, then compares resident bytes and evictions: the
// compressed index should hold the same entries in a fraction of the bytes
// and shed fewer under pressure.
StorageSweep RunStorageSweep(const Table& dirty) {
  // The sparse workload: postings below the compression density threshold
  // (high-cardinality columns — keys, near-keys). Dense-column postings
  // stay flat bitmaps by policy, so they'd measure the policy, not the
  // container encoding.
  std::vector<std::pair<size_t, ValueId>> keys;
  size_t sparse_cap = dirty.num_rows() / 128;
  for (size_t c = 0; c < dirty.num_cols(); ++c) {
    std::vector<ValueId> seen;
    for (size_t r = 0; r < dirty.num_rows() && seen.size() < 8; r += 131) {
      ValueId v = dirty.cell(r, c);
      bool dup = false;
      for (ValueId p : seen) dup |= (p == v);
      if (!dup) {
        seen.push_back(v);
        if (dirty.ScanEquals(c, v).Count() < sparse_cap) keys.push_back({c, v});
      }
    }
  }
  size_t dense_entry = ((dirty.num_rows() + 63) / 64) * 8 + 64;
  PostingIndexOptions dense_opts;
  dense_opts.byte_budget = dense_entry * (keys.size() / 2);  // Pressure.
  PostingIndexOptions comp_opts = dense_opts;
  comp_opts.compressed = true;
  PostingIndex dense(&dirty, dense_opts);
  PostingIndex comp(&dirty, comp_opts);
  for (const auto& [c, v] : keys) {
    dense.Postings(c, v);
    comp.Postings(c, v);
  }
  dense.Trim();
  comp.Trim();
  StorageSweep s;
  s.entries = keys.size();
  PostingStorageStats ds = dense.StorageStats();
  PostingStorageStats cs = comp.StorageStats();
  s.dense_resident = ds.resident_bytes;
  s.comp_resident = cs.resident_bytes;
  // Compare per-entry cost (survivor counts differ under the budget).
  double dense_per = ds.entries ? static_cast<double>(ds.resident_bytes) /
                                      static_cast<double>(ds.entries)
                                : 0;
  double comp_per = cs.entries ? static_cast<double>(cs.resident_bytes) /
                                     static_cast<double>(cs.entries)
                               : 0;
  s.ratio = comp_per > 0 ? dense_per / comp_per : 0;
  s.arrays = cs.array_containers;
  s.bitmaps = cs.bitmap_containers;
  s.runs = cs.run_containers;
  s.dense_evictions = dense.stats().evictions;
  s.comp_evictions = comp.stats().evictions;
  return s;
}

// Per-primitive ns/op for the dispatched container kernels, measured at
// whatever tier --simd_level / FALCON_SIMD_LEVEL resolved to. Word loops
// run over one full container (kWordsPerChunk = 1024 words); array kernels
// over max-cardinality array containers in both the balanced (vector
// merge) and skewed (galloping) regimes.
struct PrimitiveTimes {
  double popcount_ns = 0;
  double and_count_ns = 0;
  double and3_count_ns = 0;  // Fused dst = a & b + popcount, one pass.
  double and_ns = 0;
  double andnot_ns = 0;
  double or_ns = 0;
  double intersect_merge_ns = 0;    // 4096 ∩ 4096, balanced.
  double intersect_gallop_ns = 0;   // 64 ∩ 4096, skew ≥ crossover ratio.
  double intersect_count_ns = 0;    // Count-only, balanced.
  double array_bitmap_ns = 0;       // 4096 vals against a full chunk.
};

PrimitiveTimes TimePrimitives(size_t* sink) {
  constexpr size_t kWords = CompressedRowSet::kWordsPerChunk;
  constexpr size_t kCard = CompressedRowSet::kArrayMaxCard;
  std::vector<uint64_t> wa(kWords), wb(kWords), scratch(kWords);
  uint64_t x = 0x9E3779B97F4A7C15ull;
  auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (size_t i = 0; i < kWords; ++i) {
    wa[i] = next();
    wb[i] = next();
  }
  // Sorted unique u16 arrays: balanced pair (every 16th value, offset) and
  // a 64-element small side for the galloping regime.
  std::vector<uint16_t> aa(kCard), ab(kCard), small(64);
  for (size_t i = 0; i < kCard; ++i) {
    aa[i] = static_cast<uint16_t>(i * 16);
    ab[i] = static_cast<uint16_t>(i * 16 + (i % 3 == 0 ? 0 : 8));
  }
  for (size_t i = 0; i < 64; ++i) small[i] = static_cast<uint16_t>(i * 1021);
  std::vector<uint16_t> out(kCard + simd::kIntersectSlack);

  PrimitiveTimes t;
  auto time_it = [&](size_t reps, auto&& body) {
    double t0 = NowNs();
    for (size_t i = 0; i < reps; ++i) body();
    return (NowNs() - t0) / static_cast<double>(reps);
  };
  t.popcount_ns =
      time_it(4000, [&] { *sink += simd::PopcountWords(wa.data(), kWords); });
  t.and_count_ns = time_it(4000, [&] {
    *sink += simd::AndCountWords(wa.data(), wb.data(), kWords);
  });
  t.and3_count_ns = time_it(4000, [&] {
    *sink +=
        simd::And3CountWords(scratch.data(), wa.data(), wb.data(), kWords);
  });
  t.and_ns = time_it(4000, [&] {
    scratch = wa;
    simd::AndWords(scratch.data(), wb.data(), kWords);
    *sink += static_cast<size_t>(scratch[0]);
  });
  t.andnot_ns = time_it(4000, [&] {
    scratch = wa;
    simd::AndNotWords(scratch.data(), wb.data(), kWords);
    *sink += static_cast<size_t>(scratch[0]);
  });
  t.or_ns = time_it(4000, [&] {
    scratch = wa;
    simd::OrWords(scratch.data(), wb.data(), kWords);
    *sink += static_cast<size_t>(scratch[0]);
  });
  t.intersect_merge_ns = time_it(2000, [&] {
    *sink += simd::IntersectU16(aa.data(), kCard, ab.data(), kCard,
                                out.data());
  });
  t.intersect_gallop_ns = time_it(2000, [&] {
    *sink += simd::IntersectU16(small.data(), small.size(), ab.data(), kCard,
                                out.data());
  });
  t.intersect_count_ns = time_it(2000, [&] {
    *sink += simd::IntersectU16Count(aa.data(), kCard, ab.data(), kCard);
  });
  t.array_bitmap_ns = time_it(2000, [&] {
    *sink += simd::ArrayBitmapCount(aa.data(), kCard, wa.data());
  });
  return t;
}

struct AbResult {
  ModeResult run;
  uint32_t crc = 0;
};

// Full cleaning session with an explicit final-table CRC — the cross-
// representation determinism gate.
AbResult RunAb(const std::string& name, const Table& clean,
               const Table& dirty, bool compressed) {
  SessionOptions options;
  options.budget = 1000;
  options.max_updates = 40;
  options.compressed_rowsets = compressed;
  Table work = dirty.Clone();
  auto algorithm = MakeSearchAlgorithm(SearchKind::kDive);
  AbResult r;
  r.run.name = name;
  double t0 = NowMs();
  CleaningSession session(&clean, &work, algorithm.get(), options);
  auto m = session.Run();
  r.run.wall_ms = NowMs() - t0;
  if (m.ok()) r.run.metrics = *m;
  r.crc = TableContentsCrc(work);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);
  double scale = bench::ParseScale(flags);
  size_t rows = static_cast<size_t>(1000000.0 * scale);
  if (bench::ParseQuick(flags)) rows = 100000;
  bool compressed_sweep = flags.GetBool(
      "compressed", true, "run the compressed row-set storage/kernel sweep");
  if (auto rc = flags.Done("bench_micro_postings — posting-index delta vs rescan microbench")) return *rc;
  bench::PrintBanner(
      "bench_micro_postings — delta-maintained posting index vs rescan",
      "Section 5.1 hot path at Fig-8 scalability sizes");

  auto ds = MakeSynth(rows, 29);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    return 1;
  }
  // Concentrate every error on one FD target (A2,A3 → A6): the session
  // repairs the same attribute episode after episode, which is where cache
  // lifetime across writes decides the index cost.
  ErrorSpec spec;
  spec.seed = 31;
  RuleErrorSpec rule;
  rule.rule.lhs = {"A2", "A3"};
  rule.rule.rhs = "A6";
  rule.num_patterns = 32;
  rule.errors_per_pattern = std::max<size_t>(rows / 2500, 2);
  spec.rule_errors = {rule};
  auto injected = InjectErrors(ds->clean, spec);
  if (!injected.ok()) {
    std::fprintf(stderr, "error injection failed\n");
    return 1;
  }
  const Table& clean = ds->clean;
  const Table& dirty = injected->dirty;
  std::printf("rows=%zu cols=%zu errors=%zu (single repair attribute)\n",
              clean.num_rows(), clean.num_cols(), injected->errors.size());

  // --- Raw kernel throughput ------------------------------------------------
  ValueId probe = dirty.cell(0, 1);
  double k0 = NowMs();
  RowSet single = dirty.ScanEquals(1, probe);
  double scan_ms = NowMs() - k0;
  std::vector<ValueId> probes;
  for (size_t r = 0; r < dirty.num_rows() && probes.size() < 8; r += 97) {
    ValueId v = dirty.cell(r, 1);
    bool seen = false;
    for (ValueId p : probes) seen |= (p == v);
    if (!seen) probes.push_back(v);
  }
  double k2 = NowMs();
  std::vector<RowSet> multi = dirty.ScanEqualsMulti(1, probes);
  double multi_ms = NowMs() - k2;
  double multi_per_value_ms = multi_ms / static_cast<double>(probes.size());
  std::printf("kernels: ScanEquals %.3f ms; ScanEqualsMulti %.3f ms for %zu "
              "values (%.3f ms/value, %zu hits on probe)\n",
              scan_ms, multi_ms, probes.size(), multi_per_value_ms,
              single.Count());

  // --- Steady-state hot loop ------------------------------------------------
  // One representative error cell per injected pattern group.
  std::vector<ErrorCell> picks;
  int last_pattern = -1;
  for (const ErrorCell& e : injected->errors) {
    if (e.pattern_index != last_pattern) {
      picks.push_back(e);
      last_pattern = e.pattern_index;
    }
  }
  HotLoopResult hot_delta = RunHotLoop(dirty, picks, /*delta=*/true);
  HotLoopResult hot_inval = RunHotLoop(dirty, picks, /*delta=*/false);
  double index_speedup =
      hot_inval.index_ms / std::max(hot_delta.index_ms, 1e-6);
  std::printf(
      "\nsteady-state hot loop (%zu rebuild+apply iterations, warm cache):\n",
      hot_delta.iters);
  std::printf("  delta:      index %8.3f ms  wall %8.1f ms  misses %4zu  "
              "delta_rows %zu\n",
              hot_delta.index_ms, hot_delta.wall_ms, hot_delta.misses,
              hot_delta.delta_rows);
  std::printf("  invalidate: index %8.3f ms  wall %8.1f ms  misses %4zu\n",
              hot_inval.index_ms, hot_inval.wall_ms, hot_inval.misses);
  std::printf("  index-path speedup (invalidate/delta): %.1fx\n",
              index_speedup);

  // --- Session comparison (determinism gate) --------------------------------
  ModeResult delta = RunMode("delta", clean, dirty, true, 0);
  ModeResult inval = RunMode("invalidate", clean, dirty, false, 0);
  // Budgeted run: a deliberately tight cap to exercise LRU eviction while
  // preserving answers (evictions only cost rescans, never correctness).
  ModeResult budget = RunMode("delta_budget", clean, dirty, true,
                              ((rows + 63) / 64) * 8 * 12);

  bool identical = true;
  for (const ModeResult* r : {&inval, &budget}) {
    identical = identical &&
                r->metrics.user_updates == delta.metrics.user_updates &&
                r->metrics.user_answers == delta.metrics.user_answers &&
                r->metrics.cells_repaired == delta.metrics.cells_repaired &&
                r->metrics.queries_applied == delta.metrics.queries_applied;
  }
  double session_index_speedup = IndexMs(inval) / std::max(IndexMs(delta), 1e-6);
  double wall_speedup = inval.wall_ms / std::max(delta.wall_ms, 1e-6);

  std::printf("\n%-13s %9s %11s %10s %6s %7s %10s %7s\n", "mode", "wall(ms)",
              "index(ms)", "build(ms)", "hits", "misses", "deltarows",
              "evict");
  for (const ModeResult* r : {&delta, &inval, &budget}) {
    std::printf("%-13s %9.1f %11.3f %10.1f %6zu %7zu %10zu %7zu\n",
                r->name.c_str(), r->wall_ms, IndexMs(*r),
                r->metrics.lattice_build_ms, r->metrics.posting_hits,
                r->metrics.posting_misses, r->metrics.posting_delta_rows,
                r->metrics.posting_evictions);
  }
  std::printf("\nsession index-path speedup (incl. cold start): %.2fx\n",
              session_index_speedup);
  std::printf("session wall-clock speedup:                    %.2fx\n",
              wall_speedup);
  std::printf("identical session metrics across modes: %s\n",
              identical ? "yes" : "NO — DETERMINISM BROKEN");

  // --- Compressed row-set sweep --------------------------------------------
  KernelPair sparse_kernel, mid_kernel, dense_kernel;
  size_t sparse_card_a = 0, sparse_card_b = 0;
  PrimitiveTimes prim;
  StorageSweep storage;
  AbResult ab_dense, ab_comp;
  bool crc_match = true;
  bool ab_metrics_match = true;
  if (compressed_sweep) {
    // Sparse operands: two real postings well under the index's
    // compression-density bar (count < rows/128 — the storage sweep's
    // definition; we take < rows/256), with a floor of rows/1024 so the
    // kernels do real work in every chunk instead of winning on
    // empty-container skips. These land as small array containers, the
    // regime the decode-free kernels are built for.
    size_t sparse_cap = dirty.num_rows() / 256;
    size_t sparse_floor = dirty.num_rows() / 1024;
    std::vector<RowSet> sparse_ops;
    for (size_t c = 0; c < dirty.num_cols() && sparse_ops.size() < 2; ++c) {
      std::vector<ValueId> seen;
      for (size_t r = 0;
           r < dirty.num_rows() && sparse_ops.size() < 2 && seen.size() < 8;
           r += 131) {
        ValueId v = dirty.cell(r, c);
        bool dup = false;
        for (ValueId p : seen) dup |= (p == v);
        if (dup) continue;
        seen.push_back(v);
        RowSet rows_for_v = dirty.ScanEquals(c, v);
        size_t cnt = rows_for_v.Count();
        if (cnt >= sparse_floor && cnt < sparse_cap) {
          sparse_ops.push_back(std::move(rows_for_v));
        }
      }
    }
    FALCON_CHECK(sparse_ops.size() == 2);
    sparse_card_a = sparse_ops[0].Count();
    sparse_card_b = sparse_ops[1].Count();
    // Mid-density operands (~1% fill): the probe column's postings. Here a
    // flat word loop reads every word but at full SIMD width, while arrays
    // still pay per-element compares — the crossover regime where dense
    // compute wins and compression is a storage-only call.
    RowSet md_a = dirty.ScanEquals(1, probes[0]);
    RowSet md_b = dirty.ScanEquals(1, probes[1 % probes.size()]);
    // Dense operands: ~50% / ~66% synthetic fills (bitmap containers, the
    // regime where compressed must stay within ~1.2x of the flat words).
    RowSet dn_a(dirty.num_rows()), dn_b(dirty.num_rows());
    for (size_t r = 0; r < dirty.num_rows(); r += 2) dn_a.Set(r);
    for (size_t r = 0; r < dirty.num_rows(); ++r) {
      if (r % 3 != 0) dn_b.Set(r);
    }
    size_t sink = 0;
    sparse_kernel = TimeAndCount(sparse_ops[0], sparse_ops[1], 2000, &sink);
    mid_kernel = TimeAndCount(md_a, md_b, 2000, &sink);
    dense_kernel = TimeAndCount(dn_a, dn_b, 200, &sink);
    prim = TimePrimitives(&sink);
    storage = RunStorageSweep(dirty);
    ab_dense = RunAb("ab_dense", clean, dirty, /*compressed=*/false);
    ab_comp = RunAb("ab_compressed", clean, dirty, /*compressed=*/true);
    crc_match = ab_dense.crc == ab_comp.crc;
    ab_metrics_match =
        ab_dense.run.metrics.user_updates == ab_comp.run.metrics.user_updates &&
        ab_dense.run.metrics.user_answers == ab_comp.run.metrics.user_answers &&
        ab_dense.run.metrics.cells_repaired ==
            ab_comp.run.metrics.cells_repaired &&
        ab_dense.run.metrics.queries_applied ==
            ab_comp.run.metrics.queries_applied;

    std::printf("\ncompressed sweep (sink %zu):\n", sink % 2);
    std::printf("  AndCount sparse (%zu∩%zu rows): dense %8.0f ns  "
                "compressed %8.0f ns (%.2fx)\n",
                sparse_card_a, sparse_card_b,
                sparse_kernel.dense_ns, sparse_kernel.comp_ns,
                sparse_kernel.dense_ns /
                    std::max(sparse_kernel.comp_ns, 1e-9));
    std::printf("  AndCount ~1%%:    dense %8.0f ns  compressed %8.0f ns "
                "(crossover regime)\n",
                mid_kernel.dense_ns, mid_kernel.comp_ns);
    std::printf("  AndCount dense:  dense %8.0f ns  compressed %8.0f ns "
                "(compressed/dense %.2fx)\n",
                dense_kernel.dense_ns, dense_kernel.comp_ns,
                dense_kernel.comp_ns / std::max(dense_kernel.dense_ns, 1e-9));
    std::printf("  dispatched primitives (%s tier, ns/op):\n",
                simd::LevelName(simd::ActiveLevel()));
    std::printf("    popcount_words      %9.0f   (1024-word container)\n",
                prim.popcount_ns);
    std::printf("    and_count_words     %9.0f\n", prim.and_count_ns);
    std::printf("    and3_count_words    %9.0f   (fused materialize+count)\n",
                prim.and3_count_ns);
    std::printf("    and_words           %9.0f   (incl. copy-in)\n",
                prim.and_ns);
    std::printf("    andnot_words        %9.0f   (incl. copy-in)\n",
                prim.andnot_ns);
    std::printf("    or_words            %9.0f   (incl. copy-in)\n",
                prim.or_ns);
    std::printf("    intersect_u16       %9.0f   (4096 ∩ 4096, merge)\n",
                prim.intersect_merge_ns);
    std::printf("    intersect_u16       %9.0f   (64 ∩ 4096, gallop)\n",
                prim.intersect_gallop_ns);
    std::printf("    intersect_u16_count %9.0f   (4096 ∩ 4096)\n",
                prim.intersect_count_ns);
    std::printf("    array_bitmap_count  %9.0f   (4096 vals vs chunk)\n",
                prim.array_bitmap_ns);
    std::printf("  storage (%zu warmed entries, shared byte budget):\n",
                storage.entries);
    std::printf("    per-entry bytes dense/compressed: %.1fx  "
                "(resident %zu vs %zu)\n",
                storage.ratio, storage.dense_resident, storage.comp_resident);
    std::printf("    containers: %zu array / %zu bitmap / %zu run\n",
                storage.arrays, storage.bitmaps, storage.runs);
    std::printf("    evictions under budget: dense %zu, compressed %zu\n",
                storage.dense_evictions, storage.comp_evictions);
    std::printf("  session A/B: dense %.1f ms (%zu KiB postings), "
                "compressed %.1f ms (%zu KiB postings, %.1fx)\n",
                ab_dense.run.wall_ms,
                ab_dense.run.metrics.posting_resident_bytes / 1024,
                ab_comp.run.wall_ms,
                ab_comp.run.metrics.posting_resident_bytes / 1024,
                ab_comp.run.metrics.posting_compression);
    std::printf("  final-table CRC match: %s; metrics match: %s\n",
                crc_match ? "yes" : "NO — DETERMINISM BROKEN",
                ab_metrics_match ? "yes" : "NO — DETERMINISM BROKEN");
  }

  FILE* f = std::fopen("BENCH_micro_postings.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"micro_postings\",\n  \"rows\": %zu,\n",
                 rows);
    std::fprintf(f, "  \"meta\": %s,\n",
                 bench::BenchMeta().Serialize().c_str());
    std::fprintf(f,
                 "  \"kernels\": {\"scan_equals_ms\": %.3f, "
                 "\"scan_multi_values\": %zu, \"scan_multi_ms\": %.3f, "
                 "\"scan_multi_per_value_ms\": %.3f},\n",
                 scan_ms, probes.size(), multi_ms, multi_per_value_ms);
    std::fprintf(f,
                 "  \"hot_loop\": {\"iters\": %zu, "
                 "\"delta_index_ms\": %.3f, \"invalidate_index_ms\": %.3f, "
                 "\"delta_misses\": %zu, \"invalidate_misses\": %zu, "
                 "\"delta_rows\": %zu},\n",
                 hot_delta.iters, hot_delta.index_ms, hot_inval.index_ms,
                 hot_delta.misses, hot_inval.misses, hot_delta.delta_rows);
    std::fprintf(f, "  \"modes\": {\n");
    PrintMode(f, delta, true);
    PrintMode(f, inval, true);
    PrintMode(f, budget, false);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"identical_metrics\": %s,\n",
                 identical ? "true" : "false");
    if (compressed_sweep) {
      std::fprintf(
          f,
          "  \"compressed\": {\n"
          "    \"kernels\": {\"sparse_dense_ns\": %.1f, "
          "\"sparse_comp_ns\": %.1f, \"sparse_card_a\": %zu, "
          "\"sparse_card_b\": %zu, \"mid_dense_ns\": %.1f, "
          "\"mid_comp_ns\": %.1f, \"dense_dense_ns\": %.1f, "
          "\"dense_comp_ns\": %.1f},\n",
          sparse_kernel.dense_ns, sparse_kernel.comp_ns, sparse_card_a,
          sparse_card_b, mid_kernel.dense_ns, mid_kernel.comp_ns,
          dense_kernel.dense_ns, dense_kernel.comp_ns);
      std::fprintf(
          f,
          "    \"primitives\": {\"simd_level\": \"%s\", "
          "\"popcount_words_ns\": %.1f, \"and_count_words_ns\": %.1f, "
          "\"and3_count_words_ns\": %.1f, "
          "\"and_words_ns\": %.1f, \"andnot_words_ns\": %.1f, "
          "\"or_words_ns\": %.1f, \"intersect_merge_ns\": %.1f, "
          "\"intersect_gallop_ns\": %.1f, \"intersect_count_ns\": %.1f, "
          "\"array_bitmap_count_ns\": %.1f},\n",
          simd::LevelName(simd::ActiveLevel()), prim.popcount_ns,
          prim.and_count_ns, prim.and3_count_ns, prim.and_ns, prim.andnot_ns,
          prim.or_ns, prim.intersect_merge_ns, prim.intersect_gallop_ns,
          prim.intersect_count_ns, prim.array_bitmap_ns);
      std::fprintf(
          f,
          "    \"storage\": {\"entries\": %zu, "
          "\"dense_resident_bytes\": %zu, \"comp_resident_bytes\": %zu, "
          "\"per_entry_ratio\": %.2f, \"array_containers\": %zu, "
          "\"bitmap_containers\": %zu, \"run_containers\": %zu, "
          "\"dense_evictions\": %zu, \"comp_evictions\": %zu},\n",
          storage.entries, storage.dense_resident, storage.comp_resident,
          storage.ratio, storage.arrays, storage.bitmaps, storage.runs,
          storage.dense_evictions, storage.comp_evictions);
      std::fprintf(
          f,
          "    \"session_ab\": {\"dense_wall_ms\": %.1f, "
          "\"comp_wall_ms\": %.1f, \"dense_posting_bytes\": %zu, "
          "\"comp_posting_bytes\": %zu, \"comp_compression\": %.2f, "
          "\"crc_match\": %s, \"metrics_match\": %s}\n  },\n",
          ab_dense.run.wall_ms, ab_comp.run.wall_ms,
          ab_dense.run.metrics.posting_resident_bytes,
          ab_comp.run.metrics.posting_resident_bytes,
          ab_comp.run.metrics.posting_compression,
          crc_match ? "true" : "false",
          ab_metrics_match ? "true" : "false");
    }
    std::fprintf(f,
                 "  \"index_speedup\": %.2f,\n"
                 "  \"session_index_speedup\": %.2f,\n"
                 "  \"session_wall_speedup\": %.3f\n}\n",
                 index_speedup, session_index_speedup, wall_speedup);
    std::fclose(f);
    std::printf("wrote BENCH_micro_postings.json\n");
  }
  return (identical && crc_match && ab_metrics_match) ? 0 : 1;
}
