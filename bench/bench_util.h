// Shared harness plumbing for the paper-reproduction benchmarks: workload
// construction (dataset + injected errors), scale handling, and table
// printing helpers. Every bench binary runs with no arguments at a
// CI-sized default scale; pass --scale=<f> to grow or shrink all datasets
// (--scale=2 ≈ the paper's sizes for Hospital; DBLP/Synth-1M stay scaled
// down unless you pass more).
#ifndef FALCON_BENCH_BENCH_UTIL_H_
#define FALCON_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "datagen/datasets.h"
#include "errorgen/injector.h"
#include "relational/table.h"

namespace falcon {
namespace bench {

/// One dataset instance ready for cleaning runs.
struct Workload {
  std::string name;
  Table clean;
  Table dirty;
  size_t errors = 0;
  size_t patterns = 0;
};

/// Parses --scale=<f> (default 1.0) from argv.
double ParseScale(int argc, char** argv);

/// Parses --quick (shrinks everything further for smoke runs).
bool ParseQuick(int argc, char** argv);

/// Builds one workload by dataset name: Soccer, Hospital, Synth10k,
/// Synth1M, DBLP, BUS. Sizes at scale 1 are CI-sized stand-ins for the
/// paper's instances (documented in EXPERIMENTS.md).
Workload MakeWorkload(const std::string& name, double scale);

/// The paper's six evaluation datasets in its order.
std::vector<std::string> AllDatasetNames();

/// Prints a banner with the binary's purpose and the paper artifact it
/// reproduces.
void PrintBanner(const std::string& title, const std::string& paper_ref);

}  // namespace bench
}  // namespace falcon

#endif  // FALCON_BENCH_BENCH_UTIL_H_
