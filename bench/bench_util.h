// Shared harness plumbing for the paper-reproduction benchmarks: workload
// construction (dataset + injected errors), scale handling, provenance
// metadata for emitted JSON, and table printing helpers. Every bench
// binary runs with no arguments at a CI-sized default scale; pass
// --scale=<f> to grow or shrink all datasets (--scale=2 ≈ the paper's
// sizes for Hospital; DBLP/Synth-1M stay scaled down unless you pass
// more).
#ifndef FALCON_BENCH_BENCH_UTIL_H_
#define FALCON_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "datagen/workload.h"
#include "relational/table.h"

namespace falcon {
namespace bench {

/// One dataset instance ready for cleaning runs (the canonical library
/// type — the cleaning service builds the same workloads through it, which
/// is what makes service-vs-serial bit-identity checks possible).
using Workload = CleaningWorkload;

/// Reads --scale=<f> (default 1.0; non-positive values fall back to 1.0).
double ParseScale(const Flags& flags);

/// Reads --quick (shrinks everything further for smoke runs).
bool ParseQuick(const Flags& flags);

/// Builds one workload by dataset name (delegates to MakeCleaningWorkload;
/// dies on unknown names — bench datasets are compiled in).
Workload MakeWorkload(const std::string& name, double scale);

/// The paper's six evaluation datasets in its order.
std::vector<std::string> AllDatasetNames();

/// Provenance block for bench JSON output: git SHA and build type baked in
/// at configure time, the resolved worker-thread count (FALCON_THREADS),
/// and an ISO-8601 UTC timestamp. Embed as the "meta" member of every
/// emitted JSON document so artifacts are attributable to a commit and
/// build.
JsonValue BenchMeta();

/// Prints a banner with the binary's purpose and the paper artifact it
/// reproduces.
void PrintBanner(const std::string& title, const std::string& paper_ref);

}  // namespace bench
}  // namespace falcon

#endif  // FALCON_BENCH_BENCH_UTIL_H_
