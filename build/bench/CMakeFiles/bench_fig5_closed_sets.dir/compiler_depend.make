# Empty compiler generated dependencies file for bench_fig5_closed_sets.
# This may be replaced when dependencies are built.
