file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_closed_sets.dir/bench_fig5_closed_sets.cc.o"
  "CMakeFiles/bench_fig5_closed_sets.dir/bench_fig5_closed_sets.cc.o.d"
  "CMakeFiles/bench_fig5_closed_sets.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig5_closed_sets.dir/bench_util.cc.o.d"
  "bench_fig5_closed_sets"
  "bench_fig5_closed_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_closed_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
