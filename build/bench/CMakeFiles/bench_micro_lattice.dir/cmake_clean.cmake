file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_lattice.dir/bench_micro_lattice.cc.o"
  "CMakeFiles/bench_micro_lattice.dir/bench_micro_lattice.cc.o.d"
  "bench_micro_lattice"
  "bench_micro_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
