# Empty dependencies file for bench_micro_lattice.
# This may be replaced when dependencies are built.
