file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_benefit.dir/bench_fig4_benefit.cc.o"
  "CMakeFiles/bench_fig4_benefit.dir/bench_fig4_benefit.cc.o.d"
  "CMakeFiles/bench_fig4_benefit.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig4_benefit.dir/bench_util.cc.o.d"
  "bench_fig4_benefit"
  "bench_fig4_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
