# Empty dependencies file for bench_fig9_mistakes.
# This may be replaced when dependencies are built.
