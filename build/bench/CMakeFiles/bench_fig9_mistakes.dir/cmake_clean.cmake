file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_mistakes.dir/bench_fig9_mistakes.cc.o"
  "CMakeFiles/bench_fig9_mistakes.dir/bench_fig9_mistakes.cc.o.d"
  "CMakeFiles/bench_fig9_mistakes.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig9_mistakes.dir/bench_util.cc.o.d"
  "bench_fig9_mistakes"
  "bench_fig9_mistakes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mistakes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
