# Empty compiler generated dependencies file for bench_ext_ablations.
# This may be replaced when dependencies are built.
