# Empty dependencies file for bench_table6_search.
# This may be replaced when dependencies are built.
