file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_search.dir/bench_table6_search.cc.o"
  "CMakeFiles/bench_table6_search.dir/bench_table6_search.cc.o.d"
  "CMakeFiles/bench_table6_search.dir/bench_util.cc.o"
  "CMakeFiles/bench_table6_search.dir/bench_util.cc.o.d"
  "bench_table6_search"
  "bench_table6_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
