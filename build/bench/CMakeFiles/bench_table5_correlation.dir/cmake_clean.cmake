file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_correlation.dir/bench_table5_correlation.cc.o"
  "CMakeFiles/bench_table5_correlation.dir/bench_table5_correlation.cc.o.d"
  "CMakeFiles/bench_table5_correlation.dir/bench_util.cc.o"
  "CMakeFiles/bench_table5_correlation.dir/bench_util.cc.o.d"
  "bench_table5_correlation"
  "bench_table5_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
