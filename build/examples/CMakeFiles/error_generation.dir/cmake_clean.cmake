file(REMOVE_RECURSE
  "CMakeFiles/error_generation.dir/error_generation.cc.o"
  "CMakeFiles/error_generation.dir/error_generation.cc.o.d"
  "error_generation"
  "error_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
