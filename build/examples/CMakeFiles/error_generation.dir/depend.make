# Empty dependencies file for error_generation.
# This may be replaced when dependencies are built.
