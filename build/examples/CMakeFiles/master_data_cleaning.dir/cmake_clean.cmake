file(REMOVE_RECURSE
  "CMakeFiles/master_data_cleaning.dir/master_data_cleaning.cc.o"
  "CMakeFiles/master_data_cleaning.dir/master_data_cleaning.cc.o.d"
  "master_data_cleaning"
  "master_data_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_data_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
