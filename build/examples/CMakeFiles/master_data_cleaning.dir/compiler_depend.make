# Empty compiler generated dependencies file for master_data_cleaning.
# This may be replaced when dependencies are built.
