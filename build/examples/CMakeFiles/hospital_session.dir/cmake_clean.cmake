file(REMOVE_RECURSE
  "CMakeFiles/hospital_session.dir/hospital_session.cc.o"
  "CMakeFiles/hospital_session.dir/hospital_session.cc.o.d"
  "hospital_session"
  "hospital_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
