# Empty compiler generated dependencies file for hospital_session.
# This may be replaced when dependencies are built.
