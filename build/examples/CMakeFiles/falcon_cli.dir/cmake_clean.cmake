file(REMOVE_RECURSE
  "CMakeFiles/falcon_cli.dir/falcon_cli.cc.o"
  "CMakeFiles/falcon_cli.dir/falcon_cli.cc.o.d"
  "falcon_cli"
  "falcon_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
