# Empty dependencies file for falcon_cli.
# This may be replaced when dependencies are built.
