# Empty dependencies file for interactive_repl.
# This may be replaced when dependencies are built.
