# Empty compiler generated dependencies file for soccer_cleaning.
# This may be replaced when dependencies are built.
