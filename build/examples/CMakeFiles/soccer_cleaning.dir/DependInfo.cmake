
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/soccer_cleaning.cc" "examples/CMakeFiles/soccer_cleaning.dir/soccer_cleaning.cc.o" "gcc" "examples/CMakeFiles/soccer_cleaning.dir/soccer_cleaning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/falcon_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/falcon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/falcon_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/errorgen/CMakeFiles/falcon_errorgen.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/falcon_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/falcon_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/falcon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/falcon_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/falcon_transform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
