# Empty dependencies file for falcon_common.
# This may be replaced when dependencies are built.
