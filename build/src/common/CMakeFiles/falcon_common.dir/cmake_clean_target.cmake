file(REMOVE_RECURSE
  "libfalcon_common.a"
)
