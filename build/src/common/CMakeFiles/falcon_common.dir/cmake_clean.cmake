file(REMOVE_RECURSE
  "CMakeFiles/falcon_common.dir/logging.cc.o"
  "CMakeFiles/falcon_common.dir/logging.cc.o.d"
  "CMakeFiles/falcon_common.dir/status.cc.o"
  "CMakeFiles/falcon_common.dir/status.cc.o.d"
  "CMakeFiles/falcon_common.dir/str_util.cc.o"
  "CMakeFiles/falcon_common.dir/str_util.cc.o.d"
  "libfalcon_common.a"
  "libfalcon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
