file(REMOVE_RECURSE
  "libfalcon_baselines.a"
)
