# Empty dependencies file for falcon_baselines.
# This may be replaced when dependencies are built.
