file(REMOVE_RECURSE
  "CMakeFiles/falcon_baselines.dir/active_learning.cc.o"
  "CMakeFiles/falcon_baselines.dir/active_learning.cc.o.d"
  "CMakeFiles/falcon_baselines.dir/baseline_util.cc.o"
  "CMakeFiles/falcon_baselines.dir/baseline_util.cc.o.d"
  "CMakeFiles/falcon_baselines.dir/cfd_miner.cc.o"
  "CMakeFiles/falcon_baselines.dir/cfd_miner.cc.o.d"
  "CMakeFiles/falcon_baselines.dir/refine.cc.o"
  "CMakeFiles/falcon_baselines.dir/refine.cc.o.d"
  "CMakeFiles/falcon_baselines.dir/rule_learning.cc.o"
  "CMakeFiles/falcon_baselines.dir/rule_learning.cc.o.d"
  "libfalcon_baselines.a"
  "libfalcon_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
