# Empty dependencies file for falcon_ml.
# This may be replaced when dependencies are built.
