file(REMOVE_RECURSE
  "libfalcon_ml.a"
)
