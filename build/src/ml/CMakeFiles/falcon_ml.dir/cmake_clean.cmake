file(REMOVE_RECURSE
  "CMakeFiles/falcon_ml.dir/linear_svm.cc.o"
  "CMakeFiles/falcon_ml.dir/linear_svm.cc.o.d"
  "libfalcon_ml.a"
  "libfalcon_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
