file(REMOVE_RECURSE
  "CMakeFiles/falcon_datagen.dir/datasets.cc.o"
  "CMakeFiles/falcon_datagen.dir/datasets.cc.o.d"
  "CMakeFiles/falcon_datagen.dir/generator.cc.o"
  "CMakeFiles/falcon_datagen.dir/generator.cc.o.d"
  "libfalcon_datagen.a"
  "libfalcon_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
