file(REMOVE_RECURSE
  "libfalcon_datagen.a"
)
