# Empty dependencies file for falcon_datagen.
# This may be replaced when dependencies are built.
