file(REMOVE_RECURSE
  "libfalcon_errorgen.a"
)
