# Empty compiler generated dependencies file for falcon_errorgen.
# This may be replaced when dependencies are built.
