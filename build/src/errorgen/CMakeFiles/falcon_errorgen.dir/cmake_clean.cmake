file(REMOVE_RECURSE
  "CMakeFiles/falcon_errorgen.dir/cfd.cc.o"
  "CMakeFiles/falcon_errorgen.dir/cfd.cc.o.d"
  "CMakeFiles/falcon_errorgen.dir/injector.cc.o"
  "CMakeFiles/falcon_errorgen.dir/injector.cc.o.d"
  "libfalcon_errorgen.a"
  "libfalcon_errorgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_errorgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
