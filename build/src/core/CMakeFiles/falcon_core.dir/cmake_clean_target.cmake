file(REMOVE_RECURSE
  "libfalcon_core.a"
)
