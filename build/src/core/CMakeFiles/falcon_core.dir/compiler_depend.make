# Empty compiler generated dependencies file for falcon_core.
# This may be replaced when dependencies are built.
