
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/lattice.cc" "src/core/CMakeFiles/falcon_core.dir/lattice.cc.o" "gcc" "src/core/CMakeFiles/falcon_core.dir/lattice.cc.o.d"
  "/root/repo/src/core/master_oracle.cc" "src/core/CMakeFiles/falcon_core.dir/master_oracle.cc.o" "gcc" "src/core/CMakeFiles/falcon_core.dir/master_oracle.cc.o.d"
  "/root/repo/src/core/search.cc" "src/core/CMakeFiles/falcon_core.dir/search.cc.o" "gcc" "src/core/CMakeFiles/falcon_core.dir/search.cc.o.d"
  "/root/repo/src/core/search_algorithms.cc" "src/core/CMakeFiles/falcon_core.dir/search_algorithms.cc.o" "gcc" "src/core/CMakeFiles/falcon_core.dir/search_algorithms.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/falcon_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/falcon_core.dir/session.cc.o.d"
  "/root/repo/src/core/violation_detector.cc" "src/core/CMakeFiles/falcon_core.dir/violation_detector.cc.o" "gcc" "src/core/CMakeFiles/falcon_core.dir/violation_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/falcon_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/falcon_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/falcon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
