file(REMOVE_RECURSE
  "CMakeFiles/falcon_core.dir/lattice.cc.o"
  "CMakeFiles/falcon_core.dir/lattice.cc.o.d"
  "CMakeFiles/falcon_core.dir/master_oracle.cc.o"
  "CMakeFiles/falcon_core.dir/master_oracle.cc.o.d"
  "CMakeFiles/falcon_core.dir/search.cc.o"
  "CMakeFiles/falcon_core.dir/search.cc.o.d"
  "CMakeFiles/falcon_core.dir/search_algorithms.cc.o"
  "CMakeFiles/falcon_core.dir/search_algorithms.cc.o.d"
  "CMakeFiles/falcon_core.dir/session.cc.o"
  "CMakeFiles/falcon_core.dir/session.cc.o.d"
  "CMakeFiles/falcon_core.dir/violation_detector.cc.o"
  "CMakeFiles/falcon_core.dir/violation_detector.cc.o.d"
  "libfalcon_core.a"
  "libfalcon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
