file(REMOVE_RECURSE
  "libfalcon_transform.a"
)
