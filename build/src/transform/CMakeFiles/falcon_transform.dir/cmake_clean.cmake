file(REMOVE_RECURSE
  "CMakeFiles/falcon_transform.dir/transformations.cc.o"
  "CMakeFiles/falcon_transform.dir/transformations.cc.o.d"
  "libfalcon_transform.a"
  "libfalcon_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
