# Empty dependencies file for falcon_transform.
# This may be replaced when dependencies are built.
