file(REMOVE_RECURSE
  "libfalcon_relational.a"
)
