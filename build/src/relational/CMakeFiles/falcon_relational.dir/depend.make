# Empty dependencies file for falcon_relational.
# This may be replaced when dependencies are built.
