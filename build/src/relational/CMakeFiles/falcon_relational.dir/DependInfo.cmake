
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/csv.cc" "src/relational/CMakeFiles/falcon_relational.dir/csv.cc.o" "gcc" "src/relational/CMakeFiles/falcon_relational.dir/csv.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/falcon_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/falcon_relational.dir/schema.cc.o.d"
  "/root/repo/src/relational/select.cc" "src/relational/CMakeFiles/falcon_relational.dir/select.cc.o" "gcc" "src/relational/CMakeFiles/falcon_relational.dir/select.cc.o.d"
  "/root/repo/src/relational/sqlu.cc" "src/relational/CMakeFiles/falcon_relational.dir/sqlu.cc.o" "gcc" "src/relational/CMakeFiles/falcon_relational.dir/sqlu.cc.o.d"
  "/root/repo/src/relational/sqlu_parser.cc" "src/relational/CMakeFiles/falcon_relational.dir/sqlu_parser.cc.o" "gcc" "src/relational/CMakeFiles/falcon_relational.dir/sqlu_parser.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/relational/CMakeFiles/falcon_relational.dir/table.cc.o" "gcc" "src/relational/CMakeFiles/falcon_relational.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/falcon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
