file(REMOVE_RECURSE
  "CMakeFiles/falcon_relational.dir/csv.cc.o"
  "CMakeFiles/falcon_relational.dir/csv.cc.o.d"
  "CMakeFiles/falcon_relational.dir/schema.cc.o"
  "CMakeFiles/falcon_relational.dir/schema.cc.o.d"
  "CMakeFiles/falcon_relational.dir/select.cc.o"
  "CMakeFiles/falcon_relational.dir/select.cc.o.d"
  "CMakeFiles/falcon_relational.dir/sqlu.cc.o"
  "CMakeFiles/falcon_relational.dir/sqlu.cc.o.d"
  "CMakeFiles/falcon_relational.dir/sqlu_parser.cc.o"
  "CMakeFiles/falcon_relational.dir/sqlu_parser.cc.o.d"
  "CMakeFiles/falcon_relational.dir/table.cc.o"
  "CMakeFiles/falcon_relational.dir/table.cc.o.d"
  "libfalcon_relational.a"
  "libfalcon_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
