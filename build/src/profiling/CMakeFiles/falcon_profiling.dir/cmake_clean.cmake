file(REMOVE_RECURSE
  "CMakeFiles/falcon_profiling.dir/correlation.cc.o"
  "CMakeFiles/falcon_profiling.dir/correlation.cc.o.d"
  "CMakeFiles/falcon_profiling.dir/fd_discovery.cc.o"
  "CMakeFiles/falcon_profiling.dir/fd_discovery.cc.o.d"
  "libfalcon_profiling.a"
  "libfalcon_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/falcon_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
