
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/correlation.cc" "src/profiling/CMakeFiles/falcon_profiling.dir/correlation.cc.o" "gcc" "src/profiling/CMakeFiles/falcon_profiling.dir/correlation.cc.o.d"
  "/root/repo/src/profiling/fd_discovery.cc" "src/profiling/CMakeFiles/falcon_profiling.dir/fd_discovery.cc.o" "gcc" "src/profiling/CMakeFiles/falcon_profiling.dir/fd_discovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/falcon_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/falcon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
