file(REMOVE_RECURSE
  "libfalcon_profiling.a"
)
