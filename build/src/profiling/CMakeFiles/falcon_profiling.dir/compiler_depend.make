# Empty compiler generated dependencies file for falcon_profiling.
# This may be replaced when dependencies are built.
