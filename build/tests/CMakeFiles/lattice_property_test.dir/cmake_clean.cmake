file(REMOVE_RECURSE
  "CMakeFiles/lattice_property_test.dir/lattice_property_test.cc.o"
  "CMakeFiles/lattice_property_test.dir/lattice_property_test.cc.o.d"
  "lattice_property_test"
  "lattice_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
