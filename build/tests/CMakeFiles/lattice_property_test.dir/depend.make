# Empty dependencies file for lattice_property_test.
# This may be replaced when dependencies are built.
