file(REMOVE_RECURSE
  "CMakeFiles/session_sweep_test.dir/session_sweep_test.cc.o"
  "CMakeFiles/session_sweep_test.dir/session_sweep_test.cc.o.d"
  "session_sweep_test"
  "session_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
