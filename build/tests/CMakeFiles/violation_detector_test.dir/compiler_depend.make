# Empty compiler generated dependencies file for violation_detector_test.
# This may be replaced when dependencies are built.
