file(REMOVE_RECURSE
  "CMakeFiles/violation_detector_test.dir/violation_detector_test.cc.o"
  "CMakeFiles/violation_detector_test.dir/violation_detector_test.cc.o.d"
  "violation_detector_test"
  "violation_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violation_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
