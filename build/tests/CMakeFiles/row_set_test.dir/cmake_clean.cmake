file(REMOVE_RECURSE
  "CMakeFiles/row_set_test.dir/row_set_test.cc.o"
  "CMakeFiles/row_set_test.dir/row_set_test.cc.o.d"
  "row_set_test"
  "row_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
