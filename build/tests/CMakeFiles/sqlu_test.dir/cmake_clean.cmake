file(REMOVE_RECURSE
  "CMakeFiles/sqlu_test.dir/sqlu_test.cc.o"
  "CMakeFiles/sqlu_test.dir/sqlu_test.cc.o.d"
  "sqlu_test"
  "sqlu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
