# Empty dependencies file for sqlu_test.
# This may be replaced when dependencies are built.
