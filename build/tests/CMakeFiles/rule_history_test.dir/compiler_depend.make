# Empty compiler generated dependencies file for rule_history_test.
# This may be replaced when dependencies are built.
