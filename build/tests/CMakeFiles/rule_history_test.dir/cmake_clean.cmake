file(REMOVE_RECURSE
  "CMakeFiles/rule_history_test.dir/rule_history_test.cc.o"
  "CMakeFiles/rule_history_test.dir/rule_history_test.cc.o.d"
  "rule_history_test"
  "rule_history_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
