file(REMOVE_RECURSE
  "CMakeFiles/sqlu_parser_test.dir/sqlu_parser_test.cc.o"
  "CMakeFiles/sqlu_parser_test.dir/sqlu_parser_test.cc.o.d"
  "sqlu_parser_test"
  "sqlu_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlu_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
