# Empty dependencies file for sqlu_parser_test.
# This may be replaced when dependencies are built.
