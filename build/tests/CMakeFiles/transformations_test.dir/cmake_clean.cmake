file(REMOVE_RECURSE
  "CMakeFiles/transformations_test.dir/transformations_test.cc.o"
  "CMakeFiles/transformations_test.dir/transformations_test.cc.o.d"
  "transformations_test"
  "transformations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
