file(REMOVE_RECURSE
  "CMakeFiles/repair_log_test.dir/repair_log_test.cc.o"
  "CMakeFiles/repair_log_test.dir/repair_log_test.cc.o.d"
  "repair_log_test"
  "repair_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
