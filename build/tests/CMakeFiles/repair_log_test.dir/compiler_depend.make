# Empty compiler generated dependencies file for repair_log_test.
# This may be replaced when dependencies are built.
