file(REMOVE_RECURSE
  "CMakeFiles/master_oracle_test.dir/master_oracle_test.cc.o"
  "CMakeFiles/master_oracle_test.dir/master_oracle_test.cc.o.d"
  "master_oracle_test"
  "master_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
