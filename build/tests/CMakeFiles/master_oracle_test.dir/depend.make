# Empty dependencies file for master_oracle_test.
# This may be replaced when dependencies are built.
