file(REMOVE_RECURSE
  "CMakeFiles/posting_index_test.dir/posting_index_test.cc.o"
  "CMakeFiles/posting_index_test.dir/posting_index_test.cc.o.d"
  "posting_index_test"
  "posting_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posting_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
