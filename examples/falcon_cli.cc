// falcon_cli: end-to-end command-line driver for the library.
//
//   falcon_cli generate --dataset=soccer [--rows=N] [--seed=S]
//              --out-clean=clean.csv --out-dirty=dirty.csv
//       Materializes a dataset and its injected-error twin as CSV.
//
//   falcon_cli clean --clean=clean.csv --dirty=dirty.csv
//              [--algo=codive] [--budget=3] [--mistakes=0.0]
//              [--closed-sets=true] [--rule-history=false] [--out=fixed.csv]
//       Runs a full simulated cleaning session and prints U/A/T_C/benefit.
//
//   falcon_cli profile --table=t.csv --target=Attr [--k=6]
//       Prints the CORDS correlation ranking for one attribute.
//
//   falcon_cli fds --table=t.csv [--max-lhs=2] [--min-confidence=0.98]
//       Prints discovered (approximate) functional dependencies.
//
//   falcon_cli detect --table=dirty.csv [--limit=20]
//       Mines approximate FDs and flags suspicious cells with suggested
//       repairs — no ground truth needed.
//
//   falcon_cli query --table=t.csv --sql="SELECT ... FROM T ..."
//       Runs a SELECT (projection/WHERE/GROUP BY/ORDER BY/LIMIT) and
//       prints the result.
//
//   falcon_cli ping --socket=/tmp/falcon_serverd.sock   (or --port=N)
//       Health-checks a running falcon_serverd: uptime, live/max session
//       slots, sessions recovered from journals, posting-cache residency.
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/simd.h"
#include "core/session.h"
#include "core/violation_detector.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"
#include "profiling/correlation.h"
#include "profiling/fd_discovery.h"
#include "relational/csv.h"
#include "relational/select.h"
#include "service/client.h"

using namespace falcon;

namespace {

constexpr char kUsage[] =
    "usage: falcon_cli <generate|clean|profile|fds|detect|query|ping> "
    "[--flags]\n"
    "run `falcon_cli <subcommand> --help` for that subcommand's flags\n"
    "(see the header of examples/falcon_cli.cc for examples)\n";

int Usage() {
  std::fprintf(stderr, "%s", kUsage);
  return 2;
}

/// Registers the chosen subcommand's flags (so --help lists them and
/// unknown --flags are diagnosed before any file is read) and runs the
/// Done() check. Returns the exit code to use, or nullopt to proceed.
std::optional<int> CheckFlags(const std::string& cmd, const Flags& flags) {
  // Shared across every subcommand: pick the SIMD kernel tier before any
  // bitmap work runs.
  simd::ApplyLevelFlag(flags);
  if (cmd == "generate") {
    flags.Describe("dataset", "\"synth\"",
                   "soccer|hospital|bus|dblp|synth");
    flags.Describe("rows", "0", "row count (0 = dataset default)");
    flags.Describe("seed", "23", "generation seed");
    flags.Describe("out-clean", "\"clean.csv\"", "clean CSV output path");
    flags.Describe("out-dirty", "\"dirty.csv\"", "dirty CSV output path");
    return flags.Done("falcon_cli generate — materialize a dataset and its "
                      "injected-error twin as CSV");
  }
  if (cmd == "clean") {
    flags.Describe("clean", "\"\"", "ground-truth CSV (required)");
    flags.Describe("dirty", "\"\"", "dirty CSV to repair (required)");
    flags.Describe("algo", "\"codive\"",
                   "bfs|dfs|ducc|dive|codive|offline");
    flags.Describe("budget", "3", "validity questions per episode");
    flags.Describe("closed-sets", "true", "prune lattice via closed sets");
    flags.Describe("rule-history", "false", "reuse rules across episodes");
    flags.Describe("mistakes", "0", "P(user answers a question wrong)");
    flags.Describe("lattice-attrs", "7", "top-k correlated attributes");
    flags.Describe("detector", "false",
                   "repair only detector-flagged cells (no ground truth)");
    flags.Describe("out", "\"\"", "write the repaired table here");
    flags.Describe("show-log", "false", "print the repair log as SQL");
    return flags.Done("falcon_cli clean — run a full simulated cleaning "
                      "session and print U/A/T_C/benefit");
  }
  if (cmd == "profile") {
    flags.Describe("table", "\"\"", "CSV table to profile (required)");
    flags.Describe("target", "\"\"", "attribute to rank against (required)");
    flags.Describe("k", "6", "how many attributes to print");
    return flags.Done("falcon_cli profile — print the CORDS correlation "
                      "ranking for one attribute");
  }
  if (cmd == "fds") {
    flags.Describe("table", "\"\"", "CSV table to mine (required)");
    flags.Describe("max-lhs", "2", "max determinant size");
    flags.Describe("min-confidence", "0.98", "approximate-FD threshold");
    return flags.Done("falcon_cli fds — print discovered (approximate) "
                      "functional dependencies");
  }
  if (cmd == "detect") {
    flags.Describe("table", "\"\"", "dirty CSV to scan (required)");
    flags.Describe("limit", "20", "max suspect cells to print");
    return flags.Done("falcon_cli detect — flag suspicious cells with "
                      "suggested repairs, no ground truth needed");
  }
  if (cmd == "query") {
    flags.Describe("table", "\"\"", "CSV table to query (required)");
    flags.Describe("sql", "\"\"", "SELECT statement (required)");
    return flags.Done("falcon_cli query — run a SELECT and print the "
                      "result");
  }
  if (cmd == "ping") {
    flags.Describe("socket", "\"/tmp/falcon_serverd.sock\"",
                   "unix socket of the daemon (empty with --port for TCP)");
    flags.Describe("port", "0", "TCP port of the daemon on 127.0.0.1");
    flags.Describe("deadline_ms", "5000", "response deadline");
    return flags.Done("falcon_cli ping — health-check a running "
                      "falcon_serverd");
  }
  return std::nullopt;
}

StatusOr<Dataset> MakeByName(const std::string& name, size_t rows,
                             uint64_t seed) {
  if (name == "soccer") return MakeSoccer(seed);
  if (name == "hospital") return MakeHospital(rows ? rows : 10000, seed);
  if (name == "bus") return MakeBus(rows ? rows : 25000, seed);
  if (name == "dblp") return MakeDblp(rows ? rows : 50000, seed);
  if (name == "synth") return MakeSynth(rows ? rows : 10000, seed);
  return Status::InvalidArgument("unknown dataset " + name);
}

int CmdGenerate(const Flags& flags) {
  auto ds = MakeByName(flags.GetString("dataset", "synth"),
                       static_cast<size_t>(flags.GetInt("rows", 0)),
                       static_cast<uint64_t>(flags.GetInt("seed", 23)));
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  if (!dirty.ok()) {
    std::cerr << dirty.status() << "\n";
    return 1;
  }
  std::string out_clean = flags.GetString("out-clean", "clean.csv");
  std::string out_dirty = flags.GetString("out-dirty", "dirty.csv");
  Status s = WriteCsv(ds->clean, out_clean);
  if (s.ok()) s = WriteCsv(dirty->dirty, out_dirty);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::printf("wrote %s and %s (%zu rows, %zu injected errors, %zu rule "
              "patterns)\n",
              out_clean.c_str(), out_dirty.c_str(), ds->clean.num_rows(),
              dirty->errors.size(), dirty->injected_patterns.size());
  return 0;
}

int CmdClean(const Flags& flags) {
  auto pool = std::make_shared<ValuePool>();
  auto clean = ReadCsv(flags.GetString("clean"), "T", pool);
  auto dirty = ReadCsv(flags.GetString("dirty"), "T", pool);
  if (!clean.ok() || !dirty.ok()) {
    std::cerr << "load failed: "
              << (clean.ok() ? dirty.status() : clean.status()) << "\n";
    return 1;
  }

  std::string algo = flags.GetString("algo", "codive");
  SearchKind kind = SearchKind::kCoDive;
  if (algo == "bfs") kind = SearchKind::kBfs;
  else if (algo == "dfs") kind = SearchKind::kDfs;
  else if (algo == "ducc") kind = SearchKind::kDucc;
  else if (algo == "dive") kind = SearchKind::kDive;
  else if (algo == "codive") kind = SearchKind::kCoDive;
  else if (algo == "offline") kind = SearchKind::kOffline;
  else {
    std::cerr << "unknown --algo " << algo << "\n";
    return 1;
  }

  SessionOptions options;
  options.budget = static_cast<size_t>(flags.GetInt("budget", 3));
  options.use_closed_sets = flags.GetBool("closed-sets", true);
  options.use_rule_history = flags.GetBool("rule-history", false);
  options.question_mistake_prob = flags.GetDouble("mistakes", 0.0);
  options.lattice_attrs =
      static_cast<size_t>(flags.GetInt("lattice-attrs", 7));
  // --detector: the user only repairs cells the FD-violation detector
  // flags (no omniscient error list; residual errors stay).
  options.detector_driven = flags.GetBool("detector", false);

  Table working = dirty->Clone();
  std::unique_ptr<SearchAlgorithm> algorithm = MakeSearchAlgorithm(kind);
  CleaningSession session(&*clean, &working, algorithm.get(), options);
  auto m = session.Run();
  if (!m.ok()) {
    std::cerr << m.status() << "\n";
    return 1;
  }
  std::printf("algo=%s errors=%zu U=%zu A=%zu T_C=%zu benefit=%.3f "
              "queries=%zu converged=%s\n",
              SearchKindName(kind), m->initial_errors, m->user_updates,
              m->user_answers, m->TotalCost(), m->Benefit(),
              m->queries_applied, m->converged ? "yes" : "no");
  if (flags.Has("out")) {
    Status s = WriteCsv(working, flags.GetString("out"));
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  if (flags.GetBool("show-log", false)) {
    std::printf("%s", session.log().ToSqlScript().c_str());
  }
  return 0;
}

int CmdProfile(const Flags& flags) {
  auto table = ReadCsv(flags.GetString("table"), "T");
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }
  int target = table->schema().AttrIndex(flags.GetString("target"));
  if (target < 0) {
    std::cerr << "unknown --target attribute\n";
    return 1;
  }
  CordsProfiler profiler(&*table);
  size_t k = static_cast<size_t>(flags.GetInt("k", 6));
  std::printf("correlation with %s:\n",
              flags.GetString("target").c_str());
  for (size_t c : profiler.TopKAttributes(static_cast<size_t>(target), k)) {
    std::printf("  %-24s %.4f\n", table->schema().attribute(c).c_str(),
                profiler.PairCorrelation(c, static_cast<size_t>(target)));
  }
  return 0;
}

int CmdFds(const Flags& flags) {
  auto table = ReadCsv(flags.GetString("table"), "T");
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }
  FdDiscoveryOptions options;
  options.max_lhs = static_cast<size_t>(flags.GetInt("max-lhs", 2));
  options.min_confidence = flags.GetDouble("min-confidence", 0.98);
  auto fds = DiscoverFds(*table, options);
  std::printf("%zu dependencies:\n", fds.size());
  for (const DiscoveredFd& fd : fds) {
    std::printf("  %s\n", fd.ToString(table->schema()).c_str());
  }
  return 0;
}

int CmdDetect(const Flags& flags) {
  auto table = ReadCsv(flags.GetString("table"), "T");
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }
  ViolationDetectorOptions options;
  auto report = DetectViolations(*table, options);
  size_t limit = static_cast<size_t>(flags.GetInt("limit", 20));
  std::printf("%zu approximate FDs, %zu suspect cells\n",
              report.fds.size(), report.suspects.size());
  for (size_t i = 0; i < report.suspects.size() && i < limit; ++i) {
    const Suspect& s = report.suspects[i];
    std::printf("  row %u  %-16s '%s' -> '%s'  (consensus %.2f, %s)\n",
                s.row, table->schema().attribute(s.col).c_str(),
                std::string(table->pool()->Get(s.current)).c_str(),
                std::string(table->pool()->Get(s.suggested)).c_str(),
                s.consensus,
                report.fds[s.fd_index].ToString(table->schema()).c_str());
  }
  return 0;
}

int CmdQuery(const Flags& flags) {
  auto table = ReadCsv(flags.GetString("table"), "T");
  if (!table.ok()) {
    std::cerr << table.status() << "\n";
    return 1;
  }
  auto result = RunSelect(*table, flags.GetString("sql"));
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::printf("%s(%zu rows)\n", result->ToString(100).c_str(),
              result->num_rows());
  return 0;
}

int CmdPing(const Flags& flags) {
  const std::string socket =
      flags.GetString("socket", "/tmp/falcon_serverd.sock");
  const uint16_t port = static_cast<uint16_t>(flags.GetInt("port", 0));
  auto client = socket.empty() ? ServiceClient::ConnectToTcp(port)
                               : ServiceClient::ConnectToUnix(socket);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status() << "\n";
    return 1;
  }
  client->set_deadline(flags.GetInt("deadline_ms", 5000));
  JsonValue req = JsonValue::Object();
  req.Set("verb", "ping");
  auto resp = client->CallChecked(req);
  if (!resp.ok()) {
    std::cerr << resp.status() << "\n";
    return 1;
  }
  std::printf("uptime %.1fs, sessions %lld/%lld live (%lld recovered from "
              "journals), posting cache %lld bytes resident\n",
              resp->GetDouble("uptime_s"),
              static_cast<long long>(resp->GetInt("live_sessions")),
              static_cast<long long>(resp->GetInt("max_sessions")),
              static_cast<long long>(resp->GetInt("recovered_sessions")),
              static_cast<long long>(
                  resp->GetInt("posting_resident_bytes")));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    std::printf("%s", kUsage);
    return 0;
  }
  Flags flags(argc - 1, argv + 1);
  if (auto rc = CheckFlags(cmd, flags)) return *rc;
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "clean") return CmdClean(flags);
  if (cmd == "profile") return CmdProfile(flags);
  if (cmd == "fds") return CmdFds(flags);
  if (cmd == "detect") return CmdDetect(flags);
  if (cmd == "query") return CmdQuery(flags);
  if (cmd == "ping") return CmdPing(flags);
  return Usage();
}
