// Hospital scenario: LHS-1/2 rules on a 12-attribute table — the paper's
// "favourable for one-hop" dataset. Shows how budget and the closed-rule-
// set optimization shift the interaction cost.
//
// Run:  ./hospital_session [rows]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

using namespace falcon;

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--help") {
    std::printf("%s",
                "usage: hospital_session [rows]\nCleans a generated Hospital instance (default 5000 rows), sweeping\nquestion budget and the closed-rule-set optimization.\n");
    return 0;
  }
  size_t rows = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 5000;

  auto ds = MakeHospital(rows);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  if (!dirty.ok()) {
    std::cerr << dirty.status() << "\n";
    return 1;
  }
  std::cout << "Hospital: " << rows << " tuples, "
            << dirty->errors.size() << " errors, "
            << dirty->injected_patterns.size() << " rule patterns\n\n";

  std::printf("%-9s %3s %12s %6s %6s %6s %9s\n", "algo", "B", "closed-sets",
              "U", "A", "T_C", "benefit");
  for (SearchKind kind : {SearchKind::kDfs, SearchKind::kDive,
                          SearchKind::kCoDive}) {
    for (size_t budget : {2u, 5u}) {
      for (bool closed : {true, false}) {
        SessionOptions options;
        options.budget = budget;
        options.use_closed_sets = closed;
        auto m = RunCleaning(ds->clean, dirty->dirty, kind, options);
        if (!m.ok()) {
          std::cerr << m.status() << "\n";
          continue;
        }
        std::printf("%-9s %3zu %12s %6zu %6zu %6zu %9.2f\n",
                    SearchKindName(kind), budget, closed ? "on" : "off",
                    m->user_updates, m->user_answers, m->TotalCost(),
                    m->Benefit());
      }
    }
  }
  return 0;
}
