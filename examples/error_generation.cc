// BART-style error generation walkthrough: builds the Synth dataset, shows
// the injection recipe (rule patterns, format patterns, random typos), the
// recorded ground truth, and the constant CFDs that would undo each
// pattern. Optionally dumps the clean/dirty instances to CSV.
//
// Run:  ./error_generation [out_dir]
#include <cstdio>
#include <iostream>
#include <string>

#include "datagen/datasets.h"
#include "errorgen/injector.h"
#include "relational/csv.h"

using namespace falcon;

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--help") {
    std::printf("%s",
                "usage: error_generation [out_dir]\nWalks through BART-style error injection on the Synth dataset;\nwith out_dir, also writes synth_clean.csv and synth_dirty.csv.\n");
    return 0;
  }
  auto ds = MakeSynth(5000);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }

  ErrorSpec spec = ds->error_spec;
  spec.num_format_patterns = 2;
  std::cout << "Injection recipe for Synth-5k:\n";
  for (const RuleErrorSpec& r : spec.rule_errors) {
    std::printf("  rule %-28s x%zu patterns, %zu cells each\n",
                r.rule.ToString().c_str(), r.num_patterns,
                r.errors_per_pattern);
  }
  std::printf("  + %zu format pattern(s), %zu random typo(s)\n\n",
              spec.num_format_patterns, spec.num_random_errors);

  auto dirty = InjectErrors(ds->clean, spec);
  if (!dirty.ok()) {
    std::cerr << dirty.status() << "\n";
    return 1;
  }

  size_t rule_cells = 0;
  size_t format_cells = 0;
  size_t random_cells = 0;
  for (const ErrorCell& e : dirty->errors) {
    switch (e.source) {
      case ErrorSource::kRule: ++rule_cells; break;
      case ErrorSource::kFormat: ++format_cells; break;
      case ErrorSource::kRandom: ++random_cells; break;
    }
  }
  std::printf("Injected %zu errors: %zu rule cells, %zu format cells, %zu "
              "random cells\n",
              dirty->errors.size(), rule_cells, format_cells, random_cells);

  std::cout << "\nGround-truth repair rules (one per injected pattern):\n";
  for (size_t i = 0; i < dirty->injected_patterns.size() && i < 6; ++i) {
    std::cout << "  " << dirty->injected_patterns[i].ToQuery("synth").ToSql()
              << "\n";
  }
  if (dirty->injected_patterns.size() > 6) {
    std::cout << "  ... (" << dirty->injected_patterns.size() - 6
              << " more)\n";
  }

  std::cout << "\nFirst few ground-truth cells:\n";
  for (size_t i = 0; i < dirty->errors.size() && i < 5; ++i) {
    const ErrorCell& e = dirty->errors[i];
    std::printf("  row %u  %-4s  '%s' -> '%s'\n", e.row,
                ds->clean.schema().attribute(e.col).c_str(),
                std::string(ds->clean.pool()->Get(e.dirty_value)).c_str(),
                std::string(ds->clean.pool()->Get(e.clean_value)).c_str());
  }

  if (argc > 1) {
    std::string dir = argv[1];
    Status s1 = WriteCsv(ds->clean, dir + "/synth_clean.csv");
    Status s2 = WriteCsv(dirty->dirty, dir + "/synth_dirty.csv");
    if (!s1.ok() || !s2.ok()) {
      std::cerr << "CSV export failed\n";
      return 1;
    }
    std::cout << "\nWrote " << dir << "/synth_{clean,dirty}.csv\n";
  }
  return 0;
}
