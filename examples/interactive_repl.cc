// Interactive REPL: you play the user from the paper's Fig. 1 workflow.
// Load a CSV (or the built-in T_drug example), repair a cell, and FALCON
// proposes SQLU generalizations for you to validate with y/n.
//
// Run:  ./interactive_repl [table.csv]
// Commands:
//   show                     print the table
//   set <row> <attr> <val>   repair a cell and start an episode
//   sql <SQLU statement>     apply a raw SQLU statement
//   quit
#include <iostream>
#include <sstream>
#include <string>

#include "core/lattice.h"
#include "core/search_algorithms.h"
#include "datagen/datasets.h"
#include "profiling/correlation.h"
#include "relational/csv.h"
#include "relational/sqlu_parser.h"

using namespace falcon;

namespace {

// An episode driven by stdin answers instead of a simulated oracle.
void RunEpisode(Table& table, const Repair& repair, std::istream& in,
                std::ostream& out) {
  CordsProfiler profiler(&table);
  std::vector<size_t> candidates = profiler.TopKAttributes(repair.col, 6);
  auto lattice = Lattice::Build(table, repair, candidates);
  if (!lattice.ok()) {
    out << "error: " << lattice.status() << "\n";
    return;
  }
  lattice->MarkValid(lattice->top());

  // Walk nodes in descending affected count, skipping resolved ones, and
  // let the human validate up to 5 rules.
  size_t asked = 0;
  while (asked < 5) {
    NodeId best = 0;
    size_t best_count = 0;
    for (NodeId m = 0; m < lattice->num_nodes(); ++m) {
      if (lattice->validity(m) != Validity::kUnknown) continue;
      size_t c = lattice->affected_count(m);
      if (c > best_count) {
        best = m;
        best_count = c;
      }
    }
    if (best_count == 0) break;
    NodeId rep = lattice->Representative(best);
    if (lattice->validity(rep) != Validity::kUnknown) rep = best;
    out << "apply? " << lattice->NodeQuery(rep).ToSql() << "  ["
        << lattice->affected_count(rep) << " tuples]  (y/n) " << std::flush;
    std::string answer;
    if (!std::getline(in, answer)) return;
    ++asked;
    if (!answer.empty() && (answer[0] == 'y' || answer[0] == 'Y')) {
      lattice->MarkValid(rep);
      RowSet changed = lattice->ApplyNode(rep, table);
      out << "  -> updated " << changed.Count() << " tuple(s)\n";
    } else {
      lattice->MarkInvalid(rep);
    }
  }
  // Make sure the user's own repair took effect.
  if (table.cell(repair.row, repair.col) != lattice->target_value()) {
    lattice->ApplyNode(lattice->top(), table);
    out << "  -> applied your single-cell fix\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--help") {
    std::printf("%s",
                "usage: interactive_repl [table.csv]\nInteractive SQL-U shell over a CSV table (demo table if omitted).\n");
    return 0;
  }
  Table table;
  if (argc > 1) {
    auto loaded = ReadCsv(argv[1], "T");
    if (!loaded.ok()) {
      std::cerr << loaded.status() << "\n";
      return 1;
    }
    table = std::move(loaded).value();
  } else {
    table = MakeDrugExample().dirty;
    std::cout << "(no CSV given; using the paper's T_drug example)\n";
  }

  std::cout << table.ToString() << "\ncommands: show | set <row> <attr> "
            << "<value> | sql <stmt> | quit\n";
  std::string line;
  while (std::cout << "falcon> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string cmd;
    ss >> cmd;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "show") {
      std::cout << table.ToString(50);
    } else if (cmd == "set") {
      size_t row;
      std::string attr;
      if (!(ss >> row >> attr)) {
        std::cout << "usage: set <row> <attr> <value>\n";
        continue;
      }
      std::string value;
      std::getline(ss, value);
      while (!value.empty() && value.front() == ' ') value.erase(0, 1);
      int col = table.schema().AttrIndex(attr);
      if (col < 0 || row >= table.num_rows() || value.empty()) {
        std::cout << "bad cell reference\n";
        continue;
      }
      Repair repair{static_cast<uint32_t>(row), static_cast<size_t>(col),
                    value};
      RunEpisode(table, repair, std::cin, std::cout);
    } else if (cmd == "sql") {
      std::string stmt;
      std::getline(ss, stmt);
      auto q = ParseSqlu(stmt);
      if (!q.ok()) {
        std::cout << q.status() << "\n";
        continue;
      }
      auto changed = ApplyQuery(table, *q);
      if (!changed.ok()) {
        std::cout << changed.status() << "\n";
        continue;
      }
      std::cout << "updated " << *changed << " tuple(s)\n";
    } else if (!cmd.empty()) {
      std::cout << "unknown command: " << cmd << "\n";
    }
  }
  return 0;
}
