// Soccer scenario: the paper's smallest real-world dataset, mirrored by a
// synthetic generator (1625 players, 7 attributes, 8 injected rule
// patterns, ~82 errors). Cleans it with every search algorithm at B=3 and
// prints a per-algorithm cost table — a miniature of the paper's Table 6.
//
// Run:  ./soccer_cleaning [budget]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

using namespace falcon;

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--help") {
    std::printf("%s",
                "usage: soccer_cleaning [budget]\nRuns the Soccer walkthrough from the paper with the given\nper-episode question budget (default 3).\n");
    return 0;
  }
  size_t budget = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 3;

  auto ds = MakeSoccer();
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  if (!dirty.ok()) {
    std::cerr << dirty.status() << "\n";
    return 1;
  }

  std::cout << "Soccer: " << ds->clean.num_rows() << " tuples, "
            << ds->clean.num_cols() << " attributes, "
            << dirty->errors.size() << " injected errors across "
            << dirty->injected_patterns.size() << " rule patterns\n";
  std::cout << "Sample injected repair rules:\n";
  for (size_t i = 0; i < dirty->injected_patterns.size() && i < 3; ++i) {
    std::cout << "  "
              << dirty->injected_patterns[i].ToQuery("soccer").ToSql()
              << "\n";
  }

  std::printf("\n%-9s %6s %6s %6s %9s  %s\n", "algo", "U", "A", "T_C",
              "benefit", "converged");
  for (SearchKind kind :
       {SearchKind::kBfs, SearchKind::kDfs, SearchKind::kDucc,
        SearchKind::kDive, SearchKind::kCoDive, SearchKind::kOffline}) {
    SessionOptions options;
    options.budget = budget;
    auto m = RunCleaning(ds->clean, dirty->dirty, kind, options);
    if (!m.ok()) {
      std::cerr << SearchKindName(kind) << ": " << m.status() << "\n";
      continue;
    }
    std::printf("%-9s %6zu %6zu %6zu %9.2f  %s\n", SearchKindName(kind),
                m->user_updates, m->user_answers, m->TotalCost(),
                m->Benefit(), m->converged ? "yes" : "no");
  }
  return 0;
}
