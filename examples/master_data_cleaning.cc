// Appendix B walkthrough: cleaning with a master relation. A master table
// covering part of the domain answers rule-validity questions for free;
// the user is only consulted for patterns outside the master's coverage.
// Sweeps the coverage fraction to show user-interaction cost shrinking as
// coverage grows.
//
// Run:  ./master_data_cleaning [rows]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/rng.h"
#include "core/session.h"
#include "datagen/datasets.h"
#include "errorgen/injector.h"

using namespace falcon;

namespace {

// A master relation: a random sample of clean rows (sharing the pool).
Table SampleMaster(const Table& clean, double coverage, uint64_t seed) {
  Table master("master", clean.schema(), clean.pool());
  Rng rng(seed);
  std::vector<ValueId> ids(clean.num_cols());
  for (size_t r = 0; r < clean.num_rows(); ++r) {
    if (!rng.NextBool(coverage)) continue;
    for (size_t c = 0; c < clean.num_cols(); ++c) ids[c] = clean.cell(r, c);
    master.AppendRowIds(ids);
  }
  return master;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--help") {
    std::printf("%s",
                "usage: master_data_cleaning [rows]\nCompares analyst-only cleaning against analyst+master-data answers\non a Synth instance (default 5000 rows).\n");
    return 0;
  }
  size_t rows = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 5000;
  auto ds = MakeSynth(rows);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  auto dirty = InjectErrors(ds->clean, ds->error_spec);
  if (!dirty.ok()) {
    std::cerr << dirty.status() << "\n";
    return 1;
  }
  std::printf("Synth-%zu with %zu errors; CoDive B=3, master coverage "
              "sweep:\n\n",
              rows, dirty->errors.size());
  std::printf("%9s %6s %6s %6s %9s %14s\n", "coverage", "U", "A", "T_C",
              "benefit", "master answers");

  for (double coverage : {0.0, 0.25, 0.5, 0.9}) {
    Table master = SampleMaster(ds->clean, coverage, 77);
    SessionOptions options;
    options.budget = 3;
    if (coverage > 0.0) options.master = &master;

    Table working = dirty->dirty.Clone();
    std::unique_ptr<SearchAlgorithm> algo =
        MakeSearchAlgorithm(SearchKind::kCoDive);
    CleaningSession session(&ds->clean, &working, algo.get(), options);
    auto m = session.Run();
    if (!m.ok()) {
      std::cerr << m.status() << "\n";
      continue;
    }
    std::printf("%8.0f%% %6zu %6zu %6zu %9.2f %14zu   %s\n", coverage * 100,
                m->user_updates, m->user_answers, m->TotalCost(),
                m->Benefit(), m->master_answers,
                m->converged ? "" : "(no convergence)");
  }
  std::printf(
      "\nWith rising coverage, validity questions shift from the user to "
      "the master data (Appendix B).\n");
  return 0;
}
