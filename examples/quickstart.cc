// Quickstart: the paper's running example (Table 1) end to end.
//
// Builds the T_drug table with its errors, bootstraps a lattice from the
// user update Δ3 (t2[Molecule] ← "C22H28F"), walks the CoDive interaction,
// and prints the SQLU rules FALCON validates along the way.
//
// Run:  ./quickstart
#include <cstdio>
#include <iostream>

#include "core/oracle.h"
#include "core/search_algorithms.h"
#include "core/session.h"
#include "datagen/datasets.h"
#include "profiling/correlation.h"
#include "relational/sqlu_parser.h"

using namespace falcon;  // Example code; the library itself never does this.

int main() {
  DrugExample ex = MakeDrugExample();
  std::cout << "=== T_drug (dirty) ===\n" << ex.dirty.ToString() << "\n";

  // --- The paper's Example 7: correlation profiling --------------------
  double chi2 = ChiSquared(ex.dirty, {1, 2});
  CorrelationOptions no_fd;
  no_fd.soft_fd_threshold = 1.01;
  double cor = CorrelationScore(ex.dirty, {1}, 2, no_fd);
  std::printf("chi^2(Molecule, Laboratory) = %.2f   (paper: 12.67)\n", chi2);
  std::printf("cor({Molecule}, Laboratory) = %.3f  (paper: 0.235)\n\n", cor);

  // --- The update Δ3 and its lattice ------------------------------------
  Repair delta3{/*row=*/1, /*col=*/1, "C22H28F"};
  auto lattice = Lattice::Build(ex.dirty, delta3, {0, 2, 3});
  if (!lattice.ok()) {
    std::cerr << "lattice build failed: " << lattice.status() << "\n";
    return 1;
  }
  std::cout << "Lattice for Delta3 (" << lattice->num_nodes()
            << " candidate rules):\n";
  for (NodeId m = 0; m < lattice->num_nodes(); ++m) {
    std::printf("  %-34s affected=%zu\n", lattice->NodeLabel(m).c_str(),
                lattice->affected_count(m));
  }

  // --- One interactive episode ------------------------------------------
  Table working = ex.dirty.Clone();
  auto episode = Lattice::Build(working, delta3, {0, 2, 3});
  episode->MarkValid(episode->top());
  UserOracle oracle(&ex.clean);
  SearchStats stats;
  LatticeSearchContext ctx(&*episode, &working, &oracle, /*budget=*/4,
                           /*use_closed_sets=*/true,
                           /*naive_maintenance=*/false, nullptr, &stats,
                           nullptr);
  DiveSearch dive;
  std::cout << "\nDive episode (budget 4):\n";
  dive.Run(ctx);
  for (NodeId v : ctx.verified()) {
    std::cout << "  asked " << episode->NodeLabel(v) << " -> "
              << (episode->validity(v) == Validity::kValid ? "valid"
                                                           : "invalid")
              << "   " << episode->NodeQuery(v).ToSql() << "\n";
  }
  std::cout << "cells repaired by validated rules: " << stats.cells_changed
            << "\n";

  // --- Full cleaning session over all four errors -----------------------
  auto metrics = RunCleaning(ex.clean, ex.dirty, SearchKind::kCoDive,
                             SessionOptions{});
  if (!metrics.ok()) {
    std::cerr << "session failed: " << metrics.status() << "\n";
    return 1;
  }
  std::printf(
      "\nFull session: errors=%zu  updates U=%zu  answers A=%zu  "
      "T_C=%zu  benefit=%.2f  converged=%s\n",
      metrics->initial_errors, metrics->user_updates, metrics->user_answers,
      metrics->TotalCost(), metrics->Benefit(),
      metrics->converged ? "yes" : "no");

  // --- SQLU round trip ----------------------------------------------------
  auto parsed = ParseSqlu(
      "UPDATE T_drug SET Molecule = 'C22H28F' "
      "WHERE Molecule = 'statin' AND Laboratory = 'Austin';");
  if (parsed.ok()) {
    std::cout << "\nParsed user rule: " << parsed->ToSql() << "\n";
  }
  return 0;
}
