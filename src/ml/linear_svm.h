// Minimal linear SVM (hinge loss, SGD) with sigmoid probability
// calibration — the stand-in for LIBSVM used by the ActiveLearning
// baseline (Appendix C). Features are sparse hashed indicator vectors.
#ifndef FALCON_ML_LINEAR_SVM_H_
#define FALCON_ML_LINEAR_SVM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace falcon {

/// Sparse feature vector: (index, value) pairs with indexes < dimension.
struct SparseVector {
  std::vector<std::pair<uint32_t, float>> entries;

  void Add(uint32_t index, float value) { entries.emplace_back(index, value); }
};

/// Linear SVM trained by stochastic subgradient descent on hinge loss with
/// L2 regularization (Pegasos-style step sizes).
class LinearSvm {
 public:
  explicit LinearSvm(uint32_t dimension, double lambda = 1e-4,
                     uint64_t seed = 31);

  /// Trains from scratch on the given examples (labels ±1).
  void Train(const std::vector<SparseVector>& features,
             const std::vector<int>& labels, size_t epochs = 20);

  /// Raw margin w·x + b.
  double Margin(const SparseVector& x) const;

  /// Calibrated probability of the +1 class (logistic over the margin).
  double Probability(const SparseVector& x) const;

  bool trained() const { return trained_; }
  uint32_t dimension() const { return static_cast<uint32_t>(weights_.size()); }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
  double lambda_;
  uint64_t seed_;
  bool trained_ = false;
};

}  // namespace falcon

#endif  // FALCON_ML_LINEAR_SVM_H_
