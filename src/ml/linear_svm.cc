#include "ml/linear_svm.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace falcon {

LinearSvm::LinearSvm(uint32_t dimension, double lambda, uint64_t seed)
    : weights_(dimension, 0.0), lambda_(lambda), seed_(seed) {}

void LinearSvm::Train(const std::vector<SparseVector>& features,
                      const std::vector<int>& labels, size_t epochs) {
  for (double& w : weights_) w = 0.0;
  bias_ = 0.0;
  if (features.empty()) {
    trained_ = false;
    return;
  }
  Rng rng(seed_);
  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Pegasos with lazy L2 scaling: the true weight vector is scale * v.
  std::vector<double>& v = weights_;
  double scale = 1.0;
  size_t t = 1;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t i : order) {
      // Pegasos schedule, capped: the raw 1/(λt) step is enormous for the
      // first iterations and makes the unregularized bias oscillate.
      double eta = std::min(1.0, 1.0 / (lambda_ * static_cast<double>(t)));
      double y = labels[i];
      double margin = bias_;
      for (const auto& [idx, val] : features[i].entries) {
        if (idx < v.size()) margin += scale * v[idx] * val;
      }
      double shrink = 1.0 - eta * lambda_;
      if (shrink < 1e-9) shrink = 1e-9;
      scale *= shrink;
      if (y * margin < 1.0) {
        for (const auto& [idx, val] : features[i].entries) {
          if (idx < v.size()) v[idx] += eta * y * val / scale;
        }
        bias_ += eta * y;
      }
      ++t;
      if (scale < 1e-100) {  // Renormalize to avoid underflow.
        for (double& w : v) w *= scale;
        scale = 1.0;
      }
    }
  }
  for (double& w : v) w *= scale;
  trained_ = true;
}

double LinearSvm::Margin(const SparseVector& x) const {
  double m = bias_;
  for (const auto& [idx, v] : x.entries) {
    if (idx < weights_.size()) m += weights_[idx] * v;
  }
  return m;
}

double LinearSvm::Probability(const SparseVector& x) const {
  return 1.0 / (1.0 + std::exp(-2.0 * Margin(x)));
}

}  // namespace falcon
