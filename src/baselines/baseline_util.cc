#include "baselines/baseline_util.h"

namespace falcon {

StatusOr<bool> QueryValidAgainstClean(const Table& clean, const Table& dirty,
                                      const SqluQuery& query) {
  FALCON_ASSIGN_OR_RETURN(RowSet rows, AffectedRows(dirty, query));
  int col = dirty.schema().AttrIndex(query.set_attr);
  if (col < 0) return Status::InvalidArgument("unknown attribute");
  ValueId want = clean.pool()->Intern(query.set_value);
  bool valid = rows.AllOf([&](size_t r) {
    return clean.cell(r, static_cast<size_t>(col)) == want;
  });
  return valid;
}

StatusOr<size_t> ApplyAndCountRepairs(const Table& clean, Table& dirty,
                                      const SqluQuery& query,
                                      size_t* total_changed) {
  FALCON_ASSIGN_OR_RETURN(RowSet rows, AffectedRows(dirty, query));
  int col_i = dirty.schema().AttrIndex(query.set_attr);
  if (col_i < 0) return Status::InvalidArgument("unknown attribute");
  size_t col = static_cast<size_t>(col_i);
  ValueId value = dirty.Intern(query.set_value);
  size_t repairs = 0;
  size_t changed = 0;
  rows.ForEach([&](size_t r) {
    bool was_clean = dirty.cell(r, col) == clean.cell(r, col);
    dirty.set_cell(r, col, value);
    ++changed;
    bool is_clean = dirty.cell(r, col) == clean.cell(r, col);
    if (!was_clean && is_clean) ++repairs;
  });
  if (total_changed != nullptr) *total_changed = changed;
  return repairs;
}

}  // namespace falcon
