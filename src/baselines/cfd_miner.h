// Level-wise constant-CFD miner over a (cleaned) sample — the discovery
// half of the RuleLearning and GDR baselines. Emits patterns
// (X = x̄ → A = a) whose support in the sample meets a threshold and whose
// confidence is 1 (single consensus RHS value). Minimality: a pattern is
// suppressed when a strictly more general emitted pattern (subset LHS,
// same RHS) covers the same sample rows.
#ifndef FALCON_BASELINES_CFD_MINER_H_
#define FALCON_BASELINES_CFD_MINER_H_

#include <vector>

#include "errorgen/cfd.h"
#include "relational/table.h"

namespace falcon {

struct CfdMinerOptions {
  /// Minimum sample rows matching the LHS pattern.
  size_t min_support = 5;
  /// Maximum LHS attributes.
  size_t max_lhs = 2;
  /// Cap on emitted rules (highest support first). Models the paper's
  /// observation that mining floods the user with candidates.
  size_t max_rules = 2000;
};

/// Mines constant CFDs from `sample`, ordered by support descending.
std::vector<ConstantCfd> MineConstantCfds(const Table& sample,
                                          const CfdMinerOptions& options = {});

}  // namespace falcon

#endif  // FALCON_BASELINES_CFD_MINER_H_
