// ActiveLearning baseline (Exp-3 ④, Appendix C): a lattice search variant
// that replaces the binary-jump heuristic with a learned model. Nodes are
// featurized as in the paper's Table 4 (attribute indicators — 2 for the
// updated attribute, 1 in-node, 0 otherwise — plus attribute values and the
// original/updated values); a linear SVM predicts validity. The first 20
// user updates are explored with Ducc to bootstrap the training set; after
// that, each question goes to the unknown node with the highest predicted
// probability of being valid, and the model is retrained on the labels
// implied by the user's answers and lattice inference.
#ifndef FALCON_BASELINES_ACTIVE_LEARNING_H_
#define FALCON_BASELINES_ACTIVE_LEARNING_H_

#include <string>
#include <vector>

#include "core/search_algorithms.h"
#include "ml/linear_svm.h"

namespace falcon {

class ActiveLearningSearch : public SearchAlgorithm {
 public:
  explicit ActiveLearningSearch(size_t bootstrap_sessions = 20,
                                uint32_t feature_dim = 4096,
                                uint64_t seed = 41);

  std::string name() const override { return "ActiveLearning"; }
  void OnSessionStart(size_t session_index) override {
    session_index_ = session_index;
  }
  void Run(LatticeSearchContext& ctx) override;

  size_t training_examples() const { return train_x_.size(); }

 private:
  SparseVector Featurize(const Lattice& lattice, NodeId n) const;
  void CollectLabels(Lattice& lattice);

  DuccSearch ducc_;
  LinearSvm svm_;
  std::vector<SparseVector> train_x_;
  std::vector<int> train_y_;
  size_t bootstrap_sessions_;
  size_t session_index_ = 0;
  uint32_t feature_dim_;
};

}  // namespace falcon

#endif  // FALCON_BASELINES_ACTIVE_LEARNING_H_
