// Refine baseline (Exp-3 ①): models OpenRefine / Trifacta Wrangler. For
// every user update the tool can offer exactly two generalizations — the
// single-cell fix, or the whole-attribute standardization rule
// `UPDATE T SET A = v WHERE A = e`. The user checks the standardization
// rule once per update and falls back to the cell fix when it is invalid.
#ifndef FALCON_BASELINES_REFINE_H_
#define FALCON_BASELINES_REFINE_H_

#include "baselines/baseline_util.h"
#include "common/status.h"
#include "relational/table.h"

namespace falcon {

/// Runs the Refine model over a clone of `dirty` until clean.
StatusOr<BaselineResult> RunRefine(const Table& clean, const Table& dirty);

/// Transformation-aware variant: besides the standardization rule, the
/// tool infers a string transformation from the user's (before → after)
/// example (src/transform) and offers the best column-wide rewrite for
/// validation — closer to what OpenRefine/Wrangler actually do for
/// syntactic errors, yet still blind to FALCON's multi-attribute rules.
/// Each update costs one extra answer when a transformation is proposed.
StatusOr<BaselineResult> RunRefineWithTransforms(const Table& clean,
                                                 const Table& dirty);

}  // namespace falcon

#endif  // FALCON_BASELINES_REFINE_H_
