#include "baselines/refine.h"

#include "transform/transformations.h"

namespace falcon {

StatusOr<BaselineResult> RunRefine(const Table& clean, const Table& dirty) {
  BaselineResult result;
  result.name = "Refine";
  Table working = dirty.Clone();
  result.initial_errors = working.CountDiffCells(clean);

  for (size_t r = 0; r < working.num_rows(); ++r) {
    for (size_t c = 0; c < working.num_cols(); ++c) {
      if (working.cell(r, c) == clean.cell(r, c)) continue;

      // The user fixes this cell by example...
      ++result.user_updates;
      std::string target(clean.pool()->Get(clean.cell(r, c)));
      std::string wrong(working.pool()->Get(working.cell(r, c)));

      // ...and the tool proposes the standardization rule, which the user
      // verifies (one answer).
      SqluQuery standardize;
      standardize.table = working.name();
      standardize.set_attr = working.schema().attribute(c);
      standardize.set_value = target;
      standardize.where = {{standardize.set_attr, wrong}};
      ++result.user_answers;
      FALCON_ASSIGN_OR_RETURN(bool valid,
                              QueryValidAgainstClean(clean, working,
                                                     standardize));
      if (valid) {
        FALCON_ASSIGN_OR_RETURN(
            size_t repairs, ApplyAndCountRepairs(clean, working, standardize));
        result.cells_repaired += repairs;
      } else {
        working.set_cell(r, c, clean.cell(r, c));
        ++result.cells_repaired;
      }
    }
  }
  result.completed = working.CountDiffCells(clean) == 0;
  return result;
}

namespace {

/// True iff applying `t` column-wide only writes clean values: wherever it
/// would change a cell, the result must equal the clean value (cells it
/// leaves alone are its business — other updates will handle them).
bool TransformationIsSafe(const Table& clean, const Table& working,
                          size_t col, const Transformation& t) {
  bool changes_something = false;
  for (size_t r = 0; r < working.num_rows(); ++r) {
    std::optional<std::string> rewritten = t.Apply(working.CellText(r, col));
    if (!rewritten.has_value() || *rewritten == working.CellText(r, col)) {
      continue;
    }
    changes_something = true;
    if (*rewritten != clean.CellText(r, col)) return false;
  }
  return changes_something;
}

}  // namespace

StatusOr<BaselineResult> RunRefineWithTransforms(const Table& clean,
                                                 const Table& dirty) {
  BaselineResult result;
  result.name = "Refine+T";
  Table working = dirty.Clone();
  result.initial_errors = working.CountDiffCells(clean);

  for (size_t r = 0; r < working.num_rows(); ++r) {
    for (size_t c = 0; c < working.num_cols(); ++c) {
      if (working.cell(r, c) == clean.cell(r, c)) continue;

      ++result.user_updates;
      std::string before(working.CellText(r, c));
      std::string after(clean.CellText(r, c));

      // The tool proposes the most specific inferred transformation for
      // column-wide application; the user verifies it (one answer).
      auto candidates = InferTransformations(before, after);
      bool fixed_by_rule = false;
      if (!candidates.empty()) {
        const Transformation& t = *candidates.front();
        ++result.user_answers;
        if (TransformationIsSafe(clean, working, c, t)) {
          size_t before_diff = working.CountDiffCells(clean);
          ApplyToColumn(working, c, t);
          result.cells_repaired += before_diff - working.CountDiffCells(clean);
          fixed_by_rule = working.cell(r, c) == clean.cell(r, c);
        }
      }
      if (!fixed_by_rule) {
        working.set_cell(r, c, clean.cell(r, c));
        ++result.cells_repaired;
      }
    }
  }
  result.completed = working.CountDiffCells(clean) == 0;
  return result;
}

}  // namespace falcon
