#include "baselines/active_learning.h"

#include <string_view>

namespace falcon {
namespace {

uint32_t HashFeature(std::string_view kind, std::string_view a,
                     std::string_view b, uint32_t dim) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xff;
    h *= 1099511628211ull;
  };
  mix(kind);
  mix(a);
  mix(b);
  return static_cast<uint32_t>(h % dim);
}

}  // namespace

ActiveLearningSearch::ActiveLearningSearch(size_t bootstrap_sessions,
                                           uint32_t feature_dim,
                                           uint64_t seed)
    : svm_(feature_dim, /*lambda=*/1e-4, seed),
      bootstrap_sessions_(bootstrap_sessions),
      feature_dim_(feature_dim) {}

SparseVector ActiveLearningSearch::Featurize(const Lattice& lattice,
                                             NodeId n) const {
  SparseVector x;
  size_t k = lattice.num_attrs();
  size_t target = lattice.target_col();
  for (size_t i = 0; i < k; ++i) {
    bool in_node = (n >> i) & 1;
    // Indicator: 2 = updated attribute, 1 = in WHERE clause, 0 = absent.
    const char* ind = lattice.lattice_cols()[i] == target ? "2"
                      : in_node                           ? "1"
                                                          : "0";
    x.Add(HashFeature("ind", lattice.attr_name(i), ind, feature_dim_), 1.0f);
    if (in_node) {
      x.Add(HashFeature("val", lattice.attr_name(i),
                        lattice.binding_text(i), feature_dim_),
            1.0f);
    }
  }
  // Original (pre-update) and updated values of the repaired cell.
  for (size_t i = 0; i < k; ++i) {
    if (lattice.lattice_cols()[i] == target) {
      x.Add(HashFeature("orig", lattice.binding_text(i), "", feature_dim_),
            1.0f);
      break;
    }
  }
  x.Add(HashFeature("upd", lattice.repair().new_value, "", feature_dim_),
        1.0f);
  return x;
}

void ActiveLearningSearch::CollectLabels(Lattice& lattice) {
  // Harvest labels implied by this episode (user answers plus inference),
  // capped per class to keep the set balanced.
  constexpr size_t kPerClassCap = 40;
  size_t pos = 0;
  size_t neg = 0;
  for (NodeId m = 0; m < lattice.num_nodes(); ++m) {
    Validity v = lattice.validity(m);
    if (v == Validity::kUnknown) continue;
    if (v == Validity::kValid) {
      if (pos >= kPerClassCap) continue;
      ++pos;
      train_y_.push_back(+1);
    } else {
      if (neg >= kPerClassCap) continue;
      ++neg;
      train_y_.push_back(-1);
    }
    train_x_.push_back(Featurize(lattice, m));
  }
  // Bound memory: keep the most recent window of examples.
  constexpr size_t kMaxExamples = 8000;
  if (train_x_.size() > kMaxExamples) {
    size_t drop = train_x_.size() - kMaxExamples;
    train_x_.erase(train_x_.begin(),
                   train_x_.begin() + static_cast<ptrdiff_t>(drop));
    train_y_.erase(train_y_.begin(),
                   train_y_.begin() + static_cast<ptrdiff_t>(drop));
  }
}

void ActiveLearningSearch::Run(LatticeSearchContext& ctx) {
  Lattice& lattice = ctx.lattice();
  if (session_index_ < bootstrap_sessions_ || !svm_.trained()) {
    // Bootstrap phase: explore with Ducc and learn from the labels.
    ducc_.Run(ctx);
    CollectLabels(lattice);
    if (session_index_ + 1 >= bootstrap_sessions_ && !train_x_.empty()) {
      svm_.Train(train_x_, train_y_, /*epochs=*/8);
    }
    return;
  }

  while (ctx.BudgetLeft()) {
    // Full-lattice candidate scan; batch-count the open frontier first so
    // lazy lattices don't materialize one chain per probed node.
    lattice.EnsureCounts(lattice.UnknownNodes());
    NodeId best = 0;
    double best_p = -1.0;
    for (NodeId m = 0; m < lattice.num_nodes(); ++m) {
      if (lattice.validity(m) != Validity::kUnknown) continue;
      if (lattice.affected_count(m) == 0) continue;
      double p = svm_.Probability(Featurize(lattice, m));
      if (p > best_p) {
        best_p = p;
        best = m;
      }
    }
    if (best_p < 0.0) break;  // Nothing left to ask.
    ctx.Ask(best);
  }
  CollectLabels(lattice);
  svm_.Train(train_x_, train_y_, /*epochs=*/4);
}

}  // namespace falcon
