#include "baselines/cfd_miner.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace falcon {
namespace {

struct VecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

// Canonical key of a pattern for subset suppression.
std::string PatternKey(const std::vector<size_t>& lhs_cols,
                       const std::vector<ValueId>& lhs_vals, size_t rhs_col,
                       ValueId rhs_val) {
  std::string key;
  for (size_t i = 0; i < lhs_cols.size(); ++i) {
    key += std::to_string(lhs_cols[i]) + "=" +
           std::to_string(lhs_vals[i]) + "|";
  }
  key += ">" + std::to_string(rhs_col) + "=" + std::to_string(rhs_val);
  return key;
}

struct MinedRule {
  ConstantCfd cfd;
  size_t support;
};

}  // namespace

std::vector<ConstantCfd> MineConstantCfds(const Table& sample,
                                          const CfdMinerOptions& options) {
  const size_t n_cols = sample.num_cols();
  std::vector<MinedRule> mined;
  std::unordered_set<std::string> emitted;

  // Enumerate LHS column sets level-wise (size 1, then 2, ...), so subset
  // patterns are emitted before their specializations.
  std::vector<std::vector<size_t>> combos;
  for (size_t a = 0; a < n_cols; ++a) combos.push_back({a});
  if (options.max_lhs >= 2) {
    for (size_t a = 0; a < n_cols; ++a) {
      for (size_t b = a + 1; b < n_cols; ++b) combos.push_back({a, b});
    }
  }
  if (options.max_lhs >= 3) {
    for (size_t a = 0; a < n_cols; ++a) {
      for (size_t b = a + 1; b < n_cols; ++b) {
        for (size_t c = b + 1; c < n_cols; ++c) combos.push_back({a, b, c});
      }
    }
  }

  for (const std::vector<size_t>& lhs : combos) {
    std::unordered_map<std::vector<ValueId>, std::vector<uint32_t>, VecHash>
        groups;
    std::vector<ValueId> key;
    for (size_t r = 0; r < sample.num_rows(); ++r) {
      key.clear();
      bool has_null = false;
      for (size_t c : lhs) {
        ValueId v = sample.cell(r, c);
        if (v == kNullValueId) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      if (!has_null) groups[key].push_back(static_cast<uint32_t>(r));
    }

    for (const auto& [lhs_vals, rows] : groups) {
      if (rows.size() < options.min_support) continue;
      for (size_t rhs = 0; rhs < n_cols; ++rhs) {
        if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) continue;
        ValueId consensus = sample.cell(rows[0], rhs);
        if (consensus == kNullValueId) continue;
        bool uniform = true;
        for (uint32_t r : rows) {
          if (sample.cell(r, rhs) != consensus) {
            uniform = false;
            break;
          }
        }
        if (!uniform) continue;

        // Suppress if any strictly more general emitted pattern implies it.
        bool dominated = false;
        if (lhs.size() >= 2) {
          for (size_t skip = 0; skip < lhs.size() && !dominated; ++skip) {
            std::vector<size_t> sub_cols;
            std::vector<ValueId> sub_vals;
            for (size_t i = 0; i < lhs.size(); ++i) {
              if (i == skip) continue;
              sub_cols.push_back(lhs[i]);
              sub_vals.push_back(lhs_vals[i]);
            }
            if (emitted.count(PatternKey(sub_cols, sub_vals, rhs, consensus))) {
              dominated = true;
            }
          }
        }
        if (dominated) continue;

        emitted.insert(PatternKey(lhs, lhs_vals, rhs, consensus));
        MinedRule rule;
        for (size_t i = 0; i < lhs.size(); ++i) {
          rule.cfd.lhs_attrs.push_back(sample.schema().attribute(lhs[i]));
          rule.cfd.lhs_values.emplace_back(sample.pool()->Get(lhs_vals[i]));
        }
        rule.cfd.rhs_attr = sample.schema().attribute(rhs);
        rule.cfd.rhs_value = std::string(sample.pool()->Get(consensus));
        rule.support = rows.size();
        mined.push_back(std::move(rule));
      }
    }
  }

  std::stable_sort(mined.begin(), mined.end(),
                   [](const MinedRule& a, const MinedRule& b) {
                     return a.support > b.support;
                   });
  if (mined.size() > options.max_rules) mined.resize(options.max_rules);

  std::vector<ConstantCfd> out;
  out.reserve(mined.size());
  for (MinedRule& r : mined) out.push_back(std::move(r.cfd));
  return out;
}

}  // namespace falcon
