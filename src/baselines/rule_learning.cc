#include "baselines/rule_learning.h"

#include "common/rng.h"

namespace falcon {
namespace {

/// Picks a deterministic random sample of rows and returns the sample as a
/// standalone table (sharing the pool). The user hand-cleans it: every
/// dirty cell in the sample is set to its clean value, and those manual
/// fixes are charged to `result` (both in the sample and in the working
/// instance — the user is fixing real data).
Table CleanSample(const Table& clean, Table& working, size_t sample_rows,
                  uint64_t seed, BaselineResult* result) {
  Rng rng(seed);
  std::vector<uint32_t> rows(working.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  rng.Shuffle(rows);
  if (rows.size() > sample_rows) rows.resize(sample_rows);

  Table sample("sample", working.schema(), working.pool());
  std::vector<ValueId> ids(working.num_cols());
  for (uint32_t r : rows) {
    for (size_t c = 0; c < working.num_cols(); ++c) {
      if (working.cell(r, c) != clean.cell(r, c)) {
        working.set_cell(r, c, clean.cell(r, c));
        ++result->user_updates;
        ++result->cells_repaired;
      }
      ids[c] = working.cell(r, c);
    }
    sample.AppendRowIds(ids);
  }
  return sample;
}

}  // namespace

StatusOr<BaselineResult> RunRuleLearning(const Table& clean,
                                         const Table& dirty,
                                         const RuleLearningOptions& options) {
  BaselineResult result;
  result.name = "RuleLearning";
  Table working = dirty.Clone();
  result.initial_errors = working.CountDiffCells(clean);

  // (i) Hand-clean a sample.
  Table sample = CleanSample(clean, working, options.sample_rows,
                             options.seed, &result);

  // (ii) Mine constant CFDs and have the user validate each.
  std::vector<ConstantCfd> rules = MineConstantCfds(sample, options.miner);
  for (const ConstantCfd& cfd : rules) {
    if (options.max_interactions != 0 &&
        result.TotalCost() >= options.max_interactions) {
      result.completed = false;
      return result;
    }
    SqluQuery q = cfd.ToQuery(working.name());
    // Skip rules that would not touch the instance — validating them costs
    // nothing because the tool never surfaces no-op rules.
    FALCON_ASSIGN_OR_RETURN(RowSet affected, AffectedRows(working, q));
    if (affected.Empty()) continue;
    ++result.user_answers;
    FALCON_ASSIGN_OR_RETURN(bool valid,
                            QueryValidAgainstClean(clean, working, q));
    if (valid) {
      // (iii) Apply the validated rule.
      FALCON_ASSIGN_OR_RETURN(size_t repairs,
                              ApplyAndCountRepairs(clean, working, q));
      result.cells_repaired += repairs;
    }
  }
  result.completed = true;
  return result;
}

StatusOr<BaselineResult> RunGdr(const Table& clean, const Table& dirty,
                                const RuleLearningOptions& options) {
  BaselineResult result;
  result.name = "GDR";
  Table working = dirty.Clone();
  result.initial_errors = working.CountDiffCells(clean);

  Table sample = CleanSample(clean, working, options.sample_rows,
                             options.seed, &result);
  std::vector<ConstantCfd> rules = MineConstantCfds(sample, options.miner);

  // Guided repair: surface each rule-suggested cell update for the user to
  // confirm; apply the confirmed ones.
  for (const ConstantCfd& cfd : rules) {
    SqluQuery q = cfd.ToQuery(working.name());
    FALCON_ASSIGN_OR_RETURN(RowSet affected, AffectedRows(working, q));
    int col_i = working.schema().AttrIndex(q.set_attr);
    if (col_i < 0) continue;
    size_t col = static_cast<size_t>(col_i);
    ValueId suggestion = working.Intern(q.set_value);
    bool hit_cap = false;
    affected.ForEach([&](size_t r) {
      if (hit_cap) return;
      if (options.max_interactions != 0 &&
          result.TotalCost() >= options.max_interactions) {
        hit_cap = true;
        return;
      }
      ++result.user_answers;
      if (clean.cell(r, col) == suggestion) {
        bool was_clean = working.cell(r, col) == clean.cell(r, col);
        working.set_cell(r, col, suggestion);
        if (!was_clean) ++result.cells_repaired;
      }
    });
    if (hit_cap) {
      result.completed = false;
      return result;
    }
  }
  result.completed = true;
  return result;
}

}  // namespace falcon
