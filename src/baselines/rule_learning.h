// RuleLearning baseline (Exp-3 ②): (i) the user hand-cleans a sample of
// tuples (part of the interaction budget), (ii) a constant-CFD miner learns
// repair rules from the sample and the user validates each mined rule,
// (iii) the validated rules repair the dirty instance. Recall is limited by
// the sample, so errors typically remain (the paper's Table 7).
//
// GDR baseline (Exp-3 ③): same mining phase, but instead of validating
// rules wholesale, the tool suggests rule-derived *cell* repairs one by one
// and the user confirms or rejects each (Yakout et al.'s guided repair cost
// model as the paper applies it).
#ifndef FALCON_BASELINES_RULE_LEARNING_H_
#define FALCON_BASELINES_RULE_LEARNING_H_

#include "baselines/baseline_util.h"
#include "baselines/cfd_miner.h"
#include "common/status.h"
#include "relational/table.h"

namespace falcon {

struct RuleLearningOptions {
  /// Sample rows the user cleans before mining.
  size_t sample_rows = 500;
  CfdMinerOptions miner;
  /// Hard cap on interactions (timeout proxy); 0 = unlimited. A run that
  /// hits the cap reports completed=false, matching the paper's missing
  /// bars.
  size_t max_interactions = 0;
  uint64_t seed = 5;
};

/// Runs the RuleLearning pipeline over a clone of `dirty`.
StatusOr<BaselineResult> RunRuleLearning(const Table& clean,
                                         const Table& dirty,
                                         const RuleLearningOptions& options);

/// Runs the GDR-style guided-repair pipeline over a clone of `dirty`.
StatusOr<BaselineResult> RunGdr(const Table& clean, const Table& dirty,
                                const RuleLearningOptions& options);

}  // namespace falcon

#endif  // FALCON_BASELINES_RULE_LEARNING_H_
