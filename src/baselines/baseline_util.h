// Shared plumbing for the non-lattice baselines of Section 6 (Exp-3).
#ifndef FALCON_BASELINES_BASELINE_UTIL_H_
#define FALCON_BASELINES_BASELINE_UTIL_H_

#include <string>

#include "common/status.h"
#include "relational/sqlu.h"
#include "relational/table.h"

namespace falcon {

/// Outcome of one baseline cleaning run, comparable to SessionMetrics.
struct BaselineResult {
  std::string name;
  size_t user_updates = 0;   ///< Cells the user fixed by hand (U).
  size_t user_answers = 0;   ///< Questions/confirmations answered (A).
  size_t cells_repaired = 0; ///< Cells moved to their clean value.
  size_t initial_errors = 0;
  bool completed = true;     ///< False when the tool gave up (timeout proxy).

  size_t TotalCost() const { return user_updates + user_answers; }
  double Benefit() const {
    return initial_errors == 0
               ? 0.0
               : 1.0 - static_cast<double>(TotalCost()) /
                           static_cast<double>(initial_errors);
  }
};

/// Ground-truth semantic validity of a query: executing it on `dirty` must
/// only write clean values (the same predicate the simulated user answers).
StatusOr<bool> QueryValidAgainstClean(const Table& clean, const Table& dirty,
                                      const SqluQuery& query);

/// Applies `query` to `dirty` and returns how many affected cells now match
/// `clean` (repairs) — callers also need the total change count, returned
/// via `total_changed` when non-null.
StatusOr<size_t> ApplyAndCountRepairs(const Table& clean, Table& dirty,
                                      const SqluQuery& query,
                                      size_t* total_changed = nullptr);

}  // namespace falcon

#endif  // FALCON_BASELINES_BASELINE_UTIL_H_
