// Level-wise discovery of (approximate) functional dependencies, in the
// spirit of TANE: candidate LHS sets are grown level by level, pruned by
// minimality, and scored by confidence (the fraction of rows that agree
// with the majority RHS value of their LHS group).
//
// FALCON uses discovered FDs two ways (Appendix D.1): to seed the
// correlation profile with exact soft-FD facts, and — in this repo's
// no-ground-truth workflow — to drive the violation detector that suggests
// suspicious cells to the user.
#ifndef FALCON_PROFILING_FD_DISCOVERY_H_
#define FALCON_PROFILING_FD_DISCOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/table.h"

namespace falcon {

/// One discovered dependency lhs → rhs.
struct DiscoveredFd {
  std::vector<size_t> lhs;
  size_t rhs = 0;
  /// Fraction of (non-null) rows whose rhs value equals their LHS group's
  /// majority value: 1.0 = exact FD.
  double confidence = 1.0;
  /// Number of distinct LHS groups supporting the dependency.
  size_t groups = 0;

  std::string ToString(const Schema& schema) const;
};

struct FdDiscoveryOptions {
  /// Maximum LHS attributes.
  size_t max_lhs = 2;
  /// Report dependencies with at least this confidence (< 1 admits
  /// approximate FDs over dirty data).
  double min_confidence = 0.98;
  /// LHS groups must average at least this many rows (filters key-like
  /// LHSs whose "dependencies" are vacuous).
  double min_avg_group = 2.0;
  /// Skip near-key columns on either side (distinct/rows above this).
  double key_ratio_threshold = 0.9;
  /// Optional deterministic row sample (0 = all rows).
  size_t max_sample_rows = 0;
};

/// Discovers minimal (approximate) FDs: a dependency is suppressed when a
/// subset of its LHS already determines the same RHS at the confidence
/// threshold. Results are ordered by (|lhs|, confidence desc).
std::vector<DiscoveredFd> DiscoverFds(const Table& table,
                                      const FdDiscoveryOptions& options = {});

}  // namespace falcon

#endif  // FALCON_PROFILING_FD_DISCOVERY_H_
