#include "profiling/fd_discovery.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace falcon {
namespace {

struct VecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

// Deterministic strided sample, shared with the correlation profiler.
std::vector<uint32_t> SampleRows(size_t num_rows, size_t max) {
  std::vector<uint32_t> rows;
  if (max == 0 || num_rows <= max) {
    rows.resize(num_rows);
    for (size_t i = 0; i < num_rows; ++i) rows[i] = static_cast<uint32_t>(i);
    return rows;
  }
  rows.reserve(max);
  double stride = static_cast<double>(num_rows) / static_cast<double>(max);
  for (size_t i = 0; i < max; ++i) {
    rows.push_back(static_cast<uint32_t>(static_cast<double>(i) * stride));
  }
  return rows;
}

/// Confidence of lhs → rhs: Σ_group max value count / Σ_group size.
struct Evaluation {
  double confidence = 0.0;
  size_t groups = 0;
  double avg_group = 0.0;
};

Evaluation Evaluate(const Table& table, const std::vector<uint32_t>& rows,
                    const std::vector<size_t>& lhs, size_t rhs) {
  std::unordered_map<std::vector<ValueId>,
                     std::unordered_map<ValueId, uint32_t>, VecHash>
      groups;
  std::vector<ValueId> key;
  size_t counted = 0;
  for (uint32_t r : rows) {
    key.clear();
    bool has_null = false;
    for (size_t c : lhs) {
      ValueId v = table.cell(r, c);
      if (v == kNullValueId) {
        has_null = true;
        break;
      }
      key.push_back(v);
    }
    ValueId rv = table.cell(r, rhs);
    if (has_null || rv == kNullValueId) continue;
    ++groups[key][rv];
    ++counted;
  }
  Evaluation eval;
  if (counted == 0) return eval;
  size_t agree = 0;
  for (const auto& [k, value_counts] : groups) {
    uint32_t best = 0;
    for (const auto& [v, n] : value_counts) best = std::max(best, n);
    agree += best;
  }
  eval.confidence = static_cast<double>(agree) / static_cast<double>(counted);
  eval.groups = groups.size();
  eval.avg_group =
      static_cast<double>(counted) / static_cast<double>(groups.size());
  return eval;
}

}  // namespace

std::string DiscoveredFd::ToString(const Schema& schema) const {
  std::string out = "{";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.attribute(lhs[i]);
  }
  out += "} -> " + schema.attribute(rhs);
  char buf[32];
  std::snprintf(buf, sizeof(buf), " (conf %.3f)", confidence);
  return out + buf;
}

std::vector<DiscoveredFd> DiscoverFds(const Table& table,
                                      const FdDiscoveryOptions& options) {
  std::vector<DiscoveredFd> found;
  const size_t n_cols = table.num_cols();
  std::vector<uint32_t> rows =
      SampleRows(table.num_rows(), options.max_sample_rows);
  if (rows.empty()) return found;

  // Key-like columns are excluded outright.
  std::vector<bool> keyish(n_cols, false);
  for (size_t c = 0; c < n_cols; ++c) {
    keyish[c] = static_cast<double>(table.DistinctCount(c)) >
                options.key_ratio_threshold *
                    static_cast<double>(table.num_rows());
  }

  // Minimality bookkeeping: (sorted lhs, rhs) sets already covered by an
  // emitted subset dependency.
  std::set<std::pair<std::vector<size_t>, size_t>> emitted;
  auto covered_by_subset = [&](const std::vector<size_t>& lhs, size_t rhs) {
    if (lhs.size() < 2) return false;
    for (size_t skip = 0; skip < lhs.size(); ++skip) {
      std::vector<size_t> sub;
      for (size_t i = 0; i < lhs.size(); ++i) {
        if (i != skip) sub.push_back(lhs[i]);
      }
      if (emitted.count({sub, rhs})) return true;
    }
    return false;
  };

  // Level-wise enumeration of LHS sets.
  std::vector<std::vector<size_t>> level;
  for (size_t c = 0; c < n_cols; ++c) {
    if (!keyish[c]) level.push_back({c});
  }
  for (size_t depth = 1; depth <= options.max_lhs; ++depth) {
    for (const std::vector<size_t>& lhs : level) {
      for (size_t rhs = 0; rhs < n_cols; ++rhs) {
        if (keyish[rhs]) continue;
        if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) continue;
        if (covered_by_subset(lhs, rhs)) continue;
        Evaluation eval = Evaluate(table, rows, lhs, rhs);
        if (eval.confidence < options.min_confidence) continue;
        if (eval.avg_group < options.min_avg_group) continue;
        emitted.insert({lhs, rhs});
        DiscoveredFd fd;
        fd.lhs = lhs;
        fd.rhs = rhs;
        fd.confidence = eval.confidence;
        fd.groups = eval.groups;
        found.push_back(std::move(fd));
      }
    }
    if (depth == options.max_lhs) break;
    // Grow the next level: extend each set with a higher-indexed column.
    std::vector<std::vector<size_t>> next;
    for (const std::vector<size_t>& lhs : level) {
      for (size_t c = lhs.back() + 1; c < n_cols; ++c) {
        if (keyish[c]) continue;
        std::vector<size_t> grown = lhs;
        grown.push_back(c);
        next.push_back(std::move(grown));
      }
    }
    level = std::move(next);
  }

  std::stable_sort(found.begin(), found.end(),
                   [](const DiscoveredFd& a, const DiscoveredFd& b) {
                     if (a.lhs.size() != b.lhs.size()) {
                       return a.lhs.size() < b.lhs.size();
                     }
                     return a.confidence > b.confidence;
                   });
  return found;
}

}  // namespace falcon
