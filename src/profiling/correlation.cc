#include "profiling/correlation.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace falcon {
namespace {

// Sample loops below this size run inline (the default 5k-row sample always
// does); only full-table profiling of large instances shards.
constexpr size_t kParallelSampleGrain = size_t{1} << 15;

// Hash for a vector<ValueId> key (joint value combination).
struct VecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

// Deterministic row sample: evenly strided rows, at most `max` of them.
std::vector<uint32_t> SampleRows(size_t num_rows, size_t max) {
  std::vector<uint32_t> rows;
  if (max == 0 || num_rows <= max) {
    rows.resize(num_rows);
    for (size_t i = 0; i < num_rows; ++i) rows[i] = static_cast<uint32_t>(i);
    return rows;
  }
  rows.reserve(max);
  double stride = static_cast<double>(num_rows) / static_cast<double>(max);
  for (size_t i = 0; i < max; ++i) {
    rows.push_back(static_cast<uint32_t>(static_cast<double>(i) * stride));
  }
  return rows;
}

// Returns true and fills `key` iff the row has no NULL among `cols`.
bool RowKey(const Table& table, uint32_t row, const std::vector<size_t>& cols,
            std::vector<ValueId>* key) {
  key->clear();
  for (size_t c : cols) {
    ValueId v = table.cell(row, c);
    if (v == kNullValueId) return false;
    key->push_back(v);
  }
  return true;
}

}  // namespace

double FdSupport(const Table& table, const std::vector<size_t>& x_cols,
                 size_t b_col, const CorrelationOptions& options) {
  std::vector<size_t> all = x_cols;
  all.push_back(b_col);
  std::vector<uint32_t> sample =
      SampleRows(table.num_rows(), options.max_sample_rows);
  // Distinct-key counting shards cleanly: per-shard sets union into the
  // final ones, and only the union sizes matter, so the result is exact
  // regardless of thread count.
  std::unordered_set<std::vector<ValueId>, VecHash> d_lhs, d_all;
  std::mutex mu;
  ThreadPool::Global().ParallelFor(
      sample.size(), kParallelSampleGrain, [&](size_t begin, size_t end) {
        std::unordered_set<std::vector<ValueId>, VecHash> local_lhs,
            local_all;
        std::vector<ValueId> key;
        for (size_t i = begin; i < end; ++i) {
          if (!RowKey(table, sample[i], all, &key)) continue;
          local_all.insert(key);
          key.pop_back();
          local_lhs.insert(key);
        }
        std::lock_guard<std::mutex> lock(mu);
        d_all.insert(local_all.begin(), local_all.end());
        d_lhs.insert(local_lhs.begin(), local_lhs.end());
      });
  if (d_all.empty()) return 0.0;
  return static_cast<double>(d_lhs.size()) / static_cast<double>(d_all.size());
}

double ChiSquared(const Table& table, const std::vector<size_t>& cols,
                  const CorrelationOptions& options) {
  const size_t k = cols.size();
  FALCON_CHECK(k >= 2);

  // Joint and marginal frequency tables over non-null rows. This stays
  // serial on purpose: the chi² accumulation below iterates the joint map,
  // and float summation order must not depend on thread count if profiles
  // (and hence CoDive rankings) are to be reproducible across machines.
  std::unordered_map<std::vector<ValueId>, double, VecHash> joint;
  std::vector<std::unordered_map<ValueId, double>> marginals(k);
  double n = 0;
  std::vector<ValueId> key;
  for (uint32_t row : SampleRows(table.num_rows(), options.max_sample_rows)) {
    if (!RowKey(table, row, cols, &key)) continue;
    joint[key] += 1.0;
    for (size_t j = 0; j < k; ++j) marginals[j][key[j]] += 1.0;
    n += 1.0;
  }
  if (n == 0) return 0.0;

  // chi^2 = sum_observed (o - e)^2 / e  +  sum_unobserved e.
  // The unobserved total equals n - sum_observed e because the expected
  // counts over the full product space sum to n.
  double chi2 = 0.0;
  double observed_expected_sum = 0.0;
  for (const auto& [combo, obs] : joint) {
    double e = n;
    for (size_t j = 0; j < k; ++j) {
      e *= marginals[j].at(combo[j]) / n;
    }
    double d = obs - e;
    chi2 += d * d / e;
    observed_expected_sum += e;
  }
  chi2 += n - observed_expected_sum;
  return chi2;
}

double CorrelationScore(const Table& table, const std::vector<size_t>& x_cols,
                        size_t b_col, const CorrelationOptions& options) {
  if (x_cols.empty()) return 0.0;
  // Soft FD check first (the CORDS fast path).
  if (FdSupport(table, x_cols, b_col, options) >= options.soft_fd_threshold) {
    return 1.0;
  }

  std::vector<size_t> all = x_cols;
  all.push_back(b_col);
  const size_t k = all.size();

  // Distinct counts (m_i) over non-null rows, needed for q. Sharded like
  // FdSupport: set unions and an integer row count are order-independent.
  std::vector<std::unordered_set<ValueId>> distinct(k);
  std::vector<uint32_t> sample =
      SampleRows(table.num_rows(), options.max_sample_rows);
  std::mutex mu;
  std::atomic<size_t> rows_used{0};
  ThreadPool::Global().ParallelFor(
      sample.size(), kParallelSampleGrain, [&](size_t begin, size_t end) {
        std::vector<std::unordered_set<ValueId>> local(k);
        std::vector<ValueId> key;
        size_t used = 0;
        for (size_t i = begin; i < end; ++i) {
          if (!RowKey(table, sample[i], all, &key)) continue;
          for (size_t j = 0; j < k; ++j) local[j].insert(key[j]);
          ++used;
        }
        rows_used.fetch_add(used, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        for (size_t j = 0; j < k; ++j) {
          distinct[j].insert(local[j].begin(), local[j].end());
        }
      });
  double n = static_cast<double>(rows_used.load());
  if (n == 0) return 0.0;

  double prod_m = 1.0;
  double sum_m = 0.0;
  for (size_t j = 0; j < k; ++j) {
    prod_m *= static_cast<double>(distinct[j].size());
    sum_m += static_cast<double>(distinct[j].size());
  }
  double q = prod_m - sum_m + static_cast<double>(k) - 1.0;
  if (q <= 0.0) return 0.0;  // Degenerate: some attribute is constant.

  double chi2 = ChiSquared(table, all, options);
  double score = chi2 / (n * q);
  return std::clamp(score, 0.0, 1.0);
}

CordsProfiler::CordsProfiler(const Table* table, CorrelationOptions options)
    : table_(table), options_(options) {}

double CordsProfiler::PairCorrelation(size_t a_col, size_t b_col) {
  auto [it, inserted] = pair_cache_.try_emplace({a_col, b_col}, 0.0);
  if (inserted) {
    it->second = CorrelationScore(*table_, {a_col}, b_col, options_);
  }
  return it->second;
}

double CordsProfiler::SetCorrelation(const std::vector<size_t>& x_cols,
                                     size_t b_col) {
  if (x_cols.empty()) return 0.0;
  if (x_cols.size() == 1) return PairCorrelation(x_cols[0], b_col);
  std::vector<size_t> sorted = x_cols;
  std::sort(sorted.begin(), sorted.end());
  auto [it, inserted] = set_cache_.try_emplace({sorted, b_col}, 0.0);
  if (inserted) {
    it->second = CorrelationScore(*table_, sorted, b_col, options_);
  }
  return it->second;
}

std::vector<size_t> CordsProfiler::TopKAttributes(size_t target, size_t k) {
  if (distinct_ratio_.empty()) {
    distinct_ratio_.resize(table_->num_cols());
    for (size_t c = 0; c < table_->num_cols(); ++c) {
      distinct_ratio_[c] =
          table_->num_rows() == 0
              ? 0.0
              : static_cast<double>(table_->DistinctCount(c)) /
                    static_cast<double>(table_->num_rows());
    }
  }
  std::vector<std::pair<double, size_t>> scored;
  for (size_t c = 0; c < table_->num_cols(); ++c) {
    if (c == target) continue;
    if (distinct_ratio_[c] > options_.key_ratio_threshold) continue;
    scored.emplace_back(PairCorrelation(c, target), c);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  std::vector<size_t> out;
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace falcon
