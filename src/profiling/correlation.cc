#include "profiling/correlation.h"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace falcon {
namespace {

// Joint value combinations up to this many columns use a fixed-width inline
// key (no per-row heap traffic); wider sets fall back to vector keys. Lattice
// nodes rarely involve more than a handful of attributes, so the inline path
// covers virtually every call.
constexpr size_t kInlineKeyCols = 8;

// Fixed-width key: the row's value ids for the involved columns, padded with
// kNullValueId (never a real key element — null rows are skipped entirely).
struct InlineKey {
  std::array<ValueId, kInlineKeyCols> v;
  bool operator==(const InlineKey&) const = default;
};

struct InlineKeyHash {
  size_t operator()(const InlineKey& k) const {
    uint64_t h = 1469598103934665603ull;
    for (ValueId x : k.v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

// Hash for a vector<ValueId> key (wide-set fallback).
struct VecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

// Deterministic row sample: evenly strided rows, at most `max` of them.
// Visits rows directly instead of materializing an index vector.
template <typename Fn>
void ForEachSampleRow(size_t num_rows, size_t max, Fn&& fn) {
  if (max == 0 || num_rows <= max) {
    for (size_t i = 0; i < num_rows; ++i) fn(static_cast<uint32_t>(i));
    return;
  }
  double stride = static_cast<double>(num_rows) / static_cast<double>(max);
  for (size_t i = 0; i < max; ++i) {
    fn(static_cast<uint32_t>(static_cast<double>(i) * stride));
  }
}

// Joint value-combination counts over `cols`, built in ONE pass over the
// (sampled) rows. Everything the scores need — marginal frequencies, distinct
// counts, soft-FD support, chi² — is derived from this map afterwards, whose
// size is the number of distinct combinations, not the number of rows. Rows
// with a NULL in any involved column are skipped.
//
// The build is serial on purpose: derived chi² sums iterate the map in
// insertion order, and float summation order must not depend on thread count
// if profiles (and hence CoDive rankings) are to be reproducible across
// machines.
struct JointCounts {
  std::unordered_map<InlineKey, double, InlineKeyHash> inline_counts;
  std::unordered_map<std::vector<ValueId>, double, VecHash> vec_counts;
  size_t k = 0;
  bool use_inline = false;
  double n = 0;  // Non-null rows visited.

  size_t size() const {
    return use_inline ? inline_counts.size() : vec_counts.size();
  }

  // Visits (key values pointer, count) for every distinct combination, in
  // deterministic (serial insertion history) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (use_inline) {
      for (const auto& [key, count] : inline_counts) fn(key.v.data(), count);
    } else {
      for (const auto& [key, count] : vec_counts) fn(key.data(), count);
    }
  }

  // Number of distinct combinations of the first k-1 columns (the soft-FD
  // LHS). Derived from the joint keys, so it costs O(#combos), not O(rows).
  size_t DistinctPrefix() const {
    if (use_inline) {
      std::unordered_set<InlineKey, InlineKeyHash> lhs;
      lhs.reserve(inline_counts.size());
      for (const auto& [key, count] : inline_counts) {
        InlineKey stripped = key;
        stripped.v[k - 1] = kNullValueId;
        lhs.insert(stripped);
      }
      return lhs.size();
    }
    std::unordered_set<std::vector<ValueId>, VecHash> lhs;
    lhs.reserve(vec_counts.size());
    for (const auto& [key, count] : vec_counts) {
      std::vector<ValueId> stripped(key.begin(), key.end() - 1);
      lhs.insert(std::move(stripped));
    }
    return lhs.size();
  }
};

JointCounts BuildJointCounts(const Table& table,
                             const std::vector<size_t>& cols,
                             const CorrelationOptions& options) {
  JointCounts out;
  out.k = cols.size();
  out.use_inline = cols.size() <= kInlineKeyCols;
  if (out.use_inline) {
    InlineKey key;
    key.v.fill(kNullValueId);
    ForEachSampleRow(
        table.num_rows(), options.max_sample_rows, [&](uint32_t row) {
          for (size_t j = 0; j < cols.size(); ++j) {
            ValueId v = table.cell(row, cols[j]);
            if (v == kNullValueId) return;
            key.v[j] = v;
          }
          out.inline_counts[key] += 1.0;
          out.n += 1.0;
        });
    return out;
  }
  std::vector<ValueId> key(cols.size());
  ForEachSampleRow(
      table.num_rows(), options.max_sample_rows, [&](uint32_t row) {
        for (size_t j = 0; j < cols.size(); ++j) {
          ValueId v = table.cell(row, cols[j]);
          if (v == kNullValueId) return;
          key[j] = v;
        }
        out.vec_counts[key] += 1.0;
        out.n += 1.0;
      });
  return out;
}

// Per-column marginal frequencies, derived from the joint map. Counts are
// integer-valued doubles summed from integer-valued doubles, so the result
// is bit-identical to accumulating per row.
std::vector<std::unordered_map<ValueId, double>> Marginals(
    const JointCounts& joint) {
  std::vector<std::unordered_map<ValueId, double>> marginals(joint.k);
  joint.ForEach([&](const ValueId* key, double count) {
    for (size_t j = 0; j < joint.k; ++j) marginals[j][key[j]] += count;
  });
  return marginals;
}

// chi^2 = sum_observed (o - e)^2 / e  +  sum_unobserved e.
// The unobserved total equals n - sum_observed e because the expected
// counts over the full product space sum to n.
double Chi2FromJoint(const JointCounts& joint,
                     const std::vector<std::unordered_map<ValueId, double>>&
                         marginals) {
  double n = joint.n;
  double chi2 = 0.0;
  double observed_expected_sum = 0.0;
  joint.ForEach([&](const ValueId* key, double obs) {
    double e = n;
    for (size_t j = 0; j < joint.k; ++j) {
      e *= marginals[j].at(key[j]) / n;
    }
    double d = obs - e;
    chi2 += d * d / e;
    observed_expected_sum += e;
  });
  chi2 += n - observed_expected_sum;
  return chi2;
}

}  // namespace

double FdSupport(const Table& table, const std::vector<size_t>& x_cols,
                 size_t b_col, const CorrelationOptions& options) {
  std::vector<size_t> all = x_cols;
  all.push_back(b_col);
  JointCounts joint = BuildJointCounts(table, all, options);
  if (joint.size() == 0) return 0.0;
  return static_cast<double>(joint.DistinctPrefix()) /
         static_cast<double>(joint.size());
}

double ChiSquared(const Table& table, const std::vector<size_t>& cols,
                  const CorrelationOptions& options) {
  FALCON_CHECK(cols.size() >= 2);
  JointCounts joint = BuildJointCounts(table, cols, options);
  if (joint.n == 0) return 0.0;
  return Chi2FromJoint(joint, Marginals(joint));
}

double CorrelationScore(const Table& table, const std::vector<size_t>& x_cols,
                        size_t b_col, const CorrelationOptions& options) {
  if (x_cols.empty()) return 0.0;
  std::vector<size_t> all = x_cols;
  all.push_back(b_col);
  const size_t k = all.size();

  // One pass over the rows; support, distinct counts, marginals, and chi²
  // all come out of the same joint map.
  JointCounts joint = BuildJointCounts(table, all, options);
  double n = joint.n;
  if (n == 0) return 0.0;

  // Soft FD check first (the CORDS fast path).
  double support = static_cast<double>(joint.DistinctPrefix()) /
                   static_cast<double>(joint.size());
  if (support >= options.soft_fd_threshold) return 1.0;

  std::vector<std::unordered_map<ValueId, double>> marginals =
      Marginals(joint);
  double prod_m = 1.0;
  double sum_m = 0.0;
  for (size_t j = 0; j < k; ++j) {
    prod_m *= static_cast<double>(marginals[j].size());
    sum_m += static_cast<double>(marginals[j].size());
  }
  double q = prod_m - sum_m + static_cast<double>(k) - 1.0;
  if (q <= 0.0) return 0.0;  // Degenerate: some attribute is constant.

  double chi2 = Chi2FromJoint(joint, marginals);
  double score = chi2 / (n * q);
  return std::clamp(score, 0.0, 1.0);
}

CordsProfiler::CordsProfiler(const Table* table, CorrelationOptions options)
    : table_(table), options_(options) {}

double CordsProfiler::PairCorrelation(size_t a_col, size_t b_col) {
  auto [it, inserted] = pair_cache_.try_emplace({a_col, b_col}, 0.0);
  if (inserted) {
    it->second = CorrelationScore(*table_, {a_col}, b_col, options_);
  }
  return it->second;
}

double CordsProfiler::SetCorrelation(const std::vector<size_t>& x_cols,
                                     size_t b_col) {
  if (x_cols.empty()) return 0.0;
  if (x_cols.size() == 1) return PairCorrelation(x_cols[0], b_col);
  std::vector<size_t> sorted = x_cols;
  std::sort(sorted.begin(), sorted.end());
  auto [it, inserted] = set_cache_.try_emplace({sorted, b_col}, 0.0);
  if (inserted) {
    it->second = CorrelationScore(*table_, sorted, b_col, options_);
  }
  return it->second;
}

std::vector<size_t> CordsProfiler::TopKAttributes(size_t target, size_t k) {
  if (distinct_ratio_.empty()) {
    distinct_ratio_.resize(table_->num_cols());
    for (size_t c = 0; c < table_->num_cols(); ++c) {
      distinct_ratio_[c] =
          table_->num_rows() == 0
              ? 0.0
              : static_cast<double>(table_->DistinctCount(c)) /
                    static_cast<double>(table_->num_rows());
    }
  }
  std::vector<std::pair<double, size_t>> scored;
  for (size_t c = 0; c < table_->num_cols(); ++c) {
    if (c == target) continue;
    if (distinct_ratio_[c] > options_.key_ratio_threshold) continue;
    scored.emplace_back(PairCorrelation(c, target), c);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  std::vector<size_t> out;
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace falcon
