// CORDS-style correlation profiling (Ilyas et al., SIGMOD 2004), modified as
// in the FALCON paper (Section 4.2.2) to score the correlation between a SET
// of attributes X and a single attribute B:
//
//   cor(X, B) = chi^2 / (n * q)                            (Eq. 1)
//   chi^2     = sum over joint value combos of X ∪ {B}
//               of (observed - expected)^2 / expected      (Eq. 2)
//   expected  = n * prod_j (marginal frequency of v_j / n) (Eq. 3)
//   q         = prod_i m_i - sum_i m_i + k - 1             (Eq. 4)
//
// where k = |X ∪ {B}| and m_i = #distinct values of the i-th attribute.
// Soft functional dependencies (support above a threshold) score 1.0.
// Rows with NULL in any involved attribute are ignored.
#ifndef FALCON_PROFILING_CORRELATION_H_
#define FALCON_PROFILING_CORRELATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "relational/table.h"

namespace falcon {

/// Tunables for correlation profiling.
struct CorrelationOptions {
  /// sup(X, B) at or above this is declared a soft FD (score 1.0).
  double soft_fd_threshold = 0.8;
  /// If non-zero and the table is larger, profile a deterministic sample of
  /// this many rows (CORDS' sampling step).
  size_t max_sample_rows = 0;
  /// TopKAttributes skips near-key columns (distinct/rows above this):
  /// CORDS prunes key columns up front, and a key trivially soft-FDs every
  /// attribute without ever generalizing a repair.
  double key_ratio_threshold = 0.9;
};

/// Soft-FD support of X → B: |distinct(X)| / |distinct(X ∪ {B})| over
/// non-null rows. Equals 1.0 iff X functionally determines B.
double FdSupport(const Table& table, const std::vector<size_t>& x_cols,
                 size_t b_col, const CorrelationOptions& options = {});

/// The paper's cor(X, B) in [0, 1]; 1.0 for soft FDs.
double CorrelationScore(const Table& table, const std::vector<size_t>& x_cols,
                        size_t b_col, const CorrelationOptions& options = {});

/// Chi-squared statistic over the joint contingency table of `cols`
/// (exposed for tests; reproduces the paper's Example 7 value 12.67 on the
/// drug dataset).
double ChiSquared(const Table& table, const std::vector<size_t>& cols,
                  const CorrelationOptions& options = {});

/// Caching profiler used by lattice construction (partial materialization)
/// and by the CoDive search strategy.
class CordsProfiler {
 public:
  explicit CordsProfiler(const Table* table, CorrelationOptions options = {});

  /// cor({a}, b): pairwise correlation, cached.
  double PairCorrelation(size_t a_col, size_t b_col);

  /// cor(X, b) for an attribute set, cached.
  double SetCorrelation(const std::vector<size_t>& x_cols, size_t b_col);

  /// The k attributes most correlated with `target` (by pairwise score,
  /// descending; `target` itself excluded). Ties break by column order.
  std::vector<size_t> TopKAttributes(size_t target, size_t k);

  const CorrelationOptions& options() const { return options_; }

 private:
  const Table* table_;
  CorrelationOptions options_;
  std::vector<double> distinct_ratio_;  // Lazily computed key detector.
  std::map<std::pair<size_t, size_t>, double> pair_cache_;
  std::map<std::pair<std::vector<size_t>, size_t>, double> set_cache_;
};

}  // namespace falcon

#endif  // FALCON_PROFILING_CORRELATION_H_
