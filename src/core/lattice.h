// The FALCON query lattice (paper Section 3): the search space of candidate
// SQLU generalizations of one user repair Δ: t[A] ← a'.
//
// Nodes are attribute subsets X of the (top-k correlated) lattice columns;
// node X is the query  UPDATE T SET A = a' WHERE ∧_{B∈X} B = t[B].
// Containment Q ≤ Q' ⇔ attr(Q') ⊆ attr(Q); the bottom node ∅ is the most
// general query, the top node (all attributes) the most specific.
//
// The lattice maintains, per node, the affected row set — rows matching the
// WHERE clause whose A value differs from a' — and tracks validity state
// with the paper's inference rules.
//
// Materialization is LAZY by default: Build only computes the bottom node
// and the per-attribute predicate bitmaps; a node's affected set / count is
// computed on first access via the ancestor-chain recurrence
//
//     affected(m) = affected(m without its lowest attribute) ∧ pred(lowest)
//
// which recursively materializes only the ancestor chain actually needed,
// then caches it for the lattice's lifetime. Counts use the fused
// RowSet::AndCount kernel (no intermediate bitmap), EnsureCounts batches a
// search frontier through ThreadPool::ParallelFor, and two-attribute nodes
// can reuse pairwise predicate intersections memoized across successive
// repairs in an IntersectionMemo. Applied queries incrementally maintain
// whatever is cached (maintenance Cases 1–3 of Section 5.1.2, restricted to
// the materialized subset); closed rule sets (Section 5.2) resolve a node's
// representative through the predicate-closure rule without materializing
// anything beyond the node itself.
#ifndef FALCON_CORE_LATTICE_H_
#define FALCON_CORE_LATTICE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hybrid_row_set.h"
#include "common/row_set.h"
#include "common/status.h"
#include "relational/sqlu.h"
#include "relational/table.h"

namespace falcon {

/// A lattice node: bit i set ⇔ lattice attribute i is in the WHERE clause.
using NodeId = uint32_t;

/// Validity state of a node's query.
enum class Validity : uint8_t { kUnknown, kValid, kInvalid };

class PostingIndex;
class IntersectionMemo;

/// Hard ceiling on lattice attributes: node ids are 32-bit masks and the
/// per-node state vectors are sized 2^k, so builds beyond this are refused
/// outright (partial materialization should have capped k long before).
inline constexpr size_t kMaxLatticeAttrs = 20;

/// Lattice construction options.
struct LatticeOptions {
  /// Hard cap on lattice attributes (2^max_attrs nodes). Partial
  /// materialization (Section 5.1.1) keeps lattices this small.
  size_t max_attrs = 12;
  /// Appendix B (master data) variant: the updated attribute itself may not
  /// appear in WHERE clauses.
  bool exclude_target_attr = false;
  /// Benchmark toggle: initialize each node's affected set by a full
  /// conjunction scan instead of the bottom-up view rewriting. Implies
  /// eager materialization.
  bool naive_init = false;
  /// Optional posting cache for predicate bitmaps (non-owning). Ignored by
  /// naive_init. When the index runs in delta-maintenance mode, ApplyNode
  /// patches its bitmaps in place (see maintain_index); otherwise the
  /// caller must invalidate updated columns.
  PostingIndex* index = nullptr;
  /// Keep the posting index exact across ApplyNode by reporting each
  /// query's writes as deltas (only meaningful when the index is in
  /// delta-maintenance mode). Off reverts to caller-side invalidation.
  bool maintain_index = true;
  /// Materialize node affected-sets on first access instead of at Build
  /// (the default). Off forces the legacy eager build — every node's
  /// bitmap and count computed up front — kept for A/B benchmarks and the
  /// lazy≡eager equivalence tests. Either way accessors return identical
  /// bits; only the work schedule differs.
  bool lazy = true;
  /// Optional cross-lattice cache of pairwise predicate intersections
  /// (non-owning; lazy mode only). ApplyNode patches it exactly on every
  /// applied query, which requires the memo to see *all* writes to the
  /// table it summarizes: attach one memo per mutable table (the session
  /// does), and never share it with a lattice applied to a cloned table.
  IntersectionMemo* memo = nullptr;
  /// Store predicate bitmaps and memoized node sets in the
  /// density-adaptive compressed representation: each bitmap picks dense
  /// words or Roaring-style containers by its measured density
  /// (HybridRowSet::Compact), deterministically in its cardinality alone.
  /// Bit-identical to dense mode — only the storage (and bytes) differ.
  /// Ignored by naive_init (the strawman stays dense).
  bool compressed = false;
};

/// One user repair: set cell (row, col) to `new_value`.
struct Repair {
  uint32_t row = 0;
  size_t col = 0;
  std::string new_value;
};

class Lattice {
 public:
  /// Builds the lattice for `repair` over `table`. `candidate_cols` are the
  /// columns eligible for WHERE predicates, in rank order (partial
  /// materialization feeds the top-k correlated columns); the repaired
  /// column is prepended automatically unless options.exclude_target_attr.
  /// Predicate constants bind to the repaired tuple's *current* values.
  static StatusOr<Lattice> Build(const Table& table, const Repair& repair,
                                 std::vector<size_t> candidate_cols,
                                 const LatticeOptions& options = {});

  // --- Shape ---------------------------------------------------------------

  size_t num_attrs() const { return cols_.size(); }
  size_t num_nodes() const { return NodeId{1} << cols_.size(); }
  NodeId bottom() const { return 0; }
  NodeId top() const { return static_cast<NodeId>(num_nodes() - 1); }

  /// Table columns backing each lattice attribute bit.
  const std::vector<size_t>& lattice_cols() const { return cols_; }

  /// Name of lattice attribute `i`.
  const std::string& attr_name(size_t i) const { return attr_names_[i]; }

  /// Decoded predicate constant bound to lattice attribute `i`.
  const std::string& binding_text(size_t i) const { return binding_texts_[i]; }

  /// Interned predicate constant bound to lattice attribute `i`.
  ValueId binding(size_t i) const { return bindings_[i]; }

  /// Posting cache supplied at Build time (may be null).
  PostingIndex* index() const { return index_; }

  /// The repair this lattice generalizes.
  const Repair& repair() const { return repair_; }
  size_t target_col() const { return repair_.col; }
  ValueId target_value() const { return target_value_; }

  // --- Affected sets ---------------------------------------------------------

  /// Node `n`'s affected rows, materializing the minimal ancestor chain on
  /// first access (lazy mode) and caching the result. The reference stays
  /// valid for the lattice's lifetime; bits are identical to an eager
  /// build's, in whichever representation the density policy chose.
  const HybridRowSet& AffectedRows(NodeId n) const;

  /// |AffectedRows(n)|, computed on first access via the fused AndCount
  /// kernel against the parent's bitmap — the node's own bitmap is *not*
  /// materialized when only the cardinality is needed.
  size_t Count(NodeId n) const;

  /// Batch form of Count for a search frontier: materializes the needed
  /// ancestor bitmaps level-by-level and computes the fused counts in
  /// parallel shards (ThreadPool::ParallelFor, disjoint slots —
  /// deterministic). No-op in eager mode or for already-counted nodes.
  void EnsureCounts(const std::vector<NodeId>& nodes) const;

  /// Legacy accessor names (aliases of AffectedRows/Count).
  const HybridRowSet& affected(NodeId n) const { return AffectedRows(n); }
  size_t affected_count(NodeId n) const { return Count(n); }

  /// True once node `n`'s bitmap is resident.
  bool materialized(NodeId n) const {
    return affected_[n].universe_size() == num_table_rows_;
  }

  /// Laziness counters for SessionMetrics / the benches.
  struct LazyStats {
    size_t nodes_materialized = 0;  ///< Node bitmaps resident.
    size_t fused_count_calls = 0;   ///< Counts served by AndCount alone.
  };
  LazyStats lazy_stats() const {
    return {nodes_materialized_, fused_count_calls_};
  }
  bool lazy() const { return lazy_; }

  // --- Validity and inference ------------------------------------------------

  Validity validity(NodeId n) const { return validity_[n]; }

  /// Marks `n` valid and infers validity for every more-specific node
  /// (supersets of n's attribute set). Inference never overwrites a state
  /// already known.
  void MarkValid(NodeId n);

  /// Marks `n` invalid and infers invalidity for every more-general node
  /// (subsets of n's attribute set).
  void MarkInvalid(NodeId n);

  /// Nodes whose validity is still unknown.
  std::vector<NodeId> UnknownNodes() const;

  // --- Application and maintenance -------------------------------------------

  /// Per-case counters for the incremental maintenance of Section 5.1.2.
  struct MaintenanceStats {
    size_t case1_contained = 0;  ///< Q' ≤ Q: set drops to ∅ (constant time).
    size_t case2_containing = 0; ///< Q ≤ Q'': count -= |Q(T)| (one AND-NOT).
    size_t case3_disjoint = 0;   ///< overlap counted then removed.
  };

  /// Applies node `n`'s query to `table` (which must be the table the
  /// lattice was built over): writes the target value into every affected
  /// row and incrementally updates the *cached* affected sets and counts
  /// (Cases 1–3 of Section 5.1.2, each with its cheap path; in lazy mode
  /// unmaterialized nodes pay nothing and later materialize against the
  /// equally-maintained predicate bitmaps). Returns the changed rows.
  ///
  /// When `fault` is non-null the per-row writes check the `apply.write`
  /// fault-injection site: on an injected fault the apply stops mid-write
  /// (a torn apply), `*fault` carries the error, and lattice maintenance is
  /// skipped — the session's journal before-images make the partial write
  /// recoverable. Callers that pass nullptr (tests, benches, the REPL) pay
  /// nothing and never fault.
  RowSet ApplyNode(NodeId n, Table& table, Status* fault = nullptr);

  /// Cumulative maintenance case counts across ApplyNode calls.
  const MaintenanceStats& maintenance_stats() const {
    return maintenance_stats_;
  }

  /// Benchmark/naive path: recomputes every affected set from the current
  /// table contents (what a from-scratch rebuild would do). In lazy mode
  /// this drops all cached node state and refetches the bottom/predicate
  /// bitmaps; accesses then re-materialize against the new table contents.
  void RecomputeAffected(const Table& table);

  /// Streaming-append maintenance: `table` (the table the lattice was
  /// built over) grew by appending rows since Build; no existing cell
  /// changed. Extends the predicate bitmaps, the bottom node, and every
  /// cached node's bitmap/count with exactly the new rows — O(batch ×
  /// cached nodes), never O(table). Unmaterialized nodes stay
  /// unmaterialized and later materialize against the extended predicate
  /// bitmaps; count-only nodes get exact closed-form increments. The
  /// attached PostingIndex/IntersectionMemo are NOT maintained here — the
  /// caller routes the same append through their ApplyAppend first.
  void ApplyAppend(const Table& table);

  // --- Query materialization ---------------------------------------------------

  /// Renders node `n` as a SQLU statement.
  SqluQuery NodeQuery(NodeId n) const;

  /// Human-readable attribute-set label, e.g. "{Molecule, Laboratory}".
  std::string NodeLabel(NodeId n) const;

  // --- Closed rule sets (Section 5.2) -----------------------------------------

  /// Representative rule of n's closed rule set: the set member with the
  /// most WHERE predicates. Computed by the predicate-closure rule —
  /// rep(n) = n ∪ {i ∉ n : affected(n) ⊆ pred(i)} — which touches only n's
  /// own bitmap, so it never forces materialization beyond n. (Equivalent
  /// to grouping nodes by identical affected sets: equal-set classes are
  /// closed under attribute union, making the closure their unique maximal
  /// member.) Memoized per node until the next applied query.
  NodeId Representative(NodeId n);

  /// Number of distinct closed rule sets at the current counts (stats
  /// only; materializes every node in lazy mode).
  size_t NumClosedSets();

 private:
  /// Sentinel in counts_: cardinality not yet computed.
  static constexpr size_t kNoCount = static_cast<size_t>(-1);

  Lattice() = default;

  /// Fills affected_[bottom] and the per-attribute predicate bitmaps
  /// preds_ (from the posting index when present, else column scans).
  void InitBottomAndPreds(const Table& table);
  /// Eager view rewriting: materializes every node bottom-up (one AND per
  /// node off the lowest-set-bit parent).
  void EagerChain();
  void InitAffectedNaive(const Table& table);
  /// Marks every node materialized + counted after an eager init.
  void FinishEagerInit();
  /// Records that node m now holds cached state (bitmap and/or count).
  void MarkCached(NodeId m) const;
  /// Materializes node m's bitmap via the ancestor-chain recurrence,
  /// consulting the IntersectionMemo for two-attribute nodes. Also fills
  /// counts_[m] (the bits are resident, so the count is free) and — in
  /// compressed mode — compacts the bitmap by its density. Done in BOTH
  /// modes so the lazy counters, and with them SessionMetrics, stay
  /// bit-identical across representations.
  const HybridRowSet& MaterializeBitmap(NodeId m) const;
  void MaterializeAll() const;
  void EnsureClosedSets();

  std::vector<size_t> cols_;          // Lattice attribute -> table column.
  std::vector<ValueId> bindings_;     // Predicate constant per attribute.
  std::string table_name_;
  std::string set_attr_name_;
  std::vector<std::string> attr_names_;    // Name per lattice attribute.
  std::vector<std::string> binding_texts_; // Decoded predicate constants.
  Repair repair_;
  ValueId target_value_ = kNullValueId;
  size_t num_table_rows_ = 0;
  PostingIndex* index_ = nullptr;
  bool maintain_index_ = true;
  bool lazy_ = true;
  bool compressed_ = false;
  IntersectionMemo* memo_ = nullptr;

  /// Per-attribute predicate bitmaps (value copies — posting references
  /// can be invalidated/evicted under the lattice). ApplyNode maintains
  /// them exactly alongside the node sets, which is what keeps the chain
  /// recurrence (and the closure rule) correct for nodes materialized
  /// *after* repairs were applied. In compressed mode each bitmap is
  /// compacted by density; dense mode forces dense storage either way.
  std::vector<HybridRowSet> preds_;

  // Lazily-populated per-node caches. Mutable because materialization is
  // memoization: const accessors (oracles, tests) observe identical values
  // whether or not the bits were resident beforehand. An empty set
  // (universe 0 ≠ num_table_rows_) marks "not materialized"; kNoCount
  // marks "not counted". cached_nodes_ lists every node holding any state
  // so ApplyNode maintenance iterates only those.
  mutable std::vector<HybridRowSet> affected_;
  mutable std::vector<size_t> counts_;
  mutable std::vector<uint8_t> cached_flag_;
  mutable std::vector<NodeId> cached_nodes_;
  mutable size_t nodes_materialized_ = 0;
  mutable size_t fused_count_calls_ = 0;

  std::vector<Validity> validity_;
  MaintenanceStats maintenance_stats_;

  /// Per-node Representative memo; cleared on every applied query.
  std::unordered_map<NodeId, NodeId> rep_cache_;

  // Closed-set grouping state (NumClosedSets only).
  bool closed_sets_fresh_ = false;
  std::vector<uint32_t> closed_group_;
  std::vector<NodeId> group_representative_;
};

}  // namespace falcon

#endif  // FALCON_CORE_LATTICE_H_
