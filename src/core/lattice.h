// The FALCON query lattice (paper Section 3): the search space of candidate
// SQLU generalizations of one user repair Δ: t[A] ← a'.
//
// Nodes are attribute subsets X of the (top-k correlated) lattice columns;
// node X is the query  UPDATE T SET A = a' WHERE ∧_{B∈X} B = t[B].
// Containment Q ≤ Q' ⇔ attr(Q') ⊆ attr(Q); the bottom node ∅ is the most
// general query, the top node (all attributes) the most specific.
//
// The lattice maintains, per node, the affected row set — rows matching the
// WHERE clause whose A value differs from a' — initialized bottom-up via
// view rewriting (Section 5.1.2) and maintained incrementally when a
// validated query is applied (maintenance Cases 1–3 collapse to one AND-NOT
// per node in the bitmap representation). It also tracks validity state
// with the paper's inference rules and computes closed rule sets
// (Section 5.2) with their representative rules.
#ifndef FALCON_CORE_LATTICE_H_
#define FALCON_CORE_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/row_set.h"
#include "common/status.h"
#include "relational/sqlu.h"
#include "relational/table.h"

namespace falcon {

/// A lattice node: bit i set ⇔ lattice attribute i is in the WHERE clause.
using NodeId = uint32_t;

/// Validity state of a node's query.
enum class Validity : uint8_t { kUnknown, kValid, kInvalid };

class PostingIndex;

/// Lattice construction options.
struct LatticeOptions {
  /// Hard cap on lattice attributes (2^max_attrs nodes). Partial
  /// materialization (Section 5.1.1) keeps lattices this small.
  size_t max_attrs = 12;
  /// Appendix B (master data) variant: the updated attribute itself may not
  /// appear in WHERE clauses.
  bool exclude_target_attr = false;
  /// Benchmark toggle: initialize each node's affected set by a full
  /// conjunction scan instead of the bottom-up view rewriting.
  bool naive_init = false;
  /// Optional posting cache for predicate bitmaps (non-owning). Ignored by
  /// naive_init. When the index runs in delta-maintenance mode, ApplyNode
  /// patches its bitmaps in place (see maintain_index); otherwise the
  /// caller must invalidate updated columns.
  PostingIndex* index = nullptr;
  /// Keep the posting index exact across ApplyNode by reporting each
  /// query's writes as deltas (only meaningful when the index is in
  /// delta-maintenance mode). Off reverts to caller-side invalidation.
  bool maintain_index = true;
};

/// One user repair: set cell (row, col) to `new_value`.
struct Repair {
  uint32_t row = 0;
  size_t col = 0;
  std::string new_value;
};

class Lattice {
 public:
  /// Builds the lattice for `repair` over `table`. `candidate_cols` are the
  /// columns eligible for WHERE predicates, in rank order (partial
  /// materialization feeds the top-k correlated columns); the repaired
  /// column is prepended automatically unless options.exclude_target_attr.
  /// Predicate constants bind to the repaired tuple's *current* values.
  static StatusOr<Lattice> Build(const Table& table, const Repair& repair,
                                 std::vector<size_t> candidate_cols,
                                 const LatticeOptions& options = {});

  // --- Shape ---------------------------------------------------------------

  size_t num_attrs() const { return cols_.size(); }
  size_t num_nodes() const { return NodeId{1} << cols_.size(); }
  NodeId bottom() const { return 0; }
  NodeId top() const { return static_cast<NodeId>(num_nodes() - 1); }

  /// Table columns backing each lattice attribute bit.
  const std::vector<size_t>& lattice_cols() const { return cols_; }

  /// Name of lattice attribute `i`.
  const std::string& attr_name(size_t i) const { return attr_names_[i]; }

  /// Decoded predicate constant bound to lattice attribute `i`.
  const std::string& binding_text(size_t i) const { return binding_texts_[i]; }

  /// Interned predicate constant bound to lattice attribute `i`.
  ValueId binding(size_t i) const { return bindings_[i]; }

  /// Posting cache supplied at Build time (may be null).
  PostingIndex* index() const { return index_; }

  /// The repair this lattice generalizes.
  const Repair& repair() const { return repair_; }
  size_t target_col() const { return repair_.col; }
  ValueId target_value() const { return target_value_; }

  // --- Affected sets ---------------------------------------------------------

  const RowSet& affected(NodeId n) const { return affected_[n]; }
  size_t affected_count(NodeId n) const { return counts_[n]; }

  // --- Validity and inference ------------------------------------------------

  Validity validity(NodeId n) const { return validity_[n]; }

  /// Marks `n` valid and infers validity for every more-specific node
  /// (supersets of n's attribute set). Inference never overwrites a state
  /// already known.
  void MarkValid(NodeId n);

  /// Marks `n` invalid and infers invalidity for every more-general node
  /// (subsets of n's attribute set).
  void MarkInvalid(NodeId n);

  /// Nodes whose validity is still unknown.
  std::vector<NodeId> UnknownNodes() const;

  // --- Application and maintenance -------------------------------------------

  /// Per-case counters for the incremental maintenance of Section 5.1.2.
  struct MaintenanceStats {
    size_t case1_contained = 0;  ///< Q' ≤ Q: set drops to ∅ (constant time).
    size_t case2_containing = 0; ///< Q ≤ Q'': count -= |Q(T)| (one AND-NOT).
    size_t case3_disjoint = 0;   ///< overlap counted then removed.
  };

  /// Applies node `n`'s query to `table` (which must be the table the
  /// lattice was built over): writes the target value into every affected
  /// row and incrementally updates all affected sets (Cases 1–3 of
  /// Section 5.1.2, each with its cheap path). Returns the changed rows.
  ///
  /// When `fault` is non-null the per-row writes check the `apply.write`
  /// fault-injection site: on an injected fault the apply stops mid-write
  /// (a torn apply), `*fault` carries the error, and lattice maintenance is
  /// skipped — the session's journal before-images make the partial write
  /// recoverable. Callers that pass nullptr (tests, benches, the REPL) pay
  /// nothing and never fault.
  RowSet ApplyNode(NodeId n, Table& table, Status* fault = nullptr);

  /// Cumulative maintenance case counts across ApplyNode calls.
  const MaintenanceStats& maintenance_stats() const {
    return maintenance_stats_;
  }

  /// Benchmark/naive path: recomputes every affected set from the current
  /// table contents (what a from-scratch rebuild would do).
  void RecomputeAffected(const Table& table);

  // --- Query materialization ---------------------------------------------------

  /// Renders node `n` as a SQLU statement.
  SqluQuery NodeQuery(NodeId n) const;

  /// Human-readable attribute-set label, e.g. "{Molecule, Laboratory}".
  std::string NodeLabel(NodeId n) const;

  // --- Closed rule sets (Section 5.2) -----------------------------------------

  /// Representative rule of n's closed rule set: the set member with the
  /// most WHERE predicates. Closed sets are recomputed lazily after each
  /// ApplyNode (affected counts change, so closures change).
  NodeId Representative(NodeId n);

  /// Number of distinct closed rule sets at the current counts (stats).
  size_t NumClosedSets();

 private:
  Lattice() = default;

  void InitAffectedViaViews(const Table& table);
  void InitAffectedNaive(const Table& table);
  void EnsureClosedSets();

  std::vector<size_t> cols_;          // Lattice attribute -> table column.
  std::vector<ValueId> bindings_;     // Predicate constant per attribute.
  std::string table_name_;
  std::string set_attr_name_;
  std::vector<std::string> attr_names_;    // Name per lattice attribute.
  std::vector<std::string> binding_texts_; // Decoded predicate constants.
  Repair repair_;
  ValueId target_value_ = kNullValueId;
  size_t num_table_rows_ = 0;
  PostingIndex* index_ = nullptr;
  bool maintain_index_ = true;

  std::vector<RowSet> affected_;
  std::vector<size_t> counts_;
  std::vector<Validity> validity_;
  MaintenanceStats maintenance_stats_;

  // Closed-set state: group id per node and representative per group.
  bool closed_sets_fresh_ = false;
  std::vector<uint32_t> closed_group_;
  std::vector<NodeId> group_representative_;
};

}  // namespace falcon

#endif  // FALCON_CORE_LATTICE_H_
