#include "core/session_journal.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32c.h"
#include "common/fault_injector.h"

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace falcon {
namespace {

// Framing: [u32 payload_len][u32 crc32c(payload)][payload], little-endian.
constexpr size_t kFrameBytes = 8;
// Corrupt length fields must not trigger absurd allocations.
constexpr size_t kMaxPayloadBytes = size_t{1} << 30;

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutStr(std::string& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

void PutBool(std::string& out, bool b) { out.push_back(b ? 1 : 0); }

// Bounds-checked little-endian reader over one payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status U32(uint32_t* out) {
    if (pos_ + 4 > data_.size()) return Short();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::Ok();
  }

  Status U64(uint64_t* out) {
    if (pos_ + 8 > data_.size()) return Short();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::Ok();
  }

  Status Str(std::string* out) {
    uint32_t len = 0;
    FALCON_RETURN_IF_ERROR(U32(&len));
    if (pos_ + len > data_.size()) return Short();
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return Status::Ok();
  }

  Status Bool(bool* out) {
    if (pos_ >= data_.size()) return Short();
    *out = data_[pos_++] != 0;
    return Status::Ok();
  }

  Status BeforeImages(std::vector<std::pair<uint32_t, std::string>>* out) {
    uint32_t n = 0;
    FALCON_RETURN_IF_ERROR(U32(&n));
    // Each entry costs at least 8 payload bytes; a bigger count than the
    // remaining bytes could hold is damage — reject before reserving.
    if (static_cast<size_t>(n) * 8 > data_.size() - pos_) return Short();
    out->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t row = 0;
      std::string before_value;
      FALCON_RETURN_IF_ERROR(U32(&row));
      FALCON_RETURN_IF_ERROR(Str(&before_value));
      out->emplace_back(row, std::move(before_value));
    }
    return Status::Ok();
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Short() const {
    return Status::InvalidArgument("journal payload truncated");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

bool JournalRecord::operator==(const JournalRecord& other) const {
  return kind == other.kind && seed == other.seed &&
         num_rows == other.num_rows && num_cols == other.num_cols &&
         table_crc == other.table_crc && row == other.row &&
         col == other.col && value == other.value && wrong == other.wrong &&
         node == other.node && valid == other.valid &&
         billed == other.billed && manual == other.manual &&
         before == other.before && user_updates == other.user_updates &&
         user_answers == other.user_answers &&
         cells_repaired == other.cells_repaired &&
         queries_applied == other.queries_applied && entry == other.entry;
}

std::string EncodeJournalRecord(const JournalRecord& r) {
  std::string out;
  out.push_back(static_cast<char>(r.kind));
  switch (r.kind) {
    case JournalRecord::Kind::kStart:
      PutU64(out, r.seed);
      PutU64(out, r.num_rows);
      PutU64(out, r.num_cols);
      PutU32(out, r.table_crc);
      break;
    case JournalRecord::Kind::kUserUpdate:
      PutU32(out, r.row);
      PutU32(out, r.col);
      PutStr(out, r.value);
      PutBool(out, r.wrong);
      break;
    case JournalRecord::Kind::kAnswer:
      PutU32(out, r.node);
      PutBool(out, r.valid);
      PutBool(out, r.billed);
      break;
    case JournalRecord::Kind::kApply:
      PutU32(out, r.node);
      PutU32(out, r.col);
      PutBool(out, r.manual);
      PutStr(out, r.value);
      PutU32(out, static_cast<uint32_t>(r.before.size()));
      for (const auto& [row, before_value] : r.before) {
        PutU32(out, row);
        PutStr(out, before_value);
      }
      break;
    case JournalRecord::Kind::kCheckpoint:
      PutU64(out, r.user_updates);
      PutU64(out, r.user_answers);
      PutU64(out, r.cells_repaired);
      PutU64(out, r.queries_applied);
      PutU32(out, r.table_crc);
      break;
    case JournalRecord::Kind::kRetract:
      PutU64(out, r.entry);
      PutU32(out, r.col);
      // Pre-undo cell values: rolling back a torn retraction re-applies
      // these, exactly like a kApply's before-images.
      PutU32(out, static_cast<uint32_t>(r.before.size()));
      for (const auto& [row, before_value] : r.before) {
        PutU32(out, row);
        PutStr(out, before_value);
      }
      break;
  }
  return out;
}

StatusOr<JournalRecord> DecodeJournalRecord(std::string_view payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("empty journal payload");
  }
  JournalRecord r;
  uint8_t kind = static_cast<uint8_t>(payload[0]);
  if (kind < static_cast<uint8_t>(JournalRecord::Kind::kStart) ||
      kind > static_cast<uint8_t>(JournalRecord::Kind::kRetract)) {
    return Status::InvalidArgument("unknown journal record kind " +
                                   std::to_string(kind));
  }
  r.kind = static_cast<JournalRecord::Kind>(kind);
  Reader in(payload.substr(1));
  switch (r.kind) {
    case JournalRecord::Kind::kStart:
      FALCON_RETURN_IF_ERROR(in.U64(&r.seed));
      FALCON_RETURN_IF_ERROR(in.U64(&r.num_rows));
      FALCON_RETURN_IF_ERROR(in.U64(&r.num_cols));
      FALCON_RETURN_IF_ERROR(in.U32(&r.table_crc));
      break;
    case JournalRecord::Kind::kUserUpdate:
      FALCON_RETURN_IF_ERROR(in.U32(&r.row));
      FALCON_RETURN_IF_ERROR(in.U32(&r.col));
      FALCON_RETURN_IF_ERROR(in.Str(&r.value));
      FALCON_RETURN_IF_ERROR(in.Bool(&r.wrong));
      break;
    case JournalRecord::Kind::kAnswer:
      FALCON_RETURN_IF_ERROR(in.U32(&r.node));
      FALCON_RETURN_IF_ERROR(in.Bool(&r.valid));
      FALCON_RETURN_IF_ERROR(in.Bool(&r.billed));
      break;
    case JournalRecord::Kind::kApply: {
      FALCON_RETURN_IF_ERROR(in.U32(&r.node));
      FALCON_RETURN_IF_ERROR(in.U32(&r.col));
      FALCON_RETURN_IF_ERROR(in.Bool(&r.manual));
      FALCON_RETURN_IF_ERROR(in.Str(&r.value));
      FALCON_RETURN_IF_ERROR(in.BeforeImages(&r.before));
      break;
    }
    case JournalRecord::Kind::kCheckpoint:
      FALCON_RETURN_IF_ERROR(in.U64(&r.user_updates));
      FALCON_RETURN_IF_ERROR(in.U64(&r.user_answers));
      FALCON_RETURN_IF_ERROR(in.U64(&r.cells_repaired));
      FALCON_RETURN_IF_ERROR(in.U64(&r.queries_applied));
      FALCON_RETURN_IF_ERROR(in.U32(&r.table_crc));
      break;
    case JournalRecord::Kind::kRetract:
      FALCON_RETURN_IF_ERROR(in.U64(&r.entry));
      FALCON_RETURN_IF_ERROR(in.U32(&r.col));
      FALCON_RETURN_IF_ERROR(in.BeforeImages(&r.before));
      break;
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in journal payload");
  }
  return r;
}

StatusOr<SessionJournal> SessionJournal::Open(const std::string& path,
                                              bool truncate) {
  std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open journal " + path);
  }
  return SessionJournal(path, file);
}

SessionJournal::SessionJournal(SessionJournal&& other) noexcept
    : path_(std::move(other.path_)), file_(other.file_) {
  other.file_ = nullptr;
}

SessionJournal& SessionJournal::operator=(SessionJournal&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

SessionJournal::~SessionJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SessionJournal::Append(const JournalRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal is closed");
  }
  FALCON_RETURN_IF_ERROR(FaultInjector::Global().Hit("journal.append"));
  std::string payload = EncodeJournalRecord(record);
  std::string frame;
  frame.reserve(kFrameBytes + payload.size());
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU32(frame, Crc32c(payload));
  Status torn = FaultInjector::Global().Hit("journal.torn");
  if (!torn.ok()) {
    // Simulate a crash mid-write: the framing and half the payload reach
    // the file, then the process dies. Flush so the torn bytes are really
    // there for recovery to trip over.
    frame.append(payload.data(), payload.size() / 2);
    std::fwrite(frame.data(), 1, frame.size(), file_);
    std::fflush(file_);
    return torn;
  }
  frame.append(payload);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IoError("journal write failed: " + path_);
  }
  return Status::Ok();
}

Status SessionJournal::Checkpoint(const JournalRecord& record) {
  FALCON_RETURN_IF_ERROR(Append(record));
  return Sync();
}

Status SessionJournal::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal is closed");
  }
  FALCON_RETURN_IF_ERROR(FaultInjector::Global().Hit("journal.sync"));
  if (std::fflush(file_) != 0) {
    return Status::IoError("journal flush failed: " + path_);
  }
#ifndef _WIN32
  if (fsync(fileno(file_)) != 0) {
    return Status::IoError("journal fsync failed: " + path_);
  }
#endif
  return Status::Ok();
}

StatusOr<JournalContents> SessionJournal::Read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no journal at " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string data = buf.str();

  JournalContents contents;
  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameBytes) {
      contents.torn = true;
      break;
    }
    auto read_u32 = [&](size_t at) {
      uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        v |= static_cast<uint32_t>(static_cast<unsigned char>(data[at + i]))
             << (8 * i);
      }
      return v;
    };
    uint32_t len = read_u32(pos);
    uint32_t crc = read_u32(pos + 4);
    if (len > kMaxPayloadBytes || data.size() - pos - kFrameBytes < len) {
      contents.torn = true;
      break;
    }
    std::string_view payload(data.data() + pos + kFrameBytes, len);
    if (Crc32c(payload) != crc) {
      contents.torn = true;
      break;
    }
    StatusOr<JournalRecord> record = DecodeJournalRecord(payload);
    if (!record.ok()) {
      // Checksummed but structurally invalid: treat like damage, stop at
      // the last good record rather than aborting recovery.
      contents.torn = true;
      break;
    }
    contents.records.push_back(std::move(record).value());
    pos += kFrameBytes + len;
    contents.valid_bytes = pos;
  }
  return contents;
}

Status SessionJournal::TruncateTo(const std::string& path, size_t size) {
  std::error_code ec;
  std::filesystem::resize_file(path, size, ec);
  if (ec) {
    return Status::IoError("cannot truncate journal " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

uint32_t TableContentsCrc(const Table& table) {
  uint32_t crc = 0;
  char len_buf[4];
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      std::string_view text = table.CellText(r, c);
      uint32_t len = static_cast<uint32_t>(text.size());
      std::memcpy(len_buf, &len, 4);
      crc = Crc32cExtend(crc, len_buf, 4);
      crc = Crc32cExtend(crc, text.data(), text.size());
    }
  }
  return crc;
}

}  // namespace falcon
