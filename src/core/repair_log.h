// RepairLog: a cell-level journal of every repair executed during a
// cleaning run — the validated SQLU rule (or manual fix) together with the
// overwritten values. It backs two needs from the paper's user-mistake
// discussion (Exp-5): detecting that a cell is being rewritten again
// ("the system checks updates and notifies users whenever it is updating a
// cell that has been repaired in previous iterations"), and undoing a rule
// that was validated by mistake.
#ifndef FALCON_CORE_REPAIR_LOG_H_
#define FALCON_CORE_REPAIR_LOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/sqlu.h"
#include "relational/table.h"

namespace falcon {

class RepairLog {
 public:
  /// One executed repair: the statement plus the per-cell before-images.
  struct Entry {
    SqluQuery query;
    size_t col = 0;
    /// (row, value before the repair) pairs, ascending by row.
    std::vector<std::pair<uint32_t, ValueId>> before;
    bool manual = false;  ///< True for single-cell user fixes.
  };

  /// Records a repair that wrote `query.set_value` into `rows` of `col`;
  /// `before` carries the overwritten values aligned with `rows`.
  void Record(SqluQuery query, size_t col,
              std::vector<std::pair<uint32_t, ValueId>> before,
              bool manual = false) {
    for (const auto& [row, value] : before) {
      ++repair_counts_[CellKey(row, col)];
    }
    entries_.push_back(Entry{std::move(query), col, std::move(before),
                             manual});
  }

  /// Reverts the most recent entry against `table` (which must be the
  /// table the repairs were applied to). Returns false when empty.
  bool UndoLast(Table& table) {
    if (entries_.empty()) return false;
    const Entry& e = entries_.back();
    for (const auto& [row, value] : e.before) {
      table.set_cell(row, e.col, value);
      auto it = repair_counts_.find(CellKey(row, e.col));
      if (it != repair_counts_.end() && --it->second == 0) {
        repair_counts_.erase(it);
      }
    }
    entries_.pop_back();
    return true;
  }

  /// How many logged repairs have touched this cell — the paper's cycle
  /// signal (>1 means the cell is being re-repaired).
  size_t TimesRepaired(uint32_t row, size_t col) const {
    auto it = repair_counts_.find(CellKey(row, col));
    return it == repair_counts_.end() ? 0 : it->second;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Total cells written across all logged repairs.
  size_t cells_written() const {
    size_t n = 0;
    for (const Entry& e : entries_) n += e.before.size();
    return n;
  }

  /// Renders the journal as replayable SQL, newest last.
  std::string ToSqlScript() const {
    std::string out;
    for (const Entry& e : entries_) {
      out += e.query.ToSql();
      out += e.manual ? "  -- manual fix\n" : "\n";
    }
    return out;
  }

 private:
  static uint64_t CellKey(uint32_t row, size_t col) {
    return (static_cast<uint64_t>(row) << 16) | static_cast<uint64_t>(col);
  }

  std::vector<Entry> entries_;
  std::unordered_map<uint64_t, size_t> repair_counts_;
};

}  // namespace falcon

#endif  // FALCON_CORE_REPAIR_LOG_H_
