// RepairLog: a cell-level journal of every repair executed during a
// cleaning run — the validated SQLU rule (or manual fix) together with the
// overwritten values. It backs two needs from the paper's user-mistake
// discussion (Exp-5): detecting that a cell is being rewritten again
// ("the system checks updates and notifies users whenever it is updating a
// cell that has been repaired in previous iterations"), and undoing a rule
// that was validated by mistake.
#ifndef FALCON_CORE_REPAIR_LOG_H_
#define FALCON_CORE_REPAIR_LOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/posting_index.h"
#include "relational/sqlu.h"
#include "relational/table.h"

namespace falcon {

class RepairLog {
 public:
  /// One executed repair: the statement plus the per-cell before-images.
  struct Entry {
    SqluQuery query;
    size_t col = 0;
    /// (row, value before the repair) pairs, ascending by row.
    std::vector<std::pair<uint32_t, ValueId>> before;
    bool manual = false;  ///< True for single-cell user fixes.
  };

  /// Records a repair that wrote `query.set_value` into `rows` of `col`;
  /// `before` carries the overwritten values aligned with `rows`.
  void Record(SqluQuery query, size_t col,
              std::vector<std::pair<uint32_t, ValueId>> before,
              bool manual = false) {
    for (const auto& [row, value] : before) {
      ++repair_counts_[CellKey(row, col)];
    }
    entries_.push_back(Entry{std::move(query), col, std::move(before),
                             manual});
  }

  /// Reverts the most recent entry against `table` (which must be the
  /// table the repairs were applied to). Returns false when empty.
  bool UndoLast(Table& table) {
    if (entries_.empty()) return false;
    const Entry& e = entries_.back();
    for (const auto& [row, value] : e.before) {
      table.set_cell(row, e.col, value);
      auto it = repair_counts_.find(CellKey(row, e.col));
      if (it != repair_counts_.end() && --it->second == 0) {
        repair_counts_.erase(it);
      }
    }
    entries_.pop_back();
    return true;
  }

  /// Reverts entry `i` (a mistakenly-validated rule) against `table`,
  /// restoring its before-images and erasing the entry. Refuses with
  /// FailedPrecondition when any *later* entry overlaps entry i's cells:
  /// undoing out of order would resurrect a value the later repair already
  /// replaced, so overlapping entries must be retracted newest-first.
  /// When `posting` is non-null the reversal is fed through the index —
  /// per-cell deltas in delta-maintenance mode, column invalidation
  /// otherwise — so cached bitmaps stay consistent with the table.
  Status Undo(size_t i, Table& table, PostingIndex* posting = nullptr) {
    FALCON_RETURN_IF_ERROR(CanUndo(i));
    const Entry& e = entries_[i];
    for (const auto& [row, value] : e.before) {
      ValueId current = table.cell(row, e.col);
      if (posting != nullptr && current != value) {
        if (posting->delta_maintenance()) {
          posting->ApplyCellDelta(e.col, row, current, value);
        } else {
          posting->InvalidateColumn(e.col);
        }
      }
      table.set_cell(row, e.col, value);
      auto it = repair_counts_.find(CellKey(row, e.col));
      if (it != repair_counts_.end() && --it->second == 0) {
        repair_counts_.erase(it);
      }
    }
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
    return Status::Ok();
  }

  /// The check half of Undo, side-effect free: bounds + overlap refusal.
  /// The session journals a retraction only after this passes (write-ahead
  /// without the risk of journaling a refused retraction).
  Status CanUndo(size_t i) const {
    if (i >= entries_.size()) {
      return Status::InvalidArgument("repair log has no entry " +
                                     std::to_string(i));
    }
    const Entry& e = entries_[i];
    for (size_t j = i + 1; j < entries_.size(); ++j) {
      if (entries_[j].col != e.col) continue;
      // Both before-lists are ascending by row: merge-scan for overlap.
      const auto& a = e.before;
      const auto& b = entries_[j].before;
      size_t x = 0, y = 0;
      while (x < a.size() && y < b.size()) {
        if (a[x].first < b[y].first) {
          ++x;
        } else if (a[x].first > b[y].first) {
          ++y;
        } else {
          return Status::FailedPrecondition(
              "cannot undo repair " + std::to_string(i) + ": repair " +
              std::to_string(j) + " later rewrote cell (row " +
              std::to_string(a[x].first) + ", col " + std::to_string(e.col) +
              "); retract overlapping repairs newest-first");
        }
      }
    }
    return Status::Ok();
  }

  /// Drops everything (a session restart or recovery rebuilds the log).
  void Clear() {
    entries_.clear();
    repair_counts_.clear();
  }

  /// How many logged repairs have touched this cell — the paper's cycle
  /// signal (>1 means the cell is being re-repaired).
  size_t TimesRepaired(uint32_t row, size_t col) const {
    auto it = repair_counts_.find(CellKey(row, col));
    return it == repair_counts_.end() ? 0 : it->second;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Total cells written across all logged repairs.
  size_t cells_written() const {
    size_t n = 0;
    for (const Entry& e : entries_) n += e.before.size();
    return n;
  }

  /// Renders the journal as replayable SQL, newest last.
  std::string ToSqlScript() const {
    std::string out;
    for (const Entry& e : entries_) {
      out += e.query.ToSql();
      out += e.manual ? "  -- manual fix\n" : "\n";
    }
    return out;
  }

 private:
  static uint64_t CellKey(uint32_t row, size_t col) {
    return (static_cast<uint64_t>(row) << 16) | static_cast<uint64_t>(col);
  }

  std::vector<Entry> entries_;
  std::unordered_map<uint64_t, size_t> repair_counts_;
};

}  // namespace falcon

#endif  // FALCON_CORE_REPAIR_LOG_H_
