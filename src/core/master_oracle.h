// Appendix B: using external sources. When a high-quality master relation
// is available, many rule-validity questions can be answered without
// consuming user capacity: a candidate rule (X = x̄ → A = a') is supported
// by the master data iff master tuples matching x̄ on the aligned X
// attributes exist and all carry A = a'; it is refuted iff some matching
// master tuple carries a different A value. Only patterns the master does
// not cover fall back to the (billed) human.
//
// The master may cover just part of the domain (it typically does); the
// coverage fraction directly controls how many questions stay free.
#ifndef FALCON_CORE_MASTER_ORACLE_H_
#define FALCON_CORE_MASTER_ORACLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/oracle.h"
#include "relational/table.h"

namespace falcon {

class MasterBackedOracle : public UserOracle {
 public:
  /// Attributes are aligned by name: a dirty-table column participates iff
  /// the master has a column of the same name. `master` must share the
  /// dirty table's ValuePool (its loader should intern into the same pool)
  /// and both must outlive the oracle.
  MasterBackedOracle(const Table* master, const Table* dirty,
                     const Table* clean, double mistake_prob = 0.0,
                     uint64_t seed = 99);

  /// Free answer when the master decides the pattern; billed human answer
  /// otherwise.
  Answered AnswerEx(const Lattice& lattice, NodeId n) override;

  /// How the master would rule on node `n`, independent of the human.
  enum class Verdict { kSupported, kRefuted, kUncovered };
  Verdict Check(const Lattice& lattice, NodeId n) const;

  size_t master_answers() const { return master_answers_; }

 private:
  const Table* master_;
  const Table* dirty_;
  /// dirty column -> master column (or -1 when unaligned).
  std::vector<int> aligned_;
  size_t master_answers_ = 0;
};

}  // namespace falcon

#endif  // FALCON_CORE_MASTER_ORACLE_H_
