// SessionJournal: the crash-safety write-ahead log of a cleaning session.
//
// Every interaction and repair a session performs is appended as a
// length-prefixed, CRC32C-checksummed binary record *before* its table
// writes take effect (write-ahead ordering). Values are journaled as text,
// never as ValueIds — the interning pool does not survive a process, the
// journal must.
//
// Recovery contract (see DESIGN.md "Fault tolerance & recovery"):
//  - Read() never fails on a torn or truncated journal: it returns every
//    whole, checksummed record up to the first damaged byte and reports the
//    damaged tail, which the resuming session truncates away.
//  - Applied-repair records carry full before-images, so a crashed table
//    can be rolled back to the session's initial state; the session then
//    re-runs deterministically, consuming journaled oracle answers and user
//    updates instead of re-posing them (deterministic replay). Write-ahead
//    ordering makes the rollback sound: a record with unexecuted writes
//    undoes as a no-op (each cell still holds its before-image).
//  - Checkpoint records (flushed + fsynced) carry the session counters and
//    a CRC of the full table contents; recovery verifies the replayed state
//    against the last checkpoint it passes.
#ifndef FALCON_CORE_SESSION_JOURNAL_H_
#define FALCON_CORE_SESSION_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace falcon {

/// One journal record. A single tagged struct (rather than a class
/// hierarchy) keeps serialization and replay dispatch in one place; unused
/// fields of other kinds stay default-initialized.
struct JournalRecord {
  enum class Kind : uint8_t {
    kStart = 1,       ///< Session header: seed, table shape, initial CRC.
    kUserUpdate = 2,  ///< The user repaired cell (row, col) toward `value`.
    kAnswer = 3,      ///< Oracle verdict on lattice node `node`.
    kApply = 4,       ///< Executed repair (rule or manual) + before-images.
    kCheckpoint = 5,  ///< Durability point: counters + table CRC.
    kRetract = 6,     ///< Validated rule `entry` was retracted (undone).
  };

  Kind kind = Kind::kStart;

  // kStart.
  uint64_t seed = 0;
  uint64_t num_rows = 0;
  uint64_t num_cols = 0;
  uint32_t table_crc = 0;  ///< Also set on kCheckpoint.

  // kUserUpdate / kApply / kRetract share the cell addressing fields.
  uint32_t row = 0;
  uint32_t col = 0;
  std::string value;  ///< Update target / applied SET value.
  bool wrong = false; ///< kUserUpdate: this was a simulated wrong update.

  // kAnswer.
  uint32_t node = 0;
  bool valid = false;
  bool billed = false;

  // kApply.
  bool manual = false;
  /// (row, value before the write) pairs, ascending by row.
  std::vector<std::pair<uint32_t, std::string>> before;

  // kCheckpoint counters.
  uint64_t user_updates = 0;
  uint64_t user_answers = 0;
  uint64_t cells_repaired = 0;
  uint64_t queries_applied = 0;

  // kRetract.
  uint64_t entry = 0;

  bool operator==(const JournalRecord& other) const;
};

/// Result of a tolerant journal read.
struct JournalContents {
  std::vector<JournalRecord> records;
  /// Byte length of the valid prefix (whole, checksummed records). A
  /// resuming session truncates the file to this length before appending.
  size_t valid_bytes = 0;
  /// True when trailing bytes past valid_bytes were damaged (torn write,
  /// flipped bits, truncation mid-record) and discarded.
  bool torn = false;
};

/// Append-side handle. Move-only; closes the file on destruction.
class SessionJournal {
 public:
  /// Opens `path` for appending. `truncate` starts a fresh journal;
  /// otherwise appends after the existing contents (the caller is expected
  /// to have truncated damage away first — see TruncateTo).
  static StatusOr<SessionJournal> Open(const std::string& path,
                                       bool truncate);

  SessionJournal(SessionJournal&& other) noexcept;
  SessionJournal& operator=(SessionJournal&& other) noexcept;
  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;
  ~SessionJournal();

  /// Serializes and appends one record. Injectable faults: `journal.append`
  /// fails before any byte is written; `journal.torn` writes a partial
  /// record (framing + truncated payload) and then fails, leaving exactly
  /// the torn tail that Read() must tolerate.
  Status Append(const JournalRecord& record);

  /// Appends `record` (normally a kCheckpoint) and makes everything up to
  /// it durable: fflush + fsync. Injectable fault: `journal.sync`.
  Status Checkpoint(const JournalRecord& record);

  /// Flushes buffered appends to the OS and disk.
  Status Sync();

  const std::string& path() const { return path_; }

  /// Tolerant reader (see JournalContents). NotFound when no file exists.
  static StatusOr<JournalContents> Read(const std::string& path);

  /// Truncates `path` to `size` bytes (drops a damaged tail before resume).
  static Status TruncateTo(const std::string& path, size_t size);

 private:
  SessionJournal(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Serializes one record to its payload bytes (without framing). Exposed
/// for tests that build journals byte-by-byte.
std::string EncodeJournalRecord(const JournalRecord& record);

/// Parses one payload produced by EncodeJournalRecord.
StatusOr<JournalRecord> DecodeJournalRecord(std::string_view payload);

/// CRC32C over the full table contents (cell text, length-delimited, in
/// row-major order) — the consistency fingerprint carried by kStart and
/// kCheckpoint records.
uint32_t TableContentsCrc(const Table& table);

}  // namespace falcon

#endif  // FALCON_CORE_SESSION_JOURNAL_H_
