#include "core/shared_base_cache.h"

#include <utility>

namespace falcon {

SharedBaseCache::SharedBaseCache(uint64_t snapshot_id, size_t num_cols,
                                 size_t byte_budget)
    : snapshot_id_(snapshot_id),
      num_cols_(num_cols),
      byte_budget_(byte_budget),
      posting_shards_(2 * num_cols),
      pair_shards_(2 * kPairShards) {}

SharedBaseCache::PairKey SharedBaseCache::MakePairKey(size_t col_a,
                                                      ValueId val_a,
                                                      size_t col_b,
                                                      ValueId val_b) {
  if (col_b < col_a || (col_b == col_a && val_b < val_a)) {
    std::swap(col_a, col_b);
    std::swap(val_a, val_b);
  }
  return PairKey{col_a, val_a, col_b, val_b};
}

SharedBaseCache::EntryPtr SharedBaseCache::FindPosting(bool compressed,
                                                       size_t col,
                                                       ValueId value) {
  auto map = PostingShard(compressed, col).Snapshot();
  if (map != nullptr) {
    auto it = map->find(value);
    if (it != map->end()) {
      posting_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  posting_misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

SharedBaseCache::EntryPtr SharedBaseCache::FindIntersection(
    bool compressed, size_t col_a, ValueId val_a, size_t col_b,
    ValueId val_b) {
  PairKey key = MakePairKey(col_a, val_a, col_b, val_b);
  auto map = PairShard(compressed, key).Snapshot();
  if (map != nullptr) {
    auto it = map->find(key);
    if (it != map->end()) {
      intersection_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  intersection_misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

bool SharedBaseCache::ContainsIntersection(bool compressed, size_t col_a,
                                           ValueId val_a, size_t col_b,
                                           ValueId val_b) const {
  PairKey key = MakePairKey(col_a, val_a, col_b, val_b);
  size_t h = PairKeyHash{}(key) % kPairShards;
  const auto& shard = pair_shards_[(compressed ? kPairShards : 0) + h];
  auto map = shard.Snapshot();
  return map != nullptr && map->count(key) != 0;
}

template <typename Map, typename K>
SharedBaseCache::EntryPtr SharedBaseCache::Publish(
    Shard<Map>& shard, const K& key, HybridRowSet rows,
    uint64_t epoch_at_scan, std::atomic<size_t>& publishes) {
  const size_t add = EntryBytes(rows);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  // Reject work computed against a retired generation: the producer read
  // epoch_at_scan, then scanned; an Invalidate in between means the scan
  // may predate whatever the invalidation was about.
  if (epoch_at_scan != epoch_.load(std::memory_order_acquire)) {
    rejected_publishes_.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<const HybridRowSet>(std::move(rows));
  }
  const std::shared_ptr<const Map>& cur = shard.map;
  if (cur != nullptr) {
    auto it = cur->find(key);
    if (it != cur->end()) return it->second;  // First publisher won the race.
  }
  if (byte_budget_ != 0 &&
      resident_bytes_.load(std::memory_order_relaxed) + add > byte_budget_) {
    rejected_publishes_.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<const HybridRowSet>(std::move(rows));
  }
  auto entry = std::make_shared<const HybridRowSet>(std::move(rows));
  auto next = cur != nullptr ? std::make_shared<Map>(*cur)
                             : std::make_shared<Map>();
  (*next)[key] = entry;
  shard.map = std::move(next);
  resident_bytes_.fetch_add(add, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  publishes.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

SharedBaseCache::EntryPtr SharedBaseCache::PublishPosting(
    bool compressed, size_t col, ValueId value, HybridRowSet rows,
    uint64_t epoch_at_scan) {
  return Publish(PostingShard(compressed, col), value, std::move(rows),
                 epoch_at_scan, posting_publishes_);
}

SharedBaseCache::EntryPtr SharedBaseCache::PublishIntersection(
    bool compressed, size_t col_a, ValueId val_a, size_t col_b, ValueId val_b,
    HybridRowSet rows, uint64_t epoch_at_scan) {
  PairKey key = MakePairKey(col_a, val_a, col_b, val_b);
  return Publish(PairShard(compressed, key), key, std::move(rows),
                 epoch_at_scan, intersection_publishes_);
}

void SharedBaseCache::Invalidate() {
  // Bump the epoch first so publishers racing this call fail their epoch
  // check even if their shard has not been cleared yet.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  for (auto& shard : posting_shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.reset();
  }
  for (auto& shard : pair_shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.reset();
  }
  resident_bytes_.store(0, std::memory_order_relaxed);
  entries_.store(0, std::memory_order_relaxed);
}

SharedBaseCacheStats SharedBaseCache::Stats() const {
  SharedBaseCacheStats s;
  s.posting_hits = posting_hits_.load(std::memory_order_relaxed);
  s.posting_misses = posting_misses_.load(std::memory_order_relaxed);
  s.posting_publishes = posting_publishes_.load(std::memory_order_relaxed);
  s.intersection_hits = intersection_hits_.load(std::memory_order_relaxed);
  s.intersection_misses =
      intersection_misses_.load(std::memory_order_relaxed);
  s.intersection_publishes =
      intersection_publishes_.load(std::memory_order_relaxed);
  s.rejected_publishes = rejected_publishes_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace falcon
