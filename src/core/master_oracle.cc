#include "core/master_oracle.h"

#include "core/lattice.h"

namespace falcon {

MasterBackedOracle::MasterBackedOracle(const Table* master,
                                       const Table* dirty,
                                       const Table* clean,
                                       double mistake_prob, uint64_t seed)
    : UserOracle(clean, mistake_prob, seed), master_(master), dirty_(dirty) {
  aligned_.resize(dirty->num_cols(), -1);
  for (size_t c = 0; c < dirty->num_cols(); ++c) {
    aligned_[c] = master->schema().AttrIndex(dirty->schema().attribute(c));
  }
}

MasterBackedOracle::Verdict MasterBackedOracle::Check(const Lattice& lattice,
                                                      NodeId n) const {
  // Resolve the node's pattern to master columns; a pattern touching any
  // unaligned attribute cannot be checked.
  int target_master_col = aligned_[lattice.target_col()];
  if (target_master_col < 0) return Verdict::kUncovered;

  std::vector<std::pair<size_t, ValueId>> preds;
  const std::vector<size_t>& cols = lattice.lattice_cols();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (((n >> i) & 1) == 0) continue;
    int mc = aligned_[cols[i]];
    if (mc < 0) return Verdict::kUncovered;
    preds.emplace_back(static_cast<size_t>(mc), lattice.binding(i));
  }
  // The empty pattern ("rewrite the whole column") is supported only if
  // the master's column is constant — check it like any other pattern.
  RowSet matches = master_->ScanConjunction(preds);
  if (matches.Empty()) return Verdict::kUncovered;

  ValueId want = lattice.target_value();
  bool all_agree = matches.AllOf([&](size_t r) {
    return master_->cell(r, static_cast<size_t>(target_master_col)) == want;
  });
  return all_agree ? Verdict::kSupported : Verdict::kRefuted;
}

UserOracle::Answered MasterBackedOracle::AnswerEx(const Lattice& lattice,
                                                  NodeId n) {
  switch (Check(lattice, n)) {
    case Verdict::kSupported:
      ++master_answers_;
      return {true, /*billed=*/false};
    case Verdict::kRefuted:
      ++master_answers_;
      return {false, /*billed=*/false};
    case Verdict::kUncovered:
      return {AskHuman(lattice, n), /*billed=*/true};
  }
  return {false, true};
}

}  // namespace falcon
