#include "core/session.h"

#include <chrono>
#include <vector>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "core/master_oracle.h"
#include "core/oracle.h"

namespace falcon {

CleaningSession::CleaningSession(const Table* clean, Table* dirty,
                                 SearchAlgorithm* algorithm,
                                 SessionOptions options)
    : clean_(clean),
      dirty_(dirty),
      algorithm_(algorithm),
      options_(options) {}

size_t CleaningSession::RefillFromDetector() {
  ViolationReport report = DetectViolations(*dirty_, options_.detector);
  size_t added = 0;
  for (const Suspect& s : report.suspects) {
    // The user inspects the flagged cell; false alarms are dismissed.
    if (dirty_->cell(s.row, s.col) != clean_->cell(s.row, s.col)) {
      worklist_.emplace_back(s.row, static_cast<uint32_t>(s.col));
      ++added;
    }
  }
  return added;
}

void CleaningSession::ExportPostingStats() {
  const PostingIndexStats& s = posting_index_->stats();
  metrics_.posting_hits = s.hits;
  metrics_.posting_misses = s.misses;
  metrics_.posting_delta_rows = s.delta_rows;
  metrics_.posting_evictions = s.evictions;
  metrics_.posting_scan_ms = s.scan_ms;
  metrics_.posting_delta_ms = s.delta_ms;
  metrics_.posting_shared_hits = s.shared_hits;
  metrics_.posting_shared_misses = s.shared_misses;
  metrics_.posting_base_scan_ms = s.base_scan_ms;
  metrics_.posting_shared_bytes = posting_index_->SharedViewBytes();
  PostingStorageStats storage = posting_index_->StorageStats();
  metrics_.posting_entries = storage.entries;
  metrics_.posting_resident_bytes = storage.resident_bytes;
  metrics_.posting_dense_bytes = storage.dense_bytes;
  metrics_.posting_compression = storage.compression();
  metrics_.posting_array_containers = storage.array_containers;
  metrics_.posting_bitmap_containers = storage.bitmap_containers;
  metrics_.posting_run_containers = storage.run_containers;
  if (intersection_memo_ != nullptr) {
    metrics_.lattice_memo_hits = intersection_memo_->stats().hits;
    metrics_.lattice_memo_misses = intersection_memo_->stats().misses;
    metrics_.lattice_memo_admitted = intersection_memo_->stats().admitted;
    metrics_.lattice_memo_first_touch_skips =
        intersection_memo_->stats().first_touch_skips;
    metrics_.lattice_memo_shared_hits =
        intersection_memo_->stats().shared_hits;
    metrics_.lattice_memo_shared_misses =
        intersection_memo_->stats().shared_misses;
  }
}

Status CleaningSession::Start(bool fresh) {
  if (clean_->num_rows() != dirty_->num_rows() ||
      clean_->num_cols() != dirty_->num_cols()) {
    return Status::InvalidArgument("clean/dirty shape mismatch");
  }
  if (clean_->pool() != dirty_->pool()) {
    return Status::InvalidArgument(
        "clean and dirty tables must share a ValuePool");
  }

  metrics_ = SessionMetrics{};
  log_.Clear();
  worklist_.clear();
  wrong_updated_.clear();
  append_ingest_ms_ = 0.0;
  finished_ = false;
  metrics_.initial_errors = dirty_->CountDiffCells(*clean_);
  max_updates_ = options_.max_updates != 0
                     ? options_.max_updates
                     : metrics_.initial_errors * 10 + 100;

  // Worklist of candidate dirty cells; entries are validated when popped
  // (an applied rule may have fixed them meanwhile). Applied rules append
  // any cells they leave or make dirty.
  //
  // In the default mode the simulated user knows every dirty cell (the
  // paper's setup: "we keep running an algorithm until all the introduced
  // errors are fixed"). In detector-driven mode the user only sees what
  // the FD-violation detector flags, re-detecting after each drained
  // batch.
  if (options_.detector_driven) {
    RefillFromDetector();
  } else {
    for (size_t r = 0; r < dirty_->num_rows(); ++r) {
      for (size_t c = 0; c < dirty_->num_cols(); ++c) {
        if (dirty_->cell(r, c) != clean_->cell(r, c)) {
          worklist_.emplace_back(static_cast<uint32_t>(r),
                                 static_cast<uint32_t>(c));
        }
      }
    }
  }

  // Profile once over the (initial) dirty instance, as the paper does.
  // Recovery rolls the table back before calling Start, so replayed runs
  // profile the same instance the crashed run did.
  CorrelationOptions cords_options;
  cords_options.max_sample_rows = options_.profile_sample_rows;
  profiler_ = std::make_unique<CordsProfiler>(dirty_, cords_options);

  // The oracle: an externally-owned one when the caller (service layer)
  // provides it, else a simulated human, optionally fronted by master data
  // (Appendix B) that answers covered patterns for free.
  if (options_.oracle != nullptr) {
    master_oracle_ = nullptr;
    oracle_.reset();
  } else if (options_.master != nullptr) {
    if (options_.master->pool() != dirty_->pool()) {
      return Status::InvalidArgument(
          "master relation must share the dirty table's ValuePool");
    }
    auto owned = std::make_unique<MasterBackedOracle>(
        options_.master, dirty_, clean_, options_.question_mistake_prob,
        options_.seed + 1);
    master_oracle_ = owned.get();
    oracle_ = std::move(owned);
  } else {
    master_oracle_ = nullptr;
    oracle_ = std::make_unique<UserOracle>(
        clean_, options_.question_mistake_prob, options_.seed + 1);
  }

  PostingIndexOptions posting_options;
  posting_options.delta_maintenance = options_.posting_delta;
  posting_options.byte_budget = options_.posting_budget_bytes;
  posting_options.compressed = options_.compressed_rowsets;
  // Two-tier mode: Start() runs over a table still equal to the base
  // snapshot (fresh clone, or recovery's rollback — CRC-anchored), so
  // every column begins shared-eligible; the index privatizes columns as
  // this session writes them. The snapshot-id check inside PostingIndex
  // silently drops a stale or mismatched cache.
  posting_options.shared = options_.shared_cache;
  posting_options.base_snapshot_id = options_.base_snapshot_id;
  posting_index_ = std::make_unique<PostingIndex>(dirty_, posting_options);
  lattice_options_ = options_.lattice;
  lattice_options_.compressed = options_.compressed_rowsets;
  if (options_.use_posting_index && !lattice_options_.naive_init) {
    lattice_options_.index = posting_index_.get();
  }
  // Cross-lattice intersection memo (lazy materialization only): owned by
  // the session so every table write in the run flows through its exact
  // patch hooks. A caller-supplied memo in options.lattice is respected.
  intersection_memo_.reset();
  if (lattice_options_.memo == nullptr && options_.use_intersection_memo &&
      lattice_options_.lazy && !lattice_options_.naive_init) {
    intersection_memo_ = std::make_unique<IntersectionMemo>(
        options_.intersection_memo_budget_bytes);
    // Share pairwise intersections with other sessions on the same base
    // snapshot (gate on the posting index's own snapshot validation so
    // both tiers agree on whether the cache matches this table).
    if (posting_index_->shared_attached()) {
      intersection_memo_->AttachShared(options_.shared_cache,
                                       options_.compressed_rowsets);
    }
    lattice_options_.memo = intersection_memo_.get();
  }

  update_rng_ = Rng(options_.seed + 2);

  if (fresh) {
    replay_.clear();
    replay_pos_ = 0;
    journal_.reset();
    if (!options_.journal_path.empty()) {
      FALCON_ASSIGN_OR_RETURN(
          SessionJournal journal,
          SessionJournal::Open(options_.journal_path, /*truncate=*/true));
      journal_ = std::make_unique<SessionJournal>(std::move(journal));
      JournalRecord start;
      start.kind = JournalRecord::Kind::kStart;
      start.seed = options_.seed;
      start.num_rows = dirty_->num_rows();
      start.num_cols = dirty_->num_cols();
      start.table_crc = TableContentsCrc(*dirty_);
      // The header must be durable before any interaction happens, or a
      // crash would leave a journal that cannot anchor recovery.
      FALCON_RETURN_IF_ERROR(journal_->Checkpoint(start));
    }
  }
  started_ = true;
  return Status::Ok();
}

Status CleaningSession::Emit(JournalRecord* r) {
  if (Replaying()) {
    const JournalRecord& want = replay_[replay_pos_];
    if (want.kind != r->kind) {
      return Status::Internal(
          "recovery diverged from journal at record " +
          std::to_string(replay_pos_) + ": replay produced kind " +
          std::to_string(static_cast<int>(r->kind)) + ", journal holds " +
          std::to_string(static_cast<int>(want.kind)));
    }
    if (r->kind == JournalRecord::Kind::kCheckpoint &&
        (want.user_updates != r->user_updates ||
         want.user_answers != r->user_answers ||
         want.cells_repaired != r->cells_repaired ||
         want.queries_applied != r->queries_applied ||
         want.table_crc != r->table_crc)) {
      return Status::Internal(
          "recovery diverged from journal at checkpoint (record " +
          std::to_string(replay_pos_) +
          "): counters or table CRC do not match");
    }
    // The journaled record is authoritative: the caller adopts its fields
    // (oracle verdicts, update targets) so the replayed run reproduces the
    // crashed one bit-for-bit.
    *r = want;
    ++replay_pos_;
    return Status::Ok();
  }
  if (journal_ == nullptr) return Status::Ok();
  // The replayed prefix is already on disk (recovery truncated the torn
  // tail and reopened in append mode), so live records land right after it.
  if (r->kind == JournalRecord::Kind::kCheckpoint) {
    return journal_->Checkpoint(*r);
  }
  return journal_->Append(*r);
}

StatusOr<SessionMetrics> CleaningSession::Run() {
  FALCON_RETURN_IF_ERROR(Start(/*fresh=*/true));
  if (metrics_.initial_errors == 0) {
    metrics_.converged = true;
    finished_ = true;
    return metrics_;
  }
  return MainLoop(/*max_episodes=*/0);
}

StatusOr<SessionMetrics> CleaningSession::RunSteps(size_t max_episodes) {
  if (!started_) {
    FALCON_RETURN_IF_ERROR(Start(/*fresh=*/true));
    if (metrics_.initial_errors == 0 && external_updates_.empty()) {
      metrics_.converged = true;
      finished_ = true;
      return metrics_;
    }
  }
  if (finished_ && worklist_.empty() && external_updates_.empty()) {
    return metrics_;
  }
  return MainLoop(max_episodes);
}

Status CleaningSession::SubmitUpdate(uint32_t row, uint32_t col,
                                     std::string value) {
  if (row >= dirty_->num_rows() || col >= dirty_->num_cols()) {
    return Status::OutOfRange(
        "update target (" + std::to_string(row) + ", " + std::to_string(col) +
        ") outside table of " + std::to_string(dirty_->num_rows()) + "x" +
        std::to_string(dirty_->num_cols()));
  }
  external_updates_.push_back({row, col, std::move(value)});
  finished_ = false;
  return Status::Ok();
}

Status CleaningSession::AppendBatch(
    const std::vector<std::vector<ValueId>>& dirty_chunk) {
  if (!started_) {
    return Status::FailedPrecondition("call Run() or RunSteps() first");
  }
  if (journal_ != nullptr || Replaying()) {
    // The journal header anchors recovery to the table shape and CRC at
    // Start(); grown tables cannot be rolled back against it.
    return Status::FailedPrecondition(
        "AppendBatch is not supported on journaled sessions");
  }
  if (dirty_chunk.size() != dirty_->num_cols()) {
    return Status::InvalidArgument(
        "append chunk has " + std::to_string(dirty_chunk.size()) +
        " columns, table has " + std::to_string(dirty_->num_cols()));
  }
  size_t batch = dirty_chunk.empty() ? 0 : dirty_chunk[0].size();
  for (const std::vector<ValueId>& col : dirty_chunk) {
    if (col.size() != batch) {
      return Status::InvalidArgument("append chunk columns differ in length");
    }
  }
  if (clean_->num_rows() != dirty_->num_rows() + batch) {
    return Status::InvalidArgument(
        "clean table must be grown to the target size before AppendBatch "
        "(clean has " + std::to_string(clean_->num_rows()) +
        " rows, dirty would have " +
        std::to_string(dirty_->num_rows() + batch) + ")");
  }
  if (batch == 0) return Status::Ok();

  auto t0 = std::chrono::steady_clock::now();
  size_t old_rows = dirty_->AppendBatch(dirty_chunk);

  // Extend cached state for the new rows — O(batch), never O(table) —
  // or drop it wholesale under the rebuild strawman.
  auto m0 = std::chrono::steady_clock::now();
  if (options_.append_rebuild) {
    posting_index_->InvalidateAll();
    if (intersection_memo_ != nullptr) {
      // InvalidateColumn (not bare Clear) so shared-tier pairs — built for
      // the pre-append universe — can never be served again.
      for (size_t c = 0; c < dirty_->num_cols(); ++c) {
        intersection_memo_->InvalidateColumn(c);
      }
      intersection_memo_->Clear();
    }
  } else {
    posting_index_->ApplyAppend(old_rows);
    if (intersection_memo_ != nullptr) {
      intersection_memo_->ApplyAppend(*dirty_, old_rows);
    }
  }

  // New rows' dirty cells join the worklist (detector-driven sessions
  // instead re-detect over the grown table when the worklist drains).
  size_t new_errors = 0;
  for (size_t r = old_rows; r < dirty_->num_rows(); ++r) {
    for (size_t c = 0; c < dirty_->num_cols(); ++c) {
      if (dirty_->cell(r, c) != clean_->cell(r, c)) {
        ++new_errors;
        if (!options_.detector_driven) {
          worklist_.emplace_back(static_cast<uint32_t>(r),
                                 static_cast<uint32_t>(c));
        }
      }
    }
  }
  metrics_.initial_errors += new_errors;
  if (options_.max_updates == 0) {
    // Re-arm the safety valve for the grown error population.
    max_updates_ = metrics_.initial_errors * 10 + 100;
  }
  if (new_errors > 0 || options_.detector_driven) finished_ = false;

  auto t1 = std::chrono::steady_clock::now();
  metrics_.append_maintain_ms +=
      std::chrono::duration<double, std::milli>(t1 - m0).count();
  append_ingest_ms_ +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  metrics_.rows_appended += batch;
  ++metrics_.append_batches;
  metrics_.ingest_rows_per_s =
      append_ingest_ms_ <= 0.0
          ? 0.0
          : static_cast<double>(metrics_.rows_appended) /
                (append_ingest_ms_ / 1000.0);
  return Status::Ok();
}

StatusOr<SessionMetrics> CleaningSession::Recover() {
  return RecoverImpl(/*stop_after_replay=*/false);
}

StatusOr<SessionMetrics> CleaningSession::RecoverToReplayEnd() {
  return RecoverImpl(/*stop_after_replay=*/true);
}

StatusOr<SessionMetrics> CleaningSession::RecoverImpl(
    bool stop_after_replay) {
  if (options_.journal_path.empty()) {
    return Status::InvalidArgument(
        "Recover() requires options.journal_path");
  }
  // Fresh-start path shared by "no journal" and "no durable header": in
  // replay-only (service) mode the session is started but not stepped —
  // the client drives it; otherwise this is a plain Run().
  auto fresh_start = [this,
                      stop_after_replay]() -> StatusOr<SessionMetrics> {
    if (!stop_after_replay) return Run();
    FALCON_RETURN_IF_ERROR(Start(/*fresh=*/true));
    if (metrics_.initial_errors == 0) {
      metrics_.converged = true;
      finished_ = true;
    }
    return metrics_;
  };
  auto contents_or = SessionJournal::Read(options_.journal_path);
  if (!contents_or.ok()) {
    // No journal on disk: nothing happened before the crash.
    if (contents_or.status().code() == StatusCode::kNotFound) {
      return fresh_start();
    }
    return contents_or.status();
  }
  JournalContents contents = std::move(contents_or).value();
  if (contents.records.empty() ||
      contents.records[0].kind != JournalRecord::Kind::kStart) {
    // The header never became durable — the crash predates any
    // interaction, so the table is untouched and a fresh start is correct.
    return fresh_start();
  }
  const JournalRecord& start = contents.records[0];
  if (start.seed != options_.seed ||
      start.num_rows != dirty_->num_rows() ||
      start.num_cols != dirty_->num_cols()) {
    return Status::FailedPrecondition(
        "journal at " + options_.journal_path +
        " belongs to a different session (seed or table shape mismatch)");
  }
  if (contents.torn) {
    FALCON_RETURN_IF_ERROR(SessionJournal::TruncateTo(options_.journal_path,
                                                      contents.valid_bytes));
  }

  // Roll the crashed table back to the session's initial instance:
  // restore before-images newest-first. Write-ahead ordering makes this
  // sound — a record whose table writes never (or only partially) executed
  // undoes as a no-op, since unwritten cells still hold their
  // before-images. kRetract records carry the pre-undo values, so the same
  // reverse walk covers them.
  for (size_t i = contents.records.size(); i-- > 1;) {
    const JournalRecord& r = contents.records[i];
    if (r.kind != JournalRecord::Kind::kApply &&
        r.kind != JournalRecord::Kind::kRetract) {
      continue;
    }
    if (r.col >= dirty_->num_cols()) {
      return Status::Internal("journal before-image column out of range");
    }
    for (auto it = r.before.rbegin(); it != r.before.rend(); ++it) {
      if (it->first >= dirty_->num_rows()) {
        return Status::Internal("journal before-image row out of range");
      }
      dirty_->set_cell(it->first, r.col, dirty_->pool()->Intern(it->second));
    }
  }
  if (TableContentsCrc(*dirty_) != start.table_crc) {
    return Status::Internal(
        "rolled-back table does not match the journal's initial CRC; "
        "the table was modified outside the journaled session");
  }

  FALCON_ASSIGN_OR_RETURN(
      SessionJournal journal,
      SessionJournal::Open(options_.journal_path, /*truncate=*/false));
  journal_ = std::make_unique<SessionJournal>(std::move(journal));
  replay_ = std::move(contents.records);
  replay_pos_ = 1;  // Past the kStart header.
  FALCON_RETURN_IF_ERROR(Start(/*fresh=*/false));
  if (metrics_.initial_errors == 0) {
    metrics_.converged = true;
    finished_ = true;
    return metrics_;
  }
  stop_after_replay_ = stop_after_replay;
  return MainLoop(/*max_episodes=*/0);
}

StatusOr<SessionMetrics> CleaningSession::Continue() {
  if (!started_) {
    return Status::FailedPrecondition("call Run() or Recover() first");
  }
  return MainLoop(/*max_episodes=*/0);
}

Status CleaningSession::RetractRule(size_t i) {
  if (!started_) {
    return Status::FailedPrecondition("call Run() or Recover() first");
  }
  // Check before journaling: a refused retraction must leave no trace in
  // the journal (and no table change), or replay would diverge.
  FALCON_RETURN_IF_ERROR(log_.CanUndo(i));
  const RepairLog::Entry& e = log_.entries()[i];
  const size_t col = e.col;

  JournalRecord rec;
  rec.kind = JournalRecord::Kind::kRetract;
  rec.entry = i;
  rec.col = static_cast<uint32_t>(col);
  // Pre-undo cell values: recovery's reverse rollback restores these to
  // undo the retraction the same way it undoes an applied rule.
  std::vector<std::pair<uint32_t, bool>> was_clean;
  was_clean.reserve(e.before.size());
  for (const auto& [row, value] : e.before) {
    rec.before.emplace_back(
        row, std::string(dirty_->pool()->Get(dirty_->cell(row, col))));
    was_clean.emplace_back(row,
                           dirty_->cell(row, col) == clean_->cell(row, col));
  }
  FALCON_RETURN_IF_ERROR(Emit(&rec));

  FALCON_RETURN_IF_ERROR(log_.Undo(i, *dirty_, posting_index_.get()));
  // The undo rewrote arbitrary old values into the column; the memo cannot
  // patch additions exactly, so drop everything mentioning it.
  if (intersection_memo_ != nullptr) {
    intersection_memo_->InvalidateColumn(col);
  }

  // Re-pose every re-dirtied cell and keep cells_repaired truthful: a
  // retraction can un-repair cells (the rule was right after all) or
  // repair them (the rule had clobbered clean values).
  for (const auto& [row, clean_before] : was_clean) {
    bool clean_after = dirty_->cell(row, col) == clean_->cell(row, col);
    if (clean_before && !clean_after && metrics_.cells_repaired > 0) {
      --metrics_.cells_repaired;
    } else if (!clean_before && clean_after) {
      ++metrics_.cells_repaired;
    }
    if (!clean_after) worklist_.emplace_back(row, static_cast<uint32_t>(col));
  }
  finished_ = false;  // The retraction re-opened the cleaning loop.
  return Status::Ok();
}

StatusOr<SessionMetrics> CleaningSession::MainLoop(size_t max_episodes) {
  auto on_apply = [this](const RowSet& changed, size_t col) {
    // In delta mode the lattice already patched the cached postings while
    // it held the before-images; only the legacy mode must rescan.
    if (!posting_index_->delta_maintenance()) {
      posting_index_->InvalidateColumn(col);
    }
    changed.ForEach([&](size_t r) {
      if (dirty_->cell(r, col) != clean_->cell(r, col)) {
        worklist_.emplace_back(static_cast<uint32_t>(r),
                               static_cast<uint32_t>(col));
      } else {
        ++metrics_.cells_repaired;
      }
    });
  };

  size_t episodes = 0;
  while (true) {
    if (max_episodes != 0 && episodes == max_episodes) {
      // Episode-bounded (service step) exit: the session stays live;
      // finished_ remains false and the next RunSteps resumes here.
      ExportPostingStats();
      return metrics_;
    }
    if (stop_after_replay_ && !Replaying()) {
      // Daemon-restart recovery: the journaled prefix is fully replayed
      // (any episode the crash interrupted has been completed
      // deterministically). Hand control back to the stepping client
      // instead of running to convergence — unless the replay already
      // reached the natural end, in which case fall through to the
      // finished/converged accounting below.
      stop_after_replay_ = false;
      if (!(worklist_.empty() && external_updates_.empty() &&
            !options_.detector_driven)) {
        ExportPostingStats();
        return metrics_;
      }
      break;
    }
    if (Replaying() &&
        replay_[replay_pos_].kind == JournalRecord::Kind::kRetract) {
      // The crashed session retracted a rule here; re-execute it so the
      // repair log and worklist line up with the records that follow.
      FALCON_RETURN_IF_ERROR(
          RetractRule(static_cast<size_t>(replay_[replay_pos_].entry)));
      continue;
    }
    uint32_t row = 0;
    uint32_t col = 0;
    bool external = false;
    std::string external_value;
    if (!Replaying() && !external_updates_.empty()) {
      // A client-submitted update takes the next episode. (Replay never
      // consumes this queue: journaled kUserUpdate records are
      // authoritative and carry the submitted target below.)
      ExternalUpdate& e = external_updates_.front();
      row = e.row;
      col = e.col;
      external_value = std::move(e.value);
      external_updates_.pop_front();
      external = true;
    } else {
      if (worklist_.empty()) {
        // Detector-driven mode: examine the data again; every popped cell
        // was repaired, so detection converges (each pass removes dirt).
        if (!options_.detector_driven || RefillFromDetector() == 0) break;
      }
      auto [r, c] = worklist_.front();
      worklist_.pop_front();
      row = r;
      col = c;
      if (dirty_->cell(row, col) == clean_->cell(row, col)) continue;
    }
    ++episodes;

    // Fault site: a crash between user-update episodes.
    FALCON_RETURN_IF_ERROR(FaultInjector::Global().Hit("session.update"));

    // ① The user repairs this cell.
    ++metrics_.user_updates;
    if (metrics_.user_updates > max_updates_) {
      metrics_.converged = false;
      if (options_.max_updates == 0) {
        // The safety valve fired without an explicit cap: something is
        // wrong (e.g. a mistake storm). An explicit cap is a deliberate
        // partial run (scalability benchmarks) and stops silently.
        FALCON_LOG(Warning) << "session aborted after " << max_updates_
                            << " user updates (mistake storm?)";
      }
      --metrics_.user_updates;
      finished_ = true;
      ExportPostingStats();
      return metrics_;
    }

    std::string target;
    bool wrong = false;
    if (external) {
      target = std::move(external_value);
    } else {
      target = std::string(clean_->pool()->Get(clean_->cell(row, col)));
      uint64_t cell_key = (static_cast<uint64_t>(row) << 16) | col;
      if (options_.update_mistake_prob > 0.0 &&
          !wrong_updated_.count(cell_key) &&
          update_rng_.NextBool(options_.update_mistake_prob)) {
        // Exp-5 case (i): a wrong update. Every generalization is invalid,
        // the cell stays dirty, and the user revisits it later. The RNG
        // draw happens in replay too (stream alignment); the journaled
        // record then overrides the outcome.
        wrong = true;
      }
    }
    JournalRecord update_rec;
    update_rec.kind = JournalRecord::Kind::kUserUpdate;
    update_rec.row = row;
    update_rec.col = col;
    update_rec.value = wrong ? target + "_oops" : target;
    update_rec.wrong = wrong;
    FALCON_RETURN_IF_ERROR(Emit(&update_rec));
    // The journaled record is authoritative under replay — including the
    // target cell, which a live run may have taken from the external queue.
    row = update_rec.row;
    col = update_rec.col;
    target = update_rec.value;
    if (update_rec.wrong) {
      wrong_updated_.insert((static_cast<uint64_t>(row) << 16) | col);
      worklist_.emplace_back(row, col);
    }
    Repair repair{row, col, target};

    // ② Build the (partial) lattice and let the algorithm interact.
    std::vector<size_t> candidates =
        profiler_->TopKAttributes(col, options_.lattice_attrs - 1);
    auto t0 = std::chrono::steady_clock::now();
    FALCON_ASSIGN_OR_RETURN(
        Lattice lattice,
        Lattice::Build(*dirty_, repair, candidates, lattice_options_));
    auto t1 = std::chrono::steady_clock::now();
    metrics_.lattice_build_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ++metrics_.lattices_built;

    // D1: the most specific query (this tuple only) is valid a priori.
    lattice.MarkValid(lattice.top());

    SearchStats stats;
    LatticeSearchContext ctx(&lattice, dirty_, ActiveOracle(),
                             options_.budget, options_.use_closed_sets,
                             options_.naive_maintenance, profiler_.get(),
                             &stats, on_apply);
    ctx.set_tuning(options_.tuning);
    ctx.set_repair_log(&log_);
    if (options_.use_rule_history) ctx.set_rule_history(&history_);
    if (journal_ != nullptr || Replaying()) {
      ctx.set_journal_hook([this](JournalRecord* r) { return Emit(r); });
    }
    algorithm_->OnSessionStart(metrics_.user_updates - 1);
    algorithm_->Run(ctx);
    metrics_.user_answers += ctx.answers_used();
    metrics_.queries_applied += stats.applies;
    metrics_.lattice_maintain_ms += stats.maintain_ms;
    Lattice::LazyStats lazy = lattice.lazy_stats();
    metrics_.nodes_materialized += lazy.nodes_materialized;
    metrics_.nodes_total += lattice.num_nodes();
    metrics_.fused_count_calls += lazy.fused_count_calls;
    // An injected fault, journal I/O failure, or oracle outage latched
    // into the context quenches the episode; surface it instead of
    // continuing on inconsistent state.
    FALCON_RETURN_IF_ERROR(ctx.status());

    // ③ If nothing the user validated covered this cell, the user's manual
    // fix takes effect as a plain cell write. (Not a query application:
    // even the most specific query could spill onto a duplicate tuple with
    // a different clean value — e.g. key-attribute repairs under the
    // Appendix-B variant.)
    if (dirty_->cell(row, col) != lattice.target_value()) {
      ValueId old_value = dirty_->cell(row, col);
      if (journal_ != nullptr || Replaying()) {
        // Write-ahead: the manual fix's record (with its before-image)
        // lands before the cell write.
        JournalRecord rec;
        rec.kind = JournalRecord::Kind::kApply;
        rec.row = row;
        rec.col = col;
        rec.node = static_cast<uint32_t>(lattice.top());
        rec.manual = true;
        rec.value = target;
        rec.before.emplace_back(
            row, std::string(dirty_->pool()->Get(old_value)));
        FALCON_RETURN_IF_ERROR(Emit(&rec));
      }
      FALCON_RETURN_IF_ERROR(FaultInjector::Global().Hit("manual.write"));
      log_.Record(lattice.NodeQuery(lattice.top()), col, {{row, old_value}},
                  /*manual=*/true);
      dirty_->set_cell(row, col, lattice.target_value());
      if (posting_index_->delta_maintenance()) {
        posting_index_->ApplyCellDelta(col, row, old_value,
                                       lattice.target_value());
      } else {
        posting_index_->InvalidateColumn(col);
      }
      if (intersection_memo_ != nullptr) {
        intersection_memo_->ApplyCellWrite(col, row, lattice.target_value());
      }
      if (dirty_->cell(row, col) == clean_->cell(row, col)) {
        ++metrics_.cells_repaired;
      } else {
        worklist_.emplace_back(row, col);  // Wrong update; revisit.
      }
    }

    // Episode checkpoint: counters + full-table CRC, fsynced. During
    // replay this is the divergence detector instead.
    if (journal_ != nullptr || Replaying()) {
      JournalRecord cp;
      cp.kind = JournalRecord::Kind::kCheckpoint;
      cp.user_updates = metrics_.user_updates;
      cp.user_answers = metrics_.user_answers;
      cp.cells_repaired = metrics_.cells_repaired;
      cp.queries_applied = metrics_.queries_applied;
      cp.table_crc = TableContentsCrc(*dirty_);
      FALCON_RETURN_IF_ERROR(Emit(&cp));
    }
    // The lattice (and its borrowed posting references) is gone at the end
    // of the episode; now is the safe point to enforce the byte budget.
    posting_index_->Trim();
  }

  if (master_oracle_ != nullptr) {
    metrics_.master_answers = master_oracle_->master_answers();
  }
  finished_ = true;
  ExportPostingStats();
  metrics_.converged = dirty_->CountDiffCells(*clean_) == 0;
  return metrics_;
}

StatusOr<SessionMetrics> RunCleaning(const Table& clean, const Table& dirty,
                                     SearchKind kind,
                                     const SessionOptions& options) {
  Table working = dirty.Clone();
  std::unique_ptr<SearchAlgorithm> algorithm = MakeSearchAlgorithm(kind);
  CleaningSession session(&clean, &working, algorithm.get(), options);
  return session.Run();
}

}  // namespace falcon
