#include "core/session.h"

#include <chrono>
#include <deque>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "core/master_oracle.h"
#include "core/oracle.h"
#include "relational/posting_index.h"

namespace falcon {

CleaningSession::CleaningSession(const Table* clean, Table* dirty,
                                 SearchAlgorithm* algorithm,
                                 SessionOptions options)
    : clean_(clean),
      dirty_(dirty),
      algorithm_(algorithm),
      options_(options) {}

StatusOr<SessionMetrics> CleaningSession::Run() {
  if (clean_->num_rows() != dirty_->num_rows() ||
      clean_->num_cols() != dirty_->num_cols()) {
    return Status::InvalidArgument("clean/dirty shape mismatch");
  }
  if (clean_->pool() != dirty_->pool()) {
    return Status::InvalidArgument(
        "clean and dirty tables must share a ValuePool");
  }

  SessionMetrics metrics;
  metrics.initial_errors = dirty_->CountDiffCells(*clean_);
  if (metrics.initial_errors == 0) {
    metrics.converged = true;
    return metrics;
  }
  size_t max_updates = options_.max_updates != 0
                           ? options_.max_updates
                           : metrics.initial_errors * 10 + 100;

  // Worklist of candidate dirty cells; entries are validated when popped
  // (an applied rule may have fixed them meanwhile). Applied rules append
  // any cells they leave or make dirty.
  //
  // In the default mode the simulated user knows every dirty cell (the
  // paper's setup: "we keep running an algorithm until all the introduced
  // errors are fixed"). In detector-driven mode the user only sees what
  // the FD-violation detector flags, re-detecting after each drained
  // batch.
  std::deque<std::pair<uint32_t, uint32_t>> worklist;
  auto refill_from_detector = [&]() {
    ViolationReport report = DetectViolations(*dirty_, options_.detector);
    size_t added = 0;
    for (const Suspect& s : report.suspects) {
      // The user inspects the flagged cell; false alarms are dismissed.
      if (dirty_->cell(s.row, s.col) != clean_->cell(s.row, s.col)) {
        worklist.emplace_back(s.row, static_cast<uint32_t>(s.col));
        ++added;
      }
    }
    return added;
  };
  if (options_.detector_driven) {
    refill_from_detector();
  } else {
    for (size_t r = 0; r < dirty_->num_rows(); ++r) {
      for (size_t c = 0; c < dirty_->num_cols(); ++c) {
        if (dirty_->cell(r, c) != clean_->cell(r, c)) {
          worklist.emplace_back(static_cast<uint32_t>(r),
                                static_cast<uint32_t>(c));
        }
      }
    }
  }

  // Profile once over the (initial) dirty instance, as the paper does.
  CorrelationOptions cords_options;
  cords_options.max_sample_rows = options_.profile_sample_rows;
  CordsProfiler profiler(dirty_, cords_options);

  // The oracle: a simulated human, optionally fronted by master data
  // (Appendix B) that answers covered patterns for free.
  std::unique_ptr<UserOracle> oracle;
  MasterBackedOracle* master_oracle = nullptr;
  if (options_.master != nullptr) {
    if (options_.master->pool() != dirty_->pool()) {
      return Status::InvalidArgument(
          "master relation must share the dirty table's ValuePool");
    }
    auto owned = std::make_unique<MasterBackedOracle>(
        options_.master, dirty_, clean_, options_.question_mistake_prob,
        options_.seed + 1);
    master_oracle = owned.get();
    oracle = std::move(owned);
  } else {
    oracle = std::make_unique<UserOracle>(
        clean_, options_.question_mistake_prob, options_.seed + 1);
  }

  PostingIndexOptions posting_options;
  posting_options.delta_maintenance = options_.posting_delta;
  posting_options.byte_budget = options_.posting_budget_bytes;
  PostingIndex posting_index(dirty_, posting_options);
  LatticeOptions lattice_options = options_.lattice;
  if (options_.use_posting_index && !lattice_options.naive_init) {
    lattice_options.index = &posting_index;
  }
  auto export_posting_stats = [&]() {
    const PostingIndexStats& s = posting_index.stats();
    metrics.posting_hits = s.hits;
    metrics.posting_misses = s.misses;
    metrics.posting_delta_rows = s.delta_rows;
    metrics.posting_evictions = s.evictions;
    metrics.posting_scan_ms = s.scan_ms;
    metrics.posting_delta_ms = s.delta_ms;
  };

  Rng update_rng(options_.seed + 2);
  // Cells that already received one wrong user update; the paper's cycle
  // notification means the user gets it right the second time.
  std::unordered_set<uint64_t> wrong_updated;

  auto on_apply = [&](const RowSet& changed, size_t col) {
    // In delta mode the lattice already patched the cached postings while
    // it held the before-images; only the legacy mode must rescan.
    if (!posting_index.delta_maintenance()) {
      posting_index.InvalidateColumn(col);
    }
    changed.ForEach([&](size_t r) {
      if (dirty_->cell(r, col) != clean_->cell(r, col)) {
        worklist.emplace_back(static_cast<uint32_t>(r),
                              static_cast<uint32_t>(col));
      } else {
        ++metrics.cells_repaired;
      }
    });
  };

  while (true) {
    if (worklist.empty()) {
      // Detector-driven mode: examine the data again; every popped cell
      // was repaired, so detection converges (each pass removes dirt).
      if (!options_.detector_driven || refill_from_detector() == 0) break;
    }
    auto [row, col] = worklist.front();
    worklist.pop_front();
    if (dirty_->cell(row, col) == clean_->cell(row, col)) continue;

    // ① The user repairs this cell.
    ++metrics.user_updates;
    if (metrics.user_updates > max_updates) {
      metrics.converged = false;
      if (options_.max_updates == 0) {
        // The safety valve fired without an explicit cap: something is
        // wrong (e.g. a mistake storm). An explicit cap is a deliberate
        // partial run (scalability benchmarks) and stops silently.
        FALCON_LOG(Warning) << "session aborted after " << max_updates
                            << " user updates (mistake storm?)";
      }
      --metrics.user_updates;
      export_posting_stats();
      return metrics;
    }

    std::string target(clean_->pool()->Get(clean_->cell(row, col)));
    uint64_t cell_key = (static_cast<uint64_t>(row) << 16) | col;
    if (options_.update_mistake_prob > 0.0 &&
        !wrong_updated.count(cell_key) &&
        update_rng.NextBool(options_.update_mistake_prob)) {
      // Exp-5 case (i): a wrong update. Every generalization is invalid,
      // the cell stays dirty, and the user revisits it later.
      wrong_updated.insert(cell_key);
      target += "_oops";
      worklist.emplace_back(row, col);
    }
    Repair repair{row, col, target};

    // ② Build the (partial) lattice and let the algorithm interact.
    std::vector<size_t> candidates =
        profiler.TopKAttributes(col, options_.lattice_attrs - 1);
    auto t0 = std::chrono::steady_clock::now();
    FALCON_ASSIGN_OR_RETURN(
        Lattice lattice,
        Lattice::Build(*dirty_, repair, candidates, lattice_options));
    auto t1 = std::chrono::steady_clock::now();
    metrics.lattice_build_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ++metrics.lattices_built;

    // D1: the most specific query (this tuple only) is valid a priori.
    lattice.MarkValid(lattice.top());

    SearchStats stats;
    LatticeSearchContext ctx(&lattice, dirty_, oracle.get(), options_.budget,
                             options_.use_closed_sets,
                             options_.naive_maintenance, &profiler, &stats,
                             on_apply);
    ctx.set_tuning(options_.tuning);
    ctx.set_repair_log(&log_);
    if (options_.use_rule_history) ctx.set_rule_history(&history_);
    algorithm_->OnSessionStart(metrics.user_updates - 1);
    algorithm_->Run(ctx);
    metrics.user_answers += ctx.answers_used();
    metrics.queries_applied += stats.applies;

    // ③ If nothing the user validated covered this cell, the user's manual
    // fix takes effect as a plain cell write. (Not a query application:
    // even the most specific query could spill onto a duplicate tuple with
    // a different clean value — e.g. key-attribute repairs under the
    // Appendix-B variant.)
    if (dirty_->cell(row, col) != lattice.target_value()) {
      ValueId old_value = dirty_->cell(row, col);
      log_.Record(lattice.NodeQuery(lattice.top()), col, {{row, old_value}},
                  /*manual=*/true);
      dirty_->set_cell(row, col, lattice.target_value());
      if (posting_index.delta_maintenance()) {
        posting_index.ApplyCellDelta(col, row, old_value,
                                     lattice.target_value());
      } else {
        posting_index.InvalidateColumn(col);
      }
      if (dirty_->cell(row, col) == clean_->cell(row, col)) {
        ++metrics.cells_repaired;
      } else {
        worklist.emplace_back(row, col);  // Wrong update; revisit.
      }
    }
    metrics.lattice_maintain_ms += stats.maintain_ms;
    // The lattice (and its borrowed posting references) is gone at the end
    // of the episode; now is the safe point to enforce the byte budget.
    posting_index.Trim();
  }

  if (master_oracle != nullptr) {
    metrics.master_answers = master_oracle->master_answers();
  }
  export_posting_stats();
  metrics.converged = dirty_->CountDiffCells(*clean_) == 0;
  return metrics;
}

StatusOr<SessionMetrics> RunCleaning(const Table& clean, const Table& dirty,
                                     SearchKind kind,
                                     const SessionOptions& options) {
  Table working = dirty.Clone();
  std::unique_ptr<SearchAlgorithm> algorithm = MakeSearchAlgorithm(kind);
  CleaningSession session(&clean, &working, algorithm.get(), options);
  return session.Run();
}

}  // namespace falcon
