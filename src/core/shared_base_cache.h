// SharedBaseCache: process-wide, read-mostly cache of posting bitmaps and
// pairwise predicate intersections computed over one immutable base
// snapshot (a CleaningWorkload's dirty instance). N service sessions
// cleaning the same base all probe this tier first and only materialize
// privately for columns they have mutated, so the posting/index build cost
// of a workload is paid once per process instead of once per session.
//
// Keying & correctness
//   - The cache is keyed on the base's snapshot generation id
//     (CleaningWorkload::snapshot_id): consumers attach only when their
//     options carry a matching id, so a cache can never serve bitmaps for
//     a different table that happens to share (column, value) coordinates.
//   - Entries exist in two planes, dense and compressed, selected by the
//     session's row-set representation. Planes never mix, so a compressed
//     session can never observe a dense session's encoding (the bits are
//     identical either way; the plane split removes representation
//     aliasing from the hot path entirely).
//   - Published bitmaps are *base-pure*: producers only publish postings
//     scanned from columns they have not mutated (content equal to the
//     base), and intersections of two such predicates. Session-private
//     deltas never reach this tier.
//
// Publication protocol (copy-on-publish, copy-on-invalidate)
//   - Each shard holds an immutable map snapshot behind a shared_mutex.
//     Readers take a brief shared lock only to pin the current snapshot (a
//     shared_ptr refcount bump), then probe outside the lock; they can
//     hold the returned entry pin for as long as they like — invalidation
//     never frees memory out from under a reader (RCU-style grace via
//     shared_ptr refcounts). (A std::atomic<std::shared_ptr> would make
//     the pin wait-free, but libstdc++'s embedded-spinlock implementation
//     trips TSan, and an uncontended shared lock is ~one CAS anyway.)
//   - Writers take the shard lock exclusively, copy the current map,
//     insert, and swing the snapshot pointer. First publisher wins: a
//     racing publish of the same key returns the already-resident entry,
//     so all sessions converge on one physical bitmap per key.
//   - Invalidate() bumps the epoch and publishes empty maps. Publishers
//     pass the epoch they observed *before* computing their bitmap;
//     a publish whose epoch is stale is rejected (the caller keeps its
//     private copy), so a probe can never surface a bitmap computed
//     against a retired generation.
//
// Memory: a byte budget (0 = unbounded) is enforced at publish time —
// over-budget publishes are rejected, not evicted, keeping resident
// entries immortal until Invalidate(). The SessionManager layers LRU
// *across* base caches on top (whole-cache invalidation of the
// least-recently-touched base).
#ifndef FALCON_CORE_SHARED_BASE_CACHE_H_
#define FALCON_CORE_SHARED_BASE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/hybrid_row_set.h"
#include "common/interner.h"

namespace falcon {

/// Monotonic counter snapshot of one cache (all fields cumulative since
/// construction except resident_bytes/entries, which are current).
struct SharedBaseCacheStats {
  size_t posting_hits = 0;
  size_t posting_misses = 0;
  size_t posting_publishes = 0;
  size_t intersection_hits = 0;
  size_t intersection_misses = 0;
  size_t intersection_publishes = 0;
  /// Publishes dropped: byte budget exceeded or stale epoch.
  size_t rejected_publishes = 0;
  size_t invalidations = 0;  ///< Epoch bumps.
  size_t resident_bytes = 0;
  size_t entries = 0;
};

class SharedBaseCache {
 public:
  using EntryPtr = std::shared_ptr<const HybridRowSet>;

  /// `snapshot_id` must be the owning base's generation id (nonzero);
  /// `num_cols` its column count; `byte_budget` caps resident bitmap bytes
  /// across both planes (0 = unbounded).
  SharedBaseCache(uint64_t snapshot_id, size_t num_cols,
                  size_t byte_budget = 0);

  SharedBaseCache(const SharedBaseCache&) = delete;
  SharedBaseCache& operator=(const SharedBaseCache&) = delete;

  uint64_t snapshot_id() const { return snapshot_id_; }
  size_t num_cols() const { return num_cols_; }
  size_t byte_budget() const { return byte_budget_; }

  /// Current publication epoch. Producers read it *before* computing a
  /// bitmap and pass it to Publish* so stale work is rejected.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Lock-free probe for the base posting (col = value) in the given
  /// plane. Returns nullptr on miss. The returned pin stays valid across
  /// Invalidate() — it just stops being discoverable.
  EntryPtr FindPosting(bool compressed, size_t col, ValueId value);

  /// Offers a base-pure posting computed while `epoch_at_scan` was
  /// current. Returns the resident entry: the caller's bitmap if it won
  /// publication, the first publisher's if it raced, or an unpublished
  /// wrap of the caller's bitmap when the publish was rejected (budget or
  /// stale epoch) — always usable, so callers never recompute.
  EntryPtr PublishPosting(bool compressed, size_t col, ValueId value,
                          HybridRowSet rows, uint64_t epoch_at_scan);

  /// Probe / publish for the pairwise intersection
  /// (col_a = val_a) ∧ (col_b = val_b). The pair is canonicalized
  /// internally; callers may pass the predicates in either order.
  EntryPtr FindIntersection(bool compressed, size_t col_a, ValueId val_a,
                            size_t col_b, ValueId val_b);
  EntryPtr PublishIntersection(bool compressed, size_t col_a, ValueId val_a,
                               size_t col_b, ValueId val_b, HybridRowSet rows,
                               uint64_t epoch_at_scan);

  /// Stat-free residency check for a pair (lattice batch-scheduling
  /// probes; no hit/miss accounting, no side effects).
  bool ContainsIntersection(bool compressed, size_t col_a, ValueId val_a,
                            size_t col_b, ValueId val_b) const;

  /// Retires the current generation: bumps the epoch and publishes empty
  /// maps. In-flight readers keep their pins; in-flight publishers get
  /// rejected by the epoch check.
  void Invalidate();

  size_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  size_t entries() const { return entries_.load(std::memory_order_relaxed); }

  SharedBaseCacheStats Stats() const;

 private:
  /// Canonically ordered predicate pair (mirrors IntersectionMemo's
  /// ordering so both tiers agree on what "the" key for a pair is).
  struct PairKey {
    size_t col_a;
    ValueId val_a;
    size_t col_b;
    ValueId val_b;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      uint64_t h = 1469598103934665603ull;
      for (uint64_t part : {static_cast<uint64_t>(k.col_a),
                            static_cast<uint64_t>(k.val_a),
                            static_cast<uint64_t>(k.col_b),
                            static_cast<uint64_t>(k.val_b)}) {
        h ^= part;
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  using PostingMap = std::unordered_map<ValueId, EntryPtr>;
  using PairMap = std::unordered_map<PairKey, EntryPtr, PairKeyHash>;

  /// One independently-published map snapshot. Readers hold `mu` shared
  /// just long enough to copy `map`; writers hold it exclusive across
  /// copy-insert-swing. The pointed-to map itself is never mutated.
  template <typename Map>
  struct Shard {
    mutable std::shared_mutex mu;
    std::shared_ptr<const Map> map;

    std::shared_ptr<const Map> Snapshot() const {
      std::shared_lock<std::shared_mutex> lock(mu);
      return map;
    }
  };

  static PairKey MakePairKey(size_t col_a, ValueId val_a, size_t col_b,
                             ValueId val_b);
  /// Flat per-entry charge covering map node + shared_ptr control block.
  static size_t EntryBytes(const HybridRowSet& rows) {
    return rows.HeapBytes() + 96;
  }

  Shard<PostingMap>& PostingShard(bool compressed, size_t col) {
    return posting_shards_[(compressed ? num_cols_ : 0) + col];
  }
  Shard<PairMap>& PairShard(bool compressed, const PairKey& key) {
    size_t h = PairKeyHash{}(key) % kPairShards;
    return pair_shards_[(compressed ? kPairShards : 0) + h];
  }

  /// Shared publish body: returns the resident or wrapped entry. `Insert`
  /// is called with the shard's write mutex held and the current map;
  /// it returns the existing entry for `key` or null.
  template <typename Map, typename K>
  EntryPtr Publish(Shard<Map>& shard, const K& key, HybridRowSet rows,
                   uint64_t epoch_at_scan, std::atomic<size_t>& publishes);

  static constexpr size_t kPairShards = 16;

  const uint64_t snapshot_id_;
  const size_t num_cols_;
  const size_t byte_budget_;

  std::atomic<uint64_t> epoch_{1};
  std::vector<Shard<PostingMap>> posting_shards_;  ///< 2 planes × num_cols.
  std::vector<Shard<PairMap>> pair_shards_;        ///< 2 planes × kPairShards.

  std::atomic<size_t> resident_bytes_{0};
  std::atomic<size_t> entries_{0};
  std::atomic<size_t> posting_hits_{0};
  std::atomic<size_t> posting_misses_{0};
  std::atomic<size_t> posting_publishes_{0};
  std::atomic<size_t> intersection_hits_{0};
  std::atomic<size_t> intersection_misses_{0};
  std::atomic<size_t> intersection_publishes_{0};
  std::atomic<size_t> rejected_publishes_{0};
  std::atomic<size_t> invalidations_{0};
};

}  // namespace falcon

#endif  // FALCON_CORE_SHARED_BASE_CACHE_H_
