// Concrete lattice search strategies (Section 4).
//
// One-hop ("Falcon glide", Section 4.1): BFS, DFS and a Ducc-style
// valid/invalid zigzag — all locality-bound edge followers.
//
// Multi-hop ("Falcon dive", Section 4.2): Dive (binary jump over the nodes
// sorted by affected count, log-scale midpoint, restart after d wrong
// jumps) and CoDive (Dive with a ±w correlation-scored window around the
// jump position).
//
// OffLine: the clairvoyant greedy for the offline budget-repair problem —
// it sees ground-truth validity and picks the valid node with maximum
// coverage at each step.
#ifndef FALCON_CORE_SEARCH_ALGORITHMS_H_
#define FALCON_CORE_SEARCH_ALGORITHMS_H_

#include <vector>

#include "common/rng.h"
#include "core/search.h"

namespace falcon {

/// Breadth-first from the most general nodes upward.
class BfsSearch : public SearchAlgorithm {
 public:
  std::string name() const override { return "BFS"; }
  void Run(LatticeSearchContext& ctx) override;
};

/// Depth-first: climbs one attribute-adding branch as far as possible
/// before backtracking, starting from the single-attribute nodes.
class DfsSearch : public SearchAlgorithm {
 public:
  std::string name() const override { return "DFS"; }
  void Run(LatticeSearchContext& ctx) override;
};

/// Ducc-style random zigzag (Heise et al., PVLDB 2013): pivot upward from
/// invalid nodes, downward from valid ones, hole-jump when stuck.
class DuccSearch : public SearchAlgorithm {
 public:
  std::string name() const override { return "Ducc"; }
  void Run(LatticeSearchContext& ctx) override;

 private:
  Rng rng_{20130704};
};

/// Binary jump (Section 4.2.1, steps D1–D6).
class DiveSearch : public SearchAlgorithm {
 public:
  std::string name() const override { return "Dive"; }
  void Run(LatticeSearchContext& ctx) override;

 protected:
  /// Hook: choose the node to ask given the sorted candidate pool and the
  /// binary-jump position. Dive returns pool[pos]; CoDive re-ranks ±w.
  virtual NodeId Select(LatticeSearchContext& ctx,
                        const std::vector<NodeId>& pool, size_t pos);
};

/// Correlation-aware binary jump (Section 4.2.2).
class CoDiveSearch : public DiveSearch {
 public:
  std::string name() const override { return "CoDive"; }

 protected:
  NodeId Select(LatticeSearchContext& ctx, const std::vector<NodeId>& pool,
                size_t pos) override;
};

/// Clairvoyant greedy upper bound.
class OfflineSearch : public SearchAlgorithm {
 public:
  std::string name() const override { return "OffLine"; }
  void Run(LatticeSearchContext& ctx) override;
};

}  // namespace falcon

#endif  // FALCON_CORE_SEARCH_ALGORITHMS_H_
