#include "core/search_algorithms.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace falcon {
namespace {

bool Askable(const Lattice& lat, NodeId n) {
  return lat.validity(n) == Validity::kUnknown && lat.affected_count(n) > 0;
}

/// Batch-counts a frontier before Askable filtering: validity-unknown
/// candidates get their affected counts in one EnsureCounts call (parallel
/// fused kernels in lazy mode) instead of one-at-a-time materializations.
/// Nodes already resolved by inference are skipped — they never need a
/// count, which is where lazy materialization wins.
void PrefetchCounts(const Lattice& lat, const std::vector<NodeId>& frontier) {
  std::vector<NodeId> open;
  open.reserve(frontier.size());
  for (NodeId m : frontier) {
    if (lat.validity(m) == Validity::kUnknown) open.push_back(m);
  }
  lat.EnsureCounts(open);
}

/// True iff a and b are comparable in the lattice (one contains the other).
bool Linked(NodeId a, NodeId b) {
  return (a & b) == a || (a & b) == b;
}

}  // namespace

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

void BfsSearch::Run(LatticeSearchContext& ctx) {
  Lattice& lat = ctx.lattice();
  size_t k = lat.num_attrs();
  // Level by level from the bottom (most general nodes first).
  std::vector<std::vector<NodeId>> levels(k + 1);
  for (NodeId m = 0; m < lat.num_nodes(); ++m) {
    levels[static_cast<size_t>(std::popcount(m))].push_back(m);
  }
  for (size_t level = 0; level <= k; ++level) {
    // The whole level is one frontier: count it in a single parallel batch
    // before walking it in order.
    PrefetchCounts(lat, levels[level]);
    for (NodeId m : levels[level]) {
      if (!ctx.BudgetLeft()) return;
      if (!Askable(lat, m)) continue;
      ctx.Ask(m);
    }
  }
}

// ---------------------------------------------------------------------------
// DFS
// ---------------------------------------------------------------------------

void DfsSearch::Run(LatticeSearchContext& ctx) {
  Lattice& lat = ctx.lattice();
  size_t k = lat.num_attrs();
  // Explicit stack; children of m are m plus one attribute with an index
  // above m's highest set bit (each node visited once, standard subset DFS).
  std::vector<NodeId> stack;
  for (size_t i = k; i-- > 0;) {
    stack.push_back(NodeId{1} << i);
  }
  PrefetchCounts(lat, stack);  // The singleton frontier, counted as a batch.
  while (!stack.empty() && ctx.BudgetLeft()) {
    NodeId m = stack.back();
    stack.pop_back();
    if (Askable(lat, m)) {
      ctx.Ask(m);
      if (!ctx.BudgetLeft()) return;
    }
    int high = 31 - std::countl_zero(m | 1u);
    std::vector<NodeId> children;
    for (size_t i = k; i-- > static_cast<size_t>(high) + 1;) {
      children.push_back(m | (NodeId{1} << i));
    }
    // Expanding several children at once is the batch opportunity: their
    // counts come from fused sibling ANDs over the shared parent bitmap.
    PrefetchCounts(lat, children);
    stack.insert(stack.end(), children.begin(), children.end());
  }
}

// ---------------------------------------------------------------------------
// Ducc-style zigzag
// ---------------------------------------------------------------------------

void DuccSearch::Run(LatticeSearchContext& ctx) {
  Lattice& lat = ctx.lattice();
  size_t k = lat.num_attrs();

  // Ducc is a one-hop glider: seeds and hole jumps start at the lowest
  // (most general) open level of the lattice, as the original bottom-up
  // unique-column-combination walk does.
  auto random_askable = [&]() -> NodeId {
    // Full-lattice frontier: batch-count everything inference left open.
    lat.EnsureCounts(lat.UnknownNodes());
    std::vector<NodeId> pool;
    int best_level = static_cast<int>(k) + 1;
    for (NodeId m = 1; m < lat.num_nodes(); ++m) {
      if (!Askable(lat, m)) continue;
      int level = std::popcount(m);
      if (level < best_level) {
        best_level = level;
        pool.clear();
      }
      if (level == best_level) pool.push_back(m);
    }
    if (pool.empty()) return 0;
    return pool[rng_.NextUint(pool.size())];
  };

  NodeId current = random_askable();
  if (current == 0) return;
  while (ctx.BudgetLeft()) {
    bool valid;
    if (lat.validity(current) == Validity::kUnknown) {
      auto res = ctx.Ask(current);
      if (!res) return;
      valid = res->valid;
      current = res->asked;
    } else {
      valid = lat.validity(current) == Validity::kValid;
    }

    // Pivot: valid → try a more general neighbour (seek the maximal valid
    // border); invalid → try a more specific neighbour. One-hop neighbours
    // form a small frontier — counted as one batch before filtering.
    std::vector<NodeId> candidates;
    if (valid) {
      NodeId bits = current;
      while (bits) {
        NodeId bit = bits & (~bits + 1);
        bits ^= bit;
        candidates.push_back(current ^ bit);
      }
    } else {
      for (size_t i = 0; i < k; ++i) {
        NodeId child = current | (NodeId{1} << i);
        if (child != current) candidates.push_back(child);
      }
    }
    PrefetchCounts(lat, candidates);
    std::vector<NodeId> moves;
    for (NodeId c : candidates) {
      if (Askable(lat, c)) moves.push_back(c);
    }
    if (moves.empty()) {
      current = random_askable();  // Hole jump.
      if (current == 0) return;
    } else {
      current = moves[rng_.NextUint(moves.size())];
    }
  }
}

// ---------------------------------------------------------------------------
// Dive (binary jump, steps D1–D6)
// ---------------------------------------------------------------------------

NodeId DiveSearch::Select(LatticeSearchContext&,
                          const std::vector<NodeId>& pool, size_t pos) {
  return pool[pos];
}

NodeId CoDiveSearch::Select(LatticeSearchContext& ctx,
                            const std::vector<NodeId>& pool, size_t pos) {
  const Lattice& lat = ctx.lattice();
  size_t w = ctx.tuning().codive_window;
  size_t lo = pos > w ? pos - w : 0;
  size_t hi = std::min(pool.size() - 1, pos + w);
  NodeId best = pool[pos];
  double best_score = -1.0;
  for (size_t i = lo; i <= hi; ++i) {
    // Affected count × correlation (Section 4.2.2), optionally scaled by
    // the cross-update rule-shape prior (§8 extension; 1.0 by default).
    double score = static_cast<double>(lat.affected_count(pool[i])) *
                   ctx.Correlation(pool[i]) * ctx.HistoryBoost(pool[i]);
    if (score > best_score) {
      best_score = score;
      best = pool[i];
    }
  }
  return best;
}

void DiveSearch::Run(LatticeSearchContext& ctx) {
  Lattice& lat = ctx.lattice();
  const size_t d = ctx.tuning().dive_depth;

  auto collect = [&](auto&& pred) {
    // Whole-lattice pool scans (D1/D6) sort by count at D2, so every open
    // node needs its count anyway — one parallel batch beats 2^k serial
    // chain walks.
    lat.EnsureCounts(lat.UnknownNodes());
    std::vector<NodeId> pool;
    for (NodeId m = 0; m < lat.num_nodes(); ++m) {
      if (Askable(lat, m) && pred(m)) pool.push_back(m);
    }
    return pool;
  };
  auto all_askable = [&] { return collect([](NodeId) { return true; }); };
  auto unlinked_to_verified = [&] {
    return collect([&](NodeId m) {
      for (NodeId v : ctx.verified()) {
        if (Linked(m, v)) return false;
      }
      return true;
    });
  };

  // D1: top is valid a priori (the session marks it); start from everything
  // still unknown.
  std::vector<NodeId> pool = all_askable();
  size_t depth = 0;

  while (ctx.BudgetLeft()) {
    // Drop nodes resolved by inference or emptied by applied queries.
    std::erase_if(pool, [&](NodeId m) { return !Askable(lat, m); });
    if (pool.empty()) {
      pool = unlinked_to_verified();  // D6.
      if (pool.empty()) pool = all_askable();
      if (pool.empty()) return;
      depth = 0;
    }

    // D2: sort by affected count ascending.
    std::sort(pool.begin(), pool.end(), [&](NodeId a, NodeId b) {
      size_t ca = lat.affected_count(a);
      size_t cb = lat.affected_count(b);
      return ca != cb ? ca < cb : a < b;
    });

    // D3: binary jump — aim for the affected count closest to the paper's
    // log-scale target ceil(log2(lo+hi)); the most general nodes inflate
    // the plain median (Section 4.2.1). Deliberately small targets land on
    // specific, likely-valid nodes whose closed-set representatives then
    // prune aggressively either way.
    double lo =
        std::max(1.0, static_cast<double>(lat.affected_count(pool.front())));
    double hi =
        std::max(1.0, static_cast<double>(lat.affected_count(pool.back())));
    double target = 0;
    switch (ctx.tuning().jump_target) {
      case SearchTuning::JumpTarget::kLogScale:
        target = std::ceil(std::log2(std::max(lo + hi, 2.0)));
        break;
      case SearchTuning::JumpTarget::kMedian:
        target = std::ceil((lo + hi) / 2.0);
        break;
      case SearchTuning::JumpTarget::kGeometric:
        target = std::ceil(std::sqrt(lo * hi));
        break;
    }
    size_t pos = 0;
    double best_gap = std::abs(static_cast<double>(lat.affected_count(pool[0])) -
                               target);
    for (size_t i = 1; i < pool.size(); ++i) {
      double gap =
          std::abs(static_cast<double>(lat.affected_count(pool[i])) - target);
      if (gap < best_gap) {
        best_gap = gap;
        pos = i;
      }
    }

    NodeId choice = Select(ctx, pool, pos);
    auto res = ctx.Ask(choice);
    if (!res) return;
    NodeId asked = res->asked;

    if (res->valid) {
      // D4: the query was applied; continue among strictly more general
      // nodes (its proper subsets) — they may still be valid with more
      // coverage. Enumerate first, batch-count, then filter in the same
      // order.
      depth = 0;
      std::vector<NodeId> subsets;
      for (NodeId s = asked;; s = (s - 1) & asked) {
        if (s != asked) subsets.push_back(s);
        if (s == 0) break;
      }
      PrefetchCounts(lat, subsets);
      pool.clear();
      for (NodeId s : subsets) {
        if (Askable(lat, s)) pool.push_back(s);
      }
    } else {
      // D5: wrong direction; search among strictly more specific nodes.
      ++depth;
      if (depth >= d) {
        pool = unlinked_to_verified();  // D6.
        depth = 0;
      } else {
        std::vector<NodeId> supersets;
        NodeId full = lat.top();
        for (NodeId s = asked;; s = (s + 1) | asked) {
          if (s != asked) supersets.push_back(s);
          if (s == full) break;
        }
        PrefetchCounts(lat, supersets);
        pool.clear();
        for (NodeId s : supersets) {
          if (Askable(lat, s)) pool.push_back(s);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// OffLine greedy
// ---------------------------------------------------------------------------

void OfflineSearch::Run(LatticeSearchContext& ctx) {
  Lattice& lat = ctx.lattice();
  while (ctx.BudgetLeft()) {
    // Greedy max-benefit scan over every open node: counts in one batch,
    // then TrueValid probes only the improving candidates.
    lat.EnsureCounts(lat.UnknownNodes());
    NodeId best = 0;
    size_t best_count = 0;
    for (NodeId m = 0; m < lat.num_nodes(); ++m) {
      if (!Askable(lat, m)) continue;
      size_t c = lat.affected_count(m);
      if (c > best_count && ctx.TrueValid(m)) {
        best = m;
        best_count = c;
      }
    }
    if (best_count == 0) return;  // Nothing valid left worth applying.
    ctx.Ask(best);
  }
}

}  // namespace falcon
