#include "core/lattice.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "relational/posting_index.h"

namespace falcon {

StatusOr<Lattice> Lattice::Build(const Table& table, const Repair& repair,
                                 std::vector<size_t> candidate_cols,
                                 const LatticeOptions& options) {
  if (repair.row >= table.num_rows() || repair.col >= table.num_cols()) {
    return Status::InvalidArgument("repair cell out of range");
  }
  Lattice lat;
  lat.repair_ = repair;
  lat.num_table_rows_ = table.num_rows();

  // Assemble lattice columns: the ranked candidates in order, then the
  // repaired attribute itself last (unless excluded, Appendix B). Putting
  // the candidates first means one-hop traversals explore the correlated
  // attributes in rank order.
  size_t budget_cols = options.max_attrs;
  if (!options.exclude_target_attr && budget_cols > 0) --budget_cols;
  for (size_t c : candidate_cols) {
    if (c == repair.col) continue;
    if (c >= table.num_cols()) {
      return Status::InvalidArgument("candidate column out of range");
    }
    if (std::find(lat.cols_.begin(), lat.cols_.end(), c) != lat.cols_.end()) {
      continue;
    }
    if (lat.cols_.size() >= budget_cols) break;
    lat.cols_.push_back(c);
  }
  // Rank decides *which* attributes enter the lattice (partial
  // materialization); schema position decides their order, as in the
  // paper's implementation — only CoDive consults correlation scores while
  // traversing. The repaired attribute goes last.
  std::sort(lat.cols_.begin(), lat.cols_.end());
  if (!options.exclude_target_attr) {
    lat.cols_.push_back(repair.col);
  }
  if (lat.cols_.empty()) {
    return Status::InvalidArgument("lattice needs at least one attribute");
  }
  if (lat.cols_.size() > 20) {
    return Status::InvalidArgument("lattice too large (max 20 attributes)");
  }

  // Bind predicate constants to the repaired tuple's current values
  // (closed-world assumption, Section 2.2).
  lat.table_name_ = table.name();
  lat.set_attr_name_ = table.schema().attribute(repair.col);
  for (size_t c : lat.cols_) {
    ValueId v = table.cell(repair.row, c);
    lat.bindings_.push_back(v);
    lat.attr_names_.push_back(table.schema().attribute(c));
    lat.binding_texts_.emplace_back(table.pool()->Get(v));
  }
  // Interning through the shared pool is safe: it is append-only and does
  // not mutate the table contents.
  lat.target_value_ = table.pool()->Intern(repair.new_value);

  size_t n_nodes = lat.num_nodes();
  lat.index_ = options.naive_init ? nullptr : options.index;
  lat.maintain_index_ = options.maintain_index;
  lat.affected_.resize(n_nodes);
  lat.counts_.assign(n_nodes, 0);
  lat.validity_.assign(n_nodes, Validity::kUnknown);

  if (options.naive_init) {
    lat.InitAffectedNaive(table);
  } else {
    lat.InitAffectedViaViews(table);
  }
  for (size_t m = 0; m < n_nodes; ++m) {
    lat.counts_[m] = lat.affected_[m].Count();
  }
  return lat;
}

void Lattice::InitAffectedViaViews(const Table& table) {
  // Bottom node: rows whose target value differs from a' (rows any
  // candidate query could change) — the complement of the target value's
  // posting bitmap, so a cached posting makes this scan-free.
  if (index_ != nullptr) {
    affected_[0] = index_->Postings(repair_.col, target_value_).Complement();
  } else {
    affected_[0] = table.ScanEquals(repair_.col, target_value_).Complement();
  }

  // Per-attribute posting bitmaps for the bound predicate constants,
  // served from the posting cache when one was supplied.
  std::vector<const RowSet*> preds(cols_.size());
  std::vector<RowSet> scanned;
  scanned.reserve(cols_.size());
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (index_ != nullptr) {
      preds[i] = &index_->Postings(cols_[i], bindings_[i]);
    } else {
      scanned.push_back(table.ScanEquals(cols_[i], bindings_[i]));
      preds[i] = &scanned.back();
    }
  }

  // View rewriting: each node's set is its (mask without lowest bit)
  // parent's set restricted by one more predicate — a single AND.
  for (NodeId m = 1; m < num_nodes(); ++m) {
    NodeId parent = m & (m - 1);
    int bit = std::countr_zero(m);
    affected_[m] = affected_[parent];
    affected_[m].And(*preds[static_cast<size_t>(bit)]);
  }
}

void Lattice::InitAffectedNaive(const Table& table) {
  // The "execute one SQLU query per node" strawman of Section 5.1.2.
  for (NodeId m = 0; m < num_nodes(); ++m) {
    RowSet rows(num_table_rows_);
    for (size_t r = 0; r < num_table_rows_; ++r) {
      if (table.cell(r, repair_.col) == target_value_) continue;
      bool match = true;
      for (size_t i = 0; i < cols_.size(); ++i) {
        if ((m >> i) & 1) {
          if (table.cell(r, cols_[i]) != bindings_[i]) {
            match = false;
            break;
          }
        }
      }
      if (match) rows.Set(r);
    }
    affected_[m] = std::move(rows);
  }
}

void Lattice::MarkValid(NodeId n) {
  validity_[n] = Validity::kValid;
  // Supersets of n are more specific, hence also valid.
  NodeId full = top();
  for (NodeId s = n;; s = (s + 1) | n) {
    if (validity_[s] == Validity::kUnknown) validity_[s] = Validity::kValid;
    if (s == full) break;
  }
}

void Lattice::MarkInvalid(NodeId n) {
  validity_[n] = Validity::kInvalid;
  // Subsets of n are more general, hence also invalid.
  for (NodeId s = n;; s = (s - 1) & n) {
    if (validity_[s] == Validity::kUnknown) validity_[s] = Validity::kInvalid;
    if (s == 0) break;
  }
}

std::vector<NodeId> Lattice::UnknownNodes() const {
  std::vector<NodeId> out;
  for (NodeId m = 0; m < num_nodes(); ++m) {
    if (validity_[m] == Validity::kUnknown) out.push_back(m);
  }
  return out;
}

RowSet Lattice::ApplyNode(NodeId n, Table& table, Status* fault) {
  RowSet changed = affected_[n];
  size_t changed_count = counts_[n];
  // Delta-maintain the posting cache while the old values are still in the
  // table: each written row leaves its old value's bitmap and joins the
  // target value's. The cache then survives the write with no rescans.
  if (index_ != nullptr && maintain_index_ && index_->delta_maintenance()) {
    index_->ApplyDelta(
        repair_.col, changed,
        [&](size_t r) { return table.cell(r, repair_.col); }, target_value_);
  }
  if (fault != nullptr && FaultInjector::Global().active()) {
    bool stopped = false;
    changed.ForEach([&](size_t r) {
      if (stopped) return;
      Status st = FaultInjector::Global().Hit("apply.write");
      if (!st.ok()) {
        *fault = std::move(st);
        stopped = true;
        return;
      }
      table.set_cell(r, repair_.col, target_value_);
    });
    // Torn apply: leave the affected sets untouched — the session aborts
    // and recovery rolls the table back from journal before-images.
    if (stopped) return changed;
  } else {
    changed.ForEach([&](size_t r) {
      table.set_cell(r, repair_.col, target_value_);
    });
  }
  // Incremental maintenance (Section 5.1.2): repaired rows leave every
  // node's affected set, but the containment relation to Q gives each node
  // a cheap path.
  for (NodeId m = 0; m < num_nodes(); ++m) {
    if (m == n) {
      affected_[m].ClearAll();
      counts_[m] = 0;
    } else if ((m & n) == n) {
      // Case 1 — Q' ≤ Q (supersets of n's attributes): every tuple Q'
      // could affect was just repaired; drop to ∅ without set algebra.
      affected_[m].ClearAll();
      counts_[m] = 0;
      ++maintenance_stats_.case1_contained;
    } else if ((m & n) == m) {
      // Case 2 — Q ≤ Q'' (subsets): Q(T) ⊆ Q''(T), so the count drops by
      // exactly |Q(T)| — no popcount pass needed.
      affected_[m].AndNot(changed);
      counts_[m] -= changed_count;
      ++maintenance_stats_.case2_containing;
    } else {
      // Case 3 — incomparable: deduct |Q'''(Q(T))|, i.e. the overlap with
      // the repaired area only.
      size_t overlap = affected_[m].IntersectCount(changed);
      if (overlap != 0) affected_[m].AndNot(changed);
      counts_[m] -= overlap;
      ++maintenance_stats_.case3_disjoint;
    }
  }
  closed_sets_fresh_ = false;
  return changed;
}

void Lattice::RecomputeAffected(const Table& table) {
  InitAffectedViaViews(table);
  for (NodeId m = 0; m < num_nodes(); ++m) {
    counts_[m] = affected_[m].Count();
  }
  closed_sets_fresh_ = false;
}

SqluQuery Lattice::NodeQuery(NodeId n) const {
  SqluQuery q;
  q.table = table_name_;
  q.set_attr = set_attr_name_;
  q.set_value = repair_.new_value;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if ((n >> i) & 1) {
      q.where.push_back({attr_names_[i], binding_texts_[i]});
    }
  }
  q.Canonicalize();
  return q;
}

std::string Lattice::NodeLabel(NodeId n) const {
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if ((n >> i) & 1) {
      if (!first) out += ", ";
      out += attr_names_[i];
      first = false;
    }
  }
  out += "}";
  return out;
}

void Lattice::EnsureClosedSets() {
  if (closed_sets_fresh_) return;
  size_t n_nodes = num_nodes();
  closed_group_.assign(n_nodes, 0);
  group_representative_.clear();

  // A closed rule set is an equivalence class of nodes with identical
  // affected sets (the closed-itemset "same tidset" semantics that the
  // paper's Example 10 illustrates: {DMQ, DM, DQ} all repair the same
  // tuples). The class is closed under attribute union, so the member with
  // the most predicates is the unique representative rule.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  for (NodeId m = 0; m < n_nodes; ++m) {
    // Hash on (count, bitmap) and resolve collisions by exact comparison
    // against each group's canonical member.
    uint64_t h = affected_[m].Hash() * 31 + counts_[m];
    std::vector<uint32_t>& groups = buckets[h];
    bool placed = false;
    for (uint32_t g : groups) {
      NodeId canon = group_representative_[g];
      if (affected_[m] == affected_[canon]) {
        closed_group_[m] = g;
        // Representative = member with the most predicates.
        NodeId& rep = group_representative_[g];
        if (std::popcount(m) > std::popcount(rep) ||
            (std::popcount(m) == std::popcount(rep) && m > rep)) {
          rep = m;
        }
        placed = true;
        break;
      }
    }
    if (!placed) {
      uint32_t g = static_cast<uint32_t>(group_representative_.size());
      group_representative_.push_back(m);
      groups.push_back(g);
      closed_group_[m] = g;
    }
  }
  closed_sets_fresh_ = true;
}

NodeId Lattice::Representative(NodeId n) {
  EnsureClosedSets();
  return group_representative_[closed_group_[n]];
}

size_t Lattice::NumClosedSets() {
  EnsureClosedSets();
  return group_representative_.size();
}

}  // namespace falcon
