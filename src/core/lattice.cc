#include "core/lattice.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "relational/posting_index.h"

namespace falcon {
namespace {

/// Batch-scheduler cost model (see DESIGN.md "SIMD dispatch & batch cost
/// model"): a ParallelFor handoff costs on the order of 10µs of fixed
/// latency while the fused word kernels move roughly a word per
/// nanosecond, so a worker shard needs at least this many estimated
/// 64-bit words of AND work before forking beats the plain serial loop.
constexpr size_t kMinWordsPerShard = size_t{1} << 14;

}  // namespace

StatusOr<Lattice> Lattice::Build(const Table& table, const Repair& repair,
                                 std::vector<size_t> candidate_cols,
                                 const LatticeOptions& options) {
  if (repair.row >= table.num_rows() || repair.col >= table.num_cols()) {
    return Status::InvalidArgument("repair cell out of range");
  }
  Lattice lat;
  lat.repair_ = repair;
  lat.num_table_rows_ = table.num_rows();

  // Assemble lattice columns: the ranked candidates in order, then the
  // repaired attribute itself last (unless excluded, Appendix B). Putting
  // the candidates first means one-hop traversals explore the correlated
  // attributes in rank order.
  size_t budget_cols = options.max_attrs;
  if (!options.exclude_target_attr && budget_cols > 0) --budget_cols;
  for (size_t c : candidate_cols) {
    if (c == repair.col) continue;
    if (c >= table.num_cols()) {
      return Status::InvalidArgument("candidate column out of range");
    }
    if (std::find(lat.cols_.begin(), lat.cols_.end(), c) != lat.cols_.end()) {
      continue;
    }
    if (lat.cols_.size() >= budget_cols) break;
    lat.cols_.push_back(c);
  }
  // Rank decides *which* attributes enter the lattice (partial
  // materialization); schema position decides their order, as in the
  // paper's implementation — only CoDive consults correlation scores while
  // traversing. The repaired attribute goes last.
  std::sort(lat.cols_.begin(), lat.cols_.end());
  if (!options.exclude_target_attr) {
    lat.cols_.push_back(repair.col);
  }
  if (lat.cols_.empty()) {
    return Status::InvalidArgument("lattice needs at least one attribute");
  }
  if (lat.cols_.size() > kMaxLatticeAttrs) {
    return Status::InvalidArgument(
        "lattice too large (" + std::to_string(lat.cols_.size()) +
        " attributes, kMaxLatticeAttrs = " + std::to_string(kMaxLatticeAttrs) +
        ")");
  }

  // Bind predicate constants to the repaired tuple's current values
  // (closed-world assumption, Section 2.2).
  lat.table_name_ = table.name();
  lat.set_attr_name_ = table.schema().attribute(repair.col);
  for (size_t c : lat.cols_) {
    ValueId v = table.cell(repair.row, c);
    lat.bindings_.push_back(v);
    lat.attr_names_.push_back(table.schema().attribute(c));
    lat.binding_texts_.emplace_back(table.pool()->Get(v));
  }
  // Interning through the shared pool is safe: it is append-only and does
  // not mutate the table contents.
  lat.target_value_ = table.pool()->Intern(repair.new_value);

  size_t n_nodes = lat.num_nodes();
  lat.index_ = options.naive_init ? nullptr : options.index;
  lat.maintain_index_ = options.maintain_index;
  lat.lazy_ = options.lazy && !options.naive_init;
  lat.compressed_ = options.compressed && !options.naive_init;
  lat.memo_ = lat.lazy_ ? options.memo : nullptr;
  lat.affected_.resize(n_nodes);
  lat.counts_.assign(n_nodes, kNoCount);
  lat.cached_flag_.assign(n_nodes, 0);
  lat.validity_.assign(n_nodes, Validity::kUnknown);

  // Bottom node + predicate bitmaps: the only set algebra a lazy build
  // pays. Everything above the bottom materializes on demand.
  lat.InitBottomAndPreds(table);
  lat.counts_[0] = lat.affected_[0].Count();
  lat.MarkCached(0);
  lat.nodes_materialized_ = 1;

  if (options.naive_init) {
    lat.InitAffectedNaive(table);
    lat.FinishEagerInit();
  } else if (!lat.lazy_) {
    lat.EagerChain();
    lat.FinishEagerInit();
  }
  return lat;
}

void Lattice::InitBottomAndPreds(const Table& table) {
  // Bottom node: rows whose target value differs from a' (rows any
  // candidate query could change) — the complement of the target value's
  // posting bitmap, so a cached posting makes this scan-free.
  if (index_ != nullptr) {
    affected_[0] = index_->Postings(repair_.col, target_value_).Complement();
  } else {
    affected_[0] = HybridRowSet(
        table.ScanEquals(repair_.col, target_value_).Complement());
  }

  // Per-attribute posting bitmaps for the bound predicate constants,
  // served from the posting cache when one was supplied. Stored by value:
  // posting references can be invalidated or evicted while the lattice is
  // alive, and ApplyNode must maintain these bitmaps independently anyway
  // to keep the chain recurrence exact after repairs.
  preds_.clear();
  preds_.reserve(cols_.size());
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (index_ != nullptr) {
      preds_.push_back(index_->Postings(cols_[i], bindings_[i]));
    } else {
      preds_.push_back(HybridRowSet(table.ScanEquals(cols_[i], bindings_[i])));
    }
  }

  // Representation policy: compressed mode compacts every bitmap by its
  // measured density; dense mode forces dense storage even when a
  // compressed posting index handed over compressed copies. Either way
  // the lattice's storage depends only on its own option, so the A/B
  // switch composes freely with both posting modes.
  if (compressed_) {
    affected_[0].Compact(affected_[0].Count());
    for (HybridRowSet& p : preds_) p.Compact(p.Count());
  } else {
    affected_[0].EnsureDense();
    for (HybridRowSet& p : preds_) p.EnsureDense();
  }
}

void Lattice::EagerChain() {
  // View rewriting: each node's set is its (mask without lowest bit)
  // parent's set restricted by one more predicate — a single AND.
  for (NodeId m = 1; m < num_nodes(); ++m) {
    NodeId parent = m & (m - 1);
    int bit = std::countr_zero(m);
    size_t count =
        affected_[m].AssignAnd(affected_[parent], preds_[static_cast<size_t>(bit)]);
    if (compressed_) affected_[m].Compact(count);
  }
}

void Lattice::InitAffectedNaive(const Table& table) {
  // The "execute one SQLU query per node" strawman of Section 5.1.2.
  for (NodeId m = 0; m < num_nodes(); ++m) {
    RowSet rows(num_table_rows_);
    for (size_t r = 0; r < num_table_rows_; ++r) {
      if (table.cell(r, repair_.col) == target_value_) continue;
      bool match = true;
      for (size_t i = 0; i < cols_.size(); ++i) {
        if ((m >> i) & 1) {
          if (table.cell(r, cols_[i]) != bindings_[i]) {
            match = false;
            break;
          }
        }
      }
      if (match) rows.Set(r);
    }
    affected_[m] = std::move(rows);
  }
}

void Lattice::FinishEagerInit() {
  size_t n_nodes = num_nodes();
  for (NodeId m = 0; m < n_nodes; ++m) {
    counts_[m] = affected_[m].Count();
  }
  cached_flag_.assign(n_nodes, 1);
  cached_nodes_.resize(n_nodes);
  for (NodeId m = 0; m < n_nodes; ++m) cached_nodes_[m] = m;
  nodes_materialized_ = n_nodes;
}

void Lattice::MarkCached(NodeId m) const {
  if (!cached_flag_[m]) {
    cached_flag_[m] = 1;
    cached_nodes_.push_back(m);
  }
}

const HybridRowSet& Lattice::MaterializeBitmap(NodeId m) const {
  if (materialized(m)) return affected_[m];
  int lo = std::countr_zero(m);
  NodeId parent = m & (m - 1);
  size_t count;
  if (memo_ != nullptr && std::popcount(m) == 2) {
    // Two-attribute node: its set is bottom ∧ pred_i ∧ pred_j, and the
    // pure pairwise intersection pred_i ∧ pred_j recurs across the
    // session's lattices (bindings repeat) — serve or seed the memo.
    size_t i = static_cast<size_t>(lo);
    size_t j = static_cast<size_t>(std::countr_zero(parent));
    if (const HybridRowSet* entry = memo_->Find(cols_[i], bindings_[i],
                                                cols_[j], bindings_[j])) {
      count = affected_[m].AssignAnd(*entry, affected_[0]);
    } else {
      HybridRowSet inter = preds_[i];
      inter.And(preds_[j]);
      count = affected_[m].AssignAnd(inter, affected_[0]);
      memo_->Put(cols_[i], bindings_[i], cols_[j], bindings_[j],
                 std::move(inter));
    }
  } else {
    const HybridRowSet& p = MaterializeBitmap(parent);
    // Fused materialization: one pass writes parent ∧ pred and counts it
    // in registers, so the count below is genuinely free.
    count = affected_[m].AssignAnd(p, preds_[static_cast<size_t>(lo)]);
  }
  // Record the count (identically in both representations, keeping the
  // lazy counters aligned) and let the density policy pick the storage.
  if (counts_[m] == kNoCount) counts_[m] = count;
  if (compressed_) affected_[m].Compact(count);
  MarkCached(m);
  ++nodes_materialized_;
  return affected_[m];
}

const HybridRowSet& Lattice::AffectedRows(NodeId n) const {
  return MaterializeBitmap(n);
}

size_t Lattice::Count(NodeId n) const {
  if (counts_[n] != kNoCount) return counts_[n];
  size_t c;
  if (materialized(n)) {
    c = affected_[n].Count();
  } else if (memo_ != nullptr && std::popcount(n) == 2) {
    size_t i = static_cast<size_t>(std::countr_zero(n));
    size_t j = static_cast<size_t>(std::countr_zero(n & (n - 1)));
    if (const HybridRowSet* entry =
            memo_->Find(cols_[i], bindings_[i], cols_[j], bindings_[j])) {
      // Count-only memo hit: one fused pass, no bitmap resident at all.
      c = affected_[0].AndCount(*entry);
      ++fused_count_calls_;
    } else if (memo_->RecordTouch(cols_[i], bindings_[i], cols_[j],
                                  bindings_[j])) {
      // The pair recurred: pay one materialized intersection now (the
      // Put admits it off probation) so every later touch is a hit.
      HybridRowSet inter = preds_[i];
      inter.And(preds_[j]);
      c = affected_[0].AndCount(inter);
      ++fused_count_calls_;
      memo_->Put(cols_[i], bindings_[i], cols_[j], bindings_[j],
                 std::move(inter));
    } else {
      const HybridRowSet& p = MaterializeBitmap(n & (n - 1));
      c = p.AndCount(preds_[i]);
      ++fused_count_calls_;
    }
  } else {
    const HybridRowSet& p = MaterializeBitmap(n & (n - 1));
    c = p.AndCount(preds_[static_cast<size_t>(std::countr_zero(n))]);
    ++fused_count_calls_;
  }
  counts_[n] = c;
  MarkCached(n);
  return c;
}

void Lattice::EnsureCounts(const std::vector<NodeId>& nodes) const {
  if (!lazy_) return;
  std::vector<NodeId> todo;
  todo.reserve(nodes.size());
  for (NodeId m : nodes) {
    if (counts_[m] == kNoCount) todo.push_back(m);
  }
  std::sort(todo.begin(), todo.end());
  todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
  if (todo.empty()) return;

  // Cost model. Forking a bucket through the pool pays a fixed handoff
  // while the per-node work is one AND/AndCount walking the parent's
  // resident words, so estimate the bucket's total word traffic from the
  // parents' resident footprints (a compressed parent's containers are
  // what the kernel actually touches) and fork only when every worker
  // shard clears kMinWordsPerShard. With no workers — or a bucket too
  // small to feed them — the plain serial loop is strictly faster; it
  // also skips the std::function indirection ParallelFor would pay even
  // inline.
  const size_t workers = ThreadPool::Global().num_threads();
  const size_t logical_words = (num_table_rows_ + 63) / 64;
  auto work_words = [&](NodeId m) -> size_t {
    NodeId p = m & (m - 1);
    // An unmaterialized parent materializes dense-logical before the
    // kernel runs, so the logical span is the right (upper-bound) charge.
    return materialized(p) ? affected_[p].HeapBytes() / sizeof(uint64_t)
                           : logical_words;
  };
  // ParallelFor grain for `bucket`, or 0 to run it serially.
  auto plan_grain = [&](const std::vector<NodeId>& bucket) -> size_t {
    if (workers == 0) return 0;
    size_t total = 0;
    for (NodeId m : bucket) total += work_words(m);
    if (total < 2 * kMinWordsPerShard) return 0;
    size_t per_node = std::max<size_t>(1, total / bucket.size());
    return std::max<size_t>(1, kMinWordsPerShard / per_node);
  };

  // Phase 1: materialize every missing ancestor bitmap, level by level
  // (a node's parent sits one popcount level below, so each level only
  // reads bitmaps finished in earlier levels — shards write disjoint
  // affected_ slots, keeping the schedule deterministic). The memo is
  // single-threaded state, so only the two-attribute bucket — one small
  // level, at most C(k,2) nodes — runs serially through the memoized
  // path; it is where the cross-lattice pairwise intersections live, and
  // a memo hit produces bit-identical sets (the entry *is* pred_i ∧
  // pred_j, maintained exactly). Two-attribute frontier nodes whose pair
  // is already admitted to the memo contribute no ancestors at all:
  // Count() will serve them off the entry without touching a parent.
  std::vector<NodeId> need;
  for (NodeId m : todo) {
    if (memo_ != nullptr && std::popcount(m) == 2) {
      size_t i = static_cast<size_t>(std::countr_zero(m));
      size_t j = static_cast<size_t>(std::countr_zero(m & (m - 1)));
      if (memo_->Contains(cols_[i], bindings_[i], cols_[j], bindings_[j])) {
        continue;
      }
    }
    for (NodeId p = m & (m - 1); p != 0 && !materialized(p);
         p = p & (p - 1)) {
      need.push_back(p);
    }
  }
  std::sort(need.begin(), need.end());
  need.erase(std::unique(need.begin(), need.end()), need.end());

  // Children to fuse-count immediately after their parent materializes.
  // Phase 1 walks ~8 bytes per table row per materialized node; a frontier
  // that needs hundreds of ancestors therefore evicts the early parents
  // from cache long before a trailing fuse pass could read them back. The
  // serial chain never pays that: Count(m) fuses off a parent that was
  // materialized moments before. Grouping each todo node under its parent
  // and counting it inside the parent's Phase-1 visit restores that
  // temporal locality (each child has exactly one parent, so shards still
  // write disjoint counts_ slots). Nodes that are themselves ancestors get
  // their count from materialization, and memoized two-attribute nodes
  // keep routing through Count(), so neither joins a kids bucket.
  std::unordered_map<NodeId, std::vector<NodeId>> kids;
  for (NodeId m : todo) {
    if (counts_[m] != kNoCount) continue;
    if (memo_ != nullptr && std::popcount(m) == 2) continue;
    if (std::binary_search(need.begin(), need.end(), m)) continue;
    kids[m & (m - 1)].push_back(m);
  }
  auto fuse_kids = [&](NodeId p) -> size_t {
    auto it = kids.find(p);
    if (it == kids.end()) return 0;
    for (NodeId c : it->second) {
      counts_[c] = affected_[p].AndCount(
          preds_[static_cast<size_t>(std::countr_zero(c))]);
    }
    return it->second.size();
  };

  if (!need.empty() && plan_grain(need) == 0) {
    // Serial schedule: ascending ids visit parents before children
    // (m & (m - 1) < m), and consecutive ids share short ancestor
    // suffixes, so each copy reads a parent written only a few nodes
    // earlier — still cache-resident, the same temporal locality the
    // on-demand chain gets for free. The level-major schedule below
    // would instead stream entire levels (megabytes of bitmaps at wide
    // levels) between a parent's write and its children's reads, paying
    // a cold copy per node; that order is only worth it when there are
    // workers to shard a level across.
    for (NodeId m : need) {
      if (memo_ != nullptr && std::popcount(m) == 2) {
        MaterializeBitmap(m);  // Memo-aware; does its own bookkeeping.
      } else {
        size_t count = affected_[m].AssignAnd(
            affected_[m & (m - 1)],
            preds_[static_cast<size_t>(std::countr_zero(m))]);
        if (counts_[m] == kNoCount) counts_[m] = count;
        if (compressed_) affected_[m].Compact(count);
        MarkCached(m);
        ++nodes_materialized_;
      }
      // Fuse the node's pending children while its bitmap is hot.
      fused_count_calls_ += fuse_kids(m);
    }
  } else if (!need.empty()) {
    std::vector<std::vector<NodeId>> by_level(cols_.size() + 1);
    for (NodeId m : need) {
      by_level[static_cast<size_t>(std::popcount(m))].push_back(m);
    }
    for (size_t lvl = 0; lvl < by_level.size(); ++lvl) {
      const std::vector<NodeId>& level = by_level[lvl];
      if (level.empty()) continue;
      if (lvl == 2 && memo_ != nullptr) {
        for (NodeId m : level) {
          MaterializeBitmap(m);
          fused_count_calls_ += fuse_kids(m);
        }
        continue;  // MaterializeBitmap did the caching bookkeeping.
      }
      auto body = [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
          NodeId m = level[i];
          // Mirror MaterializeBitmap: fused materialize-and-count, then
          // let the density policy pick the storage (disjoint slots, and
          // Compact depends only on the count — deterministic).
          size_t count = affected_[m].AssignAnd(
              affected_[m & (m - 1)],
              preds_[static_cast<size_t>(std::countr_zero(m))]);
          if (counts_[m] == kNoCount) counts_[m] = count;
          if (compressed_) affected_[m].Compact(count);
          // Fuse the node's pending children while its bitmap is hot.
          fuse_kids(m);
        }
      };
      size_t grain = plan_grain(level);
      if (grain == 0) {
        body(0, level.size());
      } else {
        ThreadPool::Global().ParallelFor(level.size(), grain, body);
      }
      for (NodeId m : level) {
        MarkCached(m);
        auto it = kids.find(m);
        if (it != kids.end()) fused_count_calls_ += it->second.size();
      }
      nodes_materialized_ += level.size();
    }
  }

  // Phase 2: the residual — todo nodes whose parent was already resident
  // when the call began (so no Phase-1 visit fused them) plus memoized
  // two-attribute nodes, which route through Count(): that is the
  // memo-aware path (single-threaded state, at most C(k,2) nodes).
  // Everything else is a pure fused AndCount off a resident parent,
  // eligible for sharding under the same cost model; shards write
  // disjoint counts_ slots and only read parent and predicate bitmaps,
  // so results are bit-identical to the serial path.
  std::vector<NodeId> fuse;
  fuse.reserve(todo.size());
  for (NodeId m : todo) {
    if (counts_[m] != kNoCount) continue;
    if (memo_ != nullptr && std::popcount(m) == 2) {
      Count(m);  // Serves or seeds the pairwise memo; own bookkeeping.
    } else {
      fuse.push_back(m);
    }
  }
  if (!fuse.empty()) {
    size_t fused = 0;
    for (NodeId m : fuse) {
      if (!materialized(m)) ++fused;
    }
    auto body = [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        NodeId m = fuse[i];
        if (materialized(m)) {
          counts_[m] = affected_[m].Count();
        } else {
          counts_[m] = affected_[m & (m - 1)].AndCount(
              preds_[static_cast<size_t>(std::countr_zero(m))]);
        }
      }
    };
    size_t grain = plan_grain(fuse);
    if (grain == 0) {
      body(0, fuse.size());
    } else {
      ThreadPool::Global().ParallelFor(fuse.size(), grain, body);
    }
    fused_count_calls_ += fused;
  }
  for (NodeId m : todo) MarkCached(m);
}

void Lattice::MaterializeAll() const {
  // Ascending node ids visit parents (m & (m-1) < m) before children, so
  // every materialization is a single AND off a resident bitmap.
  for (NodeId m = 1; m < num_nodes(); ++m) {
    if (!materialized(m)) MaterializeBitmap(m);
    if (counts_[m] == kNoCount) {
      counts_[m] = affected_[m].Count();
      MarkCached(m);
    }
  }
}

void Lattice::MarkValid(NodeId n) {
  validity_[n] = Validity::kValid;
  // Supersets of n are more specific, hence also valid.
  NodeId full = top();
  for (NodeId s = n;; s = (s + 1) | n) {
    if (validity_[s] == Validity::kUnknown) validity_[s] = Validity::kValid;
    if (s == full) break;
  }
}

void Lattice::MarkInvalid(NodeId n) {
  validity_[n] = Validity::kInvalid;
  // Subsets of n are more general, hence also invalid.
  for (NodeId s = n;; s = (s - 1) & n) {
    if (validity_[s] == Validity::kUnknown) validity_[s] = Validity::kInvalid;
    if (s == 0) break;
  }
}

std::vector<NodeId> Lattice::UnknownNodes() const {
  std::vector<NodeId> out;
  for (NodeId m = 0; m < num_nodes(); ++m) {
    if (validity_[m] == Validity::kUnknown) out.push_back(m);
  }
  return out;
}

RowSet Lattice::ApplyNode(NodeId n, Table& table, Status* fault) {
  // The changed set is consumed as scan-shard scratch (per-row writes,
  // delta reports, AndNot patches) — export it dense regardless of the
  // node's storage representation.
  RowSet changed = AffectedRows(n).ToDense();
  size_t changed_count = Count(n);
  // Delta-maintain the posting cache while the old values are still in the
  // table: each written row leaves its old value's bitmap and joins the
  // target value's. The cache then survives the write with no rescans.
  if (index_ != nullptr && maintain_index_ && index_->delta_maintenance()) {
    index_->ApplyDelta(
        repair_.col, changed,
        [&](size_t r) { return table.cell(r, repair_.col); }, target_value_);
  }
  // Patch the cross-lattice intersection memo the same way (it needs no
  // old values — changed rows leave every (repair col = v≠a') predicate
  // exactly, and entries bound to a' itself are dropped).
  if (memo_ != nullptr) {
    memo_->ApplyWrite(repair_.col, changed, target_value_);
  }
  if (fault != nullptr && FaultInjector::Global().active()) {
    bool stopped = false;
    changed.ForEach([&](size_t r) {
      if (stopped) return;
      Status st = FaultInjector::Global().Hit("apply.write");
      if (!st.ok()) {
        *fault = std::move(st);
        stopped = true;
        return;
      }
      table.set_cell(r, repair_.col, target_value_);
    });
    // Torn apply: leave the affected sets untouched — the session aborts
    // and recovery rolls the table back from journal before-images.
    if (stopped) return changed;
  } else {
    changed.ForEach([&](size_t r) {
      table.set_cell(r, repair_.col, target_value_);
    });
  }

  // Maintain the predicate bitmaps for attributes over the repaired
  // column: changed rows now hold a', so they leave any other binding's
  // predicate and join a''s. This is what keeps the chain recurrence —
  // and with it every *future* lazy materialization — exact after the
  // write (AND distributes over the AndNot below).
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i] != repair_.col) continue;
    if (bindings_[i] == target_value_) {
      preds_[i].Or(changed);
    } else {
      preds_[i].AndNot(changed);
    }
  }

  // Incremental maintenance (Section 5.1.2): repaired rows leave every
  // node's affected set, but the containment relation to Q gives each node
  // a cheap path. Only nodes holding cached state pay anything; a node
  // with a cached count but no bitmap keeps the count exact in Cases 1–2
  // and falls back to lazy recomputation in Case 3 (the overlap is
  // unknowable without the bits).
  for (NodeId m : cached_nodes_) {
    bool has_bitmap = materialized(m);
    bool has_count = counts_[m] != kNoCount;
    if ((m & n) == n) {
      // Case 1 (and n itself) — Q' ≤ Q (supersets of n's attributes):
      // every tuple Q' could affect was just repaired; drop to ∅ without
      // set algebra.
      if (has_bitmap) affected_[m].ClearAll();
      counts_[m] = 0;
    } else if ((m & n) == m) {
      // Case 2 — Q ≤ Q'' (subsets): Q(T) ⊆ Q''(T), so the count drops by
      // exactly |Q(T)| — no popcount pass needed.
      if (has_bitmap) affected_[m].AndNot(changed);
      if (has_count) counts_[m] -= changed_count;
    } else {
      // Case 3 — incomparable: deduct |Q'''(Q(T))|, i.e. the overlap with
      // the repaired area only.
      if (has_bitmap) {
        size_t overlap = affected_[m].AndCount(changed);
        if (overlap != 0) affected_[m].AndNot(changed);
        if (has_count) counts_[m] -= overlap;
      } else if (has_count) {
        counts_[m] = kNoCount;  // Overlap unknown; recount lazily.
      }
    }
  }
  // The paper's per-case tallies depend only on the masks, not on which
  // nodes happen to be resident — closed forms keep the stats identical
  // between lazy and eager schedules. With pc = |n|'s attributes:
  // supersets\{n} = 2^(k-pc)-1, subsets\{n} = 2^pc-1, rest incomparable.
  {
    size_t k = cols_.size();
    size_t pc = static_cast<size_t>(std::popcount(n));
    size_t supersets = size_t{1} << (k - pc);
    size_t subsets = size_t{1} << pc;
    maintenance_stats_.case1_contained += supersets - 1;
    maintenance_stats_.case2_containing += subsets - 1;
    maintenance_stats_.case3_disjoint += num_nodes() - supersets - subsets + 1;
  }
  closed_sets_fresh_ = false;
  rep_cache_.clear();
  return changed;
}

void Lattice::RecomputeAffected(const Table& table) {
  size_t n_nodes = num_nodes();
  if (lazy_) {
    // Lazy rebuild: drop every cached node and refetch the bottom and
    // predicate bitmaps from the (possibly externally modified) table;
    // later accesses re-materialize against the new contents.
    for (NodeId m : cached_nodes_) {
      affected_[m] = HybridRowSet();
      counts_[m] = kNoCount;
      cached_flag_[m] = 0;
    }
    cached_nodes_.clear();
    InitBottomAndPreds(table);
    counts_[0] = affected_[0].Count();
    MarkCached(0);
    nodes_materialized_ = 1;
  } else {
    InitBottomAndPreds(table);
    EagerChain();
    for (NodeId m = 0; m < n_nodes; ++m) {
      counts_[m] = affected_[m].Count();
    }
  }
  closed_sets_fresh_ = false;
  rep_cache_.clear();
}

void Lattice::ApplyAppend(const Table& table) {
  size_t old_rows = num_table_rows_;
  size_t new_rows = table.num_rows();
  FALCON_CHECK(new_rows >= old_rows);
  if (new_rows == old_rows) return;
  // Capture which cached nodes hold bitmaps *before* the universe moves —
  // materialized() compares each bitmap's universe to num_table_rows_.
  std::vector<NodeId> with_bitmap;
  with_bitmap.reserve(cached_nodes_.size());
  for (NodeId m : cached_nodes_) {
    if (materialized(m)) with_bitmap.push_back(m);
  }
  for (NodeId m : with_bitmap) affected_[m].Resize(new_rows);
  for (HybridRowSet& p : preds_) p.Resize(new_rows);
  num_table_rows_ = new_rows;

  const size_t k = cols_.size();
  for (size_t r = old_rows; r < new_rows; ++r) {
    // Predicate-satisfaction mask of the new row over the lattice attrs.
    NodeId pm = 0;
    for (size_t i = 0; i < k; ++i) {
      if (table.cell(r, cols_[i]) == bindings_[i]) {
        preds_[i].Set(r);
        pm |= NodeId{1} << i;
      }
    }
    // Rows already holding the target value are in no affected set (they
    // are outside the bottom node).
    if (table.cell(r, repair_.col) == target_value_) continue;
    // Fold the row into every cached node whose WHERE conjunction it
    // satisfies: node m matches iff every attr of m is satisfied. The
    // bottom (m = 0) matches vacuously. Bitmaps get the bit; count-only
    // nodes get the exact closed-form increment.
    for (NodeId m : cached_nodes_) {
      if ((pm & m) != m) continue;
      if (affected_[m].universe_size() == new_rows) affected_[m].Set(r);
      if (counts_[m] != kNoCount) ++counts_[m];
    }
  }
  closed_sets_fresh_ = false;
  rep_cache_.clear();
}

SqluQuery Lattice::NodeQuery(NodeId n) const {
  SqluQuery q;
  q.table = table_name_;
  q.set_attr = set_attr_name_;
  q.set_value = repair_.new_value;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if ((n >> i) & 1) {
      q.where.push_back({attr_names_[i], binding_texts_[i]});
    }
  }
  q.Canonicalize();
  return q;
}

std::string Lattice::NodeLabel(NodeId n) const {
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if ((n >> i) & 1) {
      if (!first) out += ", ";
      out += attr_names_[i];
      first = false;
    }
  }
  out += "}";
  return out;
}

void Lattice::EnsureClosedSets() {
  if (closed_sets_fresh_) return;
  MaterializeAll();
  size_t n_nodes = num_nodes();
  closed_group_.assign(n_nodes, 0);
  group_representative_.clear();

  // A closed rule set is an equivalence class of nodes with identical
  // affected sets (the closed-itemset "same tidset" semantics that the
  // paper's Example 10 illustrates: {DMQ, DM, DQ} all repair the same
  // tuples). The class is closed under attribute union, so the member with
  // the most predicates is the unique representative rule.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  for (NodeId m = 0; m < n_nodes; ++m) {
    // Hash on (count, bitmap) and resolve collisions by exact comparison
    // against each group's canonical member.
    uint64_t h = affected_[m].Hash() * 31 + counts_[m];
    std::vector<uint32_t>& groups = buckets[h];
    bool placed = false;
    for (uint32_t g : groups) {
      NodeId canon = group_representative_[g];
      if (affected_[m] == affected_[canon]) {
        closed_group_[m] = g;
        // Representative = member with the most predicates.
        NodeId& rep = group_representative_[g];
        if (std::popcount(m) > std::popcount(rep) ||
            (std::popcount(m) == std::popcount(rep) && m > rep)) {
          rep = m;
        }
        placed = true;
        break;
      }
    }
    if (!placed) {
      uint32_t g = static_cast<uint32_t>(group_representative_.size());
      group_representative_.push_back(m);
      groups.push_back(g);
      closed_group_[m] = g;
    }
  }
  closed_sets_fresh_ = true;
}

NodeId Lattice::Representative(NodeId n) {
  auto it = rep_cache_.find(n);
  if (it != rep_cache_.end()) return it->second;
  // Predicate-closure rule: attribute i outside n leaves the affected set
  // unchanged iff affected(n) ⊆ pred(i) (the chain recurrence ANDs pred(i)
  // in). The closure n ∪ {all such i} is therefore the unique maximal
  // member of n's equal-affected-set class — the representative — and
  // costs one subset test per absent attribute instead of grouping all
  // 2^k nodes. An empty affected set closes to the top node.
  const HybridRowSet& rows = AffectedRows(n);
  NodeId rep = n;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if ((n >> i) & 1) continue;
    if (rows.IsSubsetOf(preds_[i])) rep |= NodeId{1} << i;
  }
  rep_cache_.emplace(n, rep);
  return rep;
}

size_t Lattice::NumClosedSets() {
  EnsureClosedSets();
  return group_representative_.size();
}

}  // namespace falcon
