#include "core/violation_detector.h"

#include <algorithm>
#include <unordered_map>

namespace falcon {
namespace {

using violation_detail::Group;
using violation_detail::GroupMap;

uint64_t CellKey(uint32_t row, size_t col) {
  return (static_cast<uint64_t>(row) << 16) | static_cast<uint64_t>(col);
}

// One raw group violation before blame assignment.
struct Violation {
  uint32_t row = 0;
  size_t fd_index = 0;
  ValueId suggested = kNullValueId;  // Consensus of the RHS group.
  double consensus = 0.0;
};

// Folds rows [begin, end) of `table` into `groups[fi]` for every fd. Rows
// with a NULL in any involved attribute never join a group (a NULL neither
// votes nor violates).
void FoldRowsInto(const Table& table, const std::vector<DiscoveredFd>& fds,
                  size_t begin, size_t end, std::vector<GroupMap>& groups) {
  std::vector<ValueId> key;
  for (size_t fi = 0; fi < fds.size(); ++fi) {
    const DiscoveredFd& fd = fds[fi];
    GroupMap& map = groups[fi];
    for (size_t r = begin; r < end; ++r) {
      key.clear();
      bool has_null = false;
      for (size_t c : fd.lhs) {
        ValueId v = table.cell(r, c);
        if (v == kNullValueId) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      ValueId rhs = table.cell(r, fd.rhs);
      if (has_null || rhs == kNullValueId) continue;
      Group& g = map[key];
      g.rows.push_back(static_cast<uint32_t>(r));
      ++g.rhs_counts[rhs];
    }
  }
}

// Derives the report from group state. Deterministic in (table contents,
// fds, group contents): consensus ties break toward the smaller ValueId,
// and violating rows are processed in ascending row order, so the result
// never depends on hash-map iteration order — which is what lets the
// incremental detector's tallies stand in for a from-scratch scan.
std::vector<Suspect> FlagSuspects(const Table& table,
                                  const std::vector<DiscoveredFd>& fds,
                                  const std::vector<GroupMap>& groups,
                                  const ViolationDetectorOptions& options) {
  // Pass 1: collect group-minority violations per dependency. A violating
  // row is evidence against ALL its cells on that dependency (the error
  // may sit in the RHS or in an LHS attribute that teleported the row
  // into the wrong group), so blame every involved cell and resolve per
  // row afterwards.
  std::unordered_map<uint64_t, uint32_t> blame;          // cell -> count.
  std::unordered_map<uint64_t, Violation> rhs_evidence;  // cell -> best.
  std::vector<uint32_t> violating_rows;
  std::unordered_map<uint32_t, bool> seen_row;

  for (size_t fi = 0; fi < fds.size(); ++fi) {
    const DiscoveredFd& fd = fds[fi];
    for (const auto& [k, g] : groups[fi]) {
      if (g.rows.size() < options.min_group_rows) continue;
      if (g.rhs_counts.size() < 2) continue;
      ValueId consensus_value = kNullValueId;
      uint32_t consensus_count = 0;
      for (const auto& [v, n] : g.rhs_counts) {
        if (n > consensus_count ||
            (n == consensus_count && v < consensus_value)) {
          consensus_count = n;
          consensus_value = v;
        }
      }
      double consensus = static_cast<double>(consensus_count) /
                         static_cast<double>(g.rows.size());
      if (consensus < options.min_consensus) continue;

      for (uint32_t r : g.rows) {
        if (table.cell(r, fd.rhs) == consensus_value) continue;
        // Blame the RHS cell and every LHS cell of the violating row.
        uint64_t rhs_key = CellKey(r, fd.rhs);
        ++blame[rhs_key];
        for (size_t c : fd.lhs) ++blame[CellKey(r, c)];
        auto [it, inserted] = rhs_evidence.try_emplace(rhs_key);
        if (inserted || consensus > it->second.consensus) {
          it->second = Violation{r, fi, consensus_value, consensus};
        }
        if (!seen_row.count(r)) {
          seen_row.emplace(r, true);
          violating_rows.push_back(r);
        }
      }
    }
  }
  std::sort(violating_rows.begin(), violating_rows.end());

  // Pass 2: per violating row, flag the most-blamed cell (the error site a
  // human would zero in on). Weakly blamed rows are dropped to keep
  // precision: a single approximate dependency misfiring is not evidence.
  std::vector<Suspect> suspects;
  for (uint32_t r : violating_rows) {
    size_t best_col = 0;
    uint32_t best_blame = 0;
    for (size_t c = 0; c < table.num_cols(); ++c) {
      auto it = blame.find(CellKey(r, c));
      if (it == blame.end()) continue;
      uint32_t b = it->second;
      // Prefer cells with direct RHS evidence on ties (they carry a
      // suggested repair).
      bool better = b > best_blame ||
                    (b == best_blame && rhs_evidence.count(CellKey(r, c)) &&
                     !rhs_evidence.count(CellKey(r, best_col)));
      if (better) {
        best_blame = b;
        best_col = c;
      }
    }
    if (best_blame < options.min_blame) continue;

    Suspect s;
    s.row = r;
    s.col = best_col;
    s.current = table.cell(r, best_col);
    auto ev = rhs_evidence.find(CellKey(r, best_col));
    if (ev != rhs_evidence.end()) {
      s.suggested = ev->second.suggested;
      s.fd_index = ev->second.fd_index;
      s.consensus = ev->second.consensus;
    } else {
      s.suggested = kNullValueId;  // Blamed as an LHS cell only.
      s.fd_index = 0;
      s.consensus = 0.0;
    }
    s.blame = best_blame;
    suspects.push_back(s);
  }

  std::stable_sort(suspects.begin(), suspects.end(),
                   [](const Suspect& a, const Suspect& b) {
                     if (a.blame != b.blame) return a.blame > b.blame;
                     return a.consensus > b.consensus;
                   });
  return suspects;
}

}  // namespace

ViolationReport DetectViolations(const Table& table,
                                 const ViolationDetectorOptions& options) {
  return DetectWithFds(table, DiscoverFds(table, options.discovery), options);
}

ViolationReport DetectWithFds(const Table& table,
                              std::vector<DiscoveredFd> fds,
                              const ViolationDetectorOptions& options) {
  ViolationReport report;
  report.fds = std::move(fds);
  std::vector<GroupMap> groups(report.fds.size());
  FoldRowsInto(table, report.fds, 0, table.num_rows(), groups);
  report.suspects = FlagSuspects(table, report.fds, groups, options);
  return report;
}

void IncrementalViolationDetector::FoldRows(const Table& table, size_t begin,
                                            size_t end) {
  FoldRowsInto(table, fds_, begin, end, groups_);
}

const ViolationReport& IncrementalViolationDetector::Full(const Table& table) {
  fds_ = DiscoverFds(table, options_.discovery);
  groups_.assign(fds_.size(), GroupMap{});
  FoldRows(table, 0, table.num_rows());
  report_.fds = fds_;
  report_.suspects = FlagSuspects(table, fds_, groups_, options_);
  return report_;
}

const ViolationReport& IncrementalViolationDetector::ApplyAppend(
    const Table& table, size_t old_rows) {
  FoldRows(table, old_rows, table.num_rows());
  report_.suspects = FlagSuspects(table, fds_, groups_, options_);
  return report_;
}

}  // namespace falcon
