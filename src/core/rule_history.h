// RuleHistory: cross-update memory of rule outcomes (the paper's Section 8
// future-work direction: "leverage the information obtained from previous
// interactions with the user w.r.t. multiple data updates").
//
// FALCON sessions repeatedly repair the same attribute; the attribute SETS
// that formed valid rules before (e.g. {RouteId, Direction} for
// Destination) tend to form valid rules again for other constants.
// RuleHistory tracks per-(target attribute, WHERE attribute set) outcome
// counts and exposes a multiplicative score boost that CoDive folds into
// its window re-ranking.
#ifndef FALCON_CORE_RULE_HISTORY_H_
#define FALCON_CORE_RULE_HISTORY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace falcon {

class RuleHistory {
 public:
  /// Records the user's verdict for a rule shaped (where_cols → target).
  void Record(size_t target_col, std::vector<size_t> where_cols, bool valid) {
    Key key = MakeKey(target_col, std::move(where_cols));
    Stats& s = stats_[key];
    if (valid) {
      ++s.valid;
    } else {
      ++s.invalid;
    }
  }

  /// Multiplicative boost in [1/kMaxBoost, kMaxBoost]: shapes with a valid
  /// track record score above 1, repeatedly invalid shapes below 1, a
  /// balanced or unseen record exactly 1.
  double Boost(size_t target_col, std::vector<size_t> where_cols) const {
    auto it = stats_.find(MakeKey(target_col, std::move(where_cols)));
    if (it == stats_.end()) return 1.0;
    const Stats& s = it->second;
    // Laplace-smoothed valid rate, mapped exponentially so rate 1/2 is
    // exactly neutral: kMaxBoost^(2·rate − 1).
    double rate = (static_cast<double>(s.valid) + 1.0) /
                  (static_cast<double>(s.valid + s.invalid) + 2.0);
    return std::pow(kMaxBoost, 2.0 * rate - 1.0);
  }

  size_t distinct_shapes() const { return stats_.size(); }

  size_t valid_observations() const {
    size_t n = 0;
    for (const auto& [key, s] : stats_) n += s.valid;
    return n;
  }

 private:
  static constexpr double kMaxBoost = 4.0;

  using Key = std::pair<size_t, std::vector<size_t>>;
  struct Stats {
    uint32_t valid = 0;
    uint32_t invalid = 0;
  };

  static Key MakeKey(size_t target_col, std::vector<size_t> where_cols) {
    std::sort(where_cols.begin(), where_cols.end());
    return {target_col, std::move(where_cols)};
  }

  std::map<Key, Stats> stats_;
};

}  // namespace falcon

#endif  // FALCON_CORE_RULE_HISTORY_H_
