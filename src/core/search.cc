#include "core/search.h"

#include <chrono>
#include <thread>

#include "common/fault_injector.h"
#include "core/search_algorithms.h"
#include "relational/posting_index.h"

namespace falcon {
namespace {

// Bounded retry for transient (kUnavailable) oracle faults: the user/master
// endpoint being briefly unreachable should not kill the session. Non-
// transient faults and exhaustion propagate to the context's sticky status.
constexpr int kMaxOracleAttempts = 4;
constexpr int kOracleBackoffBaseUs = 50;

Status HitOracleSiteWithRetry() {
  Status fault = Status::Ok();
  for (int attempt = 0; attempt < kMaxOracleAttempts; ++attempt) {
    fault = FaultInjector::Global().Hit("oracle.answer");
    if (fault.ok() || !fault.IsTransient()) break;
    std::this_thread::sleep_for(
        std::chrono::microseconds(kOracleBackoffBaseUs << attempt));
  }
  return fault;
}

}  // namespace

LatticeSearchContext::LatticeSearchContext(
    Lattice* lattice, Table* dirty, UserOracle* oracle, size_t budget,
    bool use_closed_sets, bool naive_maintenance, CordsProfiler* profiler,
    SearchStats* stats, std::function<void(const RowSet&, size_t)> on_apply)
    : lattice_(lattice),
      dirty_(dirty),
      oracle_(oracle),
      budget_(budget),
      use_closed_sets_(use_closed_sets),
      naive_maintenance_(naive_maintenance),
      profiler_(profiler),
      stats_(stats),
      on_apply_(std::move(on_apply)) {}

RowSet LatticeSearchContext::ApplyValid(NodeId n) {
  if (!status_.ok()) return RowSet(dirty_->num_rows());
  Status fault = FaultInjector::Global().Hit("apply.rule");
  if (!fault.ok()) {
    status_ = std::move(fault);
    return RowSet(dirty_->num_rows());
  }
  auto t0 = std::chrono::steady_clock::now();
  size_t col = lattice_->target_col();
  // Write-ahead: the durable journal record (with text before-images) must
  // land before any table byte changes, so a crash mid-apply rolls back.
  if (journal_hook_) {
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::kApply;
    rec.node = static_cast<uint32_t>(n);
    rec.col = static_cast<uint32_t>(col);
    rec.manual = n == lattice_->top();
    rec.value = std::string(dirty_->pool()->Get(lattice_->target_value()));
    lattice_->affected(n).ForEach([&](size_t r) {
      rec.before.emplace_back(
          static_cast<uint32_t>(r),
          std::string(dirty_->pool()->Get(dirty_->cell(r, col))));
    });
    Status st = journal_hook_(&rec);
    if (!st.ok()) {
      status_ = std::move(st);
      return RowSet(dirty_->num_rows());
    }
  }
  // Journal the before-images while they are still in the table.
  if (log_ != nullptr) {
    std::vector<std::pair<uint32_t, ValueId>> before;
    lattice_->affected(n).ForEach([&](size_t r) {
      before.emplace_back(static_cast<uint32_t>(r), dirty_->cell(r, col));
    });
    log_->Record(lattice_->NodeQuery(n), col, std::move(before),
                 /*manual=*/n == lattice_->top());
  }
  RowSet changed = lattice_->ApplyNode(n, *dirty_, &fault);
  if (!fault.ok()) {
    status_ = std::move(fault);
    return changed;
  }
  if (naive_maintenance_) {
    // Fig. 8(a)'s strawman: throw the incremental result away and rebuild
    // every affected set from the table. In delta mode ApplyNode already
    // patched the cached postings; otherwise the target column's entries
    // are stale and must be dropped before the rescan.
    if (lattice_->index() != nullptr &&
        !lattice_->index()->delta_maintenance()) {
      lattice_->index()->InvalidateColumn(lattice_->target_col());
    }
    lattice_->RecomputeAffected(*dirty_);
  }
  auto t1 = std::chrono::steady_clock::now();
  if (stats_ != nullptr) {
    stats_->maintain_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats_->applies += 1;
    stats_->cells_changed += changed.Count();
  }
  if (on_apply_) on_apply_(changed, lattice_->target_col());
  return changed;
}

std::optional<LatticeSearchContext::AskResult> LatticeSearchContext::Ask(
    NodeId n) {
  if (!BudgetLeft()) return std::nullopt;

  NodeId q = n;
  if (use_closed_sets_) {
    NodeId rep = lattice_->Representative(n);
    // Only redirect to a representative whose validity is still open;
    // otherwise asking it would waste the question.
    if (lattice_->validity(rep) == Validity::kUnknown) q = rep;
  }
  if (lattice_->validity(q) != Validity::kUnknown) {
    // The caller picked a node whose state is already known (possible after
    // closed-set redirection); report it for free.
    return AskResult{q, lattice_->validity(q) == Validity::kValid};
  }

  // Fault site sits *before* AnswerEx so failed attempts don't advance the
  // oracle's RNG stream (replay determinism depends on aligned draws).
  Status fault = HitOracleSiteWithRetry();
  if (!fault.ok()) {
    status_ = std::move(fault);
    return std::nullopt;
  }
  UserOracle::Answered answer = oracle_->AnswerEx(*lattice_, q);
  if (journal_hook_) {
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::kAnswer;
    rec.node = static_cast<uint32_t>(q);
    rec.valid = answer.valid;
    rec.billed = answer.billed;
    Status st = journal_hook_(&rec);
    if (!st.ok()) {
      status_ = std::move(st);
      return std::nullopt;
    }
    // Replay rewrites the record to the journaled verdict; take it as
    // authoritative so recovery reproduces the original run bit-for-bit.
    answer.valid = rec.valid;
    answer.billed = rec.billed;
  }
  if (answer.billed) ++answers_used_;
  verified_.push_back(q);
  if (history_ != nullptr) {
    history_->Record(lattice_->target_col(), NodeCols(q), answer.valid);
  }
  if (answer.valid) {
    lattice_->MarkValid(q);
    ApplyValid(q);
  } else {
    lattice_->MarkInvalid(q);
  }
  return AskResult{q, answer.valid};
}

std::vector<size_t> LatticeSearchContext::NodeCols(NodeId n) const {
  std::vector<size_t> cols;
  const std::vector<size_t>& lattice_cols = lattice_->lattice_cols();
  for (size_t i = 0; i < lattice_cols.size(); ++i) {
    if ((n >> i) & 1) cols.push_back(lattice_cols[i]);
  }
  return cols;
}

double LatticeSearchContext::HistoryBoost(NodeId n) const {
  if (history_ == nullptr) return 1.0;
  return history_->Boost(lattice_->target_col(), NodeCols(n));
}

double LatticeSearchContext::Correlation(NodeId n) {
  if (profiler_ == nullptr || n == 0) return 0.0;
  std::vector<size_t> x_cols;
  const std::vector<size_t>& cols = lattice_->lattice_cols();
  for (size_t i = 0; i < cols.size(); ++i) {
    if ((n >> i) & 1) x_cols.push_back(cols[i]);
  }
  // Correlation of the WHERE attributes with the updated attribute. When
  // the WHERE clause is just the updated attribute itself (the
  // standardization query), treat it as strongly related.
  if (x_cols.size() == 1 && x_cols[0] == lattice_->target_col()) return 1.0;
  std::vector<size_t> filtered;
  for (size_t c : x_cols) {
    if (c != lattice_->target_col()) filtered.push_back(c);
  }
  if (filtered.empty()) return 1.0;
  return profiler_->SetCorrelation(filtered, lattice_->target_col());
}

const char* SearchKindName(SearchKind kind) {
  switch (kind) {
    case SearchKind::kBfs:
      return "BFS";
    case SearchKind::kDfs:
      return "DFS";
    case SearchKind::kDucc:
      return "Ducc";
    case SearchKind::kDive:
      return "Dive";
    case SearchKind::kCoDive:
      return "CoDive";
    case SearchKind::kOffline:
      return "OffLine";
  }
  return "?";
}

std::unique_ptr<SearchAlgorithm> MakeSearchAlgorithm(SearchKind kind) {
  switch (kind) {
    case SearchKind::kBfs:
      return std::make_unique<BfsSearch>();
    case SearchKind::kDfs:
      return std::make_unique<DfsSearch>();
    case SearchKind::kDucc:
      return std::make_unique<DuccSearch>();
    case SearchKind::kDive:
      return std::make_unique<DiveSearch>();
    case SearchKind::kCoDive:
      return std::make_unique<CoDiveSearch>();
    case SearchKind::kOffline:
      return std::make_unique<OfflineSearch>();
  }
  return nullptr;
}

}  // namespace falcon
