#include "core/search.h"

#include <chrono>

#include "core/search_algorithms.h"
#include "relational/posting_index.h"

namespace falcon {

LatticeSearchContext::LatticeSearchContext(
    Lattice* lattice, Table* dirty, UserOracle* oracle, size_t budget,
    bool use_closed_sets, bool naive_maintenance, CordsProfiler* profiler,
    SearchStats* stats, std::function<void(const RowSet&, size_t)> on_apply)
    : lattice_(lattice),
      dirty_(dirty),
      oracle_(oracle),
      budget_(budget),
      use_closed_sets_(use_closed_sets),
      naive_maintenance_(naive_maintenance),
      profiler_(profiler),
      stats_(stats),
      on_apply_(std::move(on_apply)) {}

RowSet LatticeSearchContext::ApplyValid(NodeId n) {
  auto t0 = std::chrono::steady_clock::now();
  // Journal the before-images while they are still in the table.
  if (log_ != nullptr) {
    std::vector<std::pair<uint32_t, ValueId>> before;
    size_t col = lattice_->target_col();
    lattice_->affected(n).ForEach([&](size_t r) {
      before.emplace_back(static_cast<uint32_t>(r), dirty_->cell(r, col));
    });
    log_->Record(lattice_->NodeQuery(n), col, std::move(before),
                 /*manual=*/n == lattice_->top());
  }
  RowSet changed = lattice_->ApplyNode(n, *dirty_);
  if (naive_maintenance_) {
    // Fig. 8(a)'s strawman: throw the incremental result away and rebuild
    // every affected set from the table. In delta mode ApplyNode already
    // patched the cached postings; otherwise the target column's entries
    // are stale and must be dropped before the rescan.
    if (lattice_->index() != nullptr &&
        !lattice_->index()->delta_maintenance()) {
      lattice_->index()->InvalidateColumn(lattice_->target_col());
    }
    lattice_->RecomputeAffected(*dirty_);
  }
  auto t1 = std::chrono::steady_clock::now();
  if (stats_ != nullptr) {
    stats_->maintain_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats_->applies += 1;
    stats_->cells_changed += changed.Count();
  }
  if (on_apply_) on_apply_(changed, lattice_->target_col());
  return changed;
}

std::optional<LatticeSearchContext::AskResult> LatticeSearchContext::Ask(
    NodeId n) {
  if (!BudgetLeft()) return std::nullopt;

  NodeId q = n;
  if (use_closed_sets_) {
    NodeId rep = lattice_->Representative(n);
    // Only redirect to a representative whose validity is still open;
    // otherwise asking it would waste the question.
    if (lattice_->validity(rep) == Validity::kUnknown) q = rep;
  }
  if (lattice_->validity(q) != Validity::kUnknown) {
    // The caller picked a node whose state is already known (possible after
    // closed-set redirection); report it for free.
    return AskResult{q, lattice_->validity(q) == Validity::kValid};
  }

  UserOracle::Answered answer = oracle_->AnswerEx(*lattice_, q);
  if (answer.billed) ++answers_used_;
  verified_.push_back(q);
  if (history_ != nullptr) {
    history_->Record(lattice_->target_col(), NodeCols(q), answer.valid);
  }
  if (answer.valid) {
    lattice_->MarkValid(q);
    ApplyValid(q);
  } else {
    lattice_->MarkInvalid(q);
  }
  return AskResult{q, answer.valid};
}

std::vector<size_t> LatticeSearchContext::NodeCols(NodeId n) const {
  std::vector<size_t> cols;
  const std::vector<size_t>& lattice_cols = lattice_->lattice_cols();
  for (size_t i = 0; i < lattice_cols.size(); ++i) {
    if ((n >> i) & 1) cols.push_back(lattice_cols[i]);
  }
  return cols;
}

double LatticeSearchContext::HistoryBoost(NodeId n) const {
  if (history_ == nullptr) return 1.0;
  return history_->Boost(lattice_->target_col(), NodeCols(n));
}

double LatticeSearchContext::Correlation(NodeId n) {
  if (profiler_ == nullptr || n == 0) return 0.0;
  std::vector<size_t> x_cols;
  const std::vector<size_t>& cols = lattice_->lattice_cols();
  for (size_t i = 0; i < cols.size(); ++i) {
    if ((n >> i) & 1) x_cols.push_back(cols[i]);
  }
  // Correlation of the WHERE attributes with the updated attribute. When
  // the WHERE clause is just the updated attribute itself (the
  // standardization query), treat it as strongly related.
  if (x_cols.size() == 1 && x_cols[0] == lattice_->target_col()) return 1.0;
  std::vector<size_t> filtered;
  for (size_t c : x_cols) {
    if (c != lattice_->target_col()) filtered.push_back(c);
  }
  if (filtered.empty()) return 1.0;
  return profiler_->SetCorrelation(filtered, lattice_->target_col());
}

const char* SearchKindName(SearchKind kind) {
  switch (kind) {
    case SearchKind::kBfs:
      return "BFS";
    case SearchKind::kDfs:
      return "DFS";
    case SearchKind::kDucc:
      return "Ducc";
    case SearchKind::kDive:
      return "Dive";
    case SearchKind::kCoDive:
      return "CoDive";
    case SearchKind::kOffline:
      return "OffLine";
  }
  return "?";
}

std::unique_ptr<SearchAlgorithm> MakeSearchAlgorithm(SearchKind kind) {
  switch (kind) {
    case SearchKind::kBfs:
      return std::make_unique<BfsSearch>();
    case SearchKind::kDfs:
      return std::make_unique<DfsSearch>();
    case SearchKind::kDucc:
      return std::make_unique<DuccSearch>();
    case SearchKind::kDive:
      return std::make_unique<DiveSearch>();
    case SearchKind::kCoDive:
      return std::make_unique<CoDiveSearch>();
    case SearchKind::kOffline:
      return std::make_unique<OfflineSearch>();
  }
  return nullptr;
}

}  // namespace falcon
