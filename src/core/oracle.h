// Simulated user (Section 6): answers validity questions from the
// ground-truth clean instance. A query is semantically valid iff executing
// it would introduce no new errors, i.e. every row it affects has the SET
// value as its clean value. This predicate is monotone under containment,
// so the lattice inference rules are sound against it.
//
// The oracle optionally makes mistakes (Exp-5): each answer flips with a
// configurable probability.
#ifndef FALCON_CORE_ORACLE_H_
#define FALCON_CORE_ORACLE_H_

#include <cstdint>

#include "common/rng.h"
#include "core/lattice.h"
#include "relational/table.h"

namespace falcon {

class UserOracle {
 public:
  /// `clean` must share its ValuePool with the dirty table the lattices are
  /// built over and must outlive the oracle.
  explicit UserOracle(const Table* clean, double mistake_prob = 0.0,
                      uint64_t seed = 99)
      : clean_(clean), mistake_prob_(mistake_prob), rng_(seed) {}

  virtual ~UserOracle() = default;

  /// Ground-truth validity of node `n` (never wrong; used by inference
  /// soundness tests and the OffLine algorithm).
  bool TrueValid(const Lattice& lattice, NodeId n) const {
    size_t col = lattice.target_col();
    ValueId want = lattice.target_value();
    return lattice.affected(n).AllOf(
        [&](size_t r) { return clean_->cell(r, col) == want; });
  }

  /// An answer plus whether it consumed user capacity. The base oracle
  /// always bills; subclasses (e.g. master-data backed, Appendix B) answer
  /// some questions for free from an external source.
  struct Answered {
    bool valid = false;
    bool billed = true;
  };

  virtual Answered AnswerEx(const Lattice& lattice, NodeId n) {
    return {AskHuman(lattice, n), true};
  }

  /// The user's answer, possibly mistaken (always billed).
  bool Answer(const Lattice& lattice, NodeId n) {
    return AnswerEx(lattice, n).valid;
  }

  size_t questions() const { return questions_; }
  const Table* clean() const { return clean_; }

 protected:
  /// Simulates the human: ground truth flipped with the mistake rate.
  bool AskHuman(const Lattice& lattice, NodeId n) {
    ++questions_;
    bool truth = TrueValid(lattice, n);
    if (mistake_prob_ > 0.0 && rng_.NextBool(mistake_prob_)) return !truth;
    return truth;
  }

  /// Consumes the one mistake draw an AskHuman answer would have made,
  /// without answering. Subclasses that answer from an external source
  /// (client-scripted verdicts) call this so the RNG stream stays aligned
  /// with the fallback path: crash-recovery replay re-answers those
  /// questions through AskHuman (the journaled verdict overrides the
  /// result) and must observe the same stream the original run left
  /// behind.
  void AlignMistakeDraw() {
    if (mistake_prob_ > 0.0) rng_.NextBool(mistake_prob_);
  }

 private:
  const Table* clean_;
  double mistake_prob_;
  Rng rng_;
  size_t questions_ = 0;
};

}  // namespace falcon

#endif  // FALCON_CORE_ORACLE_H_
