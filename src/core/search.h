// Search framework: the per-update interaction loop over one lattice.
// LatticeSearchContext mediates every user question — enforcing the budget,
// redirecting questions to closed-rule-set representatives, applying
// validated queries immediately (workflow step 3), and running the lattice
// inference rules — so individual algorithms only decide *which* node to
// ask next.
//
// Lattices materialize lazily (see lattice.h): algorithms batch each
// frontier they are about to rank through Lattice::EnsureCounts before
// filtering on affected counts, so the counts come from parallel fused
// AndCount kernels instead of per-node ancestor-chain walks. Batching is a
// scheduling choice only — every observable (questions asked, answers,
// applied repairs) is bit-identical to the serial and to the eager path.
#ifndef FALCON_CORE_SEARCH_H_
#define FALCON_CORE_SEARCH_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/lattice.h"
#include "core/oracle.h"
#include "core/repair_log.h"
#include "core/rule_history.h"
#include "core/session_journal.h"
#include "profiling/correlation.h"
#include "relational/table.h"

namespace falcon {

/// Tunables shared by the search algorithms.
struct SearchTuning {
  /// Dive: number of consecutive wrong jumps before restarting on nodes not
  /// linked to any verified node (the paper's d; best value 3, Fig. 6b).
  size_t dive_depth = 3;
  /// CoDive: half-width of the correlation re-ranking window around the
  /// binary-jump position (the paper's w; best value 3, Fig. 6a).
  size_t codive_window = 3;
  /// Seed for randomized strategies (Ducc's walk).
  uint64_t seed = 7;
  /// Binary-jump target (Section 4.2.1). The paper settles on the
  /// log-scale target ceil(log2(lo+hi)) after arguing the median is overly
  /// optimistic; the geometric mean (the log-space midpoint) is a third
  /// natural reading kept as an ablation.
  enum class JumpTarget { kLogScale, kMedian, kGeometric };
  JumpTarget jump_target = JumpTarget::kLogScale;
};

/// Accumulates timing/counters across a cleaning run (filled by the session
/// driver and the context).
struct SearchStats {
  double maintain_ms = 0.0;   ///< Incremental (or naive) maintenance time.
  size_t applies = 0;         ///< Queries executed.
  size_t cells_changed = 0;   ///< Cells written by executed queries.
};

/// One lattice's interactive episode.
class LatticeSearchContext {
 public:
  /// `on_apply(changed_rows, col)` lets the session driver update its dirty
  /// worklist after each executed query. `profiler` may be null (Dive and
  /// one-hop algorithms don't need correlations).
  LatticeSearchContext(Lattice* lattice, Table* dirty, UserOracle* oracle,
                       size_t budget, bool use_closed_sets,
                       bool naive_maintenance, CordsProfiler* profiler,
                       SearchStats* stats,
                       std::function<void(const RowSet&, size_t)> on_apply);

  Lattice& lattice() { return *lattice_; }
  const SearchTuning& tuning() const { return tuning_; }
  void set_tuning(const SearchTuning& t) { tuning_ = t; }

  /// False once the budget is spent — or once an error (injected fault,
  /// journal I/O failure, oracle outage) latched into status(). Algorithms
  /// loop on BudgetLeft()/Ask-nullopt, so a sticky error quenches every
  /// strategy without per-algorithm error handling.
  bool BudgetLeft() const { return status_.ok() && answers_used_ < budget_; }
  size_t answers_used() const { return answers_used_; }
  size_t budget() const { return budget_; }

  /// First error the episode hit (Ok while healthy). Checked by the session
  /// driver after the algorithm returns; sticky — once set, BudgetLeft is
  /// false and Ask/ApplyValid are no-ops.
  const Status& status() const { return status_; }

  /// Result of one user question.
  struct AskResult {
    NodeId asked;  ///< The node actually verified (set representative).
    bool valid;
  };

  /// Asks the user about `n` (redirected to its closed-set representative
  /// when enabled). On a valid answer the query is applied immediately and
  /// the lattice maintained. Returns nullopt when the budget is exhausted.
  std::optional<AskResult> Ask(NodeId n);

  /// Ground-truth validity at zero interaction cost (OffLine only).
  bool TrueValid(NodeId n) const { return oracle_->TrueValid(*lattice_, n); }

  /// Applies a node known (or assumed) valid without asking — used by the
  /// OffLine algorithm and by the session's fallback single-cell fix.
  RowSet ApplyValid(NodeId n);

  /// cor(attr(n), target attribute) for CoDive scoring; 0 without profiler.
  double Correlation(NodeId n);

  /// Cross-update rule-shape prior (1.0 without history; see RuleHistory).
  double HistoryBoost(NodeId n) const;

  /// Nodes explicitly verified by the user in this episode.
  const std::vector<NodeId>& verified() const { return verified_; }

  /// Optional cross-update hooks, set by the session driver.
  void set_rule_history(RuleHistory* history) { history_ = history; }
  void set_repair_log(RepairLog* log) { log_ = log; }

  /// Write-ahead journal hook. Called with each kAnswer/kApply record
  /// *before* its effect is taken; the hook either appends it (live) or
  /// matches it against the journal cursor and rewrites it to the
  /// journaled, authoritative version (replay). A failed hook latches into
  /// status() and stops the episode.
  using JournalHook = std::function<Status(JournalRecord*)>;
  void set_journal_hook(JournalHook hook) { journal_hook_ = std::move(hook); }

 private:
  std::vector<size_t> NodeCols(NodeId n) const;

  Lattice* lattice_;
  Table* dirty_;
  UserOracle* oracle_;
  size_t budget_;
  bool use_closed_sets_;
  bool naive_maintenance_;
  CordsProfiler* profiler_;
  SearchStats* stats_;
  std::function<void(const RowSet&, size_t)> on_apply_;
  SearchTuning tuning_;
  RuleHistory* history_ = nullptr;
  RepairLog* log_ = nullptr;
  JournalHook journal_hook_;
  Status status_ = Status::Ok();
  size_t answers_used_ = 0;
  std::vector<NodeId> verified_;
};

/// Strategy interface. One instance persists across a whole cleaning run
/// (ActiveLearning accumulates training data across sessions); Run is
/// invoked once per user update with a fresh lattice.
class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;
  virtual std::string name() const = 0;

  /// Called before each session's lattice episode with the session index
  /// (number of user updates so far).
  virtual void OnSessionStart(size_t /*session_index*/) {}

  /// Asks questions through `ctx` until the budget is spent or the
  /// algorithm has nothing useful left to ask.
  virtual void Run(LatticeSearchContext& ctx) = 0;
};

/// Built-in strategies.
enum class SearchKind { kBfs, kDfs, kDucc, kDive, kCoDive, kOffline };

const char* SearchKindName(SearchKind kind);
std::unique_ptr<SearchAlgorithm> MakeSearchAlgorithm(SearchKind kind);

}  // namespace falcon

#endif  // FALCON_CORE_SEARCH_H_
