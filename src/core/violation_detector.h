// ViolationDetector: suggests suspicious cells without ground truth. The
// paper's workflow step ① ("the user examines the data and provides a
// repair") presumes the user can find errors; this component automates the
// examination by mining approximate FDs from the dirty instance and
// flagging minority cells — rows whose RHS value disagrees with the
// (dominant) consensus of their LHS group, together with the consensus as
// a suggested repair.
//
// Combined with a CleaningSession this yields a fully
// ground-truth-free loop: detect → user repairs a flagged cell → FALCON
// generalizes (see examples/falcon_cli.cc `detect`).
#ifndef FALCON_CORE_VIOLATION_DETECTOR_H_
#define FALCON_CORE_VIOLATION_DETECTOR_H_

#include <string>
#include <vector>

#include "profiling/fd_discovery.h"
#include "relational/table.h"

namespace falcon {

/// One flagged cell with the evidence behind it.
struct Suspect {
  uint32_t row = 0;
  size_t col = 0;
  ValueId current = kNullValueId;
  /// Consensus value of the cell's LHS group (the suggested repair).
  ValueId suggested = kNullValueId;
  /// The dependency whose group the cell violates.
  size_t fd_index = 0;
  /// Consensus strength: agreeing rows / group size (higher = stronger
  /// evidence the flagged cell is wrong); 0 when the cell was blamed only
  /// as an LHS participant (then `suggested` is NULL too).
  double consensus = 0.0;
  /// Number of dependency violations implicating this cell.
  uint32_t blame = 0;
};

struct ViolationDetectorOptions {
  FdDiscoveryOptions discovery;
  /// Minimum fraction of the group agreeing on the consensus value for the
  /// minority cells to be flagged.
  double min_consensus = 0.7;
  /// Minimum group size: tiny groups cannot out-vote their minority.
  size_t min_group_rows = 3;
  /// Minimum violations implicating a cell before it is reported.
  uint32_t min_blame = 2;

  ViolationDetectorOptions() {
    // Dirty data: FDs hold only approximately, so discovery must tolerate
    // the violations we are hunting — but staying above ~0.9 keeps
    // incidental near-dependencies of the clean data from flooding the
    // report with false positives.
    discovery.min_confidence = 0.95;
  }
};

/// Result of a detection pass.
struct ViolationReport {
  std::vector<DiscoveredFd> fds;       ///< Dependencies mined and used.
  std::vector<Suspect> suspects;       ///< Flagged cells, strongest first.
};

/// Mines approximate FDs over `table` and flags group-minority cells.
/// A cell flagged by several dependencies appears once, with its highest
/// consensus.
ViolationReport DetectViolations(const Table& table,
                                 const ViolationDetectorOptions& options = {});

}  // namespace falcon

#endif  // FALCON_CORE_VIOLATION_DETECTOR_H_
