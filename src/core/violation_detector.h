// ViolationDetector: suggests suspicious cells without ground truth. The
// paper's workflow step ① ("the user examines the data and provides a
// repair") presumes the user can find errors; this component automates the
// examination by mining approximate FDs from the dirty instance and
// flagging minority cells — rows whose RHS value disagrees with the
// (dominant) consensus of their LHS group, together with the consensus as
// a suggested repair.
//
// Combined with a CleaningSession this yields a fully
// ground-truth-free loop: detect → user repairs a flagged cell → FALCON
// generalizes (see examples/falcon_cli.cc `detect`).
#ifndef FALCON_CORE_VIOLATION_DETECTOR_H_
#define FALCON_CORE_VIOLATION_DETECTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "profiling/fd_discovery.h"
#include "relational/table.h"

namespace falcon {

/// One flagged cell with the evidence behind it.
struct Suspect {
  uint32_t row = 0;
  size_t col = 0;
  ValueId current = kNullValueId;
  /// Consensus value of the cell's LHS group (the suggested repair).
  ValueId suggested = kNullValueId;
  /// The dependency whose group the cell violates.
  size_t fd_index = 0;
  /// Consensus strength: agreeing rows / group size (higher = stronger
  /// evidence the flagged cell is wrong); 0 when the cell was blamed only
  /// as an LHS participant (then `suggested` is NULL too).
  double consensus = 0.0;
  /// Number of dependency violations implicating this cell.
  uint32_t blame = 0;
};

struct ViolationDetectorOptions {
  FdDiscoveryOptions discovery;
  /// Minimum fraction of the group agreeing on the consensus value for the
  /// minority cells to be flagged.
  double min_consensus = 0.7;
  /// Minimum group size: tiny groups cannot out-vote their minority.
  size_t min_group_rows = 3;
  /// Minimum violations implicating a cell before it is reported.
  uint32_t min_blame = 2;

  ViolationDetectorOptions() {
    // Dirty data: FDs hold only approximately, so discovery must tolerate
    // the violations we are hunting — but staying above ~0.9 keeps
    // incidental near-dependencies of the clean data from flooding the
    // report with false positives.
    discovery.min_confidence = 0.95;
  }
};

/// Result of a detection pass.
struct ViolationReport {
  std::vector<DiscoveredFd> fds;       ///< Dependencies mined and used.
  std::vector<Suspect> suspects;       ///< Flagged cells, strongest first.
};

namespace violation_detail {

struct VecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= x;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

/// One LHS group of one dependency: member rows (ascending — rows are
/// folded in id order) and the exact tally of their RHS values. Shared by
/// the one-shot detector and the incremental append path so both derive
/// reports from identical state.
struct Group {
  std::vector<uint32_t> rows;
  std::unordered_map<ValueId, uint32_t> rhs_counts;
};
using GroupMap = std::unordered_map<std::vector<ValueId>, Group, VecHash>;

}  // namespace violation_detail

/// Mines approximate FDs over `table` and flags group-minority cells.
/// A cell flagged by several dependencies appears once, with its highest
/// consensus.
ViolationReport DetectViolations(const Table& table,
                                 const ViolationDetectorOptions& options = {});

/// The flagging passes alone, over a caller-supplied dependency set (no
/// mining). Deterministic in (table contents, fds, options) — the
/// incremental detector's append path is proven against this.
ViolationReport DetectWithFds(const Table& table,
                              std::vector<DiscoveredFd> fds,
                              const ViolationDetectorOptions& options = {});

/// Streaming-append violation detection: mines the dependency set once
/// (Full) and keeps per-FD group state — LHS-key → member rows plus RHS
/// value tallies — so a batch of appended rows folds in with O(batch × FDs)
/// group updates instead of an O(table × FDs) rescan. The report is then
/// re-derived from the updated tallies; only groups that actually violate
/// walk their member rows.
///
/// Contract: the FD set is FIXED at Full() — appended rows update group
/// membership under the mined dependencies but never re-mine. Reports are
/// exactly what DetectWithFds(table, fds) returns over the grown table.
/// In-place cell edits are outside this class — call Full() again.
class IncrementalViolationDetector {
 public:
  explicit IncrementalViolationDetector(ViolationDetectorOptions options = {})
      : options_(std::move(options)) {}

  /// Mines FDs over `table`, (re)builds the group state from scratch, and
  /// derives the report. O(table × FDs).
  const ViolationReport& Full(const Table& table);

  /// `table` grew from `old_rows` rows by appending. Folds the new rows
  /// into every FD's groups and re-derives the report from the tallies.
  const ViolationReport& ApplyAppend(const Table& table, size_t old_rows);

  const ViolationReport& report() const { return report_; }
  const std::vector<DiscoveredFd>& fds() const { return fds_; }

 private:
  /// Folds rows [begin, end) of `table` into every FD's group map.
  void FoldRows(const Table& table, size_t begin, size_t end);

  ViolationDetectorOptions options_;
  std::vector<DiscoveredFd> fds_;
  /// One map per mined dependency.
  std::vector<violation_detail::GroupMap> groups_;
  ViolationReport report_;
};

}  // namespace falcon

#endif  // FALCON_CORE_VIOLATION_DETECTOR_H_
