// CleaningSession: the full FALCON workflow (Fig. 1) driven by a simulated
// user until the dirty instance converges to the clean one.
//
// Loop: ① the user repairs one dirty cell (a user update, U); ② FALCON
// builds the query lattice over the top-k correlated attributes and a
// search algorithm asks up to B validity questions (user answers, A),
// applying each validated query immediately; ③ if no applied query fixed
// the user's own cell, the single-cell update (the lattice's top node) is
// executed. The loop ends when no dirty cells remain.
//
// Metrics follow Section 6: T_C = U + A and benefit BNF = 1 − T_C/|errors|.
#ifndef FALCON_CORE_SESSION_H_
#define FALCON_CORE_SESSION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/search.h"
#include "core/session_journal.h"
#include "core/violation_detector.h"
#include "profiling/correlation.h"
#include "relational/posting_index.h"
#include "relational/table.h"

namespace falcon {

/// Configuration of one cleaning run.
struct SessionOptions {
  /// B: maximum user answers per update.
  size_t budget = 3;
  /// Total lattice attributes (the repaired attribute + top-(k−1)
  /// correlated attributes; Section 5.1.1 partial materialization).
  size_t lattice_attrs = 7;
  /// Closed rule sets optimization (Section 5.2).
  bool use_closed_sets = true;
  /// Dive/CoDive tunables (d, w) and Ducc seed.
  SearchTuning tuning;
  /// Probability a validity answer is flipped (Exp-5).
  double question_mistake_prob = 0.0;
  /// Probability a user update writes a wrong value (Exp-5, case i). Each
  /// cell suffers at most one wrong update, mirroring the paper's cycle
  /// notification.
  double update_mistake_prob = 0.0;
  /// Lattice construction toggles (naive init, master-data variant).
  LatticeOptions lattice;
  /// Rebuild all affected sets after each applied rule instead of the
  /// incremental maintenance (Fig. 8a strawman).
  bool naive_maintenance = false;
  /// Row sample used by the CORDS profiler (0 = full table).
  size_t profile_sample_rows = 5000;
  /// Cache predicate posting bitmaps across lattices.
  bool use_posting_index = true;
  /// Delta-maintain the cached postings across applied repairs (each write
  /// patches the old/new value's bitmaps in place), so the cache survives
  /// the whole session. Off reverts to invalidate-and-rescan of the
  /// repaired column after every applied rule.
  bool posting_delta = true;
  /// Posting-cache byte cap (0 = unbounded). Least-recently-used bitmaps
  /// are evicted between lattice episodes so million-row tables don't
  /// hoard memory.
  size_t posting_budget_bytes = 0;
  /// Store postings, memoized intersections, and lattice bitmaps in the
  /// density-adaptive compressed representation (Roaring-style containers
  /// with exact byte accounting). Bit-identical questions/answers/metrics/
  /// final tables to dense mode — only resident bytes change, so far more
  /// of the posting universe fits in posting_budget_bytes. Off restores
  /// the all-dense A/B baseline.
  bool compressed_rowsets = true;
  /// Memoize pairwise predicate intersections across the session's
  /// lattices (lazy materialization only): successive repairs rebuild
  /// lattices over recurring predicate pairs, and the memo turns their
  /// two-attribute views into one cached AND. Patched exactly on every
  /// applied rule and manual fix; invalidated on retraction.
  bool use_intersection_memo = true;
  /// Intersection-memo byte cap (0 = unbounded), LRU-enforced at insert.
  size_t intersection_memo_budget_bytes = 8u << 20;
  /// Remember validated/invalidated rule shapes across updates and bias
  /// CoDive toward historically fruitful attribute sets (the paper's §8
  /// future-work direction). Off by default to match the paper's setup.
  bool use_rule_history = false;
  uint64_t seed = 1234;
  /// Safety valve: abort after this many user updates (0 = 10·|errors|).
  size_t max_updates = 0;
  /// Optional master relation (Appendix B): rule patterns the master
  /// covers are validated or refuted for free instead of consuming user
  /// capacity. Must share the dirty table's ValuePool; attributes align by
  /// name. Non-owning.
  const Table* master = nullptr;
  /// Detector-driven mode: instead of an omniscient dirty-cell worklist,
  /// the user "examines the data" through the FD-violation detector and
  /// repairs flagged cells; the run ends when detection comes up dry.
  /// Residual errors the detector cannot see stay unrepaired
  /// (converged=false reports them honestly).
  bool detector_driven = false;
  /// Detector configuration for detector_driven mode.
  ViolationDetectorOptions detector;
  /// Crash-safety write-ahead journal (empty = off). Run() starts a fresh
  /// journal here; Recover() replays an existing one after a crash. Every
  /// oracle answer, user update, applied repair (with before-images), and
  /// retraction is appended before its table writes take effect.
  std::string journal_path;
  /// Externally-owned oracle replacing the internally-built simulated user
  /// (the service layer passes a ScriptedOracle fed by client `answer`
  /// verdicts). Must outlive the session; `master` is ignored when set.
  /// Constructed as UserOracle(clean, question_mistake_prob, seed + 1) it
  /// reproduces the internal oracle bit-for-bit.
  UserOracle* oracle = nullptr;
  /// Process-wide read cache over the base snapshot this session's dirty
  /// table was cloned from (non-owning; must outlive the session). Only
  /// attached when its snapshot id equals base_snapshot_id — the posting
  /// index and intersection memo then probe the shared tier for columns
  /// this session has not mutated. Pure acceleration: questions, answers,
  /// repairs, and the final table are bit-identical with or without it
  /// (only timing and hit/materialization counters change).
  SharedBaseCache* shared_cache = nullptr;
  /// CleaningWorkload::snapshot_id of the base (0 = never attach).
  uint64_t base_snapshot_id = 0;
  /// A/B strawman for AppendBatch: instead of O(batch) incremental
  /// maintenance (posting Resize+fold, memo extension), drop every cached
  /// posting bitmap and memoized intersection so the next lattice rebuilds
  /// them from full table scans. Identical questions/answers/repairs —
  /// only timing changes. This is the "rebuild" leg of the Fig. 8
  /// append-vs-rebuild comparison.
  bool append_rebuild = false;
};

/// Outcome of a cleaning run.
struct SessionMetrics {
  size_t user_updates = 0;        ///< U.
  size_t user_answers = 0;        ///< A (billed to the user).
  size_t master_answers = 0;      ///< Questions the master data answered.
  size_t initial_errors = 0;      ///< |Q(T)|: dirty cells at start.
  size_t cells_repaired = 0;      ///< Cells moved to their clean value.
  size_t queries_applied = 0;     ///< Validated rules executed.
  bool converged = false;         ///< Instance equals clean at the end.

  double lattice_build_ms = 0.0;
  double lattice_maintain_ms = 0.0;
  size_t lattices_built = 0;

  // Posting-index behaviour over the run (see PostingIndexStats).
  size_t posting_hits = 0;
  size_t posting_misses = 0;
  size_t posting_delta_rows = 0;
  size_t posting_evictions = 0;
  double posting_scan_ms = 0.0;   ///< Table-scan time filling the cache.
  double posting_delta_ms = 0.0;  ///< Time patching bitmaps in place.

  // Shared base tier (sessions opened with SessionOptions::shared_cache).
  size_t posting_shared_hits = 0;    ///< Probes served by the shared tier.
  size_t posting_shared_misses = 0;  ///< Eligible probes that scanned.
  /// Portion of posting_scan_ms spent building base postings — the cost
  /// the shared tier amortizes (warm sessions pay ~0 of it).
  double posting_base_scan_ms = 0.0;
  /// Heap bytes of shared-tier bitmaps this session has pinned. Resident
  /// once process-wide — report alongside, never add to,
  /// posting_resident_bytes (which stays private-tier only).
  size_t posting_shared_bytes = 0;

  // Posting storage at the end of the run (see PostingStorageStats).
  size_t posting_entries = 0;         ///< Cached (column, value) bitmaps.
  size_t posting_resident_bytes = 0;  ///< Exact heap bytes of cached bitmaps.
  size_t posting_dense_bytes = 0;     ///< Dense-equivalent bytes of the same.
  double posting_compression = 1.0;   ///< dense/resident (>1 ⇒ winning).
  size_t posting_array_containers = 0;
  size_t posting_bitmap_containers = 0;
  size_t posting_run_containers = 0;

  // Lazy lattice materialization over the run (see Lattice::LazyStats).
  size_t nodes_materialized = 0;   ///< Node bitmaps actually computed.
  size_t nodes_total = 0;          ///< Σ 2^k across built lattices.
  size_t fused_count_calls = 0;    ///< Counts served by AndCount alone.
  size_t lattice_memo_hits = 0;    ///< IntersectionMemo private-tier hits.
  size_t lattice_memo_misses = 0;  ///< IntersectionMemo probes that missed.
  size_t lattice_memo_admitted = 0;     ///< Pairs admitted (second touch).
  size_t lattice_memo_first_touch_skips = 0;  ///< Puts deferred to probation.
  size_t lattice_memo_shared_hits = 0;    ///< Memo Finds served shared.
  size_t lattice_memo_shared_misses = 0;  ///< Eligible Finds that missed.

  // Streaming append (AppendBatch) over the run.
  size_t rows_appended = 0;        ///< Rows added after Start().
  size_t append_batches = 0;       ///< AppendBatch calls that added rows.
  /// Time spent extending cached state (posting bitmaps, memoized
  /// intersections, worklist diff) for appended rows — the cost the
  /// incremental path keeps at O(batch) and append_rebuild re-pays as
  /// full-table scans inside the next lattice build instead.
  double append_maintain_ms = 0.0;
  /// rows_appended / total wall-clock seconds inside AppendBatch.
  double ingest_rows_per_s = 0.0;

  size_t TotalCost() const { return user_updates + user_answers; }
  double Benefit() const {
    return initial_errors == 0
               ? 0.0
               : 1.0 - static_cast<double>(TotalCost()) /
                           static_cast<double>(initial_errors);
  }

  /// Derived hit rates in [0, 1] (0.0 when there were no probes), so
  /// dashboards and the status/ping verbs never recompute them from raw
  /// counter pairs by hand.
  static double Rate(size_t hits, size_t total) {
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
  /// All posting probes served from some cache tier (private or shared).
  double PostingHitRate() const {
    return Rate(posting_hits + posting_shared_hits,
                posting_hits + posting_misses + posting_shared_hits +
                    posting_shared_misses);
  }
  /// Shared-tier-eligible posting probes that hit the shared tier.
  double PostingSharedHitRate() const {
    return Rate(posting_shared_hits,
                posting_shared_hits + posting_shared_misses);
  }
  /// All memo Finds served from some tier.
  double MemoHitRate() const {
    return Rate(lattice_memo_hits + lattice_memo_shared_hits,
                lattice_memo_hits + lattice_memo_misses +
                    lattice_memo_shared_hits);
  }
  /// Shared-tier-eligible memo Finds that hit the shared tier.
  double MemoSharedHitRate() const {
    return Rate(lattice_memo_shared_hits,
                lattice_memo_shared_hits + lattice_memo_shared_misses);
  }
};

/// Runs one cleaning workflow to convergence.
class CleaningSession {
 public:
  /// `clean` is the ground truth (shared ValuePool with `dirty` required);
  /// `dirty` is mutated in place. `algorithm` persists across updates.
  CleaningSession(const Table* clean, Table* dirty,
                  SearchAlgorithm* algorithm, SessionOptions options);

  /// Executes the workflow; returns metrics (converged=false if the
  /// safety-valve limit was hit). With options.journal_path set, starts a
  /// fresh write-ahead journal; an injected or real fault surfaces as an
  /// error Status, after which Recover() on a new session (same
  /// clean/dirty/options) resumes.
  StatusOr<SessionMetrics> Run();

  /// Crash recovery: reads the journal at options.journal_path (tolerating
  /// a torn tail), rolls the dirty table back to the session's initial
  /// state via before-images, then re-runs the workflow consuming the
  /// journaled interactions as authoritative — reproducing the original
  /// run bit-for-bit up to the crash point and continuing live past it.
  /// With no journal on disk this is a plain Run().
  StatusOr<SessionMetrics> Recover();

  /// Daemon-restart recovery for interactively-stepped (service) sessions:
  /// like Recover(), but stops at the end of the journaled prefix instead
  /// of running to convergence — an episode the crash interrupted midway is
  /// completed deterministically, then control returns so the client
  /// resumes stepping with RunSteps(). With no journal on disk the session
  /// is started fresh (journal header written) without running an episode.
  StatusOr<SessionMetrics> RecoverToReplayEnd();

  /// Retracts a mistakenly-validated rule: undoes repair-log entry `i`
  /// (before-images back into the table, posting bitmaps reversed), and
  /// re-poses the affected cells on the worklist. Refuses with
  /// FailedPrecondition when a later repair overlaps entry i's cells
  /// (retract newest-first). Call after Run/Recover returned; follow with
  /// Continue() to re-clean the re-dirtied region.
  Status RetractRule(size_t i);

  /// Resumes the main loop after RetractRule (or a partial run): drains
  /// the worklist and returns the updated cumulative metrics.
  StatusOr<SessionMetrics> Continue();

  /// Stepwise (service) execution: starts the session on the first call,
  /// then runs at most `max_episodes` user-update episodes (0 = run to
  /// convergence). State persists across calls, so N calls of one episode
  /// reproduce Run() bit-for-bit; finished() reports completion.
  StatusOr<SessionMetrics> RunSteps(size_t max_episodes);

  /// Queues an externally-supplied user update (service `update_cell`):
  /// the next episode repairs (row, col) toward `value` — journaled and
  /// billed like a simulated update, but never mistake-perturbed — instead
  /// of popping the internal worklist.
  Status SubmitUpdate(uint32_t row, uint32_t col, std::string value);

  /// Streaming append: the dirty table grows by `dirty_chunk` (column-major
  /// interned-id columns, one inner vector per attribute, all the same
  /// length). The caller must have already appended the matching
  /// ground-truth rows to the clean table — on entry
  /// clean.num_rows == dirty.num_rows + batch.
  ///
  /// All session state is maintained in O(batch), not O(table): posting
  /// bitmaps and memoized intersections grow their universes and fold in
  /// only the new rows (PostingIndex::ApplyAppend/IntersectionMemo::
  /// ApplyAppend), and the worklist gains exactly the new rows' dirty
  /// cells. Under options.append_rebuild the cached state is dropped
  /// instead (the Fig. 8 rebuild strawman). The safety valve re-arms for
  /// the grown error count. Call between episodes (after Run/RunSteps
  /// returned); FailedPrecondition before Start, during journaled runs, or
  /// during replay — appends are outside the crash-safety envelope.
  Status AppendBatch(const std::vector<std::vector<ValueId>>& dirty_chunk);

  /// True once the main loop ran to its natural end (converged, detector
  /// came up dry, or the safety valve fired). Retractions and submitted
  /// updates re-open a finished session.
  bool finished() const { return finished_; }

  /// Metrics accumulated so far (valid after any Run*/Continue call).
  const SessionMetrics& metrics() const { return metrics_; }

  /// Cells queued for repair: internal worklist + submitted updates.
  size_t pending_cells() const {
    return worklist_.size() + external_updates_.size();
  }

  /// Journal of every repair Run executed (rules and manual fixes), with
  /// before-images; supports UndoLast against the dirty table.
  const RepairLog& log() const { return log_; }
  RepairLog& mutable_log() { return log_; }

  /// Cross-update rule-shape memory (populated when
  /// options.use_rule_history is set).
  const RuleHistory& history() const { return history_; }

 private:
  /// Builds all run state over the *current* dirty table (which recovery
  /// has already rolled back to the initial instance): worklist, profiler,
  /// oracle, posting index, RNGs. `fresh` truncates/starts the journal;
  /// recovery instead opens it for append after the replayed prefix.
  Status Start(bool fresh);

  /// The interactive loop (workflow steps ①–③ per user update), shared by
  /// Run/Recover/Continue/RunSteps; `max_episodes` 0 runs to the natural
  /// end. During recovery it consumes replayed records — including kRetract
  /// records re-executed between passes.
  StatusOr<SessionMetrics> MainLoop(size_t max_episodes);

  /// The oracle answering this session's questions: the external override
  /// when configured, else the internally-built simulated user.
  UserOracle* ActiveOracle() {
    return options_.oracle != nullptr ? options_.oracle : oracle_.get();
  }

  /// Journal-or-replay gate (see LatticeSearchContext::JournalHook): live
  /// appends `*r`; replay verifies it against the cursor and rewrites it to
  /// the journaled version.
  Status Emit(JournalRecord* r);
  bool Replaying() const { return replay_pos_ < replay_.size(); }

  /// Shared body of Recover()/RecoverToReplayEnd().
  StatusOr<SessionMetrics> RecoverImpl(bool stop_after_replay);

  size_t RefillFromDetector();
  void ExportPostingStats();

  const Table* clean_;
  Table* dirty_;
  SearchAlgorithm* algorithm_;
  SessionOptions options_;
  RepairLog log_;
  RuleHistory history_;

  // Run state (valid between Start and the end of the session).
  bool started_ = false;
  bool finished_ = false;
  SessionMetrics metrics_;
  size_t max_updates_ = 0;
  std::deque<std::pair<uint32_t, uint32_t>> worklist_;
  struct ExternalUpdate {
    uint32_t row;
    uint32_t col;
    std::string value;
  };
  std::deque<ExternalUpdate> external_updates_;
  std::unique_ptr<UserOracle> oracle_;
  class MasterBackedOracle* master_oracle_ = nullptr;
  std::unique_ptr<CordsProfiler> profiler_;
  std::unique_ptr<PostingIndex> posting_index_;
  std::unique_ptr<IntersectionMemo> intersection_memo_;
  LatticeOptions lattice_options_;
  Rng update_rng_{0};
  std::unordered_set<uint64_t> wrong_updated_;
  /// Cumulative wall-clock ms inside AppendBatch (ingest_rows_per_s).
  double append_ingest_ms_ = 0.0;

  // Crash-safety state.
  std::unique_ptr<SessionJournal> journal_;
  std::vector<JournalRecord> replay_;  ///< Records being replayed.
  size_t replay_pos_ = 0;
  /// RecoverToReplayEnd mode: MainLoop returns at the first episode
  /// boundary past the replayed prefix instead of continuing live.
  bool stop_after_replay_ = false;
};

/// Convenience: run `kind` over a fresh copy of `dirty`.
StatusOr<SessionMetrics> RunCleaning(const Table& clean, const Table& dirty,
                                     SearchKind kind,
                                     const SessionOptions& options = {});

}  // namespace falcon

#endif  // FALCON_CORE_SESSION_H_
