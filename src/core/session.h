// CleaningSession: the full FALCON workflow (Fig. 1) driven by a simulated
// user until the dirty instance converges to the clean one.
//
// Loop: ① the user repairs one dirty cell (a user update, U); ② FALCON
// builds the query lattice over the top-k correlated attributes and a
// search algorithm asks up to B validity questions (user answers, A),
// applying each validated query immediately; ③ if no applied query fixed
// the user's own cell, the single-cell update (the lattice's top node) is
// executed. The loop ends when no dirty cells remain.
//
// Metrics follow Section 6: T_C = U + A and benefit BNF = 1 − T_C/|errors|.
#ifndef FALCON_CORE_SESSION_H_
#define FALCON_CORE_SESSION_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "core/search.h"
#include "core/violation_detector.h"
#include "profiling/correlation.h"
#include "relational/table.h"

namespace falcon {

/// Configuration of one cleaning run.
struct SessionOptions {
  /// B: maximum user answers per update.
  size_t budget = 3;
  /// Total lattice attributes (the repaired attribute + top-(k−1)
  /// correlated attributes; Section 5.1.1 partial materialization).
  size_t lattice_attrs = 7;
  /// Closed rule sets optimization (Section 5.2).
  bool use_closed_sets = true;
  /// Dive/CoDive tunables (d, w) and Ducc seed.
  SearchTuning tuning;
  /// Probability a validity answer is flipped (Exp-5).
  double question_mistake_prob = 0.0;
  /// Probability a user update writes a wrong value (Exp-5, case i). Each
  /// cell suffers at most one wrong update, mirroring the paper's cycle
  /// notification.
  double update_mistake_prob = 0.0;
  /// Lattice construction toggles (naive init, master-data variant).
  LatticeOptions lattice;
  /// Rebuild all affected sets after each applied rule instead of the
  /// incremental maintenance (Fig. 8a strawman).
  bool naive_maintenance = false;
  /// Row sample used by the CORDS profiler (0 = full table).
  size_t profile_sample_rows = 5000;
  /// Cache predicate posting bitmaps across lattices.
  bool use_posting_index = true;
  /// Delta-maintain the cached postings across applied repairs (each write
  /// patches the old/new value's bitmaps in place), so the cache survives
  /// the whole session. Off reverts to invalidate-and-rescan of the
  /// repaired column after every applied rule.
  bool posting_delta = true;
  /// Posting-cache byte cap (0 = unbounded). Least-recently-used bitmaps
  /// are evicted between lattice episodes so million-row tables don't
  /// hoard memory.
  size_t posting_budget_bytes = 0;
  /// Remember validated/invalidated rule shapes across updates and bias
  /// CoDive toward historically fruitful attribute sets (the paper's §8
  /// future-work direction). Off by default to match the paper's setup.
  bool use_rule_history = false;
  uint64_t seed = 1234;
  /// Safety valve: abort after this many user updates (0 = 10·|errors|).
  size_t max_updates = 0;
  /// Optional master relation (Appendix B): rule patterns the master
  /// covers are validated or refuted for free instead of consuming user
  /// capacity. Must share the dirty table's ValuePool; attributes align by
  /// name. Non-owning.
  const Table* master = nullptr;
  /// Detector-driven mode: instead of an omniscient dirty-cell worklist,
  /// the user "examines the data" through the FD-violation detector and
  /// repairs flagged cells; the run ends when detection comes up dry.
  /// Residual errors the detector cannot see stay unrepaired
  /// (converged=false reports them honestly).
  bool detector_driven = false;
  /// Detector configuration for detector_driven mode.
  ViolationDetectorOptions detector;
};

/// Outcome of a cleaning run.
struct SessionMetrics {
  size_t user_updates = 0;        ///< U.
  size_t user_answers = 0;        ///< A (billed to the user).
  size_t master_answers = 0;      ///< Questions the master data answered.
  size_t initial_errors = 0;      ///< |Q(T)|: dirty cells at start.
  size_t cells_repaired = 0;      ///< Cells moved to their clean value.
  size_t queries_applied = 0;     ///< Validated rules executed.
  bool converged = false;         ///< Instance equals clean at the end.

  double lattice_build_ms = 0.0;
  double lattice_maintain_ms = 0.0;
  size_t lattices_built = 0;

  // Posting-index behaviour over the run (see PostingIndexStats).
  size_t posting_hits = 0;
  size_t posting_misses = 0;
  size_t posting_delta_rows = 0;
  size_t posting_evictions = 0;
  double posting_scan_ms = 0.0;   ///< Table-scan time filling the cache.
  double posting_delta_ms = 0.0;  ///< Time patching bitmaps in place.

  size_t TotalCost() const { return user_updates + user_answers; }
  double Benefit() const {
    return initial_errors == 0
               ? 0.0
               : 1.0 - static_cast<double>(TotalCost()) /
                           static_cast<double>(initial_errors);
  }
};

/// Runs one cleaning workflow to convergence.
class CleaningSession {
 public:
  /// `clean` is the ground truth (shared ValuePool with `dirty` required);
  /// `dirty` is mutated in place. `algorithm` persists across updates.
  CleaningSession(const Table* clean, Table* dirty,
                  SearchAlgorithm* algorithm, SessionOptions options);

  /// Executes the workflow; returns metrics (converged=false if the
  /// safety-valve limit was hit).
  StatusOr<SessionMetrics> Run();

  /// Journal of every repair Run executed (rules and manual fixes), with
  /// before-images; supports UndoLast against the dirty table.
  const RepairLog& log() const { return log_; }
  RepairLog& mutable_log() { return log_; }

  /// Cross-update rule-shape memory (populated when
  /// options.use_rule_history is set).
  const RuleHistory& history() const { return history_; }

 private:
  const Table* clean_;
  Table* dirty_;
  SearchAlgorithm* algorithm_;
  SessionOptions options_;
  RepairLog log_;
  RuleHistory history_;
};

/// Convenience: run `kind` over a fresh copy of `dirty`.
StatusOr<SessionMetrics> RunCleaning(const Table& clean, const Table& dirty,
                                     SearchKind kind,
                                     const SessionOptions& options = {});

}  // namespace falcon

#endif  // FALCON_CORE_SESSION_H_
