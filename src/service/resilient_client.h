// ResilientClient: a ServiceClient wrapper that survives daemon crashes,
// dropped connections, and overload rejections.
//
//   - Per-request deadlines: a stalled or dead server turns into
//     kDeadlineExceeded instead of a hang.
//   - Automatic reconnect + resume: on any transport failure the client
//     reconnects (capped exponential backoff with deterministic jitter)
//     and, when it had a session, re-attaches it with
//     `open_session {"resume": id}` — which also works after a daemon
//     restart, where the server replays the session's journal first.
//   - Idempotent retries: mutating verbs (step, update_cell, answer,
//     retract) are stamped with a per-session `seq`. A retry after a lost
//     response re-sends the same seq; the server answers from its
//     idempotency window instead of re-applying. After a daemon restart
//     (window reset) the resume response's `last_seq` re-syncs the
//     counter: an in-flight seq ≤ last_seq + 1 is retried as-is, a gapped
//     one is re-stamped to last_seq + 1.
//   - Overload rejections (kUnavailable) honour the server's
//     `retry_after_ms` hint.
//
// `open_session` (fresh, not resume) is NOT idempotent: a response lost
// after execution can leak one server-side session on retry. The protocol
// protects mutations, not creations.
//
// Not thread-safe; one instance per analyst thread, like ServiceClient.
#ifndef FALCON_SERVICE_RESILIENT_CLIENT_H_
#define FALCON_SERVICE_RESILIENT_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"
#include "service/client.h"
#include "service/session_manager.h"

namespace falcon {

struct ResilientClientOptions {
  /// Unix socket path; takes precedence over tcp_port when non-empty.
  std::string unix_path;
  uint16_t tcp_port = 0;
  /// Per-request response deadline (0 = wait forever).
  int64_t deadline_ms = 30000;
  /// Attempts per logical request before giving up (connect + call).
  size_t max_attempts = 10;
  /// Exponential backoff between attempts: initial << attempt, capped,
  /// with deterministic jitter drawn from jitter_seed.
  int64_t backoff_initial_ms = 10;
  int64_t backoff_max_ms = 2000;
  uint64_t jitter_seed = 1;
};

class ResilientClient {
 public:
  explicit ResilientClient(ResilientClientOptions options);

  /// Opens a fresh session and remembers its id for resume/seq stamping.
  StatusOr<std::string> OpenSession(const SessionManager::OpenParams& params);

  /// Attaches to an existing session (live, evicted, or recoverable from
  /// its journal) and re-syncs the seq counter from the server.
  Status ResumeSession(const std::string& id);

  /// Mutating verbs — seq-stamped, retried idempotently. Each returns the
  /// full response object (status body for Step).
  StatusOr<JsonValue> Step(size_t episodes);
  StatusOr<JsonValue> UpdateCell(uint32_t row, uint32_t col,
                                 const std::string& value);
  StatusOr<JsonValue> Answer(bool valid);
  StatusOr<JsonValue> Retract(size_t repair_index);

  /// Read-only verbs — retried, not seq-stamped.
  StatusOr<JsonValue> Info();
  StatusOr<JsonValue> Ping();

  /// Clean close: deletes the server-side session and its journal.
  Status CloseSession();

  const std::string& session_id() const { return session_id_; }

  struct Stats {
    size_t connects = 0;    ///< Successful (re)connects.
    size_t resumes = 0;     ///< Successful session re-attachments.
    size_t retries = 0;     ///< Request attempts beyond the first.
    size_t seq_resyncs = 0; ///< Seq re-stamped after a server restart.
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Connects (if needed) and re-attaches the session (if it had one).
  Status EnsureConnected();

  /// The retry loop: stamps `seq` on mutating requests, reconnects and
  /// resumes on transport errors, backs off on kUnavailable, re-syncs seq
  /// after restarts. Terminal protocol failures return as error Status.
  StatusOr<JsonValue> CallResilient(JsonValue request, bool mutating);

  void Backoff(size_t attempt, int64_t server_hint_ms);

  ResilientClientOptions options_;
  std::optional<ServiceClient> client_;
  std::string session_id_;
  /// Next seq to stamp (1-based); re-synced from resume responses.
  uint64_t next_seq_ = 1;
  /// Server's last_seq from the most recent resume, pending consumption
  /// by the in-flight request's re-stamp check.
  std::optional<uint64_t> last_resume_seq_;
  Rng jitter_;
  Stats stats_;
};

}  // namespace falcon

#endif  // FALCON_SERVICE_RESILIENT_CLIENT_H_
