#include "service/resilient_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace falcon {
namespace {

/// Maps a protocol-level {"ok":false} response back to a typed Status.
Status ResponseToStatus(const JsonValue& r) {
  const std::string code = r.GetString("code", "?");
  const std::string msg = r.GetString("error");
  if (code == "NOT_FOUND") return Status::NotFound(msg);
  if (code == "INVALID_ARGUMENT") return Status::InvalidArgument(msg);
  if (code == "FAILED_PRECONDITION") return Status::FailedPrecondition(msg);
  if (code == "UNAVAILABLE") return Status::Unavailable(msg);
  if (code == "DEADLINE_EXCEEDED") return Status::DeadlineExceeded(msg);
  return Status::Internal(code + ": " + msg);
}

}  // namespace

ResilientClient::ResilientClient(ResilientClientOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {}

void ResilientClient::Backoff(size_t attempt, int64_t server_hint_ms) {
  int64_t base = options_.backoff_initial_ms
                 << std::min<size_t>(attempt, 10);
  base = std::min(base, options_.backoff_max_ms);
  if (server_hint_ms > 0) base = std::max(base, server_hint_ms);
  // Deterministic jitter in [base/2, base]: seeded, so a test's retry
  // schedule replays exactly, while concurrent clients (different seeds)
  // still de-synchronize.
  const int64_t lo = std::max<int64_t>(base / 2, 1);
  const int64_t sleep_ms = jitter_.NextInt(lo, std::max(base, lo));
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

Status ResilientClient::EnsureConnected() {
  if (client_.has_value()) return Status::Ok();
  StatusOr<ServiceClient> c =
      options_.unix_path.empty()
          ? ServiceClient::ConnectToTcp(options_.tcp_port)
          : ServiceClient::ConnectToUnix(options_.unix_path);
  FALCON_RETURN_IF_ERROR(c.status());
  client_.emplace(std::move(*c));
  client_->set_deadline(options_.deadline_ms);
  ++stats_.connects;
  if (session_id_.empty()) return Status::Ok();

  // Re-attach the session; after a daemon restart this triggers journal
  // recovery server-side, and the response's last_seq re-syncs us.
  JsonValue req = JsonValue::Object();
  req.Set("verb", "open_session");
  req.Set("resume", session_id_);
  StatusOr<JsonValue> resp = client_->Call(req);
  if (!resp.ok()) {
    client_.reset();
    return resp.status();
  }
  if (!resp->GetBool("ok")) return ResponseToStatus(*resp);
  last_resume_seq_ = static_cast<uint64_t>(resp->GetInt("last_seq", 0));
  if (next_seq_ <= *last_resume_seq_) next_seq_ = *last_resume_seq_ + 1;
  ++stats_.resumes;
  return Status::Ok();
}

StatusOr<JsonValue> ResilientClient::CallResilient(JsonValue request,
                                                   bool mutating) {
  uint64_t seq = 0;
  if (mutating && !session_id_.empty()) {
    seq = next_seq_++;
    request.Set("seq", static_cast<int64_t>(seq));
  }
  Status last = Status::Internal("no attempts made");
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    Status conn = EnsureConnected();
    if (!conn.ok()) {
      // A definitive answer about the session (gone for good) is not
      // retryable; transport-level failures are.
      if (conn.code() == StatusCode::kNotFound ||
          conn.code() == StatusCode::kInvalidArgument) {
        return conn;
      }
      last = conn;
      Backoff(attempt, 0);
      continue;
    }
    if (seq > 0 && last_resume_seq_.has_value()) {
      // The server restarted and rebuilt its (in-memory) idempotency
      // window from the journal replay. An in-flight seq ≤ last_seq + 1
      // retries as-is — either a cache hit or the next expected request.
      // A gapped seq means the original was never applied before the
      // crash; re-stamp it as the next expected one.
      if (seq > *last_resume_seq_ + 1) {
        seq = *last_resume_seq_ + 1;
        request.Set("seq", static_cast<int64_t>(seq));
        next_seq_ = seq + 1;
        ++stats_.seq_resyncs;
      }
      last_resume_seq_.reset();
    }
    StatusOr<JsonValue> resp = client_->Call(request);
    if (!resp.ok()) {
      // Transport failure mid-request: the server may or may not have
      // applied it — exactly what the seq retry disambiguates.
      client_.reset();
      last = resp.status();
      Backoff(attempt, 0);
      continue;
    }
    if (resp->GetBool("ok")) return std::move(resp).value();
    const std::string code = resp->GetString("code");
    if (code == "UNAVAILABLE") {
      last = Status::Unavailable(resp->GetString("error"));
      Backoff(attempt, resp->GetInt("retry_after_ms", 0));
      continue;
    }
    if (code == "DEADLINE_EXCEEDED") {
      // The server evicted this connection as stalled; reconnect.
      client_.reset();
      last = Status::DeadlineExceeded(resp->GetString("error"));
      Backoff(attempt, 0);
      continue;
    }
    // Terminal protocol failure (bad arguments, session gone, seq evicted
    // from the window): surface it.
    return ResponseToStatus(*resp);
  }
  return last;
}

StatusOr<std::string> ResilientClient::OpenSession(
    const SessionManager::OpenParams& params) {
  JsonValue req = JsonValue::Object();
  req.Set("verb", "open_session");
  req.Set("dataset", params.dataset);
  req.Set("scale", params.scale);
  req.Set("seed", static_cast<int64_t>(params.seed));
  req.Set("budget", params.budget);
  req.Set("question_mistake_prob", params.question_mistake_prob);
  req.Set("update_mistake_prob", params.update_mistake_prob);
  req.Set("algorithm", params.algorithm);
  req.Set("posting_delta", params.posting_delta);
  FALCON_ASSIGN_OR_RETURN(JsonValue resp,
                          CallResilient(std::move(req), /*mutating=*/false));
  session_id_ = resp.GetString("session");
  next_seq_ = 1;
  last_resume_seq_.reset();
  return session_id_;
}

Status ResilientClient::ResumeSession(const std::string& id) {
  session_id_ = id;
  next_seq_ = 1;
  last_resume_seq_.reset();
  client_.reset();  // Force a resume round-trip on the next connect.
  Status last = Status::Internal("no attempts made");
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    Status st = EnsureConnected();
    if (st.ok()) return Status::Ok();
    if (st.code() == StatusCode::kNotFound ||
        st.code() == StatusCode::kInvalidArgument) {
      return st;
    }
    ++stats_.retries;
    last = st;
    Backoff(attempt, 0);
  }
  return last;
}

StatusOr<JsonValue> ResilientClient::Step(size_t episodes) {
  JsonValue req = JsonValue::Object();
  req.Set("verb", "step");
  req.Set("session", session_id_);
  req.Set("episodes", episodes);
  return CallResilient(std::move(req), /*mutating=*/true);
}

StatusOr<JsonValue> ResilientClient::UpdateCell(uint32_t row, uint32_t col,
                                                const std::string& value) {
  JsonValue req = JsonValue::Object();
  req.Set("verb", "update_cell");
  req.Set("session", session_id_);
  req.Set("row", static_cast<int64_t>(row));
  req.Set("col", static_cast<int64_t>(col));
  req.Set("value", value);
  return CallResilient(std::move(req), /*mutating=*/true);
}

StatusOr<JsonValue> ResilientClient::Answer(bool valid) {
  JsonValue req = JsonValue::Object();
  req.Set("verb", "answer");
  req.Set("session", session_id_);
  req.Set("valid", valid);
  return CallResilient(std::move(req), /*mutating=*/true);
}

StatusOr<JsonValue> ResilientClient::Retract(size_t repair_index) {
  JsonValue req = JsonValue::Object();
  req.Set("verb", "retract");
  req.Set("session", session_id_);
  req.Set("repair", repair_index);
  return CallResilient(std::move(req), /*mutating=*/true);
}

StatusOr<JsonValue> ResilientClient::Info() {
  JsonValue req = JsonValue::Object();
  req.Set("verb", "status");
  req.Set("session", session_id_);
  return CallResilient(std::move(req), /*mutating=*/false);
}

StatusOr<JsonValue> ResilientClient::Ping() {
  JsonValue req = JsonValue::Object();
  req.Set("verb", "ping");
  return CallResilient(std::move(req), /*mutating=*/false);
}

Status ResilientClient::CloseSession() {
  if (session_id_.empty()) return Status::Ok();
  JsonValue req = JsonValue::Object();
  req.Set("verb", "close");
  req.Set("session", session_id_);
  // Close is naturally idempotent at the "gone" level: a retry that finds
  // the session already deleted reports NotFound, which we fold into ok.
  StatusOr<JsonValue> resp = CallResilient(std::move(req), false);
  session_id_.clear();
  next_seq_ = 1;
  last_resume_seq_.reset();
  if (!resp.ok() && resp.status().code() != StatusCode::kNotFound) {
    return resp.status();
  }
  return Status::Ok();
}

}  // namespace falcon
