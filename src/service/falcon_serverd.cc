// falcon_serverd: the multi-session cleaning service daemon. Serves the
// line-delimited JSON protocol (see service/protocol.h) over a Unix or TCP
// socket until SIGINT/SIGTERM — or a remote `shutdown` request when
// started with --allow-remote-shutdown (CI teardown).
//
// Quickstart:
//   falcon_serverd --socket=/tmp/falcon.sock &
//   printf '%s\n' '{"verb":"open_session","dataset":"Synth10k","seed":7}' |
//     nc -U /tmp/falcon.sock
// then step with '{"verb":"step","session":"s-1","episodes":0}' and finish
// with '{"verb":"close","session":"s-1"}'.
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/flags.h"
#include "common/simd.h"
#include "service/server.h"

namespace {

// Self-pipe: the signal handler writes one byte; the main thread blocks in
// read() and runs the (non-async-signal-safe) shutdown afterwards.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  char byte = 1;
  ssize_t ignored = write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace falcon;
  Flags flags(argc, argv);
  simd::ApplyLevelFlag(flags);

  ServerOptions options;
  options.unix_path = flags.GetString(
      "socket", "/tmp/falcon_serverd.sock",
      "unix socket path (empty with --port for TCP)");
  options.tcp_port = static_cast<uint16_t>(
      flags.GetInt("port", 0, "TCP port on 127.0.0.1 (0 = ephemeral)"));
  options.workers = static_cast<size_t>(
      flags.GetInt("workers", 4, "worker threads executing requests"));
  options.queue_limit = static_cast<size_t>(flags.GetInt(
      "queue_limit", 64, "bounded request queue; beyond it requests are "
                         "rejected with UNAVAILABLE"));
  options.session_queue_limit = static_cast<size_t>(flags.GetInt(
      "session_queue_limit", 16,
      "per-session queued-request cap (0 = only the global limit)"));
  options.retry_after_ms = flags.GetInt(
      "retry_after_ms", 50,
      "base backoff hint on overload (scaled up to 4x with queue depth)");
  options.allow_remote_shutdown = flags.GetBool(
      "allow_remote_shutdown", false,
      "honour the remote `shutdown` verb (CI teardown)");
  options.sweep_interval_s = flags.GetDouble(
      "sweep_interval_s", 30.0, "idle-eviction sweep period (0 = off)");
  options.read_deadline_ms = flags.GetInt(
      "read_deadline_s", 60, "per-line read deadline on connections, from "
                             "the first byte of a partial line (slowloris "
                             "eviction; 0 = off)") * 1000;
  options.limits.max_sessions = static_cast<size_t>(
      flags.GetInt("max_sessions", 8, "concurrent session cap"));
  options.limits.session_shards = static_cast<size_t>(flags.GetInt(
      "session_shards", 16, "lock stripes for the session registry"));
  options.limits.posting_budget_bytes = static_cast<size_t>(flags.GetInt(
      "posting_budget_mb", 0, "total posting-cache budget in MiB, sliced "
                              "across max_sessions (0 = unbounded"
                              ")")) * (size_t{1} << 20);
  options.limits.journal_dir = flags.GetString(
      "journal_dir", "", "per-session write-ahead journals ('' = off)");
  options.limits.idle_timeout_s = flags.GetDouble(
      "idle_timeout_s", 600.0, "sessions idle past this are evicted");
  if (auto rc = flags.Done(
          "falcon_serverd — concurrent multi-session cleaning service "
          "(line-delimited JSON over a Unix/TCP socket)")) {
    return *rc;
  }

  if (pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  CleaningServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (server.recovered_sessions() > 0) {
    std::printf("falcon_serverd: recovered %zu session(s) from %s\n",
                server.recovered_sessions(),
                options.limits.journal_dir.c_str());
  }
  if (!options.unix_path.empty()) {
    std::printf("falcon_serverd listening on %s (%zu workers, %zu session "
                "slots)\n",
                options.unix_path.c_str(), options.workers,
                options.limits.max_sessions);
  } else {
    std::printf("falcon_serverd listening on 127.0.0.1:%u (%zu workers, "
                "%zu session slots)\n",
                server.bound_port(), options.workers,
                options.limits.max_sessions);
  }
  std::fflush(stdout);

  // Wait for a signal or a remote shutdown, whichever comes first. The
  // watcher thread turns a signal into server.Stop(); Wait() returns once
  // every server thread is joined either way.
  std::thread signal_watcher([&server] {
    char byte;
    while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    server.Stop();
  });
  server.Wait();
  // Unblock the watcher if shutdown came from the protocol, not a signal.
  HandleSignal(0);
  signal_watcher.join();

  std::printf("falcon_serverd: drained and stopped\n");
  return 0;
}
