#include "service/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "service/protocol.h"

namespace falcon {

CleaningServer::CleaningServer(ServerOptions options)
    : options_(std::move(options)), manager_(options_.limits) {}

CleaningServer::~CleaningServer() {
  Stop();
  Wait();
}

Status CleaningServer::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) return Status::FailedPrecondition("server already started");
    started_ = true;
  }
  // Replay crashed/evicted sessions before the socket exists, so a client
  // can resume the moment its connect succeeds.
  if (!options_.limits.journal_dir.empty()) {
    recovered_sessions_ = manager_.RecoverSessions();
  }
  if (!options_.unix_path.empty()) {
    FALCON_ASSIGN_OR_RETURN(listener_,
                            Listener::ListenUnix(options_.unix_path));
  } else {
    FALCON_ASSIGN_OR_RETURN(listener_, Listener::ListenTcp(options_.tcp_port));
  }
  size_t workers = std::max<size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&CleaningServer::WorkerLoop, this);
  }
  acceptor_ = std::thread(&CleaningServer::AcceptLoop, this);
  if (options_.sweep_interval_s > 0) {
    sweeper_ = std::thread(&CleaningServer::SweeperLoop, this);
  }
  return Status::Ok();
}

uint16_t CleaningServer::bound_port() const { return listener_.bound_port(); }

void CleaningServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  listener_.Shutdown();
  {
    // Unblock every connection reader; entries are erased by their own
    // threads before the fd closes, so these are always live sockets.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    stop_requested_ = true;
  }
  lifecycle_cv_.notify_all();
}

void CleaningServer::Wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  lifecycle_cv_.wait(lock, [&] { return stop_requested_ || stopped_; });
  if (stopped_) return;
  if (joining_) {
    lifecycle_cv_.wait(lock, [&] { return stopped_; });
    return;
  }
  joining_ = true;
  lock.unlock();

  if (acceptor_.joinable()) acceptor_.join();
  // No new connection threads once the acceptor is gone.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) t.join();
  for (std::thread& t : workers_) t.join();
  if (sweeper_.joinable()) sweeper_.join();
  manager_.CloseAll();

  lock.lock();
  stopped_ = true;
  lock.unlock();
  lifecycle_cv_.notify_all();
}

void CleaningServer::AcceptLoop() {
  for (;;) {
    StatusOr<FdHolder> conn = listener_.Accept();
    if (!conn.ok()) {
      // Transient accept failures (fd exhaustion) back off briefly and
      // keep serving; anything else (kCancelled after Stop, fatal errors)
      // ends the acceptor.
      if (conn.status().IsTransient()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;
    }
    // Injected accept fault: drop the fresh connection (the client sees a
    // reset and retries through its reconnect path).
    if (!FaultInjector::Global().Hit("service.accept").ok()) continue;
    int raw = conn->fd();
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(raw);
    conn_threads_.emplace_back(&CleaningServer::ConnectionLoop, this,
                               std::move(conn).value());
  }
}

void CleaningServer::ConnectionLoop(FdHolder fd) {
  const int raw = fd.fd();
  {
    LineChannel channel(std::move(fd));
    // Server-side transport faults arm under "service.*"; client channels
    // leave the prefix empty so their own I/O never trips these sites.
    channel.set_fault_site_prefix("service.");
    if (options_.read_deadline_ms > 0) {
      channel.set_read_deadline(options_.read_deadline_ms,
                                /*from_first_byte=*/true);
      Status st = SetSendTimeout(raw, options_.read_deadline_ms);
      (void)st;
    }
    std::string line;
    bool eof = false;
    for (;;) {
      Status read = channel.ReadLine(&line, &eof);
      if (!read.ok()) {
        if (read.code() == StatusCode::kDeadlineExceeded) {
          // Slowloris eviction: best-effort typed error, then drop the
          // connection.
          Status st = channel.WriteLine(ErrorResponse(read).Serialize());
          (void)st;
        }
        break;
      }
      if (eof) break;
      if (line.empty()) continue;

      JsonValue response;
      bool shutdown_requested = false;
      StatusOr<JsonValue> request = JsonValue::Parse(line);
      if (!request.ok()) {
        response = ErrorResponse(request.status());
      } else if (request->is_object() &&
                 request->GetString("verb") == "shutdown") {
        if (options_.allow_remote_shutdown) {
          response = JsonValue::Object();
          response.Set("ok", true);
          shutdown_requested = true;
        } else {
          response = ErrorResponse(Status::FailedPrecondition(
              "server started without --allow-remote-shutdown"));
        }
      } else {
        response = Submit(std::move(request).value());
      }
      if (!channel.WriteLine(response.Serialize()).ok()) break;
      if (shutdown_requested) {
        Stop();  // Safe here: Stop never joins; Wait() does.
        break;
      }
    }
    // Deregister before the channel closes the fd, so Stop() never calls
    // shutdown() on a recycled descriptor.
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), raw),
                    conn_fds_.end());
  }
}

JsonValue CleaningServer::Submit(JsonValue request) {
  auto item = std::make_shared<WorkItem>();
  item->request = std::move(request);
  std::future<JsonValue> response = item->response.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      return ErrorResponse(Status::Unavailable("server shutting down"));
    }
    if (queue_.size() >= options_.queue_limit) {
      // Overload: reject on the reader thread, never block or buffer.
      return ErrorResponse(Status::Unavailable("request queue full"),
                           options_.retry_after_ms);
    }
    queue_.push_back(item);
  }
  queue_cv_.notify_one();
  return response.get();
}

void CleaningServer::WorkerLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;  // Drained: admitted requests all served.
      continue;
    }
    std::shared_ptr<WorkItem> item = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    item->response.set_value(HandleRequest(manager_, item->request));
    lock.lock();
  }
}

void CleaningServer::SweeperLoop() {
  const auto interval = std::chrono::duration<double>(
      options_.sweep_interval_s);
  std::unique_lock<std::mutex> lock(queue_mu_);
  while (!stopping_) {
    queue_cv_.wait_for(lock, interval, [&] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    manager_.EvictIdle();
    lock.lock();
  }
}

}  // namespace falcon
