#include "service/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <future>
#include <utility>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "service/protocol.h"

namespace falcon {
namespace {

// epoll_event.data.u64 tags for the two non-connection fds; connection ids
// start at 1 and never collide with these.
constexpr uint64_t kListenerTag = ~uint64_t{0};
constexpr uint64_t kWakeTag = ~uint64_t{0} - 1;

// Bound on how long the I/O thread keeps flushing after Stop() once the
// scheduler has drained — a wedged peer cannot hold shutdown hostage.
constexpr int64_t kStopGraceMs = 5000;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CleaningServer::CleaningServer(ServerOptions options)
    : options_(std::move(options)), manager_(options_.limits) {}

CleaningServer::~CleaningServer() {
  Stop();
  Wait();
}

Status CleaningServer::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) return Status::FailedPrecondition("server already started");
    started_ = true;
  }
  // Replay crashed/evicted sessions before the socket exists, so a client
  // can resume the moment its connect succeeds.
  if (!options_.limits.journal_dir.empty()) {
    recovered_sessions_ = manager_.RecoverSessions();
  }
  if (!options_.unix_path.empty()) {
    FALCON_ASSIGN_OR_RETURN(listener_,
                            Listener::ListenUnix(options_.unix_path));
  } else {
    FALCON_ASSIGN_OR_RETURN(listener_, Listener::ListenTcp(options_.tcp_port));
  }
  FALCON_RETURN_IF_ERROR(SetNonBlocking(listener_.fd()));

  int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) return Status::Internal("epoll_create1 failed");
  epoll_fd_ = FdHolder(epfd);
  int wfd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wfd < 0) return Status::Internal("eventfd failed");
  wake_fd_ = FdHolder(wfd);

  epoll_event ev{};
  // The listener stays level-triggered: if an accept burst outruns one
  // loop turn (or EMFILE forces a backoff), the next epoll_wait re-fires.
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epfd, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    return Status::Internal("epoll_ctl(listener) failed");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epfd, EPOLL_CTL_ADD, wfd, &ev) != 0) {
    return Status::Internal("epoll_ctl(eventfd) failed");
  }

  size_t workers = std::max<size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&CleaningServer::WorkerLoop, this);
  }
  io_thread_ = std::thread(&CleaningServer::IoLoop, this);
  if (options_.sweep_interval_s > 0) {
    sweeper_ = std::thread(&CleaningServer::SweeperLoop, this);
  }
  return Status::Ok();
}

uint16_t CleaningServer::bound_port() const { return listener_.bound_port(); }

size_t CleaningServer::queued_requests() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return queued_;
}

size_t CleaningServer::inflight_requests() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  return inflight_;
}

void CleaningServer::Stop() {
  std::vector<Pending> drained;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (!stopping_) {
      stopping_ = true;
      // Shutdown drain: every admitted-but-unstarted request resolves with
      // a typed kUnavailable instead of a broken promise/silent drop.
      // In-flight requests (a worker already executing) finish normally.
      while (!global_.empty()) {
        drained.push_back(std::move(global_.front()));
        global_.pop_front();
      }
      for (auto& [id, q] : session_queues_) {
        while (!q.items.empty()) {
          drained.push_back(std::move(q.items.front()));
          q.items.pop_front();
        }
      }
      ready_.clear();
      queued_ = 0;
    }
  }
  stop_flag_.store(true, std::memory_order_release);
  sched_cv_.notify_all();
  listener_.Shutdown();
  if (wake_fd_.valid()) {
    uint64_t one = 1;
    ssize_t ignored = ::write(wake_fd_.fd(), &one, sizeof(one));
    (void)ignored;
  }
  for (Pending& p : drained) {
    p.done(ErrorResponse(Status::Unavailable("server shutting down")));
  }
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    stop_requested_ = true;
  }
  lifecycle_cv_.notify_all();
  sweep_cv_.notify_all();
}

void CleaningServer::Wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  lifecycle_cv_.wait(lock, [&] { return stop_requested_ || stopped_; });
  if (stopped_) return;
  if (joining_) {
    lifecycle_cv_.wait(lock, [&] { return stopped_; });
    return;
  }
  joining_ = true;
  lock.unlock();

  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& t : workers_) t.join();
  if (sweeper_.joinable()) sweeper_.join();
  manager_.CloseAll();

  lock.lock();
  stopped_ = true;
  lock.unlock();
  lifecycle_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// I/O thread
// ---------------------------------------------------------------------------

void CleaningServer::IoLoop() {
  // Tick granularity: fine enough that a short test deadline (200ms) fires
  // promptly, coarse enough that idle-ish service pays ~20 wakeups/s max.
  int64_t tick = options_.read_deadline_ms > 0
                     ? std::clamp<int64_t>(options_.read_deadline_ms / 8, 5, 50)
                     : 50;
  wheel_ = std::make_unique<TimerWheel>(NowMs(), tick, 512);

  std::vector<epoll_event> events(128);
  bool listener_removed = false;
  int64_t stop_seen_ms = 0;

  for (;;) {
    dead_conns_.clear();  // Conns evicted last turn; nothing references them.

    int timeout;
    int64_t next = wheel_->NextTimeoutMs();
    if (stop_flag_.load(std::memory_order_acquire)) {
      timeout = 10;  // Poll the drain conditions while stopping.
    } else {
      timeout = next < 0 ? -1 : static_cast<int>(next);
    }
    int n = ::epoll_wait(epoll_fd_.fd(), events.data(),
                         static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // Fatal epoll failure; shutdown path below closes everything.
    }
    int64_t now = NowMs();
    bool stopping = stop_flag_.load(std::memory_order_acquire);

    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        if (!stopping) AcceptReady(now);
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t counter;
        ssize_t ignored = ::read(wake_fd_.fd(), &counter, sizeof(counter));
        (void)ignored;
        continue;  // Completions drain below, every turn.
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // Evicted earlier this turn.
      Conn* conn = it->second.get();
      if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        // Errors/hangups surface through recv (pending data still drains).
        ReadConn(conn, now);
      }
      if (!conn->dead && (events[i].events & EPOLLOUT)) {
        TryWrite(conn, now);
      }
    }

    DrainCompletions(now);
    FireTimers(now);

    if (stopping) {
      if (stop_seen_ms == 0) {
        stop_seen_ms = now;
        if (!listener_removed) {
          ::epoll_ctl(epoll_fd_.fd(), EPOLL_CTL_DEL, listener_.fd(), nullptr);
          listener_removed = true;
        }
      }
      bool idle;
      {
        std::lock_guard<std::mutex> lock(sched_mu_);
        idle = queued_ == 0 && inflight_ == 0;
      }
      if (idle) {
        std::lock_guard<std::mutex> lock(completion_mu_);
        idle = completions_.empty();
      }
      if (idle || now - stop_seen_ms > kStopGraceMs) {
        // Final best-effort flush so typed shutdown responses reach peers.
        for (auto& [id, conn] : conns_) {
          if (!conn->dead && conn->out_off < conn->out.size()) {
            TryWrite(conn.get(), now);
          }
        }
        break;
      }
    }
  }
  conns_.clear();
  dead_conns_.clear();
}

void CleaningServer::AcceptReady(int64_t now_ms) {
  for (;;) {
    int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE/ENFILE: a load condition. The level-triggered listener will
      // re-fire next turn; the tick-bounded epoll timeout is the backoff.
      return;
    }
    FdHolder holder(fd);
    // Injected accept fault: drop the fresh connection (the client sees a
    // reset and retries through its reconnect path).
    if (!FaultInjector::Global().Hit("service.accept").ok()) continue;
    if (!SetNonBlocking(fd).ok()) continue;

    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = std::move(holder);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_.fd(), EPOLL_CTL_ADD, conn->fd.fd(), &ev) != 0) {
      continue;  // Holder in `conn` closes the fd.
    }
    conns_.emplace(conn->id, std::move(conn));
  }
  (void)now_ms;
}

void CleaningServer::ReadConn(Conn* conn, int64_t now_ms) {
  char chunk[16384];
  for (;;) {
    if (conn->dead) return;
    ssize_t n = ::recv(conn->fd.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      // Torn line read: the bytes were consumed from the socket but the
      // connection dies before the line completes (same site and per-recv
      // cadence as the old blocking reader).
      if (!FaultInjector::Global().Hit("service.read").ok()) {
        EvictConn(conn);
        return;
      }
      conn->in.append(chunk, static_cast<size_t>(n));
      size_t nl;
      while ((nl = conn->in.find('\n')) != std::string::npos) {
        if (nl > options_.max_line_bytes) {
          EvictConn(conn);  // Oversized even though complete: same policy.
          return;
        }
        std::string line = conn->in.substr(0, nl);
        conn->in.erase(0, nl + 1);
        if (!ProcessLine(conn, std::move(line))) return;
      }
      if (conn->in.size() > options_.max_line_bytes) {
        // Oversized line: drop the peer before it balloons the buffer
        // (the old reader surfaced kInvalidArgument and closed silently).
        EvictConn(conn);
        return;
      }
      continue;
    }
    if (n == 0) {
      conn->eof = true;
      if (!conn->in.empty()) {
        // EOF mid-line: nothing to respond to; drop, as before.
        EvictConn(conn);
        return;
      }
      if (conn->slots.empty() && conn->out_off >= conn->out.size()) {
        EvictConn(conn);  // Clean close with nothing owed.
      }
      return;  // Otherwise keep the conn until pending responses flush.
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    EvictConn(conn);
    return;
  }

  // Partial line pending: arm the slowloris deadline from its first byte;
  // a completed batch disarms it. Idle connections never carry a deadline.
  if (!conn->in.empty()) {
    if (options_.read_deadline_ms > 0) {
      // Injected stall: behaves exactly like the peer going quiet mid-line
      // and the deadline firing.
      Status stall = FaultInjector::Global().Hit("service.stall");
      if (!stall.ok()) {
        Status deadline = Status::DeadlineExceeded(
            "read deadline exceeded (injected stall): " + stall.message());
        std::string line = ErrorResponse(deadline).Serialize();
        if (!FaultInjector::Global().Hit("service.write").ok()) {
          EvictConn(conn);
          return;
        }
        conn->out.append(line);
        conn->out.push_back('\n');
        conn->evict_after_flush = true;
        TryWrite(conn, now_ms);
        if (!conn->dead) EvictConn(conn);
        return;
      }
      if (conn->read_deadline_at == 0) {
        conn->read_deadline_at = now_ms + options_.read_deadline_ms;
        wheel_->Schedule(conn->id, conn->read_deadline_at);
      }
    }
  } else {
    conn->read_deadline_at = 0;
  }
}

bool CleaningServer::ProcessLine(Conn* conn, std::string line) {
  if (line.empty()) return true;
  conn->read_deadline_at = 0;  // The line completed; next partial re-arms.
  uint64_t slot = conn->next_slot++;
  conn->slots.emplace_back(slot, std::nullopt);
  int64_t now = NowMs();

  StatusOr<JsonValue> request = JsonValue::Parse(line);
  if (!request.ok()) {
    CompleteSlot(conn, slot, ErrorResponse(request.status()).Serialize(), now);
    return !conn->dead;
  }
  if (request->is_object() && request->GetString("verb") == "shutdown") {
    // Intercepted on the I/O thread, as before: never queued.
    if (options_.allow_remote_shutdown) {
      JsonValue response = JsonValue::Object();
      response.Set("ok", true);
      conn->shutdown_after_flush = true;
      CompleteSlot(conn, slot, response.Serialize(), now);
    } else {
      CompleteSlot(conn, slot,
                   ErrorResponse(Status::FailedPrecondition(
                                     "server started without "
                                     "--allow-remote-shutdown"))
                       .Serialize(),
                   now);
    }
    return !conn->dead;
  }

  uint64_t conn_id = conn->id;
  SubmitAsync(std::move(request).value(),
              [this, conn_id, slot](JsonValue response) {
                PostCompletion(
                    Completion{conn_id, slot, response.Serialize()});
              });
  return !conn->dead;
}

void CleaningServer::CompleteSlot(Conn* conn, uint64_t slot, std::string line,
                                  int64_t now_ms) {
  for (auto& entry : conn->slots) {
    if (entry.first == slot) {
      entry.second = std::move(line);
      break;
    }
  }
  FlushSlots(conn, now_ms);
  if (!conn->dead) TryWrite(conn, now_ms);
}

void CleaningServer::FlushSlots(Conn* conn, int64_t now_ms) {
  // Serialize the contiguous completed prefix in request order — requests
  // for different sessions finish out of order, responses never do.
  while (!conn->dead && !conn->slots.empty() &&
         conn->slots.front().second.has_value()) {
    std::string line = std::move(*conn->slots.front().second);
    conn->slots.pop_front();
    if (!FaultInjector::Global().Hit("service.write").ok()) {
      // Partial write then failure: the peer sees a torn line and must
      // treat the request/response as lost (retry with the same seq).
      line.push_back('\n');
      size_t half = line.size() / 2;
      if (half > 0) {
        conn->out.append(line, 0, half);
        TryWrite(conn, now_ms);
      }
      if (!conn->dead) EvictConn(conn);
      return;
    }
    conn->out.append(line);
    conn->out.push_back('\n');
  }
}

void CleaningServer::TryWrite(Conn* conn, int64_t now_ms) {
  if (conn->dead) return;
  while (conn->out_off < conn->out.size()) {
    ssize_t n = ::send(conn->fd.fd(), conn->out.data() + conn->out_off,
                       conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Stalled peer: the read-deadline budget bounds how long a response
      // may sit unflushed (the old SO_SNDTIMEO role).
      if (conn->write_deadline_at == 0 && options_.read_deadline_ms > 0) {
        conn->write_deadline_at = now_ms + options_.read_deadline_ms;
        wheel_->Schedule(conn->id, conn->write_deadline_at);
      }
      if (conn->out_off > size_t{16} * 1024) {
        conn->out.erase(0, conn->out_off);
        conn->out_off = 0;
      }
      return;
    }
    EvictConn(conn);
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  conn->write_deadline_at = 0;
  if (conn->shutdown_after_flush && conn->slots.empty()) {
    Stop();  // Safe on the I/O thread: Stop never joins; Wait() does.
    EvictConn(conn);
    return;
  }
  if (conn->evict_after_flush || (conn->eof && conn->slots.empty())) {
    EvictConn(conn);
  }
}

void CleaningServer::DrainCompletions(int64_t now_ms) {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // Peer already evicted; drop.
    CompleteSlot(it->second.get(), c.slot, std::move(c.line), now_ms);
  }
}

void CleaningServer::FireTimers(int64_t now_ms) {
  if (wheel_->armed() == 0) return;
  std::vector<uint64_t> fired;
  wheel_->Advance(now_ms, &fired);
  for (uint64_t id : fired) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // Stale entry for an evicted conn.
    Conn* conn = it->second.get();
    if (conn->read_deadline_at != 0 && now_ms >= conn->read_deadline_at) {
      // Slowloris eviction: best-effort typed error, then drop — same
      // message and observable behaviour as the old per-connection reader.
      Status deadline = Status::DeadlineExceeded(
          "read deadline of " + std::to_string(options_.read_deadline_ms) +
          " ms exceeded mid-line");
      if (FaultInjector::Global().Hit("service.write").ok()) {
        conn->out.append(ErrorResponse(deadline).Serialize());
        conn->out.push_back('\n');
        TryWrite(conn, now_ms);
      }
      if (!conn->dead) EvictConn(conn);
      continue;
    }
    if (conn->write_deadline_at != 0 && now_ms >= conn->write_deadline_at) {
      EvictConn(conn);  // Peer stopped draining; silent drop, as before.
      continue;
    }
    // Stale firing (deadline cleared or re-armed): re-arm the survivor.
    int64_t next = 0;
    if (conn->read_deadline_at != 0) next = conn->read_deadline_at;
    if (conn->write_deadline_at != 0 &&
        (next == 0 || conn->write_deadline_at < next)) {
      next = conn->write_deadline_at;
    }
    if (next != 0) wheel_->Schedule(id, next);
  }
}

void CleaningServer::EvictConn(Conn* conn) {
  if (conn->dead) return;
  conn->dead = true;
  ::epoll_ctl(epoll_fd_.fd(), EPOLL_CTL_DEL, conn->fd.fd(), nullptr);
  auto it = conns_.find(conn->id);
  if (it != conns_.end()) {
    // Keep the object alive until the loop turn ends: callers up-stack
    // still hold the raw pointer (they check `dead` after every call).
    dead_conns_.push_back(std::move(it->second));
    conns_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Scheduler: per-session FIFO queues + session-less global queue
// ---------------------------------------------------------------------------

int64_t CleaningServer::AdaptiveRetryMsLocked() const {
  int64_t base = options_.retry_after_ms;
  if (base <= 0 || options_.queue_limit == 0) return base;
  int64_t scaled =
      base + (3 * base * static_cast<int64_t>(queued_)) /
                 static_cast<int64_t>(options_.queue_limit);
  return std::min(scaled, 4 * base);
}

void CleaningServer::SubmitAsync(JsonValue request,
                                 std::function<void(JsonValue)> done) {
  Status reject;
  int64_t hint = 0;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    if (stopping_) {
      reject = Status::Unavailable("server shutting down");
    } else if (queued_ >= options_.queue_limit) {
      // Global overload: reject on the submitting thread, never block or
      // buffer. The hint grows with queue depth so retries spread out.
      reject = Status::Unavailable("request queue full");
      hint = AdaptiveRetryMsLocked();
    } else {
      std::string key =
          request.is_object() ? request.GetString("session") : std::string();
      if (key.empty()) {
        global_.push_back(Pending{std::move(request), std::move(done)});
        ++queued_;
      } else {
        SessionQueue& q = session_queues_[key];
        if (options_.session_queue_limit > 0 &&
            q.items.size() >= options_.session_queue_limit) {
          // One session hammering the server is bounded before it can
          // exhaust the global budget for everyone else.
          reject = Status::Unavailable("session queue full");
          hint = AdaptiveRetryMsLocked();
        } else {
          q.items.push_back(Pending{std::move(request), std::move(done)});
          ++queued_;
          if (!q.running && q.items.size() == 1) ready_.push_back(key);
        }
      }
    }
  }
  if (!reject.ok()) {
    done(ErrorResponse(reject, hint));
    return;
  }
  sched_cv_.notify_one();
}

JsonValue CleaningServer::Submit(JsonValue request) {
  std::promise<JsonValue> promise;
  std::future<JsonValue> response = promise.get_future();
  SubmitAsync(std::move(request),
              [&promise](JsonValue r) { promise.set_value(std::move(r)); });
  return response.get();
}

void CleaningServer::PostCompletion(Completion c) {
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    completions_.push_back(std::move(c));
  }
  if (wake_fd_.valid()) {
    uint64_t one = 1;
    ssize_t ignored = ::write(wake_fd_.fd(), &one, sizeof(one));
    (void)ignored;
  }
}

void CleaningServer::WorkerLoop() {
  std::unique_lock<std::mutex> lock(sched_mu_);
  for (;;) {
    if (!global_.empty()) {
      Pending p = std::move(global_.front());
      global_.pop_front();
      --queued_;
      ++inflight_;
      lock.unlock();
      JsonValue response = HandleRequest(manager_, p.request);
      p.done(std::move(response));
      lock.lock();
      --inflight_;
      continue;
    }
    if (!ready_.empty()) {
      std::string key = std::move(ready_.front());
      ready_.pop_front();
      auto it = session_queues_.find(key);
      if (it == session_queues_.end() || it->second.running ||
          it->second.items.empty()) {
        continue;  // Raced with drain/another worker; nothing to run.
      }
      it->second.running = true;
      Pending p = std::move(it->second.items.front());
      it->second.items.pop_front();
      --queued_;
      ++inflight_;
      lock.unlock();
      JsonValue response = HandleRequest(manager_, p.request);
      p.done(std::move(response));
      lock.lock();
      --inflight_;
      // One item per turn, then back to the ready queue: K sessions share
      // the pool round-robin instead of one session monopolizing a worker.
      it = session_queues_.find(key);
      if (it != session_queues_.end()) {
        it->second.running = false;
        if (it->second.items.empty()) {
          session_queues_.erase(it);
        } else {
          ready_.push_back(key);
          sched_cv_.notify_one();
        }
      }
      continue;
    }
    if (stopping_) return;  // Drained: started requests all finished.
    sched_cv_.wait(lock);
  }
}

void CleaningServer::SweeperLoop() {
  const auto interval =
      std::chrono::duration<double>(options_.sweep_interval_s);
  std::unique_lock<std::mutex> lock(sweep_mu_);
  while (!stop_flag_.load(std::memory_order_acquire)) {
    sweep_cv_.wait_for(lock, interval, [&] {
      return stop_flag_.load(std::memory_order_acquire);
    });
    if (stop_flag_.load(std::memory_order_acquire)) return;
    lock.unlock();
    manager_.EvictIdle();
    lock.lock();
  }
}

}  // namespace falcon
